// Lint fixture: shared-mutable-static must fire on the naked mutable
// statics (file-scope, thread_local, and function-local) and must stay
// quiet on constants, on static member functions, and on the site carrying
// the inline allowlist tag.
#include <atomic>
#include <cstdint>

static std::uint64_t g_naked_counter = 0;       // fires: mutable file-scope
thread_local std::uint32_t t_scratch = 0;       // fires: thread-local state
static std::atomic<int> g_justified{0};  // lint: allowlisted shared-mutable-static
static constexpr std::uint32_t kLimit = 64;     // quiet: compile-time const

struct Helper {
  static std::uint64_t clamp(std::uint64_t v);  // quiet: function declaration
};

std::uint64_t bump() {
  static std::uint64_t calls = 0;  // fires: function-local mutable static
  t_scratch += kLimit;
  g_justified.fetch_add(1);
  return ++calls + g_naked_counter;
}

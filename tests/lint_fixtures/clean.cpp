// Lint fixture: must trigger NO rule. Exercises the legitimate patterns the
// scanner has to leave alone: unordered_map *lookup* (not iteration),
// FP arithmetic without equality, integer-key sorting, and epsilon compares.
#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

struct Entry {
  std::uint64_t key;
  double lag;
};

double clean_fixture(std::vector<Entry>& entries) {
  std::unordered_map<std::uint64_t, double> cache;
  cache[7] = 0.5;
  auto it = cache.find(7);  // lookup is fine; iteration is not
  double bonus = it != cache.end() ? it->second : 0.0;
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.key < b.key; });
  double total = bonus;
  for (const auto& e : entries) {
    if (e.lag > 0.0) {  // ordered compare, not equality
      total += e.lag;
    }
  }
  return total;
}

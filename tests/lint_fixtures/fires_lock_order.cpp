// Lint fixture: lock-order must fire. Both mutexes carry rank annotations
// and the second acquisition takes a LOWER rank while the higher one is
// held — the inversion hazard the rule exists to catch. The well-ordered
// function below must stay quiet.
#include <mutex>

struct TwoLocks {
  std::mutex pool_mutex;      // lint: lock-rank(pool_mutex)=10
  std::mutex detector_mutex;  // lint: lock-rank(detector_mutex)=90

  void inverted() {
    std::lock_guard<std::mutex> outer(detector_mutex);
    std::lock_guard<std::mutex> inner(pool_mutex);  // rank 10 under rank 90
  }

  void well_ordered() {
    std::lock_guard<std::mutex> outer(pool_mutex);
    std::lock_guard<std::mutex> inner(detector_mutex);  // 10 then 90: fine
  }
};

// Lint fixture: must trigger [banned-random].
// Raw entropy outside src/common/rng.* breaks run reproducibility.
#include <cstdlib>
#include <random>

int banned_random_fixture() {
  std::random_device rd;           // fires: ambient entropy source
  std::mt19937 gen(rd());          // fires: unseeded-by-config engine
  return static_cast<int>(gen()) + rand();  // fires: C library rand()
}

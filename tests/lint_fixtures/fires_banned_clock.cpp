// Lint fixture: must trigger [banned-clock].
// Simulated logic must consume sim::Simulation::now(), never the host clock.
#include <chrono>
#include <ctime>

long banned_clock_fixture() {
  auto t0 = std::chrono::steady_clock::now();    // fires
  auto t1 = std::chrono::system_clock::now();    // fires
  std::time_t wall = time(nullptr);              // fires
  return static_cast<long>(wall) + t0.time_since_epoch().count() +
         t1.time_since_epoch().count();
}

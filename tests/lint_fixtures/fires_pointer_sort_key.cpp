// Lint fixture: must trigger [pointer-sort-key].
// Pointer order is allocation order — it varies run to run, so it can never
// be a sort key or an ordered-container key.
#include <algorithm>
#include <map>
#include <vector>

struct Tracker {
  int id;
};

int pointer_sort_key_fixture(std::vector<Tracker*>& trackers) {
  std::sort(trackers.begin(), trackers.end(),
            [](const Tracker* a, const Tracker* b) { return a < b; });  // fires
  std::map<Tracker*, int> rank;  // fires: ordered container keyed by pointer
  int sum = 0;
  for (auto* t : trackers) {
    sum += rank[t] + t->id;
  }
  return sum;
}

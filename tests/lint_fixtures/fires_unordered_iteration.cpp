// Lint fixture: must trigger [unordered-iteration].
// Hash-order iteration feeding a decision varies across platforms.
#include <unordered_map>

int unordered_iteration_fixture() {
  std::unordered_map<int, int> states;
  states[1] = 2;
  int first_key = -1;
  for (const auto& [key, value] : states) {  // fires: order is hash order
    first_key = key + value;
    break;
  }
  auto it = states.begin();  // fires: begin() walk, same hazard
  return first_key + it->second;
}

// Lint fixture: must trigger [float-equality].
// FP equality in queue-ordering code makes priority ties platform-dependent.
bool float_equality_fixture(double lag_a, double lag_b) {
  if (lag_a == lag_b) {  // fires: exact FP compare deciding an ordering tie
    return true;
  }
  return lag_a != 0.25;  // fires: compare against FP literal
}

// Lint fixture: thread-id-as-key must fire. std::thread::id is assigned by
// the OS and differs run to run, so any container keyed or hashed by it
// iterates (or groups) nondeterministically.
#include <cstddef>
#include <map>
#include <thread>
#include <unordered_map>

std::size_t count_per_thread_slots() {
  std::map<std::thread::id, int> ordered_by_id;         // fires: ordered key
  std::unordered_map<std::thread::id, int> hashed_by_id;  // fires: hashed key
  hashed_by_id[std::this_thread::get_id()] = 1;         // fires: get_id index
  ordered_by_id[std::this_thread::get_id()] = 2;
  return ordered_by_id.size() + hashed_by_id.size();
}

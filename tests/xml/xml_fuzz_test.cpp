// Robustness sweep for the XML parser: random mutations (truncation, byte
// flips, splices) of valid documents must either parse or throw XmlError —
// never crash, hang, or corrupt memory. Workflow configs are user input;
// the Configuration Validator must survive anything.
#include <gtest/gtest.h>

#include <string>

#include "common/rng.hpp"
#include "workflow/config.hpp"
#include "workflow/topology.hpp"
#include "xml/xml.hpp"

namespace woha::xml {
namespace {

const std::string& base_document() {
  static const std::string doc = wf::save_workflow(wf::paper_fig7_topology());
  return doc;
}

class XmlFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(XmlFuzz, MutatedInputNeverCrashes) {
  Rng rng(GetParam());
  std::string doc = base_document();

  const int mutations = static_cast<int>(rng.uniform_int(1, 12));
  for (int m = 0; m < mutations; ++m) {
    switch (rng.uniform_int(0, 3)) {
      case 0: {  // truncate
        if (!doc.empty()) {
          doc.resize(static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(doc.size()) - 1)));
        }
        break;
      }
      case 1: {  // flip a byte to a random printable/structural char
        if (!doc.empty()) {
          const auto pos = static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(doc.size()) - 1));
          const char chars[] = "<>&\"'=/ ab1\n";
          doc[pos] = chars[rng.uniform_int(0, 11)];
        }
        break;
      }
      case 2: {  // splice a random fragment of itself
        if (doc.size() > 4) {
          const auto from = static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(doc.size()) - 2));
          const auto len = static_cast<std::size_t>(rng.uniform_int(
              1, std::min<std::int64_t>(32, static_cast<std::int64_t>(doc.size() - from))));
          const auto at = static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(doc.size())));
          doc.insert(at, doc.substr(from, len));
        }
        break;
      }
      default: {  // inject noise
        const char* noise[] = {"<!--", "-->", "<x>", "</x>", "&amp;", "&bogus;",
                               "<?", "]]>", "\""};
        doc.insert(static_cast<std::size_t>(
                       rng.uniform_int(0, static_cast<std::int64_t>(doc.size()))),
                   noise[rng.uniform_int(0, 8)]);
        break;
      }
    }
  }

  // Parsing either succeeds or throws XmlError; the workflow loader may
  // additionally reject schema violations with invalid_argument.
  try {
    const auto spec = wf::load_workflow_string(doc);
    EXPECT_FALSE(spec.jobs.empty());  // loader guarantees >= 1 job on success
  } catch (const XmlError&) {
  } catch (const std::invalid_argument&) {
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlFuzz, ::testing::Range<std::uint64_t>(1, 61));

TEST(XmlFuzz, UnmutatedBaseAlwaysParses) {
  EXPECT_NO_THROW((void)wf::load_workflow_string(base_document()));
}

}  // namespace
}  // namespace woha::xml

#include "xml/xml.hpp"

#include <gtest/gtest.h>

namespace woha::xml {
namespace {

TEST(Xml, ParsesElementsAttributesText) {
  const auto doc = parse(R"(<?xml version="1.0"?>
    <workflow name="w1" deadline="80min">
      <job name="a" maps="3">hello</job>
      <job name="b"/>
    </workflow>)");
  const Node& root = doc.root();
  EXPECT_EQ(root.name(), "workflow");
  EXPECT_EQ(root.attr("name"), "w1");
  EXPECT_EQ(root.attr("deadline"), "80min");
  ASSERT_EQ(root.children().size(), 2u);
  EXPECT_EQ(root.children()[0]->attr("name"), "a");
  EXPECT_EQ(root.children()[0]->text(), "hello");
  EXPECT_EQ(root.children()[1]->attr("name"), "b");
}

TEST(Xml, SelfClosingTag) {
  const auto doc = parse("<a><b/><b x='1'/></a>");
  EXPECT_EQ(doc.root().children_named("b").size(), 2u);
  EXPECT_EQ(doc.root().children_named("b")[1]->attr("x"), "1");
}

TEST(Xml, DecodesEntities) {
  const auto doc = parse("<a t=\"&lt;x&gt; &amp; &quot;y&quot;\">&apos;&#65;&#x42;</a>");
  EXPECT_EQ(doc.root().attr("t"), "<x> & \"y\"");
  EXPECT_EQ(doc.root().text(), "'AB");
}

TEST(Xml, SkipsComments) {
  const auto doc = parse("<!-- head --><a><!-- inner -->v<!-- tail --></a><!-- end -->");
  EXPECT_EQ(doc.root().text(), "v");
  EXPECT_TRUE(doc.root().children().empty());
}

TEST(Xml, TrimsElementText) {
  const auto doc = parse("<a>\n   spaced out   \n</a>");
  EXPECT_EQ(doc.root().text(), "spaced out");
}

TEST(Xml, NestedStructure) {
  const auto doc = parse("<a><b><c deep='yes'/></b></a>");
  const Node* b = doc.root().child("b");
  ASSERT_NE(b, nullptr);
  const Node* c = b->child("c");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->attr("deep"), "yes");
}

TEST(Xml, MismatchedCloseTagThrows) {
  EXPECT_THROW((void)parse("<a><b></a></b>"), XmlError);
}

TEST(Xml, TruncatedInputThrows) {
  EXPECT_THROW((void)parse("<a><b>"), XmlError);
  EXPECT_THROW((void)parse("<a attr='v"), XmlError);
}

TEST(Xml, TrailingContentThrows) {
  EXPECT_THROW((void)parse("<a/><b/>"), XmlError);
}

TEST(Xml, UnknownEntityThrows) {
  EXPECT_THROW((void)parse("<a>&bogus;</a>"), XmlError);
}

TEST(Xml, UnquotedAttributeThrows) {
  EXPECT_THROW((void)parse("<a x=1/>"), XmlError);
}

TEST(Xml, ErrorsCarryLineNumbers) {
  try {
    (void)parse("<a>\n<b>\n</wrong>\n</a>");
    FAIL() << "expected XmlError";
  } catch (const XmlError& e) {
    EXPECT_EQ(e.line(), 3u);
  }
}

TEST(Xml, RequireChildAndFallbacks) {
  const auto doc = parse("<a><b>x</b></a>");
  EXPECT_EQ(doc.root().require_child("b").text(), "x");
  EXPECT_THROW((void)doc.root().require_child("missing"), XmlError);
  EXPECT_EQ(doc.root().child_text_or("b", "d"), "x");
  EXPECT_EQ(doc.root().child_text_or("nope", "d"), "d");
  EXPECT_EQ(doc.root().attr_or("missing", "fb"), "fb");
  EXPECT_THROW((void)doc.root().attr("missing"), XmlError);
}

TEST(Xml, EscapeCoversSpecials) {
  EXPECT_EQ(escape("a<b>&\"'"), "a&lt;b&gt;&amp;&quot;&apos;");
  EXPECT_EQ(escape("plain"), "plain");
}

TEST(Xml, SerializeParseRoundTrip) {
  auto root = std::make_unique<Node>("workflow");
  root->set_attr("name", "round<trip>");
  Node& job = root->add_child("job");
  job.set_attr("name", "j&1");
  job.set_text("some \"text\"");
  root->add_child("empty");
  const Document original(std::move(root));

  const auto reparsed = parse(original.to_string());
  EXPECT_EQ(reparsed.root().attr("name"), "round<trip>");
  EXPECT_EQ(reparsed.root().child("job")->attr("name"), "j&1");
  EXPECT_EQ(reparsed.root().child("job")->text(), "some \"text\"");
  EXPECT_NE(reparsed.root().child("empty"), nullptr);
}

TEST(Xml, ToleratesDoctypeAndDeclaration) {
  const auto doc = parse(
      "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
      "<!DOCTYPE workflow>\n"
      "<workflow/>");
  EXPECT_EQ(doc.root().name(), "workflow");
}

}  // namespace
}  // namespace woha::xml

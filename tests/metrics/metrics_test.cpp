#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <stdexcept>

#include "metrics/grid.hpp"
#include "metrics/metrics.hpp"
#include "metrics/report.hpp"
#include "metrics/timeline.hpp"
#include "trace/paper_workloads.hpp"
#include "workflow/topology.hpp"

namespace woha::metrics {
namespace {

hadoop::TaskEvent ev(SimTime t, std::uint32_t wf, SlotType slot, bool started) {
  hadoop::TaskEvent e;
  e.time = t;
  e.workflow = WorkflowId(wf);
  e.job = hadoop::JobRef{wf, 0};
  e.slot = slot;
  e.started = started;
  return e;
}

TEST(Timeline, OccupancyStepFunction) {
  TimelineRecorder rec;
  rec.record(ev(0, 0, SlotType::kMap, true));
  rec.record(ev(5, 0, SlotType::kMap, true));
  rec.record(ev(10, 0, SlotType::kMap, false));
  rec.record(ev(20, 0, SlotType::kMap, false));
  ASSERT_EQ(rec.workflow_count(), 1u);

  const auto samples = rec.sample(SlotType::kMap, 5);
  // t=0:1 started at 0 and 5 not yet... events with time <= t counted:
  // t=0 -> 1 running; t=5 -> 2; t=10 -> 1; t=15 -> 1; t=20 -> 0.
  ASSERT_GE(samples.size(), 5u);
  EXPECT_EQ(samples[0].counts[0], 1u);
  EXPECT_EQ(samples[1].counts[0], 2u);
  EXPECT_EQ(samples[2].counts[0], 1u);
  EXPECT_EQ(samples[3].counts[0], 1u);
  EXPECT_EQ(samples[4].counts[0], 0u);
}

TEST(Timeline, SeparatesSlotTypesAndWorkflows) {
  TimelineRecorder rec;
  rec.record(ev(0, 0, SlotType::kMap, true));
  rec.record(ev(0, 1, SlotType::kReduce, true));
  const auto maps = rec.sample(SlotType::kMap, 10);
  const auto reduces = rec.sample(SlotType::kReduce, 10);
  EXPECT_EQ(maps[0].counts[0], 1u);
  EXPECT_EQ(maps[0].counts[1], 0u);
  EXPECT_EQ(reduces[0].counts[0], 0u);
  EXPECT_EQ(reduces[0].counts[1], 1u);
}

TEST(Timeline, PeakOccupancy) {
  TimelineRecorder rec;
  for (int i = 0; i < 4; ++i) rec.record(ev(i, 0, SlotType::kMap, true));
  rec.record(ev(10, 0, SlotType::kMap, false));
  rec.record(ev(11, 0, SlotType::kMap, true));
  const auto peak = rec.peak_occupancy(SlotType::kMap);
  EXPECT_EQ(peak[0], 4u);
}

TEST(Timeline, BusySlotMsIntegratesArea) {
  TimelineRecorder rec;
  rec.record(ev(0, 0, SlotType::kMap, true));    // 1 slot from 0
  rec.record(ev(10, 0, SlotType::kMap, true));   // 2 slots from 10
  rec.record(ev(30, 0, SlotType::kMap, false));  // 1 slot from 30
  rec.record(ev(50, 0, SlotType::kMap, false));  // 0 from 50
  const auto area = rec.busy_slot_ms(SlotType::kMap);
  EXPECT_DOUBLE_EQ(area[0], 10.0 + 2 * 20.0 + 20.0);  // = 70
}

TEST(Timeline, NegativeOccupancyDetected) {
  TimelineRecorder rec;
  rec.record(ev(0, 0, SlotType::kMap, false));  // finish before start
  EXPECT_THROW((void)rec.peak_occupancy(SlotType::kMap), std::logic_error);
}

TEST(Timeline, CsvShape) {
  TimelineRecorder rec;
  rec.record(ev(0, 0, SlotType::kMap, true));
  rec.record(ev(2000, 1, SlotType::kMap, true));
  const std::string csv = rec.to_csv(SlotType::kMap, 1000);
  EXPECT_EQ(csv.substr(0, 14), "time_s,wf0,wf1");
}

TEST(Report, PaperSchedulersRosterMatchesFigureOrder) {
  const auto entries = paper_schedulers();
  ASSERT_EQ(entries.size(), 6u);
  EXPECT_EQ(entries[0].label, "EDF");
  EXPECT_EQ(entries[1].label, "FIFO");
  EXPECT_EQ(entries[2].label, "Fair");
  EXPECT_EQ(entries[3].label, "WOHA-LPF");
  EXPECT_EQ(entries[4].label, "WOHA-HLF");
  EXPECT_EQ(entries[5].label, "WOHA-MPF");
  for (const auto& e : entries) {
    auto scheduler = e.make();
    ASSERT_NE(scheduler, nullptr);
  }
}

TEST(Report, RunExperimentProducesSummaryAndTimeline) {
  hadoop::EngineConfig config;
  config.cluster = hadoop::ClusterConfig::paper_32_slaves();
  const auto workload = trace::fig2_scenario(seconds(10));
  TimelineRecorder timeline;
  const auto result =
      run_experiment(config, workload, paper_schedulers()[3], &timeline);
  EXPECT_EQ(result.scheduler, "WOHA-LPF");
  EXPECT_EQ(result.summary.workflows.size(), 3u);
  EXPECT_GT(timeline.event_count(), 0u);
}

TEST(Report, FormatWorkflowResultsIsTabular) {
  hadoop::EngineConfig config;
  config.cluster = hadoop::ClusterConfig::paper_32_slaves();
  const auto result = run_experiment(config, trace::fig2_scenario(seconds(10)),
                                     paper_schedulers()[0]);
  const std::string table = format_workflow_results(result.summary);
  EXPECT_NE(table.find("workflow"), std::string::npos);
  EXPECT_NE(table.find("fig2-w1"), std::string::npos);
  EXPECT_NE(table.find("tardiness"), std::string::npos);
}

TEST(Sweep, RunsGridAndFormats) {
  hadoop::EngineConfig base;
  base.cluster.heartbeat_period = seconds(3);
  const std::vector<ClusterPoint> clusters{{"6m-6r", 6, 6}, {"12m-12r", 12, 12}};
  const auto workload = trace::fig2_scenario(seconds(30));
  // Two schedulers keep the test fast.
  std::vector<SchedulerEntry> entries{paper_schedulers()[0], paper_schedulers()[3]};
  const auto cells = sweep_cluster_sizes(base, workload, clusters, entries);
  ASSERT_EQ(cells.size(), 4u);
  for (const auto& c : cells) {
    EXPECT_GE(c.deadline_miss_ratio, 0.0);
    EXPECT_LE(c.deadline_miss_ratio, 1.0);
    EXPECT_GE(c.total_tardiness, c.max_tardiness >= 0 ? 0 : -1);
    EXPECT_GT(c.makespan, 0);
  }
  const std::string rendered = format_sweep(cells);
  EXPECT_NE(rendered.find("Deadline miss ratio (Fig. 8)"), std::string::npos);
  EXPECT_NE(rendered.find("6m-6r"), std::string::npos);
  EXPECT_NE(rendered.find("WOHA-LPF"), std::string::npos);
}

TEST(JobsKnob, ParseJobsAcceptsPlainDecimals) {
  // 0 is the documented "hardware concurrency" request, not an error.
  EXPECT_EQ(parse_jobs("0"), 0u);
  EXPECT_EQ(parse_jobs("1"), 1u);
  EXPECT_EQ(parse_jobs("8"), 8u);
  EXPECT_EQ(parse_jobs("4096"), kMaxJobs);
}

TEST(JobsKnob, ParseJobsRejectsEverythingElse) {
  // Regression: "--jobs -1" used to flow through strtoul, wrap to
  // ULONG_MAX, and ask ThreadPool for four billion workers; non-numeric
  // values silently became 0 (= hardware concurrency). Both must fail.
  for (const char* bad : {"", "-1", "-0", "+2", "2x", "x2", " 4", "4 ",
                          "1.5", "0x8", "4097", "99999999999999999999"}) {
    EXPECT_EQ(parse_jobs(bad), std::nullopt) << '"' << bad << '"';
  }
  EXPECT_EQ(parse_jobs(nullptr), std::nullopt);
}

TEST(JobsKnob, JobsFromEnvParsesThrowsAndDefaults) {
  ASSERT_EQ(unsetenv("WOHA_JOBS"), 0);
  EXPECT_EQ(jobs_from_env(), 1u);  // absent = serial
  ASSERT_EQ(setenv("WOHA_JOBS", "", 1), 0);
  EXPECT_EQ(jobs_from_env(), 1u);  // empty = serial
  ASSERT_EQ(setenv("WOHA_JOBS", "6", 1), 0);
  EXPECT_EQ(jobs_from_env(), 6u);
  ASSERT_EQ(setenv("WOHA_JOBS", "0", 1), 0);
  EXPECT_EQ(jobs_from_env(), 0u);  // hardware concurrency, resolved later
  for (const char* bad : {"-1", "2x", "garbage"}) {
    ASSERT_EQ(setenv("WOHA_JOBS", bad, 1), 0);
    EXPECT_THROW(jobs_from_env(), std::invalid_argument) << '"' << bad << '"';
  }
  ASSERT_EQ(unsetenv("WOHA_JOBS"), 0);
}

TEST(Sweep, PaperClusterSizes) {
  const auto sizes = paper_cluster_sizes();
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_EQ(sizes[0].label, "200m-200r");
  EXPECT_EQ(sizes[2].map_slots, 280u);
}

}  // namespace
}  // namespace woha::metrics

// The interleaving sweep: run the chaos-overload grid under seeded schedule
// perturbation (random dequeue order + injected yields) with the
// happens-before detector installed, and require, for every seed, (a) zero
// HB violations and (b) a result digest bit-identical to the serial golden.
// A failure names the seed; replay it alone with WOHA_SWEEP_SEED=<seed>.
//
// WOHA_SWEEP_SEEDS=<n> widens the sweep (CI runs 16); the local default
// stays small so the suite remains quick.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "../integration/overload_scenario.hpp"
#include "analysis/race_detector.hpp"
#include "metrics/grid.hpp"

namespace woha::testing {
namespace {

std::vector<std::uint64_t> sweep_seeds() {
  if (const char* one = std::getenv("WOHA_SWEEP_SEED");
      one != nullptr && *one != '\0') {
    return {std::stoull(one)};
  }
  std::size_t count = 4;
  if (const char* n = std::getenv("WOHA_SWEEP_SEEDS");
      n != nullptr && *n != '\0') {
    count = std::stoull(n);
  }
  std::vector<std::uint64_t> seeds;
  for (std::size_t i = 1; i <= count; ++i) seeds.push_back(i);
  return seeds;
}

TEST(InterleavingSweepTest, SerialReferenceMatchesGolden) {
  const auto workload = overload_workload();
  const auto results = metrics::run_grid(overload_grid(workload));
  EXPECT_EQ(digest_overload(results), kOverloadChaosGolden)
      << "serial reference drifted — the sweep below compares against this";
}

TEST(InterleavingSweepTest, EverySeedIsCleanAndBitIdentical) {
  const auto workload = overload_workload();
  const auto grid = overload_grid(workload);

  for (const std::uint64_t seed : sweep_seeds()) {
    analysis::RaceDetector detector;
    analysis::set_detector(&detector);

    metrics::GridOptions options;
    options.jobs = 4;
    options.perturb = SchedulePerturb{/*enabled=*/true, seed};
    const auto results = metrics::run_grid(grid, options);

    analysis::set_detector(nullptr);

    EXPECT_EQ(detector.violation_count(), 0u)
        << "happens-before violation under perturbation seed " << seed
        << " — replay with WOHA_SWEEP_SEED=" << seed << "\n"
        << detector.report();
    EXPECT_EQ(digest_overload(results), kOverloadChaosGolden)
        << "result divergence under perturbation seed " << seed
        << " — replay with WOHA_SWEEP_SEED=" << seed;
  }
}

// Perturbation reorders schedules only; with the detector *not* installed
// the annotations stay inert, and the digest must still match. This is the
// configuration the CI sweep job runs at higher seed counts.
TEST(InterleavingSweepTest, PerturbedRunWithoutDetectorMatchesGolden) {
  const auto workload = overload_workload();
  metrics::GridOptions options;
  options.jobs = 3;
  options.perturb = SchedulePerturb{/*enabled=*/true, 0xd1cef00dull};
  const auto results = metrics::run_grid(overload_grid(workload), options);
  EXPECT_EQ(digest_overload(results), kOverloadChaosGolden);
}

}  // namespace
}  // namespace woha::testing

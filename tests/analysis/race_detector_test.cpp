// The happens-before detector's own algebra, plus the seeded-in race
// fixture the acceptance criteria demand: a deliberately unordered pair of
// pool tasks must make the detector fire, and the pool's documented HB
// edges (submit -> start, task end -> wait_idle) must keep correctly
// ordered code clean.

#include "analysis/race_detector.hpp"

#include <gtest/gtest.h>

#include <latch>
#include <thread>

#include "analysis/vector_clock.hpp"
#include "common/thread_pool.hpp"

namespace woha::analysis {
namespace {

TEST(VectorClockTest, TickJoinCovers) {
  VectorClock a;
  EXPECT_EQ(a.at(0), 0u);
  EXPECT_EQ(a.tick(0), 1u);
  EXPECT_EQ(a.tick(0), 2u);
  EXPECT_EQ(a.tick(3), 1u);
  EXPECT_TRUE(a.covers(0, 2));
  EXPECT_FALSE(a.covers(0, 3));
  EXPECT_TRUE(a.covers(7, 0));  // never-seen thread at epoch 0 is covered

  VectorClock b;
  b.tick(1);
  b.join(a);
  EXPECT_EQ(b.at(0), 2u);
  EXPECT_EQ(b.at(1), 1u);
  EXPECT_EQ(b.at(3), 1u);

  // join is pointwise max, not overwrite.
  VectorClock c;
  c.tick(0);
  c.tick(0);
  c.tick(0);
  b.join(c);
  EXPECT_EQ(b.at(0), 3u);
  EXPECT_EQ(b.at(1), 1u);
}

// Touch the detector from a dedicated thread so each logical "thread" of
// the scenario gets its own dense index. The thread is joined before the
// next one starts: any real-time ordering exists, but the detector must
// judge by its annotated HB edges alone.
template <class Fn>
void on_own_thread(Fn fn) {
  std::thread t(fn);
  t.join();
}

TEST(RaceDetectorTest, SameThreadTouchesNeverViolate) {
  RaceDetector det;
  const std::uint64_t inst = new_instance_id();
  on_own_thread([&] {
    det.touch("p", inst, true, "w1");
    det.touch("p", inst, false, "r1");
    det.touch("p", inst, true, "w2");
  });
  EXPECT_EQ(det.violation_count(), 0u);
}

TEST(RaceDetectorTest, ReleaseAcquireOrdersCrossThreadWrites) {
  RaceDetector det;
  const std::uint64_t inst = new_instance_id();
  const std::uint64_t sync = new_instance_id();
  on_own_thread([&] {
    det.touch("p", inst, true, "first write");
    det.hb_release(sync);
  });
  on_own_thread([&] {
    det.hb_acquire(sync);
    det.touch("p", inst, true, "second write");
  });
  EXPECT_EQ(det.violation_count(), 0u) << det.report();
}

TEST(RaceDetectorTest, UnorderedWritesViolate) {
  RaceDetector det;
  const std::uint64_t inst = new_instance_id();
  on_own_thread([&] { det.touch("p", inst, true, "first write"); });
  // No edge between the threads: wall-clock order is not happens-before.
  on_own_thread([&] { det.touch("p", inst, true, "second write"); });
  ASSERT_EQ(det.violation_count(), 1u);
  const Violation v = det.violations()[0];
  EXPECT_EQ(v.point, "p");
  EXPECT_EQ(v.instance, inst);
  EXPECT_TRUE(v.first_write);
  EXPECT_TRUE(v.second_write);
  EXPECT_NE(v.first_thread, v.second_thread);
  EXPECT_NE(det.report().find("race on p"), std::string::npos);
  EXPECT_NE(det.report().find("second write"), std::string::npos);
}

TEST(RaceDetectorTest, UnorderedReadsAreClean) {
  RaceDetector det;
  const std::uint64_t inst = new_instance_id();
  on_own_thread([&] { det.touch("p", inst, false, "r1"); });
  on_own_thread([&] { det.touch("p", inst, false, "r2"); });
  EXPECT_EQ(det.violation_count(), 0u) << det.report();
}

TEST(RaceDetectorTest, UnorderedReadThenWriteViolates) {
  RaceDetector det;
  const std::uint64_t inst = new_instance_id();
  on_own_thread([&] { det.touch("p", inst, false, "the read"); });
  on_own_thread([&] { det.touch("p", inst, true, "the write"); });
  ASSERT_EQ(det.violation_count(), 1u);
  EXPECT_FALSE(det.violations()[0].first_write);
  EXPECT_TRUE(det.violations()[0].second_write);
}

TEST(RaceDetectorTest, DistinctInstancesAreIndependent) {
  RaceDetector det;
  const std::uint64_t a = new_instance_id();
  const std::uint64_t b = new_instance_id();
  on_own_thread([&] { det.touch("p", a, true, "w-a"); });
  on_own_thread([&] { det.touch("p", b, true, "w-b"); });
  EXPECT_EQ(det.violation_count(), 0u) << det.report();
}

TEST(RaceDetectorTest, TransitiveOrderThroughTwoSyncs) {
  RaceDetector det;
  const std::uint64_t inst = new_instance_id();
  const std::uint64_t s1 = new_instance_id();
  const std::uint64_t s2 = new_instance_id();
  on_own_thread([&] {
    det.touch("p", inst, true, "w1");
    det.hb_release(s1);
  });
  on_own_thread([&] {
    det.hb_acquire(s1);
    det.hb_release(s2);  // pass the ordering along without touching
  });
  on_own_thread([&] {
    det.hb_acquire(s2);
    det.touch("p", inst, true, "w3");
  });
  EXPECT_EQ(det.violation_count(), 0u) << det.report();
}

TEST(RaceDetectorTest, ClearResetsState) {
  RaceDetector det;
  const std::uint64_t inst = new_instance_id();
  on_own_thread([&] { det.touch("p", inst, true, "w1"); });
  on_own_thread([&] { det.touch("p", inst, true, "w2"); });
  ASSERT_EQ(det.violation_count(), 1u);
  det.clear();
  EXPECT_EQ(det.violation_count(), 0u);
  EXPECT_TRUE(det.report().empty());
}

// Install/uninstall the process-wide detector for a scope; the annotation
// entry points are inert outside it.
class ScopedDetector {
 public:
  explicit ScopedDetector(RaceDetector& det) { set_detector(&det); }
  ~ScopedDetector() { set_detector(nullptr); }
};

// The seeded-in race fixture: two pool tasks touch the same instance with
// no ordering between them. A latch forces them onto distinct workers so
// the conflict is genuinely cross-thread, and the detector must fail loudly
// — this is the self-proof that the annotation layer finds what TSan's one
// observed schedule could miss (the tasks never write overlapping bytes).
TEST(RaceDetectorPoolTest, UnorderedPoolTasksFireTheDetector) {
  RaceDetector det;
  const std::uint64_t inst = new_instance_id();
  {
    const ScopedDetector guard(det);
    ThreadPool pool(2);
    std::latch both_running(2);
    for (int i = 0; i < 2; ++i) {
      pool.submit([&both_running, inst] {
        both_running.arrive_and_wait();
        touch_write("fixture.shared", inst, "racy task");
      });
    }
    pool.wait_idle();
  }
  ASSERT_GE(det.violation_count(), 1u)
      << "the seeded race fixture must be detected";
  EXPECT_EQ(det.violations()[0].point, "fixture.shared");
}

// The same shape, correctly ordered: task one's end reaches task two's
// start through wait_idle (acquire) followed by submit (release) on the
// main thread. The detector must stay silent.
TEST(RaceDetectorPoolTest, WaitIdleThenResubmitIsOrdered) {
  RaceDetector det;
  const std::uint64_t inst = new_instance_id();
  {
    const ScopedDetector guard(det);
    ThreadPool pool(2);
    pool.submit([inst] { touch_write("fixture.handoff", inst, "task one"); });
    pool.wait_idle();
    pool.submit([inst] { touch_write("fixture.handoff", inst, "task two"); });
    pool.wait_idle();
  }
  EXPECT_EQ(det.violation_count(), 0u) << det.report();
}

// Submit -> task start: state the submitter wrote before submit() is
// ordered before the task's reads of it.
TEST(RaceDetectorPoolTest, SubmitEdgeOrdersSubmitterState) {
  RaceDetector det;
  const std::uint64_t inst = new_instance_id();
  {
    const ScopedDetector guard(det);
    ThreadPool pool(2);
    touch_write("fixture.input", inst, "main prepares input");
    pool.submit([inst] { touch_read("fixture.input", inst, "task reads input"); });
    pool.wait_idle();
    touch_read("fixture.input", inst, "main reads back");
  }
  EXPECT_EQ(det.violation_count(), 0u) << det.report();
}

TEST(RaceDetectorPoolTest, AnnotationsAreInertWithoutDetector) {
  // No detector installed: entry points must be safe no-ops.
  const std::uint64_t inst = new_instance_id();
  touch_write("inert", inst, "w");
  touch_read("inert", inst, "r");
  hb_release(inst);
  hb_acquire(inst);
  maybe_yield();
  SUCCEED();
}

TEST(RaceDetectorTest, InstanceIdsNeverRepeat) {
  const std::uint64_t a = new_instance_id();
  const std::uint64_t block = new_instance_block(16);
  const std::uint64_t b = new_instance_id();
  EXPECT_LT(a, block);
  EXPECT_GE(b, block + 16);
}

}  // namespace
}  // namespace woha::analysis

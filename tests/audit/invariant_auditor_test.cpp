// Invariant auditor: clean runs pass silently, corrupted state throws an
// InvariantViolation whose structured dump names the broken invariant.
#include <gtest/gtest.h>

#include <memory>
#include <variant>

#include "audit/invariant_auditor.hpp"
#include "core/queue_bst.hpp"
#include "core/queue_dsl.hpp"
#include "core/woha_scheduler.hpp"
#include "hadoop/engine.hpp"
#include "metrics/report.hpp"
#include "workflow/topology.hpp"

namespace woha::core {

// Defined here, befriended by DslQueue/BstQueue: bump a tracker's rho
// without the repositioning every production mutation performs, leaving the
// cached pri_key stale — exactly the corruption check_structure exists for.
struct QueueTestPeer {
  static void desync_rho(DslQueue& queue, std::uint32_t id) {
    queue.arena_.tracker(queue.arena_.slot_of(id)).count_scheduled();
  }
  static void desync_rho(BstQueue& queue, std::uint32_t id) {
    queue.arena_.tracker(queue.arena_.slot_of(id)).count_scheduled();
  }
};

}  // namespace woha::core

namespace woha::audit {
namespace {

hadoop::EngineConfig small_cluster() {
  hadoop::EngineConfig config;
  config.cluster.num_trackers = 4;
  config.cluster.map_slots_per_tracker = 2;
  config.cluster.reduce_slots_per_tracker = 1;
  config.cluster.heartbeat_period = seconds(1);
  config.seed = 5;
  return config;
}

wf::WorkflowSpec deadline_chain(Duration relative_deadline = minutes(30)) {
  auto spec = wf::chain(3);
  spec.relative_deadline = relative_deadline;
  return spec;
}

std::unique_ptr<hadoop::WorkflowScheduler> make_woha() {
  return std::make_unique<core::WohaScheduler>();
}

TEST(InvariantAuditor, CleanRunPassesEveryCheck) {
  hadoop::Engine engine(small_cluster(), make_woha());
  AuditConfig audit_config;
  audit_config.full_sweep_period = 1;  // sweep on every heartbeat
  InvariantAuditor auditor(engine, audit_config);
  engine.submit(deadline_chain());
  ASSERT_NO_THROW(engine.run());
  ASSERT_NO_THROW(auditor.full_sweep());
  EXPECT_GT(auditor.events_seen(), 0u);
  EXPECT_GT(auditor.heartbeats_seen(), 0u);
  EXPECT_GT(auditor.sweeps_run(), 0u);
  EXPECT_FALSE(engine.summarize().workflows.empty());
}

TEST(InvariantAuditor, CleanChurnRunPassesEveryCheck) {
  // Crash + restart exercises the pooled/unpooled accounting, the
  // TrackerLost empty-node check, and the rho rollback path.
  auto config = small_cluster();
  config.faults.events.push_back({0, seconds(5), seconds(60)});
  config.faults.expiry_interval = seconds(10);
  hadoop::Engine engine(config, make_woha());
  AuditConfig audit_config;
  audit_config.full_sweep_period = 1;
  InvariantAuditor auditor(engine, audit_config);
  engine.submit(deadline_chain(hours(2)));
  ASSERT_NO_THROW(engine.run());
  ASSERT_NO_THROW(auditor.full_sweep());
  EXPECT_EQ(engine.summarize().tracker_crashes, 1u);
}

TEST(InvariantAuditor, EngineConfigFlagAttachesAndPreservesResults) {
  const std::vector<wf::WorkflowSpec> workload{deadline_chain()};
  const metrics::SchedulerEntry entry{"WOHA-LPF", make_woha};

  auto audited_config = small_cluster();
  audited_config.audit = true;
  const auto audited =
      metrics::run_experiment(audited_config, workload, entry);

  auto plain_config = small_cluster();
  plain_config.audit = false;
  const auto plain = metrics::run_experiment(plain_config, workload, entry);

  // Auditing must be purely observational: identical outcomes either way.
  EXPECT_EQ(audited.summary.makespan, plain.summary.makespan);
  EXPECT_EQ(audited.summary.tasks_executed, plain.summary.tasks_executed);
  ASSERT_EQ(audited.summary.workflows.size(), plain.summary.workflows.size());
  EXPECT_EQ(audited.summary.workflows[0].finish_time,
            plain.summary.workflows[0].finish_time);
}

TEST(InvariantAuditor, SlotCorruptionThrowsStructuredViolation) {
  hadoop::Engine engine(small_cluster(), make_woha());
  // The corruptor subscribes BEFORE the auditor, so on the TaskStarted where
  // it fires the auditor's per-tracker check runs against the already-
  // corrupted cluster. (Corrupting on HeartbeatServed would instead trip the
  // earlier heartbeat-free-slots payload check.)
  bool corrupted = false;
  engine.events().subscribe([&](const obs::Event& event) {
    if (corrupted) return;
    const auto* started = std::get_if<obs::TaskStarted>(&event.payload);
    if (started == nullptr) return;
    if (engine.cluster().tracker(started->tracker).free_slots(SlotType::kMap) == 0) {
      return;
    }
    // Occupy a slot behind the auditor's back: no TaskStarted will ever
    // account for it, so free + running != capacity on this tracker.
    engine.cluster_for_test().occupy(started->tracker, SlotType::kMap);
    corrupted = true;
  });
  AuditConfig audit_config;
  audit_config.full_sweep_period = 1;
  InvariantAuditor auditor(engine, audit_config);
  engine.submit(deadline_chain());
  try {
    engine.run();
    FAIL() << "corrupted slot accounting was not detected";
  } catch (const InvariantViolation& violation) {
    EXPECT_EQ(violation.invariant(), "slot-conservation");
    EXPECT_EQ(violation.expected(), violation.actual() + 1);
    const std::string what = violation.what();
    EXPECT_NE(what.find("slot-conservation"), std::string::npos) << what;
    EXPECT_NE(what.find("expected="), std::string::npos) << what;
    EXPECT_NE(what.find("actual="), std::string::npos) << what;
    EXPECT_NE(what.find("t="), std::string::npos) << what;
  }
  EXPECT_TRUE(corrupted);
}

TEST(InvariantAuditor, EventTimeRegressionThrows) {
  hadoop::Engine engine(small_cluster(), make_woha());
  InvariantAuditor auditor(engine, AuditConfig{});
  const auto log_event = [](SimTime t) {
    return obs::Event{t, obs::LogEmitted{LogLevel::kInfo, "test", "tick"}};
  };
  engine.events().publish(log_event(seconds(5)));
  try {
    engine.events().publish(log_event(seconds(3)));
    FAIL() << "time regression was not detected";
  } catch (const InvariantViolation& violation) {
    EXPECT_EQ(violation.invariant(), "event-time-monotonic");
    EXPECT_EQ(violation.expected(), seconds(5));
    EXPECT_EQ(violation.actual(), seconds(3));
  }
}

template <class Queue>
void expect_desync_detected() {
  core::SchedulingPlan plan;
  plan.append_step(minutes(10), 2);
  plan.append_step(minutes(5), 4);
  plan.resource_cap = 2;
  Queue queue;
  queue.insert(7, core::ProgressTracker(&plan, minutes(20)));
  queue.insert(9, core::ProgressTracker(&plan, minutes(25)));
  ASSERT_NO_THROW(queue.check_structure());

  core::QueueTestPeer::desync_rho(queue, 7);
  try {
    queue.check_structure();
    FAIL() << "stale pri_key was not detected";
  } catch (const std::logic_error& error) {
    EXPECT_NE(std::string(error.what()).find("pri_key stale"),
              std::string::npos)
        << error.what();
    EXPECT_NE(std::string(error.what()).find("id 7"), std::string::npos)
        << error.what();
  }
}

TEST(QueueStructure, DslDetectsStalePriorityKey) {
  expect_desync_detected<core::DslQueue>();
}

TEST(QueueStructure, BstDetectsStalePriorityKey) {
  expect_desync_detected<core::BstQueue>();
}

}  // namespace
}  // namespace woha::audit

// The XML workflow parser: crash-freedom on arbitrary bytes and a
// serialize/reparse fixpoint on everything it accepts.
//
// The input is fed to xml::parse verbatim. Rejection (XmlError) is a valid
// outcome — workflow configs are untrusted files — but anything accepted
// must round-trip: to_string() output must reparse, and reparse must
// serialize to the identical string (the second pass is the fixpoint; the
// first may legitimately normalize whitespace/entities). Under ASan/UBSan
// the parse itself is also checked for memory errors on malformed input.
//
// Mutant (WOHA_FUZZ_MUTANT=1): the serialized form is corrupted before the
// reparse — the round-trip checks must fail on any accepted input.
#include <cstdint>
#include <string>

#include "fuzz_util.hpp"
#include "xml/xml.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  const std::string input(reinterpret_cast<const char*>(data), size);

  woha::xml::Document doc = [&] {
    try {
      return woha::xml::parse(input);
    } catch (const woha::xml::XmlError&) {
      return woha::xml::Document();  // rejected: nothing more to check
    }
  }();
  if (doc.root().name().empty()) return 0;  // empty default root = rejected

  std::string serialized = doc.to_string();
  if (woha::fuzz::mutant()) {
    serialized += "<unclosed>";  // corrupt: the reparse below must now fail
  }

  try {
    const woha::xml::Document reparsed = woha::xml::parse(serialized);
    WOHA_FUZZ_CHECK(reparsed.to_string() == serialized,
                    "serialize/reparse is not a fixpoint");
  } catch (const woha::xml::XmlError& error) {
    woha::fuzz::fail(std::string("serialized form failed to reparse: ") +
                     error.what());
  }
  return 0;
}

// The arrivals-process config: validate() as the single gate, and the
// generator's documented invariants on everything validate() accepts.
//
// Bytes decode to an ArrivalConfig (all three shapes reachable, knobs
// swept across valid and nonsensical ranges) plus a small workload. If
// validate() throws, that must be the end of it — the config is rejected
// before any generation. If it accepts, assign_open_loop_arrivals must
// uphold its contract: submit times nondecreasing in vector order, purely
// deterministic in (workload, seed, config), and deadlines untouched.
//
// Mutant (WOHA_FUZZ_MUTANT=1): the replayed run's first submit time is
// shifted — the determinism comparison must fail for any accepted config.
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "fuzz_util.hpp"
#include "trace/arrivals.hpp"
#include "workflow/workflow.hpp"

namespace {

std::vector<woha::wf::WorkflowSpec> decode_workload(woha::fuzz::ByteReader& in) {
  const std::size_t count = 1 + in.u8() % 6;
  std::vector<woha::wf::WorkflowSpec> workflows;
  for (std::size_t i = 0; i < count; ++i) {
    woha::wf::WorkflowSpec spec;
    spec.name = "wf" + std::to_string(i);
    spec.relative_deadline = woha::seconds(30 + in.u8() % 60);
    const std::size_t jobs = 1 + in.u8() % 3;
    for (std::size_t j = 0; j < jobs; ++j) {
      woha::wf::JobSpec job;
      job.name = "job" + std::to_string(j);
      job.num_maps = 1 + in.u8() % 4;
      job.num_reduces = in.u8() % 3;
      job.map_duration = woha::seconds(1 + in.u8() % 8);
      job.reduce_duration = woha::seconds(1 + in.u8() % 8);
      if (j > 0) job.prerequisites.push_back(static_cast<std::uint32_t>(j - 1));
      spec.jobs.push_back(std::move(job));
    }
    workflows.push_back(std::move(spec));
  }
  return workflows;
}

woha::trace::ArrivalConfig decode_config(woha::fuzz::ByteReader& in) {
  woha::trace::ArrivalConfig config;
  switch (in.u8() % 3) {
    case 0: config.shape = woha::trace::ArrivalShape::kPoisson; break;
    case 1: config.shape = woha::trace::ArrivalShape::kMmpp; break;
    case 2: config.shape = woha::trace::ArrivalShape::kFlashCrowd; break;
  }
  // Sweep past both valid ranges and the rejection regions (zero/negative
  // rho, zero slots, flash_fraction at and above 1) so the fuzzer exercises
  // validate()'s gate, not just the generators.
  config.rho = in.unit() * 4.0 - 0.5;
  config.cluster_slots = in.u8() % 64;
  config.burst_rate_factor = in.unit() * 16.0;
  config.calm_mean = woha::seconds(in.u8() % 240);
  config.burst_mean = woha::seconds(in.u8() % 120);
  config.flash_fraction = in.unit() * 1.25;
  config.flash_duration = woha::seconds(in.u8() % 180);
  return config;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  woha::fuzz::ByteReader in(data, size);
  const std::uint64_t seed = in.u64();
  const woha::trace::ArrivalConfig config = decode_config(in);
  std::vector<woha::wf::WorkflowSpec> workflows = decode_workload(in);

  try {
    config.validate();
  } catch (const std::invalid_argument&) {
    return 0;  // rejected by the gate: generation must never be reached
  }

  std::vector<woha::wf::WorkflowSpec> replay = workflows;  // pristine copy
  assign_open_loop_arrivals(workflows, seed, config);

  for (std::size_t i = 0; i < workflows.size(); ++i) {
    WOHA_FUZZ_CHECK(workflows[i].submit_time >= 0, "negative submit time");
    WOHA_FUZZ_CHECK(
        i == 0 || workflows[i].submit_time >= workflows[i - 1].submit_time,
        "submit times not nondecreasing at index " + std::to_string(i));
    WOHA_FUZZ_CHECK(workflows[i].relative_deadline == replay[i].relative_deadline,
                    "deadline clobbered at index " + std::to_string(i));
  }

  assign_open_loop_arrivals(replay, seed, config);
  if (woha::fuzz::mutant()) {
    replay[0].submit_time += 1;  // break replay: determinism check must bite
  }
  for (std::size_t i = 0; i < workflows.size(); ++i) {
    WOHA_FUZZ_CHECK(workflows[i].submit_time == replay[i].submit_time,
                    "nondeterministic submit time at index " + std::to_string(i));
  }
  return 0;
}

// FlatTree vs std::map oracle.
//
// The input decodes to an op sequence over a FlatTree<pair<int64, uint32>>
// (the queue's composite-key shape) and a std::map twin. Keys come from a
// deliberately tiny domain so duplicate inserts, erase-reinsert free-list
// recycling, and min_/root repositioning all happen constantly. After every
// op the harness compares sizes and cached/descended minima; iteration ops
// compare full in-order walks and for_each_from resumes against the map;
// validate ops run the tree's own structural audit.
//
// Mutant (WOHA_FUZZ_MUTANT=1): a successful erase is applied to the oracle
// only — the very next size comparison must catch the divergence.
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/flat_tree.hpp"
#include "fuzz_util.hpp"

namespace {

using Key = std::pair<std::int64_t, std::uint32_t>;

Key decode_key(woha::fuzz::ByteReader& in) {
  // 16 majors x 4 minors: small enough to collide, big enough to rotate.
  return {static_cast<std::int64_t>(in.u8() % 16), in.u8() % 4};
}

std::string describe(const Key& k) {
  return "(" + std::to_string(k.first) + "," + std::to_string(k.second) + ")";
}

void check_minima(const woha::core::FlatTree<Key>& tree,
                  const std::map<Key, std::uint32_t>& oracle) {
  if (oracle.empty()) {
    WOHA_FUZZ_CHECK(tree.min_node() == woha::core::FlatTree<Key>::kNil,
                    "min_node not nil on empty tree");
    return;
  }
  const std::uint32_t cached = tree.min_node();
  const std::uint32_t descended = tree.min_descend();
  WOHA_FUZZ_CHECK(cached != woha::core::FlatTree<Key>::kNil,
                  "min_node nil on non-empty tree");
  WOHA_FUZZ_CHECK(tree.key(cached) == oracle.begin()->first,
                  "cached min key diverged at " + describe(tree.key(cached)));
  WOHA_FUZZ_CHECK(tree.key(descended) == oracle.begin()->first,
                  "descended min key diverged");
  WOHA_FUZZ_CHECK(tree.value(cached) == oracle.begin()->second,
                  "min value diverged");
}

void check_full_walk(const woha::core::FlatTree<Key>& tree,
                     const std::map<Key, std::uint32_t>& oracle) {
  std::vector<std::pair<Key, std::uint32_t>> walked;
  tree.for_each([&](const Key& k, std::uint32_t v) {
    walked.emplace_back(k, v);
    return true;
  });
  WOHA_FUZZ_CHECK(walked.size() == oracle.size(), "walk length diverged");
  auto it = oracle.begin();
  for (const auto& [k, v] : walked) {
    WOHA_FUZZ_CHECK(k == it->first && v == it->second,
                    "walk entry diverged at " + describe(k));
    ++it;
  }
}

void check_resume_walk(const woha::core::FlatTree<Key>& tree,
                       const std::map<Key, std::uint32_t>& oracle,
                       const Key& from) {
  std::vector<Key> walked;
  tree.for_each_from(from, [&](const Key& k, std::uint32_t) {
    walked.push_back(k);
    return true;
  });
  std::vector<Key> expected;
  for (auto it = oracle.lower_bound(from); it != oracle.end(); ++it) {
    expected.push_back(it->first);
  }
  WOHA_FUZZ_CHECK(walked == expected,
                  "for_each_from diverged resuming at " + describe(from));
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  woha::fuzz::ByteReader in(data, size);
  woha::core::FlatTree<Key> tree;
  std::map<Key, std::uint32_t> oracle;

  while (!in.done()) {
    switch (in.u8() % 8) {
      case 0:
      case 1:
      case 2: {  // insert (weighted: growth drives rotations)
        const Key k = decode_key(in);
        const std::uint32_t v = in.u8();
        const bool tree_inserted = tree.insert(k, v);
        const bool oracle_inserted = oracle.emplace(k, v).second;
        WOHA_FUZZ_CHECK(tree_inserted == oracle_inserted,
                        "insert outcome diverged at " + describe(k));
        break;
      }
      case 3:
      case 4: {  // erase
        const Key k = decode_key(in);
        const bool oracle_erased = oracle.erase(k) != 0;
        // Mutant: drop the tree-side erase so the oracle walks away from
        // the tree — the size check below must notice immediately.
        const bool tree_erased = (woha::fuzz::mutant() && oracle_erased)
                                     ? oracle_erased
                                     : tree.erase(k);
        WOHA_FUZZ_CHECK(tree_erased == oracle_erased,
                        "erase outcome diverged at " + describe(k));
        break;
      }
      case 5:
        check_full_walk(tree, oracle);
        break;
      case 6:
        check_resume_walk(tree, oracle, decode_key(in));
        break;
      case 7:
        tree.validate();
        break;
    }
    WOHA_FUZZ_CHECK(tree.size() == oracle.size(), "size diverged");
    check_minima(tree, oracle);
  }

  check_full_walk(tree, oracle);
  tree.validate();
  return 0;
}

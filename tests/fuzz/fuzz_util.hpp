// Shared scaffolding for the fuzz harnesses.
//
// Every harness is one LLVMFuzzerTestOneInput definition that builds in two
// modes:
//   * libFuzzer (-DWOHA_FUZZ=ON, clang): coverage-guided under ASan/UBSan;
//     a failed check abort()s so the fuzzer saves the crashing input.
//   * standalone (always built): standalone_main.cpp replays the checked-in
//     seed corpus under ctest on any compiler; a failed check throws so the
//     runner can report the offending file and exit nonzero cleanly.
//
// WOHA_FUZZ_MUTANT=1 flips each harness into a deliberately-broken-oracle
// mode (the break is harness-specific). The paired WILL_FAIL ctest entry
// replays the corpus in that mode: if the harness no longer fails, its
// checks have gone inert and the fuzz target is testing nothing.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

namespace woha::fuzz {

/// Thrown by fail() in standalone mode; the corpus runner catches it.
class Failure : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

[[noreturn]] inline void fail(const std::string& message) {
#if defined(WOHA_FUZZ_STANDALONE)
  throw Failure(message);
#else
  std::fprintf(stderr, "FUZZ CHECK FAILED: %s\n", message.c_str());
  std::abort();
#endif
}

#define WOHA_FUZZ_CHECK(cond, message)                \
  do {                                                \
    if (!(cond)) ::woha::fuzz::fail((message));       \
  } while (0)

/// Deliberately-broken-oracle mode (see header comment).
inline bool mutant() {
  const char* env = std::getenv("WOHA_FUZZ_MUTANT");
  return env != nullptr && *env != '\0' && *env != '0';
}

/// Little-endian byte reader for structured inputs. Exhaustion returns
/// zeros instead of throwing: every byte string decodes to *some* op
/// sequence, which keeps the whole input space reachable for the fuzzer.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  [[nodiscard]] bool done() const { return pos_ >= size_; }
  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }

  std::uint8_t u8() { return pos_ < size_ ? data_[pos_++] : 0u; }

  std::uint16_t u16() {
    return static_cast<std::uint16_t>(u8() | (static_cast<std::uint16_t>(u8()) << 8));
  }

  std::uint32_t u32() {
    return static_cast<std::uint32_t>(u16()) |
           (static_cast<std::uint32_t>(u16()) << 16);
  }

  std::uint64_t u64() {
    return static_cast<std::uint64_t>(u32()) |
           (static_cast<std::uint64_t>(u32()) << 32);
  }

  /// A value in [0, 1), from 16 bits.
  double unit() { return static_cast<double>(u16()) / 65536.0; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace woha::fuzz

// Dsl/Bst queue op-sequences vs the NaiveQueue reference.
//
// The input decodes to a monotone-clock op sequence — insert with a
// byte-derived plan, credit grants (announced via note_can_use_changed),
// assigns, removals, progress losses, ordering snapshots — applied
// identically to a DslQueue, a BstQueue, and the naive recompute-everything
// oracle. All Algorithm-2 implementations must pick the same workflows in
// the same order and expose the same priority ordering (ties break by id,
// so cross-implementation equality is well-defined). Each queue owns its
// credit copy, exactly like the engine's per-scheduler state.
//
// Mutant (WOHA_FUZZ_MUTANT=1): remove() skips the naive oracle, so its
// size and ordering drift — the next comparison must fail.
#include <algorithm>
#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/queue_bst.hpp"
#include "core/queue_dsl.hpp"
#include "core/queue_naive.hpp"
#include "core/scheduler_queue.hpp"
#include "fuzz_util.hpp"

namespace {

using woha::core::ProgressTracker;
using woha::core::QueueKind;
using woha::core::SchedulerQueue;
using woha::core::SchedulingPlan;
using woha::SimTime;

constexpr std::uint32_t kMaxWorkflows = 8;
constexpr std::size_t kDomains = SchedulerQueue::kProbeDomains;

struct Twin {
  std::unique_ptr<SchedulerQueue> queue;
  // Per-workflow, per-domain assignable-task credits: the caller-side state
  // can_use() answers from, duplicated per queue like the engine does.
  std::array<std::array<std::uint64_t, kDomains>, kMaxWorkflows> credits{};

  [[nodiscard]] std::function<bool(std::uint32_t)> can_use(std::size_t domain) {
    return [this, domain](std::uint32_t id) {
      return id < kMaxWorkflows && credits[id][domain] > 0;
    };
  }
};

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  woha::fuzz::ByteReader in(data, size);

  std::deque<SchedulingPlan> plans;  // must outlive the trackers
  std::array<Twin, 3> twins = {
      Twin{woha::core::make_queue(QueueKind::kDsl)},
      Twin{woha::core::make_queue(QueueKind::kBst)},
      Twin{woha::core::make_queue(QueueKind::kNaive)},
  };
  std::array<bool, kMaxWorkflows> live{};
  std::array<std::uint64_t, kMaxWorkflows> assigned{};
  SimTime now = 0;

  const auto compare_all = [&] {
    const std::size_t expect = twins[2].queue->size();
    WOHA_FUZZ_CHECK(twins[0].queue->size() == expect, "dsl size diverged");
    WOHA_FUZZ_CHECK(twins[1].queue->size() == expect, "bst size diverged");
    std::vector<SchedulerQueue::QueueEntry> naive_top;
    twins[2].queue->top(expect, naive_top);
    for (int t = 0; t < 2; ++t) {
      std::vector<SchedulerQueue::QueueEntry> top;
      twins[t].queue->top(expect, top);
      WOHA_FUZZ_CHECK(top.size() == naive_top.size(), "top length diverged");
      for (std::size_t i = 0; i < top.size(); ++i) {
        WOHA_FUZZ_CHECK(top[i].id == naive_top[i].id,
                        "ordering diverged at position " + std::to_string(i));
        WOHA_FUZZ_CHECK(top[i].lag == naive_top[i].lag,
                        "lag diverged for workflow " + std::to_string(top[i].id));
      }
    }
    twins[0].queue->check_structure();
    twins[1].queue->check_structure();
  };

  while (!in.done()) {
    switch (in.u8() % 8) {
      case 0: {  // insert a new workflow with a byte-derived plan
        const std::uint32_t id = in.u8() % kMaxWorkflows;
        if (live[id]) break;
        SchedulingPlan plan;
        const std::uint32_t steps = 1 + in.u8() % 4;
        const std::int64_t base = 100 * (1 + in.u8() % 4);
        plan.reserve_steps(steps);
        for (std::uint32_t s = 0; s < steps; ++s) {
          // ttd strictly descending, cumulative requirement ascending.
          const std::int64_t ttd = base - (base / (steps + 1)) * s;
          plan.append_step(ttd, 1 + 2 * s + in.u8() % 3);
        }
        plan.simulated_makespan = plan.step_ttd(0);
        plans.push_back(std::move(plan));
        const SimTime deadline = now + 50 + 10 * (in.u8() % 40);
        for (Twin& t : twins) {
          t.queue->insert(id, ProgressTracker(&plans.back(), deadline));
          t.credits[id] = {};
        }
        live[id] = true;
        assigned[id] = 0;
        break;
      }
      case 1: {  // grant credits; announce the false -> true flip
        const std::uint32_t id = in.u8() % kMaxWorkflows;
        const std::size_t domain = in.u8() % kDomains;
        const std::uint64_t n = 1 + in.u8() % 3;
        for (Twin& t : twins) {
          t.credits[id][domain] += n;
          t.queue->note_can_use_changed(id);
        }
        break;
      }
      case 2: {  // assign: all implementations must pick identically
        const std::size_t domain = in.u8() % kDomains;
        std::array<std::uint32_t, 3> picks{};
        for (std::size_t t = 0; t < twins.size(); ++t) {
          picks[t] = twins[t].queue->assign(now, twins[t].can_use(domain));
        }
        WOHA_FUZZ_CHECK(picks[0] == picks[2], "dsl pick diverged from naive");
        WOHA_FUZZ_CHECK(picks[1] == picks[2], "bst pick diverged from naive");
        if (picks[2] != SchedulerQueue::kNone) {
          for (Twin& t : twins) {
            WOHA_FUZZ_CHECK(t.credits[picks[2]][domain] > 0,
                            "picked workflow without credits");
            --t.credits[picks[2]][domain];
          }
          ++assigned[picks[2]];
        }
        break;
      }
      case 3: {  // remove a finished workflow
        const std::uint32_t id = in.u8() % kMaxWorkflows;
        if (!live[id]) break;
        for (std::size_t t = 0; t < twins.size(); ++t) {
          // Mutant: the naive oracle keeps the workflow — sizes and
          // orderings must be caught diverging by the next comparison.
          if (woha::fuzz::mutant() && t == 2) continue;
          twins[t].queue->remove(id);
        }
        live[id] = false;
        break;
      }
      case 4: {  // progress regression (tracker crash returning tasks)
        const std::uint32_t id = in.u8() % kMaxWorkflows;
        const std::uint64_t lost =
            std::min<std::uint64_t>(1 + in.u8() % 2, assigned[id]);
        if (!live[id] || lost == 0) break;
        for (Twin& t : twins) t.queue->on_progress_lost(id, lost);
        assigned[id] -= lost;
        break;
      }
      case 5:  // advance the monotone clock
        now += 1 + in.u8();
        break;
      case 6:
        compare_all();
        break;
      case 7:
        for (Twin& t : twins) t.queue->invalidate_probe_memo();
        break;
    }
  }

  compare_all();
  return 0;
}

// Corpus replay driver for the standalone (non-libFuzzer) fuzz builds.
//
// Usage: <runner> [corpus-file-or-dir]...
// Feeds every file (directories are walked, entries sorted by path so runs
// are deterministic) plus the empty input to LLVMFuzzerTestOneInput. Any
// WOHA_FUZZ_CHECK failure names the offending file and the process exits 1
// — which is what the WILL_FAIL mutant tests under ctest rely on.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "fuzz_util.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size);

namespace {

std::vector<std::string> collect_inputs(int argc, char** argv) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const fs::path p(argv[i]);
    if (fs::is_directory(p)) {
      for (const auto& entry : fs::recursive_directory_iterator(p)) {
        if (entry.is_regular_file()) files.push_back(entry.path().string());
      }
    } else {
      files.push_back(p.string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::vector<std::uint8_t> read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> files = collect_inputs(argc, argv);
  std::size_t ran = 0;
  std::string current = "<empty input>";
  try {
    (void)LLVMFuzzerTestOneInput(nullptr, 0);  // empty input is always legal
    for (const std::string& file : files) {
      current = file;
      const std::vector<std::uint8_t> bytes = read_bytes(file);
      (void)LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
      ++ran;
    }
  } catch (const woha::fuzz::Failure& failure) {
    std::fprintf(stderr, "FUZZ CHECK FAILED: %s\n  input: %s\n", failure.what(),
                 current.c_str());
    return 1;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "unexpected exception: %s\n  input: %s\n", error.what(),
                 current.c_str());
    return 1;
  }
  std::printf("replayed %zu corpus input(s): OK\n", ran);
  return 0;
}

#include "estimate/estimator.hpp"

#include <gtest/gtest.h>

#include "core/woha_scheduler.hpp"
#include "estimate/history_recorder.hpp"
#include "hadoop/engine.hpp"
#include "workflow/topology.hpp"

namespace woha::est {
namespace {

wf::JobSpec job_named(const std::string& name, Duration map_dur, Duration reduce_dur) {
  wf::JobSpec job;
  job.name = name;
  job.num_maps = 2;
  job.num_reduces = 1;
  job.map_duration = map_dur;
  job.reduce_duration = reduce_dur;
  return job;
}

TEST(SpecEstimator, ReturnsConfiguredDurations) {
  SpecEstimator estimator;
  const auto job = job_named("a", seconds(30), seconds(90));
  EXPECT_EQ(estimator.estimate(job, SlotType::kMap), seconds(30));
  EXPECT_EQ(estimator.estimate(job, SlotType::kReduce), seconds(90));
  EXPECT_EQ(estimator.name(), "spec");
}

TEST(HistoryEstimator, FallsBackToSpecUntilEnoughSamples) {
  HistoryEstimator estimator;  // min_samples = 3
  const auto job = job_named("etl", seconds(30), seconds(90));
  estimator.record("etl", SlotType::kMap, seconds(60));
  estimator.record("etl", SlotType::kMap, seconds(60));
  EXPECT_EQ(estimator.estimate(job, SlotType::kMap), seconds(30));  // 2 < 3
  estimator.record("etl", SlotType::kMap, seconds(60));
  EXPECT_EQ(estimator.estimate(job, SlotType::kMap), seconds(60));  // trusted now
  // Reduce phase unaffected by map observations.
  EXPECT_EQ(estimator.estimate(job, SlotType::kReduce), seconds(90));
}

TEST(HistoryEstimator, EwmaTracksShiftingDurations) {
  HistoryEstimator::Options options;
  options.alpha = 0.5;
  options.min_samples = 1;
  HistoryEstimator estimator(options);
  const auto job = job_named("shift", seconds(10), seconds(10));
  estimator.record("shift", SlotType::kMap, seconds(100));
  EXPECT_EQ(estimator.estimate(job, SlotType::kMap), seconds(100));
  estimator.record("shift", SlotType::kMap, seconds(200));
  EXPECT_EQ(estimator.estimate(job, SlotType::kMap), seconds(150));
  estimator.record("shift", SlotType::kMap, seconds(200));
  EXPECT_EQ(estimator.estimate(job, SlotType::kMap), seconds(175));
  EXPECT_EQ(estimator.samples("shift", SlotType::kMap), 3u);
  EXPECT_EQ(estimator.samples("shift", SlotType::kReduce), 0u);
}

TEST(HistoryEstimator, KeyedByJobName) {
  HistoryEstimator::Options options;
  options.min_samples = 1;
  HistoryEstimator estimator(options);
  estimator.record("a", SlotType::kMap, seconds(50));
  const auto job_b = job_named("b", seconds(10), seconds(10));
  EXPECT_EQ(estimator.estimate(job_b, SlotType::kMap), seconds(10));  // no bleed
}

TEST(HistoryEstimator, RejectsBadInput) {
  EXPECT_THROW(HistoryEstimator(HistoryEstimator::Options{0.0, 1}),
               std::invalid_argument);
  EXPECT_THROW(HistoryEstimator(HistoryEstimator::Options{1.5, 1}),
               std::invalid_argument);
  HistoryEstimator estimator;
  EXPECT_THROW(estimator.record("a", SlotType::kMap, 0), std::invalid_argument);
}

TEST(Estimator, EstimatedSpecReplacesDurations) {
  HistoryEstimator::Options options;
  options.min_samples = 1;
  HistoryEstimator estimator(options);
  auto spec = wf::chain(2);
  spec.jobs[0].name = "first";
  spec.jobs[1].name = "second";
  estimator.record("first", SlotType::kMap, seconds(500));
  const auto estimated = estimator.estimated_spec(spec);
  EXPECT_EQ(estimated.jobs[0].map_duration, seconds(500));
  // Unobserved phases keep configured values; topology untouched.
  EXPECT_EQ(estimated.jobs[1].map_duration, spec.jobs[1].map_duration);
  EXPECT_EQ(estimated.jobs[1].prerequisites, spec.jobs[1].prerequisites);
}

TEST(HistoryRecorder, LearnsFromLiveRuns) {
  // Run a workflow whose actual durations are 1.5x the configured ones;
  // after the run, the estimator must know the true durations.
  auto estimator = std::make_shared<HistoryEstimator>();
  auto spec = wf::chain(1);
  spec.jobs[0].name = "learning-job";
  spec.jobs[0].num_maps = 8;
  spec.jobs[0].num_reduces = 4;
  spec.jobs[0].map_duration = seconds(20);
  spec.jobs[0].reduce_duration = seconds(40);

  hadoop::EngineConfig config;
  config.cluster.num_trackers = 4;
  config.duration_scale = 1.5;  // reality is 1.5x the configuration
  core::WohaConfig wc;
  wc.estimator = estimator;
  hadoop::Engine engine(config, std::make_unique<core::WohaScheduler>(wc));
  HistoryRecorder recorder(*estimator, engine);
  engine.set_task_observer(
      [&recorder](const hadoop::TaskEvent& e) { recorder.observe(e); });
  engine.submit(spec);
  engine.run();

  EXPECT_EQ(estimator->samples("learning-job", SlotType::kMap), 8u);
  EXPECT_EQ(estimator->samples("learning-job", SlotType::kReduce), 4u);
  EXPECT_EQ(estimator->estimate(spec.jobs[0], SlotType::kMap), seconds(30));
  EXPECT_EQ(estimator->estimate(spec.jobs[0], SlotType::kReduce), seconds(60));
}

TEST(WohaWithEstimator, WarmEstimatorFixesUnderestimatedPlans) {
  // Configured durations are 25% optimistic (reality = 1.25x). With spec
  // estimates WOHA's plan is infeasible in reality; with a warm history
  // estimator the plan uses true durations and the deadline is met again.
  auto make_spec = [] {
    auto spec = wf::chain(3);
    for (std::uint32_t j = 0; j < spec.jobs.size(); ++j) {
      spec.jobs[j].name = "stage-" + std::to_string(j);
      spec.jobs[j].num_maps = 12;
      spec.jobs[j].num_reduces = 4;
      spec.jobs[j].map_duration = seconds(40);
      spec.jobs[j].reduce_duration = seconds(80);
    }
    return spec;
  };

  hadoop::EngineConfig config;
  config.cluster.num_trackers = 4;  // 8 map + 4 reduce slots
  config.duration_scale = 1.25;

  // Compute the true makespan with an oracle run (no deadline).
  SimTime true_finish;
  {
    hadoop::Engine engine(config, std::make_unique<core::WohaScheduler>());
    engine.submit(make_spec());
    engine.run();
    true_finish = engine.summarize().workflows[0].finish_time;
  }
  // Deadline between the (shorter) believed makespan and the true one is
  // achievable only with honest estimates... it IS achievable in both
  // cases resource-wise; what differs is the plan's laziness. Use a
  // deadline with ~8% slack over the true makespan.
  const Duration deadline = static_cast<Duration>(true_finish * 108 / 100);

  auto estimator = std::make_shared<HistoryEstimator>();
  // Warm-up run to teach the estimator the real durations.
  {
    core::WohaConfig wc;
    wc.estimator = estimator;
    hadoop::Engine engine(config, std::make_unique<core::WohaScheduler>(wc));
    HistoryRecorder recorder(*estimator, engine);
    engine.set_task_observer(
        [&recorder](const hadoop::TaskEvent& e) { recorder.observe(e); });
    engine.submit(make_spec());
    engine.run();
  }

  // The warm estimator now predicts 1.25x the spec durations.
  const auto spec = make_spec();
  EXPECT_EQ(estimator->estimate(spec.jobs[0], SlotType::kMap), seconds(50));

  // With history, the plan's simulated makespan reflects reality.
  core::WohaConfig wc;
  wc.estimator = estimator;
  auto scheduler = std::make_unique<core::WohaScheduler>(wc);
  core::WohaScheduler* raw = scheduler.get();
  auto timed = make_spec();
  timed.relative_deadline = deadline;
  hadoop::Engine engine(config, std::move(scheduler));
  engine.submit(timed);
  engine.run();
  EXPECT_TRUE(engine.summarize().workflows[0].met_deadline);
  // And the plan the client generated used the learned durations: its
  // simulated makespan exceeds what the optimistic spec would predict.
  const auto* plan = raw->plan_of(WorkflowId(0));
  ASSERT_NE(plan, nullptr);
  EXPECT_GT(plan->simulated_makespan, 0);
}

}  // namespace
}  // namespace woha::est

// Behavioural tests for the three ported baseline schedulers (paper
// Section V-B), exercised through the full engine so the tested behaviour is
// the one the benches measure.
#include <gtest/gtest.h>

#include <map>

#include "hadoop/engine.hpp"
#include "sched/edf_scheduler.hpp"
#include "sched/fair_scheduler.hpp"
#include "sched/fifo_scheduler.hpp"
#include "workflow/topology.hpp"

namespace woha {
namespace {

hadoop::EngineConfig tiny_cluster() {
  hadoop::EngineConfig config;
  config.cluster.num_trackers = 1;
  config.cluster.map_slots_per_tracker = 2;
  config.cluster.reduce_slots_per_tracker = 1;
  config.cluster.heartbeat_period = seconds(1);
  config.activation_latency = seconds(1);
  return config;
}

wf::WorkflowSpec bulk_workflow(const std::string& name, std::uint32_t maps,
                               Duration deadline) {
  wf::WorkflowSpec spec;
  spec.name = name;
  wf::JobSpec job;
  job.name = name + "-job";
  job.num_maps = maps;
  job.num_reduces = 1;
  job.map_duration = seconds(30);
  job.reduce_duration = seconds(10);
  spec.jobs.push_back(job);
  spec.relative_deadline = deadline;
  return spec;
}

TEST(FifoScheduler, ServesInSubmissionOrder) {
  // Two workflows, both submitted at t=0 but in submission order A, B.
  // FIFO must finish all of A's maps before any of B's.
  hadoop::Engine engine(tiny_cluster(), std::make_unique<sched::FifoScheduler>());
  engine.submit(bulk_workflow("A", 6, 0));
  engine.submit(bulk_workflow("B", 6, 0));

  SimTime a_last_map_start = -1, b_first_map_start = -1;
  engine.set_task_observer([&](const hadoop::TaskEvent& e) {
    if (!e.started || e.slot != SlotType::kMap) return;
    if (e.workflow.value() == 0) a_last_map_start = e.time;
    if (e.workflow.value() == 1 && b_first_map_start < 0) b_first_map_start = e.time;
  });
  engine.run();
  EXPECT_LT(a_last_map_start, b_first_map_start);
  const auto summary = engine.summarize();
  EXPECT_LT(summary.workflows[0].finish_time, summary.workflows[1].finish_time);
}

TEST(EdfScheduler, FavorsEarliestDeadline) {
  // B has the later submission but earlier deadline: EDF must finish B first.
  hadoop::Engine engine(tiny_cluster(), std::make_unique<sched::EdfScheduler>());
  engine.submit(bulk_workflow("A", 8, hours(4)));
  auto b = bulk_workflow("B", 8, minutes(10));
  b.submit_time = seconds(10);
  engine.submit(b);
  engine.run();
  const auto summary = engine.summarize();
  EXPECT_GT(summary.workflows[0].finish_time, summary.workflows[1].finish_time);
}

TEST(EdfScheduler, NoDeadlineRanksLast) {
  hadoop::Engine engine(tiny_cluster(), std::make_unique<sched::EdfScheduler>());
  engine.submit(bulk_workflow("no-deadline", 8, 0));  // infinity
  engine.submit(bulk_workflow("tight", 8, minutes(10)));
  engine.run();
  const auto summary = engine.summarize();
  EXPECT_GT(summary.workflows[0].finish_time, summary.workflows[1].finish_time);
}

TEST(FairScheduler, SharesSlotsBetweenWorkflows) {
  // Two identical workflows under Fair should interleave: B's first map
  // starts long before A finishes (contrast with the FIFO test above).
  hadoop::Engine engine(tiny_cluster(), std::make_unique<sched::FairScheduler>());
  engine.submit(bulk_workflow("A", 6, 0));
  engine.submit(bulk_workflow("B", 6, 0));

  SimTime b_first_map_start = -1;
  engine.set_task_observer([&](const hadoop::TaskEvent& e) {
    if (e.started && e.slot == SlotType::kMap && e.workflow.value() == 1 &&
        b_first_map_start < 0) {
      b_first_map_start = e.time;
    }
  });
  engine.run();
  const auto summary = engine.summarize();
  // B got a slot within the first couple of map waves.
  EXPECT_LT(b_first_map_start, seconds(65));
  // And both finish near each other (fair sharing), within two map waves.
  EXPECT_LE(std::abs(summary.workflows[0].finish_time -
                     summary.workflows[1].finish_time),
            seconds(65));
}

TEST(FairScheduler, WorkConservingWhenOneWorkflowStalls) {
  // A has a dependency stall (chain); Fair must hand idle slots to B.
  auto chain_spec = wf::chain(2);
  for (auto& job : chain_spec.jobs) {
    job.num_maps = 1;
    job.num_reduces = 1;
    job.map_duration = seconds(10);
    job.reduce_duration = seconds(10);
  }
  chain_spec.name = "chained";
  hadoop::Engine engine(tiny_cluster(), std::make_unique<sched::FairScheduler>());
  engine.submit(chain_spec);
  engine.submit(bulk_workflow("bulk", 10, 0));
  engine.run();
  const auto summary = engine.summarize();
  EXPECT_GT(summary.overall_utilization, 0.4);
}

TEST(Baselines, AllHandleDependentWorkflowsCorrectly) {
  // Smoke across all three baselines on a DAG-rich workload: everything
  // completes and executes exactly the right number of tasks.
  const auto spec = wf::paper_fig7_topology();
  const std::uint64_t expected_tasks = spec.total_tasks();
  for (int which = 0; which < 3; ++which) {
    std::unique_ptr<hadoop::WorkflowScheduler> sched;
    switch (which) {
      case 0: sched = std::make_unique<sched::FifoScheduler>(); break;
      case 1: sched = std::make_unique<sched::FairScheduler>(); break;
      default: sched = std::make_unique<sched::EdfScheduler>(); break;
    }
    hadoop::EngineConfig config;
    config.cluster = hadoop::ClusterConfig::paper_32_slaves();
    hadoop::Engine engine(config, std::move(sched));
    engine.submit(spec);
    engine.run();
    const auto summary = engine.summarize();
    EXPECT_EQ(summary.tasks_executed, expected_tasks);
    EXPECT_GE(summary.workflows[0].finish_time, 0);
  }
}

}  // namespace
}  // namespace woha

#include "sched/decomposed_edf_scheduler.hpp"

#include <gtest/gtest.h>

#include "hadoop/engine.hpp"
#include "metrics/report.hpp"
#include "trace/paper_workloads.hpp"
#include "workflow/topology.hpp"

namespace woha::sched {
namespace {

TEST(DecomposedEdf, VirtualDeadlinesFollowCriticalPath) {
  // chain of 3 unit jobs (serial length 300ms each), workflow deadline D:
  //   job 2 (sink):   d = D
  //   job 1:          d = D - 300
  //   job 0 (source): d = D - 600
  wf::JobShape shape;
  shape.num_maps = 1;
  shape.num_reduces = 1;
  shape.map_duration = 100;
  shape.reduce_duration = 200;
  auto spec = wf::chain(3, shape);
  spec.relative_deadline = seconds(100);

  hadoop::JobTracker jt;
  DecomposedEdfScheduler scheduler;
  scheduler.attach(&jt);
  const WorkflowId wf_id = jt.add_workflow(spec, 1000);
  scheduler.on_workflow_submitted(wf_id, 1000);

  const SimTime D = 1000 + seconds(100);
  EXPECT_EQ(scheduler.job_deadline({wf_id.value(), 2}), D);
  EXPECT_EQ(scheduler.job_deadline({wf_id.value(), 1}), D - 300);
  EXPECT_EQ(scheduler.job_deadline({wf_id.value(), 0}), D - 600);
}

TEST(DecomposedEdf, NoWorkflowDeadlineMeansInfiniteJobDeadlines) {
  auto spec = wf::chain(2);
  hadoop::JobTracker jt;
  DecomposedEdfScheduler scheduler;
  scheduler.attach(&jt);
  const WorkflowId wf_id = jt.add_workflow(spec, 0);
  scheduler.on_workflow_submitted(wf_id, 0);
  EXPECT_EQ(scheduler.job_deadline({wf_id.value(), 0}), kTimeInfinity);
}

TEST(DecomposedEdf, CompletesDagWorkloads) {
  hadoop::EngineConfig config;
  config.cluster = hadoop::ClusterConfig::paper_32_slaves();
  hadoop::Engine engine(config, std::make_unique<DecomposedEdfScheduler>());
  std::uint64_t expected = 0;
  for (const auto& spec : trace::fig11_scenario()) {
    expected += spec.total_tasks();
    engine.submit(spec);
  }
  engine.run();
  const auto summary = engine.summarize();
  EXPECT_EQ(summary.tasks_executed, expected);
  for (const auto& wf_result : summary.workflows) {
    EXPECT_GE(wf_result.finish_time, 0);
  }
}

TEST(DecomposedEdf, PrefersUrgentUpstreamJobOverRelaxedSink) {
  // Workflow A: long chain with tight deadline -> its source has an early
  // virtual deadline. Workflow B: single job with a late deadline. The
  // scheduler must pick A's source first even though B's *workflow*
  // deadline is earlier than A's source-job "slice" would suggest under
  // plain workflow-EDF ordering.
  wf::JobShape shape;
  shape.num_maps = 2;
  shape.num_reduces = 1;
  shape.map_duration = seconds(60);
  shape.reduce_duration = seconds(60);
  auto chain_wf = wf::chain(4, shape);
  chain_wf.name = "deep";
  chain_wf.relative_deadline = minutes(20);

  auto single = wf::chain(1, shape);
  single.name = "shallow";
  single.relative_deadline = minutes(18);

  hadoop::EngineConfig config;
  config.cluster.num_trackers = 1;  // 2 map + 1 reduce slot: strict ordering
  hadoop::Engine engine(config, std::make_unique<DecomposedEdfScheduler>());
  SimTime deep_first = -1, shallow_first = -1;
  engine.set_task_observer([&](const hadoop::TaskEvent& e) {
    if (!e.started) return;
    if (e.workflow.value() == 0 && deep_first < 0) deep_first = e.time;
    if (e.workflow.value() == 1 && shallow_first < 0) shallow_first = e.time;
  });
  engine.submit(chain_wf);
  engine.submit(single);
  engine.run();
  // deep's source virtual deadline = 20min - 3*2min = 14min < shallow's
  // 18min, so the deep chain starts first.
  EXPECT_LT(deep_first, shallow_first);
}

TEST(DecomposedEdf, ListedInExtendedRoster) {
  const auto entries = metrics::extended_schedulers();
  ASSERT_EQ(entries.size(), 7u);
  EXPECT_EQ(entries.back().label, "EDF-JOB");
  auto scheduler = entries.back().make();
  EXPECT_EQ(scheduler->name(), "EDF-JOB");
}

}  // namespace
}  // namespace woha::sched

// SpanRecorder reconstruction tests against real engine runs: lifecycle
// stamps, spec capture, plan capture, kill causes, and the recorder's
// survive-the-engine lifetime contract.
#include <memory>
#include <optional>

#include <gtest/gtest.h>

#include "core/woha_scheduler.hpp"
#include "forensics/span_recorder.hpp"
#include "hadoop/engine.hpp"
#include "workflow/topology.hpp"

namespace woha::forensics {
namespace {

wf::WorkflowSpec diamond_with_deadline(const std::string& name) {
  auto spec = wf::diamond(3);
  spec.name = name;
  spec.relative_deadline = minutes(45);
  return spec;
}

TEST(SpanRecorder, ReconstructsACleanRun) {
  hadoop::EngineConfig config;
  config.cluster.num_trackers = 4;
  config.cluster.map_slots_per_tracker = 2;
  config.cluster.reduce_slots_per_tracker = 1;
  hadoop::Engine engine(config, std::make_unique<core::WohaScheduler>());
  SpanRecorder recorder(engine.events(), &engine.job_tracker());

  engine.submit(diamond_with_deadline("clean"));
  engine.run();

  ASSERT_EQ(recorder.workflows().size(), 1u);
  const WorkflowSpan& w = recorder.workflows()[0];
  EXPECT_EQ(w.name, "clean");
  EXPECT_TRUE(w.completed);
  EXPECT_TRUE(w.met_deadline);
  EXPECT_EQ(w.status(), "completed");
  EXPECT_GE(w.submitted, 0);
  EXPECT_GT(w.finished, w.submitted);
  EXPECT_EQ(w.deadline, w.submitted + minutes(45));

  // Spec copied at submission: the DAG survives the run.
  ASSERT_EQ(w.spec.jobs.size(), w.jobs.size());
  EXPECT_EQ(w.jobs.size(), 5u);  // source + 3 middle + sink

  // WOHA published a plan for it.
  EXPECT_GT(w.plan_cap, 0u);
  EXPECT_GT(w.plan_makespan, 0);

  SimTime last_completed = -1;
  for (const JobSpan& job : w.jobs) {
    EXPECT_GE(job.activated, w.submitted);
    EXPECT_GE(job.completed, job.activated);
    EXPECT_FALSE(job.attempts.empty());
    last_completed = std::max(last_completed, job.completed);
  }
  EXPECT_EQ(last_completed, w.finished);

  ASSERT_EQ(w.attempts.size(), w.spec.total_tasks());
  for (const AttemptSpan& a : w.attempts) {
    EXPECT_GE(a.start, w.jobs[a.job].activated);
    EXPECT_GT(a.end, a.start);
    EXPECT_FALSE(a.killed);
    EXPECT_FALSE(a.failed);
    EXPECT_EQ(a.cause, obs::KillCause::kNone);
    EXPECT_EQ(a.ran_for, a.end - a.start);
  }
}

TEST(SpanRecorder, RecordsNodeLossKillCausesAndOutlivesTheEngine) {
  auto recorder = [] {
    hadoop::EngineConfig config;
    config.cluster.num_trackers = 4;
    config.cluster.map_slots_per_tracker = 2;
    config.cluster.reduce_slots_per_tracker = 1;
    config.faults.events = {{.tracker = 1,
                             .crash_time = minutes(2),
                             .restart_time = minutes(5)}};
    config.faults.expiry_interval = minutes(1);
    hadoop::Engine engine(config, std::make_unique<core::WohaScheduler>());
    auto rec =
        std::make_unique<SpanRecorder>(engine.events(), &engine.job_tracker());
    for (std::uint32_t i = 0; i < 3; ++i) {
      engine.submit(diamond_with_deadline("wf" + std::to_string(i)));
    }
    engine.run();
    return rec;
    // Engine (and its event bus) die here; the recorder must stay readable.
  }();

  ASSERT_EQ(recorder->workflows().size(), 3u);
  std::size_t node_loss_kills = 0;
  for (const WorkflowSpan& w : recorder->workflows()) {
    EXPECT_TRUE(w.completed);
    for (const AttemptSpan& a : w.attempts) {
      if (a.killed && a.cause == obs::KillCause::kNodeLoss) ++node_loss_kills;
      if (a.killed) EXPECT_NE(a.cause, obs::KillCause::kNone);
    }
  }
  // The minute-2 crash happens mid-flight with a 1-minute lease: some
  // attempts on tracker 1 must have been killed at detection.
  EXPECT_GT(node_loss_kills, 0u);
}

TEST(SpanRecorder, LinksSpeculativeBackupsToTheirOriginals) {
  // Heavy jitter + speculation: backups race stragglers, and each backup
  // span must point back at the original attempt it covered for.
  hadoop::EngineConfig config;
  config.cluster.num_trackers = 6;
  config.cluster.map_slots_per_tracker = 2;
  config.cluster.reduce_slots_per_tracker = 1;
  config.seed = 42;
  config.duration_jitter_sigma = 0.5;
  config.faults.speculative_execution = true;
  hadoop::Engine engine(config, std::make_unique<core::WohaScheduler>());
  SpanRecorder recorder(engine.events(), &engine.job_tracker());

  for (std::uint32_t i = 0; i < 4; ++i) {
    engine.submit(diamond_with_deadline("wf" + std::to_string(i)));
  }
  engine.run();

  const auto summary = engine.summarize();
  ASSERT_GT(summary.speculative_launched, 0u)
      << "fixture must actually trigger speculation";

  std::size_t backups = 0;
  for (const WorkflowSpan& w : recorder.workflows()) {
    for (const AttemptSpan& a : w.attempts) {
      if (!a.speculative) continue;
      ++backups;
      EXPECT_NE(a.backs_up, 0u);
      // The original is an attempt of the same job, launched earlier.
      std::optional<AttemptSpan> original;
      for (const AttemptSpan& o : w.attempts) {
        if (o.id == a.backs_up) original = o;
      }
      ASSERT_TRUE(original.has_value());
      EXPECT_EQ(original->job, a.job);
      EXPECT_LT(original->id, a.id);
    }
  }
  EXPECT_EQ(backups, summary.speculative_launched);
}

TEST(SpanRecorder, RecordsShedWorkflowsAndRejections) {
  hadoop::EngineConfig config;
  config.cluster.num_trackers = 2;
  config.cluster.map_slots_per_tracker = 1;
  config.cluster.reduce_slots_per_tracker = 1;
  config.admission.policy = hadoop::AdmissionPolicy::kShedLatestDeadlineFirst;
  config.admission.max_pending_workflows = 1;
  hadoop::Engine engine(config, std::make_unique<core::WohaScheduler>());
  SpanRecorder recorder(engine.events(), &engine.job_tracker());

  // Same submit time, tight budget of one pending workflow: the later
  // deadline is shed when the second submission lands.
  auto a = diamond_with_deadline("keep");
  auto b = diamond_with_deadline("shed-me");
  b.relative_deadline = minutes(90);
  engine.submit(a);
  engine.submit(b);
  engine.run();

  ASSERT_EQ(recorder.workflows().size(), 2u);
  std::size_t shed = 0;
  for (const WorkflowSpan& w : recorder.workflows()) {
    if (w.shed) {
      ++shed;
      EXPECT_EQ(w.status(), "shed");
      EXPECT_GE(w.terminated, w.submitted);
      EXPECT_FALSE(w.completed);
    }
  }
  EXPECT_EQ(shed, 1u);
}

}  // namespace
}  // namespace woha::forensics

// Attribution unit tests on hand-built spans (exact bucket arithmetic) plus
// the conservation property over the chaos-overload fixture: for every
// completed workflow, under every paper scheduler, the six buckets sum to
// the workspan *exactly*, and the deadline identity holds to the
// millisecond.
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "../integration/overload_scenario.hpp"
#include "forensics/attribution.hpp"
#include "forensics/explain.hpp"
#include "forensics/span_recorder.hpp"
#include "metrics/grid.hpp"

namespace woha::forensics {
namespace {

/// Two-job chain, one map each, estimate 100 ms per map.
WorkflowSpan chain_span() {
  WorkflowSpan w;
  w.workflow = 0;
  w.name = "chain";
  w.submitted = 0;
  w.deadline = 500;
  w.finished = 400;
  w.completed = true;
  w.spec.name = "chain";
  w.spec.jobs.resize(2);
  w.spec.jobs[0].num_maps = 1;
  w.spec.jobs[0].num_reduces = 0;
  w.spec.jobs[0].map_duration = 100;
  w.spec.jobs[1] = w.spec.jobs[0];
  w.spec.jobs[1].prerequisites = {0};
  w.jobs.resize(2);
  return w;
}

AttemptSpan attempt(std::uint64_t id, std::uint32_t job, SimTime start,
                    SimTime end) {
  AttemptSpan a;
  a.id = id;
  a.job = job;
  a.slot = SlotType::kMap;
  a.start = start;
  a.end = end;
  a.ran_for = end - start;
  return a;
}

TEST(Attribution, SplitsACleanChainIntoExactBuckets) {
  WorkflowSpan w = chain_span();
  // Job 0: activated 10, attempt runs 50..200 (estimate 100 -> boundary 150).
  w.jobs[0].activated = 10;
  w.jobs[0].completed = 200;
  w.jobs[0].attempts = {0};
  w.attempts.push_back(attempt(1, 0, 50, 200));
  // Job 1: ready 200, activated 210, attempt runs 220..400 (boundary 320).
  w.jobs[1].activated = 210;
  w.jobs[1].completed = 400;
  w.jobs[1].attempts = {1};
  w.attempts.push_back(attempt(2, 1, 220, 400));

  const WorkflowAttribution r = attribute(w);
  EXPECT_EQ(r.critical_path, (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(r.buckets.input_queue, 10 + 10);       // submit->act, ready->act
  EXPECT_EQ(r.buckets.slot_wait, 40 + 10);         // 10..50, 210..220
  EXPECT_EQ(r.buckets.exec_est, 100 + 100);        // within estimate
  EXPECT_EQ(r.buckets.straggler_excess, 50 + 80);  // past the boundary
  EXPECT_EQ(r.buckets.reexecution, 0);
  EXPECT_EQ(r.buckets.churn_stall, 0);
  EXPECT_EQ(r.buckets.sum(), r.workspan);
  EXPECT_EQ(r.workspan, 400);
  EXPECT_EQ(r.deadline_budget, 500);
  EXPECT_EQ(r.tardiness, 0);
  EXPECT_EQ(r.residual_slack, 100);
  EXPECT_TRUE(check_conservation({r}).empty());
}

TEST(Attribution, ChargesLostAttemptsToReexecution) {
  WorkflowSpan w = chain_span();
  w.spec.jobs.resize(1);
  w.jobs.resize(1);
  w.finished = 170;
  // One job: a node-loss kill 10..60, then the successful retry 70..170.
  w.jobs[0].activated = 0;
  w.jobs[0].completed = 170;
  w.jobs[0].attempts = {0, 1};
  AttemptSpan lost = attempt(1, 0, 10, 60);
  lost.killed = true;
  lost.cause = obs::KillCause::kNodeLoss;
  w.attempts.push_back(lost);
  w.attempts.push_back(attempt(2, 0, 70, 170));

  const WorkflowAttribution r = attribute(w);
  EXPECT_EQ(r.buckets.slot_wait, 10 + 10);  // 0..10 and 60..70
  EXPECT_EQ(r.buckets.reexecution, 50);     // the doomed attempt's window
  EXPECT_EQ(r.buckets.exec_est, 100);       // retry within estimate
  EXPECT_EQ(r.buckets.straggler_excess, 0);
  EXPECT_EQ(r.buckets.sum(), r.workspan);
  EXPECT_TRUE(check_conservation({r}).empty());
}

TEST(Attribution, ChargesChurnKillsToChurnStall) {
  WorkflowSpan w = chain_span();
  w.spec.jobs.resize(1);
  w.jobs.resize(1);
  w.finished = 200;
  w.jobs[0].activated = 0;
  w.jobs[0].completed = 200;
  w.jobs[0].attempts = {0, 1};
  AttemptSpan migrated = attempt(1, 0, 0, 80);
  migrated.killed = true;
  migrated.cause = obs::KillCause::kDrainMigration;
  w.attempts.push_back(migrated);
  w.attempts.push_back(attempt(2, 0, 100, 200));

  const WorkflowAttribution r = attribute(w);
  EXPECT_EQ(r.buckets.churn_stall, 80);
  EXPECT_EQ(r.buckets.slot_wait, 20);
  EXPECT_EQ(r.buckets.exec_est, 100);
  EXPECT_EQ(r.buckets.sum(), r.workspan);
}

TEST(Attribution, WinnerOutranksDoomedOverlaps) {
  // A successful attempt overlapping a doomed one: the overlap is real
  // progress, so it charges exec/straggler — never re-execution.
  WorkflowSpan w = chain_span();
  w.spec.jobs.resize(1);
  w.jobs.resize(1);
  w.finished = 150;
  w.jobs[0].activated = 0;
  w.jobs[0].completed = 150;
  w.jobs[0].attempts = {0, 1};
  AttemptSpan doomed = attempt(2, 0, 50, 150);  // killed when the winner won
  doomed.killed = true;
  doomed.cause = obs::KillCause::kWorkflowFailed;
  w.attempts.push_back(attempt(1, 0, 0, 150));  // winner, boundary at 100
  w.attempts.push_back(doomed);

  const WorkflowAttribution r = attribute(w);
  EXPECT_EQ(r.buckets.exec_est, 100);
  EXPECT_EQ(r.buckets.straggler_excess, 50);
  EXPECT_EQ(r.buckets.reexecution, 0);
  EXPECT_EQ(r.buckets.sum(), r.workspan);
}

TEST(Attribution, SpeculativeWasteIsASideChannelNotABucket) {
  WorkflowSpan w = chain_span();
  w.spec.jobs.resize(1);
  w.jobs.resize(1);
  w.finished = 120;
  w.jobs[0].activated = 0;
  w.jobs[0].completed = 120;
  w.jobs[0].attempts = {0, 1};
  // Straggling original 0..120 wins; its backup 60..120 loses the race.
  AttemptSpan backup = attempt(5, 0, 60, 120);
  backup.speculative = true;
  backup.killed = true;
  backup.cause = obs::KillCause::kSpeculationRace;
  backup.backs_up = 1;
  w.attempts.push_back(attempt(1, 0, 0, 120));
  w.attempts.push_back(backup);

  const WorkflowAttribution r = attribute(w);
  EXPECT_EQ(r.buckets.exec_est, 100);
  EXPECT_EQ(r.buckets.straggler_excess, 20);
  EXPECT_EQ(r.buckets.sum(), r.workspan);  // backup absent from the sum
  EXPECT_EQ(r.speculative_waste_ms, 60);   // ...but visible here
  EXPECT_EQ(r.speculative_attempts, 1u);
}

TEST(Attribution, NonCompletedWorkflowsGetStatusOnlyRecords) {
  WorkflowSpan w = chain_span();
  w.completed = false;
  w.finished = -1;
  w.shed = true;
  w.terminated = 300;
  const WorkflowAttribution r = attribute(w);
  EXPECT_EQ(r.status, "shed");
  EXPECT_EQ(r.workspan, 0);
  EXPECT_EQ(r.buckets.sum(), 0);
  EXPECT_TRUE(r.critical_path.empty());
  EXPECT_TRUE(check_conservation({r}).empty());  // vacuously conserved
}

// The property test: chaos overload (shedding + node churn + speculation +
// jitter at rho 1.3) across all six paper schedulers. Every completed
// workflow's buckets must tile its workspan exactly; every
// deadline-carrying one must satisfy the budget identity.
TEST(Attribution, ConservationHoldsAcrossChaosOverload) {
  const auto workload = woha::testing::overload_workload();
  const auto grid = woha::testing::overload_grid(workload);

  std::vector<std::unique_ptr<SpanRecorder>> recorders(grid.size());
  metrics::GridOptions options;
  options.jobs = 1;
  options.configure_point = [&recorders](hadoop::Engine& engine,
                                         std::size_t index) {
    recorders[index] = std::make_unique<SpanRecorder>(engine.events(),
                                                      &engine.job_tracker());
  };
  (void)metrics::run_grid(grid, options);

  std::size_t completed = 0, misses = 0, kills = 0;
  for (std::size_t i = 0; i < recorders.size(); ++i) {
    const auto records = attribute_all(recorders[i]->workflows());
    EXPECT_EQ(check_conservation(records), "") << "scheduler index " << i;
    for (const auto& r : records) {
      if (r.status != "completed") continue;
      ++completed;
      misses += r.tardiness > 0;
      kills += r.killed_attempts;
      // Spot-check the identity directly, not just through the helper.
      EXPECT_EQ(r.buckets.sum(), r.workspan) << r.name;
      ASSERT_GE(r.deadline_budget, 0) << "fixture workflows all carry deadlines";
      EXPECT_EQ(r.workspan + r.residual_slack, r.deadline_budget + r.tardiness)
          << r.name;
    }
  }
  // The fixture must exercise the interesting paths, or this test proves
  // nothing: completed workflows exist, some miss, and kills happened on
  // completed (not only shed) workflows.
  EXPECT_GT(completed, 0u);
  EXPECT_GT(misses, 0u);
  EXPECT_GT(kills, 0u);
}

}  // namespace
}  // namespace woha::forensics

#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace woha {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDifferentStreams) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(5.0, 9.0);
    EXPECT_GE(u, 5.0);
    EXPECT_LT(u, 9.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversAllValues) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(2, 6);
    ASSERT_GE(v, 2);
    ASSERT_LE(v, 6);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(3);
  EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(3);
  EXPECT_THROW(rng.uniform_int(5, 4), std::invalid_argument);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalWithParameters) {
  Rng rng(17);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, LogNormalMedian) {
  Rng rng(19);
  const int n = 100001;
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.log_normal(std::log(30.0), 0.6);
  std::nth_element(xs.begin(), xs.begin() + n / 2, xs.end());
  EXPECT_NEAR(xs[n / 2], 30.0, 1.0);
}

TEST(Rng, ExponentialMean) {
  Rng rng(23);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(0.5);
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng(1);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(rng.exponential(-1.0), std::invalid_argument);
}

TEST(Rng, BoundedParetoStaysInBounds) {
  Rng rng(29);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.bounded_pareto(1.0, 100.0, 1.2);
    EXPECT_GE(x, 1.0);
    EXPECT_LE(x, 100.0 + 1e-9);
  }
}

TEST(Rng, BoundedParetoRejectsBadParameters) {
  Rng rng(1);
  EXPECT_THROW(rng.bounded_pareto(0.0, 10.0, 1.0), std::invalid_argument);
  EXPECT_THROW(rng.bounded_pareto(10.0, 5.0, 1.0), std::invalid_argument);
  EXPECT_THROW(rng.bounded_pareto(1.0, 10.0, 0.0), std::invalid_argument);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(31);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(37);
  std::vector<double> weights{1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 40000; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.2);
}

TEST(Rng, WeightedIndexRejectsEmptyAndZeroTotal) {
  Rng rng(1);
  EXPECT_THROW(rng.weighted_index({}), std::invalid_argument);
  EXPECT_THROW(rng.weighted_index({0.0, 0.0}), std::invalid_argument);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(41);
  Rng child = parent.split();
  // The child stream should not replay the parent's output.
  Rng parent_copy(41);
  (void)parent_copy.next();  // consume what split() consumed
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (child.next() == parent_copy.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace woha

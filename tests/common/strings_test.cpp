#include "common/strings.hpp"

#include <gtest/gtest.h>

namespace woha {
namespace {

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  hello  "), "hello");
  EXPECT_EQ(trim("\t\nx\r "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("no-space"), "no-space");
}

TEST(Strings, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Strings, SplitEmptyString) {
  const auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("workflow.xml", "workflow"));
  EXPECT_FALSE(starts_with("wf", "workflow"));
  EXPECT_TRUE(starts_with("abc", ""));
}

TEST(Strings, ParseInt) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int("  -7 "), -7);
  EXPECT_THROW((void)parse_int("12x"), std::invalid_argument);
  EXPECT_THROW((void)parse_int(""), std::invalid_argument);
  EXPECT_THROW((void)parse_int("3.5"), std::invalid_argument);
}

TEST(Strings, ParseDouble) {
  EXPECT_DOUBLE_EQ(parse_double("3.25"), 3.25);
  EXPECT_DOUBLE_EQ(parse_double(" -1e3 "), -1000.0);
  EXPECT_THROW((void)parse_double("abc"), std::invalid_argument);
}

TEST(Strings, ParseDurationUnits) {
  EXPECT_EQ(parse_duration("1500"), 1500);
  EXPECT_EQ(parse_duration("1500ms"), 1500);
  EXPECT_EQ(parse_duration("90s"), 90'000);
  EXPECT_EQ(parse_duration("80min"), 80 * 60'000);
  EXPECT_EQ(parse_duration("80m"), 80 * 60'000);
  EXPECT_EQ(parse_duration("2h"), 2 * 3'600'000);
  EXPECT_EQ(parse_duration("1.5s"), 1500);
}

TEST(Strings, ParseDurationErrors) {
  EXPECT_THROW((void)parse_duration(""), std::invalid_argument);
  EXPECT_THROW((void)parse_duration("10 parsecs"), std::invalid_argument);
}

TEST(Strings, FormatDuration) {
  EXPECT_EQ(format_duration(250), "250ms");
  EXPECT_EQ(format_duration(1500), "1.5s");
  EXPECT_EQ(format_duration(90'000), "1.5min");
  EXPECT_EQ(format_duration(2 * 3'600'000), "2.00h");
  EXPECT_EQ(format_duration(-1500), "-1.5s");
}

TEST(Strings, DurationRoundTripHelpers) {
  EXPECT_EQ(seconds(3), 3000);
  EXPECT_EQ(minutes(2), 120'000);
  EXPECT_EQ(hours(1), 3'600'000);
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

}  // namespace
}  // namespace woha

#include "common/stats.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace woha {
namespace {

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValueHasZeroVariance) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(5);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(2.0);
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);  // copy
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(Distribution, QuantilesInterpolate) {
  Distribution d;
  for (double x : {10.0, 20.0, 30.0, 40.0}) d.add(x);
  EXPECT_DOUBLE_EQ(d.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(d.quantile(1.0), 40.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.5), 25.0);
}

TEST(Distribution, CdfCountsInclusive) {
  Distribution d;
  for (double x : {1.0, 2.0, 2.0, 3.0}) d.add(x);
  EXPECT_DOUBLE_EQ(d.cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(2.0), 0.75);
  EXPECT_DOUBLE_EQ(d.cdf(3.0), 1.0);
  EXPECT_DOUBLE_EQ(d.cdf(99.0), 1.0);
}

TEST(Distribution, EmptyQuantileThrows) {
  Distribution d;
  EXPECT_THROW((void)d.quantile(0.5), std::logic_error);
  EXPECT_DOUBLE_EQ(d.cdf(1.0), 0.0);
}

TEST(Distribution, QuantileRejectsOutOfRange) {
  Distribution d;
  d.add(1.0);
  EXPECT_THROW((void)d.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW((void)d.quantile(1.1), std::invalid_argument);
}

TEST(Distribution, CdfPointsMatchScalarCdf) {
  Distribution d;
  for (int i = 1; i <= 100; ++i) d.add(static_cast<double>(i));
  const auto pts = d.cdf_points({10.0, 50.0, 100.0});
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_DOUBLE_EQ(pts[0].second, 0.10);
  EXPECT_DOUBLE_EQ(pts[1].second, 0.50);
  EXPECT_DOUBLE_EQ(pts[2].second, 1.0);
}

TEST(Distribution, MeanMinMax) {
  Distribution d;
  for (double x : {3.0, 1.0, 2.0}) d.add(x);
  EXPECT_DOUBLE_EQ(d.mean(), 2.0);
  EXPECT_DOUBLE_EQ(d.min(), 1.0);
  EXPECT_DOUBLE_EQ(d.max(), 3.0);
}

TEST(LogHistogram, BucketsByPowerOfTen) {
  LogHistogram h(0, 4);  // buckets <10^1 .. <10^4
  h.add(5.0);     // <10^1
  h.add(50.0);    // <10^2
  h.add(500.0);   // <10^3
  h.add(5000.0);  // <10^4
  ASSERT_EQ(h.bucket_count(), 4u);
  for (std::size_t b = 0; b < 4; ++b) EXPECT_EQ(h.count(b), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(LogHistogram, BoundaryGoesToUpperBucket) {
  LogHistogram h(0, 3);
  h.add(10.0);  // exactly 10^1 -> bucket "<10^2"
  EXPECT_EQ(h.count(0), 0u);
  EXPECT_EQ(h.count(1), 1u);
}

TEST(LogHistogram, ClampsOutOfRange) {
  LogHistogram h(1, 3);  // <10^2, <10^3
  h.add(0.5);        // below range -> first bucket
  h.add(1e9);        // above range -> last bucket
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
}

TEST(LogHistogram, Labels) {
  LogHistogram h(0, 2);
  EXPECT_EQ(h.label(0), "<10^1");
  EXPECT_EQ(h.label(1), "<10^2");
}

TEST(LogHistogram, FractionAtLeast) {
  LogHistogram h(0, 4);
  for (int i = 0; i < 99; ++i) h.add(50'000.0);  // clamped to last bucket
  h.add(5.0);
  EXPECT_NEAR(h.fraction_at_least(1), 0.99, 1e-9);
  EXPECT_DOUBLE_EQ(h.fraction_at_least(0), 1.0);
}

TEST(LogHistogram, RejectsEmptyRange) {
  EXPECT_THROW(LogHistogram(3, 3), std::invalid_argument);
  EXPECT_THROW(LogHistogram(3, 2), std::invalid_argument);
}

}  // namespace
}  // namespace woha

#include "common/table.hpp"

#include <gtest/gtest.h>

namespace woha {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer-name", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name         value"), std::string::npos);
  EXPECT_NE(s.find("longer-name  22"), std::string::npos);
  // Separator line under header.
  EXPECT_NE(s.find("------"), std::string::npos);
}

TEST(TextTable, RejectsWidthMismatch) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), std::invalid_argument);
}

TEST(TextTable, RejectsEmptyHeader) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(TextTable, Csv) {
  TextTable t({"x", "y"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "x,y\n1,2\n");
}

TEST(TextTable, NumberFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(std::int64_t{42}), "42");
  EXPECT_EQ(TextTable::percent(0.1234), "12.3%");
  EXPECT_EQ(TextTable::percent(0.5, 0), "50%");
}

TEST(TextTable, NoTrailingSpaces) {
  TextTable t({"a", "b"});
  t.add_row({"x", "y"});
  for (const auto& line : {t.to_string()}) {
    std::size_t pos = 0;
    while ((pos = line.find('\n', pos)) != std::string::npos) {
      if (pos > 0) EXPECT_NE(line[pos - 1], ' ');
      ++pos;
    }
  }
}

}  // namespace
}  // namespace woha

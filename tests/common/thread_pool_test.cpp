#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <latch>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace woha {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> sum{0};
  for (int i = 1; i <= 100; ++i) {
    pool.submit([&sum, i] { sum.fetch_add(i); });
  }
  pool.wait_idle();
  EXPECT_EQ(sum.load(), 5050);
  EXPECT_EQ(pool.tasks_run(), 100u);
}

TEST(ThreadPool, ZeroThreadsThrows) {
  EXPECT_THROW(ThreadPool pool(0), std::invalid_argument);
}

TEST(ThreadPool, ResolveMapsZeroToHardwareConcurrency) {
  EXPECT_GE(ThreadPool::resolve(0), 1u);
  EXPECT_EQ(ThreadPool::resolve(1), 1u);
  EXPECT_EQ(ThreadPool::resolve(7), 7u);
}

TEST(ThreadPool, SizeMatchesRequestedThreads) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      pool.submit([&ran] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ran.fetch_add(1);
      });
    }
    // No wait_idle: the destructor must finish the queue, not drop it.
  }
  EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPool, WaitIdleIsAQuiescencePoint) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.submit([&ran] { ran.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 1);
  // A second batch after quiescence runs too.
  pool.submit([&ran] { ran.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 2);
}

TEST(ThreadPool, AccountsBusyTime) {
  ThreadPool pool(2);
  for (int i = 0; i < 4; ++i) {
    pool.submit([] { std::this_thread::sleep_for(std::chrono::milliseconds(5)); });
  }
  pool.wait_idle();
  EXPECT_GT(pool.busy_seconds(), 0.0);
  EXPECT_EQ(pool.tasks_run(), 4u);
}

// Regression: a throwing task used to skip the occupancy decrement (and
// escape into the worker's thread function, terminating the process). The
// RAII guard must keep accounting exact and the pool serviceable.
TEST(ThreadPool, ThrowingTaskDoesNotWedgeThePool) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&ran, i] {
      ran.fetch_add(1);
      if (i % 2 == 0) throw std::runtime_error("task failure");
    });
  }
  pool.wait_idle();  // must return: the decrement happens on the throw path
  EXPECT_EQ(ran.load(), 8);
  EXPECT_EQ(pool.tasks_run(), 8u);
  EXPECT_EQ(pool.tasks_failed(), 4u);

  // The pool stays serviceable after failures.
  pool.submit([&ran] { ran.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 9);
  EXPECT_EQ(pool.tasks_run(), 9u);
  EXPECT_EQ(pool.tasks_failed(), 4u);
}

TEST(ThreadPool, ThrowingTaskStillAccountsBusyTime) {
  ThreadPool pool(1);
  pool.submit([] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    throw std::runtime_error("late failure");
  });
  pool.wait_idle();
  EXPECT_GT(pool.busy_seconds(), 0.0);
  EXPECT_EQ(pool.tasks_failed(), 1u);
}

TEST(ThreadPool, PerturbedPoolRunsEveryTask) {
  ThreadPool pool(3, SchedulePerturb{/*enabled=*/true, /*seed=*/17});
  std::atomic<int> sum{0};
  for (int i = 1; i <= 100; ++i) {
    pool.submit([&sum, i] { sum.fetch_add(i); });
  }
  pool.wait_idle();
  EXPECT_EQ(sum.load(), 5050);
  EXPECT_EQ(pool.tasks_run(), 100u);
  EXPECT_EQ(pool.tasks_failed(), 0u);
}

// One worker + a pre-loaded queue makes the dequeue order fully seed-driven
// (no racing pickers): the same seed must replay the same order, and at
// least one seed must deviate from FIFO — otherwise the perturbation
// explores nothing.
TEST(ThreadPool, PerturbationIsSeedReplayableAndNonTrivial) {
  const auto run_order = [](SchedulePerturb perturb) {
    std::vector<int> order;
    std::mutex m;
    std::latch release(1);
    std::atomic<bool> started{false};
    ThreadPool pool(1, perturb);
    // Hold the worker, and wait until it has actually dequeued the blocker:
    // only then is the pick sequence over the 12 real tasks seed-driven
    // rather than racing the worker's wake-up.
    pool.submit([&release, &started] {
      started = true;
      release.wait();
    });
    while (!started.load()) std::this_thread::yield();
    for (int i = 0; i < 12; ++i) {
      pool.submit([&order, &m, i] {
        std::lock_guard<std::mutex> lock(m);
        order.push_back(i);
      });
    }
    release.count_down();
    pool.wait_idle();
    return order;
  };

  const auto fifo = run_order(SchedulePerturb{});
  EXPECT_EQ(fifo, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}));

  const auto seed9_a = run_order(SchedulePerturb{true, 9});
  const auto seed9_b = run_order(SchedulePerturb{true, 9});
  EXPECT_EQ(seed9_a, seed9_b) << "same seed must replay the same schedule";
  EXPECT_NE(seed9_a, fifo) << "perturbation must actually reorder";
}

TEST(ThreadPool, TasksRunOnWorkerThreads) {
  ThreadPool pool(2);
  std::mutex m;
  std::set<std::thread::id> ids;
  for (int i = 0; i < 16; ++i) {
    pool.submit([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      std::lock_guard<std::mutex> lock(m);
      ids.insert(std::this_thread::get_id());
    });
  }
  pool.wait_idle();
  EXPECT_FALSE(ids.contains(std::this_thread::get_id()));
  EXPECT_GE(ids.size(), 1u);
  EXPECT_LE(ids.size(), 2u);
}

}  // namespace
}  // namespace woha

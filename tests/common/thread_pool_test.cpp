#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <thread>

namespace woha {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> sum{0};
  for (int i = 1; i <= 100; ++i) {
    pool.submit([&sum, i] { sum.fetch_add(i); });
  }
  pool.wait_idle();
  EXPECT_EQ(sum.load(), 5050);
  EXPECT_EQ(pool.tasks_run(), 100u);
}

TEST(ThreadPool, ZeroThreadsThrows) {
  EXPECT_THROW(ThreadPool pool(0), std::invalid_argument);
}

TEST(ThreadPool, ResolveMapsZeroToHardwareConcurrency) {
  EXPECT_GE(ThreadPool::resolve(0), 1u);
  EXPECT_EQ(ThreadPool::resolve(1), 1u);
  EXPECT_EQ(ThreadPool::resolve(7), 7u);
}

TEST(ThreadPool, SizeMatchesRequestedThreads) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      pool.submit([&ran] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ran.fetch_add(1);
      });
    }
    // No wait_idle: the destructor must finish the queue, not drop it.
  }
  EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPool, WaitIdleIsAQuiescencePoint) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.submit([&ran] { ran.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 1);
  // A second batch after quiescence runs too.
  pool.submit([&ran] { ran.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 2);
}

TEST(ThreadPool, AccountsBusyTime) {
  ThreadPool pool(2);
  for (int i = 0; i < 4; ++i) {
    pool.submit([] { std::this_thread::sleep_for(std::chrono::milliseconds(5)); });
  }
  pool.wait_idle();
  EXPECT_GT(pool.busy_seconds(), 0.0);
  EXPECT_EQ(pool.tasks_run(), 4u);
}

TEST(ThreadPool, TasksRunOnWorkerThreads) {
  ThreadPool pool(2);
  std::mutex m;
  std::set<std::thread::id> ids;
  for (int i = 0; i < 16; ++i) {
    pool.submit([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      std::lock_guard<std::mutex> lock(m);
      ids.insert(std::this_thread::get_id());
    });
  }
  pool.wait_idle();
  EXPECT_FALSE(ids.contains(std::this_thread::get_id()));
  EXPECT_GE(ids.size(), 1u);
  EXPECT_LE(ids.size(), 2u);
}

}  // namespace
}  // namespace woha

// The flat id->record arena backing the engine's attempt table. The tests
// pin the contract the unordered_map swap relies on: exact lookup semantics
// (including dead and trimmed ids), strict id monotonicity, and the
// amortized window trim staying invisible to lookups.
#include "common/dense_id_table.hpp"

#include <gtest/gtest.h>

#include <string>

namespace woha {
namespace {

TEST(DenseIdTable, EmplaceFindTake) {
  DenseIdTable<std::string> table;
  EXPECT_TRUE(table.empty());
  table.emplace(1, "one");
  table.emplace(2, "two");
  table.emplace(3, "three");
  EXPECT_EQ(table.size(), 3u);
  ASSERT_NE(table.find(2), nullptr);
  EXPECT_EQ(*table.find(2), "two");
  EXPECT_EQ(table.at(3), "three");
  EXPECT_TRUE(table.contains(1));

  EXPECT_EQ(table.take(2), "two");
  EXPECT_EQ(table.size(), 2u);
  EXPECT_FALSE(table.contains(2));
  EXPECT_EQ(table.find(2), nullptr);
  EXPECT_THROW(table.at(2), std::out_of_range);
  EXPECT_THROW(table.take(2), std::out_of_range);
  // Neighbours are untouched.
  EXPECT_EQ(table.at(1), "one");
  EXPECT_EQ(table.at(3), "three");
}

TEST(DenseIdTable, UnknownAndOutOfWindowIdsMiss) {
  DenseIdTable<int> table;
  EXPECT_EQ(table.find(0), nullptr);
  EXPECT_EQ(table.find(7), nullptr);
  table.emplace(5, 50);
  EXPECT_EQ(table.find(4), nullptr);   // below the window
  EXPECT_EQ(table.find(6), nullptr);   // above the window
  EXPECT_EQ(*table.find(5), 50);
}

TEST(DenseIdTable, IdGapsCostDeadSlotsButLookUpCorrectly) {
  DenseIdTable<int> table;
  table.emplace(1, 10);
  table.emplace(10, 100);  // gap of 8 dead slots
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(*table.find(1), 10);
  EXPECT_EQ(*table.find(10), 100);
  for (std::uint64_t id = 2; id < 10; ++id) EXPECT_FALSE(table.contains(id));
}

TEST(DenseIdTable, RejectsNonIncreasingIds) {
  DenseIdTable<int> table;
  table.emplace(3, 30);
  EXPECT_THROW(table.emplace(3, 31), std::logic_error);  // reuse
  EXPECT_THROW(table.emplace(2, 20), std::logic_error);  // backwards
  EXPECT_EQ(*table.find(3), 30);                         // table unharmed
}

TEST(DenseIdTable, FullDrainResetsTheWindow) {
  DenseIdTable<int> table;
  for (std::uint64_t id = 1; id <= 8; ++id) {
    table.emplace(id, static_cast<int>(id));
  }
  for (std::uint64_t id = 1; id <= 8; ++id) table.erase(id);
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.window(), 0u);
  // Ids keep climbing after a reset; the base offset must follow.
  table.emplace(100, 1000);
  EXPECT_EQ(*table.find(100), 1000);
  EXPECT_FALSE(table.contains(8));
}

TEST(DenseIdTable, SlidingWindowTrimKeepsLookupsIntact) {
  // FIFO churn like the engine's attempt lifecycle: insert N, erase the
  // oldest, repeat. The dead prefix must be reclaimed (bounded window) and
  // every live id must stay reachable throughout.
  DenseIdTable<std::uint64_t> table;
  constexpr std::uint64_t kTotal = 1000;
  constexpr std::uint64_t kLive = 16;
  for (std::uint64_t id = 1; id <= kTotal; ++id) {
    table.emplace(id, id * 2);
    if (id > kLive) table.erase(id - kLive);
    const std::uint64_t lo = id > kLive ? id - kLive + 1 : 1;
    for (std::uint64_t check = lo; check <= id; ++check) {
      ASSERT_TRUE(table.contains(check)) << "id=" << id << " check=" << check;
      ASSERT_EQ(table.at(check), check * 2);
    }
    ASSERT_EQ(table.size(), id - lo + 1);
    // The trim keeps the backing window near the live span, not the total
    // id space: with 16 live ids the window may lag by at most the trim
    // hysteresis (kMinTrim dead slots plus the half-vector rule).
    ASSERT_LE(table.window(), 2 * 64 + 2 * kLive) << "id=" << id;
  }
  EXPECT_EQ(table.size(), kLive);
}

}  // namespace
}  // namespace woha

#include "common/log.hpp"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

namespace woha {
namespace {

/// Probe whose streaming records that it was evaluated. WOHA_LOG must never
/// evaluate operands (or construct the ostringstream-backed LogLine) for a
/// disabled level — that is the cheap-discard guarantee.
struct Probe {
  int* evaluations;
};

std::ostream& operator<<(std::ostream& os, const Probe& p) {
  ++*p.evaluations;
  return os << "probe";
}

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    previous_level_ = log_level();
    previous_sink_ = set_log_sink(
        [this](LogLevel level, const std::string& component,
               const std::string& message) {
          lines_.push_back({level, component + ": " + message});
        });
  }
  void TearDown() override {
    set_log_sink(std::move(previous_sink_));
    set_log_level(previous_level_);
  }

  std::vector<std::pair<LogLevel, std::string>> lines_;

 private:
  LogLevel previous_level_ = LogLevel::kWarn;
  LogSink previous_sink_;
};

TEST_F(LogTest, DisabledLevelEvaluatesNoOperands) {
  set_log_level(LogLevel::kWarn);
  int evaluations = 0;
  WOHA_LOG(LogLevel::kDebug, "engine") << "x=" << Probe{&evaluations};
  EXPECT_EQ(evaluations, 0);
  EXPECT_TRUE(lines_.empty());
}

TEST_F(LogTest, EnabledLevelEvaluatesOnce) {
  set_log_level(LogLevel::kDebug);
  int evaluations = 0;
  WOHA_LOG(LogLevel::kDebug, "engine") << "x=" << Probe{&evaluations};
  EXPECT_EQ(evaluations, 1);
  ASSERT_EQ(lines_.size(), 1u);
  EXPECT_EQ(lines_[0].first, LogLevel::kDebug);
  EXPECT_EQ(lines_[0].second, "engine: x=probe");
}

TEST_F(LogTest, LevelThresholdIsInclusive) {
  set_log_level(LogLevel::kInfo);
  WOHA_LOG(LogLevel::kInfo, "a") << "at threshold";
  WOHA_LOG(LogLevel::kWarn, "b") << "above";
  WOHA_LOG(LogLevel::kDebug, "c") << "below";
  ASSERT_EQ(lines_.size(), 2u);
  EXPECT_EQ(lines_[0].second, "a: at threshold");
  EXPECT_EQ(lines_[1].second, "b: above");
}

TEST_F(LogTest, OffSilencesEverything) {
  set_log_level(LogLevel::kOff);
  WOHA_LOG(LogLevel::kError, "x") << "even errors";
  EXPECT_TRUE(lines_.empty());
}

TEST_F(LogTest, MacroBindsTightlyInIfElse) {
  set_log_level(LogLevel::kOff);
  bool else_taken = false;
  // Must not trigger -Wdangling-else or steal the else branch.
  if (false)
    WOHA_LOG(LogLevel::kError, "x") << "unreached";
  else
    else_taken = true;
  EXPECT_TRUE(else_taken);
}

TEST_F(LogTest, SinkRestorePlumbing) {
  set_log_level(LogLevel::kInfo);
  std::vector<std::string> captured;
  LogSink mine = set_log_sink(
      [&captured](LogLevel, const std::string&, const std::string& message) {
        captured.push_back(message);
      });
  WOHA_LOG(LogLevel::kInfo, "x") << "to inner sink";
  set_log_sink(std::move(mine));  // restore the fixture's sink
  WOHA_LOG(LogLevel::kInfo, "x") << "to fixture sink";

  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0], "to inner sink");
  ASSERT_EQ(lines_.size(), 1u);
  EXPECT_EQ(lines_[0].second, "x: to fixture sink");
}

}  // namespace
}  // namespace woha

#include "sim/simulation.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace woha::sim {
namespace {

TEST(Simulation, FiresInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulation, SameTickFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulation, ScheduleAfterUsesCurrentTime) {
  Simulation sim;
  SimTime inner_fired = -1;
  sim.schedule_at(100, [&] {
    sim.schedule_after(50, [&] { inner_fired = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(inner_fired, 150);
}

TEST(Simulation, RejectsPastAndNegative) {
  Simulation sim;
  sim.schedule_at(10, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(5, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.schedule_after(-1, [] {}), std::invalid_argument);
}

TEST(Simulation, CancelPreventsFiring) {
  Simulation sim;
  bool fired = false;
  EventHandle h = sim.schedule_at(10, [&] { fired = true; });
  EXPECT_TRUE(h.valid());
  h.cancel();
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulation, CancelAfterFireIsNoop) {
  Simulation sim;
  int count = 0;
  EventHandle h = sim.schedule_at(10, [&] { ++count; });
  sim.run();
  h.cancel();  // must not crash or rewind anything
  EXPECT_EQ(count, 1);
}

TEST(Simulation, PeriodicFiresUntilCancelled) {
  Simulation sim;
  int count = 0;
  EventHandle h = sim.schedule_every(0, 10, [&] { ++count; });
  // A periodic event alone would run forever; cancel from a one-shot.
  sim.schedule_at(35, [&] { h.cancel(); });
  sim.run();
  EXPECT_EQ(count, 4);  // t = 0, 10, 20, 30
}

TEST(Simulation, PeriodicRejectsNonPositivePeriod) {
  Simulation sim;
  EXPECT_THROW(sim.schedule_every(0, 0, [] {}), std::invalid_argument);
}

TEST(Simulation, RunUntilStopsAtHorizon) {
  Simulation sim;
  int fired = 0;
  sim.schedule_at(10, [&] { ++fired; });
  sim.schedule_at(20, [&] { ++fired; });
  sim.run(15);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 10);
  sim.run();  // resume past the horizon
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, StepReturnsFalseWhenEmpty) {
  Simulation sim;
  EXPECT_FALSE(sim.step());
  sim.schedule_at(1, [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulation, EventsFiredCountsOnlyRealFirings) {
  Simulation sim;
  EventHandle h = sim.schedule_at(1, [] {});
  sim.schedule_at(2, [] {});
  h.cancel();
  sim.run();
  EXPECT_EQ(sim.events_fired(), 1u);
}

TEST(Simulation, RequestStopEndsRun) {
  Simulation sim;
  int fired = 0;
  sim.schedule_at(1, [&] {
    ++fired;
    sim.request_stop();
  });
  sim.schedule_at(2, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
}

TEST(Simulation, EventCanScheduleManyDescendants) {
  // A small chain-reaction workload; also guards against iterator
  // invalidation in the queue when callbacks push new events.
  Simulation sim;
  int fired = 0;
  std::function<void(int)> spawn = [&](int depth) {
    ++fired;
    if (depth < 10) {
      sim.schedule_after(1, [&, depth] { spawn(depth + 1); });
      sim.schedule_after(2, [&, depth] { spawn(depth + 1); });
    }
  };
  sim.schedule_at(0, [&] { spawn(0); });
  sim.run();
  EXPECT_EQ(fired, (1 << 11) - 1);  // full binary tree of depth 10
}

}  // namespace
}  // namespace woha::sim

#include "workflow/workflow.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "workflow/topology.hpp"

namespace woha::wf {
namespace {

WorkflowSpec two_job_chain() {
  WorkflowSpec spec;
  spec.name = "chain";
  spec.jobs.resize(2);
  spec.jobs[0].name = "a";
  spec.jobs[1].name = "b";
  spec.jobs[1].prerequisites = {0};
  return spec;
}

TEST(Workflow, ValidSpecPasses) {
  const auto spec = two_job_chain();
  EXPECT_NO_THROW(validate(spec));
  EXPECT_TRUE(is_valid(spec));
}

TEST(Workflow, RejectsEmptyWorkflow) {
  WorkflowSpec spec;
  EXPECT_THROW(validate(spec), std::invalid_argument);
}

TEST(Workflow, RejectsZeroTaskJob) {
  auto spec = two_job_chain();
  spec.jobs[0].num_maps = 0;
  spec.jobs[0].num_reduces = 0;
  EXPECT_THROW(validate(spec), std::invalid_argument);
}

TEST(Workflow, RejectsNonPositiveDurations) {
  auto spec = two_job_chain();
  spec.jobs[0].map_duration = 0;
  EXPECT_THROW(validate(spec), std::invalid_argument);
  spec = two_job_chain();
  spec.jobs[0].num_reduces = 2;
  spec.jobs[0].reduce_duration = -5;
  EXPECT_THROW(validate(spec), std::invalid_argument);
}

TEST(Workflow, RejectsSelfDependency) {
  auto spec = two_job_chain();
  spec.jobs[0].prerequisites = {0};
  EXPECT_THROW(validate(spec), std::invalid_argument);
}

TEST(Workflow, RejectsOutOfRangePrerequisite) {
  auto spec = two_job_chain();
  spec.jobs[1].prerequisites = {5};
  EXPECT_THROW(validate(spec), std::invalid_argument);
}

TEST(Workflow, RejectsCycle) {
  auto spec = two_job_chain();
  spec.jobs[0].prerequisites = {1};  // a <-> b
  EXPECT_THROW(validate(spec), std::invalid_argument);
  EXPECT_FALSE(is_valid(spec));
}

TEST(Workflow, RejectsLongerCycle) {
  WorkflowSpec spec;
  spec.jobs.resize(3);
  spec.jobs[0].name = "a";
  spec.jobs[1].name = "b";
  spec.jobs[2].name = "c";
  spec.jobs[1].prerequisites = {0};
  spec.jobs[2].prerequisites = {1};
  spec.jobs[0].prerequisites = {2};
  EXPECT_THROW(validate(spec), std::invalid_argument);
}

TEST(Workflow, RejectsNegativeDeadline) {
  auto spec = two_job_chain();
  spec.relative_deadline = -1;
  EXPECT_THROW(validate(spec), std::invalid_argument);
}

TEST(Workflow, DeadlineComputation) {
  auto spec = two_job_chain();
  spec.submit_time = 1000;
  spec.relative_deadline = 5000;
  EXPECT_EQ(spec.deadline(), 6000);
  spec.relative_deadline = 0;
  EXPECT_EQ(spec.deadline(), kTimeInfinity);
}

TEST(Workflow, TotalTasksSumsJobs) {
  auto spec = two_job_chain();
  spec.jobs[0].num_maps = 3;
  spec.jobs[0].num_reduces = 2;
  spec.jobs[1].num_maps = 1;
  spec.jobs[1].num_reduces = 0;
  EXPECT_EQ(spec.total_tasks(), 6u);
  EXPECT_EQ(spec.jobs[0].total_tasks(), 5u);
}

TEST(Workflow, DependentsInvertPrerequisites) {
  const auto spec = diamond(3);
  const auto deps = dependents(spec);
  // source (0) feeds the three branches.
  EXPECT_EQ(deps[0], (std::vector<std::uint32_t>{1, 2, 3}));
  // each branch feeds the sink (4).
  for (std::uint32_t b = 1; b <= 3; ++b) {
    EXPECT_EQ(deps[b], (std::vector<std::uint32_t>{4}));
  }
  EXPECT_TRUE(deps[4].empty());
}

TEST(Workflow, TopologicalOrderRespectsEdges) {
  const auto spec = paper_fig7_topology();
  const auto order = topological_order(spec);
  ASSERT_EQ(order.size(), spec.jobs.size());
  std::vector<std::uint32_t> position(order.size());
  for (std::uint32_t pos = 0; pos < order.size(); ++pos) position[order[pos]] = pos;
  for (std::uint32_t j = 0; j < spec.jobs.size(); ++j) {
    for (std::uint32_t p : spec.jobs[j].prerequisites) {
      EXPECT_LT(position[p], position[j]);
    }
  }
  // It is a permutation.
  std::set<std::uint32_t> unique(order.begin(), order.end());
  EXPECT_EQ(unique.size(), order.size());
}

TEST(Workflow, InitialJobsHaveNoPrereqs) {
  const auto spec = paper_fig7_topology();
  const auto init = initial_jobs(spec);
  ASSERT_FALSE(init.empty());
  for (std::uint32_t j : init) EXPECT_TRUE(spec.jobs[j].prerequisites.empty());
  // Everything else has prerequisites.
  std::size_t with_prereqs = 0;
  for (const auto& job : spec.jobs) with_prereqs += !job.prerequisites.empty();
  EXPECT_EQ(with_prereqs + init.size(), spec.jobs.size());
}

TEST(Workflow, SerialLength) {
  JobSpec job;
  job.num_maps = 5;
  job.num_reduces = 2;
  job.map_duration = 100;
  job.reduce_duration = 300;
  EXPECT_EQ(job.serial_length(), 400);
  job.num_reduces = 0;
  EXPECT_EQ(job.serial_length(), 100);
}

}  // namespace
}  // namespace woha::wf

#include <gtest/gtest.h>

#include "workflow/dot.hpp"
#include "workflow/recurrence.hpp"
#include "workflow/topology.hpp"

namespace woha::wf {
namespace {

TEST(Dot, EmitsNodesAndEdges) {
  const auto spec = diamond(2);  // 0 -> {1,2} -> 3
  const std::string dot = to_dot(spec);
  EXPECT_NE(dot.find("digraph \"diamond-2\""), std::string::npos);
  EXPECT_NE(dot.find("j0 [label=\"source"), std::string::npos);
  EXPECT_NE(dot.find("j0 -> j1;"), std::string::npos);
  EXPECT_NE(dot.find("j0 -> j2;"), std::string::npos);
  EXPECT_NE(dot.find("j1 -> j3;"), std::string::npos);
  EXPECT_NE(dot.find("j2 -> j3;"), std::string::npos);
  EXPECT_NE(dot.find("rankdir=LR"), std::string::npos);
}

TEST(Dot, SizesOptional) {
  DotOptions options;
  options.include_sizes = false;
  options.left_to_right = false;
  const auto spec = chain(2);
  const std::string dot = to_dot(spec, options);
  EXPECT_EQ(dot.find("rankdir"), std::string::npos);
  EXPECT_EQ(dot.find(" x "), std::string::npos);  // no "10m x 60s" labels
}

TEST(Dot, EscapesQuotesInNames) {
  WorkflowSpec spec;
  spec.name = "has \"quotes\"";
  JobSpec job;
  job.name = "job \"q\"";
  spec.jobs.push_back(job);
  const std::string dot = to_dot(spec);
  EXPECT_NE(dot.find("digraph \"has \\\"quotes\\\"\""), std::string::npos);
}

TEST(Dot, EdgeCountMatchesPrerequisites) {
  const auto spec = paper_fig7_topology();
  const std::string dot = to_dot(spec);
  std::size_t edges = 0, pos = 0;
  while ((pos = dot.find(" -> ", pos)) != std::string::npos) {
    ++edges;
    pos += 4;
  }
  std::size_t expected = 0;
  for (const auto& job : spec.jobs) expected += job.prerequisites.size();
  EXPECT_EQ(edges, expected);
}

TEST(Recurrence, ExpandsWithPeriodAndTags) {
  auto base = chain(2);
  base.name = "etl";
  base.submit_time = minutes(5);
  base.relative_deadline = minutes(60);
  RecurrenceSpec rec;
  rec.count = 3;
  rec.period = minutes(20);
  const auto instances = expand_recurrences(base, rec);
  ASSERT_EQ(instances.size(), 3u);
  EXPECT_EQ(instances[0].submit_time, minutes(5));
  EXPECT_EQ(instances[1].submit_time, minutes(25));
  EXPECT_EQ(instances[2].submit_time, minutes(45));
  EXPECT_EQ(instances[0].name, "etl-r1");
  EXPECT_EQ(instances[2].name, "etl-r3");
  for (const auto& inst : instances) {
    EXPECT_EQ(inst.relative_deadline, minutes(60));
    EXPECT_EQ(inst.jobs.size(), base.jobs.size());
  }
}

TEST(Recurrence, UntaggedNamesStayIdentical) {
  RecurrenceSpec rec;
  rec.count = 2;
  rec.period = minutes(1);
  rec.tag_names = false;
  const auto instances = expand_recurrences(chain(1), rec);
  EXPECT_EQ(instances[0].name, instances[1].name);
}

TEST(Recurrence, SingleInstanceNeedsNoPeriod) {
  RecurrenceSpec rec;
  rec.count = 1;
  rec.period = 0;
  EXPECT_EQ(expand_recurrences(chain(1), rec).size(), 1u);
}

TEST(Recurrence, RejectsBadParameters) {
  RecurrenceSpec rec;
  rec.count = 0;
  EXPECT_THROW((void)expand_recurrences(chain(1), rec), std::invalid_argument);
  rec.count = 2;
  rec.period = 0;
  EXPECT_THROW((void)expand_recurrences(chain(1), rec), std::invalid_argument);
}

}  // namespace
}  // namespace woha::wf

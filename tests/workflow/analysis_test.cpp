#include "workflow/analysis.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "workflow/topology.hpp"

namespace woha::wf {
namespace {

JobShape unit_shape() {
  JobShape s;
  s.num_maps = 1;
  s.num_reduces = 1;
  s.map_duration = 100;
  s.reduce_duration = 200;
  return s;
}

TEST(Analysis, LevelsOnChain) {
  // chain of 4: sink is level 0, source level 3.
  const auto spec = chain(4, unit_shape());
  const auto levels = job_levels(spec);
  EXPECT_EQ(levels, (std::vector<std::uint32_t>{3, 2, 1, 0}));
}

TEST(Analysis, LevelsOnDiamond) {
  const auto spec = diamond(3, unit_shape());
  const auto levels = job_levels(spec);
  EXPECT_EQ(levels[0], 2u);  // source
  for (int b = 1; b <= 3; ++b) EXPECT_EQ(levels[b], 1u);
  EXPECT_EQ(levels[4], 0u);  // sink
}

TEST(Analysis, LevelsDefinitionHolds) {
  // For any job at level i, every dependent is at level < i and at least
  // one dependent is at level i-1 (the paper's HLF definition).
  const auto spec = paper_fig7_topology();
  const auto levels = job_levels(spec);
  const auto deps = dependents(spec);
  for (std::uint32_t j = 0; j < spec.jobs.size(); ++j) {
    if (deps[j].empty()) {
      EXPECT_EQ(levels[j], 0u);
      continue;
    }
    bool has_adjacent = false;
    for (std::uint32_t d : deps[j]) {
      EXPECT_LT(levels[d], levels[j]);
      has_adjacent |= (levels[d] == levels[j] - 1);
    }
    EXPECT_TRUE(has_adjacent);
  }
}

TEST(Analysis, DownstreamPathOnChain) {
  const auto spec = chain(3, unit_shape());  // serial length 300 per job
  const auto len = downstream_path_length(spec);
  EXPECT_EQ(len, (std::vector<Duration>{900, 600, 300}));
}

TEST(Analysis, DownstreamPathTakesLongestBranch) {
  // source -> {short, long} -> (no sink): path through the longer branch.
  WorkflowSpec spec;
  spec.jobs.resize(3);
  spec.jobs[0].name = "src";
  spec.jobs[0].num_maps = 1;
  spec.jobs[0].map_duration = 10;
  spec.jobs[1].name = "short";
  spec.jobs[1].num_maps = 1;
  spec.jobs[1].map_duration = 5;
  spec.jobs[1].prerequisites = {0};
  spec.jobs[2].name = "long";
  spec.jobs[2].num_maps = 1;
  spec.jobs[2].map_duration = 500;
  spec.jobs[2].prerequisites = {0};
  const auto len = downstream_path_length(spec);
  EXPECT_EQ(len[0], 510);
  EXPECT_EQ(len[1], 5);
  EXPECT_EQ(len[2], 500);
}

TEST(Analysis, DependentCounts) {
  const auto spec = diamond(4, unit_shape());
  const auto counts = dependent_counts(spec);
  EXPECT_EQ(counts[0], 4u);
  for (int b = 1; b <= 4; ++b) EXPECT_EQ(counts[b], 1u);
  EXPECT_EQ(counts[5], 0u);
}

TEST(Analysis, CriticalPathOnChainEqualsSum) {
  const auto spec = chain(5, unit_shape());
  EXPECT_EQ(critical_path_length(spec), 5 * 300);
}

TEST(Analysis, CriticalPathOnDiamond) {
  const auto spec = diamond(3, unit_shape());
  EXPECT_EQ(critical_path_length(spec), 3 * 300);  // source + branch + sink
}

TEST(Analysis, TotalWork) {
  JobShape s;
  s.num_maps = 4;
  s.num_reduces = 2;
  s.map_duration = 10;
  s.reduce_duration = 100;
  const auto spec = chain(2, s);
  EXPECT_EQ(total_work(spec), 2 * (4 * 10 + 2 * 100));
}

TEST(Analysis, MaxParallelTasksIsUpperBound) {
  JobShape s;
  s.num_maps = 7;
  s.num_reduces = 2;
  const auto spec = diamond(3, s);
  // Never less than the widest single job, never less than 1.
  EXPECT_GE(max_parallel_tasks(spec), 7u);
  EXPECT_GE(max_parallel_tasks(chain(1, s)), 7u);
}

TEST(Analysis, CyclicGraphThrows) {
  WorkflowSpec spec;
  spec.jobs.resize(2);
  spec.jobs[0].name = "a";
  spec.jobs[0].prerequisites = {1};
  spec.jobs[1].name = "b";
  spec.jobs[1].prerequisites = {0};
  EXPECT_THROW((void)job_levels(spec), std::invalid_argument);
  EXPECT_THROW((void)downstream_path_length(spec), std::invalid_argument);
}

}  // namespace
}  // namespace woha::wf

#include "workflow/config.hpp"

#include <gtest/gtest.h>

#include "workflow/topology.hpp"

namespace woha::wf {
namespace {

constexpr const char* kSample = R"(<?xml version="1.0"?>
<workflow name="user-log-analysis" deadline="80min" submit="5min">
  <job name="fetch" maps="40" reduces="6" map-duration="80s" reduce-duration="150s"/>
  <job name="parse" maps="20" reduces="4">
    <depends on="fetch"/>
  </job>
  <job name="report" maps="8" reduces="2" map-duration="50s" reduce-duration="120s">
    <depends on="parse"/>
    <depends on="fetch"/>
  </job>
</workflow>)";

TEST(Config, LoadsFullSchema) {
  const auto spec = load_workflow_string(kSample);
  EXPECT_EQ(spec.name, "user-log-analysis");
  EXPECT_EQ(spec.relative_deadline, minutes(80));
  EXPECT_EQ(spec.submit_time, minutes(5));
  ASSERT_EQ(spec.jobs.size(), 3u);

  EXPECT_EQ(spec.jobs[0].name, "fetch");
  EXPECT_EQ(spec.jobs[0].num_maps, 40u);
  EXPECT_EQ(spec.jobs[0].num_reduces, 6u);
  EXPECT_EQ(spec.jobs[0].map_duration, seconds(80));
  EXPECT_EQ(spec.jobs[0].reduce_duration, seconds(150));
  EXPECT_TRUE(spec.jobs[0].prerequisites.empty());

  // Defaults applied when attributes omitted.
  EXPECT_EQ(spec.jobs[1].map_duration, seconds(60));
  EXPECT_EQ(spec.jobs[1].reduce_duration, seconds(120));
  EXPECT_EQ(spec.jobs[1].prerequisites, (std::vector<std::uint32_t>{0}));

  EXPECT_EQ(spec.jobs[2].prerequisites, (std::vector<std::uint32_t>{1, 0}));
}

TEST(Config, RoundTripPreservesSpec) {
  auto original = paper_fig7_topology();
  original.relative_deadline = minutes(80);
  original.submit_time = minutes(10);
  const auto reloaded = load_workflow_string(save_workflow(original));
  EXPECT_EQ(reloaded.name, original.name);
  EXPECT_EQ(reloaded.relative_deadline, original.relative_deadline);
  EXPECT_EQ(reloaded.submit_time, original.submit_time);
  ASSERT_EQ(reloaded.jobs.size(), original.jobs.size());
  for (std::size_t j = 0; j < original.jobs.size(); ++j) {
    EXPECT_EQ(reloaded.jobs[j].name, original.jobs[j].name);
    EXPECT_EQ(reloaded.jobs[j].num_maps, original.jobs[j].num_maps);
    EXPECT_EQ(reloaded.jobs[j].num_reduces, original.jobs[j].num_reduces);
    EXPECT_EQ(reloaded.jobs[j].map_duration, original.jobs[j].map_duration);
    EXPECT_EQ(reloaded.jobs[j].reduce_duration, original.jobs[j].reduce_duration);
    // Order of <depends> children preserves prerequisite order.
    EXPECT_EQ(reloaded.jobs[j].prerequisites, original.jobs[j].prerequisites);
  }
}

TEST(Config, RejectsWrongRootElement) {
  EXPECT_THROW((void)load_workflow_string("<jobs/>"), std::invalid_argument);
}

TEST(Config, RejectsNoJobs) {
  EXPECT_THROW((void)load_workflow_string("<workflow name='w'/>"),
               std::invalid_argument);
}

TEST(Config, RejectsDuplicateJobNames) {
  EXPECT_THROW((void)load_workflow_string(
                   "<workflow><job name='a'/><job name='a'/></workflow>"),
               std::invalid_argument);
}

TEST(Config, RejectsUnknownDependency) {
  EXPECT_THROW((void)load_workflow_string(
                   "<workflow><job name='a'><depends on='ghost'/></job></workflow>"),
               std::invalid_argument);
}

TEST(Config, RejectsCyclicConfig) {
  EXPECT_THROW(
      (void)load_workflow_string("<workflow>"
                                 "<job name='a'><depends on='b'/></job>"
                                 "<job name='b'><depends on='a'/></job>"
                                 "</workflow>"),
      std::invalid_argument);
}

TEST(Config, JobNameRequired) {
  EXPECT_THROW((void)load_workflow_string("<workflow><job maps='1'/></workflow>"),
               xml::XmlError);
}

TEST(Config, UnnamedWorkflowGetsDefaultName) {
  const auto spec = load_workflow_string("<workflow><job name='a'/></workflow>");
  EXPECT_EQ(spec.name, "unnamed-workflow");
  EXPECT_EQ(spec.relative_deadline, 0);
  EXPECT_EQ(spec.deadline(), kTimeInfinity);
}

}  // namespace
}  // namespace woha::wf

#include "workflow/topology.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "workflow/analysis.hpp"

namespace woha::wf {
namespace {

TEST(Topology, ChainShape) {
  const auto spec = chain(5);
  ASSERT_EQ(spec.jobs.size(), 5u);
  EXPECT_TRUE(spec.jobs[0].prerequisites.empty());
  for (std::uint32_t j = 1; j < 5; ++j) {
    EXPECT_EQ(spec.jobs[j].prerequisites, (std::vector<std::uint32_t>{j - 1}));
  }
  EXPECT_NO_THROW(validate(spec));
}

TEST(Topology, ChainRejectsZeroLength) {
  EXPECT_THROW((void)chain(0), std::invalid_argument);
}

TEST(Topology, DiamondShape) {
  const auto spec = diamond(4);
  ASSERT_EQ(spec.jobs.size(), 6u);
  EXPECT_EQ(initial_jobs(spec), (std::vector<std::uint32_t>{0}));
  EXPECT_EQ(spec.jobs[5].prerequisites.size(), 4u);
}

TEST(Topology, FanInShape) {
  const auto spec = fan_in(3);
  ASSERT_EQ(spec.jobs.size(), 4u);
  EXPECT_EQ(initial_jobs(spec).size(), 3u);
  EXPECT_EQ(spec.jobs[3].prerequisites.size(), 3u);
}

TEST(Topology, Fig2WorkflowMatchesPaper) {
  const auto spec = fig2_two_job_workflow(minutes(1));
  ASSERT_EQ(spec.jobs.size(), 2u);
  for (const auto& job : spec.jobs) {
    EXPECT_EQ(job.num_maps, 3u);
    EXPECT_EQ(job.num_reduces, 3u);
    EXPECT_EQ(job.map_duration, minutes(1));
    EXPECT_EQ(job.reduce_duration, minutes(1));
  }
  EXPECT_EQ(spec.jobs[1].prerequisites, (std::vector<std::uint32_t>{0}));
}

TEST(Topology, Fig7Has33JobsIn7Levels) {
  const auto spec = paper_fig7_topology();
  EXPECT_EQ(spec.jobs.size(), 33u);
  const auto levels = job_levels(spec);
  const auto max_level = *std::max_element(levels.begin(), levels.end());
  EXPECT_EQ(max_level, 6u);  // 7 layers
  EXPECT_EQ(initial_jobs(spec).size(), 3u);  // the 3 ingest jobs
  EXPECT_NO_THROW(validate(spec));
}

TEST(Topology, Fig7IsDeterministic) {
  const auto a = paper_fig7_topology();
  const auto b = paper_fig7_topology();
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t j = 0; j < a.jobs.size(); ++j) {
    EXPECT_EQ(a.jobs[j].name, b.jobs[j].name);
    EXPECT_EQ(a.jobs[j].prerequisites, b.jobs[j].prerequisites);
    EXPECT_EQ(a.jobs[j].num_maps, b.jobs[j].num_maps);
  }
}

class RandomDagProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomDagProperty, AlwaysValidAndConnectedLayers) {
  Rng rng(GetParam());
  RandomDagParams params;
  params.num_jobs = static_cast<std::uint32_t>(rng.uniform_int(1, 40));
  params.num_layers = static_cast<std::uint32_t>(rng.uniform_int(1, 6));
  params.max_parents = static_cast<std::uint32_t>(rng.uniform_int(1, 4));
  const auto spec = random_dag(rng, params);
  EXPECT_EQ(spec.jobs.size(), params.num_jobs);
  EXPECT_NO_THROW(validate(spec));
  for (const auto& job : spec.jobs) {
    EXPECT_GE(job.num_maps + job.num_reduces, 1u);
    EXPECT_LE(job.prerequisites.size(), params.max_parents);
    // Prerequisites are sorted and unique.
    EXPECT_TRUE(std::is_sorted(job.prerequisites.begin(), job.prerequisites.end()));
    EXPECT_TRUE(std::adjacent_find(job.prerequisites.begin(),
                                   job.prerequisites.end()) ==
                job.prerequisites.end());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDagProperty,
                         ::testing::Range<std::uint64_t>(1, 33));

TEST(Topology, RandomDagDeterministicPerSeed) {
  RandomDagParams params;
  Rng r1(99), r2(99);
  const auto a = random_dag(r1, params);
  const auto b = random_dag(r2, params);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t j = 0; j < a.jobs.size(); ++j) {
    EXPECT_EQ(a.jobs[j].prerequisites, b.jobs[j].prerequisites);
    EXPECT_EQ(a.jobs[j].num_maps, b.jobs[j].num_maps);
    EXPECT_EQ(a.jobs[j].map_duration, b.jobs[j].map_duration);
  }
}

}  // namespace
}  // namespace woha::wf

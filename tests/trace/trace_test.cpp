#include <gtest/gtest.h>

#include <algorithm>

#include "common/stats.hpp"
#include "trace/deadlines.hpp"
#include "trace/paper_workloads.hpp"
#include "trace/yahoo_like.hpp"
#include "workflow/analysis.hpp"

namespace woha::trace {
namespace {

TEST(YahooTrace, MapperDurationMarginalMatchesFig5) {
  // "most mappers finish between 10s to 100s" (paper Fig. 5a).
  Distribution d;
  for (const auto& job : sample_jobs(1, 20'000)) {
    d.add(static_cast<double>(job.map_duration));
  }
  const double in_band = d.cdf(100'000.0) - d.cdf(10'000.0);
  EXPECT_GT(in_band, 0.85);
}

TEST(YahooTrace, ReducerDurationMarginalMatchesFig5) {
  // ">50% of reducers take >100s, ~10% take >1000s".
  Distribution d;
  for (const auto& job : sample_jobs(2, 40'000)) {
    if (job.num_reduces == 0) continue;
    d.add(static_cast<double>(job.reduce_duration));
  }
  const double over_100s = 1.0 - d.cdf(100'000.0);
  const double over_1000s = 1.0 - d.cdf(1'000'000.0);
  EXPECT_GT(over_100s, 0.40);
  EXPECT_LT(over_100s, 0.65);
  EXPECT_GT(over_1000s, 0.05);
  EXPECT_LT(over_1000s, 0.16);
}

TEST(YahooTrace, MapCountMarginalMatchesFig6) {
  // "~30% of jobs have more than 100 mappers".
  Distribution d;
  for (const auto& job : sample_jobs(3, 40'000)) {
    d.add(static_cast<double>(job.num_maps));
  }
  const double over_100 = 1.0 - d.cdf(100.0);
  EXPECT_GT(over_100, 0.22);
  EXPECT_LT(over_100, 0.38);
}

TEST(YahooTrace, ReduceCountMarginalMatchesFig6) {
  // ">60% of jobs have less than 10 reducers" (counting map-only jobs,
  // which have zero).
  std::size_t total = 0, under_10 = 0;
  for (const auto& job : sample_jobs(4, 40'000)) {
    ++total;
    if (job.num_reduces < 10) ++under_10;
  }
  const double frac = static_cast<double>(under_10) / static_cast<double>(total);
  EXPECT_GT(frac, 0.60);
  EXPECT_LT(frac, 0.85);
}

TEST(YahooTrace, MappersOutnumberReducersAndRunShorter) {
  // Fig. 5(b)/6(b) directionality.
  double count_ratio_sum = 0.0;
  double dur_ratio_sum = 0.0;
  std::size_t n = 0;
  for (const auto& job : sample_jobs(5, 20'000)) {
    if (job.num_reduces == 0) continue;
    count_ratio_sum += static_cast<double>(job.num_maps) / job.num_reduces;
    dur_ratio_sum +=
        static_cast<double>(job.reduce_duration) / static_cast<double>(job.map_duration);
    ++n;
  }
  EXPECT_GT(count_ratio_sum / static_cast<double>(n), 2.0);
  EXPECT_GT(dur_ratio_sum / static_cast<double>(n), 2.0);
}

TEST(YahooTrace, DeterministicPerSeed) {
  const auto a = sample_jobs(9, 100);
  const auto b = sample_jobs(9, 100);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].num_maps, b[i].num_maps);
    EXPECT_EQ(a[i].map_duration, b[i].map_duration);
  }
  const auto c = sample_jobs(10, 100);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    any_diff |= (a[i].num_maps != c[i].num_maps);
  }
  EXPECT_TRUE(any_diff);
}

TEST(YahooTrace, WorkflowArrangementMatchesPaperWithSingletons) {
  WorkflowTraceParams params;
  params.drop_singletons = false;
  const auto workflows = yahoo_like_workflows(7, params);
  EXPECT_EQ(workflows.size(), 61u);
  std::size_t jobs = 0, singletons = 0, largest = 0;
  for (const auto& w : workflows) {
    jobs += w.jobs.size();
    singletons += w.jobs.size() == 1;
    largest = std::max(largest, w.jobs.size());
  }
  EXPECT_EQ(jobs, 180u);
  EXPECT_EQ(singletons, 15u);
  EXPECT_EQ(largest, 12u);
}

TEST(YahooTrace, SingletonsDroppedForDeadlineExperiments) {
  const auto workflows = yahoo_like_workflows(7, {});
  EXPECT_EQ(workflows.size(), 46u);
  std::size_t jobs = 0;
  for (const auto& w : workflows) {
    jobs += w.jobs.size();
    EXPECT_GE(w.jobs.size(), 2u);
    EXPECT_NO_THROW(wf::validate(w));
  }
  EXPECT_EQ(jobs, 165u);
}

TEST(YahooTrace, ExperimentCapsApplied) {
  WorkflowTraceParams params;
  params.experiment_map_count_max = 50;
  params.experiment_reduce_count_max = 10;
  for (const auto& w : yahoo_like_workflows(11, params)) {
    for (const auto& job : w.jobs) {
      EXPECT_LE(job.num_maps, 50u);
      EXPECT_LE(job.num_reduces, 10u);
    }
  }
}

TEST(Deadlines, AssignsPositiveFeasibleDeadlines) {
  auto workflows = yahoo_like_workflows(13, {});
  DeadlinePolicy policy;
  assign_deadlines(workflows, 99, policy);
  for (const auto& w : workflows) {
    EXPECT_GT(w.relative_deadline, 0);
    EXPECT_GE(w.submit_time, 0);
    EXPECT_LE(w.submit_time, policy.arrival_window);
    // Slack >= 1.3 guarantees the deadline exceeds the reference makespan,
    // hence also the critical path.
    EXPECT_GT(w.relative_deadline, wf::critical_path_length(w));
  }
}

TEST(Deadlines, DeterministicPerSeed) {
  auto a = yahoo_like_workflows(13, {});
  auto b = yahoo_like_workflows(13, {});
  assign_deadlines(a, 5);
  assign_deadlines(b, 5);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].relative_deadline, b[i].relative_deadline);
    EXPECT_EQ(a[i].submit_time, b[i].submit_time);
  }
}

TEST(PaperWorkloads, Fig2Scenario) {
  const auto scenario = fig2_scenario(minutes(1));
  ASSERT_EQ(scenario.size(), 3u);
  EXPECT_EQ(scenario[0].relative_deadline, minutes(9));
  EXPECT_EQ(scenario[1].relative_deadline, minutes(9));
  EXPECT_EQ(scenario[2].relative_deadline, minutes(50));
  for (const auto& w : scenario) {
    EXPECT_EQ(w.submit_time, 0);
    EXPECT_EQ(w.jobs.size(), 2u);
  }
}

TEST(PaperWorkloads, Fig11Scenario) {
  const auto scenario = fig11_scenario();
  ASSERT_EQ(scenario.size(), 3u);
  // "workflows with larger release time have to meet earlier deadline".
  EXPECT_EQ(scenario[0].submit_time, 0);
  EXPECT_EQ(scenario[1].submit_time, minutes(5));
  EXPECT_EQ(scenario[2].submit_time, minutes(10));
  EXPECT_EQ(scenario[0].relative_deadline, minutes(80));
  EXPECT_EQ(scenario[1].relative_deadline, minutes(70));
  EXPECT_EQ(scenario[2].relative_deadline, minutes(60));
  for (const auto& w : scenario) EXPECT_EQ(w.jobs.size(), 33u);
}

TEST(PaperWorkloads, Fig12ScenarioRecurs) {
  const auto scenario = fig12_scenario(3, minutes(30));
  EXPECT_EQ(scenario.size(), 9u);
  // Instances are grouped per base workflow: W-1 r1..r3, W-2 r1..r3, ...
  EXPECT_EQ(scenario[0].submit_time, 0);
  EXPECT_EQ(scenario[1].submit_time, minutes(30));
  EXPECT_EQ(scenario[3].submit_time, minutes(5));   // W-2 first instance
  EXPECT_EQ(scenario[8].submit_time, minutes(70));  // W-3 third: 10 + 60
  EXPECT_EQ(scenario[1].name, "W-1-r2");
}

TEST(PaperWorkloads, Fig8TraceReady) {
  const auto workflows = fig8_trace(42);
  EXPECT_EQ(workflows.size(), 46u);
  for (const auto& w : workflows) {
    EXPECT_GT(w.relative_deadline, 0);
  }
}

}  // namespace
}  // namespace woha::trace

// Open-loop arrival generators (trace/arrivals.hpp): determinism, ordering,
// rho calibration, and config validation — plus regression coverage for the
// degenerate DeadlinePolicy shapes the overload experiments lean on.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "trace/arrivals.hpp"
#include "trace/deadlines.hpp"
#include "workflow/topology.hpp"

namespace woha::trace {
namespace {

std::vector<wf::WorkflowSpec> uniform_workload(std::uint32_t n) {
  std::vector<wf::WorkflowSpec> workflows;
  workflows.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    auto spec = wf::diamond(3);
    spec.name = "wf" + std::to_string(i);
    spec.relative_deadline = minutes(30);
    workflows.push_back(std::move(spec));
  }
  return workflows;
}

ArrivalConfig config_for(ArrivalShape shape, double rho = 0.9) {
  ArrivalConfig config;
  config.shape = shape;
  config.rho = rho;
  config.cluster_slots = 24;
  return config;
}

class ArrivalShapes : public ::testing::TestWithParam<ArrivalShape> {};

TEST_P(ArrivalShapes, SameSeedSameTimes) {
  auto a = uniform_workload(64);
  auto b = uniform_workload(64);
  assign_open_loop_arrivals(a, 7, config_for(GetParam()));
  assign_open_loop_arrivals(b, 7, config_for(GetParam()));
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].submit_time, b[i].submit_time) << "workflow " << i;
  }
}

TEST_P(ArrivalShapes, DifferentSeedDifferentTimes) {
  auto a = uniform_workload(64);
  auto b = uniform_workload(64);
  assign_open_loop_arrivals(a, 7, config_for(GetParam()));
  assign_open_loop_arrivals(b, 8, config_for(GetParam()));
  std::size_t differing = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    differing += a[i].submit_time != b[i].submit_time;
  }
  EXPECT_GT(differing, a.size() / 2);
}

TEST_P(ArrivalShapes, SubmitTimesNondecreasing) {
  auto workflows = uniform_workload(256);
  assign_open_loop_arrivals(workflows, 11, config_for(GetParam()));
  for (std::size_t i = 1; i < workflows.size(); ++i) {
    EXPECT_GE(workflows[i].submit_time, workflows[i - 1].submit_time)
        << "workflow " << i;
  }
}

TEST_P(ArrivalShapes, DeadlinesUntouched) {
  auto workflows = uniform_workload(16);
  assign_open_loop_arrivals(workflows, 11, config_for(GetParam()));
  for (const auto& wf : workflows) {
    EXPECT_EQ(wf.relative_deadline, minutes(30));
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, ArrivalShapes,
                         ::testing::Values(ArrivalShape::kPoisson,
                                           ArrivalShape::kMmpp,
                                           ArrivalShape::kFlashCrowd),
                         [](const auto& info) -> std::string {
                           // to_string() uses hyphens, which gtest rejects
                           // in parameterized test names.
                           switch (info.param) {
                             case ArrivalShape::kPoisson: return "Poisson";
                             case ArrivalShape::kMmpp: return "Mmpp";
                             case ArrivalShape::kFlashCrowd: return "FlashCrowd";
                           }
                           return "Unknown";
                         });

// The knob's contract: the realized mean interarrival over a long Poisson
// stream matches mean_total_work / (rho * slots) — so rho really is offered
// work per unit capacity, not an uncalibrated intensity.
TEST(ArrivalCalibration, PoissonMeanInterarrivalMatchesRho) {
  auto workflows = uniform_workload(4000);
  const auto config = config_for(ArrivalShape::kPoisson, 1.25);
  const double target = mean_interarrival_ms(workflows, config);
  ASSERT_GT(target, 0.0);
  assign_open_loop_arrivals(workflows, 3, config);
  const double realized =
      static_cast<double>(workflows.back().submit_time - workflows.front().submit_time) /
      static_cast<double>(workflows.size() - 1);
  EXPECT_NEAR(realized, target, 0.1 * target);
}

// MMPP's burst modulation must not change the *time-averaged* rate: the same
// rho produces the same long-run arrival span (within stochastic tolerance).
TEST(ArrivalCalibration, MmppTimeAverageMatchesPoisson) {
  auto poisson = uniform_workload(4000);
  auto mmpp = uniform_workload(4000);
  assign_open_loop_arrivals(poisson, 3, config_for(ArrivalShape::kPoisson, 0.8));
  assign_open_loop_arrivals(mmpp, 3, config_for(ArrivalShape::kMmpp, 0.8));
  const double span_p = static_cast<double>(poisson.back().submit_time);
  const double span_m = static_cast<double>(mmpp.back().submit_time);
  ASSERT_GT(span_p, 0.0);
  EXPECT_NEAR(span_m / span_p, 1.0, 0.25);
}

TEST(ArrivalValidation, RejectsNonsense) {
  auto base = config_for(ArrivalShape::kPoisson);
  {
    auto c = base;
    c.rho = 0.0;
    EXPECT_THROW(c.validate(), std::invalid_argument);
  }
  {
    auto c = base;
    c.cluster_slots = 0;
    EXPECT_THROW(c.validate(), std::invalid_argument);
  }
  {
    auto c = base;
    c.shape = ArrivalShape::kMmpp;
    c.burst_rate_factor = 1.0;
    EXPECT_THROW(c.validate(), std::invalid_argument);
  }
  {
    auto c = base;
    c.shape = ArrivalShape::kMmpp;
    c.calm_mean = 0;
    EXPECT_THROW(c.validate(), std::invalid_argument);
  }
  {
    auto c = base;
    c.shape = ArrivalShape::kFlashCrowd;
    c.flash_fraction = 1.0;
    EXPECT_THROW(c.validate(), std::invalid_argument);
  }
}

TEST(ArrivalValidation, EmptyWorkloadThrows) {
  std::vector<wf::WorkflowSpec> empty;
  EXPECT_THROW((void)mean_interarrival_ms(empty, config_for(ArrivalShape::kPoisson)),
               std::invalid_argument);
}

// ---- DeadlinePolicy degenerate shapes (regression) -------------------------
//
// The overload experiments pin arrivals with assign_open_loop_arrivals, so
// they run assign_deadlines in its degenerate corners: arrival_window == 0
// (arrivals fully delegated) and slack_lo == slack_hi (deterministic slack).
// Both are documented as well-defined; keep them that way.

TEST(DeadlinePolicyDegenerate, ZeroArrivalWindowSubmitsEverythingAtZero) {
  auto workflows = uniform_workload(8);
  DeadlinePolicy policy;
  policy.arrival_window = 0;
  EXPECT_NO_THROW(policy.validate());
  assign_deadlines(workflows, 5, policy);
  for (const auto& wf : workflows) {
    EXPECT_EQ(wf.submit_time, 0);
    EXPECT_GT(wf.relative_deadline, 0);
  }
}

TEST(DeadlinePolicyDegenerate, PinnedSlackIsSeedIndependent) {
  auto a = uniform_workload(8);
  auto b = uniform_workload(8);
  DeadlinePolicy policy;
  policy.slack_lo = policy.slack_hi = 1.5;
  EXPECT_NO_THROW(policy.validate());
  assign_deadlines(a, 5, policy);
  assign_deadlines(b, 99, policy);
  for (std::size_t i = 0; i < a.size(); ++i) {
    // The slack draw is pinned, so the deadline is a pure function of the
    // workflow's structure — the seed only moves the arrival.
    EXPECT_EQ(a[i].relative_deadline, b[i].relative_deadline) << "workflow " << i;
  }
}

}  // namespace
}  // namespace woha::trace

// Scheduler decision explainability: every scheduler publishes a
// SchedulerDecision per select_task call with the ranking it consulted, and
// subscribing the trace never changes what gets scheduled.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "core/woha_scheduler.hpp"
#include "hadoop/engine.hpp"
#include "metrics/report.hpp"
#include "workflow/topology.hpp"

namespace woha {
namespace {

std::vector<wf::WorkflowSpec> small_workload() {
  std::vector<wf::WorkflowSpec> out;
  for (std::uint32_t i = 0; i < 4; ++i) {
    auto spec = wf::diamond(3);
    spec.name = "wf" + std::to_string(i);
    spec.submit_time = i * seconds(20);
    spec.relative_deadline = minutes(40) + i * minutes(5);
    out.push_back(spec);
  }
  return out;
}

hadoop::EngineConfig small_cluster() {
  hadoop::EngineConfig config;
  config.cluster.num_trackers = 3;
  config.cluster.map_slots_per_tracker = 2;
  config.cluster.reduce_slots_per_tracker = 1;
  return config;
}

struct Trace {
  std::vector<obs::SchedulerDecision> decisions;
  hadoop::RunSummary summary;
};

Trace run_traced(const metrics::SchedulerEntry& entry, bool subscribe) {
  hadoop::Engine engine(small_cluster(), entry.make());
  Trace trace;
  if (subscribe) {
    engine.events().subscribe([&trace](const obs::Event& e) {
      if (const auto* d = std::get_if<obs::SchedulerDecision>(&e.payload)) {
        trace.decisions.push_back(*d);
      }
    });
  }
  for (const auto& spec : small_workload()) engine.submit(spec);
  engine.run();
  trace.summary = engine.summarize();
  return trace;
}

class DecisionTrace : public ::testing::TestWithParam<int> {};

TEST_P(DecisionTrace, EverySchedulerExplainsItsDecisions) {
  const auto entry =
      metrics::extended_schedulers()[static_cast<std::size_t>(GetParam())];
  const auto traced = run_traced(entry, true);

  ASSERT_FALSE(traced.decisions.empty()) << entry.label;
  std::size_t assigned = 0;
  for (const auto& d : traced.decisions) {
    EXPECT_FALSE(d.scheduler.empty());
    EXPECT_LE(d.ranking.size(), obs::kMaxRankedCandidates);
    if (d.assigned) {
      ++assigned;
      // Job-level schedulers (FIFO, EDF-JOB) name the wjob they picked.
      if (entry.label == "FIFO" || entry.label == "EDF-JOB") {
        EXPECT_NE(d.job, obs::SchedulerDecision::kNoJob);
      }
    } else {
      // An idle decision must still explain itself: either the queue was
      // empty or every ranked candidate was ineligible for the slot.
      EXPECT_EQ(d.workflow, 0u);
    }
  }
  // The workload runs to completion, so tasks were assigned via decisions.
  EXPECT_GT(assigned, 0u) << entry.label;
  for (const auto& wf : traced.summary.workflows) {
    EXPECT_FALSE(wf.failed) << entry.label;
    EXPECT_GE(wf.finish_time, 0) << entry.label;
  }
}

TEST_P(DecisionTrace, TracingDoesNotChangeScheduling) {
  const auto entry =
      metrics::extended_schedulers()[static_cast<std::size_t>(GetParam())];
  const auto quiet = run_traced(entry, false);
  const auto traced = run_traced(entry, true);
  EXPECT_EQ(quiet.summary.makespan, traced.summary.makespan);
  EXPECT_EQ(quiet.summary.tasks_executed, traced.summary.tasks_executed);
  EXPECT_EQ(quiet.summary.select_calls, traced.summary.select_calls);
}

INSTANTIATE_TEST_SUITE_P(AllSchedulers, DecisionTrace, ::testing::Range(0, 7),
                         [](const auto& info) {
                           auto label =
                               metrics::extended_schedulers()
                                   [static_cast<std::size_t>(info.param)].label;
                           for (auto& c : label)
                             if (c == '-') c = '_';
                           return label;
                         });

// WOHA's ranking carries the explainability payload of the paper's Sec. III:
// per candidate the requirement F_i(ttd), the progress rho_i, and the lag
// score the Double Skip List ordered by (descending).
TEST(DecisionTraceWoha, RankingCarriesLagOrdering) {
  const metrics::SchedulerEntry entry{
      "WOHA", [] { return std::make_unique<core::WohaScheduler>(); }};
  const auto traced = run_traced(entry, true);

  bool saw_multi_candidate = false;
  for (const auto& d : traced.decisions) {
    for (std::size_t i = 1; i < d.ranking.size(); ++i) {
      // Descending lag: the head of the snapshot is the most-lagging
      // workflow as the queue stood after this decision.
      EXPECT_GE(d.ranking[i - 1].score, d.ranking[i].score);
      saw_multi_candidate = true;
    }
    for (const auto& c : d.ranking) {
      // lag = F - rho, so the ordering key must be consistent per candidate.
      EXPECT_EQ(c.score, static_cast<std::int64_t>(c.requirement) -
                             static_cast<std::int64_t>(c.rho));
    }
  }
  EXPECT_TRUE(saw_multi_candidate);
}

}  // namespace
}  // namespace woha

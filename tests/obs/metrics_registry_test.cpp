#include "obs/metrics_registry.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace woha::obs {
namespace {

TEST(MetricsRegistry, CounterGetOrCreateReturnsStableReference) {
  MetricsRegistry reg;
  Counter& c = reg.counter("engine.heartbeats");
  c.add();
  c.add(4);
  EXPECT_EQ(reg.counter("engine.heartbeats").value(), 5u);
  EXPECT_EQ(&reg.counter("engine.heartbeats"), &c);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricsRegistry, GaugeSetAndAdd) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("cluster.free_map_slots");
  g.set(64.0);
  g.add(-3.0);
  EXPECT_DOUBLE_EQ(reg.gauge("cluster.free_map_slots").value(), 61.0);
}

TEST(MetricsRegistry, HistogramBucketsCountsAndStats) {
  Histogram h({10.0, 100.0, 1000.0});
  h.observe(5.0);     // bucket 0
  h.observe(10.0);    // inclusive upper bound: still bucket 0
  h.observe(50.0);    // bucket 1
  h.observe(5000.0);  // overflow
  ASSERT_EQ(h.counts().size(), 4u);
  EXPECT_EQ(h.counts()[0], 2u);
  EXPECT_EQ(h.counts()[1], 1u);
  EXPECT_EQ(h.counts()[2], 0u);
  EXPECT_EQ(h.counts()[3], 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 5065.0);
  EXPECT_DOUBLE_EQ(h.min(), 5.0);
  EXPECT_DOUBLE_EQ(h.max(), 5000.0);
  EXPECT_DOUBLE_EQ(h.mean(), 5065.0 / 4.0);
}

TEST(MetricsRegistry, EmptyHistogramStatsAreZero) {
  Histogram h({1.0});
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(MetricsRegistry, ExponentialBuckets) {
  const auto b = exponential_buckets(100.0, 4.0, 4);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_DOUBLE_EQ(b[0], 100.0);
  EXPECT_DOUBLE_EQ(b[1], 400.0);
  EXPECT_DOUBLE_EQ(b[2], 1600.0);
  EXPECT_DOUBLE_EQ(b[3], 6400.0);
}

TEST(MetricsRegistry, KindMismatchThrows) {
  MetricsRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("x", {1.0}), std::invalid_argument);
  reg.histogram("h", {1.0, 2.0});
  EXPECT_THROW(reg.histogram("h", {1.0, 3.0}), std::invalid_argument);
  EXPECT_NO_THROW(reg.histogram("h", {1.0, 2.0}));  // same buckets: get
}

TEST(MetricsRegistry, FindDoesNotCreate) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.find_counter("missing"), nullptr);
  EXPECT_EQ(reg.find_gauge("missing"), nullptr);
  EXPECT_EQ(reg.find_histogram("missing"), nullptr);
  EXPECT_EQ(reg.size(), 0u);

  reg.counter("c");
  EXPECT_NE(reg.find_counter("c"), nullptr);
  EXPECT_EQ(reg.find_gauge("c"), nullptr);  // wrong kind
}

TEST(MetricsRegistry, ToJsonIsDeterministicAndNameSorted) {
  MetricsRegistry reg;
  reg.counter("z.late").add(2);
  reg.counter("a.early").add(1);
  reg.gauge("g").set(1.5);
  reg.histogram("h", {10.0}).observe(3.0);

  const std::string json = reg.to_json();
  EXPECT_EQ(json, reg.to_json());  // snapshots never disturb state
  // Name-sorted within each section.
  EXPECT_LT(json.find("\"a.early\""), json.find("\"z.late\""));
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(MetricsRegistry, EmptyRegistryJsonHasAllSections) {
  MetricsRegistry reg;
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(MetricsRegistry, HistogramMergeFoldsCountsAndStats) {
  Histogram a({10.0, 100.0});
  Histogram b({10.0, 100.0});
  a.observe(5.0);
  a.observe(50.0);
  b.observe(7.0);
  b.observe(500.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.counts()[0], 2u);  // 5 and 7
  EXPECT_EQ(a.counts()[1], 1u);  // 50
  EXPECT_EQ(a.counts()[2], 1u);  // 500 overflow
  EXPECT_DOUBLE_EQ(a.sum(), 562.0);
  EXPECT_DOUBLE_EQ(a.min(), 5.0);
  EXPECT_DOUBLE_EQ(a.max(), 500.0);
}

TEST(MetricsRegistry, HistogramMergeEmptyOtherIsNoOp) {
  Histogram a({10.0});
  a.observe(3.0);
  Histogram empty({10.0});
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.min(), 3.0);

  // Merging into an empty histogram adopts the other's min/max.
  Histogram fresh({10.0});
  fresh.merge(a);
  EXPECT_EQ(fresh.count(), 1u);
  EXPECT_DOUBLE_EQ(fresh.min(), 3.0);
  EXPECT_DOUBLE_EQ(fresh.max(), 3.0);
}

TEST(MetricsRegistry, HistogramMergeBoundsMismatchThrows) {
  Histogram a({10.0, 100.0});
  Histogram b({10.0, 200.0});
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

// The parallel runner aggregates per-run scratch registries by merging them
// into the shared one in submission order: counters add, gauges take the
// later writer, histograms fold.
TEST(MetricsRegistry, RegistryMergeCombinesAllInstrumentKinds) {
  MetricsRegistry target;
  target.counter("c").add(2);
  target.gauge("g").set(1.0);
  target.histogram("h", {10.0}).observe(4.0);

  MetricsRegistry scratch;
  scratch.counter("c").add(3);
  scratch.counter("only_in_scratch").add(1);
  scratch.gauge("g").set(9.0);
  scratch.histogram("h", {10.0}).observe(40.0);

  target.merge(scratch);
  EXPECT_EQ(target.counter("c").value(), 5u);
  EXPECT_EQ(target.counter("only_in_scratch").value(), 1u);
  EXPECT_DOUBLE_EQ(target.gauge("g").value(), 9.0);  // last writer wins
  EXPECT_EQ(target.histogram("h", {10.0}).count(), 2u);
  EXPECT_DOUBLE_EQ(target.histogram("h", {10.0}).sum(), 44.0);
}

TEST(MetricsRegistry, MergeSequenceEqualsSharedAccumulation) {
  // Two runs recorded into one shared registry...
  MetricsRegistry shared;
  shared.counter("tasks").add(10);
  shared.histogram("lat", {1.0, 2.0}).observe(0.5);
  shared.counter("tasks").add(20);
  shared.histogram("lat", {1.0, 2.0}).observe(1.5);

  // ...must equal the same two runs recorded privately then merged in order.
  MetricsRegistry run1;
  run1.counter("tasks").add(10);
  run1.histogram("lat", {1.0, 2.0}).observe(0.5);
  MetricsRegistry run2;
  run2.counter("tasks").add(20);
  run2.histogram("lat", {1.0, 2.0}).observe(1.5);
  MetricsRegistry merged;
  merged.merge(run1);
  merged.merge(run2);

  EXPECT_EQ(merged.to_json(), shared.to_json());
}

TEST(MetricsRegistry, MergeKindMismatchThrows) {
  MetricsRegistry target;
  target.counter("x");
  MetricsRegistry scratch;
  scratch.gauge("x").set(1.0);
  EXPECT_THROW(target.merge(scratch), std::invalid_argument);
}

TEST(MetricsRegistry, QuantileEmptyHistogramIsZero) {
  Histogram h({10.0, 100.0});
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.p99(), 0.0);
}

TEST(MetricsRegistry, QuantileInterpolatesWithinBucket) {
  // 100 samples spread uniformly through the (10, 100] bucket: the
  // interpolated p50 sits mid-bucket, p95/p99 near its upper edge.
  Histogram h({10.0, 100.0});
  for (int i = 1; i <= 100; ++i) h.observe(10.0 + 0.9 * i);
  EXPECT_NEAR(h.quantile(0.5), 55.0, 10.0);
  EXPECT_NEAR(h.p95(), 95.5, 10.0);
  EXPECT_GE(h.p99(), h.p95());
  // Quantiles are monotone in q and never leave [min, max].
  EXPECT_GE(h.p95(), h.p50());
  EXPECT_GE(h.quantile(1.0), h.p99());
  EXPECT_GE(h.quantile(0.0), h.min());
  EXPECT_LE(h.quantile(1.0), h.max());
}

TEST(MetricsRegistry, QuantileSingleObservationAndOverflowBucket) {
  Histogram h({10.0});
  h.observe(5.0);
  EXPECT_EQ(h.p50(), 5.0);  // clamped into [min, max] = [5, 5]
  EXPECT_EQ(h.p99(), 5.0);

  Histogram over({10.0});
  over.observe(50.0);
  over.observe(90.0);  // both in the overflow bucket
  EXPECT_GE(over.p50(), 50.0);
  EXPECT_LE(over.p99(), 90.0);
}

TEST(MetricsRegistry, QuantileDegenerateInputsPinned) {
  // Exact values, not ranges: these inputs are where an interpolation bug
  // (division by an empty bucket, NaN from 0/0, escaping [min, max]) would
  // hide. Audited div-by-zero-free: a bucket is only interpolated when its
  // count is nonzero, and every result clamps to the observed extrema.

  // Empty histogram: every q, in range or not, is 0.
  Histogram empty({10.0, 100.0});
  for (const double q : {-1.0, 0.0, 0.5, 1.0, 2.0}) {
    EXPECT_EQ(empty.quantile(q), 0.0) << "q=" << q;
  }

  // Single sample: every quantile IS the sample; out-of-range q clamps.
  Histogram single({10.0, 100.0});
  single.observe(42.0);
  for (const double q : {-0.5, 0.0, 0.25, 0.5, 0.99, 1.0, 7.0}) {
    EXPECT_EQ(single.quantile(q), 42.0) << "q=" << q;
  }

  // All samples in the overflow bucket: interpolation runs from the last
  // bound to the observed max, clamped to [min, max] = [50, 90].
  Histogram over({10.0});
  over.observe(50.0);
  over.observe(90.0);
  EXPECT_EQ(over.quantile(0.0), 50.0);
  EXPECT_EQ(over.quantile(0.25), 50.0);  // raw lerp gives 30; clamp to min
  EXPECT_EQ(over.quantile(0.5), 50.0);   // 10 + 0.5 * (90 - 10) = 50 exactly
  EXPECT_EQ(over.quantile(1.0), 90.0);

  // No bounds at all: one overflow bucket spanning [min, max].
  Histogram boundless(std::vector<double>{});
  for (const double v : {10.0, 20.0, 30.0, 40.0}) boundless.observe(v);
  EXPECT_EQ(boundless.quantile(0.0), 10.0);
  EXPECT_EQ(boundless.quantile(0.5), 25.0);  // midpoint of [10, 40]
  EXPECT_EQ(boundless.quantile(1.0), 40.0);

  // Identical samples mid-bucket: the [min, max] clamp collapses the
  // bucket-wide lerp to the one observed value.
  Histogram constant({10.0, 100.0});
  for (int i = 0; i < 10; ++i) constant.observe(50.0);
  for (const double q : {0.0, 0.5, 0.95, 1.0}) {
    EXPECT_EQ(constant.quantile(q), 50.0) << "q=" << q;
  }
}

TEST(MetricsRegistry, HistogramJsonCarriesPercentiles) {
  MetricsRegistry registry;
  auto& h = registry.histogram("lat", {10.0, 100.0});
  for (int i = 0; i < 10; ++i) h.observe(50.0);
  const std::string json = registry.to_json();
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"p95\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
}

}  // namespace
}  // namespace woha::obs

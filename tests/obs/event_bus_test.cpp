#include "obs/event_bus.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace woha::obs {
namespace {

TEST(EventBus, InactiveUntilSubscribed) {
  EventBus bus;
  EXPECT_FALSE(bus.active());
  EXPECT_EQ(bus.subscriber_count(), 0u);

  // Publishing to an empty bus is a no-op and is not counted: publishers
  // guard with active(), so a counted publish would overstate traffic.
  bus.publish(SimTime{5}, JobActivated{1, 2});
  EXPECT_EQ(bus.published(), 0u);

  const auto id = bus.subscribe([](const Event&) {});
  EXPECT_TRUE(bus.active());
  bus.unsubscribe(id);
  EXPECT_FALSE(bus.active());
}

TEST(EventBus, HandlersFireInSubscriptionOrder) {
  EventBus bus;
  std::vector<int> order;
  bus.subscribe([&order](const Event&) { order.push_back(1); });
  bus.subscribe([&order](const Event&) { order.push_back(2); });
  bus.subscribe([&order](const Event&) { order.push_back(3); });

  bus.publish(SimTime{0}, WorkflowFailed{7});
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(bus.published(), 1u);
}

TEST(EventBus, UnsubscribeMiddleKeepsOthers) {
  EventBus bus;
  std::vector<int> order;
  bus.subscribe([&order](const Event&) { order.push_back(1); });
  const auto second = bus.subscribe([&order](const Event&) { order.push_back(2); });
  bus.subscribe([&order](const Event&) { order.push_back(3); });

  bus.unsubscribe(second);
  bus.unsubscribe(9999);  // unknown id: no-op
  bus.publish(SimTime{0}, WorkflowFailed{7});
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventBus, ConveniencePublishStampsTime) {
  EventBus bus;
  SimTime seen = 0;
  std::uint32_t workflow = 0;
  bus.subscribe([&](const Event& e) {
    seen = e.time;
    workflow = std::get<JobCompleted>(e.payload).workflow;
  });
  bus.publish(SimTime{1234}, JobCompleted{42, 3});
  EXPECT_EQ(seen, 1234);
  EXPECT_EQ(workflow, 42u);
}

TEST(EventBus, TimeSourceDefaultsToZero) {
  EventBus bus;
  EXPECT_EQ(bus.now(), 0);
  SimTime t = 77;
  bus.set_time_source([&t] { return t; });
  EXPECT_EQ(bus.now(), 77);
  t = 99;
  EXPECT_EQ(bus.now(), 99);
}

TEST(EventBus, KindNamesAreStable) {
  EXPECT_STREQ(kind_name(Payload(TaskStarted{})), "task-started");
  EXPECT_STREQ(kind_name(Payload(TaskEnded{})), "task-ended");
  EXPECT_STREQ(kind_name(Payload(SchedulerDecision{})), "scheduler-decision");
  EXPECT_STREQ(kind_name(Payload(TrackerCrashed{})), "tracker-crashed");
  EXPECT_STREQ(kind_name(Payload(LogEmitted{})), "log");
}

}  // namespace
}  // namespace woha::obs

// Exporter tests: JSONL line format, Chrome trace structural validity
// (balanced B/E slices, metadata before use), and subscription lifecycle.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "core/woha_scheduler.hpp"
#include "hadoop/engine.hpp"
#include "obs/export_chrome.hpp"
#include "obs/export_jsonl.hpp"
#include "obs/log_bridge.hpp"
#include "workflow/topology.hpp"

namespace woha::obs {
namespace {

TEST(JsonlExport, LineFormat) {
  Event e;
  e.time = 123000;
  e.payload = TaskStarted{.attempt = 7,
                          .workflow = 2,
                          .job = 1,
                          .slot = SlotType::kMap,
                          .tracker = 4,
                          .scheduled_duration = 60000,
                          .speculative = false};
  EXPECT_EQ(event_to_json(e),
            R"({"t":123000,"type":"task-started","attempt":7,"workflow":2,)"
            R"("job":1,"slot":"map","tracker":4,"scheduled_duration":60000})");
}

TEST(JsonlExport, OptionalFieldsOnlyWhenSet) {
  Event e;
  e.time = 1;
  e.payload = TaskEnded{.attempt = 1,
                        .workflow = 0,
                        .job = 0,
                        .slot = SlotType::kReduce,
                        .tracker = 0,
                        .failed = false,
                        .killed = true,
                        .speculative = true,
                        .ran_for = 500};
  const std::string line = event_to_json(e);
  EXPECT_NE(line.find(R"("killed":true)"), std::string::npos);
  EXPECT_NE(line.find(R"("speculative":true)"), std::string::npos);
  EXPECT_EQ(line.find("failed"), std::string::npos);
}

TEST(JsonlExport, EscapesStrings) {
  Event e;
  e.time = 0;
  e.payload = LogEmitted{LogLevel::kInfo, "engine", "a \"quoted\"\nline"};
  const std::string line = event_to_json(e);
  EXPECT_NE(line.find(R"(a \"quoted\"\nline)"), std::string::npos);
}

TEST(JsonlExport, ExporterSubscribesAndUnsubscribes) {
  EventBus bus;
  std::ostringstream out;
  {
    JsonlExporter exporter(bus, out);
    EXPECT_TRUE(bus.active());
    bus.publish(SimTime{10}, WorkflowFailed{3});
    bus.publish(SimTime{20}, TrackerRestarted{1});
    EXPECT_EQ(exporter.lines_written(), 2u);
  }
  EXPECT_FALSE(bus.active());  // destructor detached
  const std::string text = out.str();
  EXPECT_EQ(text,
            "{\"t\":10,\"type\":\"workflow-failed\",\"workflow\":3}\n"
            "{\"t\":20,\"type\":\"tracker-restarted\",\"tracker\":1}\n");
}

// Run a small real experiment through both exporters and check the Chrome
// document's structure: it must be a single {"traceEvents":[...]} object
// whose B and E slices pair up exactly.
TEST(ChromeExport, SlicesBalanceOnRealRun) {
  hadoop::EngineConfig config;
  config.cluster.num_trackers = 4;
  config.cluster.map_slots_per_tracker = 2;
  config.cluster.reduce_slots_per_tracker = 1;
  config.faults.events = {{.tracker = 1,
                           .crash_time = minutes(2),
                           .restart_time = minutes(5)}};
  config.faults.expiry_interval = minutes(1);
  hadoop::Engine engine(config, std::make_unique<core::WohaScheduler>());

  std::ostringstream trace;
  ChromeTraceExporter exporter(engine.events(), trace);

  for (std::uint32_t i = 0; i < 3; ++i) {
    auto spec = wf::diamond(3);
    spec.name = "wf" + std::to_string(i);
    spec.relative_deadline = minutes(45);
    engine.submit(spec);
  }
  engine.run();
  exporter.finish();
  exporter.finish();  // idempotent

  const std::string doc = trace.str();
  ASSERT_GT(exporter.events_written(), 0u);
  EXPECT_EQ(doc.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(doc.substr(doc.size() - 3), "]}\n");

  std::size_t begins = 0, ends = 0, crashes = 0;
  for (std::size_t pos = 0; (pos = doc.find("\"ph\":\"B\"", pos)) != std::string::npos;
       ++pos)
    ++begins;
  for (std::size_t pos = 0; (pos = doc.find("\"ph\":\"E\"", pos)) != std::string::npos;
       ++pos)
    ++ends;
  for (std::size_t pos = 0; (pos = doc.find("\"CRASH\"", pos)) != std::string::npos;
       ++pos)
    ++crashes;
  EXPECT_GT(begins, 0u);
  EXPECT_EQ(begins, ends);  // every attempt slice closed
  EXPECT_EQ(crashes, 1u);
}

TEST(LogBridge, RoutesLogLinesOntoBusWithSimTime) {
  EventBus bus;
  bus.set_time_source([] { return SimTime{4242}; });
  std::vector<Event> seen;
  bus.subscribe([&seen](const Event& e) { seen.push_back(e); });

  const LogLevel before = log_level();
  set_log_level(LogLevel::kInfo);
  int fallback_lines = 0;
  LogSink prev = set_log_sink(
      [&fallback_lines](LogLevel, const std::string&, const std::string&) {
        ++fallback_lines;
      });
  {
    LogBridge bridge(bus);
    WOHA_LOG(LogLevel::kInfo, "test") << "bridged " << 42;
    WOHA_LOG(LogLevel::kDebug, "test") << "below level, dropped";
  }
  WOHA_LOG(LogLevel::kError, "test") << "after scope";  // restored sink
  set_log_sink(std::move(prev));
  set_log_level(before);

  EXPECT_EQ(fallback_lines, 1);  // only the post-scope line; bridge restored us
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].time, 4242);
  const auto& log = std::get<LogEmitted>(seen[0].payload);
  EXPECT_EQ(log.component, "test");
  EXPECT_EQ(log.message, "bridged 42");
}

}  // namespace
}  // namespace woha::obs

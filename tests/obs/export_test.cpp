// Exporter tests: JSONL line format, Chrome trace structural validity
// (balanced B/E slices, metadata before use), and subscription lifecycle.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "core/woha_scheduler.hpp"
#include "hadoop/engine.hpp"
#include "obs/export_chrome.hpp"
#include "obs/export_jsonl.hpp"
#include "obs/log_bridge.hpp"
#include "workflow/topology.hpp"

namespace woha::obs {
namespace {

TEST(JsonlExport, LineFormat) {
  Event e;
  e.time = 123000;
  e.payload = TaskStarted{.attempt = 7,
                          .workflow = 2,
                          .job = 1,
                          .slot = SlotType::kMap,
                          .tracker = 4,
                          .scheduled_duration = 60000,
                          .speculative = false};
  EXPECT_EQ(event_to_json(e),
            R"({"t":123000,"type":"task-started","attempt":7,"workflow":2,)"
            R"("job":1,"slot":"map","tracker":4,"scheduled_duration":60000})");
}

TEST(JsonlExport, OptionalFieldsOnlyWhenSet) {
  Event e;
  e.time = 1;
  e.payload = TaskEnded{.attempt = 1,
                        .workflow = 0,
                        .job = 0,
                        .slot = SlotType::kReduce,
                        .tracker = 0,
                        .failed = false,
                        .killed = true,
                        .speculative = true,
                        .ran_for = 500};
  const std::string line = event_to_json(e);
  EXPECT_NE(line.find(R"("killed":true)"), std::string::npos);
  EXPECT_NE(line.find(R"("speculative":true)"), std::string::npos);
  EXPECT_EQ(line.find("failed"), std::string::npos);
}

TEST(JsonlExport, EscapesStrings) {
  Event e;
  e.time = 0;
  e.payload = LogEmitted{LogLevel::kInfo, "engine", "a \"quoted\"\nline"};
  const std::string line = event_to_json(e);
  EXPECT_NE(line.find(R"(a \"quoted\"\nline)"), std::string::npos);
}

TEST(JsonlExport, ExporterSubscribesAndUnsubscribes) {
  EventBus bus;
  std::ostringstream out;
  {
    JsonlExporter exporter(bus, out);
    EXPECT_TRUE(bus.active());
    bus.publish(SimTime{10}, WorkflowFailed{3});
    bus.publish(SimTime{20}, TrackerRestarted{1});
    EXPECT_EQ(exporter.lines_written(), 2u);
  }
  EXPECT_FALSE(bus.active());  // destructor detached
  const std::string text = out.str();
  EXPECT_EQ(text,
            "{\"t\":10,\"type\":\"workflow-failed\",\"workflow\":3}\n"
            "{\"t\":20,\"type\":\"tracker-restarted\",\"tracker\":1}\n");
}

// Run a small real experiment through both exporters and check the Chrome
// document's structure: it must be a single {"traceEvents":[...]} object
// whose B and E slices pair up exactly.
TEST(ChromeExport, SlicesBalanceOnRealRun) {
  hadoop::EngineConfig config;
  config.cluster.num_trackers = 4;
  config.cluster.map_slots_per_tracker = 2;
  config.cluster.reduce_slots_per_tracker = 1;
  config.faults.events = {{.tracker = 1,
                           .crash_time = minutes(2),
                           .restart_time = minutes(5)}};
  config.faults.expiry_interval = minutes(1);
  hadoop::Engine engine(config, std::make_unique<core::WohaScheduler>());

  std::ostringstream trace;
  ChromeTraceExporter exporter(engine.events(), trace);

  for (std::uint32_t i = 0; i < 3; ++i) {
    auto spec = wf::diamond(3);
    spec.name = "wf" + std::to_string(i);
    spec.relative_deadline = minutes(45);
    engine.submit(spec);
  }
  engine.run();
  exporter.finish();
  exporter.finish();  // idempotent

  const std::string doc = trace.str();
  ASSERT_GT(exporter.events_written(), 0u);
  EXPECT_EQ(doc.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(doc.substr(doc.size() - 3), "]}\n");

  std::size_t begins = 0, ends = 0, crashes = 0;
  for (std::size_t pos = 0; (pos = doc.find("\"ph\":\"B\"", pos)) != std::string::npos;
       ++pos)
    ++begins;
  for (std::size_t pos = 0; (pos = doc.find("\"ph\":\"E\"", pos)) != std::string::npos;
       ++pos)
    ++ends;
  for (std::size_t pos = 0; (pos = doc.find("\"CRASH\"", pos)) != std::string::npos;
       ++pos)
    ++crashes;
  EXPECT_GT(begins, 0u);
  EXPECT_EQ(begins, ends);  // every attempt slice closed
  EXPECT_EQ(crashes, 1u);
}

TEST(JsonlExport, KillCauseSerializedOnlyWhenKilled) {
  Event e;
  e.time = 9;
  e.payload = TaskEnded{.attempt = 3,
                        .workflow = 1,
                        .job = 0,
                        .slot = SlotType::kMap,
                        .tracker = 2,
                        .failed = false,
                        .killed = true,
                        .speculative = false,
                        .ran_for = 1200,
                        .cause = KillCause::kNodeLoss};
  EXPECT_NE(event_to_json(e).find(R"("cause":"node-loss")"), std::string::npos);

  // A clean finish never carries a cause, even if the field were set.
  std::get<TaskEnded>(e.payload).killed = false;
  std::get<TaskEnded>(e.payload).cause = KillCause::kNone;
  EXPECT_EQ(event_to_json(e).find("cause"), std::string::npos);
}

// Empty run: both exporters must still produce schema-complete output —
// zero JSONL lines and a well-formed Chrome document with an empty array.
TEST(JsonlExport, EmptyRunAndPostCloseFlushesAreAccounted) {
  EventBus bus;
  std::ostringstream out;
  JsonlExporter exporter(bus, out);
  exporter.close();
  EXPECT_TRUE(exporter.closed());
  EXPECT_EQ(out.str(), "");  // zero events -> zero lines, valid JSONL

  // Events published after close() must not corrupt the (already final)
  // output, and must not vanish silently: the drop counter owns them.
  bus.publish(SimTime{5}, WorkflowFailed{1});
  bus.publish(SimTime{6}, TrackerRestarted{0});
  EXPECT_EQ(exporter.lines_written(), 0u);
  EXPECT_EQ(exporter.dropped_after_close(), 2u);
  EXPECT_EQ(out.str(), "");
}

TEST(ChromeExport, EmptyRunAndPostFinishFlushesAreAccounted) {
  EventBus bus;
  std::ostringstream out;
  ChromeTraceExporter exporter(bus, out);
  exporter.finish();
  EXPECT_TRUE(exporter.finished());
  EXPECT_EQ(out.str(), "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}\n");

  bus.publish(SimTime{7}, TrackerRestarted{2});
  EXPECT_EQ(exporter.events_dropped(), 1u);
  // The document is still exactly the finished one — no trailing garbage.
  EXPECT_EQ(out.str(), "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}\n");
}

// With a prerequisites callback the exporter adds job X-slices plus DAG
// flow arrows; every flow start ("ph":"s") has a matching finish ("ph":"f").
TEST(ChromeExport, JobSpansAndDagFlowEvents) {
  hadoop::EngineConfig config;
  config.cluster.num_trackers = 4;
  config.cluster.map_slots_per_tracker = 2;
  config.cluster.reduce_slots_per_tracker = 1;
  hadoop::Engine engine(config, std::make_unique<core::WohaScheduler>());

  auto spec = wf::diamond(3);
  spec.name = "flows";
  spec.relative_deadline = minutes(45);

  std::ostringstream trace;
  ChromeTraceOptions options;
  options.prerequisites = [&spec](std::uint32_t, std::uint32_t job) {
    return spec.jobs[job].prerequisites;
  };
  ChromeTraceExporter exporter(engine.events(), trace, options);

  engine.submit(spec);
  engine.run();
  exporter.finish();

  const std::string doc = trace.str();
  std::size_t starts = 0, finishes = 0, complete = 0;
  for (std::size_t pos = 0; (pos = doc.find("\"ph\":\"s\"", pos)) != std::string::npos;
       ++pos)
    ++starts;
  for (std::size_t pos = 0; (pos = doc.find("\"ph\":\"f\"", pos)) != std::string::npos;
       ++pos)
    ++finishes;
  for (std::size_t pos = 0; (pos = doc.find("\"ph\":\"X\"", pos)) != std::string::npos;
       ++pos)
    ++complete;
  // diamond(3): source -> 3 middle jobs -> sink = 6 DAG edges, one flow
  // arrow (s/f pair) each.
  EXPECT_EQ(starts, 6u);
  EXPECT_EQ(finishes, 6u);
  EXPECT_GE(complete, spec.jobs.size());  // one X-slice per completed job
}

TEST(LogBridge, RoutesLogLinesOntoBusWithSimTime) {
  EventBus bus;
  bus.set_time_source([] { return SimTime{4242}; });
  std::vector<Event> seen;
  bus.subscribe([&seen](const Event& e) { seen.push_back(e); });

  const LogLevel before = log_level();
  set_log_level(LogLevel::kInfo);
  int fallback_lines = 0;
  LogSink prev = set_log_sink(
      [&fallback_lines](LogLevel, const std::string&, const std::string&) {
        ++fallback_lines;
      });
  {
    LogBridge bridge(bus);
    WOHA_LOG(LogLevel::kInfo, "test") << "bridged " << 42;
    WOHA_LOG(LogLevel::kDebug, "test") << "below level, dropped";
  }
  WOHA_LOG(LogLevel::kError, "test") << "after scope";  // restored sink
  set_log_sink(std::move(prev));
  set_log_level(before);

  EXPECT_EQ(fallback_lines, 1);  // only the post-scope line; bridge restored us
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].time, 4242);
  const auto& log = std::get<LogEmitted>(seen[0].payload);
  EXPECT_EQ(log.component, "test");
  EXPECT_EQ(log.message, "bridged 42");
}

}  // namespace
}  // namespace woha::obs

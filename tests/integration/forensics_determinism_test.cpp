// Forensics obeys the observability contract on the nastiest scenario we
// pin: attaching a SpanRecorder to every run of the chaos-overload fixture
// must not move a single scheduling decision (the PR 6 golden digest stays
// bit-identical), and the attribution JSONL a parallel grid produces must
// equal the serial one byte for byte.
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "forensics/attribution.hpp"
#include "forensics/export.hpp"
#include "forensics/span_recorder.hpp"
#include "metrics/grid.hpp"
#include "overload_scenario.hpp"

namespace woha {
namespace {

/// Run the fixture grid with a per-point recorder and return (digest,
/// per-point attribution JSONL).
std::pair<std::uint64_t, std::vector<std::string>> run_with_forensics(
    unsigned jobs) {
  const auto workload = testing::overload_workload();
  const auto grid = testing::overload_grid(workload);

  std::vector<std::unique_ptr<forensics::SpanRecorder>> recorders(grid.size());
  metrics::GridOptions options;
  options.jobs = jobs;
  options.configure_point = [&recorders](hadoop::Engine& engine,
                                         std::size_t index) {
    recorders[index] = std::make_unique<forensics::SpanRecorder>(
        engine.events(), &engine.job_tracker());
  };
  const auto results = metrics::run_grid(grid, options);

  std::vector<std::string> jsonl;
  for (const auto& recorder : recorders) {
    const auto records = forensics::attribute_all(recorder->workflows());
    std::ostringstream out;
    forensics::export_attribution_jsonl(records, out);
    jsonl.push_back(out.str());
  }
  return {testing::digest_overload(results), std::move(jsonl)};
}

TEST(ForensicsDeterminism, RecorderPreservesGoldenAndParallelMatchesSerial) {
  const auto [serial_digest, serial_jsonl] = run_with_forensics(1);

  // Forensics-on must reproduce the exact digest pinned by
  // overload_determinism_test with no recorder attached: the recorder is a
  // pure listener.
  EXPECT_EQ(serial_digest, testing::kOverloadChaosGolden)
      << "attaching a SpanRecorder changed a scheduling decision";

  const auto [parallel_digest, parallel_jsonl] = run_with_forensics(4);
  EXPECT_EQ(parallel_digest, serial_digest);
  ASSERT_EQ(parallel_jsonl.size(), serial_jsonl.size());
  for (std::size_t i = 0; i < serial_jsonl.size(); ++i) {
    EXPECT_EQ(serial_jsonl[i], parallel_jsonl[i])
        << "attribution JSONL diverged at grid point " << i;
  }
  // The fixture actually produced forensics-worthy material.
  EXPECT_NE(serial_jsonl[0].find("\"kind\":\"attribution\""), std::string::npos);
}

}  // namespace
}  // namespace woha

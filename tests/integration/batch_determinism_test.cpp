// The batched-heartbeat memo and the parallel plan prewarm are wall-clock
// optimisations only: every golden this repo pins must come out bit-identical
// at every batch size, with the auditor on (memo bypassed — tracing sees
// every select) and off (memo active), serially and under --jobs N, with
// plan prewarm serial and parallel. A failure here means an optimisation
// changed a scheduling decision — fix the optimisation, never the golden.
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/woha_scheduler.hpp"
#include "hadoop/engine.hpp"
#include "metrics/grid.hpp"
#include "metrics/metrics.hpp"
#include "overload_scenario.hpp"
#include "trace/paper_workloads.hpp"
#include "trace/scale_workload.hpp"

namespace woha {
namespace {

constexpr std::uint32_t kBatchSizes[] = {1, 8, 64};

std::uint64_t overload_digest(std::uint32_t batch, bool audit, unsigned jobs) {
  const auto workload = testing::overload_workload();
  auto grid = testing::overload_grid(workload);
  for (auto& point : grid) {
    point.config.heartbeat_batch = batch;
    point.config.audit = audit;
  }
  metrics::GridOptions options;
  options.jobs = jobs;
  return testing::digest_overload(metrics::run_grid(grid, options));
}

std::uint64_t fig11_digest(std::uint32_t batch, bool audit, unsigned plan_jobs) {
  hadoop::EngineConfig config;
  config.audit = audit;
  config.cluster = hadoop::ClusterConfig::paper_32_slaves();
  config.heartbeat_batch = batch;
  const auto results = metrics::run_comparison(
      config, trace::fig11_scenario(), metrics::paper_schedulers(plan_jobs));
  return testing::digest_comparison(results);
}

TEST(BatchDeterminism, OverloadGoldenAtEveryBatchSizeAuditOn) {
  for (const std::uint32_t batch : kBatchSizes) {
    EXPECT_EQ(overload_digest(batch, /*audit=*/true, /*jobs=*/1),
              testing::kOverloadChaosGolden)
        << "batch=" << batch;
  }
}

TEST(BatchDeterminism, OverloadGoldenAtEveryBatchSizeAuditOff) {
  // Audit off is the configuration where the memo actually serves offers
  // (an active event bus bypasses it); the digest must not notice.
  for (const std::uint32_t batch : kBatchSizes) {
    EXPECT_EQ(overload_digest(batch, /*audit=*/false, /*jobs=*/1),
              testing::kOverloadChaosGolden)
        << "batch=" << batch;
  }
}

TEST(BatchDeterminism, OverloadGoldenUnderParallelGrid) {
  EXPECT_EQ(overload_digest(/*batch=*/64, /*audit=*/false, /*jobs=*/2),
            testing::kOverloadChaosGolden);
}

TEST(BatchDeterminism, Fig11GoldenAtEveryBatchSize) {
  for (const std::uint32_t batch : kBatchSizes) {
    EXPECT_EQ(fig11_digest(batch, /*audit=*/true, /*plan_jobs=*/1),
              0x9c0440bbd4ecdad5ull)
        << "batch=" << batch << " audit=on";
    EXPECT_EQ(fig11_digest(batch, /*audit=*/false, /*plan_jobs=*/1),
              0x9c0440bbd4ecdad5ull)
        << "batch=" << batch << " audit=off";
  }
}

TEST(BatchDeterminism, Fig11GoldenWithParallelPlanPrewarm) {
  // plan_jobs fans plan generation across a thread pool before the run;
  // installation is submission-ordered, so the digest cannot move.
  EXPECT_EQ(fig11_digest(/*batch=*/64, /*audit=*/true, /*plan_jobs=*/4),
            0x9c0440bbd4ecdad5ull);
  EXPECT_EQ(fig11_digest(/*batch=*/1, /*audit=*/false, /*plan_jobs=*/0),
            0x9c0440bbd4ecdad5ull);
}

TEST(BatchDeterminism, ScaleWorkload160GoldenWithBatchingAndPrewarm) {
  hadoop::EngineConfig config;
  config.audit = false;  // exercise the memo on the bench workload itself
  config.cluster.num_trackers = 160;
  config.cluster.map_slots_per_tracker = 2;
  config.cluster.reduce_slots_per_tracker = 1;
  config.heartbeat_batch = 64;
  const auto results = metrics::run_comparison(
      config, trace::scale_workload(160), metrics::paper_schedulers(4));
  EXPECT_EQ(testing::digest_comparison(results), 0x9406f11ab911f50cull);
}

TEST(BatchDeterminism, PrewarmKeepsPlanCacheTalliesSerial) {
  // Beyond the digest: the cache must report the same hit/miss split a
  // serial run sees — a claimed prewarm counts as the miss it replaced.
  const auto workload = trace::fig11_scenario();
  std::uint64_t serial_hits = 0, serial_misses = 0;
  std::uint64_t warm_hits = 0, warm_misses = 0;
  SimTime serial_makespan = 0, warm_makespan = 0;
  for (const unsigned plan_jobs : {1u, 4u}) {
    core::WohaConfig wc;
    wc.plan_jobs = plan_jobs;
    auto scheduler = std::make_unique<core::WohaScheduler>(wc);
    const core::WohaScheduler* raw = scheduler.get();
    hadoop::EngineConfig config;
    config.cluster = hadoop::ClusterConfig::paper_32_slaves();
    hadoop::Engine engine(config, std::move(scheduler));
    for (const auto& spec : workload) engine.submit(spec);
    engine.run();
    if (plan_jobs == 1) {
      serial_hits = raw->plan_cache().hits();
      serial_misses = raw->plan_cache().misses();
      serial_makespan = engine.summarize().makespan;
    } else {
      warm_hits = raw->plan_cache().hits();
      warm_misses = raw->plan_cache().misses();
      warm_makespan = engine.summarize().makespan;
    }
  }
  EXPECT_EQ(warm_hits, serial_hits);
  EXPECT_EQ(warm_misses, serial_misses);
  EXPECT_GT(warm_misses, 0u);  // the prewarmed plans were actually claimed
  EXPECT_EQ(warm_makespan, serial_makespan);
}

}  // namespace
}  // namespace woha

// The parallel experiment runner's determinism contract: a grid run at ANY
// thread count is bit-identical to the serial loop. These tests pin that
// against the same golden digests scale_determinism_test.cpp uses — if a
// parallel run flips a digest the pool leaked state between runs (shared
// RNG, shared registry instrument, shared sink), which is a bug in the
// runner, never a golden to refresh.
//
// Also covered: deterministic registry aggregation (per-run scratch
// registries merged in submission order) and obs-bus thread confinement
// (per-run sinks see exactly their own run's events).
#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "metrics_digest.hpp"
#include "metrics/grid.hpp"
#include "metrics/metrics.hpp"
#include "obs/event.hpp"
#include "obs/metrics_registry.hpp"
#include "trace/paper_workloads.hpp"

namespace woha {
namespace {

// Goldens shared with ScaleDeterminism (captured on the serial engine).
constexpr std::uint64_t kFig11Paper32Golden = 0x9c0440bbd4ecdad5ull;
constexpr std::uint64_t kFig8Paper80Golden = 0x59e3378f75ea6305ull;

std::uint64_t fig8_digest_at(unsigned jobs) {
  hadoop::EngineConfig config;
  config.audit = true;
  config.cluster = hadoop::ClusterConfig::paper_80_servers();
  const auto results =
      metrics::run_comparison(config, trace::fig8_trace(),
                              metrics::paper_schedulers(), {}, jobs);
  return testing::digest_comparison(results);
}

TEST(ParallelDeterminism, Fig8GridBitIdenticalAtEveryThreadCount) {
  EXPECT_EQ(fig8_digest_at(1), kFig8Paper80Golden);
  EXPECT_EQ(fig8_digest_at(4), kFig8Paper80Golden);
  EXPECT_EQ(fig8_digest_at(0), kFig8Paper80Golden);  // hardware concurrency
}

TEST(ParallelDeterminism, Fig11GridBitIdenticalAtEveryThreadCount) {
  hadoop::EngineConfig config;
  config.audit = true;
  config.cluster = hadoop::ClusterConfig::paper_32_slaves();
  const auto workload = trace::fig11_scenario();
  for (const unsigned jobs : {1u, 4u, std::thread::hardware_concurrency()}) {
    const auto results = metrics::run_comparison(
        config, workload, metrics::paper_schedulers(), {}, jobs);
    EXPECT_EQ(testing::digest_comparison(results), kFig11Paper32Golden)
        << "at jobs=" << jobs;
  }
}

// run_grid with more points than workers: queue reuse across runs on one
// worker thread must not leak engine state either.
TEST(ParallelDeterminism, MorePointsThanWorkers) {
  hadoop::EngineConfig config;
  config.audit = true;
  config.cluster = hadoop::ClusterConfig::paper_80_servers();
  const auto workload = trace::fig8_trace();
  std::vector<metrics::GridPoint> points;
  for (const auto& entry : metrics::paper_schedulers()) {
    points.push_back(metrics::GridPoint{config, &workload, entry});
  }
  metrics::GridOptions options;
  options.jobs = 2;  // 6 points over 2 workers
  const auto results = metrics::run_grid(points, options);
  EXPECT_EQ(testing::digest_comparison(results), kFig8Paper80Golden);
}

// Regression for the throwing-grid-point path: the error must surface as an
// exception from run_grid (lowest index), the pool must reach quiescence
// rather than wedge on a lost occupancy decrement, and the runner must stay
// usable afterwards with unchanged results.
TEST(ParallelDeterminism, ThrowingGridPointSurfacesAndDoesNotWedge) {
  hadoop::EngineConfig config;
  config.audit = true;
  config.cluster = hadoop::ClusterConfig::paper_80_servers();
  const auto workload = trace::fig8_trace();
  std::vector<metrics::GridPoint> points;
  for (const auto& entry : metrics::paper_schedulers()) {
    points.push_back(metrics::GridPoint{config, &workload, entry});
  }
  points[2].workload = nullptr;  // run_point throws for this index
  metrics::GridOptions options;
  options.jobs = 2;
  EXPECT_THROW((void)metrics::run_grid(points, options), std::invalid_argument);

  // The failure left nothing wedged or dirty: the same grid, repaired, still
  // reproduces the golden digest.
  points[2].workload = &workload;
  const auto results = metrics::run_grid(points, options);
  EXPECT_EQ(testing::digest_comparison(results), kFig8Paper80Golden);
}

obs::MetricsRegistry run_fig11_registry(unsigned jobs) {
  hadoop::EngineConfig config;
  config.audit = true;
  config.cluster = hadoop::ClusterConfig::paper_32_slaves();
  obs::MetricsRegistry registry;
  metrics::ObsHooks hooks;
  hooks.registry = &registry;
  (void)metrics::run_comparison(config, trace::fig11_scenario(),
                                metrics::paper_schedulers(), hooks, jobs);
  return registry;
}

// Aggregation happens through per-run scratch registries merged in
// submission order, so the merged counters/gauges must not depend on the
// thread schedule — and must equal the classic shared-registry serial loop.
TEST(ParallelDeterminism, RegistryAggregationIsScheduleIndependent) {
  const auto serial = run_fig11_registry(1);
  const auto parallel = run_fig11_registry(4);

  for (const char* name :
       {"engine.heartbeats", "engine.tasks_started", "engine.tasks_finished",
        "woha.plan_cache_hits", "woha.plan_cache_misses"}) {
    const auto* a = serial.find_counter(name);
    const auto* b = parallel.find_counter(name);
    ASSERT_NE(a, nullptr) << name;
    ASSERT_NE(b, nullptr) << name;
    EXPECT_EQ(a->value(), b->value()) << name;
  }
  // Gauges merge last-writer-wins in submission order: the final free-slot
  // levels must match the serial run's.
  for (const char* name : {"cluster.free_map_slots", "cluster.free_reduce_slots"}) {
    const auto* a = serial.find_gauge(name);
    const auto* b = parallel.find_gauge(name);
    ASSERT_NE(a, nullptr) << name;
    ASSERT_NE(b, nullptr) << name;
    EXPECT_DOUBLE_EQ(a->value(), b->value()) << name;
  }
  // The runner's own instruments exist and agree on the run count.
  const auto* runs = parallel.find_counter("grid.runs");
  ASSERT_NE(runs, nullptr);
  EXPECT_EQ(runs->value(), metrics::paper_schedulers().size());
}

// Obs-bus thread confinement: the bus is per-engine and sinks attached via
// configure_point are per-run, so each run's sink must see exactly the
// events of its own workload — no cross-run bleed, no torn counts — even
// with four runs in flight at once.
TEST(ParallelDeterminism, ObsSinksAreConfinedToTheirRun) {
  // Four points with *distinct* workloads (1..4 recurrences of fig12), so
  // any cross-run event leak changes a per-point count.
  std::vector<std::vector<wf::WorkflowSpec>> workloads;
  for (int recurrences = 1; recurrences <= 4; ++recurrences) {
    workloads.push_back(trace::fig12_scenario(recurrences, minutes(30)));
  }
  const auto entry = metrics::paper_schedulers()[3];  // WOHA-LPF

  struct PerRun {
    std::uint64_t events = 0;
    std::uint64_t submitted = 0;
    std::vector<std::string> names;
  };

  const auto record = [&](unsigned jobs) {
    std::vector<metrics::GridPoint> points;
    for (const auto& w : workloads) {
      hadoop::EngineConfig config;
      config.audit = true;
      config.cluster = hadoop::ClusterConfig::paper_32_slaves();
      points.push_back(metrics::GridPoint{config, &w, entry});
    }
    std::vector<PerRun> sinks(points.size());
    metrics::GridOptions options;
    options.jobs = jobs;
    options.configure_point = [&sinks](hadoop::Engine& engine, std::size_t i) {
      engine.events().subscribe([&sinks, i](const obs::Event& event) {
        PerRun& sink = sinks[i];
        ++sink.events;
        if (const auto* sub = std::get_if<obs::WorkflowSubmitted>(&event.payload)) {
          ++sink.submitted;
          sink.names.push_back(sub->name);
        }
      });
    };
    (void)metrics::run_grid(points, options);
    return sinks;
  };

  const auto parallel = record(4);
  const auto serial = record(1);
  ASSERT_EQ(parallel.size(), 4u);
  for (std::size_t i = 0; i < parallel.size(); ++i) {
    // Each sink saw its own workload's submissions (events arrive in
    // submit-time order, so compare as a sorted set)...
    EXPECT_EQ(parallel[i].submitted, workloads[i].size()) << "point " << i;
    auto seen = parallel[i].names;
    std::sort(seen.begin(), seen.end());
    std::vector<std::string> expected;
    for (const auto& spec : workloads[i]) expected.push_back(spec.name);
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(seen, expected) << "point " << i;
    // ...and exactly the event stream the serial run produces.
    EXPECT_EQ(parallel[i].events, serial[i].events) << "point " << i;
    EXPECT_EQ(parallel[i].names, serial[i].names) << "point " << i;
  }
}

}  // namespace
}  // namespace woha

// Randomized cross-scheduler property sweep: for every scheduler and many
// random workloads, the simulator must uphold the structural invariants —
// every task runs exactly once, dependencies are respected, slot capacity is
// never exceeded, runs are deterministic, and no workflow is starved
// forever. These are the invariants every figure in the paper implicitly
// relies on.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/rng.hpp"
#include "metrics/report.hpp"
#include "trace/deadlines.hpp"
#include "workflow/analysis.hpp"
#include "workflow/topology.hpp"

namespace woha {
namespace {

struct SweepCase {
  std::uint64_t seed;
  std::size_t scheduler_index;  // into metrics::paper_schedulers()
};

std::vector<SweepCase> make_cases() {
  std::vector<SweepCase> cases;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    for (std::size_t s = 0; s < 6; ++s) cases.push_back(SweepCase{seed, s});
  }
  return cases;
}

std::vector<wf::WorkflowSpec> random_workload(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<wf::WorkflowSpec> workload;
  const int n = static_cast<int>(rng.uniform_int(3, 8));
  for (int i = 0; i < n; ++i) {
    wf::RandomDagParams params;
    params.num_jobs = static_cast<std::uint32_t>(rng.uniform_int(1, 12));
    params.num_layers = static_cast<std::uint32_t>(rng.uniform_int(1, 4));
    params.shape.num_maps = static_cast<std::uint32_t>(rng.uniform_int(2, 25));
    params.shape.num_reduces = static_cast<std::uint32_t>(rng.uniform_int(1, 8));
    params.shape.map_duration = seconds(rng.uniform_int(5, 120));
    params.shape.reduce_duration = seconds(rng.uniform_int(10, 240));
    auto spec = wf::random_dag(rng, params);
    spec.name = "wf-" + std::to_string(i);
    workload.push_back(std::move(spec));
  }
  trace::DeadlinePolicy policy;
  policy.reference_cap = 16;
  policy.arrival_window = minutes(10);
  trace::assign_deadlines(workload, seed ^ 0xabcdef, policy);
  return workload;
}

class SchedulerPropertySweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(SchedulerPropertySweep, InvariantsHold) {
  const auto [seed, scheduler_index] = GetParam();
  const auto workload = random_workload(seed);
  const auto entry = metrics::paper_schedulers()[scheduler_index];

  // WorkflowIds are assigned in submission-*time* order (stable for ties),
  // not in engine.submit() call order; build the id -> spec view.
  std::vector<const wf::WorkflowSpec*> spec_of_id(workload.size());
  {
    std::vector<std::size_t> order(workload.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return workload[a].submit_time < workload[b].submit_time;
    });
    for (std::size_t id = 0; id < order.size(); ++id) {
      spec_of_id[id] = &workload[order[id]];
    }
  }

  hadoop::EngineConfig config;
  config.cluster.num_trackers = static_cast<std::uint32_t>(3 + seed % 5);
  config.cluster.map_slots_per_tracker = 2;
  config.cluster.reduce_slots_per_tracker = 1;
  config.cluster.heartbeat_period = seconds(2);

  hadoop::Engine engine(config, entry.make());

  // Observer-enforced invariants.
  std::int64_t running[2] = {0, 0};
  const std::int64_t caps[2] = {config.cluster.total_map_slots(),
                                config.cluster.total_reduce_slots()};
  // (workflow, job) -> maps finished; reduce must not start before all maps.
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint32_t> maps_done;
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint32_t> started_total;

  engine.set_task_observer([&](const hadoop::TaskEvent& e) {
    auto& r = running[static_cast<std::size_t>(e.slot)];
    const auto key = std::make_pair(e.job.workflow, e.job.job);
    if (e.started) {
      ++r;
      ASSERT_LE(r, caps[static_cast<std::size_t>(e.slot)]);
      ++started_total[key];
      if (e.slot == SlotType::kReduce) {
        // All maps of this job must have completed first.
        const auto& job_spec = spec_of_id[e.job.workflow]->jobs[e.job.job];
        ASSERT_EQ(maps_done[key], job_spec.num_maps)
            << "reduce started before map phase finished";
      }
    } else {
      --r;
      ASSERT_GE(r, 0);
      if (e.slot == SlotType::kMap && !e.failed) ++maps_done[key];
    }
  });

  for (const auto& spec : workload) engine.submit(spec);
  engine.run();

  const auto summary = engine.summarize();
  std::uint64_t expected_tasks = 0;
  for (const auto& spec : workload) expected_tasks += spec.total_tasks();
  EXPECT_EQ(summary.tasks_executed, expected_tasks) << entry.label;
  EXPECT_EQ(summary.tasks_failed, 0u);

  for (const auto& wf_result : summary.workflows) {
    // Nothing starves: every workflow finishes.
    EXPECT_GE(wf_result.finish_time, wf_result.submit_time) << entry.label;
    // Workspan at least the critical path of the workflow.
    const auto& spec = *spec_of_id[wf_result.id.value()];
    EXPECT_GE(wf_result.workspan, wf::critical_path_length(spec));
  }

  // Every job started exactly its task count (no lost or duplicated tasks).
  for (std::uint32_t w = 0; w < workload.size(); ++w) {
    for (std::uint32_t j = 0; j < spec_of_id[w]->jobs.size(); ++j) {
      const auto key = std::make_pair(w, j);
      EXPECT_EQ(started_total[key], spec_of_id[w]->jobs[j].total_tasks());
    }
  }
}

TEST_P(SchedulerPropertySweep, DeterministicAcrossRuns) {
  const auto [seed, scheduler_index] = GetParam();
  const auto workload = random_workload(seed);
  const auto entry = metrics::paper_schedulers()[scheduler_index];

  hadoop::EngineConfig config;
  config.cluster.num_trackers = 4;
  config.cluster.map_slots_per_tracker = 2;
  config.cluster.reduce_slots_per_tracker = 1;

  std::vector<SimTime> finishes[2];
  for (int run = 0; run < 2; ++run) {
    hadoop::Engine engine(config, entry.make());
    for (const auto& spec : workload) engine.submit(spec);
    engine.run();
    for (const auto& r : engine.summarize().workflows) {
      finishes[run].push_back(r.finish_time);
    }
  }
  EXPECT_EQ(finishes[0], finishes[1]) << entry.label;
}

INSTANTIATE_TEST_SUITE_P(
    SeedsBySchedulers, SchedulerPropertySweep, ::testing::ValuesIn(make_cases()),
    [](const auto& info) {
      return "seed" + std::to_string(info.param.seed) + "_" +
             std::to_string(info.param.scheduler_index);
    });

}  // namespace
}  // namespace woha

// The shared chaos-overload fixture: open-loop arrivals past saturation
// (rho = 1.3), deadline-aware shedding, MTBF node churn, speculation, and
// duration jitter, for all six paper schedulers. Used by the overload
// determinism golden, the forensics determinism check, and the attribution
// conservation property test — one definition so they all pin the same runs.
#pragma once

#include <string>
#include <vector>

#include "hadoop/admission.hpp"
#include "metrics/grid.hpp"
#include "metrics_digest.hpp"
#include "trace/arrivals.hpp"
#include "trace/deadlines.hpp"
#include "workflow/topology.hpp"

namespace woha::testing {

inline std::vector<wf::WorkflowSpec> overload_workload() {
  std::vector<wf::WorkflowSpec> workflows;
  for (std::uint32_t i = 0; i < 12; ++i) {
    auto spec = wf::diamond(3);
    spec.name = "wf" + std::to_string(i);
    workflows.push_back(std::move(spec));
  }
  trace::DeadlinePolicy deadlines;
  deadlines.reference_cap = 12;
  trace::assign_deadlines(workflows, 5, deadlines);
  trace::ArrivalConfig arrivals;
  arrivals.shape = trace::ArrivalShape::kPoisson;
  arrivals.rho = 1.3;  // past saturation: the shed policy must engage
  arrivals.cluster_slots = 24;
  trace::assign_open_loop_arrivals(workflows, 7, arrivals);
  return workflows;
}

inline std::vector<metrics::GridPoint> overload_grid(
    const std::vector<wf::WorkflowSpec>& workload) {
  hadoop::EngineConfig config;
  config.audit = true;
  config.cluster.num_trackers = 8;
  config.cluster.map_slots_per_tracker = 2;
  config.cluster.reduce_slots_per_tracker = 1;
  config.seed = 42;
  config.duration_jitter_sigma = 0.3;
  config.admission.policy = hadoop::AdmissionPolicy::kShedLatestDeadlineFirst;
  config.admission.max_pending_workflows = 4;
  config.faults.tracker_mtbf = 600.0 * 1000.0;  // 600 s per tracker
  config.faults.tracker_restart_delay = seconds(30);
  config.faults.expiry_interval = seconds(60);
  config.faults.speculative_execution = true;
  std::vector<metrics::GridPoint> grid;
  for (const auto& entry : metrics::paper_schedulers()) {
    grid.push_back(metrics::GridPoint{config, &workload, entry});
  }
  return grid;
}

/// digest_comparison plus the overload & elasticity fields it predates.
inline std::uint64_t digest_overload(
    const std::vector<metrics::ExperimentResult>& results) {
  Fnv1a h;
  h.mix(digest_comparison(results));
  for (const metrics::ExperimentResult& r : results) {
    const hadoop::RunSummary& s = r.summary;
    h.mix(s.workflows_submitted);
    h.mix(s.workflows_rejected);
    h.mix(s.workflows_shed);
    h.mix(static_cast<std::uint64_t>(s.pending_peak));
    h.mix(s.tracker_decommissions);
    h.mix(s.tracker_preemptions);
    h.mix(s.trackers_joined);
    h.mix(s.drain_migrated);
    for (const hadoop::WorkflowResult& w : s.workflows) {
      h.mix(w.rejected);
      h.mix(w.shed);
    }
  }
  return h.value();
}

/// The pinned golden for digest_overload over this fixture (see
/// overload_determinism_test.cpp for the refresh procedure).
inline constexpr std::uint64_t kOverloadChaosGolden = 0xf1d7f80f4db586c2ull;

}  // namespace woha::testing

// The observability layer's hardest requirement: attaching the event bus,
// the metrics registry, and every exporter must not perturb the simulation.
// Three runs of the same workload — bus idle, bus with a subscriber +
// registry, bus with all exporters + log bridge — must produce bit-identical
// run summaries AND leave the engine RNG in the bit-identical state (so not
// a single extra random draw happened anywhere).
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <sstream>
#include <variant>

#include "core/woha_scheduler.hpp"
#include "hadoop/engine.hpp"
#include "obs/export_chrome.hpp"
#include "obs/export_jsonl.hpp"
#include "obs/log_bridge.hpp"
#include "obs/metrics_registry.hpp"
#include "trace/paper_workloads.hpp"
#include "workflow/topology.hpp"

namespace woha {
namespace {

enum class Obs { kOff, kSubscribed, kFullExport };

struct RunOutput {
  hadoop::RunSummary summary;
  std::array<std::uint64_t, 5> rng_state;
};

RunOutput run(const hadoop::EngineConfig& config,
              const std::vector<wf::WorkflowSpec>& workload, Obs mode) {
  hadoop::Engine engine(config, std::make_unique<core::WohaScheduler>());

  obs::MetricsRegistry registry;
  std::ostringstream trace_out, jsonl_out;
  std::unique_ptr<obs::ChromeTraceExporter> chrome;
  std::unique_ptr<obs::JsonlExporter> jsonl;
  std::unique_ptr<obs::LogBridge> bridge;
  std::uint64_t decisions_seen = 0;

  if (mode != Obs::kOff) {
    engine.set_metrics_registry(&registry);
    engine.events().subscribe([&decisions_seen](const obs::Event& e) {
      decisions_seen += std::holds_alternative<obs::SchedulerDecision>(e.payload);
    });
  }
  if (mode == Obs::kFullExport) {
    chrome = std::make_unique<obs::ChromeTraceExporter>(engine.events(), trace_out);
    jsonl = std::make_unique<obs::JsonlExporter>(engine.events(), jsonl_out);
    bridge = std::make_unique<obs::LogBridge>(engine.events());
  }

  for (const auto& spec : workload) engine.submit(spec);
  engine.run();

  if (mode != Obs::kOff) {
    // The instrumentation genuinely ran — otherwise this test silently
    // degrades into plain determinism.
    EXPECT_GT(decisions_seen, 0u);
    EXPECT_GT(registry.counter("engine.heartbeats").value(), 0u);
  }
  return RunOutput{engine.summarize(), engine.rng_state()};
}

void expect_identical(const RunOutput& a, const RunOutput& b) {
  EXPECT_EQ(a.rng_state, b.rng_state);  // not one extra draw anywhere
  ASSERT_EQ(a.summary.workflows.size(), b.summary.workflows.size());
  for (std::size_t i = 0; i < a.summary.workflows.size(); ++i) {
    const auto& wa = a.summary.workflows[i];
    const auto& wb = b.summary.workflows[i];
    EXPECT_EQ(wa.finish_time, wb.finish_time) << "workflow " << i;
    EXPECT_EQ(wa.workspan, wb.workspan) << "workflow " << i;
    EXPECT_EQ(wa.tardiness, wb.tardiness) << "workflow " << i;
    EXPECT_EQ(wa.met_deadline, wb.met_deadline) << "workflow " << i;
    EXPECT_EQ(wa.failed, wb.failed) << "workflow " << i;
  }
  EXPECT_EQ(a.summary.makespan, b.summary.makespan);
  EXPECT_EQ(a.summary.events_fired, b.summary.events_fired);
  EXPECT_EQ(a.summary.select_calls, b.summary.select_calls);
  EXPECT_EQ(a.summary.tasks_executed, b.summary.tasks_executed);
  EXPECT_EQ(a.summary.tasks_failed, b.summary.tasks_failed);
  EXPECT_EQ(a.summary.tracker_crashes, b.summary.tracker_crashes);
  EXPECT_EQ(a.summary.attempts_killed, b.summary.attempts_killed);
  EXPECT_EQ(a.summary.map_outputs_lost, b.summary.map_outputs_lost);
  EXPECT_EQ(a.summary.speculative_launched, b.summary.speculative_launched);
  EXPECT_EQ(a.summary.speculative_won, b.summary.speculative_won);
  EXPECT_EQ(a.summary.blacklistings, b.summary.blacklistings);
  EXPECT_DOUBLE_EQ(a.summary.overall_utilization, b.summary.overall_utilization);
  EXPECT_DOUBLE_EQ(a.summary.map_locality_ratio, b.summary.map_locality_ratio);
}

// Chaos config: every stochastic engine feature on at once, so any RNG
// perturbation by the observability layer has maximal surface to show up.
hadoop::EngineConfig chaos_config() {
  hadoop::EngineConfig config;
  config.cluster.num_trackers = 6;
  config.cluster.map_slots_per_tracker = 2;
  config.cluster.reduce_slots_per_tracker = 1;
  config.cluster.heartbeat_period = seconds(3);
  config.seed = 42;
  config.duration_jitter_sigma = 0.3;
  config.task_failure_prob = 0.05;
  config.remote_map_penalty = 1.3;
  config.faults.tracker_mtbf = 400.0 * 1000.0;
  config.faults.tracker_restart_delay = seconds(60);
  config.faults.expiry_interval = seconds(120);
  config.faults.max_attempts = 25;
  config.faults.blacklist_task_failures = 3;
  config.faults.speculative_execution = true;
  return config;
}

std::vector<wf::WorkflowSpec> chaos_workload() {
  std::vector<wf::WorkflowSpec> out;
  for (std::uint32_t i = 0; i < 3; ++i) {
    auto spec = wf::diamond(3);
    spec.name = "wf" + std::to_string(i);
    spec.submit_time = i * seconds(30);
    spec.relative_deadline = minutes(40);
    out.push_back(spec);
  }
  return out;
}

TEST(ObservabilityDeterminism, ChaosRunUnchangedByObservers) {
  const auto config = chaos_config();
  const auto workload = chaos_workload();
  const auto off = run(config, workload, Obs::kOff);
  const auto subscribed = run(config, workload, Obs::kSubscribed);
  const auto exported = run(config, workload, Obs::kFullExport);

  // The chaos paths must actually fire for the comparison to mean anything.
  EXPECT_GT(off.summary.tracker_crashes, 0u);
  EXPECT_GT(off.summary.attempts_killed, 0u);
  EXPECT_GT(off.summary.tasks_failed, 0u);

  expect_identical(off, subscribed);
  expect_identical(off, exported);
}

// The paper's Fig. 8 trace (46 Yahoo-like workflows) at a contended cluster
// size: the realistic workload shape, jitter on, no node faults.
TEST(ObservabilityDeterminism, Fig8TraceUnchangedByObservers) {
  hadoop::EngineConfig config;
  config.cluster = hadoop::ClusterConfig::with_totals(200, 200);
  const auto workload = trace::fig8_trace(42);

  const auto off = run(config, workload, Obs::kOff);
  const auto exported = run(config, workload, Obs::kFullExport);
  expect_identical(off, exported);
}

}  // namespace
}  // namespace woha

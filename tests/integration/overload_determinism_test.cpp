// Determinism under the full overload + elasticity surface at once: open-loop
// arrivals past saturation (rho = 1.3), deadline-aware shedding, MTBF node
// churn, speculation, and duration jitter — for all six paper schedulers,
// with the invariant auditor attached. Two guarantees are pinned:
//
//  * a golden FNV digest over every deterministic summary field including
//    the new admission/elasticity counters (any decision drift anywhere in
//    the overload machinery flips it), and
//  * bit-identical results between the serial grid runner and a parallel
//    one (--jobs N must never change a scheduling decision).
//
// Refresh goldens only after an intentional semantic change:
//   WOHA_PRINT_GOLDENS=1 ./build/tests/integration_tests \
//       --gtest_filter='OverloadDeterminism.*'
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "metrics/grid.hpp"
#include "overload_scenario.hpp"

namespace woha {
namespace {

using testing::digest_overload;
using testing::overload_grid;
using testing::overload_workload;

bool print_goldens() { return std::getenv("WOHA_PRINT_GOLDENS") != nullptr; }

void check_digest(const char* label, std::uint64_t got, std::uint64_t want) {
  if (print_goldens()) {
    std::printf("golden %-24s 0x%016llxull\n", label,
                static_cast<unsigned long long>(got));
    return;
  }
  EXPECT_EQ(got, want) << label
                       << ": a deterministic overload/elasticity metric "
                          "changed. See the file comment before refreshing.";
}

TEST(OverloadDeterminism, ChaosOverloadSnapshotSerialEqualsParallel) {
  const auto workload = overload_workload();
  const auto grid = overload_grid(workload);

  metrics::GridOptions serial;
  serial.jobs = 1;
  const auto serial_results = metrics::run_grid(grid, serial);

  // The config must actually exercise every overload path, otherwise this
  // degrades into the plain chaos test.
  std::uint64_t shed = 0, crashes = 0, spec_launched = 0;
  std::uint32_t pending_peak = 0;
  for (const auto& r : serial_results) {
    shed += r.summary.workflows_shed;
    crashes += r.summary.tracker_crashes;
    spec_launched += r.summary.speculative_launched;
    pending_peak = std::max(pending_peak, r.summary.pending_peak);
    EXPECT_EQ(r.summary.workflows_submitted, 12u);
    // The budget held for every scheduler (the auditor also asserts this on
    // every sweep, against engine ground truth).
    EXPECT_LE(r.summary.pending_peak, 4u) << r.scheduler;
  }
  EXPECT_GT(shed, 0u);
  EXPECT_GT(crashes, 0u);
  EXPECT_GT(spec_launched, 0u);
  EXPECT_EQ(pending_peak, 4u);  // the budget was actually reached

  metrics::GridOptions parallel;
  parallel.jobs = 4;
  const auto parallel_results = metrics::run_grid(grid, parallel);
  ASSERT_EQ(serial_results.size(), parallel_results.size());
  EXPECT_EQ(digest_overload(serial_results), digest_overload(parallel_results))
      << "--jobs N changed a scheduling decision under overload";

  check_digest("overload_chaos", digest_overload(serial_results),
               testing::kOverloadChaosGolden);
}

}  // namespace
}  // namespace woha

// Determinism under the full overload + elasticity surface at once: open-loop
// arrivals past saturation (rho = 1.3), deadline-aware shedding, MTBF node
// churn, speculation, and duration jitter — for all six paper schedulers,
// with the invariant auditor attached. Two guarantees are pinned:
//
//  * a golden FNV digest over every deterministic summary field including
//    the new admission/elasticity counters (any decision drift anywhere in
//    the overload machinery flips it), and
//  * bit-identical results between the serial grid runner and a parallel
//    one (--jobs N must never change a scheduling decision).
//
// Refresh goldens only after an intentional semantic change:
//   WOHA_PRINT_GOLDENS=1 ./build/tests/integration_tests \
//       --gtest_filter='OverloadDeterminism.*'
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "hadoop/admission.hpp"
#include "metrics_digest.hpp"
#include "metrics/grid.hpp"
#include "trace/arrivals.hpp"
#include "trace/deadlines.hpp"
#include "workflow/topology.hpp"

namespace woha {
namespace {

bool print_goldens() { return std::getenv("WOHA_PRINT_GOLDENS") != nullptr; }

void check_digest(const char* label, std::uint64_t got, std::uint64_t want) {
  if (print_goldens()) {
    std::printf("golden %-24s 0x%016llxull\n", label,
                static_cast<unsigned long long>(got));
    return;
  }
  EXPECT_EQ(got, want) << label
                       << ": a deterministic overload/elasticity metric "
                          "changed. See the file comment before refreshing.";
}

/// digest_comparison plus the overload & elasticity fields it predates.
std::uint64_t digest_overload(
    const std::vector<metrics::ExperimentResult>& results) {
  testing::Fnv1a h;
  h.mix(testing::digest_comparison(results));
  for (const metrics::ExperimentResult& r : results) {
    const hadoop::RunSummary& s = r.summary;
    h.mix(s.workflows_submitted);
    h.mix(s.workflows_rejected);
    h.mix(s.workflows_shed);
    h.mix(static_cast<std::uint64_t>(s.pending_peak));
    h.mix(s.tracker_decommissions);
    h.mix(s.tracker_preemptions);
    h.mix(s.trackers_joined);
    h.mix(s.drain_migrated);
    for (const hadoop::WorkflowResult& w : s.workflows) {
      h.mix(w.rejected);
      h.mix(w.shed);
    }
  }
  return h.value();
}

std::vector<wf::WorkflowSpec> overload_workload() {
  std::vector<wf::WorkflowSpec> workflows;
  for (std::uint32_t i = 0; i < 12; ++i) {
    auto spec = wf::diamond(3);
    spec.name = "wf" + std::to_string(i);
    workflows.push_back(std::move(spec));
  }
  trace::DeadlinePolicy deadlines;
  deadlines.reference_cap = 12;
  trace::assign_deadlines(workflows, 5, deadlines);
  trace::ArrivalConfig arrivals;
  arrivals.shape = trace::ArrivalShape::kPoisson;
  arrivals.rho = 1.3;  // past saturation: the shed policy must engage
  arrivals.cluster_slots = 24;
  trace::assign_open_loop_arrivals(workflows, 7, arrivals);
  return workflows;
}

std::vector<metrics::GridPoint> overload_grid(
    const std::vector<wf::WorkflowSpec>& workload) {
  hadoop::EngineConfig config;
  config.audit = true;
  config.cluster.num_trackers = 8;
  config.cluster.map_slots_per_tracker = 2;
  config.cluster.reduce_slots_per_tracker = 1;
  config.seed = 42;
  config.duration_jitter_sigma = 0.3;
  config.admission.policy = hadoop::AdmissionPolicy::kShedLatestDeadlineFirst;
  config.admission.max_pending_workflows = 4;
  config.faults.tracker_mtbf = 600.0 * 1000.0;  // 600 s per tracker
  config.faults.tracker_restart_delay = seconds(30);
  config.faults.expiry_interval = seconds(60);
  config.faults.speculative_execution = true;
  std::vector<metrics::GridPoint> grid;
  for (const auto& entry : metrics::paper_schedulers()) {
    grid.push_back(metrics::GridPoint{config, &workload, entry});
  }
  return grid;
}

TEST(OverloadDeterminism, ChaosOverloadSnapshotSerialEqualsParallel) {
  const auto workload = overload_workload();
  const auto grid = overload_grid(workload);

  metrics::GridOptions serial;
  serial.jobs = 1;
  const auto serial_results = metrics::run_grid(grid, serial);

  // The config must actually exercise every overload path, otherwise this
  // degrades into the plain chaos test.
  std::uint64_t shed = 0, crashes = 0, spec_launched = 0;
  std::uint32_t pending_peak = 0;
  for (const auto& r : serial_results) {
    shed += r.summary.workflows_shed;
    crashes += r.summary.tracker_crashes;
    spec_launched += r.summary.speculative_launched;
    pending_peak = std::max(pending_peak, r.summary.pending_peak);
    EXPECT_EQ(r.summary.workflows_submitted, 12u);
    // The budget held for every scheduler (the auditor also asserts this on
    // every sweep, against engine ground truth).
    EXPECT_LE(r.summary.pending_peak, 4u) << r.scheduler;
  }
  EXPECT_GT(shed, 0u);
  EXPECT_GT(crashes, 0u);
  EXPECT_GT(spec_launched, 0u);
  EXPECT_EQ(pending_peak, 4u);  // the budget was actually reached

  metrics::GridOptions parallel;
  parallel.jobs = 4;
  const auto parallel_results = metrics::run_grid(grid, parallel);
  ASSERT_EQ(serial_results.size(), parallel_results.size());
  EXPECT_EQ(digest_overload(serial_results), digest_overload(parallel_results))
      << "--jobs N changed a scheduling decision under overload";

  check_digest("overload_chaos", digest_overload(serial_results),
               0xf1d7f80f4db586c2ull);
}

}  // namespace
}  // namespace woha

// Failure-injection property sweep: with task attempts failing randomly,
// every scheduler must still drive every workflow to completion with
// conserved accounting (successes == task count; attempts == successes +
// retries), and stay deterministic per seed.
#include <gtest/gtest.h>

#include "metrics/report.hpp"
#include "trace/paper_workloads.hpp"

namespace woha {
namespace {

struct FailureCase {
  std::size_t scheduler_index;  // into metrics::extended_schedulers()
  double failure_prob;
};

class FailureSweep : public ::testing::TestWithParam<FailureCase> {};

TEST_P(FailureSweep, EverythingCompletesWithRetries) {
  const auto [scheduler_index, failure_prob] = GetParam();
  const auto entry = metrics::extended_schedulers()[scheduler_index];

  hadoop::EngineConfig config;
  config.cluster = hadoop::ClusterConfig::paper_32_slaves();
  config.task_failure_prob = failure_prob;
  config.seed = 1234;

  const auto workload = trace::fig11_scenario();
  std::uint64_t expected = 0;
  for (const auto& w : workload) expected += w.total_tasks();

  const auto result = metrics::run_experiment(config, workload, entry);
  const auto& s = result.summary;
  EXPECT_EQ(s.tasks_executed - s.tasks_failed, expected) << entry.label;
  if (failure_prob > 0.0) EXPECT_GT(s.tasks_failed, 0u);
  for (const auto& wf_result : s.workflows) {
    EXPECT_GE(wf_result.finish_time, 0) << entry.label << " " << wf_result.name;
  }
}

TEST_P(FailureSweep, DeterministicUnderFailures) {
  const auto [scheduler_index, failure_prob] = GetParam();
  const auto entry = metrics::extended_schedulers()[scheduler_index];
  const auto workload = trace::fig2_scenario(seconds(30));

  hadoop::EngineConfig config;
  config.cluster.num_trackers = 3;
  config.cluster.map_slots_per_tracker = 1;
  config.cluster.reduce_slots_per_tracker = 1;
  config.task_failure_prob = failure_prob;
  config.seed = 77;

  hadoop::RunSummary runs[2];
  for (auto& run : runs) {
    run = metrics::run_experiment(config, workload, entry).summary;
  }
  EXPECT_EQ(runs[0].tasks_failed, runs[1].tasks_failed);
  for (std::size_t w = 0; w < runs[0].workflows.size(); ++w) {
    EXPECT_EQ(runs[0].workflows[w].finish_time, runs[1].workflows[w].finish_time);
  }
}

std::vector<FailureCase> make_cases() {
  std::vector<FailureCase> cases;
  for (std::size_t s = 0; s < 7; ++s) {
    cases.push_back({s, 0.05});
    cases.push_back({s, 0.25});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllSchedulers, FailureSweep,
                         ::testing::ValuesIn(make_cases()),
                         [](const auto& info) {
                           return "s" + std::to_string(info.param.scheduler_index) +
                                  "_p" +
                                  std::to_string(static_cast<int>(
                                      info.param.failure_prob * 100));
                         });

}  // namespace
}  // namespace woha

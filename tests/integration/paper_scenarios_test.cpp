// Cross-module integration tests asserting the *qualitative* claims of the
// paper's evaluation — the same claims the bench binaries quantify.
#include <gtest/gtest.h>

#include <map>

#include "metrics/metrics.hpp"
#include "metrics/report.hpp"
#include "trace/paper_workloads.hpp"
#include "workflow/topology.hpp"

namespace woha {
namespace {

hadoop::EngineConfig fig11_cluster() {
  hadoop::EngineConfig config;
  config.cluster = hadoop::ClusterConfig::paper_32_slaves();
  return config;
}

std::map<std::string, hadoop::RunSummary> run_fig11_all() {
  std::map<std::string, hadoop::RunSummary> out;
  const auto workload = trace::fig11_scenario();
  for (const auto& entry : metrics::paper_schedulers()) {
    out[entry.label] =
        metrics::run_experiment(fig11_cluster(), workload, entry).summary;
  }
  return out;
}

TEST(Fig11, WohaVariantsMeetAllDeadlines) {
  const auto results = run_fig11_all();
  for (const auto* label : {"WOHA-LPF", "WOHA-HLF", "WOHA-MPF"}) {
    const auto& summary = results.at(label);
    for (const auto& wf : summary.workflows) {
      EXPECT_TRUE(wf.met_deadline)
          << label << ": " << wf.name << " tardiness " << wf.tardiness;
    }
  }
}

TEST(Fig11, BaselinesMissDeadlines) {
  const auto results = run_fig11_all();
  // Fair "behaves the worst": every workflow shares and nobody is
  // prioritized near its deadline.
  EXPECT_GT(results.at("Fair").deadline_miss_ratio, 0.0);
  // FIFO sacrifices the late-arriving, tight-deadline W-3.
  const auto& fifo = results.at("FIFO");
  EXPECT_FALSE(fifo.workflows[2].met_deadline);
  // EDF favors W-3 (earliest absolute deadline) at W-1/W-2's expense:
  // at least one of them misses.
  const auto& edf = results.at("EDF");
  EXPECT_TRUE(!edf.workflows[0].met_deadline || !edf.workflows[1].met_deadline);
}

TEST(Fig11, EdfFavorsEarliestDeadlineWorkflow) {
  const auto results = run_fig11_all();
  const auto& edf = results.at("EDF");
  // W-3 has the earliest absolute deadline and EDF strictly prioritizes it,
  // so its workspan must be the smallest of the three.
  EXPECT_LT(edf.workflows[2].workspan, edf.workflows[0].workspan);
  EXPECT_LT(edf.workflows[2].workspan, edf.workflows[1].workspan);
}

TEST(Fig11, AllSchedulersExecuteEveryTask) {
  const auto workload = trace::fig11_scenario();
  std::uint64_t expected = 0;
  for (const auto& w : workload) expected += w.total_tasks();
  for (const auto& entry : metrics::paper_schedulers()) {
    const auto result = metrics::run_experiment(fig11_cluster(), workload, entry);
    EXPECT_EQ(result.summary.tasks_executed, expected) << entry.label;
    for (const auto& wf : result.summary.workflows) {
      EXPECT_GE(wf.finish_time, 0) << entry.label;
    }
  }
}

TEST(Fig12, WohaUtilizationAtLeastBaselines) {
  // Paper Fig. 12: WOHA increases cluster utilization relative to the
  // ported schedulers on the recurring workload. Assert the weaker, robust
  // direction: best WOHA variant >= worst baseline (strict ordering of all
  // six is seed-dependent noise).
  const auto workload = trace::fig12_scenario(2, minutes(40));
  double best_woha = 0.0, worst_baseline = 1.0;
  for (const auto& entry : metrics::paper_schedulers()) {
    const auto result = metrics::run_experiment(fig11_cluster(), workload, entry);
    const double u = result.summary.overall_utilization;
    if (entry.label.rfind("WOHA", 0) == 0) {
      best_woha = std::max(best_woha, u);
    } else {
      worst_baseline = std::min(worst_baseline, u);
    }
  }
  EXPECT_GE(best_woha, worst_baseline);
}

TEST(Fig8Trace, WohaBeatsFifoAndFairOnMissRatio) {
  // One cell of the Fig. 8 grid (the mid "240m-240r" cluster), all six
  // schedulers: WOHA variants must beat FIFO and Fair, which the paper
  // describes as "behaving terribly in meeting deadlines".
  hadoop::EngineConfig base;
  const auto workload = trace::fig8_trace(42);
  const auto cells = metrics::sweep_cluster_sizes(
      base, workload, {{"240m-240r", 240, 240}}, metrics::paper_schedulers());
  std::map<std::string, double> miss;
  for (const auto& c : cells) miss[c.scheduler] = c.deadline_miss_ratio;

  for (const auto* woha : {"WOHA-LPF", "WOHA-HLF", "WOHA-MPF"}) {
    EXPECT_LT(miss.at(woha), miss.at("FIFO")) << woha;
    EXPECT_LT(miss.at(woha), miss.at("Fair")) << woha;
  }
}

TEST(SlotTimelines, RecordedSeriesCoverAllWorkflows) {
  metrics::TimelineRecorder timeline;
  const auto result = metrics::run_experiment(
      fig11_cluster(), trace::fig11_scenario(), metrics::paper_schedulers()[3],
      &timeline);
  EXPECT_EQ(timeline.workflow_count(), 3u);
  // Each workflow must have used at least one map and one reduce slot.
  const auto map_peak = timeline.peak_occupancy(SlotType::kMap);
  const auto reduce_peak = timeline.peak_occupancy(SlotType::kReduce);
  for (std::uint32_t w = 0; w < 3; ++w) {
    EXPECT_GT(map_peak[w], 0u);
    EXPECT_GT(reduce_peak[w], 0u);
  }
  // Busy slot-time equals the run's accounted busy time per type.
  const auto busy = timeline.busy_slot_ms(SlotType::kMap);
  double total = 0.0;
  for (double b : busy) total += b;
  EXPECT_GT(total, 0.0);
  (void)result;
}

}  // namespace
}  // namespace woha

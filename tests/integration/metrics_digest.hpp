// Deterministic digest of a scheduler-comparison run, used to pin
// bit-identical metrics snapshots across engine refactors (the scale-out
// work must never change a single scheduling decision on the paper's
// workloads). Wall-clock fields (select_wall_ms and histogram sums) are
// excluded; everything else — per-workflow outcomes, counters, event
// totals — feeds an FNV-1a digest.
//
// Regenerating goldens after an *intentional* behaviour change:
//   WOHA_PRINT_GOLDENS=1 ./build/tests/integration_tests \
//       --gtest_filter='ScaleDeterminism.*'
// then paste the printed values into scale_determinism_test.cpp.
#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "metrics/report.hpp"

namespace woha::testing {

class Fnv1a {
 public:
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xffu;
      h_ *= 1099511628211ull;
    }
  }
  void mix(std::int64_t v) { mix(static_cast<std::uint64_t>(v)); }
  void mix(double v) { mix(std::bit_cast<std::uint64_t>(v)); }
  void mix(bool v) { mix(static_cast<std::uint64_t>(v)); }
  void mix(const std::string& s) {
    for (const char c : s) {
      h_ ^= static_cast<unsigned char>(c);
      h_ *= 1099511628211ull;
    }
  }
  [[nodiscard]] std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 1469598103934665603ull;
};

/// Digest every deterministic field of a multi-scheduler comparison, in
/// scheduler order. The digest covers per-run aggregates AND per-workflow
/// outcomes, so any divergence in any scheduling decision that affects an
/// observable result flips it.
inline std::uint64_t digest_comparison(
    const std::vector<metrics::ExperimentResult>& results) {
  Fnv1a h;
  for (const metrics::ExperimentResult& r : results) {
    const hadoop::RunSummary& s = r.summary;
    h.mix(r.scheduler);
    h.mix(s.makespan);
    h.mix(s.deadline_miss_ratio);
    h.mix(s.max_tardiness);
    h.mix(s.total_tardiness);
    h.mix(s.map_slot_utilization);
    h.mix(s.reduce_slot_utilization);
    h.mix(s.overall_utilization);
    h.mix(s.tasks_executed);
    h.mix(s.tasks_failed);
    h.mix(s.events_fired);
    h.mix(s.select_calls);
    h.mix(s.map_locality_ratio);
    h.mix(s.tracker_crashes);
    h.mix(s.attempts_killed);
    h.mix(s.map_outputs_lost);
    h.mix(s.workflows_failed);
    h.mix(s.blacklistings);
    h.mix(s.speculative_launched);
    h.mix(s.speculative_won);
    h.mix(s.speculative_wasted_ms);
    for (const hadoop::WorkflowResult& w : s.workflows) {
      h.mix(w.submit_time);
      h.mix(w.deadline);
      h.mix(w.finish_time);
      h.mix(w.workspan);
      h.mix(w.tardiness);
      h.mix(w.met_deadline);
      h.mix(w.failed);
    }
  }
  return h.value();
}

}  // namespace woha::testing

// Determinism under chaos: with every fault-model feature enabled at once
// (MTBF churn, injected task failures, speculation, blacklisting, duration
// jitter, locality), two runs with the same seeds must produce identical
// results — field for field, workflow for workflow. Event-loop tie-breaking,
// fault RNG streams, and all fault-path container iteration must therefore
// be fully deterministic.
#include <gtest/gtest.h>

#include <memory>
#include <variant>
#include <vector>

#include "core/woha_scheduler.hpp"
#include "hadoop/engine.hpp"
#include "workflow/topology.hpp"

namespace woha {
namespace {

hadoop::RunSummary chaos_run(core::QueueKind kind) {
  hadoop::EngineConfig config;
  config.cluster.num_trackers = 6;
  config.cluster.map_slots_per_tracker = 2;
  config.cluster.reduce_slots_per_tracker = 1;
  config.cluster.heartbeat_period = seconds(3);
  config.seed = 42;
  config.duration_jitter_sigma = 0.3;
  config.task_failure_prob = 0.05;
  config.remote_map_penalty = 1.3;
  config.faults.tracker_mtbf = 400.0 * 1000.0;  // 400 s per tracker
  config.faults.tracker_restart_delay = seconds(60);
  config.faults.expiry_interval = seconds(120);
  config.faults.max_attempts = 25;  // high enough that nothing is doomed
  config.faults.blacklist_task_failures = 3;
  config.faults.speculative_execution = true;

  core::WohaConfig woha;
  woha.queue = kind;
  hadoop::Engine engine(config,
                        std::make_unique<core::WohaScheduler>(woha));
  for (std::uint32_t i = 0; i < 3; ++i) {
    auto spec = wf::diamond(3);
    spec.name = "wf" + std::to_string(i);
    spec.submit_time = i * seconds(30);
    spec.relative_deadline = minutes(40);
    engine.submit(spec);
  }
  engine.run();
  return engine.summarize();
}

void expect_identical(const hadoop::RunSummary& a, const hadoop::RunSummary& b) {
  ASSERT_EQ(a.workflows.size(), b.workflows.size());
  for (std::size_t i = 0; i < a.workflows.size(); ++i) {
    const auto& wa = a.workflows[i];
    const auto& wb = b.workflows[i];
    EXPECT_EQ(wa.finish_time, wb.finish_time) << "workflow " << i;
    EXPECT_EQ(wa.workspan, wb.workspan) << "workflow " << i;
    EXPECT_EQ(wa.tardiness, wb.tardiness) << "workflow " << i;
    EXPECT_EQ(wa.met_deadline, wb.met_deadline) << "workflow " << i;
    EXPECT_EQ(wa.failed, wb.failed) << "workflow " << i;
  }
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_DOUBLE_EQ(a.deadline_miss_ratio, b.deadline_miss_ratio);
  EXPECT_EQ(a.max_tardiness, b.max_tardiness);
  EXPECT_EQ(a.total_tardiness, b.total_tardiness);
  EXPECT_DOUBLE_EQ(a.map_slot_utilization, b.map_slot_utilization);
  EXPECT_DOUBLE_EQ(a.reduce_slot_utilization, b.reduce_slot_utilization);
  EXPECT_DOUBLE_EQ(a.overall_utilization, b.overall_utilization);
  EXPECT_EQ(a.tasks_executed, b.tasks_executed);
  EXPECT_EQ(a.tasks_failed, b.tasks_failed);
  EXPECT_EQ(a.events_fired, b.events_fired);
  EXPECT_EQ(a.select_calls, b.select_calls);
  // select_wall_ms is wall-clock (host-dependent) and deliberately skipped.
  EXPECT_DOUBLE_EQ(a.map_locality_ratio, b.map_locality_ratio);
  EXPECT_EQ(a.tracker_crashes, b.tracker_crashes);
  EXPECT_EQ(a.attempts_killed, b.attempts_killed);
  EXPECT_EQ(a.map_outputs_lost, b.map_outputs_lost);
  EXPECT_EQ(a.workflows_failed, b.workflows_failed);
  EXPECT_EQ(a.blacklistings, b.blacklistings);
  EXPECT_EQ(a.speculative_launched, b.speculative_launched);
  EXPECT_EQ(a.speculative_won, b.speculative_won);
  EXPECT_DOUBLE_EQ(a.speculative_wasted_ms, b.speculative_wasted_ms);
}

class ChaosDeterminism : public ::testing::TestWithParam<core::QueueKind> {};

TEST_P(ChaosDeterminism, RepeatedRunsAreIdentical) {
  const auto first = chaos_run(GetParam());
  const auto second = chaos_run(GetParam());
  // The chaos config must actually exercise the fault paths, otherwise this
  // test silently degrades into the plain determinism test.
  EXPECT_GT(first.tracker_crashes, 0u);
  EXPECT_GT(first.attempts_killed, 0u);
  EXPECT_GT(first.tasks_failed, 0u);
  expect_identical(first, second);
}

INSTANTIATE_TEST_SUITE_P(Queues, ChaosDeterminism,
                         ::testing::Values(core::QueueKind::kDsl,
                                           core::QueueKind::kBst,
                                           core::QueueKind::kNaive),
                         [](const auto& info) { return to_string(info.param); });

// rho accounting invariant under full chaos: the scheduled-task credit of
// every workflow equals its count of non-speculative attempt starts. A
// double credit in a speculation race, a missing credit on a retry, or a
// backup leaking into the counter would break the equality. (Rollbacks via
// on_tasks_lost adjust the scheduler-side rho, never tasks_scheduled — the
// credit is per *launch*, and lost work launches again.)
TEST(ChaosRhoInvariant, ScheduledCreditMatchesNonSpeculativeStarts) {
  hadoop::EngineConfig config;
  config.cluster.num_trackers = 6;
  config.cluster.map_slots_per_tracker = 2;
  config.cluster.reduce_slots_per_tracker = 1;
  config.cluster.heartbeat_period = seconds(3);
  config.seed = 42;
  config.duration_jitter_sigma = 0.3;
  config.task_failure_prob = 0.05;
  config.faults.tracker_mtbf = 400.0 * 1000.0;
  config.faults.tracker_restart_delay = seconds(60);
  config.faults.expiry_interval = seconds(120);
  config.faults.max_attempts = 25;
  config.faults.blacklist_task_failures = 3;
  config.faults.speculative_execution = true;

  hadoop::Engine engine(config,
                        std::make_unique<core::WohaScheduler>(core::WohaConfig{}));
  std::vector<std::uint64_t> nonspec_starts(3, 0);
  engine.events().subscribe([&](const obs::Event& e) {
    if (const auto* t = std::get_if<obs::TaskStarted>(&e.payload)) {
      if (!t->speculative) ++nonspec_starts[t->workflow];
    }
  });
  for (std::uint32_t i = 0; i < 3; ++i) {
    auto spec = wf::diamond(3);
    spec.name = "wf" + std::to_string(i);
    spec.submit_time = i * seconds(30);
    spec.relative_deadline = minutes(40);
    engine.submit(spec);
  }
  engine.run();
  const auto summary = engine.summarize();
  ASSERT_GT(summary.speculative_launched, 0u);  // races actually occurred
  ASSERT_GT(summary.tracker_crashes, 0u);
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(engine.job_tracker().workflow(WorkflowId(i)).tasks_scheduled(),
              nonspec_starts[i])
        << "workflow " << i;
  }
}

}  // namespace
}  // namespace woha

// Pins bit-identical metrics digests for the paper's Fig. 8 / Fig. 11
// workloads and the scale-sweep workload, across all five schedulers. These
// goldens were captured on the pre-optimisation engine (linear slot scans,
// chained-timer event queue) and must survive every hot-path change: the
// indexed freelists, the calendar event queue and the availability indices
// are required to be decision-identical, not just "roughly the same".
//
// If a test here fails, the scale work changed a scheduling decision — that
// is a bug in the optimisation, not a golden to refresh. Only refresh after
// an intentional semantic change, via:
//   WOHA_PRINT_GOLDENS=1 ./build/tests/integration_tests \
//       --gtest_filter='ScaleDeterminism.*'
#include <cstdio>
#include <cstdlib>

#include <gtest/gtest.h>

#include "metrics_digest.hpp"
#include "metrics/metrics.hpp"
#include "trace/paper_workloads.hpp"
#include "trace/scale_workload.hpp"

namespace woha {
namespace {

bool print_goldens() { return std::getenv("WOHA_PRINT_GOLDENS") != nullptr; }

void check_digest(const char* label, std::uint64_t got, std::uint64_t want) {
  if (print_goldens()) {
    std::printf("golden %-24s 0x%016llxull\n", label,
                static_cast<unsigned long long>(got));
    return;
  }
  EXPECT_EQ(got, want) << label
                       << ": a deterministic metric changed. The hot-path "
                          "optimisations must be decision-identical; see the "
                          "file comment before touching this golden.";
}

TEST(ScaleDeterminism, Fig11Paper32Snapshot) {
  hadoop::EngineConfig config;
  config.audit = true;
  config.cluster = hadoop::ClusterConfig::paper_32_slaves();
  const auto results = metrics::run_comparison(config, trace::fig11_scenario(),
                                               metrics::paper_schedulers());
  check_digest("fig11_paper32", testing::digest_comparison(results),
               0x9c0440bbd4ecdad5ull);
}

TEST(ScaleDeterminism, Fig8Paper80Snapshot) {
  hadoop::EngineConfig config;
  config.audit = true;
  config.cluster = hadoop::ClusterConfig::paper_80_servers();
  const auto results = metrics::run_comparison(config, trace::fig8_trace(),
                                               metrics::paper_schedulers());
  check_digest("fig8_paper80", testing::digest_comparison(results),
               0x59e3378f75ea6305ull);
}

TEST(ScaleDeterminism, Fig8Slots200Snapshot) {
  hadoop::EngineConfig config;
  config.audit = true;
  config.cluster = hadoop::ClusterConfig::with_totals(200, 200);
  const auto results = metrics::run_comparison(config, trace::fig8_trace(),
                                               metrics::paper_schedulers());
  check_digest("fig8_200m200r", testing::digest_comparison(results),
               0xb7bf39fe07904c4bull);
}

// The bench workload itself, at a size small enough for ctest: two fig8
// replicas on 160 trackers. Pinning this digest keeps bench/scale_cluster
// results comparable across future engine changes.
TEST(ScaleDeterminism, ScaleWorkload160Snapshot) {
  hadoop::EngineConfig config;
  config.audit = true;
  config.cluster.num_trackers = 160;
  config.cluster.map_slots_per_tracker = 2;
  config.cluster.reduce_slots_per_tracker = 1;
  const auto results =
      metrics::run_comparison(config, trace::scale_workload(160),
                              metrics::paper_schedulers());
  check_digest("scale_160", testing::digest_comparison(results),
               0x9406f11ab911f50cull);
}

}  // namespace
}  // namespace woha

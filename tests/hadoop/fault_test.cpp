// Node-level fault model: tracker crashes, lease-expiry detection, map
// output invalidation, attempt budgets, blacklisting, and speculative
// execution (see fault.hpp and DESIGN.md "Fault model").
#include <gtest/gtest.h>

#include <memory>
#include <variant>

#include "core/woha_scheduler.hpp"
#include "hadoop/engine.hpp"
#include "sched/fifo_scheduler.hpp"
#include "workflow/topology.hpp"

namespace woha::hadoop {
namespace {

EngineConfig small_cluster(std::uint32_t trackers = 4) {
  EngineConfig config;
  config.cluster.num_trackers = trackers;
  config.cluster.map_slots_per_tracker = 2;
  config.cluster.reduce_slots_per_tracker = 1;
  config.cluster.heartbeat_period = seconds(1);
  config.seed = 5;
  return config;
}

wf::WorkflowSpec single_job(std::uint32_t maps, std::uint32_t reduces,
                            Duration map_d, Duration reduce_d) {
  wf::WorkflowSpec spec;
  spec.name = "mr";
  spec.jobs.push_back({"j0", maps, reduces, map_d, reduce_d, {}});
  return spec;
}

TEST(FaultValidation, RejectsBadSettings) {
  const auto reject = [](auto mutate) {
    FaultConfig faults;
    mutate(faults);
    EXPECT_THROW(faults.validate(4), std::invalid_argument);
  };
  reject([](FaultConfig& f) { f.tracker_mtbf = -1.0; });
  reject([](FaultConfig& f) { f.tracker_restart_delay = -1; });
  reject([](FaultConfig& f) { f.expiry_interval = 0; });
  reject([](FaultConfig& f) { f.speculative_slowness = 1.0; });
  reject([](FaultConfig& f) { f.speculative_slowness = 0.5; });
  reject([](FaultConfig& f) { f.speculative_min_runtime = -1; });
  reject([](FaultConfig& f) { f.events.push_back({4, seconds(1), kTimeInfinity}); });
  reject([](FaultConfig& f) { f.events.push_back({0, -1, kTimeInfinity}); });
  reject([](FaultConfig& f) { f.events.push_back({0, seconds(10), seconds(10)}); });
  reject([](FaultConfig& f) {
    // Second outage begins while the first is still in progress.
    f.events.push_back({0, seconds(10), seconds(100)});
    f.events.push_back({0, seconds(50), seconds(200)});
  });
  FaultConfig ok;
  ok.events.push_back({0, seconds(10), seconds(100)});
  ok.events.push_back({0, seconds(100), kTimeInfinity});  // back-to-back is fine
  ok.tracker_mtbf = 1e6;
  EXPECT_NO_THROW(ok.validate(4));
}

TEST(NodeChurn, CrashAndRestartStillCompletes) {
  auto config = small_cluster();
  config.faults.events.push_back({0, seconds(50), seconds(120)});
  config.faults.expiry_interval = seconds(60);
  Engine engine(config, std::make_unique<sched::FifoScheduler>());
  const auto spec = wf::chain(2);
  engine.submit(spec);
  engine.run();
  const auto summary = engine.summarize();
  ASSERT_EQ(summary.workflows.size(), 1u);
  EXPECT_GE(summary.workflows[0].finish_time, 0);
  EXPECT_FALSE(summary.workflows[0].failed);
  EXPECT_EQ(summary.tracker_crashes, 1u);
  EXPECT_GT(summary.attempts_killed, 0u);
  EXPECT_EQ(summary.workflows_failed, 0u);
}

TEST(NodeChurn, DetectionWaitsForLeaseExpiry) {
  // A tracker dies silently and never returns. The work it held cannot be
  // re-queued before the JobTracker's lease on it expires, so a longer
  // expiry interval delays completion by (roughly) the difference.
  const auto run_with_expiry = [](Duration expiry) {
    auto config = small_cluster();
    config.faults.events.push_back({0, seconds(50), kTimeInfinity});
    config.faults.expiry_interval = expiry;
    Engine engine(config, std::make_unique<sched::FifoScheduler>());
    engine.submit(single_job(10, 3, seconds(60), seconds(120)));
    engine.run();
    return engine.summarize();
  };
  const auto fast = run_with_expiry(seconds(60));
  const auto slow = run_with_expiry(seconds(600));
  ASSERT_GE(fast.workflows[0].finish_time, 0);
  ASSERT_GE(slow.workflows[0].finish_time, 0);
  // Tasks running on the dead node at t=50s are only re-queued at expiry.
  EXPECT_GE(slow.workflows[0].finish_time, seconds(50) + seconds(600));
  EXPECT_GT(slow.workflows[0].finish_time, fast.workflows[0].finish_time);
  EXPECT_GT(fast.attempts_killed, 0u);
}

TEST(NodeChurn, MapOutputLossForcesReexecution) {
  // Crash a tracker during the reduce phase: its completed map outputs die
  // with its local disk, so those maps re-execute even though they had
  // already succeeded once.
  auto config = small_cluster(2);
  config.faults.events.push_back({0, seconds(250), seconds(260)});
  Engine engine(config, std::make_unique<sched::FifoScheduler>());
  const auto spec = single_job(10, 3, seconds(60), seconds(300));
  std::uint64_t map_successes = 0;
  engine.set_task_observer([&](const TaskEvent& e) {
    if (e.slot == SlotType::kMap && !e.started && !e.failed && !e.killed) {
      ++map_successes;
    }
  });
  engine.submit(spec);
  engine.run();
  const auto summary = engine.summarize();
  ASSERT_GE(summary.workflows[0].finish_time, 0);
  EXPECT_GT(summary.map_outputs_lost, 0u);
  // Re-executed maps mean more successful map attempts than the job has maps.
  EXPECT_GT(map_successes, 10u);
  EXPECT_GT(summary.tasks_executed, spec.total_tasks());
}

TEST(NodeChurn, MtbfDrivenCrashesAreInjected) {
  auto config = small_cluster(6);
  config.faults.tracker_mtbf = 200.0 * 1000.0;  // 200 s per tracker
  config.faults.tracker_restart_delay = seconds(60);
  config.faults.expiry_interval = seconds(60);
  Engine engine(config, std::make_unique<sched::FifoScheduler>());
  engine.submit(wf::paper_fig7_topology());
  engine.run();
  const auto summary = engine.summarize();
  ASSERT_GE(summary.workflows[0].finish_time, 0);
  EXPECT_GT(summary.tracker_crashes, 0u);
}

TEST(NodeChurn, WholeClusterLossTerminatesTheRun) {
  // Every tracker dies and none come back: the engine must stop instead of
  // heartbeating an empty cluster forever.
  auto config = small_cluster(2);
  config.faults.events.push_back({0, seconds(30), kTimeInfinity});
  config.faults.events.push_back({1, seconds(40), kTimeInfinity});
  config.faults.expiry_interval = seconds(60);
  Engine engine(config, std::make_unique<sched::FifoScheduler>());
  engine.submit(single_job(10, 3, seconds(60), seconds(120)));
  engine.run();
  const auto summary = engine.summarize();
  EXPECT_EQ(summary.tracker_crashes, 2u);
  EXPECT_LT(summary.workflows[0].finish_time, 0);  // unfinished, not hung
}

TEST(WohaChurn, ProgressRegressionKeepsQueueConsistent) {
  // Killing scheduled tasks regresses rho; every queue implementation must
  // absorb the regression without corrupting its ordering invariants.
  for (const auto kind :
       {core::QueueKind::kDsl, core::QueueKind::kBst, core::QueueKind::kNaive}) {
    auto config = small_cluster();
    config.faults.events.push_back({0, seconds(50), seconds(150)});
    config.faults.expiry_interval = seconds(60);
    core::WohaConfig woha;
    woha.queue = kind;
    Engine engine(config, std::make_unique<core::WohaScheduler>(woha));
    auto spec = wf::chain(3);
    spec.relative_deadline = hours(2);
    engine.submit(spec);
    engine.run();
    const auto summary = engine.summarize();
    ASSERT_EQ(summary.workflows.size(), 1u) << core::to_string(kind);
    EXPECT_GE(summary.workflows[0].finish_time, 0) << core::to_string(kind);
    EXPECT_EQ(summary.tracker_crashes, 1u) << core::to_string(kind);
    EXPECT_GT(summary.attempts_killed, 0u) << core::to_string(kind);
  }
}

TEST(Blacklisting, RepeatOffenderTrackerIsShunned) {
  auto config = small_cluster(6);
  config.task_failure_prob = 0.3;
  config.faults.blacklist_task_failures = 1;
  Engine engine(config, std::make_unique<sched::FifoScheduler>());
  engine.submit(wf::paper_fig7_topology());
  engine.run();
  const auto summary = engine.summarize();
  ASSERT_GE(summary.workflows[0].finish_time, 0);
  EXPECT_GT(summary.tasks_failed, 0u);
  EXPECT_GT(summary.blacklistings, 0u);
}

TEST(Blacklisting, CapNeverStarvesAJob) {
  // With a 2-tracker cluster and instant blacklisting, an uncapped
  // implementation would blacklist both trackers and spin forever. The
  // Hadoop-1 25%-of-cluster cap keeps at least one tracker usable.
  auto config = small_cluster(2);
  config.task_failure_prob = 0.5;
  config.faults.blacklist_task_failures = 1;
  Engine engine(config, std::make_unique<sched::FifoScheduler>());
  engine.submit(single_job(8, 2, seconds(30), seconds(60)));
  engine.run();
  const auto summary = engine.summarize();
  ASSERT_GE(summary.workflows[0].finish_time, 0);
  EXPECT_LE(summary.blacklistings, 1u);  // cap = max(1, 2/4) = 1
}

TEST(Speculation, BackupsRescueTasksStuckOnASilentlyDeadNode) {
  // A tracker dies 30 s in and never returns; the lease lasts 10 minutes.
  // Without speculation the tasks it held would stall until expiry. LATE
  // flags the zero-progress zombies and backs them up on live nodes, so the
  // job finishes long before the lease runs out.
  auto config = small_cluster();
  config.faults.events.push_back({0, seconds(30), kTimeInfinity});
  config.faults.expiry_interval = minutes(10);
  config.faults.speculative_execution = true;
  Engine engine(config, std::make_unique<sched::FifoScheduler>());
  engine.submit(single_job(10, 0, seconds(120), 0));
  engine.run();
  const auto summary = engine.summarize();
  ASSERT_GE(summary.workflows[0].finish_time, 0);
  EXPECT_LT(summary.workflows[0].finish_time, seconds(30) + minutes(10));
  EXPECT_GE(summary.speculative_launched, 2u);  // the dead node held 2 maps
}

TEST(Speculation, StragglersGetBackupsAndAccountingBalances) {
  auto config = small_cluster();
  config.duration_jitter_sigma = 0.8;
  config.faults.speculative_execution = true;
  config.faults.speculative_min_runtime = seconds(10);
  config.faults.speculative_slowness = 1.2;
  Engine engine(config, std::make_unique<sched::FifoScheduler>());
  const auto spec = single_job(30, 0, seconds(60), 0);
  engine.submit(spec);
  engine.run();
  const auto summary = engine.summarize();
  ASSERT_GE(summary.workflows[0].finish_time, 0);
  EXPECT_GT(summary.speculative_launched, 0u);
  // Every logical task succeeds exactly once; every other attempt start is
  // accounted for as a failure or a lost speculation race.
  EXPECT_EQ(summary.tasks_executed,
            spec.total_tasks() + summary.tasks_failed + summary.attempts_killed);
  // Without node churn every race resolves by killing exactly one rival.
  EXPECT_EQ(summary.attempts_killed, summary.speculative_launched);
  EXPECT_LE(summary.speculative_won, summary.speculative_launched);
}

TEST(NodeChurn, CrashRightAfterAssignmentReleasesExactlyTheHeldSlots) {
  // Crash-during-assignment: tracker 0 receives both of its map assignments
  // at the t=3000 heartbeat and dies at t=3001, before either runs a single
  // simulated millisecond. At lease expiry the detection sweep must release
  // exactly the two just-occupied map slots — no more, no less — or
  // Cluster::deactivate throws ("tracker has occupied slots" on a missed
  // release; TrackerState::release underflow on a double one). The restart
  // then re-links the tracker into the per-type freelists at full capacity.
  auto config = small_cluster();
  config.faults.events.push_back({0, 3001, seconds(300)});
  config.faults.expiry_interval = seconds(30);
  Engine engine(config, std::make_unique<sched::FifoScheduler>());

  std::uint32_t zombies_killed = 0;
  bool freelist_checked = false;
  engine.events().subscribe([&](const obs::Event& e) {
    if (const auto* t = std::get_if<obs::TrackerLost>(&e.payload)) {
      zombies_killed = t->attempts_killed;
      // Published after the kill sweep and deactivation: the dead tracker
      // is back to full (idle) capacity and off both freelists.
      const TrackerState& dead = engine.cluster().tracker(t->tracker);
      EXPECT_FALSE(dead.alive());
      EXPECT_EQ(dead.free_slots(SlotType::kMap), dead.capacity(SlotType::kMap));
      EXPECT_EQ(dead.free_slots(SlotType::kReduce),
                dead.capacity(SlotType::kReduce));
      for (std::size_t i = engine.cluster().first_free(SlotType::kMap);
           i != Cluster::kNoTracker;
           i = engine.cluster().next_free(SlotType::kMap, i)) {
        EXPECT_NE(i, t->tracker) << "dead tracker still on the map freelist";
      }
      freelist_checked = true;
    }
  });

  engine.submit(single_job(8, 2, seconds(120), seconds(60)));
  engine.run();
  const auto summary = engine.summarize();
  ASSERT_GE(summary.workflows[0].finish_time, 0);
  EXPECT_TRUE(freelist_checked);
  EXPECT_EQ(zombies_killed, 2u);  // exactly the two maps assigned at t=3000
  EXPECT_EQ(summary.tracker_crashes, 1u);

  // After the run every tracker is idle and back on both freelists; the
  // incremental counters agree with a from-scratch recount.
  for (const SlotType t : {SlotType::kMap, SlotType::kReduce}) {
    std::uint32_t live_with_free = 0;
    for (std::size_t i = 0; i < engine.cluster().tracker_count(); ++i) {
      const TrackerState& tr = engine.cluster().tracker(i);
      EXPECT_TRUE(tr.alive()) << "tracker " << i;
      EXPECT_EQ(tr.free_slots(t), tr.capacity(t)) << "tracker " << i;
      if (tr.alive() && tr.free_slots(t) > 0) ++live_with_free;
    }
    std::uint32_t on_list = 0;
    for (std::size_t i = engine.cluster().first_free(t);
         i != Cluster::kNoTracker; i = engine.cluster().next_free(t, i)) {
      ++on_list;
      ASSERT_LE(on_list, engine.cluster().tracker_count()) << "freelist cycle";
    }
    EXPECT_EQ(on_list, live_with_free);
    EXPECT_EQ(engine.cluster().free_tracker_count(t), live_with_free);
  }
}

TEST(Speculation, SameTickDetectionAndBackupFinishCountProgressOnce) {
  // Regression for the same-heartbeat-window speculation race: tracker 0
  // crashes silently at t=10s holding two map attempts; their backups launch
  // at t=123.25s on tracker 1 and finish at exactly t=243.25s. The expiry
  // interval is tuned so the lease-loss detection fires in the SAME tick
  // (243.25s) — and first within it, because its event was scheduled at
  // crash time and therefore carries a smaller sequence number. The
  // detection kills the zombie originals, whose rivals (the backups) are
  // still in flight: that kill must neither re-queue the task nor roll rho
  // back (the task is not lost — its twin completes it in this very tick).
  // A double credit or a spurious rollback would show up as extra executed
  // tasks, a later finish time, or a QueueReordered publication.
  auto config = small_cluster();
  config.faults.events.push_back({0, seconds(10), kTimeInfinity});
  config.faults.expiry_interval = 233250;  // detection at 10000 + 233250
  config.faults.speculative_execution = true;
  config.faults.speculative_min_runtime = seconds(30);
  core::WohaConfig woha;
  Engine engine(config, std::make_unique<core::WohaScheduler>(woha));

  SimTime tracker_lost_at = -1;
  std::uint64_t rho_rollbacks = 0;
  std::uint64_t completions = 0;
  SimTime last_completion_at = -1;
  engine.events().subscribe([&](const obs::Event& e) {
    if (std::get_if<obs::TrackerLost>(&e.payload)) tracker_lost_at = e.time;
    if (const auto* q = std::get_if<obs::QueueReordered>(&e.payload)) {
      rho_rollbacks += q->tasks_lost;
    }
    if (const auto* t = std::get_if<obs::TaskEnded>(&e.payload)) {
      if (!t->failed && !t->killed) {
        ++completions;
        last_completion_at = e.time;
      }
    }
  });

  auto spec = single_job(8, 0, seconds(120), 0);
  spec.relative_deadline = hours(2);
  engine.submit(spec);
  engine.run();
  const auto summary = engine.summarize();

  // The collision actually happened: detection and the winning backups
  // landed on one tick. (If engine timing ever shifts, re-derive the expiry
  // from a TaskStarted/TaskEnded trace rather than weakening the checks.)
  ASSERT_EQ(tracker_lost_at, 243250);
  ASSERT_EQ(last_completion_at, tracker_lost_at);

  // Exactly 8 logical completions — the two raced tasks were counted once.
  EXPECT_EQ(completions, 8u);
  EXPECT_EQ(summary.tasks_executed, 8u + summary.attempts_killed);
  EXPECT_EQ(summary.attempts_killed, 2u);    // the two zombie originals
  EXPECT_EQ(summary.speculative_launched, 2u);
  // The race was resolved by the detection kill, not by a finish-first win.
  EXPECT_EQ(summary.speculative_won, 0u);
  // The loser's kill saw a live rival: no task was lost, so rho must not
  // have been rolled back (a rollback publishes QueueReordered).
  EXPECT_EQ(rho_rollbacks, 0u);
  EXPECT_EQ(summary.workflows[0].finish_time, 243250);
  // rho (scheduled-task credit) matches non-speculative starts exactly:
  // 8 originals counted once each, backups bypass the counter.
  EXPECT_EQ(engine.job_tracker().workflow(WorkflowId(0)).tasks_scheduled(), 8u);
}

TEST(AttemptBudget, ExhaustionFailsTheWorkflow) {
  // Every attempt fails; two attempts per task are allowed. The workflow
  // must be reported FAILED (not run forever) and count as a deadline miss.
  const auto run_with = [](std::unique_ptr<WorkflowScheduler> scheduler) {
    auto config = small_cluster(2);
    config.task_failure_prob = 1.0;
    config.faults.max_attempts = 2;
    Engine engine(config, std::move(scheduler));
    auto spec = single_job(2, 0, seconds(10), 0);
    spec.relative_deadline = minutes(30);
    engine.submit(spec);
    engine.run();
    return engine.summarize();
  };
  for (int use_woha = 0; use_woha < 2; ++use_woha) {
    const auto summary =
        use_woha ? run_with(std::make_unique<core::WohaScheduler>(core::WohaConfig{}))
                 : run_with(std::make_unique<sched::FifoScheduler>());
    ASSERT_EQ(summary.workflows.size(), 1u);
    EXPECT_EQ(summary.workflows_failed, 1u);
    EXPECT_TRUE(summary.workflows[0].failed);
    EXPECT_LT(summary.workflows[0].finish_time, 0);
    EXPECT_FALSE(summary.workflows[0].met_deadline);
    EXPECT_DOUBLE_EQ(summary.deadline_miss_ratio, 1.0);
    EXPECT_GE(summary.tasks_failed, 2u);
  }
}

TEST(AttemptBudget, KilledAttemptsDoNotCountAgainstTheBudget) {
  // max_attempts == 1 means a single FAILED attempt dooms the workflow; a
  // node loss KILLS its attempts instead, so the workflow must survive the
  // crash and complete (Hadoop's KILLED vs FAILED distinction).
  auto config = small_cluster();
  config.faults.max_attempts = 1;
  config.faults.events.push_back({0, seconds(50), seconds(120)});
  config.faults.expiry_interval = seconds(30);
  Engine engine(config, std::make_unique<sched::FifoScheduler>());
  engine.submit(single_job(10, 3, seconds(60), seconds(120)));
  engine.run();
  const auto summary = engine.summarize();
  EXPECT_GT(summary.attempts_killed, 0u);
  EXPECT_EQ(summary.workflows_failed, 0u);
  EXPECT_GE(summary.workflows[0].finish_time, 0);
  EXPECT_FALSE(summary.workflows[0].failed);
}

}  // namespace
}  // namespace woha::hadoop

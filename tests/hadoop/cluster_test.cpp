#include "hadoop/cluster.hpp"

#include <gtest/gtest.h>

namespace woha::hadoop {
namespace {

TEST(ClusterConfig, Paper80Servers) {
  const auto c = ClusterConfig::paper_80_servers();
  EXPECT_EQ(c.num_trackers, 80u);
  EXPECT_EQ(c.total_map_slots(), 160u);
  EXPECT_EQ(c.total_reduce_slots(), 80u);
  EXPECT_EQ(c.total_slots(), 240u);
  EXPECT_EQ(c.heartbeat_period, seconds(3));
}

TEST(ClusterConfig, Paper32Slaves) {
  const auto c = ClusterConfig::paper_32_slaves();
  EXPECT_EQ(c.total_map_slots(), 64u);
  EXPECT_EQ(c.total_reduce_slots(), 32u);
}

TEST(ClusterConfig, WithTotalsExact) {
  for (const auto& [m, r] : {std::pair{200u, 200u}, {240u, 240u}, {280u, 280u},
                             {3u, 3u}, {64u, 32u}, {7u, 5u}}) {
    const auto c = ClusterConfig::with_totals(m, r);
    EXPECT_EQ(c.total_map_slots(), m) << m << "m-" << r << "r";
    EXPECT_EQ(c.total_reduce_slots(), r) << m << "m-" << r << "r";
    EXPECT_LE(c.num_trackers, 128u);
    EXPECT_GE(c.num_trackers, 1u);
  }
}

TEST(ClusterConfig, WithTotalsRejectsZero) {
  EXPECT_THROW((void)ClusterConfig::with_totals(0, 10), std::invalid_argument);
  EXPECT_THROW((void)ClusterConfig::with_totals(10, 0), std::invalid_argument);
}

TEST(TrackerState, OccupyRelease) {
  TrackerState t(TrackerId(0), 2, 1);
  EXPECT_EQ(t.free_slots(SlotType::kMap), 2u);
  t.occupy(SlotType::kMap);
  t.occupy(SlotType::kMap);
  EXPECT_EQ(t.free_slots(SlotType::kMap), 0u);
  EXPECT_THROW(t.occupy(SlotType::kMap), std::logic_error);
  t.release(SlotType::kMap);
  EXPECT_EQ(t.free_slots(SlotType::kMap), 1u);
  // Map and reduce slots are independent pools.
  EXPECT_EQ(t.free_slots(SlotType::kReduce), 1u);
  t.occupy(SlotType::kReduce);
  EXPECT_THROW(t.occupy(SlotType::kReduce), std::logic_error);
}

TEST(TrackerState, ReleaseBeyondCapacityThrows) {
  TrackerState t(TrackerId(0), 1, 1);
  EXPECT_THROW(t.release(SlotType::kMap), std::logic_error);
}

TEST(Cluster, AggregateCountsStayInSync) {
  ClusterConfig config;
  config.num_trackers = 3;
  config.map_slots_per_tracker = 2;
  config.reduce_slots_per_tracker = 1;
  Cluster cluster(config);
  EXPECT_EQ(cluster.total_free(SlotType::kMap), 6u);
  EXPECT_EQ(cluster.total_busy(SlotType::kMap), 0u);

  cluster.occupy(0, SlotType::kMap);
  cluster.occupy(1, SlotType::kMap);
  cluster.occupy(1, SlotType::kReduce);
  EXPECT_EQ(cluster.total_free(SlotType::kMap), 4u);
  EXPECT_EQ(cluster.total_busy(SlotType::kMap), 2u);
  EXPECT_EQ(cluster.total_free(SlotType::kReduce), 2u);

  cluster.release(0, SlotType::kMap);
  EXPECT_EQ(cluster.total_free(SlotType::kMap), 5u);
}

TEST(Cluster, RejectsZeroTrackers) {
  ClusterConfig config;
  config.num_trackers = 0;
  EXPECT_THROW(Cluster{config}, std::invalid_argument);
}

TEST(Cluster, OutOfRangeTrackerThrows) {
  Cluster cluster(ClusterConfig::paper_32_slaves());
  EXPECT_THROW(cluster.occupy(32, SlotType::kMap), std::out_of_range);
}

}  // namespace
}  // namespace woha::hadoop

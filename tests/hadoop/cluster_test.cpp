#include "hadoop/cluster.hpp"

#include <gtest/gtest.h>

namespace woha::hadoop {
namespace {

TEST(ClusterConfig, Paper80Servers) {
  const auto c = ClusterConfig::paper_80_servers();
  EXPECT_EQ(c.num_trackers, 80u);
  EXPECT_EQ(c.total_map_slots(), 160u);
  EXPECT_EQ(c.total_reduce_slots(), 80u);
  EXPECT_EQ(c.total_slots(), 240u);
  EXPECT_EQ(c.heartbeat_period, seconds(3));
}

TEST(ClusterConfig, Paper32Slaves) {
  const auto c = ClusterConfig::paper_32_slaves();
  EXPECT_EQ(c.total_map_slots(), 64u);
  EXPECT_EQ(c.total_reduce_slots(), 32u);
}

TEST(ClusterConfig, WithTotalsExact) {
  for (const auto& [m, r] : {std::pair{200u, 200u}, {240u, 240u}, {280u, 280u},
                             {3u, 3u}, {64u, 32u}, {7u, 5u}}) {
    const auto c = ClusterConfig::with_totals(m, r);
    EXPECT_EQ(c.total_map_slots(), m) << m << "m-" << r << "r";
    EXPECT_EQ(c.total_reduce_slots(), r) << m << "m-" << r << "r";
    EXPECT_LE(c.num_trackers, 128u);
    EXPECT_GE(c.num_trackers, 1u);
  }
}

TEST(ClusterConfig, WithTotalsRejectsZero) {
  EXPECT_THROW((void)ClusterConfig::with_totals(0, 10), std::invalid_argument);
  EXPECT_THROW((void)ClusterConfig::with_totals(10, 0), std::invalid_argument);
}

// Small coprime totals still fit on a single tracker and must stay valid.
TEST(ClusterConfig, WithTotalsSmallCoprimeIsValid) {
  const auto c = ClusterConfig::with_totals(2, 1);
  EXPECT_EQ(c.num_trackers, 1u);
  EXPECT_EQ(c.total_map_slots(), 2u);
  EXPECT_EQ(c.total_reduce_slots(), 1u);
}

// Regression: with_totals(200, 1) used to silently produce a single tracker
// carrying 200 map slots — a zero-parallelism "cluster". Near-coprime totals
// that cannot be split into realistic trackers must be rejected loudly.
TEST(ClusterConfig, WithTotalsRejectsDegenerateCoprime) {
  EXPECT_THROW((void)ClusterConfig::with_totals(200, 1), std::invalid_argument);
  EXPECT_THROW((void)ClusterConfig::with_totals(1, 200), std::invalid_argument);
  EXPECT_THROW((void)ClusterConfig::with_totals(131, 7), std::invalid_argument);
}

TEST(TrackerState, OccupyRelease) {
  TrackerState t(TrackerId(0), 2, 1);
  EXPECT_EQ(t.free_slots(SlotType::kMap), 2u);
  t.occupy(SlotType::kMap);
  t.occupy(SlotType::kMap);
  EXPECT_EQ(t.free_slots(SlotType::kMap), 0u);
  EXPECT_THROW(t.occupy(SlotType::kMap), std::logic_error);
  t.release(SlotType::kMap);
  EXPECT_EQ(t.free_slots(SlotType::kMap), 1u);
  // Map and reduce slots are independent pools.
  EXPECT_EQ(t.free_slots(SlotType::kReduce), 1u);
  t.occupy(SlotType::kReduce);
  EXPECT_THROW(t.occupy(SlotType::kReduce), std::logic_error);
}

TEST(TrackerState, ReleaseBeyondCapacityThrows) {
  TrackerState t(TrackerId(0), 1, 1);
  EXPECT_THROW(t.release(SlotType::kMap), std::logic_error);
}

TEST(Cluster, AggregateCountsStayInSync) {
  ClusterConfig config;
  config.num_trackers = 3;
  config.map_slots_per_tracker = 2;
  config.reduce_slots_per_tracker = 1;
  Cluster cluster(config);
  EXPECT_EQ(cluster.total_free(SlotType::kMap), 6u);
  EXPECT_EQ(cluster.total_busy(SlotType::kMap), 0u);

  cluster.occupy(0, SlotType::kMap);
  cluster.occupy(1, SlotType::kMap);
  cluster.occupy(1, SlotType::kReduce);
  EXPECT_EQ(cluster.total_free(SlotType::kMap), 4u);
  EXPECT_EQ(cluster.total_busy(SlotType::kMap), 2u);
  EXPECT_EQ(cluster.total_free(SlotType::kReduce), 2u);

  cluster.release(0, SlotType::kMap);
  EXPECT_EQ(cluster.total_free(SlotType::kMap), 5u);
}

TEST(Cluster, RejectsZeroTrackers) {
  ClusterConfig config;
  config.num_trackers = 0;
  EXPECT_THROW(Cluster{config}, std::invalid_argument);
}

TEST(Cluster, OutOfRangeTrackerThrows) {
  Cluster cluster(ClusterConfig::paper_32_slaves());
  EXPECT_THROW(cluster.occupy(32, SlotType::kMap), std::out_of_range);
}

// Walk a freelist into a vector for order/membership assertions.
std::vector<std::size_t> freelist_of(const Cluster& cluster, SlotType t) {
  std::vector<std::size_t> out;
  for (std::size_t i = cluster.first_free(t); i != Cluster::kNoTracker;
       i = cluster.next_free(t, i)) {
    out.push_back(i);
    if (out.size() > cluster.tracker_count()) {
      ADD_FAILURE() << "freelist cycle";
      break;
    }
  }
  return out;
}

TEST(ClusterFreelist, StartsWithAllTrackersInIndexOrder) {
  ClusterConfig config;
  config.num_trackers = 4;
  Cluster cluster(config);
  EXPECT_EQ(freelist_of(cluster, SlotType::kMap),
            (std::vector<std::size_t>{0, 1, 2, 3}));
  EXPECT_EQ(freelist_of(cluster, SlotType::kReduce),
            (std::vector<std::size_t>{0, 1, 2, 3}));
  EXPECT_EQ(cluster.free_tracker_count(SlotType::kMap), 4u);
}

TEST(ClusterFreelist, OccupyToZeroUnlinksAndReleaseRelinks) {
  ClusterConfig config;
  config.num_trackers = 3;
  config.map_slots_per_tracker = 2;
  Cluster cluster(config);

  cluster.occupy(1, SlotType::kMap);  // 1 of 2 busy: stays on the list
  EXPECT_EQ(freelist_of(cluster, SlotType::kMap),
            (std::vector<std::size_t>{0, 1, 2}));
  cluster.occupy(1, SlotType::kMap);  // now full: must leave
  EXPECT_EQ(freelist_of(cluster, SlotType::kMap),
            (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(cluster.free_tracker_count(SlotType::kMap), 2u);
  // Reduce list is untouched by map traffic.
  EXPECT_EQ(cluster.free_tracker_count(SlotType::kReduce), 3u);

  cluster.release(1, SlotType::kMap);  // re-enters at the front
  EXPECT_EQ(freelist_of(cluster, SlotType::kMap),
            (std::vector<std::size_t>{1, 0, 2}));
}

TEST(ClusterFreelist, MarkDeadRemovesFromBothLists) {
  ClusterConfig config;
  config.num_trackers = 3;
  Cluster cluster(config);
  cluster.mark_dead(1);
  EXPECT_FALSE(cluster.tracker(1).alive());
  EXPECT_EQ(freelist_of(cluster, SlotType::kMap),
            (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(freelist_of(cluster, SlotType::kReduce),
            (std::vector<std::size_t>{0, 2}));
  EXPECT_THROW(cluster.mark_dead(1), std::logic_error);
}

TEST(ClusterFreelist, ReleaseOnDeadTrackerDoesNotRelink) {
  ClusterConfig config;
  config.num_trackers = 2;
  config.map_slots_per_tracker = 1;
  Cluster cluster(config);
  cluster.occupy(0, SlotType::kMap);   // tracker 0 full, off the list
  cluster.mark_dead(0);                // crashes while running a task
  cluster.release(0, SlotType::kMap);  // loss detection reconciles the slot
  EXPECT_EQ(freelist_of(cluster, SlotType::kMap), (std::vector<std::size_t>{1}));
  cluster.deactivate(0);
  EXPECT_EQ(cluster.total_free(SlotType::kMap), 1u);

  cluster.activate(0);  // restart: rejoins both pools
  EXPECT_EQ(freelist_of(cluster, SlotType::kMap), (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(cluster.free_tracker_count(SlotType::kMap), 2u);
}

}  // namespace
}  // namespace woha::hadoop

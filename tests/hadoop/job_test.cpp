#include "hadoop/job.hpp"

#include <gtest/gtest.h>

#include "workflow/topology.hpp"

namespace woha::hadoop {
namespace {

wf::JobSpec make_spec(std::uint32_t maps, std::uint32_t reduces) {
  wf::JobSpec spec;
  spec.name = "j";
  spec.num_maps = maps;
  spec.num_reduces = reduces;
  spec.map_duration = 100;
  spec.reduce_duration = 200;
  return spec;
}

TEST(JobInProgress, LifecycleStates) {
  const auto spec = make_spec(2, 1);
  JobInProgress job(JobRef{0, 0}, spec);
  EXPECT_EQ(job.state(), JobState::kWaiting);
  EXPECT_FALSE(job.has_available(SlotType::kMap));

  job.mark_activating();
  EXPECT_EQ(job.state(), JobState::kActivating);
  EXPECT_FALSE(job.has_available(SlotType::kMap));

  job.mark_active(50);
  EXPECT_EQ(job.state(), JobState::kActive);
  EXPECT_EQ(job.activation_time(), 50);
  EXPECT_TRUE(job.has_available(SlotType::kMap));
}

TEST(JobInProgress, ReduceGatedOnMapPhase) {
  const auto spec = make_spec(2, 3);
  JobInProgress job(JobRef{0, 0}, spec);
  job.mark_active(0);
  EXPECT_FALSE(job.has_available(SlotType::kReduce));

  job.start_task(SlotType::kMap);
  job.start_task(SlotType::kMap);
  EXPECT_FALSE(job.has_available(SlotType::kMap));   // all maps running
  EXPECT_FALSE(job.has_available(SlotType::kReduce));  // maps not finished

  EXPECT_FALSE(job.finish_task(SlotType::kMap, 100));
  EXPECT_FALSE(job.has_available(SlotType::kReduce));  // 1 of 2 maps done
  EXPECT_FALSE(job.finish_task(SlotType::kMap, 100));
  EXPECT_TRUE(job.map_phase_done());
  EXPECT_TRUE(job.has_available(SlotType::kReduce));
}

TEST(JobInProgress, CompletesOnLastReduce) {
  const auto spec = make_spec(1, 2);
  JobInProgress job(JobRef{0, 0}, spec);
  job.mark_active(0);
  job.start_task(SlotType::kMap);
  EXPECT_FALSE(job.finish_task(SlotType::kMap, 100));
  job.start_task(SlotType::kReduce);
  job.start_task(SlotType::kReduce);
  EXPECT_FALSE(job.finish_task(SlotType::kReduce, 300));
  EXPECT_TRUE(job.finish_task(SlotType::kReduce, 300));
  EXPECT_TRUE(job.complete());
  EXPECT_EQ(job.finish_time(), 300);
  EXPECT_FALSE(job.has_any_available());
}

TEST(JobInProgress, MapOnlyJobCompletesOnLastMap) {
  const auto spec = make_spec(2, 0);
  JobInProgress job(JobRef{0, 0}, spec);
  job.mark_active(0);
  job.start_task(SlotType::kMap);
  job.start_task(SlotType::kMap);
  EXPECT_FALSE(job.finish_task(SlotType::kMap, 100));
  EXPECT_TRUE(job.finish_task(SlotType::kMap, 100));
  EXPECT_TRUE(job.complete());
}

TEST(JobInProgress, GuardsAgainstIllegalTransitions) {
  const auto spec = make_spec(1, 1);
  JobInProgress job(JobRef{0, 0}, spec);
  EXPECT_THROW(job.start_task(SlotType::kMap), std::logic_error);  // not active
  job.mark_active(0);
  EXPECT_THROW(job.mark_active(0), std::logic_error);  // double activation
  EXPECT_THROW(job.finish_task(SlotType::kMap, 1), std::logic_error);  // none running
  EXPECT_THROW(job.start_task(SlotType::kReduce), std::logic_error);   // gated
}

TEST(JobInProgress, CountersAreConsistent) {
  const auto spec = make_spec(3, 0);
  JobInProgress job(JobRef{0, 0}, spec);
  job.mark_active(0);
  EXPECT_EQ(job.pending(SlotType::kMap), 3u);
  job.start_task(SlotType::kMap);
  EXPECT_EQ(job.pending(SlotType::kMap), 2u);
  EXPECT_EQ(job.running(SlotType::kMap), 1u);
  EXPECT_EQ(job.running_total(), 1u);
  job.finish_task(SlotType::kMap, 10);
  EXPECT_EQ(job.finished(SlotType::kMap), 1u);
  EXPECT_EQ(job.running(SlotType::kMap), 0u);
}

TEST(WorkflowRuntime, TracksDependenciesAndUnlocks) {
  auto spec = wf::diamond(2);  // 0 -> {1,2} -> 3
  WorkflowRuntime rt(WorkflowId(0), spec, 1000);
  EXPECT_EQ(rt.job_count(), 4u);
  EXPECT_EQ(rt.remaining_prereqs(0), 0u);
  EXPECT_EQ(rt.remaining_prereqs(3), 2u);
  EXPECT_EQ(rt.unfinished_jobs(), 4u);

  // Complete job 0 (drive its task state machine manually).
  auto finish_job = [&](std::uint32_t j, SimTime at) {
    JobInProgress& job = rt.job(j);
    job.mark_activating();
    job.mark_active(at);
    for (std::uint32_t k = 0; k < job.spec().num_maps; ++k) job.start_task(SlotType::kMap);
    for (std::uint32_t k = 0; k < job.spec().num_maps; ++k) {
      job.finish_task(SlotType::kMap, at);
    }
    for (std::uint32_t k = 0; k < job.spec().num_reduces; ++k) {
      job.start_task(SlotType::kReduce);
    }
    for (std::uint32_t k = 0; k < job.spec().num_reduces; ++k) {
      job.finish_task(SlotType::kReduce, at);
    }
    return rt.on_job_complete(j, at);
  };

  EXPECT_EQ(finish_job(0, 2000), (std::vector<std::uint32_t>{1, 2}));
  EXPECT_EQ(finish_job(1, 3000), (std::vector<std::uint32_t>{}));
  EXPECT_EQ(finish_job(2, 4000), (std::vector<std::uint32_t>{3}));
  EXPECT_FALSE(rt.finished());
  EXPECT_EQ(finish_job(3, 5000), (std::vector<std::uint32_t>{}));
  EXPECT_TRUE(rt.finished());
  EXPECT_EQ(rt.finish_time(), 5000);
}

TEST(WorkflowRuntime, DeadlineFromRelative) {
  auto spec = wf::chain(1);
  spec.relative_deadline = minutes(10);
  WorkflowRuntime rt(WorkflowId(3), spec, 500);
  EXPECT_EQ(rt.deadline(), 500 + minutes(10));
  EXPECT_EQ(rt.id().value(), 3u);

  spec.relative_deadline = 0;
  WorkflowRuntime no_deadline(WorkflowId(4), spec, 500);
  EXPECT_EQ(no_deadline.deadline(), kTimeInfinity);
}

TEST(WorkflowRuntime, OnJobCompleteGuards) {
  auto spec = wf::chain(2);
  WorkflowRuntime rt(WorkflowId(0), spec, 0);
  // Job 0 not complete yet.
  EXPECT_THROW((void)rt.on_job_complete(0, 10), std::logic_error);
}

TEST(WorkflowRuntime, CountsScheduledTasks) {
  auto spec = wf::chain(1);
  WorkflowRuntime rt(WorkflowId(0), spec, 0);
  EXPECT_EQ(rt.tasks_scheduled(), 0u);
  rt.count_scheduled_task();
  rt.count_scheduled_task();
  EXPECT_EQ(rt.tasks_scheduled(), 2u);
}

}  // namespace
}  // namespace woha::hadoop

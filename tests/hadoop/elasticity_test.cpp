// Elastic membership (decommission / preemption waves / joins / autoscaler):
// config validation, drain semantics, the crash-vs-drain race, and the
// autoscaler hooks. The invariant auditor rides along wherever membership
// changes, so drain-no-assign / freelist / retirement ordering violations
// fail loudly here rather than as digest drift.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <variant>
#include <vector>

#include "audit/invariant_auditor.hpp"
#include "hadoop/engine.hpp"
#include "sched/fifo_scheduler.hpp"
#include "workflow/topology.hpp"

namespace woha::hadoop {
namespace {

EngineConfig small_cluster(std::uint32_t trackers = 4) {
  EngineConfig config;
  config.cluster.num_trackers = trackers;
  config.cluster.map_slots_per_tracker = 2;
  config.cluster.reduce_slots_per_tracker = 1;
  config.cluster.heartbeat_period = seconds(1);
  config.activation_latency = seconds(1);
  return config;
}

wf::WorkflowSpec busy_workflow(Duration task_len, std::uint32_t maps = 12) {
  wf::WorkflowSpec spec;
  spec.name = "busy";
  wf::JobSpec job;
  job.name = "only";
  job.num_maps = maps;
  job.num_reduces = 4;
  job.map_duration = task_len;
  job.reduce_duration = task_len;
  spec.jobs.push_back(job);
  return spec;
}

TEST(ElasticityConfigTest, Validation) {
  ElasticityConfig config;
  EXPECT_NO_THROW(config.validate(4));

  config.decommissions.push_back(TrackerDecommissionEvent{7, 0, minutes(2)});
  EXPECT_THROW(config.validate(4), std::invalid_argument);  // index out of range
  config.decommissions[0].tracker = 3;
  config.decommissions[0].drain_lease = 0;
  EXPECT_THROW(config.validate(4), std::invalid_argument);
  config.decommissions[0].drain_lease = minutes(2);
  EXPECT_NO_THROW(config.validate(4));

  config.preemption_waves.push_back(PreemptionWave{0, 0, seconds(60)});
  EXPECT_THROW(config.validate(4), std::invalid_argument);  // count 0
  config.preemption_waves[0].count = 1;
  EXPECT_NO_THROW(config.validate(4));

  config.joins.push_back(TrackerJoinEvent{0, 0});
  EXPECT_THROW(config.validate(4), std::invalid_argument);  // count 0
  config.joins[0].count = 2;
  EXPECT_NO_THROW(config.validate(4));
}

// Regression for the documented FaultConfig rule: a zero-length outage
// (restart_time == crash_time) is a schedule bug, not a no-op — the master
// could never observe it.
TEST(ElasticityConfigTest, ZeroLengthOutageRejected) {
  FaultConfig faults;
  faults.events.push_back(TrackerFaultEvent{0, seconds(10), seconds(10)});
  EXPECT_THROW(faults.validate(4), std::invalid_argument);
}

TEST(Elasticity, GracefulDrainFinishesRunningWork) {
  EngineConfig config = small_cluster();
  // Drain starts once work is running; the lease comfortably covers the
  // 10 s tasks, so nothing migrates.
  config.elasticity.decommissions.push_back(
      TrackerDecommissionEvent{3, seconds(5), minutes(5)});
  Engine engine(config, std::make_unique<sched::FifoScheduler>());
  audit::InvariantAuditor auditor(engine);
  std::vector<SimTime> draining_at, decommissioned_at;
  engine.events().subscribe([&](const obs::Event& e) {
    if (const auto* d = std::get_if<obs::TrackerDraining>(&e.payload)) {
      if (d->tracker == 3) draining_at.push_back(e.time);
    } else if (const auto* r = std::get_if<obs::TrackerDecommissioned>(&e.payload)) {
      if (r->tracker == 3) decommissioned_at.push_back(e.time);
    }
  });
  engine.submit(busy_workflow(seconds(10)));
  engine.run();
  auditor.full_sweep();
  const auto summary = engine.summarize();
  EXPECT_EQ(summary.tracker_decommissions, 1u);
  EXPECT_EQ(summary.drain_migrated, 0u);
  EXPECT_FALSE(summary.workflows[0].failed);
  ASSERT_EQ(draining_at.size(), 1u);
  ASSERT_EQ(decommissioned_at.size(), 1u);
  EXPECT_EQ(draining_at[0], seconds(5));
  // Retirement happens when the last running attempt ends, well before the
  // lease: the drain completed early.
  EXPECT_GT(decommissioned_at[0], draining_at[0]);
  EXPECT_LT(decommissioned_at[0], seconds(5) + minutes(5));
}

TEST(Elasticity, DrainLeaseExpiryMigratesStragglers) {
  EngineConfig config = small_cluster();
  // Tasks far outlive the lease: whatever runs on tracker 3 at expiry is
  // killed and re-queued.
  config.elasticity.decommissions.push_back(
      TrackerDecommissionEvent{3, seconds(5), seconds(10)});
  Engine engine(config, std::make_unique<sched::FifoScheduler>());
  audit::InvariantAuditor auditor(engine);
  engine.submit(busy_workflow(minutes(2)));
  engine.run();
  auditor.full_sweep();
  const auto summary = engine.summarize();
  EXPECT_EQ(summary.tracker_decommissions, 1u);
  EXPECT_GT(summary.drain_migrated, 0u);
  EXPECT_FALSE(summary.workflows[0].failed);  // migrated work re-ran elsewhere
  // Drain kills are KILLED, not FAILED: no attempt budget is charged.
  EXPECT_EQ(summary.tasks_failed, 0u);
}

TEST(Elasticity, IdleTrackerRetiresAtDrainStart) {
  EngineConfig config = small_cluster();
  config.elasticity.decommissions.push_back(
      TrackerDecommissionEvent{3, 0, minutes(2)});
  Engine engine(config, std::make_unique<sched::FifoScheduler>());
  std::vector<SimTime> decommissioned_at;
  engine.events().subscribe([&](const obs::Event& e) {
    if (const auto* r = std::get_if<obs::TrackerDecommissioned>(&e.payload)) {
      decommissioned_at.push_back(e.time);
      EXPECT_EQ(r->migrated, 0u);
    }
  });
  auto spec = busy_workflow(seconds(5));
  spec.submit_time = seconds(30);  // nothing is running at drain start
  engine.submit(spec);
  engine.run();
  ASSERT_EQ(decommissioned_at.size(), 1u);
  EXPECT_EQ(decommissioned_at[0], 0);
  EXPECT_EQ(engine.summarize().tracker_decommissions, 1u);
}

TEST(Elasticity, PreemptionWaveTerminatesAtWarning) {
  EngineConfig config = small_cluster();
  config.elasticity.preemption_waves.push_back(
      PreemptionWave{seconds(10), 2, seconds(15)});
  Engine engine(config, std::make_unique<sched::FifoScheduler>());
  audit::InvariantAuditor auditor(engine);
  std::vector<SimTime> warnings, terminations;
  engine.events().subscribe([&](const obs::Event& e) {
    if (const auto* w = std::get_if<obs::PreemptionWarning>(&e.payload)) {
      warnings.push_back(e.time);
      EXPECT_EQ(w->termination_time, seconds(10) + seconds(15));
    } else if (std::get_if<obs::TrackerDecommissioned>(&e.payload)) {
      terminations.push_back(e.time);
    }
  });
  engine.submit(busy_workflow(minutes(2)));
  engine.run();
  auditor.full_sweep();
  const auto summary = engine.summarize();
  EXPECT_EQ(summary.tracker_preemptions, 2u);
  EXPECT_EQ(summary.tracker_decommissions, 0u);  // preemptions counted apart
  EXPECT_GT(summary.drain_migrated, 0u);  // 2 min tasks never fit the warning
  EXPECT_FALSE(summary.workflows[0].failed);
  ASSERT_EQ(warnings.size(), 2u);
  ASSERT_EQ(terminations.size(), 2u);
  EXPECT_EQ(warnings[0], seconds(10));
  // Unlike a drain, preemption never retires early — termination lands at
  // exactly warning expiry even though the node still had running work.
  EXPECT_EQ(terminations[0], seconds(25));
  EXPECT_EQ(terminations[1], seconds(25));
}

TEST(Elasticity, JoinedTrackersReceiveWork) {
  EngineConfig config = small_cluster(2);
  config.elasticity.joins.push_back(TrackerJoinEvent{seconds(10), 2});
  Engine engine(config, std::make_unique<sched::FifoScheduler>());
  audit::InvariantAuditor auditor(engine);
  bool joined_tracker_ran_work = false;
  engine.events().subscribe([&](const obs::Event& e) {
    if (const auto* t = std::get_if<obs::TaskStarted>(&e.payload)) {
      joined_tracker_ran_work |= t->tracker >= 2;
    }
  });
  engine.submit(busy_workflow(seconds(30), /*maps=*/24));
  engine.run();
  auditor.full_sweep();
  const auto summary = engine.summarize();
  EXPECT_EQ(summary.trackers_joined, 2u);
  EXPECT_TRUE(joined_tracker_ran_work);
  EXPECT_FALSE(summary.workflows[0].failed);
}

// The race the drain lease was designed around: the node crashes at the
// exact instant the lease expires. Exactly one retirement path may win —
// never both (double release / double retire), never neither (leaked
// attempts) — and the outcome must be deterministic.
TEST(Elasticity, CrashAtExactDrainLeaseExpiryIsSingleDisposition) {
  auto run = [] {
    EngineConfig config = small_cluster();
    config.elasticity.decommissions.push_back(
        TrackerDecommissionEvent{3, seconds(5), seconds(30)});
    config.faults.events.push_back(
        TrackerFaultEvent{3, seconds(35), kTimeInfinity});  // == lease expiry
    config.faults.expiry_interval = seconds(10);
    Engine engine(config, std::make_unique<sched::FifoScheduler>());
    audit::InvariantAuditor auditor(engine);
    engine.submit(busy_workflow(minutes(2)));
    engine.run();
    auditor.full_sweep();
    return engine.summarize();
  };
  const auto a = run();
  EXPECT_EQ(a.tracker_crashes + a.tracker_decommissions, 1u)
      << "crash and drain-expiry both fired (or neither did) at the tie";
  EXPECT_FALSE(a.workflows[0].failed);
  const auto b = run();
  EXPECT_EQ(a.tracker_crashes, b.tracker_crashes);
  EXPECT_EQ(a.tracker_decommissions, b.tracker_decommissions);
  EXPECT_EQ(a.drain_migrated, b.drain_migrated);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.events_fired, b.events_fired);
}

// A crash strictly inside the lease wins the race, and the reboot forgets
// the drain entirely: the node re-registers as a fresh tracker and serves
// work again (the stale lease-expiry event must be ignored).
TEST(Elasticity, CrashDuringDrainForgetsTheDrain) {
  EngineConfig config = small_cluster();
  config.elasticity.decommissions.push_back(
      TrackerDecommissionEvent{3, seconds(5), minutes(10)});
  config.faults.events.push_back(
      TrackerFaultEvent{3, seconds(10), seconds(30)});
  config.faults.expiry_interval = seconds(5);
  Engine engine(config, std::make_unique<sched::FifoScheduler>());
  audit::InvariantAuditor auditor(engine);
  bool tracker3_worked_after_restart = false;
  engine.events().subscribe([&](const obs::Event& e) {
    if (const auto* t = std::get_if<obs::TaskStarted>(&e.payload)) {
      tracker3_worked_after_restart |= t->tracker == 3 && e.time > seconds(30);
    }
  });
  engine.submit(busy_workflow(seconds(20), /*maps=*/32));
  engine.run();
  auditor.full_sweep();
  const auto summary = engine.summarize();
  EXPECT_EQ(summary.tracker_crashes, 1u);
  EXPECT_EQ(summary.tracker_decommissions, 0u);
  EXPECT_TRUE(tracker3_worked_after_restart);
  EXPECT_FALSE(summary.workflows[0].failed);
}

TEST(Elasticity, AutoscalerScalesOutUnderBacklog) {
  EngineConfig config = small_cluster(2);
  config.elasticity.autoscaler.enabled = true;
  config.elasticity.autoscaler.check_period = seconds(5);
  config.elasticity.autoscaler.scale_out_pending = 1;
  config.elasticity.autoscaler.scale_in_pending = 0;  // never drain here
  config.elasticity.autoscaler.step = 1;
  config.elasticity.autoscaler.max_trackers = 6;
  Engine engine(config, std::make_unique<sched::FifoScheduler>());
  audit::InvariantAuditor auditor(engine);
  for (int i = 0; i < 4; ++i) {
    auto spec = busy_workflow(seconds(30));
    spec.name = "wf" + std::to_string(i);
    engine.submit(spec);
  }
  engine.run();
  auditor.full_sweep();
  const auto summary = engine.summarize();
  EXPECT_GT(summary.trackers_joined, 0u);
  EXPECT_LE(summary.trackers_joined, 4u);  // capped at max_trackers - initial
  for (const auto& w : summary.workflows) EXPECT_FALSE(w.failed);
}

TEST(Elasticity, CustomAutoscalePolicyDrivesJoinsAndDrains) {
  EngineConfig config = small_cluster(2);
  config.elasticity.autoscaler.enabled = true;
  config.elasticity.autoscaler.check_period = seconds(5);
  config.elasticity.autoscaler.max_trackers = 8;
  config.elasticity.autoscaler.min_trackers = 2;
  config.autoscale_policy = [](const AutoscaleSignal& s) -> std::int32_t {
    if (s.pending_workflows >= 3) return +2;
    if (s.pending_workflows <= 1 && s.live_trackers > 2) return -1;
    return 0;
  };
  Engine engine(config, std::make_unique<sched::FifoScheduler>());
  audit::InvariantAuditor auditor(engine);
  for (int i = 0; i < 4; ++i) {
    auto spec = busy_workflow(seconds(30));
    spec.name = "wf" + std::to_string(i);
    spec.submit_time = i * seconds(2);
    engine.submit(spec);
  }
  engine.run();
  auditor.full_sweep();
  const auto summary = engine.summarize();
  EXPECT_GT(summary.trackers_joined, 0u);
  EXPECT_GT(summary.tracker_decommissions, 0u);
  for (const auto& w : summary.workflows) EXPECT_FALSE(w.failed);
}

TEST(Elasticity, DeterministicAcrossRuns) {
  auto run = [] {
    EngineConfig config = small_cluster();
    config.elasticity.decommissions.push_back(
        TrackerDecommissionEvent{3, seconds(5), seconds(20)});
    config.elasticity.preemption_waves.push_back(
        PreemptionWave{seconds(40), 1, seconds(10)});
    config.elasticity.joins.push_back(TrackerJoinEvent{seconds(60), 2});
    Engine engine(config, std::make_unique<sched::FifoScheduler>());
    engine.submit(busy_workflow(seconds(45), /*maps=*/24));
    engine.run();
    return engine.summarize();
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.events_fired, b.events_fired);
  EXPECT_EQ(a.drain_migrated, b.drain_migrated);
  EXPECT_EQ(a.tracker_decommissions, b.tracker_decommissions);
  EXPECT_EQ(a.tracker_preemptions, b.tracker_preemptions);
  EXPECT_EQ(a.trackers_joined, b.trackers_joined);
  EXPECT_EQ(a.workflows[0].finish_time, b.workflows[0].finish_time);
}

}  // namespace
}  // namespace woha::hadoop

// Failure injection: task attempts die mid-execution and are retried, as in
// Hadoop. The workload must still complete, with conserved task accounting.
#include <gtest/gtest.h>

#include "hadoop/engine.hpp"
#include "sched/fifo_scheduler.hpp"
#include "workflow/topology.hpp"

namespace woha::hadoop {
namespace {

EngineConfig failing_cluster(double failure_prob, std::uint64_t seed = 3) {
  EngineConfig config;
  config.cluster.num_trackers = 6;
  config.cluster.map_slots_per_tracker = 2;
  config.cluster.reduce_slots_per_tracker = 1;
  config.cluster.heartbeat_period = seconds(1);
  config.task_failure_prob = failure_prob;
  config.seed = seed;
  return config;
}

TEST(FailureInjection, WorkloadStillCompletes) {
  Engine engine(failing_cluster(0.3), std::make_unique<sched::FifoScheduler>());
  const auto spec = wf::paper_fig7_topology();
  engine.submit(spec);
  engine.run();
  const auto summary = engine.summarize();
  ASSERT_EQ(summary.workflows.size(), 1u);
  EXPECT_GE(summary.workflows[0].finish_time, 0);
  // Attempts = successes + failures; successes == total tasks.
  EXPECT_GT(summary.tasks_failed, 0u);
  EXPECT_EQ(summary.tasks_executed - summary.tasks_failed, spec.total_tasks());
}

TEST(FailureInjection, ZeroProbabilityMeansNoFailures) {
  Engine engine(failing_cluster(0.0), std::make_unique<sched::FifoScheduler>());
  engine.submit(wf::diamond(3));
  engine.run();
  EXPECT_EQ(engine.summarize().tasks_failed, 0u);
}

TEST(FailureInjection, FailuresSlowTheWorkflowDown) {
  SimTime clean_finish, faulty_finish;
  {
    Engine engine(failing_cluster(0.0), std::make_unique<sched::FifoScheduler>());
    engine.submit(wf::paper_fig7_topology());
    engine.run();
    clean_finish = engine.summarize().workflows[0].finish_time;
  }
  {
    Engine engine(failing_cluster(0.4), std::make_unique<sched::FifoScheduler>());
    engine.submit(wf::paper_fig7_topology());
    engine.run();
    faulty_finish = engine.summarize().workflows[0].finish_time;
  }
  EXPECT_GT(faulty_finish, clean_finish);
}

TEST(FailureInjection, DeterministicPerSeed) {
  SimTime finish[2];
  for (int i = 0; i < 2; ++i) {
    Engine engine(failing_cluster(0.25, 11), std::make_unique<sched::FifoScheduler>());
    engine.submit(wf::paper_fig7_topology());
    engine.run();
    finish[i] = engine.summarize().workflows[0].finish_time;
  }
  EXPECT_EQ(finish[0], finish[1]);
}

TEST(FailureInjection, ObserverSeesFailedAttempts) {
  Engine engine(failing_cluster(0.3), std::make_unique<sched::FifoScheduler>());
  std::uint64_t started = 0, succeeded = 0, failed = 0;
  engine.set_task_observer([&](const TaskEvent& e) {
    if (e.started) {
      ++started;
    } else if (e.failed) {
      ++failed;
    } else {
      ++succeeded;
    }
  });
  const auto spec = wf::diamond(4);
  engine.submit(spec);
  engine.run();
  EXPECT_EQ(started, succeeded + failed);
  EXPECT_EQ(succeeded, spec.total_tasks());
  EXPECT_EQ(failed, engine.summarize().tasks_failed);
}

TEST(FailureInjection, RejectsInvalidProbability) {
  auto config = failing_cluster(0.0);
  // p == 1.0 is a valid (if extreme) setting: every attempt fails. Only
  // values outside [0, 1] are rejected.
  config.task_failure_prob = 1.0;
  EXPECT_NO_THROW(Engine(config, std::make_unique<sched::FifoScheduler>()));
  config.task_failure_prob = 1.0001;
  EXPECT_THROW(Engine(config, std::make_unique<sched::FifoScheduler>()),
               std::invalid_argument);
  config.task_failure_prob = -0.1;
  EXPECT_THROW(Engine(config, std::make_unique<sched::FifoScheduler>()),
               std::invalid_argument);
}

// Regression: a failed attempt must release its slot at the failure point,
// not at the attempt's originally scheduled completion. With one map slot,
// execution serializes, so every next start must follow the previous end
// within one heartbeat — if failures held their slot to full duration, the
// gap after a failed end would exceed the heartbeat period.
TEST(FailureInjection, FailedAttemptReleasesSlotAtFailurePoint) {
  EngineConfig config;
  config.cluster.num_trackers = 1;
  config.cluster.map_slots_per_tracker = 1;
  config.cluster.reduce_slots_per_tracker = 1;
  config.cluster.heartbeat_period = seconds(1);
  config.task_failure_prob = 0.5;
  config.seed = 7;
  Engine engine(config, std::make_unique<sched::FifoScheduler>());

  std::vector<TaskEvent> map_events;
  engine.set_task_observer([&](const TaskEvent& e) {
    if (e.slot == SlotType::kMap) map_events.push_back(e);
  });
  auto spec = wf::diamond(6);
  engine.submit(spec);
  engine.run();

  // After a FAILED end the job still has that map pending, so the freed
  // slot must be re-filled by the very next heartbeat. (Successful ends can
  // precede legitimate idle gaps — activation latency between jobs — so
  // only failures are checked.)
  std::uint64_t failures = 0;
  SimTime last_failed_end = -1;
  for (const auto& e : map_events) {
    if (e.started) {
      if (last_failed_end >= 0) {
        EXPECT_LE(e.time - last_failed_end, config.cluster.heartbeat_period)
            << "slot sat idle past one heartbeat after a failed attempt";
        last_failed_end = -1;
      }
    } else if (e.failed) {
      last_failed_end = e.time;
      ++failures;
    }
  }
  ASSERT_GT(failures, 0u) << "test needs at least one injected failure";
  EXPECT_GE(engine.summarize().workflows[0].finish_time, 0);
}

TEST(EngineValidation, RejectsEveryBadConfigField) {
  const auto reject = [](auto mutate) {
    auto config = failing_cluster(0.0);
    mutate(config);
    EXPECT_THROW(Engine(config, std::make_unique<sched::FifoScheduler>()),
                 std::invalid_argument);
  };
  reject([](EngineConfig& c) { c.activation_latency = -1; });
  reject([](EngineConfig& c) { c.duration_scale = 0.0; });
  reject([](EngineConfig& c) { c.duration_scale = -2.0; });
  reject([](EngineConfig& c) { c.task_failure_prob = -0.01; });
  reject([](EngineConfig& c) { c.task_failure_prob = 1.01; });
  reject([](EngineConfig& c) { c.remote_map_penalty = 0.99; });
  reject([](EngineConfig& c) { c.hdfs_replication = 0; });
  // FaultConfig is validated through the same constructor.
  reject([](EngineConfig& c) { c.faults.tracker_mtbf = -1.0; });
  reject([](EngineConfig& c) { c.faults.expiry_interval = 0; });
  reject([](EngineConfig& c) {
    c.faults.events.push_back({99, seconds(10), kTimeInfinity});  // no tracker 99
  });
  EXPECT_NO_THROW(
      Engine(failing_cluster(0.0), std::make_unique<sched::FifoScheduler>()));
}

TEST(Locality, RemotePenaltyStretchesMaps) {
  SimTime local_finish, penalized_finish;
  {
    Engine engine(failing_cluster(0.0), std::make_unique<sched::FifoScheduler>());
    engine.submit(wf::paper_fig7_topology());
    engine.run();
    local_finish = engine.summarize().workflows[0].finish_time;
    EXPECT_DOUBLE_EQ(engine.summarize().map_locality_ratio, 1.0);
  }
  {
    auto config = failing_cluster(0.0);
    config.remote_map_penalty = 2.0;
    config.hdfs_replication = 3;
    Engine engine(config, std::make_unique<sched::FifoScheduler>());
    engine.submit(wf::paper_fig7_topology());
    engine.run();
    const auto summary = engine.summarize();
    penalized_finish = summary.workflows[0].finish_time;
    // With 3 replicas over 6 trackers roughly 40% of maps are local.
    EXPECT_GT(summary.map_locality_ratio, 0.2);
    EXPECT_LT(summary.map_locality_ratio, 0.7);
  }
  EXPECT_GT(penalized_finish, local_finish);
}

TEST(Locality, FullReplicationIsAlwaysLocal) {
  auto config = failing_cluster(0.0);
  config.remote_map_penalty = 3.0;
  config.hdfs_replication = 1000;  // replica on virtually every tracker
  Engine engine(config, std::make_unique<sched::FifoScheduler>());
  engine.submit(wf::diamond(2));
  engine.run();
  EXPECT_GT(engine.summarize().map_locality_ratio, 0.95);
}

TEST(Locality, RejectsInvalidParameters) {
  auto config = failing_cluster(0.0);
  config.remote_map_penalty = 0.5;
  EXPECT_THROW(Engine(config, std::make_unique<sched::FifoScheduler>()),
               std::invalid_argument);
  config.remote_map_penalty = 1.0;
  config.hdfs_replication = 0;
  EXPECT_THROW(Engine(config, std::make_unique<sched::FifoScheduler>()),
               std::invalid_argument);
}

TEST(MasterOverhead, SelectCallsAreCountedAndCheap) {
  Engine engine(failing_cluster(0.0), std::make_unique<sched::FifoScheduler>());
  engine.submit(wf::paper_fig7_topology());
  engine.run();
  const auto summary = engine.summarize();
  EXPECT_GT(summary.select_calls, summary.tasks_executed);  // includes refusals
  EXPECT_GE(summary.select_wall_ms, 0.0);
}

}  // namespace
}  // namespace woha::hadoop

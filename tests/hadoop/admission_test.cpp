// Admission control and deadline-aware shedding (hadoop/admission.hpp +
// engine hooks): config validation, the feasibility gate, the pending
// budget, victim selection, and the conservation accounting the auditor
// cross-checks.
#include "hadoop/admission.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <variant>
#include <vector>

#include "audit/invariant_auditor.hpp"
#include "hadoop/engine.hpp"
#include "sched/fifo_scheduler.hpp"
#include "workflow/topology.hpp"

namespace woha::hadoop {
namespace {

EngineConfig small_cluster() {
  EngineConfig config;
  config.cluster.num_trackers = 4;
  config.cluster.map_slots_per_tracker = 2;
  config.cluster.reduce_slots_per_tracker = 1;
  config.cluster.heartbeat_period = seconds(1);
  config.activation_latency = seconds(1);
  return config;
}

wf::WorkflowSpec one_job(const std::string& name, Duration task_len,
                         Duration relative_deadline, SimTime submit = 0) {
  wf::WorkflowSpec spec;
  spec.name = name;
  wf::JobSpec job;
  job.name = "only";
  job.num_maps = 4;
  job.num_reduces = 2;
  job.map_duration = task_len;
  job.reduce_duration = task_len;
  spec.jobs.push_back(job);
  spec.submit_time = submit;
  spec.relative_deadline = relative_deadline;
  return spec;
}

TEST(AdmissionConfig, Validation) {
  AdmissionConfig config;
  EXPECT_NO_THROW(config.validate());  // admit-all ignores the knobs

  config.policy = AdmissionPolicy::kShedLatestDeadlineFirst;
  config.max_pending_workflows = 0;  // budget is shedding's only trigger
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.max_pending_workflows = 4;
  EXPECT_NO_THROW(config.validate());

  config.policy = AdmissionPolicy::kRejectInfeasible;
  config.max_pending_workflows = 0;  // feasibility alone may gate
  EXPECT_NO_THROW(config.validate());
  config.feasibility_margin = 0.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(Admission, AdmitAllIsInert) {
  auto run = [](AdmissionPolicy policy) {
    EngineConfig config = small_cluster();
    config.admission.policy = policy;
    Engine engine(config, std::make_unique<sched::FifoScheduler>());
    engine.submit(one_job("a", seconds(10), minutes(5)));
    engine.run();
    return engine.summarize();
  };
  const auto summary = run(AdmissionPolicy::kAdmitAll);
  EXPECT_EQ(summary.workflows_submitted, 1u);
  EXPECT_EQ(summary.workflows_rejected, 0u);
  EXPECT_EQ(summary.workflows_shed, 0u);
  EXPECT_EQ(summary.pending_peak, 1u);
  EXPECT_TRUE(summary.workflows[0].met_deadline);
}

TEST(Admission, RejectsDeadlineNoScheduleCanMeet) {
  EngineConfig config = small_cluster();
  config.admission.policy = AdmissionPolicy::kRejectInfeasible;
  Engine engine(config, std::make_unique<sched::FifoScheduler>());
  // Critical path is ~2 x 60 s; a 10 s deadline is infeasible at the door.
  engine.submit(one_job("doomed", seconds(60), seconds(10)));
  engine.submit(one_job("fine", seconds(60), minutes(30), seconds(5)));
  engine.run();
  const auto summary = engine.summarize();
  EXPECT_EQ(summary.workflows_submitted, 2u);
  EXPECT_EQ(summary.workflows_rejected, 1u);
  ASSERT_EQ(summary.workflows.size(), 2u);
  // The rejected workflow still appears in the results, counted as a miss.
  std::size_t rejected = 0;
  for (const auto& w : summary.workflows) {
    if (w.rejected) {
      ++rejected;
      EXPECT_EQ(w.name, "doomed");
      EXPECT_FALSE(w.met_deadline);
      EXPECT_FALSE(w.shed);
    } else {
      EXPECT_TRUE(w.met_deadline);
    }
  }
  EXPECT_EQ(rejected, 1u);
  EXPECT_GT(summary.deadline_miss_ratio, 0.0);
}

TEST(Admission, NoDeadlineWorkflowsPassTheFeasibilityGate) {
  EngineConfig config = small_cluster();
  config.admission.policy = AdmissionPolicy::kRejectInfeasible;
  Engine engine(config, std::make_unique<sched::FifoScheduler>());
  engine.submit(one_job("whenever", seconds(60), /*relative_deadline=*/0));
  engine.run();
  const auto summary = engine.summarize();
  EXPECT_EQ(summary.workflows_rejected, 0u);
  EXPECT_FALSE(summary.workflows[0].rejected);
}

TEST(Admission, PendingBudgetRejectsOverflow) {
  EngineConfig config = small_cluster();
  config.admission.policy = AdmissionPolicy::kRejectInfeasible;
  config.admission.max_pending_workflows = 2;
  Engine engine(config, std::make_unique<sched::FifoScheduler>());
  // Three long overlapping workflows, loose deadlines: feasibility passes,
  // the budget does not.
  for (int i = 0; i < 3; ++i) {
    engine.submit(one_job("wf" + std::to_string(i), seconds(120), hours(4),
                          i * seconds(1)));
  }
  engine.run();
  const auto summary = engine.summarize();
  EXPECT_EQ(summary.workflows_submitted, 3u);
  EXPECT_EQ(summary.workflows_rejected, 1u);
  EXPECT_LE(summary.pending_peak, 2u);
}

TEST(Admission, ShedEvictsLatestDeadlineFirst) {
  EngineConfig config = small_cluster();
  config.admission.policy = AdmissionPolicy::kShedLatestDeadlineFirst;
  config.admission.max_pending_workflows = 2;
  Engine engine(config, std::make_unique<sched::FifoScheduler>());
  std::vector<std::string> shed_events;
  audit::InvariantAuditor auditor(engine);
  engine.events().subscribe([&](const obs::Event& e) {
    if (const auto* s = std::get_if<obs::WorkflowShed>(&e.payload)) {
      shed_events.push_back("wf" + std::to_string(s->workflow));
    }
  });
  // wf0 has the loosest deadline: when wf2 arrives and busts the budget,
  // wf0 is the victim (latest deadline = least committed).
  engine.submit(one_job("wf0", seconds(120), hours(8), 0));
  engine.submit(one_job("wf1", seconds(120), hours(1), seconds(1)));
  engine.submit(one_job("wf2", seconds(120), hours(2), seconds(2)));
  engine.run();
  auditor.full_sweep();
  const auto summary = engine.summarize();
  EXPECT_EQ(summary.workflows_submitted, 3u);
  EXPECT_EQ(summary.workflows_rejected, 0u);
  EXPECT_EQ(summary.workflows_shed, 1u);
  EXPECT_LE(summary.pending_peak, 2u);
  ASSERT_EQ(shed_events.size(), 1u);
  EXPECT_EQ(shed_events[0], "wf0");
  ASSERT_EQ(summary.workflows.size(), 3u);
  EXPECT_TRUE(summary.workflows[0].shed);
  EXPECT_FALSE(summary.workflows[0].met_deadline);
  // Shed is its own outcome, not a task-level failure.
  EXPECT_FALSE(summary.workflows[0].failed);
  EXPECT_TRUE(summary.workflows[1].met_deadline);
  EXPECT_TRUE(summary.workflows[2].met_deadline);
}

TEST(Admission, ConservationHoldsUnderMixedOutcomes) {
  EngineConfig config = small_cluster();
  config.admission.policy = AdmissionPolicy::kShedLatestDeadlineFirst;
  config.admission.max_pending_workflows = 2;
  Engine engine(config, std::make_unique<sched::FifoScheduler>());
  audit::InvariantAuditor auditor(engine);
  for (int i = 0; i < 6; ++i) {
    engine.submit(one_job("wf" + std::to_string(i), seconds(90),
                          hours(1) + i * minutes(10), i * seconds(2)));
  }
  engine.run();
  auditor.full_sweep();  // admission-conservation + pending-bound checks
  const auto stats = engine.admission_stats();
  EXPECT_EQ(stats.submitted, 6u);
  EXPECT_EQ(stats.submitted, stats.admitted + stats.rejected);
  EXPECT_LE(stats.shed, stats.admitted);
  EXPECT_LE(stats.pending_peak, 2u);
  const auto summary = engine.summarize();
  EXPECT_EQ(summary.workflows.size(), 6u);
  EXPECT_EQ(summary.workflows_submitted, 6u);
}

// Determinism: admission decisions and shed victims are pure functions of
// JobTracker state, so repeated runs agree exactly.
TEST(Admission, DeterministicAcrossRuns) {
  auto run = [] {
    EngineConfig config = small_cluster();
    config.admission.policy = AdmissionPolicy::kShedLatestDeadlineFirst;
    config.admission.max_pending_workflows = 2;
    Engine engine(config, std::make_unique<sched::FifoScheduler>());
    for (int i = 0; i < 6; ++i) {
      engine.submit(one_job("wf" + std::to_string(i), seconds(90),
                            hours(1) + i * minutes(10), i * seconds(2)));
    }
    engine.run();
    return engine.summarize();
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.workflows.size(), b.workflows.size());
  for (std::size_t i = 0; i < a.workflows.size(); ++i) {
    EXPECT_EQ(a.workflows[i].finish_time, b.workflows[i].finish_time);
    EXPECT_EQ(a.workflows[i].shed, b.workflows[i].shed);
    EXPECT_EQ(a.workflows[i].rejected, b.workflows[i].rejected);
  }
  EXPECT_EQ(a.workflows_shed, b.workflows_shed);
  EXPECT_EQ(a.pending_peak, b.pending_peak);
  EXPECT_EQ(a.events_fired, b.events_fired);
}

}  // namespace
}  // namespace woha::hadoop

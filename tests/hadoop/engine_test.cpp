#include "hadoop/engine.hpp"

#include <gtest/gtest.h>

#include <map>

#include "sched/fifo_scheduler.hpp"
#include "workflow/topology.hpp"

namespace woha::hadoop {
namespace {

EngineConfig small_cluster() {
  EngineConfig config;
  config.cluster.num_trackers = 4;
  config.cluster.map_slots_per_tracker = 2;
  config.cluster.reduce_slots_per_tracker = 1;
  config.cluster.heartbeat_period = seconds(1);
  config.activation_latency = seconds(1);
  return config;
}

wf::WorkflowSpec single_job(std::uint32_t maps, std::uint32_t reduces) {
  wf::WorkflowSpec spec;
  spec.name = "single";
  wf::JobSpec job;
  job.name = "only";
  job.num_maps = maps;
  job.num_reduces = reduces;
  job.map_duration = seconds(10);
  job.reduce_duration = seconds(20);
  spec.jobs.push_back(job);
  return spec;
}

TEST(Engine, RunsSingleJobToCompletion) {
  Engine engine(small_cluster(), std::make_unique<sched::FifoScheduler>());
  engine.submit(single_job(4, 2));
  engine.run();
  const auto summary = engine.summarize();
  ASSERT_EQ(summary.workflows.size(), 1u);
  EXPECT_GE(summary.workflows[0].finish_time, 0);
  EXPECT_EQ(summary.tasks_executed, 6u);
  // Timing: 1s activation + <=1s heartbeat wait + 10s maps (one wave: 8
  // slots >= 4 maps) + <=1s heartbeat + 20s reduces. Bounds, not equality,
  // because of heartbeat staggering.
  EXPECT_GE(summary.workflows[0].workspan, seconds(31));
  EXPECT_LE(summary.workflows[0].workspan, seconds(35));
}

TEST(Engine, DeterministicAcrossRuns) {
  SimTime first = -1;
  for (int run = 0; run < 2; ++run) {
    Engine engine(small_cluster(), std::make_unique<sched::FifoScheduler>());
    engine.submit(wf::paper_fig7_topology());
    engine.run();
    const auto summary = engine.summarize();
    if (first < 0) {
      first = summary.workflows[0].finish_time;
    } else {
      EXPECT_EQ(summary.workflows[0].finish_time, first);
    }
  }
}

TEST(Engine, RespectsJobDependencies) {
  // chain: job 1 must not start a task before job 0 finished.
  auto spec = wf::chain(3);
  for (auto& job : spec.jobs) {
    job.num_maps = 2;
    job.num_reduces = 1;
    job.map_duration = seconds(5);
    job.reduce_duration = seconds(5);
  }
  Engine engine(small_cluster(), std::make_unique<sched::FifoScheduler>());

  std::map<std::uint32_t, SimTime> first_start, last_finish;
  engine.set_task_observer([&](const TaskEvent& e) {
    if (e.started) {
      if (!first_start.count(e.job.job)) first_start[e.job.job] = e.time;
    } else {
      last_finish[e.job.job] = e.time;
    }
  });
  engine.submit(spec);
  engine.run();

  ASSERT_EQ(first_start.size(), 3u);
  EXPECT_GE(first_start[1], last_finish[0]);
  EXPECT_GE(first_start[2], last_finish[1]);
}

TEST(Engine, NeverExceedsSlotCapacity) {
  auto config = small_cluster();
  Engine engine(config, std::make_unique<sched::FifoScheduler>());
  std::int64_t running[2] = {0, 0};
  const std::int64_t caps[2] = {config.cluster.total_map_slots(),
                                config.cluster.total_reduce_slots()};
  engine.set_task_observer([&](const TaskEvent& e) {
    auto& r = running[static_cast<std::size_t>(e.slot)];
    r += e.started ? 1 : -1;
    ASSERT_GE(r, 0);
    ASSERT_LE(r, caps[static_cast<std::size_t>(e.slot)]);
  });
  // Submit more work than fits: three wide workflows.
  for (int i = 0; i < 3; ++i) {
    auto spec = single_job(30, 10);
    spec.name = "wide-" + std::to_string(i);
    engine.submit(spec);
  }
  engine.run();
  EXPECT_EQ(engine.summarize().tasks_executed, 3u * 40u);
}

TEST(Engine, ActivationLatencyDelaysFirstTask) {
  auto config = small_cluster();
  config.activation_latency = seconds(30);
  Engine engine(config, std::make_unique<sched::FifoScheduler>());
  SimTime first_task = -1;
  engine.set_task_observer([&](const TaskEvent& e) {
    if (e.started && first_task < 0) first_task = e.time;
  });
  engine.submit(single_job(1, 0));
  engine.run();
  EXPECT_GE(first_task, seconds(30));
}

TEST(Engine, DurationScaleStretchesRuntime) {
  auto base = small_cluster();
  Engine normal(base, std::make_unique<sched::FifoScheduler>());
  normal.submit(single_job(2, 1));
  normal.run();

  auto slow_config = base;
  slow_config.duration_scale = 2.0;
  Engine slow(slow_config, std::make_unique<sched::FifoScheduler>());
  slow.submit(single_job(2, 1));
  slow.run();

  EXPECT_GT(slow.summarize().workflows[0].workspan,
            normal.summarize().workflows[0].workspan);
}

TEST(Engine, JitterKeepsDeterminismPerSeed) {
  auto config = small_cluster();
  config.duration_jitter_sigma = 0.3;
  config.seed = 7;
  SimTime finish[2];
  for (int i = 0; i < 2; ++i) {
    Engine engine(config, std::make_unique<sched::FifoScheduler>());
    engine.submit(single_job(8, 3));
    engine.run();
    finish[i] = engine.summarize().workflows[0].finish_time;
  }
  EXPECT_EQ(finish[0], finish[1]);

  config.seed = 8;
  Engine other(config, std::make_unique<sched::FifoScheduler>());
  other.submit(single_job(8, 3));
  other.run();
  EXPECT_NE(other.summarize().workflows[0].finish_time, finish[0]);
}

TEST(Engine, DeadlineAccounting) {
  auto spec = single_job(2, 1);
  spec.relative_deadline = hours(1);  // loose: met
  Engine engine(small_cluster(), std::make_unique<sched::FifoScheduler>());
  engine.submit(spec);

  auto tight = single_job(2, 1);
  tight.name = "tight";
  tight.relative_deadline = seconds(5);  // impossible: 30s of serial work
  engine.submit(tight);

  engine.run();
  const auto summary = engine.summarize();
  EXPECT_DOUBLE_EQ(summary.deadline_miss_ratio, 0.5);
  EXPECT_GT(summary.max_tardiness, 0);
  EXPECT_EQ(summary.total_tardiness, summary.max_tardiness);  // one miss
}

TEST(Engine, HorizonLeavesWorkflowUnfinished) {
  auto config = small_cluster();
  config.horizon = seconds(5);  // far less than the ~31s needed
  auto spec = single_job(2, 1);
  spec.relative_deadline = seconds(4);
  Engine engine(config, std::make_unique<sched::FifoScheduler>());
  engine.submit(spec);
  engine.run();
  const auto summary = engine.summarize();
  EXPECT_LT(summary.workflows[0].finish_time, 0);
  EXPECT_FALSE(summary.workflows[0].met_deadline);
  EXPECT_DOUBLE_EQ(summary.deadline_miss_ratio, 1.0);
}

TEST(Engine, UtilizationWithinBounds) {
  Engine engine(small_cluster(), std::make_unique<sched::FifoScheduler>());
  engine.submit(single_job(16, 4));
  engine.run();
  const auto summary = engine.summarize();
  EXPECT_GT(summary.map_slot_utilization, 0.0);
  EXPECT_LE(summary.map_slot_utilization, 1.0 + 1e-9);
  EXPECT_GT(summary.overall_utilization, 0.0);
  EXPECT_LE(summary.overall_utilization, 1.0 + 1e-9);
}

TEST(Engine, SubmitAfterRunThrows) {
  Engine engine(small_cluster(), std::make_unique<sched::FifoScheduler>());
  engine.submit(single_job(1, 0));
  engine.run();
  EXPECT_THROW(engine.submit(single_job(1, 0)), std::logic_error);
  EXPECT_THROW(engine.run(), std::logic_error);
}

TEST(Engine, RejectsNullSchedulerAndBadConfig) {
  EXPECT_THROW(Engine(small_cluster(), nullptr), std::invalid_argument);
  auto bad = small_cluster();
  bad.duration_scale = 0.0;
  EXPECT_THROW(Engine(bad, std::make_unique<sched::FifoScheduler>()),
               std::invalid_argument);
}

TEST(Engine, RejectsNonPositiveHeartbeatPeriodAtConstruction) {
  // Regression: this used to throw from run(), after submissions were
  // accepted — a misconfigured engine must fail before any work is queued.
  for (const Duration period : {Duration{0}, Duration{-seconds(1)}}) {
    auto bad = small_cluster();
    bad.cluster.heartbeat_period = period;
    EXPECT_THROW(Engine(bad, std::make_unique<sched::FifoScheduler>()),
                 std::invalid_argument)
        << "period=" << period;
  }
}

TEST(Engine, RejectsZeroHeartbeatBatch) {
  auto bad = small_cluster();
  bad.heartbeat_batch = 0;
  EXPECT_THROW(Engine(bad, std::make_unique<sched::FifoScheduler>()),
               std::invalid_argument);
}

TEST(Engine, HeartbeatBatchSizesProduceIdenticalSummaries) {
  // The same-tick empty-select memo is a pure wall-clock optimisation:
  // every observable summary field must match the unbatched engine.
  auto reference = small_cluster();
  reference.heartbeat_batch = 1;
  Engine ref_engine(reference, std::make_unique<sched::FifoScheduler>());
  ref_engine.submit(single_job(6, 3));
  ref_engine.run();
  const auto ref = ref_engine.summarize();
  for (const std::uint32_t batch : {2u, 8u, 64u}) {
    auto config = small_cluster();
    config.heartbeat_batch = batch;
    Engine engine(config, std::make_unique<sched::FifoScheduler>());
    engine.submit(single_job(6, 3));
    engine.run();
    const auto got = engine.summarize();
    EXPECT_EQ(got.makespan, ref.makespan) << "batch=" << batch;
    EXPECT_EQ(got.events_fired, ref.events_fired) << "batch=" << batch;
    EXPECT_EQ(got.select_calls, ref.select_calls) << "batch=" << batch;
    EXPECT_EQ(got.tasks_executed, ref.tasks_executed) << "batch=" << batch;
  }
}

TEST(Engine, StaggeredSubmissionsRespectSubmitTimes) {
  auto a = single_job(2, 1);
  a.name = "early";
  a.submit_time = 0;
  auto b = single_job(2, 1);
  b.name = "late";
  b.submit_time = minutes(5);
  Engine engine(small_cluster(), std::make_unique<sched::FifoScheduler>());
  engine.submit(a);
  engine.submit(b);
  engine.run();
  const auto summary = engine.summarize();
  EXPECT_EQ(summary.workflows[1].submit_time, minutes(5));
  EXPECT_GT(summary.workflows[1].finish_time, minutes(5));
}

}  // namespace
}  // namespace woha::hadoop

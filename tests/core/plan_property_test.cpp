// Property sweep over Algorithm 1: structural invariants of generated
// plans on random workflows, caps, and priority policies.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/job_priority.hpp"
#include "core/plan.hpp"
#include "core/plan_serialization.hpp"
#include "workflow/analysis.hpp"
#include "workflow/topology.hpp"

namespace woha::core {
namespace {

class PlanProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PlanProperty, InvariantsHold) {
  Rng rng(GetParam());
  wf::RandomDagParams params;
  params.num_jobs = static_cast<std::uint32_t>(rng.uniform_int(1, 30));
  params.num_layers = static_cast<std::uint32_t>(rng.uniform_int(1, 6));
  params.shape.num_maps = static_cast<std::uint32_t>(rng.uniform_int(1, 40));
  params.shape.num_reduces = static_cast<std::uint32_t>(rng.uniform_int(1, 12));
  const auto spec = wf::random_dag(rng, params);

  for (const auto policy : {JobPriorityPolicy::kHlf, JobPriorityPolicy::kLpf,
                            JobPriorityPolicy::kMpf}) {
    const auto rank = job_priority_ranks(spec, policy);
    const auto cap = static_cast<std::uint32_t>(rng.uniform_int(1, 128));
    const auto plan = generate_plan(spec, cap, rank);

    // 1. Every task is scheduled exactly once.
    EXPECT_EQ(plan.total_tasks(), spec.total_tasks());

    // 2. Steps strictly ordered: descending ttd, increasing cumulative req.
    for (std::size_t i = 1; i < plan.num_steps(); ++i) {
      EXPECT_LT(plan.step_ttd(i), plan.step_ttd(i - 1));
      EXPECT_GT(plan.step_req(i), plan.step_req(i - 1));
    }

    // 3. Makespan bounded below by both lower bounds and above by serial
    //    execution.
    EXPECT_GE(plan.simulated_makespan, wf::critical_path_length(spec));
    EXPECT_GE(plan.simulated_makespan,
              (wf::total_work(spec) + cap - 1) / cap);  // ceil(work / cap)
    EXPECT_LE(plan.simulated_makespan, wf::total_work(spec));

    // 4. The first scheduling instant is the plan's own makespan (work
    //    starts immediately in the client simulation) and the last step is
    //    strictly before completion.
    ASSERT_GT(plan.num_steps(), 0u);
    EXPECT_EQ(plan.step_ttd(0), plan.simulated_makespan);
    EXPECT_GT(plan.step_ttd(plan.num_steps() - 1), 0);

    // 5. At no instant does the requirement increase by more than the cap
    //    allows per wave... a single instant can schedule at most `cap`
    //    tasks (the pool size).
    std::uint64_t prev = 0;
    for (std::size_t i = 0; i < plan.num_steps(); ++i) {
      EXPECT_LE(plan.step_req(i) - prev, cap);
      prev = plan.step_req(i);
    }

    // 6. required_at is the right-continuous step function of the list.
    EXPECT_EQ(plan.required_at(plan.simulated_makespan + 1), 0u);
    EXPECT_EQ(plan.required_at(0), spec.total_tasks());
    for (std::size_t i = 0; i < plan.num_steps(); ++i) {
      EXPECT_EQ(plan.required_at(plan.step_ttd(i)), plan.step_req(i));
      EXPECT_LT(plan.required_at(plan.step_ttd(i) + 1), plan.step_req(i) + 1);
    }

    // 7. Serialization round-trips.
    const auto restored = deserialize_plan(serialize_plan(plan));
    EXPECT_EQ(restored.step_ttds(), plan.step_ttds());
    EXPECT_EQ(restored.step_reqs(), plan.step_reqs());
    EXPECT_EQ(restored.job_order, plan.job_order);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanProperty, ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace woha::core

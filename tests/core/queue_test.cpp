// Parameterized over the three SchedulerQueue implementations: all must
// implement Algorithm 2 identically; DSL/BST/naive only differ in cost.
#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "core/queue_bst.hpp"
#include "core/queue_dsl.hpp"
#include "core/queue_naive.hpp"
#include "core/scheduler_queue.hpp"

namespace woha::core {
namespace {

constexpr auto kAll = [](std::uint32_t) { return true; };

class QueueTest : public ::testing::TestWithParam<QueueKind> {
 protected:
  std::unique_ptr<SchedulerQueue> queue_ = make_queue(GetParam());
  // Plans must outlive ProgressTrackers; deque keeps addresses stable.
  std::deque<SchedulingPlan> plans_;

  /// Register a workflow whose requirement steps are given as (ttd, cum).
  void add(std::uint32_t id, SimTime deadline,
           std::vector<std::pair<Duration, std::uint64_t>> steps) {
    SchedulingPlan plan;
    plan.reserve_steps(steps.size());
    for (const auto& [ttd, cum] : steps) plan.append_step(ttd, cum);
    plan.simulated_makespan = steps.empty() ? 0 : steps.front().first;
    plans_.push_back(std::move(plan));
    queue_->insert(id, ProgressTracker(&plans_.back(), deadline));
  }
};

TEST_P(QueueTest, EmptyQueueReturnsNone) {
  EXPECT_EQ(queue_->assign(0, kAll), SchedulerQueue::kNone);
  EXPECT_EQ(queue_->size(), 0u);
}

TEST_P(QueueTest, MostLaggingWorkflowWins) {
  // At t=0 (deadline 100): wf 1 requires 5 tasks, wf 2 requires 2.
  add(1, 100, {{100, 5}});
  add(2, 100, {{100, 2}});
  EXPECT_EQ(queue_->assign(0, kAll), 1u);
}

TEST_P(QueueTest, RhoReducesPriorityAfterEachAssignment) {
  add(1, 100, {{100, 3}});
  add(2, 100, {{100, 2}});
  // lags: wf1=3, wf2=2 -> serve 1 (lag 2), tie with 2 -> smaller id wins,
  // serve 1 (lag 1), then 2 (lag 2)... full sequence:
  std::vector<std::uint32_t> sequence;
  for (int i = 0; i < 5; ++i) sequence.push_back(queue_->assign(0, kAll));
  EXPECT_EQ(sequence, (std::vector<std::uint32_t>{1, 1, 2, 1, 2}));
}

TEST_P(QueueTest, RequirementChangeReordersOverTime) {
  // wf 1: requires 1 task from t=0 (ttd=100 at deadline 100).
  // wf 2: requires 10 tasks from t=50 (ttd=50).
  add(1, 100, {{100, 1}});
  add(2, 100, {{50, 10}});
  EXPECT_EQ(queue_->assign(0, kAll), 1u);   // wf2 requirement not fired yet
  EXPECT_EQ(queue_->assign(49, kAll), 1u);  // still lag(1)=0 > lag(2)=0? ...
  // At t=50, wf2's requirement fires: lag jumps to 10.
  EXPECT_EQ(queue_->assign(50, kAll), 2u);
}

TEST_P(QueueTest, CanUseFilterSkipsToNextWorkflow) {
  add(1, 100, {{100, 9}});
  add(2, 100, {{100, 4}});
  add(3, 100, {{100, 6}});
  const auto not_1 = [](std::uint32_t id) { return id != 1; };
  EXPECT_EQ(queue_->assign(0, not_1), 3u);  // 1 is most lagging but unusable
  const auto none = [](std::uint32_t) { return false; };
  EXPECT_EQ(queue_->assign(0, none), SchedulerQueue::kNone);
}

TEST_P(QueueTest, AssignRejectionDoesNotChangeState) {
  add(1, 100, {{100, 5}});
  const auto none = [](std::uint32_t) { return false; };
  EXPECT_EQ(queue_->assign(0, none), SchedulerQueue::kNone);
  // rho must not have been bumped by the rejected pass.
  EXPECT_EQ(queue_->assign(0, kAll), 1u);
  EXPECT_EQ(queue_->assign(0, kAll), 1u);  // lag was 5, still winning
}

TEST_P(QueueTest, RemoveWorkflow) {
  add(1, 100, {{100, 5}});
  add(2, 100, {{100, 1}});
  queue_->remove(1);
  EXPECT_EQ(queue_->size(), 1u);
  EXPECT_EQ(queue_->assign(0, kAll), 2u);
  queue_->remove(99);  // absent: no-op
  EXPECT_EQ(queue_->size(), 1u);
}

TEST_P(QueueTest, NoDeadlineWorkflowActsAsBackground) {
  add(1, kTimeInfinity, {{100, 50}});  // no deadline: requirement never fires
  add(2, 100, {{100, 1}});
  EXPECT_EQ(queue_->assign(0, kAll), 2u);  // deadline-bearing workflow first
  // Once wf2 is ahead of its requirement (lag < 0 after 2 assignments),
  // the background workflow (lag 0 - rho) competes normally.
  EXPECT_EQ(queue_->assign(0, kAll), 1u);  // wf2 lag=-1, wf1 lag=0
}

TEST_P(QueueTest, MultipleStepsFireInOneGap) {
  // Steps at t=10,20,30 (deadline 100; ttds 90,80,70) all fired by t=35.
  add(1, 100, {{90, 1}, {80, 3}, {70, 7}});
  add(2, 100, {{100, 5}});
  EXPECT_EQ(queue_->assign(35, kAll), 1u);  // lag 7 beats 5 (walked 3 steps)
}

TEST_P(QueueTest, ProgressLossRestoresPriority) {
  add(1, 100, {{100, 3}});
  add(2, 100, {{100, 2}});
  EXPECT_EQ(queue_->assign(0, kAll), 1u);  // lags 3 vs 2
  EXPECT_EQ(queue_->assign(0, kAll), 1u);  // tie at 2, smaller id wins
  // Without the loss the next winner would be wf2 (lag 1 vs 2). A crash
  // undoes both of wf1's scheduled tasks: its lag climbs back to 3.
  queue_->on_progress_lost(1, 2);
  EXPECT_EQ(queue_->assign(0, kAll), 1u);
}

TEST_P(QueueTest, ProgressLossClampsAtZeroAndIgnoresAbsentIds) {
  add(1, 100, {{100, 1}});
  EXPECT_EQ(queue_->assign(0, kAll), 1u);
  queue_->on_progress_lost(1, 50);  // more than ever scheduled: rho clamps at 0
  EXPECT_EQ(queue_->assign(0, kAll), 1u);  // lag is 1 again, not negative junk
  queue_->on_progress_lost(99, 3);  // absent workflow: no-op, no throw
  EXPECT_EQ(queue_->size(), 1u);
}

TEST_P(QueueTest, DuplicateInsertThrows) {
  add(1, 100, {{100, 1}});
  SchedulingPlan plan;
  plans_.push_back(plan);
  EXPECT_THROW(queue_->insert(1, ProgressTracker(&plans_.back(), 100)),
               std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(Kinds, QueueTest,
                         ::testing::Values(QueueKind::kDsl, QueueKind::kBst,
                                           QueueKind::kBstPlain, QueueKind::kNaive),
                         [](const auto& info) { return to_string(info.param); });

class QueueEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QueueEquivalence, AllThreeImplementationsAgree) {
  Rng rng(GetParam());
  const int n_workflows = static_cast<int>(rng.uniform_int(2, 30));

  // Build one shared set of plans.
  std::deque<SchedulingPlan> plans;
  std::vector<SimTime> deadlines;
  for (int w = 0; w < n_workflows; ++w) {
    SchedulingPlan plan;
    const int n_steps = static_cast<int>(rng.uniform_int(1, 8));
    Duration ttd = rng.uniform_int(50, 400);
    std::uint64_t cum = 0;
    for (int s = 0; s < n_steps; ++s) {
      cum += static_cast<std::uint64_t>(rng.uniform_int(1, 9));
      plan.append_step(ttd, cum);
      ttd -= rng.uniform_int(5, 40);
      if (ttd <= 0) break;
    }
    plan.simulated_makespan = plan.step_ttd(0);
    plans.push_back(std::move(plan));
    deadlines.push_back(rng.uniform_int(100, 500));
  }

  auto dsl = make_queue(QueueKind::kDsl);
  auto bst = make_queue(QueueKind::kBst);
  auto bst_plain = make_queue(QueueKind::kBstPlain);
  auto naive = make_queue(QueueKind::kNaive);
  for (int w = 0; w < n_workflows; ++w) {
    for (auto* q : {dsl.get(), bst.get(), bst_plain.get(), naive.get()}) {
      q->insert(static_cast<std::uint32_t>(w),
                ProgressTracker(&plans[static_cast<std::size_t>(w)],
                                deadlines[static_cast<std::size_t>(w)]));
    }
  }

  // Drive all three with the same monotone clock and can_use pattern.
  SimTime now = 0;
  for (int call = 0; call < 300; ++call) {
    now += rng.uniform_int(0, 10);
    // Deterministic pseudo-random availability per (call, id).
    const std::uint64_t salt = rng.next();
    const auto can_use = [salt](std::uint32_t id) {
      std::uint64_t h = salt ^ (id * 0x9e3779b97f4a7c15ull);
      h ^= h >> 33;
      return (h & 7) != 0;  // ~87.5% available
    };
    const auto a = dsl->assign(now, can_use);
    const auto b = bst->assign(now, can_use);
    const auto b2 = bst_plain->assign(now, can_use);
    const auto c = naive->assign(now, can_use);
    ASSERT_EQ(a, b) << "call " << call << " now " << now;
    ASSERT_EQ(a, b2) << "call " << call << " now " << now;
    ASSERT_EQ(a, c) << "call " << call << " now " << now;
    // Occasionally lose the task again (simulated tracker crash); all
    // implementations must regress rho identically.
    if (a != SchedulerQueue::kNone && (salt & 1) != 0) {
      for (auto* q : {dsl.get(), bst.get(), bst_plain.get(), naive.get()}) {
        q->on_progress_lost(a, 1);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueueEquivalence,
                         ::testing::Range<std::uint64_t>(1, 21));

// Adversarial equal-lag workload: every workflow shares the same plan and
// deadline, so lags tie at every instant and the whole ordering rests on the
// (-lag, id) tie-break. The random fuzz above almost never produces ties;
// this test makes them the common case and checks full head orderings (not
// just the winner) across all four implementations, through assignments,
// progress losses (which recreate ties) and mid-run remove/reinsert (which
// exercises the duplicate-key insertion paths the skip list / std::map would
// otherwise fail silently on).
TEST(QueueEquivalence, EqualLagTieBreakIsIdenticalAcrossImplementations) {
  constexpr std::uint32_t kWorkflows = 12;
  // One step per 40 ticks so requirement changes keep firing; all workflows
  // change at the same instants (another source of same-key stress in the
  // ct structures).
  SchedulingPlan plan;
  for (Duration ttd = 400; ttd > 0; ttd -= 40) {
    plan.append_step(ttd, static_cast<std::uint64_t>((400 - ttd) / 40 + 1));
  }
  plan.simulated_makespan = plan.step_ttd(0);
  constexpr SimTime kDeadline = 400;

  auto dsl = make_queue(QueueKind::kDsl);
  auto bst = make_queue(QueueKind::kBst);
  auto bst_plain = make_queue(QueueKind::kBstPlain);
  auto naive = make_queue(QueueKind::kNaive);
  const auto all = {dsl.get(), bst.get(), bst_plain.get(), naive.get()};
  for (std::uint32_t w = 0; w < kWorkflows; ++w) {
    for (auto* q : all) q->insert(w, ProgressTracker(&plan, kDeadline));
  }

  const auto expect_same_ordering = [&](SimTime now) {
    std::vector<SchedulerQueue::QueueEntry> ref;
    dsl->top(kWorkflows, ref);
    for (auto* q : {bst.get(), bst_plain.get(), naive.get()}) {
      std::vector<SchedulerQueue::QueueEntry> got;
      q->top(kWorkflows, got);
      ASSERT_EQ(got.size(), ref.size()) << q->name() << " at t=" << now;
      for (std::size_t i = 0; i < ref.size(); ++i) {
        ASSERT_EQ(got[i].id, ref[i].id)
            << q->name() << " head position " << i << " at t=" << now;
        ASSERT_EQ(got[i].lag, ref[i].lag)
            << q->name() << " head position " << i << " at t=" << now;
      }
    }
  };

  Rng rng(7);
  SimTime now = 0;
  for (int call = 0; call < 400; ++call) {
    now += rng.uniform_int(0, 6);
    const std::uint64_t salt = rng.next();
    const auto can_use = [salt](std::uint32_t id) {
      std::uint64_t h = salt ^ (id * 0x9e3779b97f4a7c15ull);
      h ^= h >> 33;
      return (h & 3) != 0;
    };
    const auto winner = dsl->assign(now, can_use);
    for (auto* q : {bst.get(), bst_plain.get(), naive.get()}) {
      ASSERT_EQ(q->assign(now, can_use), winner)
          << q->name() << " call " << call << " t=" << now;
    }
    // Losses in bursts: several workflows collapse back onto the same lag.
    if (winner != SchedulerQueue::kNone && (salt & 7) == 0) {
      const std::uint32_t other = (winner + 1) % kWorkflows;
      for (auto* q : all) {
        q->on_progress_lost(winner, 2);
        q->on_progress_lost(other, 2);
      }
    }
    // Churn a workflow id through remove + reinsert: the fresh tracker ties
    // with the survivors (same plan, rho=0) and must slot back into the
    // exact same ordering position everywhere.
    if ((salt & 31) == 1) {
      const std::uint32_t victim = static_cast<std::uint32_t>(salt >> 8) % kWorkflows;
      for (auto* q : all) {
        q->remove(victim);
        q->insert(victim, ProgressTracker(&plan, kDeadline));
      }
    }
    expect_same_ordering(now);
  }
}

}  // namespace
}  // namespace woha::core

#include "core/job_priority.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "workflow/topology.hpp"

namespace woha::core {
namespace {

TEST(JobPriority, PolicyNames) {
  EXPECT_STREQ(to_string(JobPriorityPolicy::kHlf), "HLF");
  EXPECT_STREQ(to_string(JobPriorityPolicy::kLpf), "LPF");
  EXPECT_STREQ(to_string(JobPriorityPolicy::kMpf), "MPF");
  EXPECT_EQ(parse_job_priority_policy("hlf"), JobPriorityPolicy::kHlf);
  EXPECT_EQ(parse_job_priority_policy("LPF"), JobPriorityPolicy::kLpf);
  EXPECT_EQ(parse_job_priority_policy("Mpf"), JobPriorityPolicy::kMpf);
  EXPECT_THROW((void)parse_job_priority_policy("edf"), std::invalid_argument);
}

TEST(JobPriority, HlfOrdersByLevel) {
  const auto spec = wf::chain(4);  // levels 3,2,1,0
  const auto order = job_priority_order(spec, JobPriorityPolicy::kHlf);
  EXPECT_EQ(order, (std::vector<std::uint32_t>{0, 1, 2, 3}));
}

TEST(JobPriority, LpfPrefersLongerDownstreamPath) {
  // Two chains from independent roots: root0 -> long job; root1 -> short.
  wf::WorkflowSpec spec;
  spec.jobs.resize(4);
  for (auto& j : spec.jobs) {
    j.num_maps = 1;
    j.map_duration = seconds(1);
  }
  spec.jobs[0].name = "root0";
  spec.jobs[1].name = "root1";
  spec.jobs[2].name = "long";
  spec.jobs[2].map_duration = seconds(100);
  spec.jobs[2].prerequisites = {0};
  spec.jobs[3].name = "short";
  spec.jobs[3].map_duration = seconds(2);
  spec.jobs[3].prerequisites = {1};

  const auto order = job_priority_order(spec, JobPriorityPolicy::kLpf);
  // root0 (path 101s) > root1 (3s); long (100s) before short (2s).
  EXPECT_EQ(order[0], 0u);
  EXPECT_EQ(order[1], 2u);
  // HLF cannot tell the two roots apart (same level) and tie-breaks by id.
  const auto hlf = job_priority_order(spec, JobPriorityPolicy::kHlf);
  EXPECT_EQ(hlf[0], 0u);
  EXPECT_EQ(hlf[1], 1u);
}

TEST(JobPriority, MpfPrefersMostDependents) {
  const auto spec = wf::diamond(5);  // source has 5 dependents
  const auto order = job_priority_order(spec, JobPriorityPolicy::kMpf);
  EXPECT_EQ(order[0], 0u);  // source first
  EXPECT_EQ(order.back(), 6u);  // sink (0 dependents, highest id among them)
}

TEST(JobPriority, RanksAreInversePermutation) {
  const auto spec = wf::paper_fig7_topology();
  for (const auto policy : {JobPriorityPolicy::kHlf, JobPriorityPolicy::kLpf,
                            JobPriorityPolicy::kMpf}) {
    const auto order = job_priority_order(spec, policy);
    const auto rank = job_priority_ranks(spec, policy);
    ASSERT_EQ(order.size(), spec.jobs.size());
    ASSERT_EQ(rank.size(), spec.jobs.size());
    std::set<std::uint32_t> unique(order.begin(), order.end());
    EXPECT_EQ(unique.size(), order.size());
    for (std::uint32_t pos = 0; pos < order.size(); ++pos) {
      EXPECT_EQ(rank[order[pos]], pos);
    }
  }
}

TEST(JobPriority, TieBreakByJobId) {
  // All jobs identical and independent -> order must equal job ids.
  wf::WorkflowSpec spec;
  spec.jobs.resize(5);
  for (std::uint32_t j = 0; j < 5; ++j) {
    spec.jobs[j].name = "j" + std::to_string(j);
  }
  for (const auto policy : {JobPriorityPolicy::kHlf, JobPriorityPolicy::kLpf,
                            JobPriorityPolicy::kMpf}) {
    const auto order = job_priority_order(spec, policy);
    EXPECT_EQ(order, (std::vector<std::uint32_t>{0, 1, 2, 3, 4}));
  }
}

TEST(JobPriority, PoliciesDifferOnFig7) {
  // The three policies must not be identical on a rich DAG (otherwise the
  // Fig. 11 comparison would be vacuous).
  const auto spec = wf::paper_fig7_topology();
  const auto hlf = job_priority_order(spec, JobPriorityPolicy::kHlf);
  const auto lpf = job_priority_order(spec, JobPriorityPolicy::kLpf);
  const auto mpf = job_priority_order(spec, JobPriorityPolicy::kMpf);
  EXPECT_NE(hlf, mpf);
  EXPECT_NE(lpf, mpf);
}

}  // namespace
}  // namespace woha::core

// FlatTree is the arena AVL backing BstQueue's orderings; std::map is the
// executable specification. The fuzz mirrors every mutation into both and
// checks the full observable surface — ordering walks, resumable walks,
// both min accessors, duplicate/absent handling — plus validate() (ordering,
// balance, heights, cached min, arena leak) after every operation.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "core/flat_tree.hpp"

namespace woha::core {
namespace {

// The queue's actual key shape: (ordering key, workflow id).
using Key = std::pair<std::int64_t, std::uint32_t>;
using Tree = FlatTree<Key>;
using Reference = std::map<Key, std::uint32_t>;

std::vector<std::pair<Key, std::uint32_t>> in_order(const Tree& tree) {
  std::vector<std::pair<Key, std::uint32_t>> out;
  tree.for_each([&](const Key& key, std::uint32_t value) {
    out.emplace_back(key, value);
    return true;
  });
  return out;
}

void expect_equal(const Tree& tree, const Reference& ref) {
  ASSERT_NO_THROW(tree.validate());
  ASSERT_EQ(tree.size(), ref.size());
  ASSERT_EQ(tree.empty(), ref.empty());
  const auto walked = in_order(tree);
  ASSERT_EQ(walked.size(), ref.size());
  auto it = ref.begin();
  for (const auto& [key, value] : walked) {
    ASSERT_EQ(key, it->first);
    ASSERT_EQ(value, it->second);
    ++it;
  }
  if (ref.empty()) {
    EXPECT_EQ(tree.min_node(), Tree::kNil);
    EXPECT_EQ(tree.min_descend(), Tree::kNil);
  } else {
    const std::uint32_t cached = tree.min_node();
    const std::uint32_t descended = tree.min_descend();
    ASSERT_NE(cached, Tree::kNil);
    EXPECT_EQ(tree.key(cached), ref.begin()->first);
    EXPECT_EQ(tree.value(cached), ref.begin()->second);
    // BSTplain's descent and BST's cache must name the same node.
    EXPECT_EQ(descended, cached);
  }
}

TEST(FlatTree, EmptyTreeBasics) {
  Tree tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.min_node(), Tree::kNil);
  EXPECT_EQ(tree.min_descend(), Tree::kNil);
  EXPECT_FALSE(tree.erase({1, 1}));
  ASSERT_NO_THROW(tree.validate());
  int visits = 0;
  tree.for_each([&](const Key&, std::uint32_t) {
    ++visits;
    return true;
  });
  tree.for_each_from({0, 0}, [&](const Key&, std::uint32_t) {
    ++visits;
    return true;
  });
  EXPECT_EQ(visits, 0);
}

TEST(FlatTree, DuplicateInsertIsRejectedUntouched) {
  Tree tree;
  EXPECT_TRUE(tree.insert({5, 1}, 1));
  EXPECT_FALSE(tree.insert({5, 1}, 99));  // same key: value must not change
  ASSERT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.value(tree.min_node()), 1u);
  ASSERT_NO_THROW(tree.validate());
}

TEST(FlatTree, ForEachFromResumesAtLowerBound) {
  Tree tree;
  Reference ref;
  for (std::int64_t k = 0; k < 40; k += 2) {
    const Key key{k, static_cast<std::uint32_t>(k)};
    tree.insert(key, static_cast<std::uint32_t>(k));
    ref.emplace(key, static_cast<std::uint32_t>(k));
  }
  const auto walk_from = [&](const Key& from) {
    std::vector<Key> got;
    tree.for_each_from(from, [&](const Key& key, std::uint32_t) {
      got.push_back(key);
      return true;
    });
    std::vector<Key> want;
    for (auto it = ref.lower_bound(from); it != ref.end(); ++it) {
      want.push_back(it->first);
    }
    EXPECT_EQ(got, want) << "from (" << from.first << "," << from.second << ")";
  };
  walk_from({-10, 0});  // before everything: full walk
  walk_from({8, 8});    // present key: inclusive
  walk_from({9, 0});    // absent key: next greater
  walk_from({38, 39});  // past the last id at the key: strictly after
  walk_from({100, 0});  // past everything: empty walk
  // Early stop: the visitor's false return ends the walk immediately.
  int visits = 0;
  tree.for_each_from({10, 0}, [&](const Key&, std::uint32_t) {
    return ++visits < 3;
  });
  EXPECT_EQ(visits, 3);
}

// Promoted from an adversarial fuzz case: a two-child erase frees the
// *successor's* arena slot, so the free list hands out an index whose old
// key is still live in the tree. Duplicate-insert rejection must key off the
// tree's ordering, never off recycled node identity.
TEST(FlatTree, DuplicateInsertAfterFreeListRecycling) {
  Tree tree;
  Reference ref;
  const auto put = [&](std::int64_t k, std::uint32_t id, std::uint32_t v) {
    ASSERT_EQ(tree.insert({k, id}, v), ref.emplace(Key{k, id}, v).second);
  };
  for (std::int64_t k = 0; k < 16; ++k) {
    put(k, 0, static_cast<std::uint32_t>(k));
  }
  expect_equal(tree, ref);

  // Interior key with two children: the successor's slot hits the free list.
  ASSERT_TRUE(tree.erase({7, 0}));
  ref.erase({7, 0});
  expect_equal(tree, ref);

  // The next insert recycles that slot for a brand-new key...
  put(100, 0, 100);
  expect_equal(tree, ref);

  // ...and duplicate inserts of every still-live key must be rejected with
  // values untouched, including the key whose node changed slots.
  for (const auto& entry : ref) {
    EXPECT_FALSE(tree.insert(entry.first, 9999));
  }
  expect_equal(tree, ref);

  // Erase/reinsert churn across the same universe: reinserted keys must be
  // accepted exactly once no matter how the free list reordered slots.
  for (std::int64_t k = 0; k < 16; k += 2) {
    EXPECT_EQ(tree.erase({k, 0}), ref.erase(Key{k, 0}) > 0);
  }
  expect_equal(tree, ref);
  for (std::int64_t k = 0; k < 16; ++k) {
    put(k, 0, static_cast<std::uint32_t>(k + 500));
  }
  expect_equal(tree, ref);
}

// Promoted from an adversarial fuzz case: resuming a walk exactly at a key
// that was just erased. for_each_from must land on the next greater *live*
// key (map::lower_bound semantics), not chase stale node identity — even
// after the freed slots are recycled into different keys.
TEST(FlatTree, ForEachFromResumesAtErasedKey) {
  Tree tree;
  Reference ref;
  for (std::int64_t k = 0; k < 32; k += 2) {
    tree.insert({k, 1}, static_cast<std::uint32_t>(k));
    ref.emplace(Key{k, 1}, static_cast<std::uint32_t>(k));
  }
  const auto expect_walk_from = [&](const Key& from) {
    std::vector<Key> got;
    tree.for_each_from(from, [&](const Key& key, std::uint32_t) {
      got.push_back(key);
      return true;
    });
    std::vector<Key> want;
    for (auto it = ref.lower_bound(from); it != ref.end(); ++it) {
      want.push_back(it->first);
    }
    EXPECT_EQ(got, want) << "from (" << from.first << "," << from.second << ")";
  };

  // Interior, minimum, and maximum victims: every erase shape.
  for (const Key victim : {Key{8, 1}, Key{0, 1}, Key{30, 1}}) {
    ASSERT_TRUE(tree.erase(victim));
    ref.erase(victim);
    expect_walk_from(victim);
    expect_equal(tree, ref);
  }

  // Recycle the freed slots into nearby-but-different keys, then resume at
  // each erased key again: still pure lower_bound over the live keys.
  for (const std::int64_t k : {9, 1, 31}) {
    tree.insert({k, 0}, static_cast<std::uint32_t>(k));
    ref.emplace(Key{k, 0}, static_cast<std::uint32_t>(k));
  }
  for (const Key victim : {Key{8, 1}, Key{0, 1}, Key{30, 1}}) {
    expect_walk_from(victim);
  }
  expect_equal(tree, ref);
}

TEST(FlatTree, EraseMinMaintainsCachedMin) {
  Tree tree;
  Reference ref;
  for (std::int64_t k = 0; k < 64; ++k) {
    const Key key{k, 0};
    tree.insert(key, static_cast<std::uint32_t>(k));
    ref.emplace(key, static_cast<std::uint32_t>(k));
  }
  // Drain strictly from the head: every erase relocates the minimum.
  while (!ref.empty()) {
    const Key head = ref.begin()->first;
    EXPECT_TRUE(tree.erase(head));
    ref.erase(ref.begin());
    expect_equal(tree, ref);
  }
}

TEST(FlatTree, FuzzAgainstStdMap) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    Tree tree;
    Reference ref;
    for (int op = 0; op < 600; ++op) {
      // A small key universe forces frequent duplicate inserts, absent
      // erases, and erase-reinsert free-list recycling.
      const Key key{static_cast<std::int64_t>(rng.uniform_int(0, 60)),
                    static_cast<std::uint32_t>(rng.uniform_int(0, 3))};
      const auto value = static_cast<std::uint32_t>(rng.uniform_int(0, 1000));
      if (rng.chance(0.55)) {
        const bool inserted = tree.insert(key, value);
        const bool expected = ref.emplace(key, value).second;
        ASSERT_EQ(inserted, expected) << "seed " << seed << " op " << op;
      } else {
        const bool erased = tree.erase(key);
        const bool expected = ref.erase(key) > 0;
        ASSERT_EQ(erased, expected) << "seed " << seed << " op " << op;
      }
      if ((op & 15) == 0) {
        expect_equal(tree, ref);
        // Resumable walk from a random point matches map::lower_bound.
        const Key from{static_cast<std::int64_t>(rng.uniform_int(0, 60)), 0};
        std::vector<Key> got;
        tree.for_each_from(from, [&](const Key& k, std::uint32_t) {
          got.push_back(k);
          return true;
        });
        std::vector<Key> want;
        for (auto it = ref.lower_bound(from); it != ref.end(); ++it) {
          want.push_back(it->first);
        }
        ASSERT_EQ(got, want) << "seed " << seed << " op " << op;
      }
    }
    expect_equal(tree, ref);
  }
}

}  // namespace
}  // namespace woha::core

#include "core/resource_cap.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/job_priority.hpp"
#include "workflow/analysis.hpp"
#include "workflow/topology.hpp"

namespace woha::core {
namespace {

std::vector<std::uint32_t> identity_rank(std::size_t n) {
  std::vector<std::uint32_t> rank(n);
  for (std::uint32_t i = 0; i < n; ++i) rank[i] = i;
  return rank;
}

TEST(ResourceCap, Fig2MinimumCapIsTwo) {
  // The paper's Fig. 2(b): a cap of 2 is the smallest that lets the 2-job
  // workflow (makespan 8 units at cap 2, 12 at cap 1) meet a 9-unit
  // deadline.
  const Duration unit = minutes(1);
  const auto spec = wf::fig2_two_job_workflow(unit);
  const auto cap = min_feasible_cap(spec, identity_rank(2), 9 * unit, 6);
  ASSERT_TRUE(cap.has_value());
  EXPECT_EQ(*cap, 2u);
}

TEST(ResourceCap, LooseDeadlineNeedsOneSlot) {
  const Duration unit = minutes(1);
  const auto spec = wf::fig2_two_job_workflow(unit);
  // Serial makespan is 12 units; a 50-unit deadline is feasible on 1 slot.
  const auto cap = min_feasible_cap(spec, identity_rank(2), 50 * unit, 6);
  ASSERT_TRUE(cap.has_value());
  EXPECT_EQ(*cap, 1u);
}

TEST(ResourceCap, InfeasibleDeadlineReturnsNullopt) {
  const Duration unit = minutes(1);
  const auto spec = wf::fig2_two_job_workflow(unit);
  // Critical path is 4 units; 3 units cannot be met at any cap.
  EXPECT_FALSE(min_feasible_cap(spec, identity_rank(2), 3 * unit, 1000).has_value());
  // Zero/negative deadline likewise.
  EXPECT_FALSE(min_feasible_cap(spec, identity_rank(2), 0, 1000).has_value());
}

class MinCapProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MinCapProperty, ResultIsFeasibleAndLocallyMinimal) {
  Rng rng(GetParam());
  wf::RandomDagParams params;
  params.num_jobs = static_cast<std::uint32_t>(rng.uniform_int(2, 15));
  const auto spec = wf::random_dag(rng, params);
  const auto rank = job_priority_ranks(spec, JobPriorityPolicy::kLpf);

  // Pick a deadline between the critical path and the serial makespan so a
  // nontrivial cap exists.
  const Duration serial = generate_plan(spec, 1, rank).simulated_makespan;
  const Duration cp = wf::critical_path_length(spec);
  const Duration deadline = cp + (serial - cp) / 3;

  const auto cap = min_feasible_cap(spec, rank, deadline, 512);
  ASSERT_TRUE(cap.has_value());
  EXPECT_LE(generate_plan(spec, *cap, rank).simulated_makespan, deadline);
  if (*cap > 1) {
    EXPECT_GT(generate_plan(spec, *cap - 1, rank).simulated_makespan, deadline);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinCapProperty, ::testing::Range<std::uint64_t>(1, 25));

TEST(ResourceCap, PlanForSubmissionPolicies) {
  const Duration unit = minutes(1);
  auto spec = wf::fig2_two_job_workflow(unit);
  spec.relative_deadline = 9 * unit;
  const auto rank = identity_rank(2);

  const auto full = plan_for_submission(spec, rank, 6, CapPolicy::kFullCluster);
  EXPECT_EQ(full.resource_cap, 6u);

  const auto fixed = plan_for_submission(spec, rank, 6, CapPolicy::kFixed, 3);
  EXPECT_EQ(fixed.resource_cap, 3u);

  const auto minimal = plan_for_submission(spec, rank, 6, CapPolicy::kMinFeasible);
  EXPECT_EQ(minimal.resource_cap, 2u);
}

TEST(ResourceCap, MinFeasibleFallsBackToFullClusterWhenImpossible) {
  const Duration unit = minutes(1);
  auto spec = wf::fig2_two_job_workflow(unit);
  spec.relative_deadline = 1 * unit;  // < critical path: hopeless
  const auto plan = plan_for_submission(spec, identity_rank(2), 6,
                                        CapPolicy::kMinFeasible);
  EXPECT_EQ(plan.resource_cap, 6u);  // best effort
}

TEST(ResourceCap, NoDeadlineFallsBackToFullCluster) {
  auto spec = wf::fig2_two_job_workflow(minutes(1));
  spec.relative_deadline = 0;
  const auto plan = plan_for_submission(spec, identity_rank(2), 6,
                                        CapPolicy::kMinFeasible);
  EXPECT_EQ(plan.resource_cap, 6u);
}

TEST(ResourceCap, ArgumentValidation) {
  const auto spec = wf::fig2_two_job_workflow(minutes(1));
  const auto rank = identity_rank(2);
  EXPECT_THROW((void)min_feasible_cap(spec, rank, minutes(9), 0),
               std::invalid_argument);
  EXPECT_THROW((void)plan_for_submission(spec, rank, 0, CapPolicy::kFullCluster),
               std::invalid_argument);
  EXPECT_THROW((void)plan_for_submission(spec, rank, 6, CapPolicy::kFixed, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace woha::core

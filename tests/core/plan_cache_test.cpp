#include "core/plan_cache.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/woha_scheduler.hpp"
#include "hadoop/engine.hpp"
#include "obs/metrics_registry.hpp"
#include "trace/paper_workloads.hpp"
#include "workflow/topology.hpp"

namespace woha::core {
namespace {

wf::WorkflowSpec sample_spec() {
  auto spec = wf::paper_fig7_topology();
  spec.relative_deadline = minutes(80);
  return spec;
}

std::uint64_t fp(const wf::WorkflowSpec& spec) {
  return plan_fingerprint(spec, 96, JobPriorityPolicy::kLpf,
                          CapPolicy::kMinFeasible, 0, 1.0);
}

TEST(PlanFingerprint, EqualInputsEqualFingerprints) {
  EXPECT_EQ(fp(sample_spec()), fp(sample_spec()));
}

TEST(PlanFingerprint, IgnoresWorkflowNameAndSubmitTime) {
  // Recurrent instances ("daily-report-r7") differ only in name and submit
  // time; they must hit the entry the first instance planted.
  auto a = sample_spec();
  auto b = sample_spec();
  b.name = "daily-report-r7";
  b.submit_time = minutes(90);
  EXPECT_EQ(fp(a), fp(b));
}

TEST(PlanFingerprint, SensitiveToEveryPlanningInput) {
  const auto base = fp(sample_spec());

  auto durations = sample_spec();
  durations.jobs[0].map_duration += 1;
  EXPECT_NE(fp(durations), base);

  auto counts = sample_spec();
  counts.jobs[0].num_maps += 1;
  EXPECT_NE(fp(counts), base);

  auto prereqs = sample_spec();
  prereqs.jobs.back().prerequisites.pop_back();
  EXPECT_NE(fp(prereqs), base);

  auto deadline = sample_spec();
  deadline.relative_deadline += 1;
  EXPECT_NE(fp(deadline), base);

  // History estimators key durations by job name, so names are inputs.
  auto job_name = sample_spec();
  job_name.jobs[0].name += "-renamed";
  EXPECT_NE(fp(job_name), base);

  const auto spec = sample_spec();
  EXPECT_NE(plan_fingerprint(spec, 97, JobPriorityPolicy::kLpf,
                             CapPolicy::kMinFeasible, 0, 1.0),
            base);
  EXPECT_NE(plan_fingerprint(spec, 96, JobPriorityPolicy::kHlf,
                             CapPolicy::kMinFeasible, 0, 1.0),
            base);
  EXPECT_NE(plan_fingerprint(spec, 96, JobPriorityPolicy::kLpf,
                             CapPolicy::kFixed, 0, 1.0),
            base);
  EXPECT_NE(plan_fingerprint(spec, 96, JobPriorityPolicy::kLpf,
                             CapPolicy::kFixed, 32, 1.0),
            base);
  EXPECT_NE(plan_fingerprint(spec, 96, JobPriorityPolicy::kLpf,
                             CapPolicy::kMinFeasible, 0, 0.9),
            base);
}

TEST(PlanCache, MissComputesHitShares) {
  PlanCache cache;
  int computes = 0;
  const auto compute = [&computes] {
    ++computes;
    SchedulingPlan plan;
    plan.resource_cap = 7;
    return plan;
  };

  const auto first = cache.get_or_compute(42, compute);
  EXPECT_EQ(computes, 1);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->resource_cap, 7u);

  const auto second = cache.get_or_compute(42, compute);
  EXPECT_EQ(computes, 1) << "a hit must not recompute";
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(second.get(), first.get()) << "instances share one plan";

  (void)cache.get_or_compute(43, compute);
  EXPECT_EQ(computes, 2);
  EXPECT_EQ(cache.size(), 2u);

  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  (void)cache.get_or_compute(42, compute);
  EXPECT_EQ(computes, 3);
}

TEST(PlanCache, PrewarmedInsertClaimsAsMissThenHits) {
  // The parallel prewarm plants plans before any submission. The tallies
  // must stay indistinguishable from a serial run: the first claim of a
  // prewarmed entry is the miss it replaced, later lookups are hits.
  PlanCache cache;
  int computes = 0;
  const auto compute = [&computes] {
    ++computes;
    return SchedulingPlan{};
  };
  auto plan = std::make_shared<const SchedulingPlan>();
  cache.insert(7, plan);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);  // nothing claimed yet

  const auto first = cache.get_or_compute(7, compute);
  EXPECT_EQ(computes, 0) << "the prewarmed plan must be reused, not recomputed";
  EXPECT_EQ(first.get(), plan.get());
  EXPECT_EQ(cache.misses(), 1u) << "a claimed prewarm counts as the serial miss";
  EXPECT_EQ(cache.hits(), 0u);

  (void)cache.get_or_compute(7, compute);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);

  // Null plans and duplicate keys are ignored; clear() also drops the
  // prewarm markers.
  cache.insert(7, std::make_shared<const SchedulingPlan>());
  EXPECT_EQ(cache.get_or_compute(7, compute).get(), plan.get());
  cache.insert(9, nullptr);
  EXPECT_EQ(cache.size(), 1u);
  cache.clear();
  (void)cache.get_or_compute(7, compute);
  EXPECT_EQ(computes, 1) << "clear() must forget prewarmed entries too";
}

TEST(PlanCache, BoundCountersTrackHitsAndMisses) {
  obs::MetricsRegistry registry;
  PlanCache cache;
  cache.bind_counters(&registry.counter("woha.plan_cache_hits"),
                      &registry.counter("woha.plan_cache_misses"));
  const auto compute = [] { return SchedulingPlan{}; };
  (void)cache.get_or_compute(1, compute);
  (void)cache.get_or_compute(1, compute);
  (void)cache.get_or_compute(1, compute);
  EXPECT_EQ(registry.counter("woha.plan_cache_misses").value(), 1u);
  EXPECT_EQ(registry.counter("woha.plan_cache_hits").value(), 2u);
}

TEST(PlanCache, CapacityEvictsLeastRecentlyUsed) {
  PlanCache cache;
  cache.set_capacity(2);
  EXPECT_EQ(cache.capacity(), 2u);
  const auto compute = [] { return SchedulingPlan{}; };

  (void)cache.get_or_compute(1, compute);
  (void)cache.get_or_compute(2, compute);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 0u);

  // Touch 1 so 2 becomes the LRU entry; inserting 3 must evict 2, not 1.
  (void)cache.get_or_compute(1, compute);
  (void)cache.get_or_compute(3, compute);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));

  // The evicted fingerprint recomputes on its next appearance: a miss
  // either way, so decisions cannot depend on capacity.
  int recomputes = 0;
  (void)cache.get_or_compute(2, [&] {
    ++recomputes;
    return SchedulingPlan{};
  });
  EXPECT_EQ(recomputes, 1);
  EXPECT_EQ(cache.evictions(), 2u);  // bringing 2 back displaced 1 (LRU)
  EXPECT_FALSE(cache.contains(1));
}

TEST(PlanCache, ZeroCapacityIsUnbounded) {
  PlanCache cache;  // default capacity 0
  const auto compute = [] { return SchedulingPlan{}; };
  for (std::uint64_t key = 0; key < 100; ++key) {
    (void)cache.get_or_compute(key, compute);
  }
  EXPECT_EQ(cache.size(), 100u);
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST(PlanCache, ShrinkingCapacityEvictsImmediately) {
  PlanCache cache;
  const auto compute = [] { return SchedulingPlan{}; };
  for (std::uint64_t key = 1; key <= 5; ++key) {
    (void)cache.get_or_compute(key, compute);
  }
  (void)cache.get_or_compute(1, compute);  // 1 is now most recent
  cache.set_capacity(2);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 3u);
  EXPECT_TRUE(cache.contains(1));
  EXPECT_TRUE(cache.contains(5));
}

TEST(PlanCache, EvictedPrewarmRecomputesAsMiss) {
  // An eviction can race a prewarm plant only logically (everything is
  // single-threaded by the time the cache is consulted): when a prewarmed
  // entry is evicted before its first claim, the claim recomputes — still
  // one miss, so the serial-equivalence of the tallies holds.
  PlanCache cache;
  cache.set_capacity(1);
  cache.insert(7, std::make_shared<const SchedulingPlan>());
  const auto compute = [] { return SchedulingPlan{}; };
  (void)cache.get_or_compute(8, compute);  // evicts the prewarmed 7
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_FALSE(cache.contains(7));
  int recomputes = 0;
  (void)cache.get_or_compute(7, [&] {
    ++recomputes;
    return SchedulingPlan{};
  });
  EXPECT_EQ(recomputes, 1);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(PlanCache, BoundEvictionCounterTracks) {
  obs::MetricsRegistry registry;
  PlanCache cache;
  cache.set_capacity(1);
  cache.bind_counters(&registry.counter("woha.plan_cache_hits"),
                      &registry.counter("woha.plan_cache_misses"),
                      &registry.counter("woha.plan_cache_evictions"));
  const auto compute = [] { return SchedulingPlan{}; };
  (void)cache.get_or_compute(1, compute);
  (void)cache.get_or_compute(2, compute);
  (void)cache.get_or_compute(3, compute);
  EXPECT_EQ(registry.counter("woha.plan_cache_evictions").value(), 2u);
}

hadoop::RunSummary run_fig12(bool cache_enabled, std::uint64_t* hits,
                             std::size_t capacity = 0) {
  hadoop::EngineConfig config;
  config.cluster = hadoop::ClusterConfig::paper_32_slaves();
  WohaConfig wc;
  wc.plan_cache = cache_enabled;
  wc.plan_cache_capacity = capacity;
  hadoop::Engine engine(config, std::make_unique<WohaScheduler>(wc));
  for (const auto& spec : trace::fig12_scenario(3, minutes(30))) {
    engine.submit(spec);
  }
  engine.run();
  if (hits != nullptr) {
    const auto& sched = dynamic_cast<const WohaScheduler&>(engine.scheduler());
    *hits = sched.plan_cache().hits();
  }
  return engine.summarize();
}

// The determinism contract: a cache hit is bit-identical to recomputation,
// so the Fig. 12 recurrence scenario (where instances 2..N hit) must
// produce exactly the same run with the cache on and off.
TEST(PlanCache, RecurrentRunIsBitIdenticalToUncached) {
  std::uint64_t hits = 0;
  const auto cached = run_fig12(true, &hits);
  const auto uncached = run_fig12(false, nullptr);
  EXPECT_GT(hits, 0u) << "recurrent instances must actually hit the cache";

  EXPECT_EQ(cached.makespan, uncached.makespan);
  EXPECT_EQ(cached.total_tardiness, uncached.total_tardiness);
  EXPECT_EQ(cached.tasks_executed, uncached.tasks_executed);
  EXPECT_EQ(cached.events_fired, uncached.events_fired);
  EXPECT_EQ(cached.select_calls, uncached.select_calls);
  ASSERT_EQ(cached.workflows.size(), uncached.workflows.size());
  for (std::size_t i = 0; i < cached.workflows.size(); ++i) {
    EXPECT_EQ(cached.workflows[i].finish_time, uncached.workflows[i].finish_time);
    EXPECT_EQ(cached.workflows[i].workspan, uncached.workflows[i].workspan);
    EXPECT_EQ(cached.workflows[i].met_deadline, uncached.workflows[i].met_deadline);
  }
}

// Capacity changes which fingerprints stay resident, never what is decided:
// a tightly-bounded cache (capacity 1 forces churn across the scenario's
// distinct fingerprints) must reproduce the unbounded run exactly.
TEST(PlanCache, CapacityBoundedRunIsBitIdenticalToUnbounded) {
  const auto unbounded = run_fig12(true, nullptr);
  const auto bounded = run_fig12(true, nullptr, 1);
  EXPECT_EQ(bounded.makespan, unbounded.makespan);
  EXPECT_EQ(bounded.total_tardiness, unbounded.total_tardiness);
  EXPECT_EQ(bounded.tasks_executed, unbounded.tasks_executed);
  EXPECT_EQ(bounded.events_fired, unbounded.events_fired);
  EXPECT_EQ(bounded.select_calls, unbounded.select_calls);
  ASSERT_EQ(bounded.workflows.size(), unbounded.workflows.size());
  for (std::size_t i = 0; i < bounded.workflows.size(); ++i) {
    EXPECT_EQ(bounded.workflows[i].finish_time, unbounded.workflows[i].finish_time);
    EXPECT_EQ(bounded.workflows[i].met_deadline, unbounded.workflows[i].met_deadline);
  }
}

}  // namespace
}  // namespace woha::core

// assign_batch(k) must be decision-equivalent to k successive assign()
// calls — same winners, same order, same resulting queue state — for every
// SchedulerQueue implementation, under the probe-memo contract: can_use
// depends only on (id, domain) and every false -> true flip is announced
// (note_can_use_changed / on_progress_lost / invalidate_probe_memo).
//
// The fuzz drives a batch-fed queue and a sequentially-fed twin of the same
// kind through one shared availability model (per-workflow, per-domain task
// credits), interleaving grants, progress losses, remove/reinsert churn,
// plain assign() calls between batches, and memo invalidations, asserting
// the pick sequences, sizes and head orderings never diverge. A shared-plan
// variant makes equal-lag ties the common case, so the memo's resume-key
// handling around tie re-probes is exercised, not just the happy path.
#include <gtest/gtest.h>

#include <array>
#include <deque>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "core/queue_bst.hpp"
#include "core/queue_dsl.hpp"
#include "core/queue_naive.hpp"
#include "core/scheduler_queue.hpp"

namespace woha::core {
namespace {

constexpr std::size_t kDomains = SchedulerQueue::kProbeDomains;

/// Per-workflow assignable-task credits, one pool per probe domain. This is
/// the caller-side state the memo contract talks about: can_use(id) is a
/// pure function of the credits, grants are announced, assignments consume.
class CreditModel {
 public:
  void add_workflow(std::uint32_t id) {
    if (credits_.size() <= id) credits_.resize(id + 1);
    credits_[id] = {};
  }

  void grant(std::uint32_t id, std::size_t domain, std::uint64_t n) {
    credits_[id][domain] += n;
  }

  void consume(std::uint32_t id, std::size_t domain) {
    ASSERT_GT(credits_[id][domain], 0u) << "picked workflow without credits";
    --credits_[id][domain];
  }

  [[nodiscard]] std::function<bool(std::uint32_t)> can_use(std::size_t domain) const {
    return [this, domain](std::uint32_t id) {
      return id < credits_.size() && credits_[id][domain] > 0;
    };
  }

 private:
  std::vector<std::array<std::uint64_t, kDomains>> credits_;
};

/// One queue plus its own copy of the availability model. Both twins receive
/// identical external events; equality of their pick sequences keeps the two
/// models identical, so later rounds stay comparable.
struct Twin {
  std::unique_ptr<SchedulerQueue> queue;
  CreditModel credits;
};

class QueueBatchTest : public ::testing::TestWithParam<QueueKind> {
 protected:
  // Plans must outlive ProgressTrackers; deque keeps addresses stable.
  std::deque<SchedulingPlan> plans_;

  void insert_everywhere(std::initializer_list<Twin*> twins, std::uint32_t id,
                         const SchedulingPlan* plan, SimTime deadline) {
    for (Twin* t : twins) {
      t->queue->insert(id, ProgressTracker(plan, deadline));
      t->credits.add_workflow(id);
    }
  }

  /// `k` plain assign() calls, stopping at the first kNone — the reference
  /// semantics assign_batch must reproduce.
  static std::vector<std::uint32_t> sequential_assigns(Twin& t, SimTime now,
                                                       std::size_t domain,
                                                       std::uint32_t k) {
    std::vector<std::uint32_t> picks;
    const auto can_use = t.credits.can_use(domain);
    for (std::uint32_t i = 0; i < k; ++i) {
      const std::uint32_t id = t.queue->assign(now, can_use);
      if (id == SchedulerQueue::kNone) break;
      t.credits.consume(id, domain);
      picks.push_back(id);
    }
    return picks;
  }

  static std::vector<std::uint32_t> batch_assigns(Twin& t, SimTime now,
                                                  std::size_t domain,
                                                  std::uint32_t k) {
    std::vector<std::uint32_t> picks;
    const std::uint32_t n = t.queue->assign_batch(
        now, domain, k, t.credits.can_use(domain),
        [&](std::uint32_t id) {
          t.credits.consume(id, domain);
          picks.push_back(id);
        });
    EXPECT_EQ(n, picks.size());
    return picks;
  }

  static void expect_same_ordering(const Twin& a, const Twin& b, SimTime now) {
    ASSERT_EQ(a.queue->size(), b.queue->size()) << "t=" << now;
    std::vector<SchedulerQueue::QueueEntry> ea, eb;
    a.queue->top(a.queue->size(), ea);
    b.queue->top(b.queue->size(), eb);
    ASSERT_EQ(ea.size(), eb.size()) << "t=" << now;
    for (std::size_t i = 0; i < ea.size(); ++i) {
      ASSERT_EQ(ea[i].id, eb[i].id) << "head position " << i << " t=" << now;
      ASSERT_EQ(ea[i].lag, eb[i].lag) << "head position " << i << " t=" << now;
      ASSERT_EQ(ea[i].rho, eb[i].rho) << "head position " << i << " t=" << now;
    }
  }

  /// The fuzz body; `shared_plan` switches between random per-workflow plans
  /// (general case) and one plan for everybody (every comparison ties).
  void run_fuzz(std::uint64_t seed, bool shared_plan) {
    Rng rng(seed);
    Twin seq{make_queue(GetParam()), {}};
    Twin bat{make_queue(GetParam()), {}};
    const auto both = {&seq, &bat};

    const std::uint32_t n_workflows =
        static_cast<std::uint32_t>(rng.uniform_int(3, 16));
    if (shared_plan) {
      SchedulingPlan plan;
      for (Duration ttd = 400; ttd > 0; ttd -= 40) {
        plan.append_step(ttd, static_cast<std::uint64_t>((400 - ttd) / 40 + 1));
      }
      plan.simulated_makespan = plan.step_ttd(0);
      plans_.push_back(std::move(plan));
    }
    const auto make_plan = [&]() -> const SchedulingPlan* {
      if (shared_plan) return &plans_.front();
      SchedulingPlan plan;
      Duration ttd = rng.uniform_int(50, 400);
      std::uint64_t cum = 0;
      const int n_steps = static_cast<int>(rng.uniform_int(1, 8));
      for (int s = 0; s < n_steps; ++s) {
        cum += static_cast<std::uint64_t>(rng.uniform_int(1, 9));
        plan.append_step(ttd, cum);
        ttd -= rng.uniform_int(5, 40);
        if (ttd <= 0) break;
      }
      plan.simulated_makespan = plan.step_ttd(0);
      plans_.push_back(std::move(plan));
      return &plans_.back();
    };
    const SimTime deadline_base = shared_plan ? 400 : 0;
    for (std::uint32_t w = 0; w < n_workflows; ++w) {
      const SimTime deadline =
          deadline_base > 0 ? deadline_base : rng.uniform_int(100, 500);
      insert_everywhere(both, w, make_plan(), deadline);
    }
    // Initial availability: a few credits per workflow in each domain.
    for (std::uint32_t w = 0; w < n_workflows; ++w) {
      for (std::size_t d = 0; d < kDomains; ++d) {
        const auto n = rng.uniform_int(0, 3);
        for (Twin* t : both) t->credits.grant(w, d, n);
      }
    }

    SimTime now = 0;
    for (int round = 0; round < 160; ++round) {
      now += rng.uniform_int(0, 10);
      const std::uint64_t dice = rng.next();

      // Grants: new tasks become assignable; a false -> true flip, so the
      // contract requires note_can_use_changed on the memoizing queue.
      if ((dice & 3) != 0) {
        const auto id = static_cast<std::uint32_t>(rng.uniform_int(0, n_workflows - 1));
        const auto domain = static_cast<std::size_t>(rng.uniform_int(0, kDomains - 1));
        const auto n = rng.uniform_int(1, 3);
        for (Twin* t : both) {
          t->credits.grant(id, domain, n);
          t->queue->note_can_use_changed(id);
        }
      }
      // Progress loss: rho regresses and the lost tasks re-enter the pool
      // (on_progress_lost doubles as the memo announcement).
      if ((dice & 15) == 1) {
        const auto id = static_cast<std::uint32_t>(rng.uniform_int(0, n_workflows - 1));
        const auto domain = static_cast<std::size_t>(rng.uniform_int(0, kDomains - 1));
        for (Twin* t : both) {
          t->queue->on_progress_lost(id, 2);
          t->credits.grant(id, domain, 2);
        }
      }
      // Churn: remove + reinsert resets rho to zero everywhere; the memo
      // must treat the fresh insert as unprobed.
      if ((dice & 63) == 2) {
        const auto id = static_cast<std::uint32_t>(rng.uniform_int(0, n_workflows - 1));
        const SimTime deadline =
            deadline_base > 0 ? deadline_base : now + rng.uniform_int(100, 500);
        const SchedulingPlan* plan = shared_plan ? &plans_.front() : make_plan();
        for (Twin* t : both) {
          t->queue->remove(id);
          t->queue->insert(id, ProgressTracker(plan, deadline));
        }
      }
      // A consult outside the memo contract happened (e.g. a blacklist-
      // filtered offer): both twins drop everything; decisions must not move.
      if ((dice & 127) == 3) {
        for (Twin* t : both) t->queue->invalidate_probe_memo();
      }

      const auto domain = static_cast<std::size_t>(rng.uniform_int(0, kDomains - 1));
      if ((dice & 7) == 4) {
        // Interleaved single-slot consults: the plain assign() path must
        // keep the memo's resume keys honest while it repositions winners.
        const auto a = sequential_assigns(seq, now, domain, 1);
        const auto b = sequential_assigns(bat, now, domain, 1);
        ASSERT_EQ(a, b) << "round " << round << " t=" << now;
      } else {
        const auto k = static_cast<std::uint32_t>(rng.uniform_int(1, 5));
        const auto a = sequential_assigns(seq, now, domain, k);
        const auto b = batch_assigns(bat, now, domain, k);
        ASSERT_EQ(a, b) << "round " << round << " t=" << now << " k=" << k;
      }

      ASSERT_NO_THROW(seq.queue->check_structure()) << "round " << round;
      ASSERT_NO_THROW(bat.queue->check_structure()) << "round " << round;
      if ((dice & 7) == 5) expect_same_ordering(seq, bat, now);
    }
    expect_same_ordering(seq, bat, now);
  }
};

TEST_P(QueueBatchTest, BatchMatchesSequentialUnderFuzz) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    run_fuzz(seed, /*shared_plan=*/false);
    plans_.clear();
  }
}

TEST_P(QueueBatchTest, BatchMatchesSequentialWhenEveryLagTies) {
  for (std::uint64_t seed = 100; seed <= 108; ++seed) {
    run_fuzz(seed, /*shared_plan=*/true);
    plans_.clear();
  }
}

TEST_P(QueueBatchTest, BatchOfZeroAndEmptyQueueAreNoops) {
  Twin t{make_queue(GetParam()), {}};
  std::uint32_t calls = 0;
  const auto count = [&](std::uint32_t) { ++calls; };
  EXPECT_EQ(t.queue->assign_batch(0, 0, 4, t.credits.can_use(0), count), 0u);
  SchedulingPlan plan;
  plan.append_step(100, 5);
  plan.simulated_makespan = 100;
  plans_.push_back(std::move(plan));
  t.queue->insert(1, ProgressTracker(&plans_.back(), 100));
  t.credits.add_workflow(1);
  t.credits.grant(1, 0, 5);
  EXPECT_EQ(t.queue->assign_batch(0, 0, 0, t.credits.can_use(0), count), 0u);
  EXPECT_EQ(calls, 0u);
}

TEST_P(QueueBatchTest, ShortBatchMeansFinalProbeWasEmpty) {
  Twin t{make_queue(GetParam()), {}};
  SchedulingPlan plan;
  plan.append_step(100, 8);
  plan.simulated_makespan = 100;
  plans_.push_back(std::move(plan));
  for (std::uint32_t id : {1u, 2u}) {
    t.queue->insert(id, ProgressTracker(&plans_.front(), 100));
    t.credits.add_workflow(id);
  }
  t.credits.grant(1, 0, 1);
  t.credits.grant(2, 0, 2);
  std::vector<std::uint32_t> picks;
  const auto record = [&](std::uint32_t id) {
    t.credits.consume(id, 0);
    picks.push_back(id);
  };
  // Only 3 credits exist: a batch of 5 drains them and reports 3.
  EXPECT_EQ(t.queue->assign_batch(0, 0, 5, t.credits.can_use(0), record), 3u);
  EXPECT_EQ(picks.size(), 3u);
  // The drained state persists: the next batch finds nothing...
  EXPECT_EQ(t.queue->assign_batch(0, 0, 5, t.credits.can_use(0), record), 0u);
  // ...until a grant is announced, after which exactly that workflow serves.
  t.credits.grant(2, 0, 1);
  t.queue->note_can_use_changed(2);
  EXPECT_EQ(t.queue->assign_batch(0, 0, 5, t.credits.can_use(0), record), 1u);
  EXPECT_EQ(picks.back(), 2u);
  ASSERT_NO_THROW(t.queue->check_structure());
}

TEST_P(QueueBatchTest, ProbeMemoIsPerDomain) {
  Twin t{make_queue(GetParam()), {}};
  SchedulingPlan plan;
  plan.append_step(100, 4);
  plan.simulated_makespan = 100;
  plans_.push_back(std::move(plan));
  t.queue->insert(1, ProgressTracker(&plans_.front(), 100));
  t.credits.add_workflow(1);
  t.credits.grant(1, 1, 2);  // tasks only in domain 1
  const auto consume = [&](std::uint32_t id) { t.credits.consume(id, 1); };
  const auto noop = [](std::uint32_t) {};
  // Domain 0 drains empty; domain 1 must be unaffected by its rejections.
  EXPECT_EQ(t.queue->assign_batch(0, 0, 3, t.credits.can_use(0), noop), 0u);
  EXPECT_EQ(t.queue->assign_batch(0, 1, 3, t.credits.can_use(1), consume), 2u);
  ASSERT_NO_THROW(t.queue->check_structure());
}

// Not part of the cross-implementation contract (memoization is a "may"),
// but the point of the DSL/BST memo: a workflow probed false is not
// re-probed by later batches in the same domain until announced. The naive
// strawman keeps the memo-free default, so it is excluded.
TEST_P(QueueBatchTest, MemoizingQueuesSkipRepeatProbes) {
  if (GetParam() == QueueKind::kNaive) GTEST_SKIP() << "memo-free strawman";
  auto queue = make_queue(GetParam());
  SchedulingPlan plan;
  plan.append_step(100, 4);
  plan.simulated_makespan = 100;
  plans_.push_back(std::move(plan));
  for (std::uint32_t id : {1u, 2u, 3u}) {
    queue->insert(id, ProgressTracker(&plans_.front(), 100));
  }
  std::uint32_t probes = 0;
  const auto reject_all = [&](std::uint32_t) {
    ++probes;
    return false;
  };
  const auto noop = [](std::uint32_t) {};
  EXPECT_EQ(queue->assign_batch(0, 0, 2, reject_all, noop), 0u);
  EXPECT_EQ(probes, 3u);  // every workflow probed once
  EXPECT_EQ(queue->assign_batch(0, 0, 2, reject_all, noop), 0u);
  EXPECT_EQ(probes, 3u);  // all rejections memoized: no re-probe
  queue->note_can_use_changed(2);
  EXPECT_EQ(queue->assign_batch(0, 0, 2, reject_all, noop), 0u);
  EXPECT_EQ(probes, 4u);  // only the announced workflow re-probed
  queue->invalidate_probe_memo();
  EXPECT_EQ(queue->assign_batch(0, 0, 2, reject_all, noop), 0u);
  EXPECT_EQ(probes, 7u);  // full re-probe after invalidation
  ASSERT_NO_THROW(queue->check_structure());
}

INSTANTIATE_TEST_SUITE_P(Kinds, QueueBatchTest,
                         ::testing::Values(QueueKind::kDsl, QueueKind::kBst,
                                           QueueKind::kBstPlain, QueueKind::kNaive),
                         [](const auto& info) { return to_string(info.param); });

}  // namespace
}  // namespace woha::core

#include "core/plan.hpp"

#include <gtest/gtest.h>

#include "core/job_priority.hpp"
#include "workflow/analysis.hpp"
#include "workflow/topology.hpp"

namespace woha::core {
namespace {

std::vector<std::uint32_t> identity_rank(std::size_t n) {
  std::vector<std::uint32_t> rank(n);
  for (std::uint32_t i = 0; i < n; ++i) rank[i] = i;
  return rank;
}

TEST(Plan, HandComputedSingleJobTwoWaves) {
  // One job: 3 maps x 10ms, 2 reduces x 20ms, cap 2.
  //  t=0 : 2 maps scheduled        (cum 2)
  //  t=10: last map scheduled      (cum 3); map phase ends t=20
  //  t=20: 2 reduces scheduled     (cum 5); finish t=40 -> makespan 40
  wf::WorkflowSpec spec;
  wf::JobSpec job;
  job.name = "j";
  job.num_maps = 3;
  job.num_reduces = 2;
  job.map_duration = 10;
  job.reduce_duration = 20;
  spec.jobs.push_back(job);

  const auto plan = generate_plan(spec, 2, identity_rank(1));
  EXPECT_EQ(plan.simulated_makespan, 40);
  ASSERT_EQ(plan.num_steps(), 3u);
  EXPECT_EQ(plan.step_ttds(), (std::vector<Duration>{40, 30, 20}));
  EXPECT_EQ(plan.step_reqs(), (std::vector<std::uint64_t>{2, 3, 5}));
  EXPECT_EQ(plan.total_tasks(), 5u);
}

TEST(Plan, HandComputedChainOfMapOnlyJobs) {
  // Two map-only jobs (1 map x 10ms each), chained, cap 1:
  //  t=0:  job0 map (cum 1); completes t=10 unlocking job1
  //  t=10: job1 map (cum 2); makespan 20
  wf::WorkflowSpec spec = wf::chain(2);
  for (auto& j : spec.jobs) {
    j.num_maps = 1;
    j.num_reduces = 0;
    j.map_duration = 10;
  }
  const auto plan = generate_plan(spec, 1, identity_rank(2));
  EXPECT_EQ(plan.simulated_makespan, 20);
  ASSERT_EQ(plan.num_steps(), 2u);
  EXPECT_EQ(plan.step_ttds(), (std::vector<Duration>{20, 10}));
  EXPECT_EQ(plan.step_reqs(), (std::vector<std::uint64_t>{1, 2}));
}

TEST(Plan, RequiredAtStepFunction) {
  wf::WorkflowSpec spec;
  wf::JobSpec job;
  job.name = "j";
  job.num_maps = 3;
  job.num_reduces = 2;
  job.map_duration = 10;
  job.reduce_duration = 20;
  spec.jobs.push_back(job);
  const auto plan = generate_plan(spec, 2, identity_rank(1));

  EXPECT_EQ(plan.required_at(50), 0u);  // before the simulated start
  EXPECT_EQ(plan.required_at(41), 0u);
  EXPECT_EQ(plan.required_at(40), 2u);
  EXPECT_EQ(plan.required_at(35), 2u);
  EXPECT_EQ(plan.required_at(30), 3u);
  EXPECT_EQ(plan.required_at(21), 3u);
  EXPECT_EQ(plan.required_at(20), 5u);
  EXPECT_EQ(plan.required_at(1), 5u);
  EXPECT_EQ(plan.required_at(0), 5u);
}

TEST(Plan, StepsStrictlyDecreasingTtdIncreasingReq) {
  const auto spec = wf::paper_fig7_topology();
  const auto rank = job_priority_ranks(spec, JobPriorityPolicy::kLpf);
  const auto plan = generate_plan(spec, 32, rank);
  ASSERT_GT(plan.num_steps(), 0u);
  for (std::size_t i = 1; i < plan.num_steps(); ++i) {
    EXPECT_LT(plan.step_ttd(i), plan.step_ttd(i - 1));
    EXPECT_GT(plan.step_req(i), plan.step_req(i - 1));
  }
  EXPECT_EQ(plan.total_tasks(), spec.total_tasks());
}

TEST(Plan, CapOneIsFullySerial) {
  const auto spec = wf::diamond(3);
  const auto plan = generate_plan(spec, 1, identity_rank(spec.jobs.size()));
  // One slot: makespan equals total serial work.
  EXPECT_EQ(plan.simulated_makespan, wf::total_work(spec));
}

TEST(Plan, LargerCapNeverSlower) {
  const auto spec = wf::paper_fig7_topology();
  const auto rank = job_priority_ranks(spec, JobPriorityPolicy::kHlf);
  Duration prev = kTimeInfinity;
  for (std::uint32_t cap : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
    const auto plan = generate_plan(spec, cap, rank);
    EXPECT_LE(plan.simulated_makespan, prev) << "cap " << cap;
    prev = plan.simulated_makespan;
  }
}

TEST(Plan, HugeCapHitsCriticalPath) {
  const auto spec = wf::paper_fig7_topology();
  const auto rank = job_priority_ranks(spec, JobPriorityPolicy::kLpf);
  const auto plan = generate_plan(spec, 1'000'000, rank);
  EXPECT_EQ(plan.simulated_makespan, wf::critical_path_length(spec));
}

TEST(Plan, Fig2CapsMatchPaperNarrative) {
  // The paper's Fig. 2: under the full cluster (cap 6) each workflow thinks
  // it can finish in 4 units and so requires nothing for the first 5 of its
  // 9-unit deadline budget; capped at 2 the makespan stretches to 8 units
  // and requirements start almost immediately.
  const Duration unit = minutes(1);
  const auto spec = wf::fig2_two_job_workflow(unit);
  const auto rank = identity_rank(2);

  const auto lazy = generate_plan(spec, 6, rank);
  EXPECT_EQ(lazy.simulated_makespan, 4 * unit);
  const auto eager = generate_plan(spec, 2, rank);
  EXPECT_EQ(eager.simulated_makespan, 8 * unit);

  // With deadline 9 units: the lazy plan requires 0 tasks until ttd=4 units
  // (i.e. the first 5 units of the window demand nothing).
  EXPECT_EQ(lazy.required_at(5 * unit), 0u);
  EXPECT_EQ(lazy.required_at(4 * unit), 3u);
  // The eager plan requires work already at ttd=8 (t = 1 unit in).
  EXPECT_EQ(eager.required_at(8 * unit), 2u);
  EXPECT_EQ(eager.total_tasks(), 12u);
}

TEST(Plan, JobOrderControlsSchedulingOrder) {
  // Two independent jobs; whichever ranks first is scheduled first.
  wf::WorkflowSpec spec;
  spec.jobs.resize(2);
  spec.jobs[0].name = "a";
  spec.jobs[0].num_maps = 1;
  spec.jobs[0].map_duration = 10;
  spec.jobs[1].name = "b";
  spec.jobs[1].num_maps = 1;
  spec.jobs[1].map_duration = 30;

  // Rank b first: with cap 1, b runs 0-30, a runs 30-40 -> makespan 40.
  const auto plan_b_first = generate_plan(spec, 1, {1, 0});
  EXPECT_EQ(plan_b_first.simulated_makespan, 40);
  EXPECT_EQ(plan_b_first.job_order, (std::vector<std::uint32_t>{1, 0}));
  // Same total but different step times from a-first.
  const auto plan_a_first = generate_plan(spec, 1, {0, 1});
  EXPECT_EQ(plan_a_first.step_ttd(1), 30);   // b scheduled at t=10
  EXPECT_EQ(plan_b_first.step_ttd(1), 10);   // a scheduled at t=30
}

TEST(Plan, RejectsBadArguments) {
  const auto spec = wf::chain(2);
  EXPECT_THROW((void)generate_plan(spec, 0, identity_rank(2)), std::invalid_argument);
  EXPECT_THROW((void)generate_plan(spec, 2, identity_rank(3)), std::invalid_argument);
}

TEST(Plan, ReduceOnlyJobSupported) {
  wf::WorkflowSpec spec;
  wf::JobSpec job;
  job.name = "r";
  job.num_maps = 0;
  job.num_reduces = 4;
  job.reduce_duration = 10;
  spec.jobs.push_back(job);
  const auto plan = generate_plan(spec, 2, identity_rank(1));
  EXPECT_EQ(plan.simulated_makespan, 20);
  EXPECT_EQ(plan.total_tasks(), 4u);
}

}  // namespace
}  // namespace woha::core

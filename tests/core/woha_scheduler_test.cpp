// End-to-end tests of the WOHA progress-based scheduler on the engine,
// including the paper's Fig. 2 claim: min-feasible resource caps save
// deadlines the full-cluster ("lazy") plans lose.
#include "core/woha_scheduler.hpp"

#include <gtest/gtest.h>

#include "hadoop/engine.hpp"
#include "trace/paper_workloads.hpp"
#include "workflow/topology.hpp"

namespace woha::core {
namespace {

hadoop::EngineConfig fig2_cluster() {
  hadoop::EngineConfig config;
  // 3 map slots + 3 reduce slots, as in the paper's Fig. 2.
  config.cluster.num_trackers = 3;
  config.cluster.map_slots_per_tracker = 1;
  config.cluster.reduce_slots_per_tracker = 1;
  // Keep framework overheads tiny relative to the 1-minute task unit so the
  // example's arithmetic carries over.
  config.cluster.heartbeat_period = seconds(1);
  config.activation_latency = ms(500);
  return config;
}

hadoop::RunSummary run_fig2(CapPolicy policy) {
  WohaConfig wc;
  wc.cap_policy = policy;
  wc.job_priority = JobPriorityPolicy::kLpf;
  hadoop::Engine engine(fig2_cluster(), std::make_unique<WohaScheduler>(wc));
  for (const auto& spec : trace::fig2_scenario(minutes(1))) engine.submit(spec);
  engine.run();
  return engine.summarize();
}

TEST(WohaScheduler, Fig2MinFeasibleCapMeetsAllDeadlines) {
  const auto summary = run_fig2(CapPolicy::kMinFeasible);
  ASSERT_EQ(summary.workflows.size(), 3u);
  for (const auto& wf : summary.workflows) {
    EXPECT_TRUE(wf.met_deadline) << wf.name << " tardiness "
                                 << wf.tardiness;
  }
  EXPECT_DOUBLE_EQ(summary.deadline_miss_ratio, 0.0);
}

TEST(WohaScheduler, Fig2FullClusterCapMissesADeadline) {
  // Lazy plans make W1/W2 idle-equivalent for 5 minutes; by the time their
  // requirements fire both need the whole cluster -> at least one misses
  // (paper Fig. 2(a)).
  const auto summary = run_fig2(CapPolicy::kFullCluster);
  EXPECT_GT(summary.deadline_miss_ratio, 0.0);
}

TEST(WohaScheduler, GeneratesPlanPerWorkflow) {
  WohaConfig wc;
  hadoop::EngineConfig config;
  config.cluster = hadoop::ClusterConfig::paper_32_slaves();
  auto scheduler = std::make_unique<WohaScheduler>(wc);
  WohaScheduler* raw = scheduler.get();
  hadoop::Engine engine(config, std::move(scheduler));
  for (const auto& spec : trace::fig11_scenario()) engine.submit(spec);
  engine.run();

  for (std::uint32_t w = 0; w < 3; ++w) {
    const SchedulingPlan* plan = raw->plan_of(WorkflowId(w));
    ASSERT_NE(plan, nullptr);
    EXPECT_GT(plan->num_steps(), 0u);
    EXPECT_EQ(plan->total_tasks(), wf::paper_fig7_topology().total_tasks());
    EXPECT_GE(plan->resource_cap, 1u);
    EXPECT_LE(plan->resource_cap, config.cluster.total_slots());
  }
}

TEST(WohaScheduler, AllTasksExecuteExactlyOnce) {
  WohaConfig wc;
  hadoop::EngineConfig config;
  config.cluster = hadoop::ClusterConfig::paper_32_slaves();
  hadoop::Engine engine(config, std::make_unique<WohaScheduler>(wc));
  std::uint64_t expected = 0;
  for (const auto& spec : trace::fig11_scenario()) {
    expected += spec.total_tasks();
    engine.submit(spec);
  }
  engine.run();
  EXPECT_EQ(engine.summarize().tasks_executed, expected);
}

TEST(WohaScheduler, NameReflectsPolicy) {
  WohaConfig wc;
  wc.job_priority = JobPriorityPolicy::kMpf;
  WohaScheduler scheduler(wc);
  EXPECT_EQ(scheduler.name(), "WOHA-MPF");
}

TEST(WohaScheduler, WorksWithEveryQueueKind) {
  for (const QueueKind kind : {QueueKind::kDsl, QueueKind::kBst, QueueKind::kNaive}) {
    WohaConfig wc;
    wc.queue = kind;
    hadoop::Engine engine(fig2_cluster(), std::make_unique<WohaScheduler>(wc));
    for (const auto& spec : trace::fig2_scenario(minutes(1))) engine.submit(spec);
    engine.run();
    EXPECT_DOUBLE_EQ(engine.summarize().deadline_miss_ratio, 0.0)
        << to_string(kind);
  }
}

TEST(WohaScheduler, QueueKindsProduceIdenticalSchedules) {
  // Not just "all meet deadlines": the exact finish times must agree, since
  // the three queues implement the same algorithm.
  SimTime finishes[3][3];
  int k = 0;
  for (const QueueKind kind : {QueueKind::kDsl, QueueKind::kBst, QueueKind::kNaive}) {
    WohaConfig wc;
    wc.queue = kind;
    hadoop::EngineConfig config;
    config.cluster = hadoop::ClusterConfig::paper_32_slaves();
    hadoop::Engine engine(config, std::make_unique<WohaScheduler>(wc));
    for (const auto& spec : trace::fig11_scenario()) engine.submit(spec);
    engine.run();
    const auto summary = engine.summarize();
    for (int w = 0; w < 3; ++w) {
      finishes[k][w] = summary.workflows[static_cast<std::size_t>(w)].finish_time;
    }
    ++k;
  }
  for (int w = 0; w < 3; ++w) {
    EXPECT_EQ(finishes[0][w], finishes[1][w]);
    EXPECT_EQ(finishes[0][w], finishes[2][w]);
  }
}

TEST(WohaScheduler, HandlesWorkflowWithoutDeadline) {
  auto spec = wf::paper_fig7_topology();
  spec.relative_deadline = 0;  // none
  hadoop::EngineConfig config;
  config.cluster = hadoop::ClusterConfig::paper_32_slaves();
  hadoop::Engine engine(config, std::make_unique<WohaScheduler>());
  engine.submit(spec);
  engine.run();
  const auto summary = engine.summarize();
  EXPECT_GE(summary.workflows[0].finish_time, 0);
  EXPECT_DOUBLE_EQ(summary.deadline_miss_ratio, 0.0);
}

TEST(WohaScheduler, ThrowsWithoutClusterInfo) {
  // Calling the client path without the slot-count query must fail loudly.
  WohaScheduler scheduler;
  hadoop::JobTracker jt;
  scheduler.attach(&jt);
  jt.add_workflow(wf::chain(1), 0);
  EXPECT_THROW(scheduler.on_workflow_submitted(WorkflowId(0), 0), std::logic_error);
}

}  // namespace
}  // namespace woha::core

#include "core/plan_serialization.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/job_priority.hpp"
#include "workflow/topology.hpp"

namespace woha::core {
namespace {

SchedulingPlan sample_plan(std::uint32_t cap = 16) {
  const auto spec = wf::paper_fig7_topology();
  const auto rank = job_priority_ranks(spec, JobPriorityPolicy::kLpf);
  return generate_plan(spec, cap, rank);
}

TEST(PlanSerialization, RoundTripPreservesEverything) {
  const auto plan = sample_plan();
  const auto bytes = serialize_plan(plan);
  const auto restored = deserialize_plan(bytes);
  EXPECT_EQ(restored.resource_cap, plan.resource_cap);
  EXPECT_EQ(restored.simulated_makespan, plan.simulated_makespan);
  EXPECT_EQ(restored.job_order, plan.job_order);
  EXPECT_EQ(restored.job_rank, plan.job_rank);
  EXPECT_EQ(restored.step_ttds(), plan.step_ttds());
  EXPECT_EQ(restored.step_reqs(), plan.step_reqs());
}

class PlanRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PlanRoundTrip, RandomWorkflows) {
  Rng rng(GetParam());
  wf::RandomDagParams params;
  params.num_jobs = static_cast<std::uint32_t>(rng.uniform_int(1, 25));
  params.num_layers = static_cast<std::uint32_t>(rng.uniform_int(1, 5));
  const auto spec = wf::random_dag(rng, params);
  const auto rank = job_priority_ranks(spec, JobPriorityPolicy::kHlf);
  const auto cap = static_cast<std::uint32_t>(rng.uniform_int(1, 64));
  const auto plan = generate_plan(spec, cap, rank);

  const auto bytes = serialize_plan(plan);
  const auto restored = deserialize_plan(bytes);
  EXPECT_EQ(restored.step_ttds(), plan.step_ttds());
  EXPECT_EQ(restored.step_reqs(), plan.step_reqs());
  EXPECT_EQ(restored.job_order, plan.job_order);
  EXPECT_EQ(restored.resource_cap, plan.resource_cap);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanRoundTrip, ::testing::Range<std::uint64_t>(1, 17));

TEST(PlanSerialization, SizeAccountingMatchesBuffer) {
  for (std::uint32_t cap : {1u, 4u, 32u, 240u}) {
    const auto plan = sample_plan(cap);
    EXPECT_EQ(serialized_plan_size(plan), serialize_plan(plan).size());
  }
}

TEST(PlanSerialization, PlanSizeStaysSmall) {
  // The paper's Fig. 13(b): even for workflows with >1400 tasks the plan
  // stays under ~7 KB; fig7 (~950 tasks) must be comfortably below that.
  const auto plan = sample_plan(96);
  EXPECT_LT(serialized_plan_size(plan), 7 * 1024u);
}

TEST(PlanSerialization, DeterministicBytes) {
  EXPECT_EQ(serialize_plan(sample_plan()), serialize_plan(sample_plan()));
}

TEST(PlanSerialization, RejectsCorruptedInput) {
  auto bytes = serialize_plan(sample_plan());
  auto bad_magic = bytes;
  bad_magic[0] = 'X';
  EXPECT_THROW((void)deserialize_plan(bad_magic), std::invalid_argument);

  auto bad_version = bytes;
  bad_version[2] = 99;
  EXPECT_THROW((void)deserialize_plan(bad_version), std::invalid_argument);

  auto truncated = bytes;
  truncated.resize(truncated.size() / 2);
  EXPECT_THROW((void)deserialize_plan(truncated), std::invalid_argument);

  auto trailing = bytes;
  trailing.push_back(0);
  EXPECT_THROW((void)deserialize_plan(trailing), std::invalid_argument);

  EXPECT_THROW((void)deserialize_plan({}), std::invalid_argument);
}

}  // namespace
}  // namespace woha::core

#include "core/skiplist.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.hpp"

namespace woha::core {
namespace {

TEST(SkipList, InsertFindErase) {
  SkipList<int, std::string> list;
  EXPECT_TRUE(list.empty());
  EXPECT_TRUE(list.insert(5, "five"));
  EXPECT_TRUE(list.insert(1, "one"));
  EXPECT_TRUE(list.insert(9, "nine"));
  EXPECT_EQ(list.size(), 3u);

  ASSERT_NE(list.find(5), nullptr);
  EXPECT_EQ(*list.find(5), "five");
  EXPECT_EQ(list.find(7), nullptr);
  EXPECT_TRUE(list.contains(1));

  EXPECT_TRUE(list.erase(5));
  EXPECT_FALSE(list.erase(5));
  EXPECT_EQ(list.size(), 2u);
  EXPECT_FALSE(list.contains(5));
}

TEST(SkipList, RejectsDuplicates) {
  SkipList<int, int> list;
  EXPECT_TRUE(list.insert(1, 10));
  EXPECT_FALSE(list.insert(1, 20));
  EXPECT_EQ(*list.find(1), 10);
  EXPECT_EQ(list.size(), 1u);
}

TEST(SkipList, FrontAndPopFrontAreOrdered) {
  SkipList<int, int> list;
  for (int k : {42, 7, 19, 3, 25}) list.insert(k, k * 10);
  EXPECT_EQ(list.front().first, 3);
  EXPECT_EQ(list.front().second, 30);

  std::vector<int> popped;
  while (!list.empty()) popped.push_back(list.pop_front().first);
  EXPECT_EQ(popped, (std::vector<int>{3, 7, 19, 25, 42}));
}

TEST(SkipList, EmptyAccessThrows) {
  SkipList<int, int> list;
  EXPECT_THROW((void)list.front(), std::logic_error);
  EXPECT_THROW((void)list.pop_front(), std::logic_error);
}

TEST(SkipList, ForEachVisitsAscendingAndStopsEarly) {
  SkipList<int, int> list;
  for (int k = 10; k >= 1; --k) list.insert(k, k);
  std::vector<int> seen;
  list.for_each([&](const int& k, const int&) {
    seen.push_back(k);
    return k < 4;  // stop after visiting 4
  });
  EXPECT_EQ(seen, (std::vector<int>{1, 2, 3, 4}));
}

TEST(SkipList, PairKeysOrderLexicographically) {
  // The DSL uses (priority, id) composite keys.
  SkipList<std::pair<std::int64_t, std::uint32_t>, int> list;
  list.insert({-5, 2}, 1);
  list.insert({-5, 1}, 2);
  list.insert({-9, 7}, 3);
  EXPECT_EQ(list.pop_front().second, 3);  // (-9,7)
  EXPECT_EQ(list.pop_front().second, 2);  // (-5,1)
  EXPECT_EQ(list.pop_front().second, 1);  // (-5,2)
}

class SkipListProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SkipListProperty, MatchesStdMapUnderRandomOps) {
  Rng rng(GetParam());
  SkipList<int, int> list;
  std::map<int, int> reference;

  for (int op = 0; op < 4000; ++op) {
    const int key = static_cast<int>(rng.uniform_int(0, 300));
    switch (rng.uniform_int(0, 3)) {
      case 0:
      case 1: {  // insert (biased: lists should grow)
        const bool inserted = list.insert(key, op);
        EXPECT_EQ(inserted, reference.emplace(key, op).second);
        break;
      }
      case 2: {  // erase by key
        EXPECT_EQ(list.erase(key), reference.erase(key) > 0);
        break;
      }
      default: {  // pop_front
        if (!reference.empty()) {
          const auto expected = *reference.begin();
          reference.erase(reference.begin());
          const auto got = list.pop_front();
          EXPECT_EQ(got.first, expected.first);
          EXPECT_EQ(got.second, expected.second);
        } else {
          EXPECT_TRUE(list.empty());
        }
        break;
      }
    }
    ASSERT_EQ(list.size(), reference.size());
  }

  // Final sweep: identical contents in identical order.
  auto it = reference.begin();
  list.for_each([&](const int& k, const int& v) {
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second);
    ++it;
    return true;
  });
  EXPECT_EQ(it, reference.end());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SkipListProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(SkipList, ScalesToManyElements) {
  SkipList<int, int> list;
  const int n = 50'000;
  for (int k = 0; k < n; ++k) list.insert((k * 7919) % n, k);  // scrambled order
  EXPECT_EQ(list.size(), static_cast<std::size_t>(n));
  int prev = -1;
  int count = 0;
  list.for_each([&](const int& k, const int&) {
    EXPECT_GT(k, prev);
    prev = k;
    ++count;
    return true;
  });
  EXPECT_EQ(count, n);
}

}  // namespace
}  // namespace woha::core

file(REMOVE_RECURSE
  "CMakeFiles/woha_hadoop.dir/hadoop/cluster.cpp.o"
  "CMakeFiles/woha_hadoop.dir/hadoop/cluster.cpp.o.d"
  "CMakeFiles/woha_hadoop.dir/hadoop/engine.cpp.o"
  "CMakeFiles/woha_hadoop.dir/hadoop/engine.cpp.o.d"
  "CMakeFiles/woha_hadoop.dir/hadoop/job.cpp.o"
  "CMakeFiles/woha_hadoop.dir/hadoop/job.cpp.o.d"
  "CMakeFiles/woha_hadoop.dir/hadoop/job_tracker.cpp.o"
  "CMakeFiles/woha_hadoop.dir/hadoop/job_tracker.cpp.o.d"
  "libwoha_hadoop.a"
  "libwoha_hadoop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/woha_hadoop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

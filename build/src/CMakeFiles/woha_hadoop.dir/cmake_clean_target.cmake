file(REMOVE_RECURSE
  "libwoha_hadoop.a"
)

# Empty dependencies file for woha_hadoop.
# This may be replaced when dependencies are built.

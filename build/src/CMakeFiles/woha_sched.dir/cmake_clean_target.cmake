file(REMOVE_RECURSE
  "libwoha_sched.a"
)

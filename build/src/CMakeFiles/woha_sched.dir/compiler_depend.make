# Empty compiler generated dependencies file for woha_sched.
# This may be replaced when dependencies are built.

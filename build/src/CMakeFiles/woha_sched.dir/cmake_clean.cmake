file(REMOVE_RECURSE
  "CMakeFiles/woha_sched.dir/sched/decomposed_edf_scheduler.cpp.o"
  "CMakeFiles/woha_sched.dir/sched/decomposed_edf_scheduler.cpp.o.d"
  "CMakeFiles/woha_sched.dir/sched/edf_scheduler.cpp.o"
  "CMakeFiles/woha_sched.dir/sched/edf_scheduler.cpp.o.d"
  "CMakeFiles/woha_sched.dir/sched/fair_scheduler.cpp.o"
  "CMakeFiles/woha_sched.dir/sched/fair_scheduler.cpp.o.d"
  "CMakeFiles/woha_sched.dir/sched/fifo_scheduler.cpp.o"
  "CMakeFiles/woha_sched.dir/sched/fifo_scheduler.cpp.o.d"
  "libwoha_sched.a"
  "libwoha_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/woha_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

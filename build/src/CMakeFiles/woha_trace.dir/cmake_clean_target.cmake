file(REMOVE_RECURSE
  "libwoha_trace.a"
)

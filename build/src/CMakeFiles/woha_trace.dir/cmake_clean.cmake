file(REMOVE_RECURSE
  "CMakeFiles/woha_trace.dir/trace/deadlines.cpp.o"
  "CMakeFiles/woha_trace.dir/trace/deadlines.cpp.o.d"
  "CMakeFiles/woha_trace.dir/trace/paper_workloads.cpp.o"
  "CMakeFiles/woha_trace.dir/trace/paper_workloads.cpp.o.d"
  "CMakeFiles/woha_trace.dir/trace/yahoo_like.cpp.o"
  "CMakeFiles/woha_trace.dir/trace/yahoo_like.cpp.o.d"
  "libwoha_trace.a"
  "libwoha_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/woha_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for woha_trace.
# This may be replaced when dependencies are built.

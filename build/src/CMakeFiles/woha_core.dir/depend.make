# Empty dependencies file for woha_core.
# This may be replaced when dependencies are built.

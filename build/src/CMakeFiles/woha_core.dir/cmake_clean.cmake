file(REMOVE_RECURSE
  "CMakeFiles/woha_core.dir/core/job_priority.cpp.o"
  "CMakeFiles/woha_core.dir/core/job_priority.cpp.o.d"
  "CMakeFiles/woha_core.dir/core/plan.cpp.o"
  "CMakeFiles/woha_core.dir/core/plan.cpp.o.d"
  "CMakeFiles/woha_core.dir/core/plan_serialization.cpp.o"
  "CMakeFiles/woha_core.dir/core/plan_serialization.cpp.o.d"
  "CMakeFiles/woha_core.dir/core/progress_tracker.cpp.o"
  "CMakeFiles/woha_core.dir/core/progress_tracker.cpp.o.d"
  "CMakeFiles/woha_core.dir/core/queue_bst.cpp.o"
  "CMakeFiles/woha_core.dir/core/queue_bst.cpp.o.d"
  "CMakeFiles/woha_core.dir/core/queue_dsl.cpp.o"
  "CMakeFiles/woha_core.dir/core/queue_dsl.cpp.o.d"
  "CMakeFiles/woha_core.dir/core/queue_naive.cpp.o"
  "CMakeFiles/woha_core.dir/core/queue_naive.cpp.o.d"
  "CMakeFiles/woha_core.dir/core/resource_cap.cpp.o"
  "CMakeFiles/woha_core.dir/core/resource_cap.cpp.o.d"
  "CMakeFiles/woha_core.dir/core/scheduler_queue.cpp.o"
  "CMakeFiles/woha_core.dir/core/scheduler_queue.cpp.o.d"
  "CMakeFiles/woha_core.dir/core/woha_scheduler.cpp.o"
  "CMakeFiles/woha_core.dir/core/woha_scheduler.cpp.o.d"
  "libwoha_core.a"
  "libwoha_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/woha_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

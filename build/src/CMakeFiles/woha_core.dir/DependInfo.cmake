
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/job_priority.cpp" "src/CMakeFiles/woha_core.dir/core/job_priority.cpp.o" "gcc" "src/CMakeFiles/woha_core.dir/core/job_priority.cpp.o.d"
  "/root/repo/src/core/plan.cpp" "src/CMakeFiles/woha_core.dir/core/plan.cpp.o" "gcc" "src/CMakeFiles/woha_core.dir/core/plan.cpp.o.d"
  "/root/repo/src/core/plan_serialization.cpp" "src/CMakeFiles/woha_core.dir/core/plan_serialization.cpp.o" "gcc" "src/CMakeFiles/woha_core.dir/core/plan_serialization.cpp.o.d"
  "/root/repo/src/core/progress_tracker.cpp" "src/CMakeFiles/woha_core.dir/core/progress_tracker.cpp.o" "gcc" "src/CMakeFiles/woha_core.dir/core/progress_tracker.cpp.o.d"
  "/root/repo/src/core/queue_bst.cpp" "src/CMakeFiles/woha_core.dir/core/queue_bst.cpp.o" "gcc" "src/CMakeFiles/woha_core.dir/core/queue_bst.cpp.o.d"
  "/root/repo/src/core/queue_dsl.cpp" "src/CMakeFiles/woha_core.dir/core/queue_dsl.cpp.o" "gcc" "src/CMakeFiles/woha_core.dir/core/queue_dsl.cpp.o.d"
  "/root/repo/src/core/queue_naive.cpp" "src/CMakeFiles/woha_core.dir/core/queue_naive.cpp.o" "gcc" "src/CMakeFiles/woha_core.dir/core/queue_naive.cpp.o.d"
  "/root/repo/src/core/resource_cap.cpp" "src/CMakeFiles/woha_core.dir/core/resource_cap.cpp.o" "gcc" "src/CMakeFiles/woha_core.dir/core/resource_cap.cpp.o.d"
  "/root/repo/src/core/scheduler_queue.cpp" "src/CMakeFiles/woha_core.dir/core/scheduler_queue.cpp.o" "gcc" "src/CMakeFiles/woha_core.dir/core/scheduler_queue.cpp.o.d"
  "/root/repo/src/core/woha_scheduler.cpp" "src/CMakeFiles/woha_core.dir/core/woha_scheduler.cpp.o" "gcc" "src/CMakeFiles/woha_core.dir/core/woha_scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/woha_hadoop.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/woha_estimate.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/woha_workflow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/woha_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/woha_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/woha_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

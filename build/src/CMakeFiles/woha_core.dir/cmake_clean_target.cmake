file(REMOVE_RECURSE
  "libwoha_core.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/woha_sim.dir/sim/simulation.cpp.o"
  "CMakeFiles/woha_sim.dir/sim/simulation.cpp.o.d"
  "libwoha_sim.a"
  "libwoha_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/woha_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libwoha_sim.a"
)

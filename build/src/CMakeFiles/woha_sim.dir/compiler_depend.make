# Empty compiler generated dependencies file for woha_sim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libwoha_xml.a"
)

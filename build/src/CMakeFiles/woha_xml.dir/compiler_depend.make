# Empty compiler generated dependencies file for woha_xml.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/woha_xml.dir/xml/xml.cpp.o"
  "CMakeFiles/woha_xml.dir/xml/xml.cpp.o.d"
  "libwoha_xml.a"
  "libwoha_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/woha_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

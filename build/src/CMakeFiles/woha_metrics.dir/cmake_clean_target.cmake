file(REMOVE_RECURSE
  "libwoha_metrics.a"
)

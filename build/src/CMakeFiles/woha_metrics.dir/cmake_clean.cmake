file(REMOVE_RECURSE
  "CMakeFiles/woha_metrics.dir/metrics/metrics.cpp.o"
  "CMakeFiles/woha_metrics.dir/metrics/metrics.cpp.o.d"
  "CMakeFiles/woha_metrics.dir/metrics/report.cpp.o"
  "CMakeFiles/woha_metrics.dir/metrics/report.cpp.o.d"
  "CMakeFiles/woha_metrics.dir/metrics/timeline.cpp.o"
  "CMakeFiles/woha_metrics.dir/metrics/timeline.cpp.o.d"
  "libwoha_metrics.a"
  "libwoha_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/woha_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for woha_metrics.
# This may be replaced when dependencies are built.

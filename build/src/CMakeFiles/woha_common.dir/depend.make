# Empty dependencies file for woha_common.
# This may be replaced when dependencies are built.

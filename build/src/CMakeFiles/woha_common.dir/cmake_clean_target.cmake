file(REMOVE_RECURSE
  "libwoha_common.a"
)

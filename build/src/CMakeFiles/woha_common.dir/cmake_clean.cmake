file(REMOVE_RECURSE
  "CMakeFiles/woha_common.dir/common/log.cpp.o"
  "CMakeFiles/woha_common.dir/common/log.cpp.o.d"
  "CMakeFiles/woha_common.dir/common/rng.cpp.o"
  "CMakeFiles/woha_common.dir/common/rng.cpp.o.d"
  "CMakeFiles/woha_common.dir/common/stats.cpp.o"
  "CMakeFiles/woha_common.dir/common/stats.cpp.o.d"
  "CMakeFiles/woha_common.dir/common/strings.cpp.o"
  "CMakeFiles/woha_common.dir/common/strings.cpp.o.d"
  "CMakeFiles/woha_common.dir/common/table.cpp.o"
  "CMakeFiles/woha_common.dir/common/table.cpp.o.d"
  "libwoha_common.a"
  "libwoha_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/woha_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libwoha_workflow.a"
)

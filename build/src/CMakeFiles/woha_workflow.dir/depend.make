# Empty dependencies file for woha_workflow.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workflow/analysis.cpp" "src/CMakeFiles/woha_workflow.dir/workflow/analysis.cpp.o" "gcc" "src/CMakeFiles/woha_workflow.dir/workflow/analysis.cpp.o.d"
  "/root/repo/src/workflow/config.cpp" "src/CMakeFiles/woha_workflow.dir/workflow/config.cpp.o" "gcc" "src/CMakeFiles/woha_workflow.dir/workflow/config.cpp.o.d"
  "/root/repo/src/workflow/dot.cpp" "src/CMakeFiles/woha_workflow.dir/workflow/dot.cpp.o" "gcc" "src/CMakeFiles/woha_workflow.dir/workflow/dot.cpp.o.d"
  "/root/repo/src/workflow/recurrence.cpp" "src/CMakeFiles/woha_workflow.dir/workflow/recurrence.cpp.o" "gcc" "src/CMakeFiles/woha_workflow.dir/workflow/recurrence.cpp.o.d"
  "/root/repo/src/workflow/topology.cpp" "src/CMakeFiles/woha_workflow.dir/workflow/topology.cpp.o" "gcc" "src/CMakeFiles/woha_workflow.dir/workflow/topology.cpp.o.d"
  "/root/repo/src/workflow/workflow.cpp" "src/CMakeFiles/woha_workflow.dir/workflow/workflow.cpp.o" "gcc" "src/CMakeFiles/woha_workflow.dir/workflow/workflow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/woha_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/woha_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

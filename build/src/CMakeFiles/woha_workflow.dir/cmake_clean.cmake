file(REMOVE_RECURSE
  "CMakeFiles/woha_workflow.dir/workflow/analysis.cpp.o"
  "CMakeFiles/woha_workflow.dir/workflow/analysis.cpp.o.d"
  "CMakeFiles/woha_workflow.dir/workflow/config.cpp.o"
  "CMakeFiles/woha_workflow.dir/workflow/config.cpp.o.d"
  "CMakeFiles/woha_workflow.dir/workflow/dot.cpp.o"
  "CMakeFiles/woha_workflow.dir/workflow/dot.cpp.o.d"
  "CMakeFiles/woha_workflow.dir/workflow/recurrence.cpp.o"
  "CMakeFiles/woha_workflow.dir/workflow/recurrence.cpp.o.d"
  "CMakeFiles/woha_workflow.dir/workflow/topology.cpp.o"
  "CMakeFiles/woha_workflow.dir/workflow/topology.cpp.o.d"
  "CMakeFiles/woha_workflow.dir/workflow/workflow.cpp.o"
  "CMakeFiles/woha_workflow.dir/workflow/workflow.cpp.o.d"
  "libwoha_workflow.a"
  "libwoha_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/woha_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for woha_estimate.
# This may be replaced when dependencies are built.

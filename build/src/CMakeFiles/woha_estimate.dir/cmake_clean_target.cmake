file(REMOVE_RECURSE
  "libwoha_estimate.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/woha_estimate.dir/estimate/estimator.cpp.o"
  "CMakeFiles/woha_estimate.dir/estimate/estimator.cpp.o.d"
  "libwoha_estimate.a"
  "libwoha_estimate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/woha_estimate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

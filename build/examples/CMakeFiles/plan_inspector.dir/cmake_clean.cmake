file(REMOVE_RECURSE
  "CMakeFiles/plan_inspector.dir/plan_inspector.cpp.o"
  "CMakeFiles/plan_inspector.dir/plan_inspector.cpp.o.d"
  "plan_inspector"
  "plan_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for adplacement_pipeline.
# This may be replaced when dependencies are built.

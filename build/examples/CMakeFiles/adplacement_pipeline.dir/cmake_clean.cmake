file(REMOVE_RECURSE
  "CMakeFiles/adplacement_pipeline.dir/adplacement_pipeline.cpp.o"
  "CMakeFiles/adplacement_pipeline.dir/adplacement_pipeline.cpp.o.d"
  "adplacement_pipeline"
  "adplacement_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adplacement_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

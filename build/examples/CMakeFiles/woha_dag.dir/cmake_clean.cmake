file(REMOVE_RECURSE
  "CMakeFiles/woha_dag.dir/woha_dag.cpp.o"
  "CMakeFiles/woha_dag.dir/woha_dag.cpp.o.d"
  "woha_dag"
  "woha_dag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/woha_dag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

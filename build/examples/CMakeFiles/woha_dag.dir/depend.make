# Empty dependencies file for woha_dag.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_fig14_19_slot_timelines.
# This may be replaced when dependencies are built.

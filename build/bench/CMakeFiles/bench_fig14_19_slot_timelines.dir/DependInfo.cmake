
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig14_19_slot_timelines.cpp" "bench/CMakeFiles/bench_fig14_19_slot_timelines.dir/fig14_19_slot_timelines.cpp.o" "gcc" "bench/CMakeFiles/bench_fig14_19_slot_timelines.dir/fig14_19_slot_timelines.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/woha_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/woha_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/woha_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/woha_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/woha_estimate.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/woha_hadoop.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/woha_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/woha_workflow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/woha_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/woha_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_19_slot_timelines.dir/fig14_19_slot_timelines.cpp.o"
  "CMakeFiles/bench_fig14_19_slot_timelines.dir/fig14_19_slot_timelines.cpp.o.d"
  "bench_fig14_19_slot_timelines"
  "bench_fig14_19_slot_timelines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_19_slot_timelines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cap_policy.dir/ablation_cap_policy.cpp.o"
  "CMakeFiles/bench_ablation_cap_policy.dir/ablation_cap_policy.cpp.o.d"
  "bench_ablation_cap_policy"
  "bench_ablation_cap_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cap_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

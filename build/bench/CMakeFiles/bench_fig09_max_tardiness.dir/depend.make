# Empty dependencies file for bench_fig09_max_tardiness.
# This may be replaced when dependencies are built.

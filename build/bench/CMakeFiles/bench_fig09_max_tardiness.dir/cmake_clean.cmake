file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_max_tardiness.dir/fig09_max_tardiness.cpp.o"
  "CMakeFiles/bench_fig09_max_tardiness.dir/fig09_max_tardiness.cpp.o.d"
  "bench_fig09_max_tardiness"
  "bench_fig09_max_tardiness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_max_tardiness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig13b_plan_size.
# This may be replaced when dependencies are built.

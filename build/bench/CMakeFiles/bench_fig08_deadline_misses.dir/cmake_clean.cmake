file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_deadline_misses.dir/fig08_deadline_misses.cpp.o"
  "CMakeFiles/bench_fig08_deadline_misses.dir/fig08_deadline_misses.cpp.o.d"
  "bench_fig08_deadline_misses"
  "bench_fig08_deadline_misses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_deadline_misses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig08_deadline_misses.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_utilization.dir/fig12_utilization.cpp.o"
  "CMakeFiles/bench_fig12_utilization.dir/fig12_utilization.cpp.o.d"
  "bench_fig12_utilization"
  "bench_fig12_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig12_utilization.
# This may be replaced when dependencies are built.

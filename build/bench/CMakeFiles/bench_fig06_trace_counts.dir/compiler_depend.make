# Empty compiler generated dependencies file for bench_fig06_trace_counts.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_trace_counts.dir/fig06_trace_counts.cpp.o"
  "CMakeFiles/bench_fig06_trace_counts.dir/fig06_trace_counts.cpp.o.d"
  "bench_fig06_trace_counts"
  "bench_fig06_trace_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_trace_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_trace_durations.dir/fig05_trace_durations.cpp.o"
  "CMakeFiles/bench_fig05_trace_durations.dir/fig05_trace_durations.cpp.o.d"
  "bench_fig05_trace_durations"
  "bench_fig05_trace_durations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_trace_durations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig05_trace_durations.
# This may be replaced when dependencies are built.

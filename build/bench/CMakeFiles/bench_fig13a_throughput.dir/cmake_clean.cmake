file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13a_throughput.dir/fig13a_throughput.cpp.o"
  "CMakeFiles/bench_fig13a_throughput.dir/fig13a_throughput.cpp.o.d"
  "bench_fig13a_throughput"
  "bench_fig13a_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13a_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_resource_cap.dir/fig02_resource_cap.cpp.o"
  "CMakeFiles/bench_fig02_resource_cap.dir/fig02_resource_cap.cpp.o.d"
  "bench_fig02_resource_cap"
  "bench_fig02_resource_cap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_resource_cap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

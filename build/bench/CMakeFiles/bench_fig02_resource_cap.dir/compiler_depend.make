# Empty compiler generated dependencies file for bench_fig02_resource_cap.
# This may be replaced when dependencies are built.

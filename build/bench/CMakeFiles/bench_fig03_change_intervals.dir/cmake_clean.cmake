file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_change_intervals.dir/fig03_change_intervals.cpp.o"
  "CMakeFiles/bench_fig03_change_intervals.dir/fig03_change_intervals.cpp.o.d"
  "bench_fig03_change_intervals"
  "bench_fig03_change_intervals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_change_intervals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_plan_generation.dir/plan_generation.cpp.o"
  "CMakeFiles/bench_plan_generation.dir/plan_generation.cpp.o.d"
  "bench_plan_generation"
  "bench_plan_generation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_plan_generation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

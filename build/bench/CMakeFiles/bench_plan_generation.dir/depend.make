# Empty dependencies file for bench_plan_generation.
# This may be replaced when dependencies are built.

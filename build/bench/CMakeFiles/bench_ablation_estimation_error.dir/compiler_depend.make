# Empty compiler generated dependencies file for bench_ablation_estimation_error.
# This may be replaced when dependencies are built.

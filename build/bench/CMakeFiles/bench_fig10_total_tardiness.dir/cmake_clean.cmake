file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_total_tardiness.dir/fig10_total_tardiness.cpp.o"
  "CMakeFiles/bench_fig10_total_tardiness.dir/fig10_total_tardiness.cpp.o.d"
  "bench_fig10_total_tardiness"
  "bench_fig10_total_tardiness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_total_tardiness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

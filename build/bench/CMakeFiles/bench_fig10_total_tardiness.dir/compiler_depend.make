# Empty compiler generated dependencies file for bench_fig10_total_tardiness.
# This may be replaced when dependencies are built.

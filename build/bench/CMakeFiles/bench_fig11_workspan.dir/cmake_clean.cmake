file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_workspan.dir/fig11_workspan.cpp.o"
  "CMakeFiles/bench_fig11_workspan.dir/fig11_workspan.cpp.o.d"
  "bench_fig11_workspan"
  "bench_fig11_workspan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_workspan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/job_priority_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/job_priority_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/plan_property_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/plan_property_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/plan_serialization_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/plan_serialization_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/plan_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/plan_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/queue_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/queue_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/resource_cap_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/resource_cap_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/skiplist_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/skiplist_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/woha_scheduler_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/woha_scheduler_test.cpp.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

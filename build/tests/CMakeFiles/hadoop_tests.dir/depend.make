# Empty dependencies file for hadoop_tests.
# This may be replaced when dependencies are built.

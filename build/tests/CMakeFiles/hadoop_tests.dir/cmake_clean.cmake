file(REMOVE_RECURSE
  "CMakeFiles/hadoop_tests.dir/hadoop/cluster_test.cpp.o"
  "CMakeFiles/hadoop_tests.dir/hadoop/cluster_test.cpp.o.d"
  "CMakeFiles/hadoop_tests.dir/hadoop/engine_test.cpp.o"
  "CMakeFiles/hadoop_tests.dir/hadoop/engine_test.cpp.o.d"
  "CMakeFiles/hadoop_tests.dir/hadoop/failure_test.cpp.o"
  "CMakeFiles/hadoop_tests.dir/hadoop/failure_test.cpp.o.d"
  "CMakeFiles/hadoop_tests.dir/hadoop/job_test.cpp.o"
  "CMakeFiles/hadoop_tests.dir/hadoop/job_test.cpp.o.d"
  "hadoop_tests"
  "hadoop_tests.pdb"
  "hadoop_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hadoop_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

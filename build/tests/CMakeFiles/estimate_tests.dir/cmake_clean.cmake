file(REMOVE_RECURSE
  "CMakeFiles/estimate_tests.dir/estimate/estimator_test.cpp.o"
  "CMakeFiles/estimate_tests.dir/estimate/estimator_test.cpp.o.d"
  "estimate_tests"
  "estimate_tests.pdb"
  "estimate_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estimate_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

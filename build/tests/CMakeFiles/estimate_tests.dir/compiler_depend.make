# Empty compiler generated dependencies file for estimate_tests.
# This may be replaced when dependencies are built.

# Empty dependencies file for workflow_tests.
# This may be replaced when dependencies are built.

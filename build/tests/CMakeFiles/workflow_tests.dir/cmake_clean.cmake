file(REMOVE_RECURSE
  "CMakeFiles/workflow_tests.dir/workflow/analysis_test.cpp.o"
  "CMakeFiles/workflow_tests.dir/workflow/analysis_test.cpp.o.d"
  "CMakeFiles/workflow_tests.dir/workflow/config_test.cpp.o"
  "CMakeFiles/workflow_tests.dir/workflow/config_test.cpp.o.d"
  "CMakeFiles/workflow_tests.dir/workflow/dot_recurrence_test.cpp.o"
  "CMakeFiles/workflow_tests.dir/workflow/dot_recurrence_test.cpp.o.d"
  "CMakeFiles/workflow_tests.dir/workflow/topology_test.cpp.o"
  "CMakeFiles/workflow_tests.dir/workflow/topology_test.cpp.o.d"
  "CMakeFiles/workflow_tests.dir/workflow/workflow_test.cpp.o"
  "CMakeFiles/workflow_tests.dir/workflow/workflow_test.cpp.o.d"
  "workflow_tests"
  "workflow_tests.pdb"
  "workflow_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workflow_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

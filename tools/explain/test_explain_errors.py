#!/usr/bin/env python3
"""Error-path tests for the explain CLI.

The tool is scripted in CI (its output gets diffed), so its exit code is the
only signal a wrapper has: an unknown --workflow id or an unwritable output
path must exit nonzero with a diagnosis on stderr, never "success" with a
shrug on stdout. Run as:

    test_explain_errors.py <path-to-explain-binary>
"""

import os
import subprocess
import sys
import tempfile


def run(binary, *args):
    return subprocess.run([binary, *args], capture_output=True, text=True,
                          timeout=600)


def check(name, ok, detail=""):
    print(f"{'ok' if ok else 'FAIL'}: {name}" + (f" — {detail}" if detail else ""))
    return ok


def main():
    if len(sys.argv) != 2:
        print("usage: test_explain_errors.py <explain-binary>", file=sys.stderr)
        return 2
    binary = sys.argv[1]
    failures = 0

    # Unknown workflow id: nonzero exit, diagnosis on stderr.
    r = run(binary, "--workflow", "9999")
    failures += not check("unknown --workflow exits nonzero", r.returncode != 0,
                          f"exit={r.returncode}")
    failures += not check("unknown --workflow diagnoses on stderr",
                          "was not recorded" in r.stderr, repr(r.stderr[:200]))

    # Unwritable output paths: fail fast (before the run), nonzero exit.
    missing_dir = os.path.join(tempfile.gettempdir(),
                               "woha-explain-no-such-dir", "out.jsonl")
    for flag in ("--spans-jsonl", "--attribution-jsonl", "--trace"):
        r = run(binary, flag, missing_dir)
        failures += not check(f"unwritable {flag} exits nonzero",
                              r.returncode != 0, f"exit={r.returncode}")
        failures += not check(f"unwritable {flag} diagnoses on stderr",
                              "cannot open" in r.stderr, repr(r.stderr[:200]))

    # Positive control: default narration and writable paths exit 0.
    with tempfile.TemporaryDirectory() as tmp:
        spans = os.path.join(tmp, "spans.jsonl")
        r = run(binary, "--spans-jsonl", spans)
        failures += not check("valid invocation exits 0", r.returncode == 0,
                              f"exit={r.returncode} stderr={r.stderr[:200]!r}")
        failures += not check("valid invocation writes spans",
                              os.path.exists(spans) and
                              os.path.getsize(spans) > 0)

    if failures:
        print(f"{failures} check(s) failed", file=sys.stderr)
        return 1
    print("explain CLI error-path tests: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

// explain — deadline-miss forensics for canned WOHA scenarios.
//
// Runs one deterministic scenario with a SpanRecorder on the engine's event
// bus, attributes every workflow's span [submit, finish] into the conserved
// loss buckets (see src/forensics/attribution.hpp), and prints a root-cause
// table plus an end-to-end story for one workflow — by default the one with
// the largest tardiness.
//
//   --scenario overload|fig8   which canned run (default overload)
//   --rho R                    overload arrival intensity (default 1.3)
//   --workflow N               narrate workflow N instead of the worst miss
//   --spans-jsonl PATH         dump the span tree as JSONL
//   --attribution-jsonl PATH   dump per-workflow attribution records
//   --trace PATH               Chrome/Perfetto trace with DAG flow arrows
//
// Everything is seeded; two invocations with the same flags are
// byte-identical (CI diffs exactly that).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "forensics/attribution.hpp"
#include "forensics/explain.hpp"
#include "forensics/export.hpp"
#include "forensics/span_recorder.hpp"
#include "hadoop/admission.hpp"
#include "hadoop/engine.hpp"
#include "metrics/report.hpp"
#include "obs/export_chrome.hpp"
#include "trace/arrivals.hpp"
#include "trace/deadlines.hpp"
#include "trace/paper_workloads.hpp"
#include "workflow/topology.hpp"

using namespace woha;

namespace {

struct Options {
  std::string scenario = "overload";
  double rho = 1.3;
  std::int64_t workflow = -1;  ///< -1 = pick the worst miss
  std::string spans_path;
  std::string attribution_path;
  std::string trace_path;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--scenario overload|fig8] [--rho R] [--workflow N]\n"
               "          [--spans-jsonl PATH] [--attribution-jsonl PATH]\n"
               "          [--trace PATH]\n",
               argv0);
  return 2;
}

/// The overload chaos scenario (mirrors the OverloadDeterminism fixture):
/// 12 diamond workflows arriving open-loop past saturation on a small
/// cluster with shedding, MTBF node churn, jitter, and speculation — every
/// attribution bucket has something to absorb.
std::vector<wf::WorkflowSpec> overload_workload(double rho) {
  std::vector<wf::WorkflowSpec> workflows;
  for (std::uint32_t i = 0; i < 12; ++i) {
    auto spec = wf::diamond(3);
    spec.name = "wf" + std::to_string(i);
    workflows.push_back(std::move(spec));
  }
  trace::DeadlinePolicy deadlines;
  deadlines.reference_cap = 12;
  trace::assign_deadlines(workflows, 5, deadlines);
  trace::ArrivalConfig arrivals;
  arrivals.shape = trace::ArrivalShape::kPoisson;
  arrivals.rho = rho;
  arrivals.cluster_slots = 24;
  trace::assign_open_loop_arrivals(workflows, 7, arrivals);
  return workflows;
}

hadoop::EngineConfig overload_config() {
  hadoop::EngineConfig config;
  config.cluster.num_trackers = 8;
  config.cluster.map_slots_per_tracker = 2;
  config.cluster.reduce_slots_per_tracker = 1;
  config.seed = 42;
  config.duration_jitter_sigma = 0.3;
  config.admission.policy = hadoop::AdmissionPolicy::kShedLatestDeadlineFirst;
  config.admission.max_pending_workflows = 4;
  config.faults.tracker_mtbf = 600.0 * 1000.0;
  config.faults.tracker_restart_delay = seconds(30);
  config.faults.expiry_interval = seconds(60);
  config.faults.speculative_execution = true;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--scenario") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opt.scenario = v;
    } else if (arg == "--rho") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opt.rho = std::strtod(v, nullptr);
    } else if (arg == "--workflow") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opt.workflow = std::strtol(v, nullptr, 10);
    } else if (arg == "--spans-jsonl") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opt.spans_path = v;
    } else if (arg == "--attribution-jsonl") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opt.attribution_path = v;
    } else if (arg == "--trace") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opt.trace_path = v;
    } else {
      return usage(argv[0]);
    }
  }

  std::vector<wf::WorkflowSpec> workload;
  hadoop::EngineConfig config;
  std::string label;
  if (opt.scenario == "overload") {
    workload = overload_workload(opt.rho);
    config = overload_config();
    char buf[32];
    std::snprintf(buf, sizeof buf, "overload rho=%.2f", opt.rho);
    label = buf;
  } else if (opt.scenario == "fig8") {
    workload = trace::fig8_trace(42);
    config.cluster = hadoop::ClusterConfig::with_totals(240, 240);
    label = "fig8 240m/240r";
  } else {
    return usage(argv[0]);
  }

  // WOHA-MPF, the paper's headline configuration.
  const metrics::SchedulerEntry entry = metrics::paper_schedulers().back();
  hadoop::Engine engine(config, entry.make());
  forensics::SpanRecorder recorder(engine.events(), &engine.job_tracker());

  // Open every output stream before the (expensive) run so an unwritable
  // path fails fast with a diagnosis instead of silently discarding output.
  std::ofstream spans_out;
  if (!opt.spans_path.empty()) {
    spans_out.open(opt.spans_path);
    if (!spans_out) {
      std::fprintf(stderr, "error: cannot open %s for writing\n",
                   opt.spans_path.c_str());
      return 1;
    }
  }
  std::ofstream attribution_out;
  if (!opt.attribution_path.empty()) {
    attribution_out.open(opt.attribution_path);
    if (!attribution_out) {
      std::fprintf(stderr, "error: cannot open %s for writing\n",
                   opt.attribution_path.c_str());
      return 1;
    }
  }
  std::ofstream trace_out;
  std::unique_ptr<obs::ChromeTraceExporter> chrome;
  if (!opt.trace_path.empty()) {
    trace_out.open(opt.trace_path);
    if (!trace_out) {
      std::fprintf(stderr, "error: cannot open %s for writing\n",
                   opt.trace_path.c_str());
      return 1;
    }
    obs::ChromeTraceOptions copts;
    // DAG flow arrows: the recorder already holds each workflow's spec by
    // the time its first job activates.
    copts.prerequisites = [&recorder](std::uint32_t wf_id, std::uint32_t job)
        -> std::vector<std::uint32_t> {
      const auto& spans = recorder.workflows();
      if (wf_id >= spans.size() || job >= spans[wf_id].spec.jobs.size()) return {};
      return spans[wf_id].spec.jobs[job].prerequisites;
    };
    chrome = std::make_unique<obs::ChromeTraceExporter>(engine.events(),
                                                        trace_out, copts);
  }

  for (const auto& spec : workload) engine.submit(spec);
  engine.run();
  if (chrome) chrome->finish();

  const auto records = forensics::attribute_all(recorder.workflows());

  std::printf("scenario: %s — %s, %zu workflows submitted\n", label.c_str(),
              entry.label.c_str(), records.size());
  forensics::MissRow row{label, forensics::summarize_misses(records)};
  std::printf("%s\n", forensics::format_miss_table({row}).c_str());

  // Pick the narrated workflow: requested id, else the worst miss.
  const forensics::WorkflowAttribution* pick = nullptr;
  for (const auto& r : records) {
    if (opt.workflow >= 0) {
      if (r.workflow == static_cast<std::uint32_t>(opt.workflow)) pick = &r;
    } else if (r.status == "completed" && r.tardiness > 0 &&
               (pick == nullptr || r.tardiness > pick->tardiness)) {
      pick = &r;
    }
  }
  int status = 0;
  if (pick != nullptr) {
    std::printf("%s", forensics::format_workflow_detail(*pick).c_str());
  } else if (opt.workflow >= 0) {
    // A typo'd id must not exit 0: scripts diffing explain output would
    // treat "was not recorded" as a healthy run.
    std::fprintf(stderr,
                 "error: workflow %lld was not recorded in this scenario "
                 "(%zu workflows, ids dense from 0)\n",
                 static_cast<long long>(opt.workflow), records.size());
    status = 1;
  } else {
    std::printf("no deadline misses — nothing to explain\n");
  }

  if (spans_out.is_open()) {
    forensics::export_spans_jsonl(recorder.workflows(), recorder.rejected(),
                                  spans_out);
    std::printf("spans written to %s\n", opt.spans_path.c_str());
  }
  if (attribution_out.is_open()) {
    forensics::export_attribution_jsonl(records, attribution_out);
    std::printf("attribution written to %s\n", opt.attribution_path.c_str());
  }
  if (chrome) {
    std::printf("trace written to %s (%llu events)\n", opt.trace_path.c_str(),
                static_cast<unsigned long long>(chrome->events_written()));
  }
  return status;
}

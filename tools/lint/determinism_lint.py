#!/usr/bin/env python3
"""Repo-specific determinism lint for the WOHA reproduction.

The whole experiment pipeline rests on runs being a pure function of
(config, seeds): golden FNV digests pin Fig. 8/11/scale metrics bit-for-bit,
and the parallel grid runner is only trustworthy because nothing inside a run
reads ambient state. This scanner enforces, statically, the coding rules that
property depends on:

  banned-random        No rand()/srand()/std::random_device/std::mt19937/...
                       outside src/common/rng.* — every stochastic draw must
                       come from an explicitly seeded woha::Rng.
  banned-clock         No wall-clock reads (steady_clock, system_clock,
                       time(), gettimeofday, ...) except in allowlisted
                       wall-clock *measurement* plumbing (latency histograms,
                       wall_seconds reporting) that never feeds a decision.
  unordered-iteration  No iteration over std::unordered_map/unordered_set in
                       decision-path code (src/core, src/sched, src/hadoop,
                       src/sim, src/estimate): hash-order iteration silently
                       varies across libstdc++ versions and ASLR, turning
                       scheduler decisions nondeterministic. Lookups are fine.
  float-equality       No ==/!= on float/double values in queue-ordering code:
                       FP equality is representation-sensitive and would make
                       priority ties platform-dependent.
  pointer-sort-key     No pointer-valued sort keys or pointer-keyed ordered
                       containers in decision-path code: pointer order is
                       allocation order, which varies run to run.
  lock-order           Mutexes annotated `// lint: lock-rank(name)=N` must be
                       acquired in strictly increasing rank order. A guard
                       taking rank <= any held rank is a lock-inversion
                       hazard; ranks declared in a header cover the matching
                       .cpp (same path stem). Unannotated mutexes are ignored.
  shared-mutable-static
                       No non-const static-duration state (file-scope or
                       function-local `static`, `thread_local`) in scanned
                       code: hidden shared state is invisible to the race
                       annotations and outlives the runs that mutate it.
                       Suppress a justified site with an inline
                       `// lint: allowlisted shared-mutable-static` tag or an
                       allowlist entry.
  thread-id-as-key     No containers keyed (or hashed) by std::thread::id and
                       no get_id()-subscripted maps: OS thread ids vary run
                       to run, so any id-keyed order or grouping is
                       nondeterministic. Use analysis::thread_index() or
                       another dense deterministic id.

Violations may be suppressed through the allowlist file (one entry per line):

    rule|path|line-substring-or-*|justification

Every entry must carry a justification and must actually match something —
stale entries fail the lint, so suppressions can never outlive their reason.

Usage:
    determinism_lint.py --root <repo-root>            lint src/ and bench/
    determinism_lint.py --root <repo-root> --self-test
                       prove every rule fires on its tests/lint_fixtures file
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

# Directories scanned for the clock/random rules (relative to the repo root).
SCAN_DIRS = ["src", "bench"]
# Decision-path prefixes: files here feed scheduler or engine decisions, so
# the iteration-order / float-compare / pointer-key rules apply.
DECISION_PREFIXES = ("src/core/", "src/sched/", "src/hadoop/", "src/sim/",
                     "src/estimate/")
# Queue-ordering files: the float-equality rule is scoped to code that builds
# or compares priority keys.
ORDERING_PREFIXES = ("src/core/",)
# The one sanctioned home of raw entropy.
RNG_HOME = ("src/common/rng.hpp", "src/common/rng.cpp")

SOURCE_SUFFIXES = {".cpp", ".hpp", ".h", ".cc", ".hh"}

BANNED_RANDOM = re.compile(
    r"\bstd::random_device\b|\bstd::mt19937(?:_64)?\b|"
    r"\bstd::default_random_engine\b|\bstd::minstd_rand0?\b|"
    r"\bstd::random_shuffle\b|\bstd::ranlux\w*\b|"
    r"(?<![\w:.])s?rand\s*\(|\brand_r\s*\(|\bdrand48\s*\(|\blrand48\s*\(")

BANNED_CLOCK = re.compile(
    r"\bsteady_clock\b|\bsystem_clock\b|\bhigh_resolution_clock\b|"
    r"\bgettimeofday\s*\(|\bclock_gettime\s*\(|\blocaltime\w*\s*\(|"
    r"\bgmtime\w*\s*\(|(?<![\w:.>])time\s*\(\s*(?:NULL|nullptr|0|&\w+)\s*\)|"
    r"(?<![\w:.>])clock\s*\(\s*\)")

UNORDERED_DECL = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<[^;{}()]*?>\s+(\w+)\s*[;{=\[]",
    re.DOTALL)
FLOAT_DECL = re.compile(r"\b(?:float|double)\s+(\w+)\s*[;,=)]")
FLOAT_LITERAL = re.compile(r"\b\d+\.\d*(?:[eE][+-]?\d+)?f?\b|\b\d+f\b")
COMPARISON = re.compile(r"[^=!<>+\-*/&|^]==[^=]|[^=!<>]!=[^=]")

# std::sort / std::stable_sort with a lambda comparator over pointer
# parameters; the body is inspected separately — comparing *through* the
# pointers (a->field < b->field) is fine, comparing the pointers is not.
POINTER_COMPARATOR = re.compile(
    r"\bstd::(?:stable_)?sort\s*\([^;]*?\[[^\]]*\]\s*\("
    r"\s*(?:const\s+)?[\w:]+\s*\*\s*(\w+)\s*,\s*"
    r"(?:const\s+)?[\w:]+\s*\*\s*(\w+)\s*\)\s*(?:->\s*[\w:]+\s*)?\{([^{}]*)\}",
    re.DOTALL)
# it == / != container.end()-style iterator checks: exempt from the FP rule.
ITER_COMPARE = re.compile(r"[!=]=\s*[\w.>\-]*\bc?(?:end|begin)\s*\(\s*\)|"
                          r"[!=]=\s*nullptr\b|\bnullptr\s*[!=]=")
# Ordered container keyed by a pointer type (first template argument for map,
# sole argument for set).
POINTER_KEYED = re.compile(
    r"\bstd::(?:multi)?(?:map|set)\s*<\s*(?:const\s+)?[\w:]+\s*\*\s*[,>]")

# --- lock-order machinery ---------------------------------------------------
# Rank annotations live in comments, so they are parsed from the RAW text
# (strip_comments_and_strings would blank them).
LOCK_RANK = re.compile(r"//\s*lint:\s*lock-rank\((\w+)\)\s*=\s*(\d+)")
# A scoped guard construction: std::lock_guard<std::mutex> lock(mutex_);
# The first constructor argument is the mutex expression; its trailing
# identifier (mutex_ in pool_.mutex_) is matched against declared ranks.
GUARD_ACQ = re.compile(
    r"\bstd::(?:lock_guard|unique_lock|scoped_lock|shared_lock)\s*"
    r"(?:<[^<>;]*>)?\s+\w+\s*[({]([^;)}]*)[)}]")

# --- shared-mutable-static machinery ----------------------------------------
STATIC_DECL = re.compile(r"^(\s*(?:inline\s+)?(?:(?:static|thread_local)\s+)+)(.*)$")
SMS_INLINE_TAG = "lint: allowlisted shared-mutable-static"

# --- thread-id-as-key machinery ---------------------------------------------
THREAD_ID_KEY = re.compile(
    r"\bstd::(?:unordered_)?(?:multi)?(?:map|set)\s*<\s*(?:const\s+)?"
    r"std::thread::id\b|"
    r"\bstd::hash\s*<\s*std::thread::id\b|"
    r"\[\s*std::this_thread::get_id\s*\(\s*\)\s*\]")


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments, string and char literals, preserving line structure
    and byte offsets (every removed char becomes a space)."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:j]))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(" " * (j - i))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


class Finding:
    def __init__(self, rule: str, path: str, line_no: int, line: str, msg: str):
        self.rule = rule
        self.path = path
        self.line_no = line_no
        self.line = line.strip()
        self.msg = msg

    def __str__(self) -> str:
        return f"{self.path}:{self.line_no}: [{self.rule}] {self.msg}\n" \
               f"    {self.line}"


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def scan_file(rel_path: str, raw: str,
              extra_ranks: dict[str, int] | None = None) -> list[Finding]:
    text = strip_comments_and_strings(raw)
    lines = text.splitlines()
    raw_lines = raw.splitlines()
    findings: list[Finding] = []

    def add(rule: str, line_no: int, msg: str) -> None:
        src = raw_lines[line_no - 1] if line_no - 1 < len(raw_lines) else ""
        findings.append(Finding(rule, rel_path, line_no, src, msg))

    # --- banned-random -----------------------------------------------------
    if rel_path not in RNG_HOME:
        for m in BANNED_RANDOM.finditer(text):
            add("banned-random", line_of(text, m.start()),
                f"raw entropy source '{m.group(0).strip()}' outside "
                "src/common/rng.*; draw from a seeded woha::Rng instead")

    # --- banned-clock ------------------------------------------------------
    for m in BANNED_CLOCK.finditer(text):
        add("banned-clock", line_of(text, m.start()),
            f"wall-clock read '{m.group(0).strip()}' — simulated logic must "
            "use sim::Simulation::now(); wall-clock measurement plumbing "
            "needs an allowlist justification")

    decision = rel_path.startswith(DECISION_PREFIXES) or "lint_fixtures" in rel_path

    # --- unordered-iteration ----------------------------------------------
    if decision:
        unordered_names = set(UNORDERED_DECL.findall(text))
        for name in unordered_names:
            pat = re.compile(
                r"for\s*\([^;()]*?:\s*(?:\w+(?:\.|->))?" + re.escape(name) +
                r"\s*\)|" + re.escape(name) + r"\s*\.\s*c?begin\s*\(")
            for m in pat.finditer(text):
                add("unordered-iteration", line_of(text, m.start()),
                    f"iteration over unordered container '{name}' in "
                    "decision-path code; hash order is not deterministic "
                    "across platforms — use an ordered index or sort first")

    # --- float-equality ----------------------------------------------------
    if rel_path.startswith(ORDERING_PREFIXES) or "lint_fixtures" in rel_path:
        float_names = set(FLOAT_DECL.findall(text))
        for i, line in enumerate(lines, start=1):
            line = ITER_COMPARE.sub(" ", line)
            if not COMPARISON.search(" " + line + " "):
                continue
            involved = FLOAT_LITERAL.search(line) or any(
                re.search(r"\b" + re.escape(n) + r"\b", line) for n in float_names)
            if involved:
                add("float-equality", i,
                    "==/!= on floating-point values in queue-ordering code; "
                    "FP equality makes priority ties platform-dependent — "
                    "compare integral keys or use an epsilon policy")

    # --- pointer-sort-key --------------------------------------------------
    if decision:
        for m in POINTER_COMPARATOR.finditer(text):
            a, b, body = m.group(1), m.group(2), m.group(3)
            raw_compare = re.compile(
                r"\b" + re.escape(a) + r"\s*[<>]=?\s*" + re.escape(b) + r"\b|"
                r"\b" + re.escape(b) + r"\s*[<>]=?\s*" + re.escape(a) + r"\b")
            if raw_compare.search(body):
                add("pointer-sort-key", line_of(text, m.start()),
                    "sort comparator orders by raw pointer value: pointer "
                    "order is allocation order and varies run to run")
        for m in POINTER_KEYED.finditer(text):
            add("pointer-sort-key", line_of(text, m.start()),
                "ordered container keyed by a pointer type: iteration order "
                "would be allocation order, which is nondeterministic")

    # --- lock-order --------------------------------------------------------
    # Ranks come from this file's own annotations plus the companion file
    # sharing its path stem (a header declares the rank, the .cpp locks it).
    ranks: dict[str, int] = dict(extra_ranks or {})
    for m in LOCK_RANK.finditer(raw):
        ranks[m.group(1)] = int(m.group(2))
    if ranks:
        events: list[tuple[int, str, tuple[str, int] | None]] = []
        for m in re.finditer(r"[{}]", text):
            events.append((m.start(), m.group(0), None))
        for m in GUARD_ACQ.finditer(text):
            arg = m.group(1).split(",")[0]
            idents = re.findall(r"\w+", arg)
            if idents and idents[-1] in ranks:
                name = idents[-1]
                events.append((m.start(), "acq", (name, ranks[name])))
        events.sort(key=lambda e: e[0])
        depth = 0
        held: list[tuple[int, str, int]] = []  # (depth, name, rank)
        for off, kind, payload in events:
            if kind == "{":
                depth += 1
            elif kind == "}":
                depth -= 1
                while held and held[-1][0] > depth:
                    held.pop()
            else:
                assert payload is not None
                name, rank = payload
                for _, hname, hrank in held:
                    if hrank >= rank:
                        add("lock-order", line_of(text, off),
                            f"acquires '{name}' (rank {rank}) while "
                            f"'{hname}' (rank {hrank}) is held; annotated "
                            "mutexes must be taken in strictly increasing "
                            "rank order")
                        break
                held.append((depth, name, rank))

    # --- shared-mutable-static ---------------------------------------------
    for i, line in enumerate(lines, start=1):
        m = STATIC_DECL.match(line)
        if not m:
            continue
        rest = m.group(2)
        if re.match(r"(?:const|constexpr|constinit|consteval)\b", rest):
            continue
        raw_line = raw_lines[i - 1] if i - 1 < len(raw_lines) else ""
        if SMS_INLINE_TAG in raw_line:
            continue
        # A '(' before any initializer/terminator means this declares a
        # function (static member/free function), not an object.
        paren = rest.find("(")
        stops = [x for x in (rest.find("="), rest.find("{"), rest.find(";"))
                 if x != -1]
        if paren != -1 and (not stops or paren < min(stops)):
            continue
        add("shared-mutable-static", i,
            "non-const static-duration state: shared mutable statics are "
            "invisible to the race annotations and leak state across runs — "
            "pass state explicitly, or tag a justified site with "
            "'// lint: allowlisted shared-mutable-static'")

    # --- thread-id-as-key ---------------------------------------------------
    for m in THREAD_ID_KEY.finditer(text):
        add("thread-id-as-key", line_of(text, m.start()),
            "std::thread::id used as a container key: OS thread ids vary run "
            "to run, so id-keyed order or grouping is nondeterministic — use "
            "analysis::thread_index() or another dense deterministic id")

    return findings


class AllowEntry:
    def __init__(self, rule: str, path: str, fragment: str, justification: str,
                 source_line: int):
        self.rule = rule
        self.path = path
        self.fragment = fragment
        self.justification = justification
        self.source_line = source_line
        self.used = False

    def matches(self, f: Finding) -> bool:
        if self.rule != f.rule or self.path != f.path:
            return False
        return self.fragment == "*" or self.fragment in f.line


def load_allowlist(path: Path) -> list[AllowEntry]:
    entries: list[AllowEntry] = []
    if not path.exists():
        return entries
    for i, line in enumerate(path.read_text().splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = [p.strip() for p in line.split("|")]
        if len(parts) != 4 or not all(parts):
            raise SystemExit(
                f"{path}:{i}: malformed allowlist entry (need "
                "'rule|path|line-substring-or-*|justification'): {line!r}")
        entries.append(AllowEntry(*parts, source_line=i))
    return entries


def collect_files(root: Path) -> list[Path]:
    files = []
    for d in SCAN_DIRS:
        base = root / d
        if not base.is_dir():
            continue
        files.extend(p for p in sorted(base.rglob("*"))
                     if p.suffix in SOURCE_SUFFIXES and "build" not in p.parts)
    return files


def run_lint(root: Path) -> int:
    allowlist = load_allowlist(root / "tools" / "lint" /
                               "determinism_allowlist.txt")
    files = collect_files(root)
    # First pass: lock-rank annotations grouped by path stem, so a rank
    # declared on a member in foo.hpp governs acquisitions in foo.cpp.
    ranks_by_stem: dict[str, dict[str, int]] = {}
    for path in files:
        rel = path.relative_to(root).as_posix()
        stem = rel.rsplit(".", 1)[0]
        for m in LOCK_RANK.finditer(path.read_text()):
            ranks_by_stem.setdefault(stem, {})[m.group(1)] = int(m.group(2))

    failures: list[Finding] = []
    for path in files:
        rel = path.relative_to(root).as_posix()
        stem = rel.rsplit(".", 1)[0]
        findings = scan_file(rel, path.read_text(),
                             extra_ranks=ranks_by_stem.get(stem))
        for f in findings:
            matched = False
            for e in allowlist:
                if e.matches(f):
                    e.used = True
                    matched = True
                    break
            if not matched:
                failures.append(f)

    status = 0
    for f in failures:
        print(f, file=sys.stderr)
        status = 1
    stale = [e for e in allowlist if not e.used]
    for e in stale:
        print(f"determinism_allowlist.txt:{e.source_line}: stale entry "
              f"({e.rule}|{e.path}|{e.fragment}) matches nothing — remove it",
              file=sys.stderr)
        status = 1
    if status == 0:
        n = len(collect_files(root))
        print(f"determinism lint: OK ({n} files, "
              f"{len(allowlist)} justified suppressions)")
    return status


def run_self_test(root: Path) -> int:
    """Every lint rule must fire on its fixture, and only there."""
    fixture_dir = root / "tests" / "lint_fixtures"
    expected = {
        "fires_banned_random.cpp": "banned-random",
        "fires_banned_clock.cpp": "banned-clock",
        "fires_unordered_iteration.cpp": "unordered-iteration",
        "fires_float_equality.cpp": "float-equality",
        "fires_pointer_sort_key.cpp": "pointer-sort-key",
        "fires_lock_order.cpp": "lock-order",
        "fires_shared_mutable_static.cpp": "shared-mutable-static",
        "fires_thread_id_as_key.cpp": "thread-id-as-key",
    }
    status = 0
    for name, rule in expected.items():
        path = fixture_dir / name
        if not path.exists():
            print(f"self-test: fixture {name} missing", file=sys.stderr)
            status = 1
            continue
        rules = {f.rule for f in scan_file(f"lint_fixtures/{name}",
                                           path.read_text())}
        if rule not in rules:
            print(f"self-test: rule '{rule}' did NOT fire on {name} "
                  f"(fired: {sorted(rules) or 'nothing'})", file=sys.stderr)
            status = 1
    clean = fixture_dir / "clean.cpp"
    if clean.exists():
        findings = scan_file("lint_fixtures/clean.cpp", clean.read_text())
        if findings:
            print("self-test: clean.cpp raised findings:", file=sys.stderr)
            for f in findings:
                print(f"  {f}", file=sys.stderr)
            status = 1
    else:
        print("self-test: clean.cpp fixture missing", file=sys.stderr)
        status = 1
    if status == 0:
        print(f"determinism lint self-test: OK "
              f"({len(expected)} rules fire, clean fixture is clean)")
    return status


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", type=Path, default=Path(__file__).parents[2])
    ap.add_argument("--self-test", action="store_true",
                    help="check each rule fires on tests/lint_fixtures")
    args = ap.parse_args()
    root = args.root.resolve()
    return run_self_test(root) if args.self_test else run_lint(root)


if __name__ == "__main__":
    sys.exit(main())

#include "sim/simulation.hpp"

#include <memory>
#include <utility>

namespace woha::sim {

void EventHandle::cancel() {
  if (token_) *token_ = true;
}

EventHandle Simulation::schedule_at(SimTime when, Callback cb) {
  if (when < now_) {
    throw std::invalid_argument("Simulation::schedule_at: time in the past");
  }
  auto token = std::make_shared<bool>(false);
  queue_.push(Event{when, next_seq_++, std::move(cb), token});
  return EventHandle(std::move(token));
}

EventHandle Simulation::schedule_after(Duration delay, Callback cb) {
  if (delay < 0) throw std::invalid_argument("Simulation::schedule_after: negative delay");
  return schedule_at(now_ + delay, std::move(cb));
}

EventHandle Simulation::schedule_every(SimTime first, Duration period, Callback cb) {
  if (period <= 0) throw std::invalid_argument("Simulation::schedule_every: period <= 0");
  // A shared cancellation token covers every future firing; each firing
  // re-schedules the next one under the same token.
  auto token = std::make_shared<bool>(false);
  // The recursive lambda owns the callback by value.
  auto fire = std::make_shared<std::function<void(SimTime)>>();
  *fire = [this, period, cb = std::move(cb), token, fire](SimTime when) {
    queue_.push(Event{when, next_seq_++,
                      [this, period, cb, token, fire, when]() {
                        cb();
                        if (!*token) (*fire)(when + period);
                      },
                      token});
  };
  if (first < now_) first = now_;
  (*fire)(first);
  return EventHandle(std::move(token));
}

bool Simulation::step(SimTime until) {
  while (!queue_.empty()) {
    const Event& head = queue_.top();
    if (head.time > until) return false;
    // Skip cancelled events without advancing the clock for them.
    if (*head.cancelled) {
      queue_.pop();
      continue;
    }
    Event ev = head;  // copy out: cb may schedule new events
    queue_.pop();
    now_ = ev.time;
    ++fired_;
    ev.cb();
    return true;
  }
  return false;
}

void Simulation::run(SimTime until) {
  stop_requested_ = false;
  while (!stop_requested_ && step(until)) {
  }
  if (until != kTimeInfinity && now_ < until && queue_.empty()) {
    // Queue drained before the horizon; leave now() at the last event time.
  }
}

}  // namespace woha::sim

#include "sim/simulation.hpp"

#include <bit>
#include <utility>

namespace woha::sim {

void EventHandle::cancel() {
  if (token_) *token_ = true;
}

Simulation::Simulation() : ring_(kBuckets), bits_(kWords, 0) {}

EventHandle Simulation::schedule_at(SimTime when, Callback cb) {
  if (when < now_) {
    throw std::invalid_argument("Simulation::schedule_at: time in the past");
  }
  auto token = std::make_shared<bool>(false);
  push(Event{when, next_seq_++, std::move(cb), token, 0});
  return EventHandle(std::move(token));
}

EventHandle Simulation::schedule_after(Duration delay, Callback cb) {
  if (delay < 0) throw std::invalid_argument("Simulation::schedule_after: negative delay");
  return schedule_at(now_ + delay, std::move(cb));
}

EventHandle Simulation::schedule_every(SimTime first, Duration period, Callback cb) {
  if (period <= 0) throw std::invalid_argument("Simulation::schedule_every: period <= 0");
  // A shared cancellation token covers every future firing; step() re-arms
  // the event (moving the callback back in) after each firing.
  auto token = std::make_shared<bool>(false);
  if (first < now_) first = now_;
  push(Event{first, next_seq_++, std::move(cb), token, period});
  return EventHandle(std::move(token));
}

void Simulation::push(Event&& ev) {
  if (size_ == 0) {
    // Empty queue: re-anchor the window at the clock so every schedulable
    // time (>= now) is representable.
    base_ = sweep_ = now_;
  }
  ++size_;
  if (ev.time < base_ + kWindow) {
    ring_push(std::move(ev));
  } else {
    heap_push(std::move(ev));
  }
}

void Simulation::ring_push(Event&& ev) {
  const std::size_t b = bucket_of(ev.time);
  ring_[b].items.push_back(std::move(ev));
  bits_[b >> 6] |= std::uint64_t{1} << (b & 63);
  ++ring_count_;
}

void Simulation::drain_overflow() {
  // Heap pops come out in (time, seq) order, so per-tick append order stays
  // FIFO. Events already in the ring for the same tick cannot exist: the
  // ring is empty whenever the window advances (see step()).
  while (!overflow_.empty() && overflow_.front().time < base_ + kWindow) {
    ring_push(heap_pop());
  }
}

std::size_t Simulation::find_next_bucket() {
  std::size_t b = bucket_of(sweep_);
  std::size_t word = b >> 6;
  // First word: mask off buckets before the cursor.
  std::uint64_t w = bits_[word] & (~std::uint64_t{0} << (b & 63));
  for (std::size_t scanned = 0; scanned <= kWords; ++scanned) {
    if (w != 0) {
      const std::size_t found = (word << 6) + static_cast<std::size_t>(std::countr_zero(w));
      // Translate the circular bucket index back to an absolute tick at or
      // after sweep_ (the ring spans less than one full window).
      const std::size_t cur = bucket_of(sweep_);
      const SimTime ahead = static_cast<SimTime>(
          found >= cur ? found - cur : kBuckets - cur + found);
      sweep_ += ahead;
      return found;
    }
    word = (word + 1) & (kWords - 1);
    w = bits_[word];
  }
  throw std::logic_error("Simulation: ring bitmap inconsistent");
}

void Simulation::heap_push(Event&& ev) {
  overflow_.push_back(std::move(ev));
  std::size_t i = overflow_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    Event& p = overflow_[parent];
    Event& c = overflow_[i];
    if (p.time < c.time || (p.time == c.time && p.seq < c.seq)) break;
    std::swap(p, c);
    i = parent;
  }
}

Simulation::Event Simulation::heap_pop() {
  Event out = std::move(overflow_.front());
  if (overflow_.size() > 1) overflow_.front() = std::move(overflow_.back());
  overflow_.pop_back();
  const std::size_t n = overflow_.size();
  std::size_t i = 0;
  while (true) {
    const std::size_t l = 2 * i + 1;
    const std::size_t r = l + 1;
    std::size_t smallest = i;
    const auto less = [this](std::size_t a, std::size_t b) {
      const Event& x = overflow_[a];
      const Event& y = overflow_[b];
      return x.time < y.time || (x.time == y.time && x.seq < y.seq);
    };
    if (l < n && less(l, smallest)) smallest = l;
    if (r < n && less(r, smallest)) smallest = r;
    if (smallest == i) break;
    std::swap(overflow_[i], overflow_[smallest]);
    i = smallest;
  }
  return out;
}

bool Simulation::step(SimTime until) {
  while (size_ > 0) {
    if (ring_count_ == 0) {
      // Window exhausted: jump it to the next far-future event. The check
      // against `until` comes first so a no-op step never moves the window
      // (callers may still schedule near-past events afterwards).
      const SimTime next = overflow_.front().time;
      if (next > until) return false;
      base_ = sweep_ = next;
      drain_overflow();
    }
    const std::size_t b = find_next_bucket();
    if (sweep_ > until) return false;
    Bucket& bucket = ring_[b];
    Event ev = std::move(bucket.items[bucket.head]);
    if (++bucket.head == bucket.items.size()) {
      bucket.items.clear();
      bucket.head = 0;
      bits_[b >> 6] &= ~(std::uint64_t{1} << (b & 63));
    }
    --ring_count_;
    --size_;
    // Skip cancelled events without advancing the clock for them.
    if (*ev.cancelled) continue;
    now_ = ev.time;
    ++fired_;
    ev.cb();
    if (ev.period > 0 && !*ev.cancelled) {
      // Re-arm the periodic event under the same token. The re-push happens
      // after the callback (matching the legacy recursive-lambda order), so
      // events the callback scheduled for the next tick keep smaller seqs.
      ev.time += ev.period;
      ev.seq = next_seq_++;
      push(std::move(ev));
    }
    return true;
  }
  return false;
}

void Simulation::run(SimTime until) {
  stop_requested_ = false;
  while (!stop_requested_ && step(until)) {
  }
}

}  // namespace woha::sim

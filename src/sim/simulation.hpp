// Discrete-event simulation engine.
//
// The entire Hadoop cluster model runs on this engine: heartbeats, task
// completions, workflow submissions, and submitter-job activations are all
// events. Determinism is a hard requirement (EXPERIMENTS.md numbers must be
// reproducible), so ties in firing time are broken by a monotonically
// increasing sequence number — two events scheduled for the same tick fire in
// scheduling order, never in container order.
//
// The queue is a bucketed calendar: a ring of kBuckets one-millisecond
// buckets covers the window [base, base + kBuckets); each bucket is a plain
// FIFO vector (push order == seq order, so same-tick FIFO costs nothing),
// and a bitmap over buckets lets the scan skip empty ticks a word at a
// time. Events beyond the window wait in a (time, seq)-ordered binary heap
// and are drained into the ring whenever the window advances. This makes
// the dominant near-future traffic — the per-tracker heartbeat storm, which
// is O(trackers) events every period — O(1) per event instead of
// O(log pending), while far-future events (task completions, submissions)
// pay one heap pass. Recurring events (schedule_every) are re-armed in
// place: the callback is moved back into the queue after each firing, so a
// 10k-tracker heartbeat storm allocates nothing per tick.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

#include "common/types.hpp"

namespace woha::sim {

/// Handle that allows cancelling a scheduled event. Cancellation is lazy: the
/// event stays in the queue but is skipped when popped.
class EventHandle {
 public:
  EventHandle() = default;

  /// True if this handle refers to an event (cancelled or not).
  [[nodiscard]] bool valid() const { return token_ != nullptr; }
  /// Prevent the event from firing. Safe to call multiple times and after
  /// the event fired (no-op then). Cancelling a periodic event stops all
  /// future firings.
  void cancel();

 private:
  friend class Simulation;
  explicit EventHandle(std::shared_ptr<bool> token) : token_(std::move(token)) {}
  std::shared_ptr<bool> token_;  // *token_ == true -> cancelled
};

class Simulation {
 public:
  using Callback = std::function<void()>;

  Simulation();
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulated time (ms). 0 before the first event fires.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `cb` at absolute time `when`. `when` must be >= now().
  EventHandle schedule_at(SimTime when, Callback cb);
  /// Schedule `cb` `delay` ms from now.
  EventHandle schedule_after(Duration delay, Callback cb);
  /// Schedule a repeating event every `period` ms, first firing at `first`.
  /// Returns a handle that cancels all future firings.
  EventHandle schedule_every(SimTime first, Duration period, Callback cb);

  /// Number of pending events (cancelled-but-not-yet-popped included).
  [[nodiscard]] std::size_t pending_events() const { return size_; }
  [[nodiscard]] std::uint64_t events_fired() const { return fired_; }

  /// Run until the queue drains or `until` is passed (events with
  /// time > until stay queued; now() is clamped to `until` if reached).
  void run(SimTime until = kTimeInfinity);
  /// Fire exactly one event (if any); returns false when the queue is empty
  /// or the head event is beyond `until`.
  bool step(SimTime until = kTimeInfinity);
  /// Ask run() to return after the current event completes.
  void request_stop() { stop_requested_ = true; }

  /// Calendar-ring width in ms (also the bucket count: 1 ms per bucket).
  /// Exposed so tests can construct events on both sides of the window.
  static constexpr SimTime kWindow = 65536;

 private:
  struct Event {
    SimTime time = 0;
    std::uint64_t seq = 0;
    Callback cb;
    std::shared_ptr<bool> cancelled;
    Duration period = 0;  ///< > 0: re-armed after each firing
  };

  /// One calendar tick's events in FIFO order. `head` indexes the next
  /// event to pop; the vector is recycled (capacity kept) once drained.
  struct Bucket {
    std::vector<Event> items;
    std::size_t head = 0;
  };

  static constexpr std::size_t kBuckets = static_cast<std::size_t>(kWindow);
  static constexpr std::size_t kWords = kBuckets / 64;

  [[nodiscard]] static std::size_t bucket_of(SimTime t) {
    return static_cast<std::size_t>(t) & (kBuckets - 1);
  }
  void push(Event&& ev);
  void ring_push(Event&& ev);
  /// Move every overflow event inside [base_, base_ + kWindow) into the
  /// ring, in (time, seq) order (preserves per-tick FIFO).
  void drain_overflow();
  /// First non-empty bucket at or after sweep_ (circular; caller must
  /// guarantee ring_count_ > 0). Advances sweep_ to the found tick.
  [[nodiscard]] std::size_t find_next_bucket();
  // Binary min-heap over (time, seq); allows moving the top out.
  void heap_push(Event&& ev);
  Event heap_pop();

  std::vector<Bucket> ring_;         // kBuckets entries, tick = time % kBuckets
  std::vector<std::uint64_t> bits_;  // kWords words: bucket non-empty bits
  std::vector<Event> overflow_;      // events at time >= base_ + kWindow
  std::size_t ring_count_ = 0;       // events currently in the ring
  std::size_t size_ = 0;             // total queued events (ring + overflow)
  SimTime base_ = 0;                 // window start (<= every queued time)
  SimTime sweep_ = 0;                // scan cursor, base_ <= sweep_ <= next event

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t fired_ = 0;
  bool stop_requested_ = false;
};

}  // namespace woha::sim

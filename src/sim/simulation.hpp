// Discrete-event simulation engine.
//
// The entire Hadoop cluster model runs on this engine: heartbeats, task
// completions, workflow submissions, and submitter-job activations are all
// events. Determinism is a hard requirement (EXPERIMENTS.md numbers must be
// reproducible), so ties in firing time are broken by a monotonically
// increasing sequence number — two events scheduled for the same tick fire in
// scheduling order, never in heap order.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <stdexcept>
#include <vector>

#include "common/types.hpp"

namespace woha::sim {

/// Handle that allows cancelling a scheduled event. Cancellation is lazy: the
/// event stays in the queue but is skipped when popped.
class EventHandle {
 public:
  EventHandle() = default;

  /// True if this handle refers to an event (cancelled or not).
  [[nodiscard]] bool valid() const { return token_ != nullptr; }
  /// Prevent the event from firing. Safe to call multiple times and after
  /// the event fired (no-op then).
  void cancel();

 private:
  friend class Simulation;
  explicit EventHandle(std::shared_ptr<bool> token) : token_(std::move(token)) {}
  std::shared_ptr<bool> token_;  // *token_ == true -> cancelled
};

class Simulation {
 public:
  using Callback = std::function<void()>;

  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulated time (ms). 0 before the first event fires.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `cb` at absolute time `when`. `when` must be >= now().
  EventHandle schedule_at(SimTime when, Callback cb);
  /// Schedule `cb` `delay` ms from now.
  EventHandle schedule_after(Duration delay, Callback cb);
  /// Schedule a repeating event every `period` ms, first firing at `first`.
  /// Returns a handle that cancels all future firings.
  EventHandle schedule_every(SimTime first, Duration period, Callback cb);

  /// Number of pending (non-cancelled at scheduling time) events.
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t events_fired() const { return fired_; }

  /// Run until the queue drains or `until` is passed (events with
  /// time > until stay queued; now() is clamped to `until` if reached).
  void run(SimTime until = kTimeInfinity);
  /// Fire exactly one event (if any); returns false when the queue is empty
  /// or the head event is beyond `until`.
  bool step(SimTime until = kTimeInfinity);
  /// Ask run() to return after the current event completes.
  void request_stop() { stop_requested_ = true; }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    Callback cb;
    std::shared_ptr<bool> cancelled;
    // Min-heap by (time, seq): strict FIFO among same-tick events.
    bool operator>(const Event& o) const {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t fired_ = 0;
  bool stop_requested_ = false;
};

}  // namespace woha::sim

// Debug-build simulation invariant auditor.
//
// Golden digests catch determinism regressions only after the fact, as an
// opaque hash mismatch. The auditor catches the *mechanism* the moment it
// breaks: it rides the obs event bus (so it can never perturb the run — the
// bus is synchronous, consumes no RNG draws, and publishes after state
// transitions complete) and cross-checks the engine's visible state against
// an independently maintained shadow after each heartbeat batch:
//
//  * event-stream time monotonicity (the discrete-event core must hand
//    events out in nondecreasing sim-time order),
//  * cluster slot conservation — per heartbeat for the heartbeating tracker,
//    and for every tracker plus the intrusive freelists on the periodic
//    full sweep: free + running attempts == configured slots per type, the
//    pooled-tracker sum equals Cluster::total_free, and each freelist is
//    exactly the set of alive trackers with a free slot of its type,
//  * per-workflow progress accounting: queue rho == requirement - lag,
//    >= completed tasks, <= WorkflowRuntime::tasks_scheduled(), and (when
//    no retry path is configured) <= the plan's total task count,
//  * plan monotonicity: every F_i strictly decreases in ttd with
//    non-decreasing cumulative requirements — re-checked after rollbacks,
//  * scheduler queue structure via SchedulerQueue::check_structure():
//    DSL/BST cached keys in sync with trackers, both internal orderings
//    sorted, and ct/priority lists in head-to-tail agreement over the same
//    id set.
//
// Violations throw InvariantViolation with a structured dump (sim time,
// invariant name, workflow, expected/actual) so a CI failure pinpoints the
// broken bookkeeping instead of printing two different digests.
//
// Enabled per-run via EngineConfig::audit (metrics::run_experiment attaches
// one when set). Off means no subscription: publish sites see an inactive
// bus and the run is bit- and wall-clock-identical to an unaudited one.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "obs/event_bus.hpp"

namespace woha::hadoop {
class Engine;
}  // namespace woha::hadoop

namespace woha::core {
class WohaScheduler;
}  // namespace woha::core

namespace woha::audit {

inline constexpr std::uint32_t kNoWorkflow = 0xffffffffu;

/// Thrown on any failed audit check. what() carries the full structured
/// dump; the individual fields stay accessible for tests.
class InvariantViolation : public std::logic_error {
 public:
  InvariantViolation(std::string invariant, SimTime time, std::int64_t expected,
                     std::int64_t actual, std::string detail,
                     std::uint32_t workflow = kNoWorkflow);

  [[nodiscard]] const std::string& invariant() const { return invariant_; }
  [[nodiscard]] SimTime time() const { return time_; }
  [[nodiscard]] std::int64_t expected() const { return expected_; }
  [[nodiscard]] std::int64_t actual() const { return actual_; }
  [[nodiscard]] std::uint32_t workflow() const { return workflow_; }

 private:
  std::string invariant_;
  SimTime time_;
  std::int64_t expected_;
  std::int64_t actual_;
  std::uint32_t workflow_;
};

struct AuditConfig {
  /// Heartbeats between full sweeps (every-tracker slot conservation,
  /// freelist walks, queue structure, workflow progress sampling). Per-event
  /// shadow updates and per-tracker heartbeat checks always run.
  std::uint64_t full_sweep_period = 64;
  /// Queue entries examined per progress-accounting pass (head-first, i.e.
  /// the workflows actually steering decisions).
  std::size_t max_sampled_workflows = 64;
};

class InvariantAuditor {
 public:
  /// Subscribes to engine.events(); attach before Engine::run(). The engine
  /// must outlive the auditor.
  explicit InvariantAuditor(hadoop::Engine& engine, AuditConfig config = {});
  ~InvariantAuditor();
  InvariantAuditor(const InvariantAuditor&) = delete;
  InvariantAuditor& operator=(const InvariantAuditor&) = delete;

  /// Run every full-sweep check against the current engine state. Called
  /// automatically on the sweep cadence; tests also call it after run().
  void full_sweep();

  [[nodiscard]] std::uint64_t events_seen() const { return events_seen_; }
  [[nodiscard]] std::uint64_t heartbeats_seen() const { return heartbeats_seen_; }
  [[nodiscard]] std::uint64_t sweeps_run() const { return sweeps_run_; }

 private:
  struct ShadowAttempt {
    std::size_t tracker = 0;
    std::size_t slot = 0;  ///< SlotType as index
    std::uint32_t workflow = 0;
  };

  void on_event(const obs::Event& event);
  /// Slot conservation for one tracker: free + shadow-running == capacity.
  void check_tracker_slots(std::size_t tracker, SimTime t) const;
  /// Aggregate free-slot totals and freelist shape across every tracker.
  void check_cluster(SimTime t) const;
  /// Queue structure + head-sampled per-workflow progress accounting.
  void check_scheduler(SimTime t) const;
  /// F_i shape for one workflow's plan (no-op for non-WOHA schedulers or
  /// already-dequeued workflows).
  void check_plan(std::uint32_t workflow, SimTime t) const;
  /// Admission conservation (submitted == admitted + rejected, shed <=
  /// admitted) and the pending-budget bound under enforcing policies.
  void check_admission(SimTime t) const;

  [[noreturn]] static void fail(const std::string& invariant, SimTime t,
                                std::int64_t expected, std::int64_t actual,
                                const std::string& detail,
                                std::uint32_t workflow = kNoWorkflow);

  hadoop::Engine& engine_;
  AuditConfig config_;
  obs::EventBus::SubscriptionId subscription_ = 0;
  /// Retries re-bump rho past the plan total; only assert the rho <=
  /// total-tasks ceiling when the config rules every retry path out.
  bool retries_possible_ = false;

  // Shadow state, rebuilt purely from the event stream.
  SimTime last_event_time_ = 0;
  std::map<std::uint64_t, ShadowAttempt> attempts_;        ///< running, by id
  std::vector<std::array<std::uint32_t, 2>> running_;      ///< per tracker/type
  /// Tracker slots still counted in the cluster aggregate: true until a
  /// TrackerLost reconciliation, true again after TrackerRestarted.
  std::vector<bool> pooled_;
  /// Draining out (TrackerDraining / PreemptionWarning): must never receive
  /// a TaskStarted and must stay off the freelists. Cleared on retirement
  /// or on TrackerRestarted (a crash-interrupted drain is forgotten).
  std::vector<bool> draining_;
  /// Permanently retired (TrackerDecommissioned): nothing may ever run
  /// there again.
  std::vector<bool> retired_;

  // Admission conservation, rebuilt from workflow lifecycle events and
  // cross-checked against Engine::admission_stats() on every full sweep.
  std::uint64_t admitted_seen_ = 0;
  std::uint64_t rejected_seen_ = 0;
  std::uint64_t shed_seen_ = 0;

  std::uint64_t events_seen_ = 0;
  std::uint64_t heartbeats_seen_ = 0;
  std::uint64_t sweeps_run_ = 0;
};

}  // namespace woha::audit

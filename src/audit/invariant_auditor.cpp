#include "audit/invariant_auditor.hpp"

#include <algorithm>
#include <utility>

#include "core/plan.hpp"
#include "core/woha_scheduler.hpp"
#include "hadoop/cluster.hpp"
#include "hadoop/engine.hpp"
#include "hadoop/job_tracker.hpp"
#include "obs/event.hpp"

namespace woha::audit {

namespace {

std::string format_violation(const std::string& invariant, SimTime time,
                             std::int64_t expected, std::int64_t actual,
                             const std::string& detail, std::uint32_t workflow) {
  std::string msg = "InvariantViolation: [" + invariant + "] t=" +
                    std::to_string(time) + "ms";
  if (workflow != kNoWorkflow) msg += " workflow=" + std::to_string(workflow);
  msg += " expected=" + std::to_string(expected) +
         " actual=" + std::to_string(actual) + " — " + detail;
  return msg;
}

}  // namespace

InvariantViolation::InvariantViolation(std::string invariant, SimTime time,
                                       std::int64_t expected, std::int64_t actual,
                                       std::string detail, std::uint32_t workflow)
    : std::logic_error(
          format_violation(invariant, time, expected, actual, detail, workflow)),
      invariant_(std::move(invariant)),
      time_(time),
      expected_(expected),
      actual_(actual),
      workflow_(workflow) {}

void InvariantAuditor::fail(const std::string& invariant, SimTime t,
                            std::int64_t expected, std::int64_t actual,
                            const std::string& detail, std::uint32_t workflow) {
  throw InvariantViolation(invariant, t, expected, actual, detail, workflow);
}

InvariantAuditor::InvariantAuditor(hadoop::Engine& engine, AuditConfig config)
    : engine_(engine), config_(config) {
  const auto& ec = engine_.config();
  retries_possible_ =
      ec.task_failure_prob > 0.0 || ec.faults.churn_enabled();
  const std::size_t n = engine_.cluster().tracker_count();
  running_.assign(n, {0, 0});
  pooled_.assign(n, true);
  draining_.assign(n, false);
  retired_.assign(n, false);
  subscription_ =
      engine_.events().subscribe([this](const obs::Event& e) { on_event(e); });
}

InvariantAuditor::~InvariantAuditor() {
  engine_.events().unsubscribe(subscription_);
}

void InvariantAuditor::on_event(const obs::Event& event) {
  ++events_seen_;
  if (event.time < last_event_time_) {
    fail("event-time-monotonic", event.time, last_event_time_, event.time,
         "event published before the previous event's sim time — the "
         "discrete-event core must hand events out in nondecreasing order");
  }
  last_event_time_ = event.time;
  const SimTime t = event.time;

  if (const auto* started = std::get_if<obs::TaskStarted>(&event.payload)) {
    if (started->tracker >= running_.size()) {
      fail("attempt-tracker-range", t,
           static_cast<std::int64_t>(running_.size()) - 1,
           static_cast<std::int64_t>(started->tracker),
           "TaskStarted on a tracker index outside the cluster",
           started->workflow);
    }
    if (draining_[started->tracker] || retired_[started->tracker]) {
      fail("drain-no-assign", t, 0, 1,
           "TaskStarted on tracker " + std::to_string(started->tracker) +
               (retired_[started->tracker] ? " after it retired"
                                           : " while it is draining out"),
           started->workflow);
    }
    const auto [it, inserted] = attempts_.emplace(
        started->attempt,
        ShadowAttempt{started->tracker,
                      static_cast<std::size_t>(started->slot),
                      started->workflow});
    if (!inserted) {
      fail("attempt-id-unique", t, 0, 1,
           "TaskStarted reused attempt id " + std::to_string(started->attempt) +
               " while the attempt is still running",
           started->workflow);
    }
    ++running_[started->tracker][static_cast<std::size_t>(started->slot)];
    check_tracker_slots(started->tracker, t);
  } else if (const auto* ended = std::get_if<obs::TaskEnded>(&event.payload)) {
    const auto it = attempts_.find(ended->attempt);
    if (it == attempts_.end()) {
      fail("attempt-lifecycle", t, 1, 0,
           "TaskEnded for attempt " + std::to_string(ended->attempt) +
               " without a matching TaskStarted",
           ended->workflow);
    }
    --running_[it->second.tracker][it->second.slot];
    attempts_.erase(it);
    check_tracker_slots(ended->tracker, t);
  } else if (const auto* hb = std::get_if<obs::HeartbeatServed>(&event.payload)) {
    ++heartbeats_seen_;
    const auto& tracker = engine_.cluster().tracker(hb->tracker);
    if (hb->free_map != tracker.free_slots(SlotType::kMap) ||
        hb->free_reduce != tracker.free_slots(SlotType::kReduce)) {
      fail("heartbeat-free-slots", t,
           static_cast<std::int64_t>(tracker.free_slots(SlotType::kMap)),
           static_cast<std::int64_t>(hb->free_map),
           "HeartbeatServed free-slot report disagrees with cluster state "
           "for tracker " + std::to_string(hb->tracker));
    }
    check_tracker_slots(hb->tracker, t);
    if (config_.full_sweep_period > 0 &&
        heartbeats_seen_ % config_.full_sweep_period == 0) {
      full_sweep();
    }
  } else if (const auto* lost = std::get_if<obs::TrackerLost>(&event.payload)) {
    // detect_tracker_loss kills every attempt (publishing their TaskEnded)
    // before reconciling, so by now the shadow must agree the node is empty.
    const auto& counts = running_.at(lost->tracker);
    if (counts[0] != 0 || counts[1] != 0) {
      fail("tracker-lost-empty", t, 0, counts[0] + counts[1],
           "TrackerLost published while attempts still run on tracker " +
               std::to_string(lost->tracker));
    }
    if (engine_.cluster().tracker(lost->tracker).alive()) {
      fail("tracker-lost-dead", t, 0, 1,
           "TrackerLost for a tracker still marked alive");
    }
    pooled_[lost->tracker] = false;
  } else if (const auto* restarted =
                 std::get_if<obs::TrackerRestarted>(&event.payload)) {
    const auto& tracker = engine_.cluster().tracker(restarted->tracker);
    if (!tracker.alive()) {
      fail("tracker-restart-alive", t, 1, 0,
           "TrackerRestarted for a tracker still marked dead");
    }
    for (const SlotType s : {SlotType::kMap, SlotType::kReduce}) {
      if (tracker.free_slots(s) != tracker.capacity(s)) {
        fail("tracker-restart-free", t, tracker.capacity(s),
             tracker.free_slots(s),
             "restarted tracker must re-register with every slot free");
      }
    }
    pooled_[restarted->tracker] = true;
    // A re-registered node is a fresh worker: any drain it was serving when
    // it crashed is forgotten (mirrors the engine/cluster semantics).
    draining_[restarted->tracker] = false;
  } else if (const auto* submitted =
                 std::get_if<obs::WorkflowSubmitted>(&event.payload)) {
    (void)submitted;
    ++admitted_seen_;
  } else if (const auto* rejected =
                 std::get_if<obs::WorkflowRejected>(&event.payload)) {
    (void)rejected;
    ++rejected_seen_;
  } else if (const auto* shed = std::get_if<obs::WorkflowShed>(&event.payload)) {
    (void)shed;
    ++shed_seen_;
  } else if (const auto* draining =
                 std::get_if<obs::TrackerDraining>(&event.payload)) {
    if (retired_[draining->tracker]) {
      fail("drain-after-retire", t, 0, 1,
           "TrackerDraining for tracker " + std::to_string(draining->tracker) +
               " that already retired");
    }
    draining_[draining->tracker] = true;
  } else if (const auto* warned =
                 std::get_if<obs::PreemptionWarning>(&event.payload)) {
    if (retired_[warned->tracker]) {
      fail("drain-after-retire", t, 0, 1,
           "PreemptionWarning for tracker " + std::to_string(warned->tracker) +
               " that already retired");
    }
    draining_[warned->tracker] = true;
  } else if (const auto* decom =
                 std::get_if<obs::TrackerDecommissioned>(&event.payload)) {
    // Retirement is published after the stragglers' TaskEnded events, so
    // the shadow must agree the node is empty, and the cluster must have
    // marked it dead already.
    const auto& counts = running_.at(decom->tracker);
    if (counts[0] != 0 || counts[1] != 0) {
      fail("drain-retire-empty", t, 0, counts[0] + counts[1],
           "TrackerDecommissioned published while attempts still run on "
           "tracker " + std::to_string(decom->tracker));
    }
    if (engine_.cluster().tracker(decom->tracker).alive()) {
      fail("drain-retire-dead", t, 0, 1,
           "TrackerDecommissioned for a tracker still marked alive");
    }
    pooled_[decom->tracker] = false;
    draining_[decom->tracker] = false;
    retired_[decom->tracker] = true;
  } else if (const auto* joined =
                 std::get_if<obs::TrackerJoined>(&event.payload)) {
    // Joins are append-only: the new index must extend the shadow by
    // exactly one tracker.
    if (joined->tracker != running_.size()) {
      fail("join-index-dense", t,
           static_cast<std::int64_t>(running_.size()),
           static_cast<std::int64_t>(joined->tracker),
           "TrackerJoined index does not extend the tracker range densely");
    }
    running_.push_back({0, 0});
    pooled_.push_back(true);
    draining_.push_back(false);
    retired_.push_back(false);
    check_tracker_slots(joined->tracker, t);
  } else if (const auto* plan = std::get_if<obs::PlanGenerated>(&event.payload)) {
    check_plan(plan->workflow, t);
  } else if (const auto* reorder =
                 std::get_if<obs::QueueReordered>(&event.payload)) {
    // Rollback path: rho regressed. The plan itself is immutable, but the
    // monotonicity re-check here pins the "including post-rollback" clause.
    check_plan(reorder->workflow, t);
  }
}

void InvariantAuditor::check_tracker_slots(std::size_t tracker, SimTime t) const {
  const auto& state = engine_.cluster().tracker(tracker);
  const auto& counts = running_.at(tracker);
  for (const SlotType s : {SlotType::kMap, SlotType::kReduce}) {
    const auto idx = static_cast<std::size_t>(s);
    const std::int64_t expected = state.capacity(s);
    const std::int64_t actual =
        static_cast<std::int64_t>(state.free_slots(s)) + counts[idx];
    if (expected != actual) {
      fail("slot-conservation", t, expected, actual,
           "tracker " + std::to_string(tracker) + " " +
               (s == SlotType::kMap ? "map" : "reduce") +
               " free slots + running attempts != capacity");
    }
  }
}

void InvariantAuditor::check_cluster(SimTime t) const {
  const auto& cluster = engine_.cluster();
  const std::size_t n = cluster.tracker_count();
  std::uint64_t pooled_free[2] = {0, 0};
  std::uint32_t free_anywhere[2] = {0, 0};
  for (std::size_t i = 0; i < n; ++i) {
    check_tracker_slots(i, t);
    const auto& tracker = cluster.tracker(i);
    for (const SlotType s : {SlotType::kMap, SlotType::kReduce}) {
      const auto idx = static_cast<std::size_t>(s);
      if (pooled_[i]) pooled_free[idx] += tracker.free_slots(s);
      // Draining trackers keep their free slots pooled but stay off the
      // freelists (they must not attract new work) — offerable(), not
      // alive(), is the membership ground truth.
      if (tracker.offerable() && tracker.free_slots(s) > 0) ++free_anywhere[idx];
    }
  }
  for (const SlotType s : {SlotType::kMap, SlotType::kReduce}) {
    const auto idx = static_cast<std::size_t>(s);
    if (pooled_free[idx] != cluster.total_free(s)) {
      fail("cluster-free-total", t, static_cast<std::int64_t>(pooled_free[idx]),
           cluster.total_free(s),
           "sum of pooled trackers' free slots disagrees with the aggregate "
           "counter");
    }
    // Freelist walk: bounded (cycle-safe), every node alive with a free
    // slot, node count == the maintained counter == the ground-truth scan.
    std::vector<bool> visited(n, false);
    std::uint32_t walked = 0;
    for (std::size_t i = cluster.first_free(s); i != hadoop::Cluster::kNoTracker;
         i = cluster.next_free(s, i)) {
      if (i >= n || visited[i]) {
        fail("freelist-shape", t, 0, 1,
             "freelist walk revisited or left the tracker range at index " +
                 std::to_string(i));
      }
      visited[i] = true;
      ++walked;
      const auto& tracker = cluster.tracker(i);
      if (!tracker.offerable() || tracker.free_slots(s) == 0) {
        fail("freelist-membership", t, 1, 0,
             "freelist contains tracker " + std::to_string(i) +
                 " that is dead, draining, or has no free slot of its type");
      }
    }
    if (walked != cluster.free_tracker_count(s) ||
        walked != free_anywhere[idx]) {
      fail("freelist-count", t, free_anywhere[idx],
           static_cast<std::int64_t>(walked),
           "freelist length disagrees with the alive-trackers-with-free-"
           "slots ground truth (maintained counter: " +
               std::to_string(cluster.free_tracker_count(s)) + ")");
    }
  }
}

void InvariantAuditor::check_scheduler(SimTime t) const {
  const auto* woha =
      dynamic_cast<const core::WohaScheduler*>(&engine_.scheduler());
  if (woha == nullptr) return;

  try {
    woha->queue().check_structure();
  } catch (const InvariantViolation&) {
    throw;
  } catch (const std::logic_error& e) {
    fail("queue-structure", t, 0, 1, e.what());
  }

  std::vector<core::SchedulerQueue::QueueEntry> entries;
  woha->queue().top(config_.max_sampled_workflows, entries);
  const auto& job_tracker = engine_.job_tracker();
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto& entry = entries[i];
    if (i > 0) {
      // top() promises descending priority: (-lag, id) ascending.
      const auto prev = std::make_pair(-entries[i - 1].lag, entries[i - 1].id);
      const auto cur = std::make_pair(-entry.lag, entry.id);
      if (cur < prev) {
        fail("queue-top-order", t, entries[i - 1].lag, entry.lag,
             "top() entries not in descending-priority order", entry.id);
      }
    }
    const std::int64_t derived_lag =
        static_cast<std::int64_t>(entry.requirement) -
        static_cast<std::int64_t>(entry.rho);
    if (entry.lag != derived_lag) {
      fail("lag-consistency", t, derived_lag, entry.lag,
           "queue entry lag != requirement - rho", entry.id);
    }
    const auto& wf_rt = job_tracker.workflow(WorkflowId(entry.id));
    if (entry.rho > wf_rt.tasks_scheduled()) {
      // Queue rho only regresses (count_lost); the runtime counter never
      // does — so the queue can never claim more progress than the engine.
      fail("rho-ceiling", t,
           static_cast<std::int64_t>(wf_rt.tasks_scheduled()),
           static_cast<std::int64_t>(entry.rho),
           "queue rho exceeds WorkflowRuntime::tasks_scheduled()", entry.id);
    }
    std::uint64_t finished = 0;
    for (std::uint32_t j = 0; j < wf_rt.job_count(); ++j) {
      finished += wf_rt.job(j).finished(SlotType::kMap);
      finished += wf_rt.job(j).finished(SlotType::kReduce);
    }
    if (entry.rho < finished) {
      fail("rho-floor", t, static_cast<std::int64_t>(finished),
           static_cast<std::int64_t>(entry.rho),
           "queue rho below the workflow's completed-task count — a finished "
           "task was never counted as scheduled",
           entry.id);
    }
    if (const auto* plan = woha->plan_of(WorkflowId(entry.id))) {
      if (entry.requirement > plan->total_tasks()) {
        fail("requirement-ceiling", t,
             static_cast<std::int64_t>(plan->total_tasks()),
             static_cast<std::int64_t>(entry.requirement),
             "progress requirement exceeds the plan's total task count",
             entry.id);
      }
      if (!retries_possible_ && entry.rho > plan->total_tasks()) {
        fail("rho-plan-ceiling", t,
             static_cast<std::int64_t>(plan->total_tasks()),
             static_cast<std::int64_t>(entry.rho),
             "rho exceeds the plan's total tasks in a run with no retry path",
             entry.id);
      }
    }
  }
}

void InvariantAuditor::check_plan(std::uint32_t workflow, SimTime t) const {
  const auto* woha =
      dynamic_cast<const core::WohaScheduler*>(&engine_.scheduler());
  if (woha == nullptr) return;
  const auto* plan = woha->plan_of(WorkflowId(workflow));
  if (plan == nullptr) return;  // already dequeued (completed/failed)
  if (plan->resource_cap < 1) {
    fail("plan-cap", t, 1, plan->resource_cap,
         "scheduling plan generated with a zero resource cap", workflow);
  }
  for (std::size_t i = 1; i < plan->num_steps(); ++i) {
    if (plan->step_ttd(i) >= plan->step_ttd(i - 1)) {
      fail("plan-ttd-decreasing", t, plan->step_ttd(i - 1) - 1,
           plan->step_ttd(i),
           "F_i steps must strictly decrease in time-to-deadline", workflow);
    }
    if (plan->step_req(i) < plan->step_req(i - 1)) {
      fail("plan-monotone", t,
           static_cast<std::int64_t>(plan->step_req(i - 1)),
           static_cast<std::int64_t>(plan->step_req(i)),
           "F_i cumulative requirements must be non-decreasing", workflow);
    }
  }
}

void InvariantAuditor::full_sweep() {
  ++sweeps_run_;
  const SimTime t = engine_.now();
  check_cluster(t);
  check_scheduler(t);
  check_admission(t);
}

void InvariantAuditor::check_admission(SimTime t) const {
  // Conservation against engine ground truth: every submission was either
  // admitted (WorkflowSubmitted) or rejected (WorkflowRejected), and shed
  // workflows were admitted first.
  const auto stats = engine_.admission_stats();
  if (stats.submitted != admitted_seen_ + rejected_seen_) {
    fail("admission-conservation", t,
         static_cast<std::int64_t>(stats.submitted),
         static_cast<std::int64_t>(admitted_seen_ + rejected_seen_),
         "submitted != admitted + rejected (event stream vs engine counters)");
  }
  if (stats.rejected != rejected_seen_) {
    fail("admission-rejected-count", t,
         static_cast<std::int64_t>(stats.rejected),
         static_cast<std::int64_t>(rejected_seen_),
         "WorkflowRejected events disagree with the engine's reject counter");
  }
  if (stats.shed != shed_seen_) {
    fail("admission-shed-count", t, static_cast<std::int64_t>(stats.shed),
         static_cast<std::int64_t>(shed_seen_),
         "WorkflowShed events disagree with the engine's shed counter");
  }
  if (stats.shed > stats.admitted) {
    fail("admission-shed-bound", t, static_cast<std::int64_t>(stats.admitted),
         static_cast<std::int64_t>(stats.shed),
         "more workflows shed than were ever admitted");
  }
  // Pending-budget bound: with a budget-enforcing policy, the admitted and
  // unfinished set (and its recorded peak) can never exceed the budget —
  // sweeps run on heartbeat boundaries, after any submission-time shedding
  // settled.
  const auto& ac = engine_.config().admission;
  if (ac.enabled() && ac.max_pending_workflows > 0) {
    const std::int64_t budget = ac.max_pending_workflows;
    const std::int64_t pending = engine_.job_tracker().active_workflows();
    if (pending > budget) {
      fail("pending-budget-bound", t, budget, pending,
           "admitted-unfinished workflows exceed max_pending_workflows under "
           "a budget-enforcing admission policy");
    }
    if (static_cast<std::int64_t>(stats.pending_peak) > budget) {
      fail("pending-peak-bound", t, budget,
           static_cast<std::int64_t>(stats.pending_peak),
           "recorded pending peak exceeds the enforced budget");
    }
  }
}

}  // namespace woha::audit

// A small fixed-size thread pool for the parallel experiment runner.
//
// Deliberately work-stealing-free: tasks are taken from one FIFO queue under
// a mutex. Experiment runs are seconds long, so queue contention is
// irrelevant — what matters is that the pool imposes *no* ordering or
// affinity semantics a grid could accidentally depend on. Determinism of a
// parallel grid comes from per-run isolation (each task owns all of its
// mutable state) and from collecting results by submission index, never from
// scheduling order.
//
// The pool also keeps occupancy accounting (busy seconds, tasks run) so
// run_grid can report how well a sweep filled the workers.
#pragma once

#include <cstdint>
#include <functional>

#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

namespace woha {

class ThreadPool {
 public:
  /// Spawns exactly `threads` workers (use resolve() to map a user-facing
  /// "--jobs N" value, where 0 means hardware concurrency, to a count).
  explicit ThreadPool(unsigned threads);

  /// Drains the queue (waits for every submitted task), then joins.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Tasks must not throw — wrap run bodies that can fail
  /// and capture the exception (run_grid stores std::exception_ptr per
  /// point). Submitting after destruction has begun is a logic error.
  void submit(std::function<void()> task);

  /// Block until the queue is empty and every worker is idle. Tasks
  /// submitted after wait_idle returns start a new quiescence window.
  void wait_idle();

  [[nodiscard]] unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Total wall-clock seconds spent inside tasks, summed over workers.
  /// Read after wait_idle() for a consistent value.
  [[nodiscard]] double busy_seconds() const;
  [[nodiscard]] std::uint64_t tasks_run() const;

  /// Map a user-facing jobs value to a worker count: 0 = hardware
  /// concurrency (at least 1); anything else is taken as-is.
  [[nodiscard]] static unsigned resolve(unsigned requested);

 private:
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  unsigned active_ = 0;
  bool stopping_ = false;
  double busy_seconds_ = 0.0;
  std::uint64_t tasks_run_ = 0;
};

}  // namespace woha

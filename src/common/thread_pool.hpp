// A small fixed-size thread pool for the parallel experiment runner.
//
// Deliberately work-stealing-free: tasks are taken from one FIFO queue under
// a mutex. Experiment runs are seconds long, so queue contention is
// irrelevant — what matters is that the pool imposes *no* ordering or
// affinity semantics a grid could accidentally depend on. Determinism of a
// parallel grid comes from per-run isolation (each task owns all of its
// mutable state) and from collecting results by submission index, never from
// scheduling order.
//
// The pool also keeps occupancy accounting (busy seconds, tasks run) so
// run_grid can report how well a sweep filled the workers. Accounting is
// exception-safe: a throwing task is counted (tasks_failed) and its worker
// keeps serving the queue — occupancy can never wedge on an escape path.
//
// Analysis support (src/analysis/): the pool annotates its task boundaries
// as happens-before edges (submit -> task start, task end -> wait_idle /
// destructor return), which is the ordering contract tasks may rely on and
// the only one. A SchedulePerturb config additionally makes dequeue order a
// seeded pseudo-random draw (PCT-style random priorities) with injected
// yields around task pickup, so tests can sweep interleavings and replay
// any failing schedule from its seed. Perturbation changes *schedules
// only*: a deterministic grid must produce bit-identical results under
// every seed (tests/analysis/interleaving_sweep_test.cpp pins that).
#pragma once

#include <cstdint>
#include <functional>

#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "common/rng.hpp"

namespace woha {

/// Seeded schedule exploration: when enabled, workers dequeue a pseudo-random
/// queue entry instead of the FIFO front and yield around task boundaries.
/// The same seed replays the same dequeue-priority sequence.
struct SchedulePerturb {
  bool enabled = false;
  std::uint64_t seed = 0;
};

class ThreadPool {
 public:
  /// Spawns exactly `threads` workers (use resolve() to map a user-facing
  /// "--jobs N" value, where 0 means hardware concurrency, to a count).
  explicit ThreadPool(unsigned threads, SchedulePerturb perturb = {});

  /// Drains the queue (waits for every submitted task), then joins.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. A task that throws is swallowed and counted in
  /// tasks_failed() — callers needing the exception must capture it inside
  /// the task (run_grid stores std::exception_ptr per point). Submitting
  /// after destruction has begun is a logic error.
  void submit(std::function<void()> task);

  /// Block until the queue is empty and every worker is idle. Tasks
  /// submitted after wait_idle returns start a new quiescence window.
  void wait_idle();

  [[nodiscard]] unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Total wall-clock seconds spent inside tasks, summed over workers.
  /// Read after wait_idle() for a consistent value.
  [[nodiscard]] double busy_seconds() const;
  [[nodiscard]] std::uint64_t tasks_run() const;
  /// Tasks whose body threw (they still count in tasks_run()).
  [[nodiscard]] std::uint64_t tasks_failed() const;

  /// Map a user-facing jobs value to a worker count: 0 = hardware
  /// concurrency (at least 1); anything else is taken as-is.
  [[nodiscard]] static unsigned resolve(unsigned requested);

 private:
  /// RAII occupancy accounting: constructed after a task is dequeued
  /// (active_ already incremented under the lock), the destructor performs
  /// the decrement and the busy-time/tasks-run bookkeeping even when the
  /// task body throws — an escaping exception can never wedge wait_idle.
  class OccupancyGuard;

  struct QueuedTask {
    std::function<void()> body;
    std::uint64_t hb_sync = 0;  ///< submit -> start happens-before edge id
  };

  void worker_loop();
  /// Index of the next task to pop; front unless perturbation is enabled.
  [[nodiscard]] std::size_t pick_index();

  mutable std::mutex mutex_;  // lint: lock-rank(mutex_)=10
  std::condition_variable task_ready_;
  std::condition_variable idle_;
  std::deque<QueuedTask> queue_;
  std::vector<std::thread> workers_;
  unsigned active_ = 0;
  bool stopping_ = false;
  double busy_seconds_ = 0.0;
  std::uint64_t tasks_run_ = 0;
  std::uint64_t tasks_failed_ = 0;
  SchedulePerturb perturb_;
  Rng perturb_rng_;             ///< guarded by mutex_; draws only when enabled
  std::uint64_t done_sync_ = 0; ///< task end -> wait_idle/join edge id
};

}  // namespace woha

// Fixed-width text table renderer. Every bench binary prints its figure's
// rows through this so EXPERIMENTS.md tables can be pasted directly from
// bench output.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace woha {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// All rows must have exactly as many cells as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2);
  static std::string num(std::int64_t v);
  static std::string percent(double fraction, int precision = 1);

  /// Render with a separator line under the header.
  [[nodiscard]] std::string to_string() const;
  /// Render as CSV (no padding), for machine consumption.
  [[nodiscard]] std::string to_csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace woha

// Seeded pseudo-random number generation for deterministic experiments.
//
// Every stochastic component in the repository (trace synthesis, task-duration
// jitter, deadline slack) draws from an `Rng` that is explicitly seeded by the
// experiment harness, so a bench rerun reproduces the paper figure row for
// row. The engine is xoshiro256**, which is small, fast, and has no libstdc++
// implementation-defined distribution behaviour once we implement the
// distributions ourselves (std::normal_distribution etc. are not portable
// across standard libraries, which would make EXPERIMENTS.md numbers
// machine-dependent).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace woha {

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Raw 64 random bits (UniformRandomBitGenerator interface).
  std::uint64_t next();
  std::uint64_t operator()() { return next(); }
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Standard normal via Box-Muller (deterministic across platforms).
  double normal();
  /// Normal with the given mean / standard deviation.
  double normal(double mean, double stddev);
  /// Log-normal: exp(N(mu, sigma)).
  double log_normal(double mu, double sigma);
  /// Exponential with the given rate lambda (mean 1/lambda).
  double exponential(double lambda);
  /// Bernoulli trial.
  bool chance(double p);
  /// Bounded Pareto on [lo, hi] with shape alpha; heavy-tail generator used
  /// for the long reducer durations in the Yahoo-like trace.
  double bounded_pareto(double lo, double hi, double alpha);
  /// Pick an index in [0, weights.size()) proportionally to weights.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Derive an independent child stream; used to give each workflow its own
  /// stream so that adding a workflow does not perturb the draws of others.
  Rng split();

  /// The full generator state (xoshiro256** words plus the Box-Muller
  /// spare). Two Rngs with equal state produce identical future draws —
  /// the determinism tests compare final states across observability
  /// configurations to prove the bus never consumed a draw.
  [[nodiscard]] std::array<std::uint64_t, 5> state() const {
    return {s_[0], s_[1], s_[2], s_[3],
            have_spare_normal_ ? static_cast<std::uint64_t>(1) : 0};
  }

 private:
  std::uint64_t s_[4];
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace woha

#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace woha {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("TextTable: empty header");
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("TextTable: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string TextTable::num(std::int64_t v) { return std::to_string(v); }

std::string TextTable::percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) line += "  ";
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
    }
    // Drop trailing padding.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };
  std::string out = render_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c ? 2 : 0);
  out.append(total, '-');
  out += "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string TextTable::to_csv() const {
  auto render = [](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) line += ",";
      line += row[c];
    }
    return line + "\n";
  };
  std::string out = render(header_);
  for (const auto& row : rows_) out += render(row);
  return out;
}

}  // namespace woha

#include "common/rng.hpp"

#include <cmath>
#include <stdexcept>

namespace woha {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Seed the four xoshiro words from splitmix64, per the reference
  // recommendation; guarantees a non-zero state for any seed.
  std::uint64_t sm = seed;
  for (auto& w : s_) w = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("uniform_int: lo > hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = (~0ull / span) * span;
  std::uint64_t v = next();
  while (v >= limit) v = next();
  return lo + static_cast<std::int64_t>(v % span);
}

double Rng::normal() {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return spare_normal_;
  }
  // Box-Muller. uniform() can return 0; nudge to avoid log(0).
  double u1 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  spare_normal_ = r * std::sin(theta);
  have_spare_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::log_normal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

double Rng::exponential(double lambda) {
  if (lambda <= 0.0) throw std::invalid_argument("exponential: lambda <= 0");
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u) / lambda;
}

bool Rng::chance(double p) { return uniform() < p; }

double Rng::bounded_pareto(double lo, double hi, double alpha) {
  if (!(lo > 0.0) || !(hi > lo) || !(alpha > 0.0)) {
    throw std::invalid_argument("bounded_pareto: need 0 < lo < hi, alpha > 0");
  }
  const double u = uniform();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  // Inverse-CDF of the bounded Pareto distribution.
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  if (weights.empty()) throw std::invalid_argument("weighted_index: empty weights");
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) throw std::invalid_argument("weighted_index: non-positive total");
  double x = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;  // floating-point slack: last bucket
}

Rng Rng::split() { return Rng(next() ^ 0xa0761d6478bd642full); }

}  // namespace woha

// Descriptive statistics used by the trace generator (to verify Fig. 5/6
// marginals) and by the benchmark reporters (CDF rows, percentiles,
// log-bucketed histograms like the paper's Fig. 3).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace woha {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double variance() const;  ///< Sample variance (n-1 denominator).
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const { return mean() * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact empirical distribution: stores all samples, answers quantile and
/// CDF queries. Fine at the scale of our experiments (<= millions of points).
class Distribution {
 public:
  void add(double x);
  void reserve(std::size_t n) { samples_.reserve(n); }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  /// q in [0, 1]; linear interpolation between order statistics.
  [[nodiscard]] double quantile(double q) const;
  /// Fraction of samples <= x.
  [[nodiscard]] double cdf(double x) const;
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// CDF sampled at the given x positions; one row per position, e.g. to
  /// print the Fig. 5/6 curves.
  [[nodiscard]] std::vector<std::pair<double, double>> cdf_points(
      const std::vector<double>& xs) const;

 private:
  void ensure_sorted() const;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Histogram with power-of-ten buckets: [0,10^lo), [10^lo,10^lo+1), ...
/// Matches the paper's Fig. 3 presentation ("<10^1", "<10^2", ... ms).
class LogHistogram {
 public:
  /// Buckets cover 10^lo_exp .. 10^hi_exp; values outside are clamped into
  /// the first/last bucket.
  LogHistogram(int lo_exp, int hi_exp);

  void add(double x);
  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t count(std::size_t bucket) const { return counts_[bucket]; }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  /// Label like "<10^3" for the bucket's upper bound.
  [[nodiscard]] std::string label(std::size_t bucket) const;
  /// Fraction of samples at or above the bucket lower bound 10^e.
  [[nodiscard]] double fraction_at_least(int exp) const;

 private:
  int lo_exp_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace woha

// Core vocabulary types shared by every WOHA subsystem.
//
// Time is modelled as integral milliseconds (`SimTime`). All identifiers are
// strong types so that a WorkflowId cannot be silently passed where a JobId is
// expected; mixing them up was a real hazard while porting the paper's
// pseudo-code, which indexes everything with bare integers.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>

namespace woha {

/// Simulated time in milliseconds since the start of the simulation.
using SimTime = std::int64_t;

/// Duration in milliseconds.
using Duration = std::int64_t;

/// Sentinel for "no deadline" / "never".
inline constexpr SimTime kTimeInfinity = std::numeric_limits<SimTime>::max();

/// Convenience constructors so workload definitions read like the paper
/// ("relative deadlines are set to 80 minutes, ...").
constexpr Duration ms(std::int64_t v) { return v; }
constexpr Duration seconds(std::int64_t v) { return v * 1000; }
constexpr Duration minutes(std::int64_t v) { return v * 60 * 1000; }
constexpr Duration hours(std::int64_t v) { return v * 60 * 60 * 1000; }

/// CRTP-free strong integer id. `Tag` makes each instantiation a distinct
/// type; the underlying value is only reachable through `value()`.
template <class Tag>
class StrongId {
 public:
  constexpr StrongId() = default;
  constexpr explicit StrongId(std::uint32_t v) : value_(v) {}

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }

  friend constexpr auto operator<=>(StrongId, StrongId) = default;

 private:
  static constexpr std::uint32_t kInvalid = 0xffffffffu;
  std::uint32_t value_ = kInvalid;
};

struct WorkflowTag {};
struct JobTag {};
struct TaskTag {};
struct TrackerTag {};

/// Identifies one workflow W_i submitted to the cluster.
using WorkflowId = StrongId<WorkflowTag>;
/// Identifies one wjob J_i^j *within* its workflow (dense 0..n_i-1 index).
using JobId = StrongId<JobTag>;
/// Identifies one task attempt.
using TaskId = StrongId<TaskTag>;
/// Identifies one TaskTracker (slave node).
using TrackerId = StrongId<TrackerTag>;

/// Map-Reduce slot kind. Hadoop-1 statically partitions each TaskTracker
/// into map slots and reduce slots; a map task can only occupy a map slot.
enum class SlotType : std::uint8_t { kMap, kReduce };

[[nodiscard]] inline const char* to_string(SlotType t) {
  return t == SlotType::kMap ? "map" : "reduce";
}

}  // namespace woha

template <class Tag>
struct std::hash<woha::StrongId<Tag>> {
  std::size_t operator()(const woha::StrongId<Tag>& id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};

// Small string utilities (no locale surprises, ASCII-only semantics).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace woha {

/// Remove leading/trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view s);

/// Split on a single character; empty fields are preserved.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);

[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);

/// Parse a decimal integer; throws std::invalid_argument on malformed input.
[[nodiscard]] std::int64_t parse_int(std::string_view s);

/// Parse a floating-point number; throws std::invalid_argument on failure.
[[nodiscard]] double parse_double(std::string_view s);

/// Parse a duration with unit suffix: "1500ms", "90s", "80min", "2h".
/// A bare number is milliseconds.
[[nodiscard]] Duration parse_duration(std::string_view s);

/// Render a SimTime/Duration as a compact human string ("1h20m", "95s").
[[nodiscard]] std::string format_duration(Duration d);

/// printf-light: %s for pre-stringified args only. Kept trivial on purpose.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

}  // namespace woha

#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <utility>

namespace woha {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;
LogSink g_sink;  // guarded by g_mutex; empty = stderr default

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

LogSink set_log_sink(LogSink sink) {
  const std::lock_guard<std::mutex> lock(g_mutex);
  LogSink previous = std::move(g_sink);
  g_sink = std::move(sink);
  return previous;
}

void log_message(LogLevel level, const std::string& component,
                 const std::string& message) {
  if (level < log_level() || message.empty()) return;
  const std::lock_guard<std::mutex> lock(g_mutex);
  if (g_sink) {
    g_sink(level, component, message);
    return;
  }
  std::fprintf(stderr, "[%s] %s: %s\n", level_name(level), component.c_str(),
               message.c_str());
}

}  // namespace woha

// Minimal leveled logger. Simulation components log through this so tests can
// silence output and examples can turn on tracing with one call.
#pragma once

#include <sstream>
#include <string>

namespace woha {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global minimum level; messages below it are discarded (default kWarn so
/// tests and benches stay quiet).
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Core sink: writes "[level] component: message" to stderr.
void log_message(LogLevel level, const std::string& component,
                 const std::string& message);

/// Stream-style helper: LOG_AT(LogLevel::kInfo, "engine") << "t=" << t;
class LogLine {
 public:
  LogLine(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  ~LogLine() { log_message(level_, component_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <class T>
  LogLine& operator<<(const T& v) {
    if (level_ >= log_level()) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

}  // namespace woha

#define WOHA_LOG(level, component) ::woha::LogLine((level), (component))

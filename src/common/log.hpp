// Minimal leveled logger. Simulation components log through this so tests can
// silence output and examples can turn on tracing with one call.
//
// WOHA_LOG short-circuits: when the level is disabled, the statement
// evaluates no stream operands and constructs no LogLine (so the
// std::ostringstream setup cost is never paid on the fast path).
//
// The sink is pluggable: by default lines go to stderr with wall-clock-free
// "[LEVEL] component: message" formatting; obs::LogBridge re-routes them
// onto the event bus stamped with *simulated* time.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace woha {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global minimum level; messages below it are discarded (default kWarn so
/// tests and benches stay quiet).
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// True when a message at `level` would be emitted. WOHA_LOG's gate.
[[nodiscard]] inline bool log_enabled(LogLevel level) {
  return level >= log_level();
}

/// Receives every enabled log line in place of the stderr default.
using LogSink =
    std::function<void(LogLevel, const std::string& component,
                       const std::string& message)>;

/// Install a sink (nullptr restores the stderr default). Returns the
/// previously installed sink so scoped bridges can restore it.
LogSink set_log_sink(LogSink sink);

/// Core entry: level-checks, then hands the line to the sink (or stderr).
void log_message(LogLevel level, const std::string& component,
                 const std::string& message);

/// Stream-style helper: WOHA_LOG(LogLevel::kInfo, "engine") << "t=" << t;
/// Only ever constructed for enabled levels (the macro gates first).
class LogLine {
 public:
  LogLine(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  ~LogLine() { log_message(level_, component_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <class T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

/// Ternary-operand helper that swallows the LogLine expression; gives
/// WOHA_LOG a void type in both branches without a dangling-else hazard.
struct LogVoidify {
  void operator&(const LogLine&) {}
};

}  // namespace woha

#define WOHA_LOG(level, component)                 \
  !::woha::log_enabled(level)                      \
      ? (void)0                                    \
      : ::woha::LogVoidify() & ::woha::LogLine((level), (component))

// A flat arena keyed by monotonically increasing dense ids.
//
// The engine hands out attempt ids from a counter (1, 2, 3, ...), and an
// attempt's lifetime is roughly its task's duration, so at any instant the
// live ids occupy a narrow sliding window near the top of the id space. A
// hash map pays per-lookup hashing and per-node heap allocation for what is
// really vector indexing; this table stores records contiguously and maps
// id -> slot by subtracting a base offset.
//
// Window maintenance is amortized O(1): erasures mark the slot dead and
// advance a head cursor past the dead prefix; once the dead prefix passes
// half the backing vector (and a minimum size, so small tables never churn),
// the prefix is released in one erase. The window is bounded by the number
// of ids issued during the longest-lived record — for the engine, attempts
// started during the longest task — not by the total issued over a run.
//
// Determinism: the table imposes no iteration order of its own (the engine
// iterates attempts through tracker_attempts_); it is a pure id -> record
// lookup, so swapping it for std::unordered_map is bit-identical.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

namespace woha {

template <typename T>
class DenseIdTable {
 public:
  /// Insert a record under `id`. Ids must be strictly increasing across the
  /// table's lifetime (the caller's counter guarantees this; re-using or
  /// skipping backwards is a logic error). Gaps are allowed and cost one
  /// dead slot each.
  T& emplace(std::uint64_t id, T value) {
    if (id < base_ + entries_.size()) {
      throw std::logic_error("DenseIdTable: ids must be inserted in increasing order");
    }
    // Fill any id gap with dead slots so indexing stays a plain subtract.
    entries_.resize(static_cast<std::size_t>(id - base_), Entry{});
    entries_.push_back(Entry{std::move(value), true});
    ++live_;
    return entries_.back().value;
  }

  [[nodiscard]] T* find(std::uint64_t id) {
    if (id < base_ + head_ || id >= base_ + entries_.size()) return nullptr;
    Entry& e = entries_[static_cast<std::size_t>(id - base_)];
    return e.alive ? &e.value : nullptr;
  }
  [[nodiscard]] const T* find(std::uint64_t id) const {
    return const_cast<DenseIdTable*>(this)->find(id);
  }

  [[nodiscard]] T& at(std::uint64_t id) {
    T* p = find(id);
    if (!p) throw std::out_of_range("DenseIdTable: unknown id");
    return *p;
  }
  [[nodiscard]] const T& at(std::uint64_t id) const {
    return const_cast<DenseIdTable*>(this)->at(id);
  }

  [[nodiscard]] bool contains(std::uint64_t id) const { return find(id) != nullptr; }

  /// Remove `id` and return its record. Throws if absent.
  T take(std::uint64_t id) {
    T* p = find(id);
    if (!p) throw std::out_of_range("DenseIdTable: erase of unknown id");
    T out = std::move(*p);
    entries_[static_cast<std::size_t>(id - base_)].alive = false;
    --live_;
    trim();
    return out;
  }

  void erase(std::uint64_t id) { (void)take(id); }

  [[nodiscard]] std::size_t size() const { return live_; }
  [[nodiscard]] bool empty() const { return live_ == 0; }

  /// Backing-slot count (live + dead window), for occupancy diagnostics.
  [[nodiscard]] std::size_t window() const { return entries_.size() - head_; }

 private:
  struct Entry {
    T value{};
    bool alive = false;
  };

  void trim() {
    while (head_ < entries_.size() && !entries_[head_].alive) ++head_;
    if (head_ == entries_.size()) {
      base_ += entries_.size();
      head_ = 0;
      entries_.clear();
      return;
    }
    if (head_ >= kMinTrim && head_ * 2 >= entries_.size()) {
      entries_.erase(entries_.begin(),
                     entries_.begin() + static_cast<std::ptrdiff_t>(head_));
      base_ += head_;
      head_ = 0;
    }
  }

  static constexpr std::size_t kMinTrim = 64;

  std::vector<Entry> entries_;
  std::uint64_t base_ = 0;  ///< id of entries_[0]
  std::size_t head_ = 0;    ///< first possibly-live slot
  std::size_t live_ = 0;
};

}  // namespace woha

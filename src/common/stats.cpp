#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace woha {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * nb / (na + nb);
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::mean() const { return n_ ? mean_ : 0.0; }

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return n_ ? min_ : 0.0; }

double RunningStats::max() const { return n_ ? max_ : 0.0; }

void Distribution::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void Distribution::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Distribution::quantile(double q) const {
  if (samples_.empty()) throw std::logic_error("quantile of empty distribution");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q outside [0,1]");
  ensure_sorted();
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double Distribution::cdf(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double Distribution::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double Distribution::min() const {
  if (samples_.empty()) throw std::logic_error("min of empty distribution");
  ensure_sorted();
  return samples_.front();
}

double Distribution::max() const {
  if (samples_.empty()) throw std::logic_error("max of empty distribution");
  ensure_sorted();
  return samples_.back();
}

std::vector<std::pair<double, double>> Distribution::cdf_points(
    const std::vector<double>& xs) const {
  std::vector<std::pair<double, double>> out;
  out.reserve(xs.size());
  for (double x : xs) out.emplace_back(x, cdf(x));
  return out;
}

LogHistogram::LogHistogram(int lo_exp, int hi_exp) : lo_exp_(lo_exp) {
  if (hi_exp <= lo_exp) throw std::invalid_argument("LogHistogram: hi_exp <= lo_exp");
  counts_.assign(static_cast<std::size_t>(hi_exp - lo_exp), 0);
}

void LogHistogram::add(double x) {
  ++total_;
  int e = lo_exp_;
  if (x > 0.0) {
    e = static_cast<int>(std::floor(std::log10(x))) + 1;  // x < 10^e
  }
  const int idx = std::clamp(e - lo_exp_ - 1, 0, static_cast<int>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
}

std::string LogHistogram::label(std::size_t bucket) const {
  return "<10^" + std::to_string(lo_exp_ + static_cast<int>(bucket) + 1);
}

double LogHistogram::fraction_at_least(int exp) const {
  if (total_ == 0) return 0.0;
  std::uint64_t n = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    if (lo_exp_ + static_cast<int>(b) >= exp) n += counts_[b];
  }
  return static_cast<double>(n) / static_cast<double>(total_);
}

}  // namespace woha

#include "common/thread_pool.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "analysis/race_detector.hpp"

namespace woha {

// Performs the occupancy decrement and busy-time/task bookkeeping on every
// exit path from a task, including an escaping exception: before this guard,
// a throwing task skipped the decrement and left wait_idle() blocked forever.
class ThreadPool::OccupancyGuard {
 public:
  explicit OccupancyGuard(ThreadPool& pool)
      : pool_(pool), start_(std::chrono::steady_clock::now()) {}

  OccupancyGuard(const OccupancyGuard&) = delete;
  OccupancyGuard& operator=(const OccupancyGuard&) = delete;

  ~OccupancyGuard() {
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
            .count();
    // Task end -> wait_idle()/destructor return: publish before the
    // decrement that lets a waiter proceed.
    analysis::hb_release(pool_.done_sync_);
    const std::unique_lock<std::mutex> lock(pool_.mutex_);
    pool_.busy_seconds_ += secs;
    ++pool_.tasks_run_;
    if (failed_) ++pool_.tasks_failed_;
    --pool_.active_;
    if (pool_.queue_.empty() && pool_.active_ == 0) pool_.idle_.notify_all();
  }

  void mark_failed() { failed_ = true; }

 private:
  ThreadPool& pool_;
  std::chrono::steady_clock::time_point start_;
  bool failed_ = false;
};

ThreadPool::ThreadPool(unsigned threads, SchedulePerturb perturb)
    : perturb_(perturb),
      perturb_rng_(perturb.seed),
      done_sync_(analysis::new_instance_id()) {
  if (threads == 0) {
    throw std::invalid_argument("ThreadPool: thread count must be >= 1");
  }
  if (perturb_.enabled) analysis::set_perturb(true);
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::unique_lock<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
  analysis::hb_acquire(done_sync_);
  if (perturb_.enabled) analysis::set_perturb(false);
}

void ThreadPool::submit(std::function<void()> task) {
  QueuedTask queued;
  queued.body = std::move(task);
  queued.hb_sync = analysis::new_instance_id();
  // Submit -> task start: everything the submitter did is visible to the
  // worker that picks this task up.
  analysis::hb_release(queued.hb_sync);
  {
    const std::unique_lock<std::mutex> lock(mutex_);
    if (stopping_) {
      throw std::logic_error("ThreadPool: submit after shutdown");
    }
    queue_.push_back(std::move(queued));
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
  }
  analysis::hb_acquire(done_sync_);
}

double ThreadPool::busy_seconds() const {
  const std::unique_lock<std::mutex> lock(mutex_);
  return busy_seconds_;
}

std::uint64_t ThreadPool::tasks_run() const {
  const std::unique_lock<std::mutex> lock(mutex_);
  return tasks_run_;
}

std::uint64_t ThreadPool::tasks_failed() const {
  const std::unique_lock<std::mutex> lock(mutex_);
  return tasks_failed_;
}

unsigned ThreadPool::resolve(unsigned requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

std::size_t ThreadPool::pick_index() {
  if (!perturb_.enabled || queue_.size() <= 1) return 0;
  // Seeded random pick = PCT-style random task priorities: the same seed
  // replays the same dequeue decisions for the same submission sequence.
  return static_cast<std::size_t>(perturb_rng_.next() % queue_.size());
}

void ThreadPool::worker_loop() {
  for (;;) {
    QueuedTask task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain the queue even when stopping: the destructor promises every
      // submitted task runs.
      if (queue_.empty()) return;
      const std::size_t idx = pick_index();
      task = std::move(queue_[idx]);
      queue_.erase(queue_.begin() +
                   static_cast<std::deque<QueuedTask>::difference_type>(idx));
      ++active_;
    }
    analysis::hb_acquire(task.hb_sync);
    analysis::maybe_yield();
    {
      OccupancyGuard guard(*this);
      try {
        task.body();
      } catch (...) {
        // Swallowed by design: the pool's contract is that occupancy and
        // quiescence survive any task. Callers that need the exception must
        // capture it inside the task (run_grid keeps a per-point
        // exception_ptr).
        guard.mark_failed();
      }
    }
    analysis::maybe_yield();
  }
}

}  // namespace woha

#include "common/thread_pool.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

namespace woha {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    throw std::invalid_argument("ThreadPool: thread count must be >= 1");
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::unique_lock<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::unique_lock<std::mutex> lock(mutex_);
    if (stopping_) {
      throw std::logic_error("ThreadPool: submit after shutdown");
    }
    queue_.push_back(std::move(task));
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

double ThreadPool::busy_seconds() const {
  const std::unique_lock<std::mutex> lock(mutex_);
  return busy_seconds_;
}

std::uint64_t ThreadPool::tasks_run() const {
  const std::unique_lock<std::mutex> lock(mutex_);
  return tasks_run_;
}

unsigned ThreadPool::resolve(unsigned requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain the queue even when stopping: the destructor promises every
      // submitted task runs.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    const auto t0 = std::chrono::steady_clock::now();
    task();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    {
      const std::unique_lock<std::mutex> lock(mutex_);
      busy_seconds_ += secs;
      ++tasks_run_;
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace woha

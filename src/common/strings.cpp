#include "common/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <stdexcept>

namespace woha {

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  std::size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::int64_t parse_int(std::string_view s) {
  s = trim(s);
  std::int64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    throw std::invalid_argument("parse_int: not an integer: '" + std::string(s) + "'");
  }
  return v;
}

double parse_double(std::string_view s) {
  s = trim(s);
  double v = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    throw std::invalid_argument("parse_double: not a number: '" + std::string(s) + "'");
  }
  return v;
}

Duration parse_duration(std::string_view raw) {
  const std::string_view s = trim(raw);
  if (s.empty()) throw std::invalid_argument("parse_duration: empty string");
  std::size_t num_end = 0;
  while (num_end < s.size() &&
         (std::isdigit(static_cast<unsigned char>(s[num_end])) ||
          s[num_end] == '.' || s[num_end] == '-' || s[num_end] == '+')) {
    ++num_end;
  }
  const double value = parse_double(s.substr(0, num_end));
  const std::string_view unit = trim(s.substr(num_end));
  double scale = 1.0;
  if (unit.empty() || unit == "ms") {
    scale = 1.0;
  } else if (unit == "s" || unit == "sec") {
    scale = 1000.0;
  } else if (unit == "m" || unit == "min") {
    scale = 60.0 * 1000.0;
  } else if (unit == "h" || unit == "hr") {
    scale = 3600.0 * 1000.0;
  } else {
    throw std::invalid_argument("parse_duration: unknown unit '" + std::string(unit) + "'");
  }
  return static_cast<Duration>(value * scale);
}

std::string format_duration(Duration d) {
  if (d < 0) return "-" + format_duration(-d);
  char buf[64];
  if (d < 1000) {
    std::snprintf(buf, sizeof buf, "%lldms", static_cast<long long>(d));
  } else if (d < 60 * 1000) {
    std::snprintf(buf, sizeof buf, "%.1fs", static_cast<double>(d) / 1000.0);
  } else if (d < 3600 * 1000) {
    std::snprintf(buf, sizeof buf, "%.1fmin", static_cast<double>(d) / 60000.0);
  } else {
    std::snprintf(buf, sizeof buf, "%.2fh", static_cast<double>(d) / 3600000.0);
  }
  return buf;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace woha

#include "hadoop/cluster.hpp"

#include <numeric>

#include "obs/metrics_registry.hpp"

namespace woha::hadoop {

ClusterConfig ClusterConfig::paper_80_servers() {
  ClusterConfig c;
  c.num_trackers = 80;
  c.map_slots_per_tracker = 2;
  c.reduce_slots_per_tracker = 1;
  return c;
}

ClusterConfig ClusterConfig::paper_32_slaves() {
  ClusterConfig c;
  c.num_trackers = 32;
  c.map_slots_per_tracker = 2;
  c.reduce_slots_per_tracker = 1;
  return c;
}

ClusterConfig ClusterConfig::with_totals(std::uint32_t map_slots,
                                         std::uint32_t reduce_slots) {
  if (map_slots == 0 || reduce_slots == 0) {
    throw std::invalid_argument("with_totals: slot counts must be positive");
  }
  ClusterConfig c;
  // Find the largest tracker count <= 128 dividing both, so per-tracker slot
  // counts stay realistic (small integers).
  const std::uint32_t g = std::gcd(map_slots, reduce_slots);
  std::uint32_t trackers = g;
  while (trackers > 128) trackers /= 2;
  // Fall back to 1 tracker when gcd is odd and too large to halve evenly.
  while (trackers > 1 && (map_slots % trackers || reduce_slots % trackers)) {
    --trackers;
  }
  c.num_trackers = trackers;
  c.map_slots_per_tracker = map_slots / trackers;
  c.reduce_slots_per_tracker = reduce_slots / trackers;
  // Coprime totals (e.g. 200 map + 1 reduce) collapse to a single tracker
  // holding every slot, which silently models a cluster with no parallelism
  // at all. Reject such shapes instead of producing nonsense: no real
  // TaskTracker carries more than a handful of slots per type.
  constexpr std::uint32_t kMaxSlotsPerTrackerType = 32;
  if (c.map_slots_per_tracker > kMaxSlotsPerTrackerType ||
      c.reduce_slots_per_tracker > kMaxSlotsPerTrackerType) {
    throw std::invalid_argument(
        "with_totals: no tracker count <= 128 divides both slot totals into "
        "<= 32 slots per tracker per type (totals " + std::to_string(map_slots) +
        "m/" + std::to_string(reduce_slots) +
        "r are near-coprime); pick totals with a common factor or configure "
        "the cluster explicitly");
  }
  return c;
}

void TrackerState::occupy(SlotType t) {
  auto& free = free_[static_cast<std::size_t>(t)];
  if (free == 0) {
    throw std::logic_error("TrackerState::occupy: no free slot");
  }
  --free;
}

void TrackerState::release(SlotType t) {
  auto& free = free_[static_cast<std::size_t>(t)];
  if (free >= capacity_[static_cast<std::size_t>(t)]) {
    throw std::logic_error("TrackerState::release: all slots already free");
  }
  ++free;
}

Cluster::Cluster(const ClusterConfig& config) : config_(config) {
  if (config.num_trackers == 0) {
    throw std::invalid_argument("Cluster: num_trackers must be positive");
  }
  trackers_.reserve(config.num_trackers);
  for (std::uint32_t i = 0; i < config.num_trackers; ++i) {
    trackers_.emplace_back(TrackerId(i), config.map_slots_per_tracker,
                           config.reduce_slots_per_tracker);
  }
  total_free_[0] = config.total_map_slots();
  total_free_[1] = config.total_reduce_slots();
  capacity_total_[0] = total_free_[0];
  capacity_total_[1] = total_free_[1];
  // Seed the freelists in tracker-index order (tracker 0 at the head).
  const std::uint32_t caps[2] = {config.map_slots_per_tracker,
                                 config.reduce_slots_per_tracker};
  for (std::size_t s = 0; s < 2; ++s) {
    next_[s].assign(config.num_trackers, kNoTracker);
    prev_[s].assign(config.num_trackers, kNoTracker);
    if (caps[s] == 0) continue;
    head_[s] = 0;
    free_count_[s] = config.num_trackers;
    for (std::size_t i = 0; i < config.num_trackers; ++i) {
      if (i > 0) prev_[s][i] = i - 1;
      if (i + 1 < config.num_trackers) next_[s][i] = i + 1;
    }
  }
}

void Cluster::link(std::size_t tracker_index, std::size_t s) {
  prev_[s][tracker_index] = kNoTracker;
  next_[s][tracker_index] = head_[s];
  if (head_[s] != kNoTracker) prev_[s][head_[s]] = tracker_index;
  head_[s] = tracker_index;
  ++free_count_[s];
}

void Cluster::unlink(std::size_t tracker_index, std::size_t s) {
  const std::size_t prev = prev_[s][tracker_index];
  const std::size_t next = next_[s][tracker_index];
  if (prev != kNoTracker) {
    next_[s][prev] = next;
  } else {
    head_[s] = next;
  }
  if (next != kNoTracker) prev_[s][next] = prev;
  prev_[s][tracker_index] = kNoTracker;
  next_[s][tracker_index] = kNoTracker;
  --free_count_[s];
}

std::uint32_t Cluster::total_busy(SlotType t) const {
  return capacity_total_[static_cast<std::size_t>(t)] - total_free(t);
}

void Cluster::occupy(std::size_t tracker_index, SlotType t) {
  TrackerState& tracker = trackers_.at(tracker_index);
  tracker.occupy(t);
  const auto s = static_cast<std::size_t>(t);
  --total_free_[s];
  if (tracker.offerable() && tracker.free_slots(t) == 0) unlink(tracker_index, s);
  update_gauges();
}

void Cluster::release(std::size_t tracker_index, SlotType t) {
  TrackerState& tracker = trackers_.at(tracker_index);
  tracker.release(t);
  const auto s = static_cast<std::size_t>(t);
  ++total_free_[s];
  // A dead tracker's slots are reconciled (released) during loss detection;
  // it must not re-enter the freelist until it restarts. Likewise a draining
  // tracker stays off the lists: its freed slots must not attract new work.
  if (tracker.offerable() && tracker.free_slots(t) == 1) link(tracker_index, s);
  update_gauges();
}

void Cluster::set_slot_gauges(obs::Gauge* free_map, obs::Gauge* free_reduce) {
  gauges_[0] = free_map;
  gauges_[1] = free_reduce;
  update_gauges();
}

void Cluster::update_gauges() const {
  if (gauges_[0]) gauges_[0]->set(static_cast<double>(total_free_[0]));
  if (gauges_[1]) gauges_[1]->set(static_cast<double>(total_free_[1]));
}

void Cluster::mark_dead(std::size_t tracker_index) {
  TrackerState& tracker = trackers_.at(tracker_index);
  if (!tracker.alive()) {
    throw std::logic_error("Cluster::mark_dead: tracker already dead");
  }
  for (const SlotType t : {SlotType::kMap, SlotType::kReduce}) {
    const auto s = static_cast<std::size_t>(t);
    if (on_freelist(tracker_index, s)) unlink(tracker_index, s);
  }
  tracker.set_alive(false);
}

void Cluster::deactivate(std::size_t tracker_index) {
  TrackerState& tracker = trackers_.at(tracker_index);
  if (tracker.alive()) {
    throw std::logic_error("Cluster::deactivate: tracker still alive");
  }
  for (const SlotType t : {SlotType::kMap, SlotType::kReduce}) {
    if (tracker.free_slots(t) != tracker.capacity(t)) {
      throw std::logic_error("Cluster::deactivate: tracker has occupied slots");
    }
    total_free_[static_cast<std::size_t>(t)] -= tracker.capacity(t);
  }
  update_gauges();
}

void Cluster::activate(std::size_t tracker_index) {
  TrackerState& tracker = trackers_.at(tracker_index);
  if (tracker.alive()) {
    throw std::logic_error("Cluster::activate: tracker already alive");
  }
  tracker.set_alive(true);
  // A rebooted node re-registers as a fresh worker: any drain that was in
  // flight when it crashed is forgotten (the operator must re-issue it).
  tracker.set_draining(false);
  for (const SlotType t : {SlotType::kMap, SlotType::kReduce}) {
    const auto s = static_cast<std::size_t>(t);
    total_free_[s] += tracker.capacity(t);
    if (tracker.capacity(t) > 0) link(tracker_index, s);
  }
  update_gauges();
}

void Cluster::set_draining(std::size_t tracker_index) {
  TrackerState& tracker = trackers_.at(tracker_index);
  if (!tracker.alive()) {
    throw std::logic_error("Cluster::set_draining: tracker is dead");
  }
  if (tracker.draining()) return;
  for (const SlotType t : {SlotType::kMap, SlotType::kReduce}) {
    const auto s = static_cast<std::size_t>(t);
    if (on_freelist(tracker_index, s)) unlink(tracker_index, s);
  }
  tracker.set_draining(true);
}

std::size_t Cluster::add_tracker() {
  const std::size_t i = trackers_.size();
  trackers_.emplace_back(TrackerId(static_cast<std::uint32_t>(i)),
                         config_.map_slots_per_tracker,
                         config_.reduce_slots_per_tracker);
  const std::uint32_t caps[2] = {config_.map_slots_per_tracker,
                                 config_.reduce_slots_per_tracker};
  for (std::size_t s = 0; s < 2; ++s) {
    next_[s].push_back(kNoTracker);
    prev_[s].push_back(kNoTracker);
    total_free_[s] += caps[s];
    capacity_total_[s] += caps[s];
    if (caps[s] > 0) link(i, s);
  }
  update_gauges();
  return i;
}

}  // namespace woha::hadoop

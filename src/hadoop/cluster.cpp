#include "hadoop/cluster.hpp"

#include <numeric>

#include "obs/metrics_registry.hpp"

namespace woha::hadoop {

ClusterConfig ClusterConfig::paper_80_servers() {
  ClusterConfig c;
  c.num_trackers = 80;
  c.map_slots_per_tracker = 2;
  c.reduce_slots_per_tracker = 1;
  return c;
}

ClusterConfig ClusterConfig::paper_32_slaves() {
  ClusterConfig c;
  c.num_trackers = 32;
  c.map_slots_per_tracker = 2;
  c.reduce_slots_per_tracker = 1;
  return c;
}

ClusterConfig ClusterConfig::with_totals(std::uint32_t map_slots,
                                         std::uint32_t reduce_slots) {
  if (map_slots == 0 || reduce_slots == 0) {
    throw std::invalid_argument("with_totals: slot counts must be positive");
  }
  ClusterConfig c;
  // Find the largest tracker count <= 128 dividing both, so per-tracker slot
  // counts stay realistic (small integers).
  const std::uint32_t g = std::gcd(map_slots, reduce_slots);
  std::uint32_t trackers = g;
  while (trackers > 128) trackers /= 2;
  // Fall back to 1 tracker when gcd is odd and too large to halve evenly.
  while (trackers > 1 && (map_slots % trackers || reduce_slots % trackers)) {
    --trackers;
  }
  c.num_trackers = trackers;
  c.map_slots_per_tracker = map_slots / trackers;
  c.reduce_slots_per_tracker = reduce_slots / trackers;
  return c;
}

void TrackerState::occupy(SlotType t) {
  auto& free = free_[static_cast<std::size_t>(t)];
  if (free == 0) {
    throw std::logic_error("TrackerState::occupy: no free slot");
  }
  --free;
}

void TrackerState::release(SlotType t) {
  auto& free = free_[static_cast<std::size_t>(t)];
  if (free >= capacity_[static_cast<std::size_t>(t)]) {
    throw std::logic_error("TrackerState::release: all slots already free");
  }
  ++free;
}

Cluster::Cluster(const ClusterConfig& config) : config_(config) {
  if (config.num_trackers == 0) {
    throw std::invalid_argument("Cluster: num_trackers must be positive");
  }
  trackers_.reserve(config.num_trackers);
  for (std::uint32_t i = 0; i < config.num_trackers; ++i) {
    trackers_.emplace_back(TrackerId(i), config.map_slots_per_tracker,
                           config.reduce_slots_per_tracker);
  }
  total_free_[0] = config.total_map_slots();
  total_free_[1] = config.total_reduce_slots();
}

std::uint32_t Cluster::total_busy(SlotType t) const {
  const std::uint32_t cap = t == SlotType::kMap ? config_.total_map_slots()
                                                : config_.total_reduce_slots();
  return cap - total_free(t);
}

void Cluster::occupy(std::size_t tracker_index, SlotType t) {
  trackers_.at(tracker_index).occupy(t);
  --total_free_[static_cast<std::size_t>(t)];
  update_gauges();
}

void Cluster::release(std::size_t tracker_index, SlotType t) {
  trackers_.at(tracker_index).release(t);
  ++total_free_[static_cast<std::size_t>(t)];
  update_gauges();
}

void Cluster::set_slot_gauges(obs::Gauge* free_map, obs::Gauge* free_reduce) {
  gauges_[0] = free_map;
  gauges_[1] = free_reduce;
  update_gauges();
}

void Cluster::update_gauges() const {
  if (gauges_[0]) gauges_[0]->set(static_cast<double>(total_free_[0]));
  if (gauges_[1]) gauges_[1]->set(static_cast<double>(total_free_[1]));
}

void Cluster::deactivate(std::size_t tracker_index) {
  TrackerState& tracker = trackers_.at(tracker_index);
  if (tracker.alive()) {
    throw std::logic_error("Cluster::deactivate: tracker still alive");
  }
  for (const SlotType t : {SlotType::kMap, SlotType::kReduce}) {
    if (tracker.free_slots(t) != tracker.capacity(t)) {
      throw std::logic_error("Cluster::deactivate: tracker has occupied slots");
    }
    total_free_[static_cast<std::size_t>(t)] -= tracker.capacity(t);
  }
  update_gauges();
}

void Cluster::activate(std::size_t tracker_index) {
  TrackerState& tracker = trackers_.at(tracker_index);
  if (tracker.alive()) {
    throw std::logic_error("Cluster::activate: tracker already alive");
  }
  tracker.set_alive(true);
  for (const SlotType t : {SlotType::kMap, SlotType::kReduce}) {
    total_free_[static_cast<std::size_t>(t)] += tracker.capacity(t);
  }
  update_gauges();
}

}  // namespace woha::hadoop

// The simulation engine: wires the discrete-event core, the cluster, the
// JobTracker, and a WorkflowScheduler into a runnable experiment.
//
// Faithfulness notes (all observable in tests):
//  * Scheduling happens only on heartbeats: a slot freed mid-period is not
//    reassigned until its tracker's next heartbeat (Hadoop-1 behaviour;
//    paper: "scheduling events in WOHA are triggered by heartbeat
//    messages").
//  * Each heartbeat lets the scheduler fill every idle slot of that tracker
//    (Hadoop-1 assigns multiple tasks per heartbeat).
//  * Job activation models WOHA's submitter job: when a wjob's last
//    prerequisite finishes, it becomes schedulable only after
//    `activation_latency` (jar loading + task init on a slave).
//  * Actual task durations can deviate from the spec durations the
//    schedulers/plans see, via multiplicative log-normal jitter
//    (duration_jitter_sigma) and a systematic scale factor — used by the
//    estimation-error ablation bench.
//  * Node faults (EngineConfig::faults) follow Hadoop-1 semantics: a
//    crashed TaskTracker goes silent, the JobTracker notices only at lease
//    expiry (or re-registration), running attempts are KILLED and re-queued,
//    and completed map outputs of in-flight jobs die with the node's local
//    disk. See fault.hpp and DESIGN.md ("Fault model").
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/dense_id_table.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "hadoop/admission.hpp"
#include "hadoop/cluster.hpp"
#include "hadoop/fault.hpp"
#include "hadoop/job_tracker.hpp"
#include "hadoop/scheduler.hpp"
#include "obs/event_bus.hpp"
#include "obs/metrics_registry.hpp"
#include "sim/simulation.hpp"

namespace woha::hadoop {

/// Snapshot handed to EngineConfig::autoscale_policy on every autoscaler
/// tick. All fields are ground truth at the tick instant.
struct AutoscaleSignal {
  SimTime now = 0;
  /// Trackers that are up (not crashed, not retired) — includes draining.
  std::size_t live_trackers = 0;
  /// Of those, how many are currently draining out.
  std::size_t draining_trackers = 0;
  /// Admitted-and-unfinished workflows (the backlog-pressure signal).
  std::uint32_t pending_workflows = 0;
  std::uint32_t free_map_slots = 0;
  std::uint32_t free_reduce_slots = 0;
};

struct EngineConfig {
  ClusterConfig cluster;
  /// Delay between "all prerequisites finished" and "job schedulable"
  /// (submitter map task: jar load + split init). The paper's design shifts
  /// this cost off the master; it still takes wall-clock time on a slave.
  Duration activation_latency = seconds(3);
  /// Multiplicative log-normal sigma applied to actual task durations
  /// (0 = deterministic: actual == estimated).
  double duration_jitter_sigma = 0.0;
  /// Systematic scale on actual durations (1.0 = estimates are unbiased).
  /// The plan generator always sees the *spec* durations, so values != 1
  /// model estimation error.
  double duration_scale = 1.0;
  /// RNG seed for duration jitter and tracker selection tie-breaks.
  std::uint64_t seed = 1;
  /// Stop the simulation at this time even if work remains (safety net).
  SimTime horizon = kTimeInfinity;

  // --- failure injection -------------------------------------------------
  /// Probability that a task attempt fails (at a uniformly random point of
  /// its execution). Failed attempts release their slot and the task
  /// returns to the pending pool, exactly like a Hadoop task retry.
  /// p == 1.0 is allowed (every attempt fails) — only meaningful together
  /// with faults.max_attempts > 0.
  double task_failure_prob = 0.0;

  /// Node-level fault model: tracker churn, loss detection, attempt
  /// budgets, blacklisting, speculative execution. Defaults disable
  /// everything, leaving the engine bit-identical to the fault-free build.
  FaultConfig faults;

  // --- overload & elasticity ---------------------------------------------
  /// Admission control and deadline-aware load shedding at submission time
  /// (admission.hpp). Default kAdmitAll keeps today's behaviour exactly.
  AdmissionConfig admission;
  /// Elastic membership: graceful decommissions, preemption waves, dynamic
  /// joins, autoscaler (fault.hpp). Defaults disable everything.
  ElasticityConfig elasticity;
  /// Custom autoscaler rule; returns the desired tracker delta (> 0 joins
  /// that many, < 0 drains that many, 0 holds). Null uses the threshold
  /// rule in ElasticityConfig::autoscaler. Only consulted while
  /// elasticity.autoscaler.enabled; min/max/step caps apply either way.
  std::function<std::int32_t(const AutoscaleSignal&)> autoscale_policy;

  // --- data locality model ------------------------------------------------
  /// Factor applied to a map task's duration when it runs on a tracker that
  /// does not hold a replica of its input split (1.0 disables the model).
  /// Mirrors HDFS's node-local vs remote read cost.
  double remote_map_penalty = 1.0;
  /// HDFS replication factor used by the locality model.
  std::uint32_t hdfs_replication = 3;

  /// Attach an audit::InvariantAuditor to the run (metrics::run_experiment
  /// honours this; the engine itself never depends on the audit library).
  /// Off means no bus subscription, so publish sites reduce to one branch
  /// and the run is bit- and wall-clock-identical to an unaudited one.
  bool audit = false;

  /// Same-tick heartbeat batching. When > 1, an empty scheduler answer
  /// ("no pending task wants this slot type") is memoized for the current
  /// simulation instant and served to up to heartbeat_batch - 1 sibling
  /// heartbeats of the same tick without re-consulting the scheduler — the
  /// answer is a function of the instant and of the availability state, not
  /// of which tracker asked, and any event that could create work
  /// invalidates the memo. Served offers still count as select calls, so
  /// summaries and golden digests are bit-identical to heartbeat_batch = 1.
  /// 1 disables batching; 0 is invalid.
  std::uint32_t heartbeat_batch = 64;
};

/// One task start/finish observation, for slot-allocation timelines
/// (paper Fig. 14-19) and utilization accounting.
struct TaskEvent {
  SimTime time = 0;
  WorkflowId workflow;
  JobRef job;
  SlotType slot = SlotType::kMap;
  bool started = true;  ///< false == attempt ended (success, failure, kill)
  bool failed = false;  ///< only meaningful when started == false
  /// Attempt was KILLED (tracker lost, speculation race lost, or workflow
  /// failed) rather than finishing on its own. Kills release the slot like
  /// any end event but must not feed duration estimators.
  bool killed = false;
  /// Attempt is a speculative backup (fault model's speculative execution).
  bool speculative = false;
  /// Actual execution time of the attempt; set on end events (0 on
  /// start events). Feeds history-based task-time estimators.
  Duration duration = 0;
};

/// Final per-workflow outcome.
struct WorkflowResult {
  WorkflowId id;
  std::string name;
  SimTime submit_time = 0;
  SimTime deadline = kTimeInfinity;
  SimTime finish_time = -1;       ///< -1 if unfinished at horizon
  Duration workspan = -1;         ///< finish - submit
  Duration tardiness = 0;         ///< max(0, finish - deadline)
  bool met_deadline = false;
  /// A task exhausted its attempt budget: the workflow terminated without
  /// finishing (finish_time stays -1). Shed workflows are reported via
  /// `shed`, not here.
  bool failed = false;
  /// Turned away at submission by the admission controller; the workflow
  /// never entered the JobTracker (id stays default). Counts as a miss when
  /// it carried a deadline.
  bool rejected = false;
  /// Admitted but later evicted by the shedding policy to keep the pending
  /// budget. Counts as a miss when it carried a deadline.
  bool shed = false;
};

struct RunSummary {
  std::vector<WorkflowResult> workflows;
  SimTime makespan = 0;              ///< last finish time
  double deadline_miss_ratio = 0.0;  ///< misses / workflows-with-deadline
  Duration max_tardiness = 0;
  Duration total_tardiness = 0;
  double map_slot_utilization = 0.0;     ///< busy map-slot-time / offered
  double reduce_slot_utilization = 0.0;  ///< busy reduce-slot-time / offered
  double overall_utilization = 0.0;
  std::uint64_t tasks_executed = 0;  ///< attempts started (incl. retried)
  std::uint64_t tasks_failed = 0;    ///< attempts that failed and retried
  std::uint64_t events_fired = 0;
  /// Master-side scheduling overhead: WorkflowScheduler::select_task calls
  /// and the wall-clock time spent inside them (the paper's claim that the
  /// plan-following scheduler adds negligible master overhead).
  std::uint64_t select_calls = 0;
  double select_wall_ms = 0.0;
  /// Fraction of map tasks that ran node-local (1.0 when the locality
  /// model is disabled).
  double map_locality_ratio = 1.0;

  // --- fault model (all zero when EngineConfig::faults is default) -------
  std::uint64_t tracker_crashes = 0;     ///< TaskTracker outages injected
  std::uint64_t attempts_killed = 0;     ///< KILLED attempts (not FAILED)
  std::uint64_t map_outputs_lost = 0;    ///< completed maps re-executed
  std::uint64_t workflows_failed = 0;    ///< attempt budget exhausted
  std::uint64_t blacklistings = 0;       ///< (job, tracker) pairs blacklisted
  std::uint64_t speculative_launched = 0;  ///< backup attempts started
  std::uint64_t speculative_won = 0;       ///< backups that beat the original
  /// Slot-time burned by speculation losers (the cost side of the backup
  /// bet; the benefit shows up as lower tardiness under churn).
  double speculative_wasted_ms = 0.0;

  // --- overload & elasticity (all zero when both subsystems are off) -----
  std::uint64_t workflows_submitted = 0;  ///< offered to the master
  std::uint64_t workflows_rejected = 0;   ///< turned away at admission
  std::uint64_t workflows_shed = 0;       ///< evicted to keep the budget
  /// Peak admitted-and-unfinished workflow count over the run — the bounded
  /// vs unbounded queue signal of the rho sweep.
  std::uint32_t pending_peak = 0;
  std::uint64_t tracker_decommissions = 0;  ///< graceful retirements
  std::uint64_t tracker_preemptions = 0;    ///< spot terminations
  std::uint64_t trackers_joined = 0;        ///< dynamic registrations
  /// Attempts killed and re-queued because their node's drain lease (or
  /// preemption warning) ran out before they finished.
  std::uint64_t drain_migrated = 0;
};

class Engine {
 public:
  Engine(EngineConfig config, std::unique_ptr<WorkflowScheduler> scheduler);

  /// Queue a workflow for submission at spec.submit_time. Must be called
  /// before run().
  void submit(wf::WorkflowSpec spec);

  /// Optional observer invoked on every task start/finish (timelines).
  /// Implemented as an EventBus subscription translating obs::TaskStarted /
  /// obs::TaskEnded back into the legacy TaskEvent shape, so the bus is the
  /// single event pipeline. Passing nullptr removes the observer.
  void set_task_observer(std::function<void(const TaskEvent&)> observer);

  /// The engine's event bus. Subscribe exporters/tests before run(); with
  /// no subscribers every publish site reduces to a single branch.
  [[nodiscard]] obs::EventBus& events() { return events_; }
  [[nodiscard]] const obs::EventBus& events() const { return events_; }

  /// Attach a metrics registry (nullptr detaches). Instrument handles are
  /// resolved once here, so hot-path updates are plain field writes; with
  /// no registry attached the engine records nothing and skips the
  /// wall-clock reads entirely.
  void set_metrics_registry(obs::MetricsRegistry* registry);
  [[nodiscard]] obs::MetricsRegistry* metrics_registry() const { return registry_; }

  /// The engine RNG's full state. Determinism-under-observability tests
  /// compare this across bus-off/bus-on runs: equal final states prove the
  /// observability layer never consumed a draw.
  [[nodiscard]] std::array<std::uint64_t, 5> rng_state() const {
    return rng_.state();
  }

  /// Run to completion (or to config.horizon).
  void run();

  [[nodiscard]] const EngineConfig& config() const { return config_; }
  [[nodiscard]] const JobTracker& job_tracker() const { return job_tracker_; }
  [[nodiscard]] const Cluster& cluster() const { return cluster_; }
  [[nodiscard]] const WorkflowScheduler& scheduler() const { return *scheduler_; }
  [[nodiscard]] SimTime now() const { return sim_.now(); }

  /// Mutable cluster access for auditor failure-path tests, which corrupt
  /// slot accounting mid-run to prove the auditor trips. Production code
  /// must never call this.
  [[nodiscard]] Cluster& cluster_for_test() { return cluster_; }

  /// Collect results after run().
  [[nodiscard]] RunSummary summarize() const;

  /// Ground-truth admission accounting for the invariant auditor:
  /// submitted == admitted + rejected must hold at all times, and shed
  /// never exceeds admitted.
  struct AdmissionStats {
    std::uint64_t submitted = 0;
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t shed = 0;
    std::uint32_t pending_peak = 0;
  };
  [[nodiscard]] AdmissionStats admission_stats() const {
    return {workflows_submitted_,
            workflows_submitted_ - workflows_rejected_,
            workflows_rejected_, workflows_shed_, pending_peak_};
  }

 private:
  /// One running attempt (Hadoop TaskAttempt): the unit that occupies a
  /// slot, can finish, fail, or be KILLED by a node fault / lost race.
  struct Attempt {
    JobRef ref;
    SlotType type = SlotType::kMap;
    std::size_t tracker = 0;
    SimTime start_time = 0;
    Duration duration = 0;  ///< scheduled runtime (truncated when will_fail)
    std::uint32_t retry_level = 0;
    bool will_fail = false;
    bool speculative = false;
    std::uint64_t rival = 0;  ///< id of the speculation twin (0 = none)
    sim::EventHandle finish_event;
  };

  /// JobTracker-side record of one tracker's health between crash events.
  struct TrackerFaultState {
    bool dead = false;
    bool detected = false;  ///< loss processed (expiry or re-registration)
    SimTime crash_time = 0;
    std::uint64_t epoch = 0;  ///< guards stale detection/restart events
  };

  /// Elastic-membership state of one tracker (decommission / preemption /
  /// join lifecycle), alongside but independent of TrackerFaultState: a
  /// draining node can still crash, and the crash machinery then owns it.
  struct TrackerElasticState {
    bool draining = false;  ///< drain in progress (decommission or warning)
    bool retired = false;   ///< permanently gone (decommissioned/preempted)
    /// True while the drain is a preemption warning: the node terminates at
    /// the lease instant no matter what (no early retirement when idle).
    bool preempting = false;
    SimTime lease_deadline = 0;
    std::uint64_t epoch = 0;  ///< guards stale drain-expiry events
  };

  void do_submit(wf::WorkflowSpec spec);
  void heartbeat(std::size_t tracker_index);
  void activate_job(JobRef ref);
  void start_task(JobRef ref, SlotType type, std::size_t tracker_index);
  void finish_attempt(std::uint64_t attempt_id);
  [[nodiscard]] Duration actual_duration(Duration estimated);
  /// True when the map input split of the next task of `ref` has a replica
  /// on `tracker_index` under the randomized HDFS placement model.
  [[nodiscard]] bool map_is_local(JobRef ref, std::size_t tracker_index);
  /// The common stochastic part of launching an attempt; draws duration
  /// jitter, map locality, and injected failure in a fixed order (the order
  /// is load-bearing: fault-free runs must replay the exact pre-fault-model
  /// RNG sequence).
  [[nodiscard]] Duration draw_attempt(JobRef ref, SlotType type,
                                      std::size_t tracker_index, bool& will_fail);

  // --- fault machinery ----------------------------------------------------
  void crash_tracker(std::size_t tracker_index, SimTime restart_time);
  void restart_tracker(std::size_t tracker_index);
  /// JobTracker learns the tracker is gone (lease expiry or the node
  /// re-registering): kill its attempts, re-queue the lost tasks,
  /// invalidate its map outputs, retire its slots.
  void detect_tracker_loss(std::size_t tracker_index);
  /// Remove one attempt without letting it finish: cancel, release the
  /// slot, refund un-executed busy time, emit the KILLED event. `stop_time`
  /// is when the attempt actually stopped executing (crash instant for node
  /// loss, now for lost races). `cause` names the kill site on the emitted
  /// TaskEnded so forensics can classify it. Returns the removed record.
  Attempt kill_attempt(std::uint64_t attempt_id, SimTime stop_time,
                       obs::KillCause cause);
  /// Task exhausted its attempt budget: fail the whole workflow, kill its
  /// other running attempts, notify the scheduler.
  void fail_workflow(std::uint32_t workflow, SimTime now);
  /// Charge one injected failure toward (job, tracker) blacklisting.
  void record_attempt_failure(JobRef ref, std::size_t tracker_index);
  /// Launch at most one speculative backup into a free slot of
  /// `tracker_index`; returns whether one was launched.
  bool try_speculate(SlotType type, std::size_t tracker_index);
  /// Register / retire an attempt in the hot-path indices
  /// (attempts_by_workflow_, spec_candidates_). Call _add right after the
  /// attempt record is complete and _remove right after it leaves
  /// attempts_, with the record as of insertion time.
  void index_attempt_add(std::uint64_t id, const Attempt& a);
  void index_attempt_remove(std::uint64_t id, const Attempt& a);
  /// Candidate set maintenance for the speculation scan. Eligibility is
  /// (non-speculative, no rival); both calls are no-ops for ineligible
  /// attempts or when speculation is off.
  void spec_candidate_add(std::uint64_t id, const Attempt& a);
  void spec_candidate_remove(std::uint64_t id, const Attempt& a);
  void schedule_next_mtbf_crash(std::size_t tracker_index);
  [[nodiscard]] bool blacklisted(JobRef ref, std::size_t tracker_index) const {
    return blacklist_.find({ref, tracker_index}) != blacklist_.end();
  }

  // --- overload & elasticity machinery ------------------------------------
  /// Shed an admitted workflow (deadline-aware load shedding): tear it
  /// down like fail_workflow but tagged shed, kill its running attempts.
  void shed_workflow(std::uint32_t workflow, SimTime now);
  /// Enforce the shed policy's pending budget after a submission, then
  /// record the pending peak.
  void enforce_pending_budget();
  /// Start a graceful decommission: drain now, retire when the node goes
  /// idle or the lease expires, whichever comes first.
  void begin_decommission(std::size_t tracker_index, Duration lease);
  /// Drain lease ran out: kill + re-queue the stragglers, retire the node.
  void drain_lease_expired(std::size_t tracker_index, std::uint64_t epoch);
  /// Preemption warning fired earlier; the node terminates now.
  void preempt_terminate(std::size_t tracker_index, std::uint64_t epoch);
  /// Kill + re-queue everything still running on a draining tracker
  /// (master-initiated, so no lease-expiry delay and no attempt-budget
  /// charge), invalidate its stranded map outputs, and retire it. `cause`
  /// distinguishes drain-lease expiry from preemption. Returns the number
  /// of attempts migrated.
  std::uint32_t migrate_off(std::size_t tracker_index, obs::KillCause cause);
  /// Retire a fully drained tracker out of the cluster for good.
  void retire_tracker(std::size_t tracker_index, std::uint32_t migrated,
                      bool preempted);
  /// A draining (non-preempting) tracker may have just gone idle; if so,
  /// complete its decommission at the current instant (scheduled as a
  /// same-tick event so in-flight bookkeeping settles first).
  void maybe_complete_drain(std::size_t tracker_index);
  void preemption_wave(const PreemptionWave& wave);
  /// Register `count` fresh trackers with the master right now.
  void join_trackers(std::uint32_t count);
  void autoscale_tick();
  /// Integrate offered slot-capacity over time (elastic runs only), then
  /// apply a capacity delta. Call at the instant capacity changes.
  void account_capacity_change(std::int64_t map_delta, std::int64_t reduce_delta);
  [[nodiscard]] std::size_t pick_drain_victim() const;

  EngineConfig config_;
  sim::Simulation sim_;
  Cluster cluster_;
  JobTracker job_tracker_;
  std::unique_ptr<WorkflowScheduler> scheduler_;
  Rng rng_;
  std::vector<wf::WorkflowSpec> pending_submissions_;
  bool started_ = false;

  // Observability. The bus is owned here so every component shares one
  // stream; the registry is borrowed (callers own snapshots/dumping).
  // Instrument handles are resolved once in set_metrics_registry so the
  // hot paths touch raw pointers only.
  obs::EventBus events_;
  obs::MetricsRegistry* registry_ = nullptr;
  struct MetricHandles {
    obs::Histogram* heartbeat_ns = nullptr;
    obs::Histogram* select_ns = nullptr;
    obs::Counter* heartbeats = nullptr;
    obs::Counter* tasks_started = nullptr;
    obs::Counter* tasks_finished = nullptr;
    obs::Counter* tasks_failed = nullptr;
    obs::Counter* attempts_killed = nullptr;
    obs::Counter* tracker_crashes = nullptr;
    obs::Counter* speculative_launched = nullptr;
    obs::Counter* workflows_rejected = nullptr;
    obs::Counter* workflows_shed = nullptr;
    obs::Counter* decommissions = nullptr;
    obs::Counter* preemptions = nullptr;
    obs::Counter* joins = nullptr;
    obs::Gauge* pending_workflows = nullptr;
    obs::Gauge* pending_peak = nullptr;
  };
  MetricHandles handles_;
  obs::EventBus::SubscriptionId task_observer_subscription_ = 0;

  // Running attempts, keyed by attempt id (ids start at 1 so 0 can mean "no
  // rival"). Lookup only — all iteration goes through tracker_attempts_,
  // whose per-tracker insertion order is deterministic. Ids are handed out
  // monotonically and live briefly, so the flat sliding-window arena
  // replaces hashing with an index subtract (see dense_id_table.hpp).
  DenseIdTable<Attempt> attempts_;
  std::vector<std::vector<std::uint64_t>> tracker_attempts_;
  std::uint64_t next_attempt_id_ = 1;

  // Tick-scoped empty-select memoization (heartbeat batching). memo_empty_
  // for a slot type is valid while the simulation instant and the
  // availability version both still match; avail_version_ is bumped by
  // every event that can change which jobs have runnable tasks.
  SimTime memo_tick_ = -1;
  std::uint64_t avail_version_ = 0;
  std::uint64_t memo_version_[2] = {0, 0};
  std::uint32_t memo_uses_[2] = {0, 0};
  bool memo_empty_[2] = {false, false};
  // Blacklist eligibility callable, built once and retargeted per heartbeat
  // through heartbeat_tracker_ so churn-heavy runs do not heap-allocate a
  // std::function per heartbeat.
  std::function<bool(JobRef)> blacklist_filter_;
  std::size_t heartbeat_tracker_ = 0;
  // Start-task sink handed to WorkflowScheduler::select_tasks, built once
  // and retargeted per offer through heartbeat_tracker_ /
  // heartbeat_slot_type_ (same no-per-heartbeat-allocation idiom as
  // blacklist_filter_).
  std::function<void(JobRef)> start_sink_;
  SlotType heartbeat_slot_type_ = SlotType::kMap;

  // Hot-path attempt indices. Both are ordered sets so their iteration
  // reproduces, bit for bit, the (tracker ascending, launch order within
  // tracker) sweep the engine used to perform over every tracker — attempt
  // ids are handed out monotonically, so launch order == id order.
  //
  // spec_candidates_[type]: running attempts eligible to *receive* a backup
  // (non-speculative, no rival), keyed (tracker, attempt id). Only
  // maintained when faults.speculative_execution is on.
  std::set<std::pair<std::size_t, std::uint64_t>> spec_candidates_[2];
  // attempts_by_workflow_: every running attempt keyed (workflow, tracker,
  // attempt id), so the kill sweeps of fail_workflow and shed_workflow touch
  // only the dying workflow's attempts. Only maintained when one of the two
  // can run (index_by_workflow_: faults.max_attempts > 0 or the shedding
  // admission policy is active).
  std::set<std::tuple<std::uint32_t, std::size_t, std::uint64_t>> attempts_by_workflow_;
  bool index_by_workflow_ = false;

  // Fault state. map_outputs_[t][job] counts completed maps of `job` whose
  // output sits on tracker t's local disk (only tracked for jobs with
  // reduces, and only when churn is enabled). std::map/std::set keep every
  // iteration order deterministic.
  std::vector<TrackerFaultState> fault_state_;
  std::vector<std::map<JobRef, std::uint32_t>> map_outputs_;
  std::set<std::pair<JobRef, std::size_t>> blacklist_;
  std::map<std::pair<JobRef, std::size_t>, std::uint32_t> job_tracker_failures_;
  std::vector<Rng> tracker_fault_rngs_;
  /// Root of the fault RNG streams; joined trackers draw fresh splits from
  /// it, so churn stays deterministic under dynamic membership.
  Rng fault_rng_root_{0};
  std::size_t live_trackers_ = 0;
  std::size_t pending_restarts_ = 0;

  // Overload & elasticity state.
  std::unique_ptr<AdmissionController> admission_;
  std::vector<TrackerElasticState> elastic_state_;
  bool elastic_on_ = false;  ///< config_.elasticity.any_enabled(), cached
  std::vector<WorkflowResult> rejected_results_;
  std::size_t pending_joins_ = 0;  ///< scheduled-but-unfired join events
  std::uint64_t workflows_submitted_ = 0;
  std::uint64_t workflows_rejected_ = 0;
  std::uint64_t workflows_shed_ = 0;
  std::uint32_t pending_peak_ = 0;
  std::uint64_t decommissions_ = 0;
  std::uint64_t preemptions_ = 0;
  std::uint64_t trackers_joined_ = 0;
  std::uint64_t drain_migrated_ = 0;
  // Offered-capacity integral (slot-ms per slot type) for utilization
  // denominators under elastic membership; maintained only when
  // elastic_on_ (static capacity formula otherwise).
  double offered_slot_ms_[2] = {0.0, 0.0};
  std::int64_t current_capacity_[2] = {0, 0};
  SimTime last_capacity_change_ = 0;

  // Accounting for utilization: integral of busy slots over time.
  std::uint64_t tasks_executed_ = 0;
  std::uint64_t tasks_failed_ = 0;
  std::uint64_t local_maps_ = 0;
  std::uint64_t total_maps_ = 0;
  std::uint64_t select_calls_ = 0;
  double select_wall_ms_ = 0.0;
  SimTime first_submit_ = kTimeInfinity;
  double busy_ms_[2] = {0.0, 0.0};  // per SlotType: sum of task durations

  // Fault metrics.
  std::uint64_t tracker_crashes_ = 0;
  std::uint64_t attempts_killed_ = 0;
  std::uint64_t map_outputs_lost_ = 0;
  std::uint64_t workflows_failed_ = 0;
  std::uint64_t blacklistings_ = 0;
  std::uint64_t speculative_launched_ = 0;
  std::uint64_t speculative_won_ = 0;
  double speculative_wasted_ms_ = 0.0;
};

}  // namespace woha::hadoop

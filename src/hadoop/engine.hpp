// The simulation engine: wires the discrete-event core, the cluster, the
// JobTracker, and a WorkflowScheduler into a runnable experiment.
//
// Faithfulness notes (all observable in tests):
//  * Scheduling happens only on heartbeats: a slot freed mid-period is not
//    reassigned until its tracker's next heartbeat (Hadoop-1 behaviour;
//    paper: "scheduling events in WOHA are triggered by heartbeat
//    messages").
//  * Each heartbeat lets the scheduler fill every idle slot of that tracker
//    (Hadoop-1 assigns multiple tasks per heartbeat).
//  * Job activation models WOHA's submitter job: when a wjob's last
//    prerequisite finishes, it becomes schedulable only after
//    `activation_latency` (jar loading + task init on a slave).
//  * Actual task durations can deviate from the spec durations the
//    schedulers/plans see, via multiplicative log-normal jitter
//    (duration_jitter_sigma) and a systematic scale factor — used by the
//    estimation-error ablation bench.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "hadoop/cluster.hpp"
#include "hadoop/job_tracker.hpp"
#include "hadoop/scheduler.hpp"
#include "sim/simulation.hpp"

namespace woha::hadoop {

struct EngineConfig {
  ClusterConfig cluster;
  /// Delay between "all prerequisites finished" and "job schedulable"
  /// (submitter map task: jar load + split init). The paper's design shifts
  /// this cost off the master; it still takes wall-clock time on a slave.
  Duration activation_latency = seconds(3);
  /// Multiplicative log-normal sigma applied to actual task durations
  /// (0 = deterministic: actual == estimated).
  double duration_jitter_sigma = 0.0;
  /// Systematic scale on actual durations (1.0 = estimates are unbiased).
  /// The plan generator always sees the *spec* durations, so values != 1
  /// model estimation error.
  double duration_scale = 1.0;
  /// RNG seed for duration jitter and tracker selection tie-breaks.
  std::uint64_t seed = 1;
  /// Stop the simulation at this time even if work remains (safety net).
  SimTime horizon = kTimeInfinity;

  // --- failure injection -------------------------------------------------
  /// Probability that a task attempt fails (at a uniformly random point of
  /// its execution). Failed attempts release their slot and the task
  /// returns to the pending pool, exactly like a Hadoop task retry.
  double task_failure_prob = 0.0;

  // --- data locality model ------------------------------------------------
  /// Factor applied to a map task's duration when it runs on a tracker that
  /// does not hold a replica of its input split (1.0 disables the model).
  /// Mirrors HDFS's node-local vs remote read cost.
  double remote_map_penalty = 1.0;
  /// HDFS replication factor used by the locality model.
  std::uint32_t hdfs_replication = 3;
};

/// One task start/finish observation, for slot-allocation timelines
/// (paper Fig. 14-19) and utilization accounting.
struct TaskEvent {
  SimTime time = 0;
  WorkflowId workflow;
  JobRef job;
  SlotType slot = SlotType::kMap;
  bool started = true;  ///< false == attempt ended (success or failure)
  bool failed = false;  ///< only meaningful when started == false
  /// Actual execution time of the attempt; set on finish events (0 on
  /// start events). Feeds history-based task-time estimators.
  Duration duration = 0;
};

/// Final per-workflow outcome.
struct WorkflowResult {
  WorkflowId id;
  std::string name;
  SimTime submit_time = 0;
  SimTime deadline = kTimeInfinity;
  SimTime finish_time = -1;       ///< -1 if unfinished at horizon
  Duration workspan = -1;         ///< finish - submit
  Duration tardiness = 0;         ///< max(0, finish - deadline)
  bool met_deadline = false;
};

struct RunSummary {
  std::vector<WorkflowResult> workflows;
  SimTime makespan = 0;              ///< last finish time
  double deadline_miss_ratio = 0.0;  ///< misses / workflows-with-deadline
  Duration max_tardiness = 0;
  Duration total_tardiness = 0;
  double map_slot_utilization = 0.0;     ///< busy map-slot-time / offered
  double reduce_slot_utilization = 0.0;  ///< busy reduce-slot-time / offered
  double overall_utilization = 0.0;
  std::uint64_t tasks_executed = 0;  ///< attempts started (incl. retried)
  std::uint64_t tasks_failed = 0;    ///< attempts that failed and retried
  std::uint64_t events_fired = 0;
  /// Master-side scheduling overhead: WorkflowScheduler::select_task calls
  /// and the wall-clock time spent inside them (the paper's claim that the
  /// plan-following scheduler adds negligible master overhead).
  std::uint64_t select_calls = 0;
  double select_wall_ms = 0.0;
  /// Fraction of map tasks that ran node-local (1.0 when the locality
  /// model is disabled).
  double map_locality_ratio = 1.0;
};

class Engine {
 public:
  Engine(EngineConfig config, std::unique_ptr<WorkflowScheduler> scheduler);

  /// Queue a workflow for submission at spec.submit_time. Must be called
  /// before run().
  void submit(wf::WorkflowSpec spec);

  /// Optional observer invoked on every task start/finish (timelines).
  void set_task_observer(std::function<void(const TaskEvent&)> observer) {
    task_observer_ = std::move(observer);
  }

  /// Run to completion (or to config.horizon).
  void run();

  [[nodiscard]] const JobTracker& job_tracker() const { return job_tracker_; }
  [[nodiscard]] const Cluster& cluster() const { return cluster_; }
  [[nodiscard]] const WorkflowScheduler& scheduler() const { return *scheduler_; }
  [[nodiscard]] SimTime now() const { return sim_.now(); }

  /// Collect results after run().
  [[nodiscard]] RunSummary summarize() const;

 private:
  void do_submit(wf::WorkflowSpec spec);
  void heartbeat(std::size_t tracker_index);
  void activate_job(JobRef ref);
  void start_task(JobRef ref, SlotType type, std::size_t tracker_index);
  void finish_task(JobRef ref, SlotType type, std::size_t tracker_index,
                   bool failed, Duration duration);
  [[nodiscard]] Duration actual_duration(Duration estimated);
  /// True when the map input split of the next task of `ref` has a replica
  /// on `tracker_index` under the randomized HDFS placement model.
  [[nodiscard]] bool map_is_local(JobRef ref, std::size_t tracker_index);

  EngineConfig config_;
  sim::Simulation sim_;
  Cluster cluster_;
  JobTracker job_tracker_;
  std::unique_ptr<WorkflowScheduler> scheduler_;
  Rng rng_;
  std::vector<wf::WorkflowSpec> pending_submissions_;
  std::function<void(const TaskEvent&)> task_observer_;
  bool started_ = false;

  // Accounting for utilization: integral of busy slots over time.
  std::uint64_t tasks_executed_ = 0;
  std::uint64_t tasks_failed_ = 0;
  std::uint64_t local_maps_ = 0;
  std::uint64_t total_maps_ = 0;
  std::uint64_t select_calls_ = 0;
  double select_wall_ms_ = 0.0;
  SimTime first_submit_ = kTimeInfinity;
  double busy_ms_[2] = {0.0, 0.0};  // per SlotType: sum of task durations
};

}  // namespace woha::hadoop

#include "hadoop/fault.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <string>

namespace woha::hadoop {

void FaultConfig::validate(std::size_t tracker_count) const {
  if (tracker_mtbf < 0.0) {
    throw std::invalid_argument("FaultConfig: tracker_mtbf must be >= 0");
  }
  if (tracker_restart_delay < 0) {
    throw std::invalid_argument("FaultConfig: negative tracker_restart_delay");
  }
  if (expiry_interval <= 0) {
    throw std::invalid_argument("FaultConfig: expiry_interval must be positive");
  }
  if (speculative_slowness <= 1.0) {
    throw std::invalid_argument("FaultConfig: speculative_slowness must be > 1");
  }
  if (speculative_min_runtime < 0) {
    throw std::invalid_argument("FaultConfig: negative speculative_min_runtime");
  }

  // Explicit schedule: indices in range, outages well-formed and
  // non-overlapping per tracker (a node cannot crash while already down).
  std::map<std::uint32_t, std::vector<const TrackerFaultEvent*>> per_tracker;
  for (const TrackerFaultEvent& e : events) {
    if (e.tracker >= tracker_count) {
      throw std::invalid_argument("FaultConfig: event tracker index " +
                                  std::to_string(e.tracker) + " out of range");
    }
    if (e.crash_time < 0) {
      throw std::invalid_argument("FaultConfig: negative crash_time");
    }
    if (e.restart_time <= e.crash_time) {
      // Includes restart_time == crash_time: a zero-length outage would be
      // invisible to the master and can only be a schedule bug.
      throw std::invalid_argument("FaultConfig: restart_time must be after crash_time");
    }
    per_tracker[e.tracker].push_back(&e);
  }
  for (auto& [tracker, list] : per_tracker) {
    std::sort(list.begin(), list.end(),
              [](const TrackerFaultEvent* a, const TrackerFaultEvent* b) {
                return a->crash_time < b->crash_time;
              });
    for (std::size_t i = 1; i < list.size(); ++i) {
      if (list[i - 1]->restart_time > list[i]->crash_time) {
        throw std::invalid_argument(
            "FaultConfig: overlapping outages for tracker " + std::to_string(tracker));
      }
    }
  }
}

void ElasticityConfig::validate(std::size_t tracker_count) const {
  for (const TrackerDecommissionEvent& d : decommissions) {
    if (d.tracker >= tracker_count) {
      throw std::invalid_argument("ElasticityConfig: decommission tracker index " +
                                  std::to_string(d.tracker) + " out of range");
    }
    if (d.start_time < 0) {
      throw std::invalid_argument("ElasticityConfig: negative decommission start");
    }
    if (d.drain_lease <= 0) {
      throw std::invalid_argument(
          "ElasticityConfig: drain_lease must be positive");
    }
  }
  for (const PreemptionWave& w : preemption_waves) {
    if (w.time < 0) {
      throw std::invalid_argument("ElasticityConfig: negative preemption time");
    }
    if (w.count == 0) {
      throw std::invalid_argument(
          "ElasticityConfig: preemption wave count must be >= 1");
    }
    if (w.warning < 0) {
      throw std::invalid_argument("ElasticityConfig: negative preemption warning");
    }
  }
  for (const TrackerJoinEvent& j : joins) {
    if (j.time < 0) {
      throw std::invalid_argument("ElasticityConfig: negative join time");
    }
    if (j.count == 0) {
      throw std::invalid_argument("ElasticityConfig: join count must be >= 1");
    }
  }
  if (autoscaler.enabled) {
    if (autoscaler.check_period <= 0) {
      throw std::invalid_argument(
          "ElasticityConfig: autoscaler check_period must be positive");
    }
    if (autoscaler.step == 0) {
      throw std::invalid_argument("ElasticityConfig: autoscaler step must be >= 1");
    }
    if (autoscaler.min_trackers == 0) {
      throw std::invalid_argument(
          "ElasticityConfig: autoscaler min_trackers must be >= 1");
    }
    if (autoscaler.scale_in_pending > autoscaler.scale_out_pending) {
      throw std::invalid_argument(
          "ElasticityConfig: scale_in_pending > scale_out_pending would flap");
    }
    if (autoscaler.drain_lease <= 0) {
      throw std::invalid_argument(
          "ElasticityConfig: autoscaler drain_lease must be positive");
    }
  }
}

}  // namespace woha::hadoop

// The Workflow Scheduler interface (paper Fig. 1, "Workflow Scheduler" box).
//
// The JobTracker consults this object whenever a heartbeat reports idle
// slots. Implementations: the WOHA progress-based scheduler (src/core) and
// the three ported baselines FIFO / Fair / EDF (src/sched). Users swap
// implementations exactly like the paper's workflow-scheduler.xml switch —
// here by passing a different factory to the engine.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "hadoop/job.hpp"

namespace woha::obs {
class EventBus;
class MetricsRegistry;
}  // namespace woha::obs

namespace woha::hadoop {

class JobTracker;

/// One idle slot being offered to the scheduler. Hadoop-1's
/// assignTasks(TaskTracker) knows which slave is asking; per-job tracker
/// blacklisting needs that context, so the engine passes it along with an
/// optional eligibility filter (a job failing the filter must not be
/// returned for this slot — it may still run elsewhere).
struct SlotOffer {
  SlotType type = SlotType::kMap;
  std::size_t tracker = 0;
  const std::function<bool(JobRef)>* eligible = nullptr;  ///< null = no filter

  [[nodiscard]] bool allows(JobRef ref) const {
    return eligible == nullptr || (*eligible)(ref);
  }
};

class WorkflowScheduler {
 public:
  virtual ~WorkflowScheduler() = default;

  /// Human-readable name used in benchmark tables ("WOHA-LPF", "EDF", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Called once before the simulation starts; gives the scheduler read
  /// access to JobTracker state. The pointer outlives the scheduler.
  virtual void attach(const JobTracker* tracker) { tracker_ = tracker; }

  /// Observability hookup. The engine installs its event bus at
  /// construction (registry may arrive later, via
  /// Engine::set_metrics_registry). Schedulers publish decision traces on
  /// `bus` only while it is active, and record latency metrics only when
  /// `registry` is non-null — with neither, the hooks must cost nothing.
  virtual void observe(obs::EventBus* bus, obs::MetricsRegistry* registry) {
    bus_ = bus;
    metrics_ = registry;
  }

  /// Reports the cluster's slot capacity before the run. WOHA clients use
  /// this for plan generation (the "consult the JobTracker about the
  /// maximum number of slots" step); baselines ignore it.
  virtual void on_cluster_configured(std::uint32_t total_map_slots,
                                     std::uint32_t total_reduce_slots) {
    (void)total_map_slots;
    (void)total_reduce_slots;
  }

  /// The full list of workflows the run will submit, in submission order,
  /// delivered once before the first simulated event. Lets a scheduler
  /// precompute per-workflow artifacts off the critical path (WOHA prewarms
  /// its plan cache on a thread pool). Implementations must not change
  /// observable scheduling behaviour: results may only be installed where a
  /// later on_workflow_submitted would recompute them bit-identically. The
  /// engine only calls this when every listed spec is guaranteed to reach
  /// on_workflow_submitted (admission control disabled).
  virtual void on_pending_submissions(const std::vector<wf::WorkflowSpec>& specs) {
    (void)specs;
  }

  /// A new workflow arrived (its configuration — and, for WOHA, its
  /// scheduling plan — is now on the master).
  virtual void on_workflow_submitted(WorkflowId wf, SimTime now) = 0;

  /// Job became schedulable (its submitter task finished loading it).
  virtual void on_job_activated(JobRef job, SimTime now) = 0;

  /// One task of `job` finished and its slot was released. Schedulers that
  /// balance running-task counts (Fair) listen to this.
  virtual void on_task_finished(JobRef job, SlotType t, SimTime now) {
    (void)job;
    (void)t;
    (void)now;
  }

  /// Job finished all tasks.
  virtual void on_job_completed(JobRef job, SimTime now) {
    (void)job;
    (void)now;
  }

  /// All jobs of the workflow finished.
  virtual void on_workflow_completed(WorkflowId wf, SimTime now) {
    (void)wf;
    (void)now;
  }

  /// A task of the workflow exhausted its attempt budget and the workflow
  /// failed permanently. Default: treat like completion (drop all state) —
  /// the failed workflow must never be scheduled again.
  virtual void on_workflow_failed(WorkflowId wf, SimTime now) {
    on_workflow_completed(wf, now);
  }

  /// `count` previously-scheduled tasks of `job` were lost to a node fault
  /// (running attempts killed, or completed map outputs invalidated) and
  /// returned to the pending pool. Progress-based schedulers (WOHA) use
  /// this to regress rho; slot-count schedulers can ignore it (the engine
  /// reports freed slots through on_task_finished separately).
  virtual void on_tasks_lost(JobRef job, SlotType t, std::uint32_t count,
                             SimTime now) {
    (void)job;
    (void)t;
    (void)count;
    (void)now;
  }

  /// Pick the job whose task should occupy the offered slot. Contract: the
  /// returned job must satisfy has_available(slot.type) AND
  /// slot.allows(ref); the engine WILL start exactly one task of it (so
  /// implementations may update their progress accounting before
  /// returning). Return nullopt to leave the slot idle until the next
  /// heartbeat.
  virtual std::optional<JobRef> select_task(const SlotOffer& slot, SimTime now) = 0;

  /// Fill up to `limit` identical slots in one consult. Must be
  /// decision-equivalent to up to `limit` successive select_task calls with
  /// the engine starting one task after each: `start(ref)` is invoked per
  /// pick (the engine's callback starts the task on slot.tracker, which may
  /// change what is available for the next pick). Returns the number of
  /// tasks started; a return < limit means the final consult came up empty,
  /// which the engine may memoize for the rest of the heartbeat batch. The
  /// default simply loops select_task — baselines inherit it unchanged;
  /// WOHA overrides it to amortize queue-ordering maintenance and probe
  /// rejections across the batch.
  virtual std::uint32_t select_tasks(const SlotOffer& slot, std::uint32_t limit,
                                     const std::function<void(JobRef)>& start,
                                     SimTime now);

 protected:
  /// O(1) hot-path guard: true when no job anywhere in the cluster has an
  /// assignable task of this slot type, so a queue scan cannot possibly
  /// return one. Disabled while decision tracing is on — the trace records
  /// the considered ranking even for empty offers, and skipping the scan
  /// would drop those records. Implemented in scheduler.cpp (needs the full
  /// JobTracker definition).
  [[nodiscard]] bool nothing_available(SlotType t) const;

  const JobTracker* tracker_ = nullptr;
  obs::EventBus* bus_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace woha::hadoop

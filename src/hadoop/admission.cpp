#include "hadoop/admission.hpp"

#include <algorithm>
#include <stdexcept>

#include "hadoop/job_tracker.hpp"
#include "workflow/analysis.hpp"

namespace woha::hadoop {

const char* to_string(AdmissionPolicy policy) {
  switch (policy) {
    case AdmissionPolicy::kAdmitAll: return "admit-all";
    case AdmissionPolicy::kRejectInfeasible: return "reject-infeasible";
    case AdmissionPolicy::kShedLatestDeadlineFirst:
      return "shed-latest-deadline-first";
  }
  return "?";
}

void AdmissionConfig::validate() const {
  if (feasibility_margin <= 0.0) {
    throw std::invalid_argument(
        "AdmissionConfig: feasibility_margin must be positive");
  }
  if (policy == AdmissionPolicy::kShedLatestDeadlineFirst &&
      max_pending_workflows == 0) {
    throw std::invalid_argument(
        "AdmissionConfig: shed_latest_deadline_first needs a pending budget "
        "(max_pending_workflows > 0)");
  }
}

AdmissionController::AdmissionController(AdmissionConfig config,
                                         const JobTracker* tracker,
                                         std::uint32_t total_slots)
    : config_(config), tracker_(tracker), total_slots_(total_slots) {
  config_.validate();
  if (tracker == nullptr) {
    throw std::invalid_argument("AdmissionController: tracker is null");
  }
  if (total_slots == 0) {
    throw std::invalid_argument("AdmissionController: total_slots must be >= 1");
  }
}

std::uint32_t AdmissionController::pending() const {
  return tracker_->active_workflows();
}

double AdmissionController::remaining_backlog_ms() const {
  double backlog = 0.0;
  for (const auto& wf_ptr : tracker_->workflows()) {
    const WorkflowRuntime& w = *wf_ptr;
    if (w.finished() || w.failed()) continue;
    for (std::uint32_t j = 0; j < w.job_count(); ++j) {
      const JobInProgress& job = w.job(j);
      const auto& spec = job.spec();
      const auto maps_left = spec.num_maps - job.finished(SlotType::kMap);
      const auto reduces_left = spec.num_reduces - job.finished(SlotType::kReduce);
      backlog += static_cast<double>(maps_left) *
                 static_cast<double>(spec.map_duration);
      backlog += static_cast<double>(reduces_left) *
                 static_cast<double>(spec.reduce_duration);
    }
  }
  return backlog;
}

AdmissionDecision AdmissionController::decide(const wf::WorkflowSpec& spec,
                                              SimTime now) const {
  switch (config_.policy) {
    case AdmissionPolicy::kAdmitAll:
      return {};
    case AdmissionPolicy::kShedLatestDeadlineFirst:
      // Everything is admitted; the budget is enforced by shedding after
      // the fact (the newcomer itself may be the victim).
      return {};
    case AdmissionPolicy::kRejectInfeasible:
      break;
  }

  if (config_.max_pending_workflows > 0 &&
      pending() >= config_.max_pending_workflows) {
    return {false, "pending-budget"};
  }
  if (spec.relative_deadline <= 0) return {};  // no deadline: always feasible

  // Deadlines are submit-relative, so time-to-deadline at the submission
  // instant is exactly the relative deadline.
  (void)now;
  const auto ttd = static_cast<double>(spec.relative_deadline);
  const double lower_bound =
      std::max(static_cast<double>(wf::critical_path_length(spec)),
               (remaining_backlog_ms() + static_cast<double>(wf::total_work(spec))) /
                   static_cast<double>(total_slots_));
  if (lower_bound > ttd * config_.feasibility_margin) {
    return {false, "infeasible"};
  }
  return {};
}

std::optional<std::uint32_t> AdmissionController::pick_shed_victim() const {
  if (config_.policy != AdmissionPolicy::kShedLatestDeadlineFirst) {
    return std::nullopt;
  }
  std::optional<std::uint32_t> victim;
  SimTime victim_deadline = -1;
  for (const auto& wf_ptr : tracker_->workflows()) {
    const WorkflowRuntime& w = *wf_ptr;
    if (w.finished() || w.failed()) continue;
    const SimTime d = w.deadline();
    // Latest deadline first; ties go to the higher (younger) id, which the
    // ascending scan realizes with >=.
    if (!victim || d >= victim_deadline) {
      victim = w.id().value();
      victim_deadline = d;
    }
  }
  return victim;
}

}  // namespace woha::hadoop

// Node-level fault model: TaskTracker churn, loss detection, attempt
// limits, blacklisting, and speculative execution.
//
// Hadoop-1 semantics modelled here (defaults in parentheses):
//  * A crashed TaskTracker stops heartbeating; the JobTracker only learns of
//    the loss when the tracker's lease expires (`expiry_interval`, 10 min —
//    mapred.tasktracker.expiry.interval) or when the node re-registers after
//    a reboot, whichever comes first.
//  * On detection, running attempts on the node are lost and re-queued, and
//    completed map outputs of in-flight jobs are invalidated: map outputs
//    live on the slave's local disk in Hadoop-1, so unfetched partitions die
//    with the node and the maps re-execute.
//  * Attempts killed by node loss do NOT count against `max_attempts`
//    (Hadoop's KILLED vs FAILED distinction); injected task failures do.
//  * After `blacklist_task_failures` failures of one job's tasks on one
//    tracker, that tracker is blacklisted for that job
//    (mapred.max.tracker.failures).
//  * Speculative execution launches a backup attempt for stragglers;
//    first finish wins and the loser is killed (LATE-style, OSDI'08).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace woha::hadoop {

/// One scheduled TaskTracker outage. `restart_time == kTimeInfinity` means
/// the node never comes back.
struct TrackerFaultEvent {
  std::uint32_t tracker = 0;
  SimTime crash_time = 0;
  SimTime restart_time = kTimeInfinity;
};

struct FaultConfig {
  /// Explicit outage schedule (validated: per-tracker chronological,
  /// non-overlapping).
  std::vector<TrackerFaultEvent> events;
  /// Mean time between failures per tracker in ms; > 0 enables MTBF-driven
  /// crashes (exponential inter-crash times drawn from an independent,
  /// per-tracker RNG stream seeded by `seed`).
  double tracker_mtbf = 0.0;
  /// Downtime of an MTBF-driven crash before the node reboots and
  /// re-registers.
  Duration tracker_restart_delay = minutes(2);
  /// JobTracker lease: a silent tracker is declared lost this long after
  /// its crash (Hadoop-1 default 10 min).
  Duration expiry_interval = minutes(10);
  /// Per-task attempt budget; exceeding it fails the task, its job, and its
  /// workflow. 0 = unlimited retries (the pre-fault-model behaviour; Hadoop
  /// defaults to 4 — see DESIGN.md "Fault model" for the deviation).
  std::uint32_t max_attempts = 0;
  /// Failures of one job's tasks on one tracker before that tracker is
  /// blacklisted for the job. 0 = blacklisting off (Hadoop-1 default 4).
  std::uint32_t blacklist_task_failures = 0;
  /// Launch backup attempts for stragglers (first finish wins).
  bool speculative_execution = false;
  /// An attempt is a straggler once its projected runtime exceeds
  /// `speculative_slowness` x the spec estimate and a fresh backup would
  /// finish earlier than the original's projected completion.
  double speculative_slowness = 1.5;
  /// Never speculate an attempt younger than this (Hadoop waits a minute
  /// for progress reports to stabilise).
  Duration speculative_min_runtime = seconds(30);
  /// Seed of the fault-injection RNG stream. Kept separate from
  /// EngineConfig::seed so enabling churn never perturbs task-duration or
  /// locality draws.
  std::uint64_t seed = 0x5eedfau;

  /// True when any tracker can crash.
  [[nodiscard]] bool churn_enabled() const {
    return !events.empty() || tracker_mtbf > 0.0;
  }
  /// True when any part of the fault model changes engine behaviour.
  [[nodiscard]] bool any_enabled() const {
    return churn_enabled() || speculative_execution || max_attempts > 0 ||
           blacklist_task_failures > 0;
  }

  /// Throws std::invalid_argument on nonsensical settings; `tracker_count`
  /// bounds event tracker indices. Zero-length outages (restart_time ==
  /// crash_time) are rejected along with inverted ones: an outage the
  /// master could never observe is a schedule bug, not a no-op.
  void validate(std::size_t tracker_count) const;
};

// ---- elastic membership -----------------------------------------------------
//
// Capacity changes beyond crash/restart churn: operators drain nodes out
// gracefully, spot markets preempt them with a short warning, and fresh
// nodes join a running cluster. All three are first-class, deterministic
// schedule entries; the autoscaler turns backlog pressure into the same
// drain/join primitives at runtime.

/// Graceful decommission: at start_time the tracker stops accepting work
/// (it leaves the freelists but keeps heartbeating its running attempts).
/// Attempts that finish within `drain_lease` migrate nothing; when the
/// lease expires, the stragglers are killed and re-queued and the node
/// retires. Unlike a crash, the master participates from the first instant.
struct TrackerDecommissionEvent {
  std::uint32_t tracker = 0;
  SimTime start_time = 0;
  Duration drain_lease = minutes(2);
};

/// Spot-style preemption wave: at `time`, the `count` highest-indexed live
/// trackers receive a termination warning. They stop accepting work
/// immediately and are killed `warning` later — running attempts are
/// re-queued at termination without any lease-expiry delay (the warning IS
/// the detection), which is what distinguishes preemption from crash loss.
/// Preempted trackers never come back.
struct PreemptionWave {
  SimTime time = 0;
  std::uint32_t count = 0;
  Duration warning = seconds(120);
};

/// `count` fresh trackers (the cluster's per-tracker slot shape) register
/// with the master at `time` and are immediately eligible for work.
struct TrackerJoinEvent {
  SimTime time = 0;
  std::uint32_t count = 1;
};

/// Pending-backlog autoscaler: every `check_period` the engine samples the
/// admitted-unfinished workflow count (the same progress-lag signal the
/// admission controller budgets) and scales out by `step` joins above
/// `scale_out_pending`, or drains `step` trackers below `scale_in_pending`.
/// EngineConfig::autoscale_policy can replace the threshold rule wholesale.
struct AutoscalerConfig {
  bool enabled = false;
  Duration check_period = seconds(30);
  /// Join `step` trackers when pending workflows exceed this.
  std::uint32_t scale_out_pending = 8;
  /// Drain one tracker when pending workflows drop below this.
  std::uint32_t scale_in_pending = 1;
  std::uint32_t step = 1;
  /// Never scale past this many trackers (0 = 4x the initial count).
  std::uint32_t max_trackers = 0;
  /// Never drain below this many live trackers.
  std::uint32_t min_trackers = 1;
  /// Drain lease used for autoscaler-initiated decommissions.
  Duration drain_lease = minutes(2);
};

struct ElasticityConfig {
  std::vector<TrackerDecommissionEvent> decommissions;
  std::vector<PreemptionWave> preemption_waves;
  std::vector<TrackerJoinEvent> joins;
  AutoscalerConfig autoscaler;

  /// True when any part changes engine behaviour.
  [[nodiscard]] bool any_enabled() const {
    return !decommissions.empty() || !preemption_waves.empty() ||
           !joins.empty() || autoscaler.enabled;
  }

  /// Throws std::invalid_argument on nonsensical settings; `tracker_count`
  /// bounds decommission tracker indices.
  void validate(std::size_t tracker_count) const;
};

}  // namespace woha::hadoop

// Node-level fault model: TaskTracker churn, loss detection, attempt
// limits, blacklisting, and speculative execution.
//
// Hadoop-1 semantics modelled here (defaults in parentheses):
//  * A crashed TaskTracker stops heartbeating; the JobTracker only learns of
//    the loss when the tracker's lease expires (`expiry_interval`, 10 min —
//    mapred.tasktracker.expiry.interval) or when the node re-registers after
//    a reboot, whichever comes first.
//  * On detection, running attempts on the node are lost and re-queued, and
//    completed map outputs of in-flight jobs are invalidated: map outputs
//    live on the slave's local disk in Hadoop-1, so unfetched partitions die
//    with the node and the maps re-execute.
//  * Attempts killed by node loss do NOT count against `max_attempts`
//    (Hadoop's KILLED vs FAILED distinction); injected task failures do.
//  * After `blacklist_task_failures` failures of one job's tasks on one
//    tracker, that tracker is blacklisted for that job
//    (mapred.max.tracker.failures).
//  * Speculative execution launches a backup attempt for stragglers;
//    first finish wins and the loser is killed (LATE-style, OSDI'08).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace woha::hadoop {

/// One scheduled TaskTracker outage. `restart_time == kTimeInfinity` means
/// the node never comes back.
struct TrackerFaultEvent {
  std::uint32_t tracker = 0;
  SimTime crash_time = 0;
  SimTime restart_time = kTimeInfinity;
};

struct FaultConfig {
  /// Explicit outage schedule (validated: per-tracker chronological,
  /// non-overlapping).
  std::vector<TrackerFaultEvent> events;
  /// Mean time between failures per tracker in ms; > 0 enables MTBF-driven
  /// crashes (exponential inter-crash times drawn from an independent,
  /// per-tracker RNG stream seeded by `seed`).
  double tracker_mtbf = 0.0;
  /// Downtime of an MTBF-driven crash before the node reboots and
  /// re-registers.
  Duration tracker_restart_delay = minutes(2);
  /// JobTracker lease: a silent tracker is declared lost this long after
  /// its crash (Hadoop-1 default 10 min).
  Duration expiry_interval = minutes(10);
  /// Per-task attempt budget; exceeding it fails the task, its job, and its
  /// workflow. 0 = unlimited retries (the pre-fault-model behaviour; Hadoop
  /// defaults to 4 — see DESIGN.md "Fault model" for the deviation).
  std::uint32_t max_attempts = 0;
  /// Failures of one job's tasks on one tracker before that tracker is
  /// blacklisted for the job. 0 = blacklisting off (Hadoop-1 default 4).
  std::uint32_t blacklist_task_failures = 0;
  /// Launch backup attempts for stragglers (first finish wins).
  bool speculative_execution = false;
  /// An attempt is a straggler once its projected runtime exceeds
  /// `speculative_slowness` x the spec estimate and a fresh backup would
  /// finish earlier than the original's projected completion.
  double speculative_slowness = 1.5;
  /// Never speculate an attempt younger than this (Hadoop waits a minute
  /// for progress reports to stabilise).
  Duration speculative_min_runtime = seconds(30);
  /// Seed of the fault-injection RNG stream. Kept separate from
  /// EngineConfig::seed so enabling churn never perturbs task-duration or
  /// locality draws.
  std::uint64_t seed = 0x5eedfau;

  /// True when any tracker can crash.
  [[nodiscard]] bool churn_enabled() const {
    return !events.empty() || tracker_mtbf > 0.0;
  }
  /// True when any part of the fault model changes engine behaviour.
  [[nodiscard]] bool any_enabled() const {
    return churn_enabled() || speculative_execution || max_attempts > 0 ||
           blacklist_task_failures > 0;
  }

  /// Throws std::invalid_argument on nonsensical settings; `tracker_count`
  /// bounds event tracker indices.
  void validate(std::size_t tracker_count) const;
};

}  // namespace woha::hadoop

// Admission control and deadline-aware load shedding.
//
// Under open-loop rho > 1 traffic (trace/arrivals.hpp) the pending-workflow
// set grows without bound: every admitted workflow holds plan state on the
// master and dilutes every other workflow's slot share, so *all* deadlines
// start missing. The controller here decides, at submission time, whether a
// workflow may enter the JobTracker at all:
//
//  * kAdmitAll                — today's behaviour; the controller is inert.
//  * kRejectInfeasible        — turn away workflows whose deadline cannot be
//                               met even under an optimistic lower bound,
//                               and anything above the pending budget.
//  * kShedLatestDeadlineFirst — admit everything, but when the pending set
//                               exceeds the budget, kill the admitted
//                               workflow with the latest deadline (the one
//                               we are least committed to) until the set
//                               fits. The engine owns the killing; the
//                               controller only picks victims.
//
// The feasibility test mirrors the WOHA plan's two lower bounds (the same
// quantities the F-value construction starts from): no schedule can beat
// the critical path, and no cluster can do backlog + new work faster than
// total_slots allows. Workflow W with deadline D is feasible at time t iff
//
//   max(critical_path(W), (remaining_backlog + total_work(W)) / slots)
//     <= (D - t) * feasibility_margin
//
// where remaining_backlog is the admitted-but-unfinished work still owed —
// the aggregate progress-lag of the admitted set, recomputed from
// JobTracker ground truth at each decision (submissions are rare relative
// to heartbeats, so the scan is off the hot path).
//
// Everything is deterministic: decisions are pure functions of JobTracker
// state, and victim selection breaks ties by workflow id.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/types.hpp"
#include "workflow/workflow.hpp"

namespace woha::hadoop {

class JobTracker;

enum class AdmissionPolicy : std::uint8_t {
  kAdmitAll,
  kRejectInfeasible,
  kShedLatestDeadlineFirst,
};

[[nodiscard]] const char* to_string(AdmissionPolicy policy);

struct AdmissionConfig {
  AdmissionPolicy policy = AdmissionPolicy::kAdmitAll;
  /// Pending-workflow budget (admitted and unfinished). 0 = unbounded —
  /// allowed for kRejectInfeasible (feasibility alone gates admission),
  /// required > 0 for kShedLatestDeadlineFirst (the budget is its only
  /// trigger). Ignored under kAdmitAll.
  std::uint32_t max_pending_workflows = 0;
  /// Scale on time-to-deadline in the feasibility test; < 1 rejects earlier
  /// (reserves headroom for activation latency and heartbeat granularity),
  /// > 1 admits optimistically.
  double feasibility_margin = 1.0;

  /// True when the controller changes engine behaviour at all.
  [[nodiscard]] bool enabled() const {
    return policy != AdmissionPolicy::kAdmitAll;
  }
  /// Throws std::invalid_argument on nonsensical settings.
  void validate() const;
};

/// Why a submission was turned away (stable strings for obs payloads).
struct AdmissionDecision {
  bool admit = true;
  const char* reason = "";  ///< "infeasible" or "pending-budget" when !admit
};

class AdmissionController {
 public:
  AdmissionController(AdmissionConfig config, const JobTracker* tracker,
                      std::uint32_t total_slots);

  /// Decide whether `spec`, submitted at `now`, may enter the JobTracker.
  /// Does not mutate anything; the engine records the outcome.
  [[nodiscard]] AdmissionDecision decide(const wf::WorkflowSpec& spec,
                                         SimTime now) const;

  /// The admitted-unfinished workflow the shedding policy would evict:
  /// latest deadline first (kTimeInfinity counts as latest), ties broken by
  /// higher id (most recently admitted goes first). nullopt when nothing is
  /// pending or the policy does not shed.
  [[nodiscard]] std::optional<std::uint32_t> pick_shed_victim() const;

  /// Admitted-and-unfinished workflow count (the "pending" the budget caps).
  [[nodiscard]] std::uint32_t pending() const;

  /// Serial work (ms) still owed by admitted, unfinished workflows:
  /// unfinished tasks times their spec durations. The aggregate
  /// progress-lag term of the feasibility bound.
  [[nodiscard]] double remaining_backlog_ms() const;

  [[nodiscard]] const AdmissionConfig& config() const { return config_; }

 private:
  AdmissionConfig config_;
  const JobTracker* tracker_;
  std::uint32_t total_slots_;
};

}  // namespace woha::hadoop

#include "hadoop/job.hpp"

#include <stdexcept>

namespace woha::hadoop {

void JobInProgress::sync_avail() {
  for (const SlotType t : {SlotType::kMap, SlotType::kReduce}) {
    const auto s = static_cast<std::size_t>(t);
    const bool now_avail = has_available(t);
    if (now_avail != avail_cached_[s]) {
      avail_cached_[s] = now_avail;
      if (owner_) owner_->on_job_avail_changed(t, now_avail ? +1 : -1);
    }
  }
}

void JobInProgress::mark_active(SimTime now) {
  if (state_ == JobState::kActive || state_ == JobState::kComplete) {
    throw std::logic_error("JobInProgress::mark_active: already active/complete");
  }
  state_ = JobState::kActive;
  activation_time_ = now;
  sync_avail();
}

std::uint32_t JobInProgress::start_task(SlotType t) {
  if (!has_available(t)) {
    throw std::logic_error("JobInProgress::start_task: no available " +
                           std::string(to_string(t)) + " task");
  }
  // Serve the most-retried pending task first (Hadoop schedules failed
  // tasks ahead of fresh ones).
  auto& buckets = pending_by_retry_[static_cast<std::size_t>(t)];
  std::uint32_t level = static_cast<std::uint32_t>(buckets.size());
  do {
    --level;
  } while (level > 0 && buckets[level] == 0);
  if (buckets[level] == 0) {
    throw std::logic_error("JobInProgress::start_task: retry buckets out of sync");
  }
  --buckets[level];
  if (t == SlotType::kMap) {
    --pending_maps_;
    ++running_maps_;
  } else {
    --pending_reduces_;
    ++running_reduces_;
  }
  sync_avail();
  return level;
}

void JobInProgress::add_pending(SlotType t, std::uint32_t retry_level,
                                std::uint32_t count) {
  auto& buckets = pending_by_retry_[static_cast<std::size_t>(t)];
  if (buckets.size() <= retry_level) buckets.resize(retry_level + 1, 0);
  buckets[retry_level] += count;
  if (t == SlotType::kMap) {
    pending_maps_ += count;
  } else {
    pending_reduces_ += count;
  }
}

void JobInProgress::fail_task(SlotType t, std::uint32_t retry_level) {
  if (t == SlotType::kMap) {
    if (running_maps_ == 0) {
      throw std::logic_error("JobInProgress::fail_task: no running map");
    }
    --running_maps_;
  } else {
    if (running_reduces_ == 0) {
      throw std::logic_error("JobInProgress::fail_task: no running reduce");
    }
    --running_reduces_;
  }
  add_pending(t, retry_level, 1);
  ++failed_attempts_;
  sync_avail();
}

void JobInProgress::requeue_running(SlotType t, std::uint32_t retry_level) {
  if (t == SlotType::kMap) {
    if (running_maps_ == 0) {
      throw std::logic_error("JobInProgress::requeue_running: no running map");
    }
    --running_maps_;
  } else {
    if (running_reduces_ == 0) {
      throw std::logic_error("JobInProgress::requeue_running: no running reduce");
    }
    --running_reduces_;
  }
  // Killed, not failed: same retry level, no failed_attempts_ charge.
  add_pending(t, retry_level, 1);
  sync_avail();
}

void JobInProgress::invalidate_finished_maps(std::uint32_t count) {
  if (state_ == JobState::kComplete) {
    throw std::logic_error(
        "JobInProgress::invalidate_finished_maps: job already complete");
  }
  if (count > finished_maps_) {
    throw std::logic_error(
        "JobInProgress::invalidate_finished_maps: more outputs than finished maps");
  }
  finished_maps_ -= count;
  // Re-executions are fresh attempts of tasks that already succeeded once;
  // they re-enter at retry level 0 (lost outputs carry no failure history).
  add_pending(SlotType::kMap, 0, count);
  sync_avail();
}

void JobInProgress::mark_failed() {
  state_ = JobState::kFailed;
  sync_avail();
}

bool JobInProgress::finish_task(SlotType t, SimTime now) {
  if (t == SlotType::kMap) {
    if (running_maps_ == 0) {
      throw std::logic_error("JobInProgress::finish_task: no running map");
    }
    --running_maps_;
    ++finished_maps_;
  } else {
    if (running_reduces_ == 0) {
      throw std::logic_error("JobInProgress::finish_task: no running reduce");
    }
    --running_reduces_;
    ++finished_reduces_;
  }
  const bool all_done =
      finished_maps_ == spec_->num_maps && finished_reduces_ == spec_->num_reduces;
  bool completed = false;
  if (all_done && state_ != JobState::kComplete) {
    state_ = JobState::kComplete;
    finish_time_ = now;
    completed = true;
  }
  sync_avail();
  return completed;
}

WorkflowRuntime::WorkflowRuntime(WorkflowId id, wf::WorkflowSpec spec,
                                 SimTime submit_time)
    : id_(id), spec_(std::move(spec)), submit_time_(submit_time) {
  wf::validate(spec_);
  deadline_ = spec_.relative_deadline > 0 ? submit_time_ + spec_.relative_deadline
                                          : kTimeInfinity;
  const std::uint32_t n = static_cast<std::uint32_t>(spec_.jobs.size());
  jobs_.reserve(n);
  remaining_prereqs_.reserve(n);
  for (std::uint32_t j = 0; j < n; ++j) {
    jobs_.emplace_back(JobRef{id_.value(), j}, spec_.jobs[j]);
    jobs_.back().owner_ = this;
    remaining_prereqs_.push_back(
        static_cast<std::uint32_t>(spec_.jobs[j].prerequisites.size()));
  }
  dependents_ = wf::dependents(spec_);
  unfinished_jobs_ = n;
}

std::vector<std::uint32_t> WorkflowRuntime::on_job_complete(std::uint32_t j,
                                                            SimTime now) {
  if (!jobs_[j].complete()) {
    throw std::logic_error("WorkflowRuntime::on_job_complete: job not complete");
  }
  if (unfinished_jobs_ == 0) {
    throw std::logic_error("WorkflowRuntime::on_job_complete: workflow already done");
  }
  --unfinished_jobs_;
  std::vector<std::uint32_t> unlocked;
  for (std::uint32_t d : dependents_[j]) {
    if (remaining_prereqs_[d] == 0) {
      throw std::logic_error("WorkflowRuntime: dependent prereq counter underflow");
    }
    if (--remaining_prereqs_[d] == 0) unlocked.push_back(d);
  }
  if (unfinished_jobs_ == 0) finish_time_ = now;
  return unlocked;
}

void WorkflowRuntime::on_job_avail_changed(SlotType t, int delta) {
  auto& count = avail_jobs_[static_cast<std::size_t>(t)];
  if (delta < 0 && count == 0) {
    throw std::logic_error("WorkflowRuntime: availability count underflow");
  }
  count += static_cast<std::uint32_t>(delta);
  if (listener_) listener_->on_available_jobs_changed(id_, t, delta);
}

void WorkflowRuntime::mark_failed(SimTime now) {
  if (finished()) {
    throw std::logic_error("WorkflowRuntime::mark_failed: workflow already finished");
  }
  if (failed_) return;
  failed_ = true;
  fail_time_ = now;
  for (JobInProgress& job : jobs_) {
    if (!job.complete()) job.mark_failed();
  }
}

void WorkflowRuntime::mark_shed(SimTime now) {
  if (failed_) return;  // already torn down; keep the original cause
  shed_ = true;
  mark_failed(now);
}

}  // namespace woha::hadoop

// The (simulated) JobTracker: the master-node bookkeeping for workflows,
// wjobs, and their dependency-driven activation. The engine owns the clock;
// this class owns the state.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "hadoop/job.hpp"

namespace woha::obs {
class EventBus;
}  // namespace woha::obs

namespace woha::hadoop {

class JobTracker : public AvailabilityListener {
 public:
  /// Register a workflow at its submission time; returns its WorkflowId
  /// (dense index, as in paper step (f): "gets a unique workflow ID").
  /// Publishes obs::WorkflowSubmitted when an event bus is attached.
  WorkflowId add_workflow(wf::WorkflowSpec spec, SimTime now);

  /// Attach the run's event bus (the engine does this at construction).
  void set_event_bus(obs::EventBus* bus) { bus_ = bus; }

  [[nodiscard]] std::size_t workflow_count() const { return workflows_.size(); }
  [[nodiscard]] WorkflowRuntime& workflow(WorkflowId id) {
    return *workflows_.at(id.value());
  }
  [[nodiscard]] const WorkflowRuntime& workflow(WorkflowId id) const {
    return *workflows_.at(id.value());
  }
  [[nodiscard]] JobInProgress& job(JobRef ref) {
    return workflows_.at(ref.workflow)->job(ref.job);
  }
  [[nodiscard]] const JobInProgress& job(JobRef ref) const {
    return workflows_.at(ref.workflow)->job(ref.job);
  }

  /// All workflows, in submission order.
  [[nodiscard]] const std::vector<std::unique_ptr<WorkflowRuntime>>& workflows() const {
    return workflows_;
  }

  /// Workflows not yet finished.
  [[nodiscard]] std::uint32_t active_workflows() const { return active_workflows_; }
  void count_workflow_finished() { --active_workflows_; }

  /// Cluster-global count of jobs with has_available(t), across every
  /// workflow. Maintained incrementally by the per-job availability index;
  /// lets the heartbeat path answer "could ANY task use this slot?" in O(1)
  /// before consulting the scheduler's queue.
  [[nodiscard]] std::uint64_t available_jobs(SlotType t) const {
    return available_jobs_[static_cast<std::size_t>(t)];
  }

  void on_available_jobs_changed(WorkflowId wf, SlotType t, int delta) override;

 private:
  // unique_ptr: WorkflowRuntime addresses must stay stable across
  // submissions because schedulers hold references between calls.
  std::vector<std::unique_ptr<WorkflowRuntime>> workflows_;
  std::uint32_t active_workflows_ = 0;
  std::uint64_t available_jobs_[2] = {0, 0};
  obs::EventBus* bus_ = nullptr;
};

}  // namespace woha::hadoop

#include "hadoop/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "common/log.hpp"
#include "obs/scoped_timer.hpp"

namespace woha::hadoop {

Engine::Engine(EngineConfig config, std::unique_ptr<WorkflowScheduler> scheduler)
    : config_(config),
      cluster_(config.cluster),
      scheduler_(std::move(scheduler)),
      rng_(config.seed) {
  if (!scheduler_) throw std::invalid_argument("Engine: scheduler is null");
  if (config_.activation_latency < 0) {
    throw std::invalid_argument("Engine: negative activation latency");
  }
  if (config_.duration_scale <= 0.0) {
    throw std::invalid_argument("Engine: duration_scale must be positive");
  }
  if (config_.task_failure_prob < 0.0 || config_.task_failure_prob > 1.0) {
    throw std::invalid_argument("Engine: task_failure_prob must be in [0, 1]");
  }
  if (config_.remote_map_penalty < 1.0) {
    throw std::invalid_argument("Engine: remote_map_penalty must be >= 1");
  }
  if (config_.hdfs_replication == 0) {
    throw std::invalid_argument("Engine: hdfs_replication must be >= 1");
  }
  if (config_.cluster.heartbeat_period <= 0) {
    throw std::invalid_argument("Engine: heartbeat_period must be positive");
  }
  if (config_.heartbeat_batch == 0) {
    throw std::invalid_argument("Engine: heartbeat_batch must be >= 1");
  }
  config_.faults.validate(cluster_.tracker_count());
  config_.admission.validate();
  config_.elasticity.validate(cluster_.tracker_count());
  tracker_attempts_.resize(cluster_.tracker_count());
  fault_state_.resize(cluster_.tracker_count());
  map_outputs_.resize(cluster_.tracker_count());
  elastic_state_.resize(cluster_.tracker_count());
  live_trackers_ = cluster_.tracker_count();
  elastic_on_ = config_.elasticity.any_enabled();
  if (config_.admission.enabled()) {
    admission_ = std::make_unique<AdmissionController>(
        config_.admission, &job_tracker_, config_.cluster.total_slots());
  }
  // fail_workflow (attempt budgets) and shed_workflow both sweep the
  // per-workflow attempt index; maintain it iff either can run.
  index_by_workflow_ =
      config_.faults.max_attempts > 0 ||
      config_.admission.policy == AdmissionPolicy::kShedLatestDeadlineFirst;
  current_capacity_[0] = config_.cluster.total_map_slots();
  current_capacity_[1] = config_.cluster.total_reduce_slots();
  events_.set_time_source([this] { return sim_.now(); });
  job_tracker_.set_event_bus(&events_);
  scheduler_->attach(&job_tracker_);
  scheduler_->observe(&events_, nullptr);
  scheduler_->on_cluster_configured(config_.cluster.total_map_slots(),
                                    config_.cluster.total_reduce_slots());
}

void Engine::set_metrics_registry(obs::MetricsRegistry* registry) {
  registry_ = registry;
  if (!registry) {
    handles_ = MetricHandles{};
    cluster_.set_slot_gauges(nullptr, nullptr);
    scheduler_->observe(&events_, nullptr);
    return;
  }
  // 100 ns .. ~1.6 s in 4x steps: covers a no-op select through a full
  // plan-regeneration heartbeat.
  auto latency_buckets = [] { return obs::exponential_buckets(100.0, 4.0, 12); };
  handles_.heartbeat_ns =
      &registry->histogram("engine.heartbeat_service_ns", latency_buckets());
  handles_.select_ns =
      &registry->histogram("engine.select_task_ns", latency_buckets());
  handles_.heartbeats = &registry->counter("engine.heartbeats");
  handles_.tasks_started = &registry->counter("engine.tasks_started");
  handles_.tasks_finished = &registry->counter("engine.tasks_finished");
  handles_.tasks_failed = &registry->counter("engine.tasks_failed");
  handles_.attempts_killed = &registry->counter("engine.attempts_killed");
  handles_.tracker_crashes = &registry->counter("engine.tracker_crashes");
  handles_.speculative_launched =
      &registry->counter("engine.speculative_launched");
  handles_.workflows_rejected = &registry->counter("admission.rejected");
  handles_.workflows_shed = &registry->counter("shed.workflows");
  handles_.decommissions = &registry->counter("cluster.decommissions");
  handles_.preemptions = &registry->counter("cluster.preemptions");
  handles_.joins = &registry->counter("cluster.joins");
  handles_.pending_workflows = &registry->gauge("overload.pending");
  handles_.pending_peak = &registry->gauge("overload.pending_peak");
  cluster_.set_slot_gauges(&registry->gauge("cluster.free_map_slots"),
                           &registry->gauge("cluster.free_reduce_slots"));
  scheduler_->observe(&events_, registry);
}

void Engine::set_task_observer(std::function<void(const TaskEvent&)> observer) {
  if (task_observer_subscription_ != 0) {
    events_.unsubscribe(task_observer_subscription_);
    task_observer_subscription_ = 0;
  }
  if (!observer) return;
  task_observer_subscription_ = events_.subscribe(
      [cb = std::move(observer)](const obs::Event& e) {
        if (const auto* s = std::get_if<obs::TaskStarted>(&e.payload)) {
          cb(TaskEvent{e.time, WorkflowId(s->workflow),
                       JobRef{s->workflow, s->job}, s->slot, true, false, false,
                       s->speculative, 0});
        } else if (const auto* f = std::get_if<obs::TaskEnded>(&e.payload)) {
          cb(TaskEvent{e.time, WorkflowId(f->workflow),
                       JobRef{f->workflow, f->job}, f->slot, false, f->failed,
                       f->killed, f->speculative, f->ran_for});
        }
      });
}

void Engine::submit(wf::WorkflowSpec spec) {
  if (started_) throw std::logic_error("Engine::submit after run()");
  wf::validate(spec);
  pending_submissions_.push_back(std::move(spec));
}

Duration Engine::actual_duration(Duration estimated) {
  double d = static_cast<double>(estimated) * config_.duration_scale;
  if (config_.duration_jitter_sigma > 0.0) {
    // Log-normal multiplicative noise with median 1: durations stay
    // positive and the estimate is the median of the actual distribution.
    d *= rng_.log_normal(0.0, config_.duration_jitter_sigma);
  }
  return std::max<Duration>(1, static_cast<Duration>(std::llround(d)));
}

void Engine::run() {
  if (started_) throw std::logic_error("Engine::run called twice");
  started_ = true;

  const std::size_t expected_workflows = pending_submissions_.size();
  if (expected_workflows == 0) return;  // nothing to run

  // Hand the scheduler the full submission list before the first event so
  // it can precompute (WOHA's parallel plan prewarm). Only when admission
  // control is off: every spec is then guaranteed to reach
  // on_workflow_submitted, keeping cache tallies identical to serial.
  if (!admission_) scheduler_->on_pending_submissions(pending_submissions_);

  // Schedule workflow submissions.
  for (auto& spec : pending_submissions_) {
    const SimTime at = std::max<SimTime>(0, spec.submit_time);
    first_submit_ = std::min(first_submit_, at);
    sim_.schedule_at(at, [this, spec = std::move(spec)]() mutable {
      do_submit(std::move(spec));
    });
  }
  pending_submissions_.clear();

  // Fault-injection schedule: explicit outages plus MTBF-driven crashes.
  // Fault RNG streams are independent of rng_, so enabling churn never
  // perturbs task-duration or locality draws.
  if (config_.faults.churn_enabled()) {
    for (const TrackerFaultEvent& ev : config_.faults.events) {
      sim_.schedule_at(ev.crash_time, [this, ev]() {
        crash_tracker(ev.tracker, ev.restart_time);
      });
    }
    if (config_.faults.tracker_mtbf > 0.0) {
      fault_rng_root_ = Rng(config_.faults.seed);
      tracker_fault_rngs_.reserve(cluster_.tracker_count());
      for (std::size_t i = 0; i < cluster_.tracker_count(); ++i) {
        tracker_fault_rngs_.push_back(fault_rng_root_.split());
      }
      for (std::size_t i = 0; i < cluster_.tracker_count(); ++i) {
        schedule_next_mtbf_crash(i);
      }
    }
  }

  // Elastic-membership schedule: decommissions, preemption waves, joins,
  // and the autoscaler tick. None of this consumes rng_ draws, so enabling
  // elasticity never perturbs task-duration or locality sequences.
  if (elastic_on_) {
    last_capacity_change_ = first_submit_ == kTimeInfinity ? 0 : first_submit_;
    for (const TrackerDecommissionEvent& d : config_.elasticity.decommissions) {
      sim_.schedule_at(d.start_time, [this, d]() {
        begin_decommission(d.tracker, d.drain_lease);
      });
    }
    for (const PreemptionWave& w : config_.elasticity.preemption_waves) {
      sim_.schedule_at(w.time, [this, w]() { preemption_wave(w); });
    }
    for (const TrackerJoinEvent& j : config_.elasticity.joins) {
      ++pending_joins_;
      sim_.schedule_at(j.time, [this, j]() {
        --pending_joins_;
        join_trackers(j.count);
      });
    }
    if (config_.elasticity.autoscaler.enabled) {
      const Duration period = config_.elasticity.autoscaler.check_period;
      sim_.schedule_every(period, period, [this]() { autoscale_tick(); });
    }
  }

  // Heartbeat loops, staggered so the master sees a steady request stream.
  const Duration hb = config_.cluster.heartbeat_period;
  for (std::size_t i = 0; i < cluster_.tracker_count(); ++i) {
    const SimTime first =
        config_.cluster.stagger_heartbeats
            ? static_cast<SimTime>((static_cast<std::uint64_t>(i) * static_cast<std::uint64_t>(hb)) /
                                   cluster_.tracker_count())
            : 0;
    sim_.schedule_every(first, hb, [this, i]() {
      // Stop heartbeating once everything finished, so run() terminates.
      if (job_tracker_.active_workflows() == 0 &&
          job_tracker_.workflow_count() > 0) {
        return;
      }
      heartbeat(i);
    });
  }
  // The heartbeat events above repeat forever; run with a stop condition:
  // when no workflow is active and no submission is pending, request stop.
  // We piggyback the check on every event via a small watcher loop.
  while (true) {
    if (!sim_.step(config_.horizon)) break;
    if (job_tracker_.workflow_count() + workflows_rejected_ == expected_workflows &&
        job_tracker_.active_workflows() == 0) {
      break;  // all submitted workflows finished (or failed, or were refused)
    }
    if (live_trackers_ == 0 && pending_restarts_ == 0 && pending_joins_ == 0 &&
        !config_.elasticity.autoscaler.enabled) {
      // Every tracker is down and none will come back: no event can make
      // progress, so stop instead of heartbeating an empty cluster forever.
      WOHA_LOG(LogLevel::kWarn, "engine")
          << "t=" << sim_.now() << " cluster permanently dead; stopping run";
      break;
    }
  }
}

void Engine::do_submit(wf::WorkflowSpec spec) {
  ++avail_version_;  // a new workflow can make empty select answers stale
  ++workflows_submitted_;
  if (admission_) {
    const AdmissionDecision decision = admission_->decide(spec, sim_.now());
    if (!decision.admit) {
      ++workflows_rejected_;
      if (handles_.workflows_rejected) handles_.workflows_rejected->add();
      WOHA_LOG(LogLevel::kInfo, "engine")
          << "t=" << sim_.now() << " REJECT workflow '" << spec.name << "' ("
          << decision.reason << ")";
      WorkflowResult r;
      r.name = spec.name;
      r.submit_time = sim_.now();
      r.deadline = spec.relative_deadline > 0 ? sim_.now() + spec.relative_deadline
                                              : kTimeInfinity;
      r.rejected = true;
      if (events_.active()) {
        events_.publish(sim_.now(),
                        obs::WorkflowRejected{
                            static_cast<std::uint32_t>(workflows_submitted_ - 1),
                            spec.name, r.deadline, decision.reason});
      }
      rejected_results_.push_back(std::move(r));
      return;
    }
  }
  const WorkflowId id = job_tracker_.add_workflow(std::move(spec), sim_.now());
  WorkflowRuntime& wf_rt = job_tracker_.workflow(id);
  WOHA_LOG(LogLevel::kInfo, "engine")
      << "t=" << sim_.now() << " submit workflow " << id.value() << " ('"
      << wf_rt.spec().name << "', deadline=" << wf_rt.deadline() << ")";
  scheduler_->on_workflow_submitted(id, sim_.now());
  // Initially runnable jobs go through the same activation path as unlocked
  // dependents (submitter map task latency).
  for (std::uint32_t j : wf::initial_jobs(wf_rt.spec())) {
    const JobRef ref{id.value(), j};
    wf_rt.job(j).mark_activating();
    sim_.schedule_after(config_.activation_latency,
                        [this, ref]() { activate_job(ref); });
  }
  if (admission_) enforce_pending_budget();
  // Pending-set accounting (cheap: two compares), kept even without
  // admission so the admit-all baseline of the rho sweep reports its
  // (unbounded) pending_peak.
  const std::uint32_t pending = job_tracker_.active_workflows();
  pending_peak_ = std::max(pending_peak_, pending);
  if (handles_.pending_workflows) {
    handles_.pending_workflows->set(static_cast<double>(pending));
    handles_.pending_peak->set(static_cast<double>(pending_peak_));
  }
}

void Engine::enforce_pending_budget() {
  const AdmissionConfig& ac = admission_->config();
  if (ac.policy != AdmissionPolicy::kShedLatestDeadlineFirst) return;
  while (job_tracker_.active_workflows() > ac.max_pending_workflows) {
    const std::optional<std::uint32_t> victim = admission_->pick_shed_victim();
    if (!victim) break;
    shed_workflow(*victim, sim_.now());
  }
}

void Engine::shed_workflow(std::uint32_t workflow, SimTime now) {
  WorkflowRuntime& wf_rt = job_tracker_.workflow(WorkflowId(workflow));
  if (wf_rt.failed() || wf_rt.finished()) return;
  WOHA_LOG(LogLevel::kWarn, "engine")
      << "t=" << now << " SHED workflow " << workflow << " (deadline="
      << wf_rt.deadline() << ", pending budget "
      << config_.admission.max_pending_workflows << " exceeded)";
  wf_rt.mark_shed(now);
  ++workflows_shed_;
  if (handles_.workflows_shed) handles_.workflows_shed->add();

  // Kill its remaining attempts, exactly like fail_workflow's sweep.
  std::vector<std::uint64_t> victims;
  for (auto it = attempts_by_workflow_.lower_bound({workflow, 0, 0});
       it != attempts_by_workflow_.end() && std::get<0>(*it) == workflow; ++it) {
    victims.push_back(std::get<2>(*it));
  }
  for (const std::uint64_t id : victims) {
    const std::size_t t = attempts_.at(id).tracker;
    const TrackerFaultState& fs = fault_state_[t];
    const Attempt a =
        kill_attempt(id, fs.dead ? fs.crash_time : now, obs::KillCause::kShed);
    if (a.rival != 0) {
      if (Attempt* rival = attempts_.find(a.rival)) {
        rival->rival = 0;
        spec_candidate_add(a.rival, *rival);
      }
    }
  }
  if (events_.active()) {
    events_.publish(now, obs::WorkflowShed{workflow, wf_rt.deadline(),
                                           static_cast<std::uint32_t>(victims.size())});
  }
  job_tracker_.count_workflow_finished();
  scheduler_->on_workflow_failed(WorkflowId(workflow), now);
}

void Engine::activate_job(JobRef ref) {
  // The workflow may have failed while the submitter task was loading.
  if (job_tracker_.workflow(WorkflowId(ref.workflow)).failed()) return;
  ++avail_version_;  // the job's tasks become schedulable
  JobInProgress& job = job_tracker_.job(ref);
  job.mark_active(sim_.now());
  WOHA_LOG(LogLevel::kDebug, "engine")
      << "t=" << sim_.now() << " activate job w" << ref.workflow << "/j" << ref.job
      << " ('" << job.spec().name << "')";
  if (events_.active()) {
    events_.publish(sim_.now(), obs::JobActivated{ref.workflow, ref.job});
  }
  scheduler_->on_job_activated(ref, sim_.now());
}

void Engine::heartbeat(std::size_t tracker_index) {
  TrackerState& tracker = cluster_.tracker(tracker_index);
  if (!tracker.alive()) return;  // dead nodes do not heartbeat
  // Draining nodes keep running what they have but take no new work, so
  // their heartbeats schedule nothing (they are off the freelists anyway;
  // skipping here also keeps speculation off the leaving node).
  if (elastic_on_ && elastic_state_[tracker_index].draining) return;

  // Wall-clock service time is only measured with a registry attached; the
  // clock reads themselves are part of the cost we promise to avoid (the
  // timer never touches the clock when the histogram handle is null).
  const obs::ScopedTimer hb_timer(handles_.heartbeat_ns);

  // Per-job blacklisting: the offered slot carries an eligibility filter so
  // a blacklisted job can still run elsewhere but never again on this node.
  const std::function<bool(JobRef)>* filter = nullptr;
  heartbeat_tracker_ = tracker_index;  // retargets blacklist_filter_ and start_sink_
  if (!blacklist_.empty()) {
    if (!blacklist_filter_) {
      blacklist_filter_ = [this](JobRef ref) {
        return !blacklisted(ref, heartbeat_tracker_);
      };
    }
    filter = &blacklist_filter_;
  }
  if (!start_sink_) {
    start_sink_ = [this](JobRef ref) {
      start_task(ref, heartbeat_slot_type_, heartbeat_tracker_);
    };
  }

  // Same-tick batching: an empty select answer is a function of the instant
  // and the availability state, never of the asking tracker (no baseline or
  // WOHA scheduler reads the tracker index before deciding it has nothing
  // to hand out, and an empty answer mutates no scheduler state). Serving
  // sibling heartbeats of the same tick from the memo skips the scheduler
  // walk and the clock reads; a filtered offer or an active tracing bus
  // (skipped consults would drop SchedulerDecision events) disables it.
  const bool memo_enabled =
      config_.heartbeat_batch > 1 && filter == nullptr && !events_.active();

  // Offer every idle slot on this tracker; maps first (Hadoop-1's
  // assignTasks fills map slots before reduce slots). All same-type slots
  // go out as ONE batched consult: select_tasks is contractually
  // decision-equivalent to the sequential consult-start loop this replaces,
  // and the start sink runs start_task between picks exactly where the old
  // loop did.
  std::uint32_t assigned[2] = {0, 0};
  for (const SlotType type : {SlotType::kMap, SlotType::kReduce}) {
    const auto ti = static_cast<std::size_t>(type);
    const std::uint32_t limit = tracker.free_slots(type);
    if (limit > 0) {
      if (memo_enabled && memo_empty_[ti] && memo_tick_ == sim_.now() &&
          memo_version_[ti] == avail_version_ &&
          memo_uses_[ti] < config_.heartbeat_batch - 1) {
        // Served from the batch memo. The master still answered this offer,
        // so it counts as a select call — summaries stay bit-identical to
        // an unbatched run.
        ++memo_uses_[ti];
        ++select_calls_;
      } else {
        heartbeat_slot_type_ = type;  // retargets start_sink_
        const SlotOffer offer{type, tracker_index, filter};
        const auto t0 = std::chrono::steady_clock::now();
        const std::uint32_t started =
            scheduler_->select_tasks(offer, limit, start_sink_, sim_.now());
        const auto t1 = std::chrono::steady_clock::now();
        // One batched consult stands for `started` successful sequential
        // consults plus, when the batch under-filled, the final empty one —
        // the select_calls tally stays bit-identical to an unbatched run.
        select_calls_ += started + (started < limit ? 1 : 0);
        select_wall_ms_ +=
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        if (handles_.select_ns) {
          handles_.select_ns->observe(
              std::chrono::duration<double, std::nano>(t1 - t0).count());
        }
        assigned[ti] += started;
        if (started < limit && memo_enabled) {
          memo_tick_ = sim_.now();
          memo_version_[ti] = avail_version_;
          memo_empty_[ti] = true;
          memo_uses_[ti] = 0;
        }
      }
    }
    // Slots no pending task wants may still host speculative backups.
    if (config_.faults.speculative_execution) {
      while (tracker.free_slots(type) > 0 && try_speculate(type, tracker_index)) {
        ++assigned[static_cast<std::size_t>(type)];
      }
    }
  }

  if (handles_.heartbeats) handles_.heartbeats->add();
  if (events_.active()) {
    events_.publish(sim_.now(),
                    obs::HeartbeatServed{tracker_index, assigned[0], assigned[1],
                                         tracker.free_slots(SlotType::kMap),
                                         tracker.free_slots(SlotType::kReduce)});
  }
}

bool Engine::map_is_local(JobRef ref, std::size_t tracker_index) {
  // Randomized HDFS placement: each map attempt's split has
  // `hdfs_replication` replicas on uniformly random trackers. We draw the
  // replica set lazily per attempt rather than materializing a block map —
  // statistically equivalent for uniform placement, and it keeps memory
  // flat for huge jobs.
  (void)ref;
  const std::size_t n = cluster_.tracker_count();
  for (std::uint32_t r = 0; r < config_.hdfs_replication; ++r) {
    if (static_cast<std::size_t>(
            rng_.uniform_int(0, static_cast<std::int64_t>(n) - 1)) == tracker_index) {
      return true;
    }
  }
  return false;
}

Duration Engine::draw_attempt(JobRef ref, SlotType type, std::size_t tracker_index,
                              bool& will_fail) {
  // The draw order below (jitter, locality, failure) replays the exact
  // pre-fault-model RNG sequence: with faults disabled, runs stay
  // bit-identical to builds that predate the fault subsystem.
  const JobInProgress& job = job_tracker_.job(ref);
  const Duration est =
      type == SlotType::kMap ? job.spec().map_duration : job.spec().reduce_duration;
  Duration dur = actual_duration(est);
  if (type == SlotType::kMap) {
    ++total_maps_;
    if (config_.remote_map_penalty > 1.0 && !map_is_local(ref, tracker_index)) {
      dur = static_cast<Duration>(
          std::llround(static_cast<double>(dur) * config_.remote_map_penalty));
    } else {
      ++local_maps_;
    }
  }

  // Failure injection: the attempt dies at a uniformly random point of its
  // execution, holding (and wasting) the slot until then.
  will_fail = false;
  if (config_.task_failure_prob > 0.0 && rng_.chance(config_.task_failure_prob)) {
    will_fail = true;
    dur = std::max<Duration>(1, static_cast<Duration>(
                                    static_cast<double>(dur) * rng_.uniform()));
  }
  return dur;
}

void Engine::start_task(JobRef ref, SlotType type, std::size_t tracker_index) {
  JobInProgress& job = job_tracker_.job(ref);
  if (!job.has_available(type)) {
    throw std::logic_error("Engine: scheduler returned job without available " +
                           std::string(to_string(type)) + " task (" +
                           scheduler_->name() + ")");
  }
  const std::uint32_t retry_level = job.start_task(type);
  cluster_.occupy(tracker_index, type);
  WorkflowRuntime& wf_rt = job_tracker_.workflow(WorkflowId(ref.workflow));
  wf_rt.count_scheduled_task();
  ++tasks_executed_;

  bool will_fail = false;
  const Duration dur = draw_attempt(ref, type, tracker_index, will_fail);
  busy_ms_[static_cast<std::size_t>(type)] += static_cast<double>(dur);
  if (handles_.tasks_started) handles_.tasks_started->add();

  const std::uint64_t id = next_attempt_id_++;
  if (events_.active()) {
    events_.publish(sim_.now(), obs::TaskStarted{id, ref.workflow, ref.job, type,
                                                 tracker_index, dur, false});
  }
  Attempt attempt{ref,      type,      tracker_index, sim_.now(), dur,
                  retry_level, will_fail, false,         0,          {}};
  attempt.finish_event =
      sim_.schedule_after(dur, [this, id]() { finish_attempt(id); });
  index_attempt_add(id, attempt);
  attempts_.emplace(id, std::move(attempt));
  tracker_attempts_[tracker_index].push_back(id);
}

void Engine::index_attempt_add(std::uint64_t id, const Attempt& a) {
  if (index_by_workflow_) {
    attempts_by_workflow_.emplace(a.ref.workflow, a.tracker, id);
  }
  spec_candidate_add(id, a);
}

void Engine::index_attempt_remove(std::uint64_t id, const Attempt& a) {
  if (index_by_workflow_) {
    attempts_by_workflow_.erase({a.ref.workflow, a.tracker, id});
  }
  spec_candidate_remove(id, a);
}

void Engine::spec_candidate_add(std::uint64_t id, const Attempt& a) {
  if (!config_.faults.speculative_execution) return;
  if (a.speculative || a.rival != 0) return;
  spec_candidates_[static_cast<std::size_t>(a.type)].emplace(a.tracker, id);
}

void Engine::spec_candidate_remove(std::uint64_t id, const Attempt& a) {
  // Mirror of spec_candidate_add: callers invoke it with the attempt state
  // as of insertion time (rival still 0), so ineligible attempts were
  // simply never in the set.
  if (!config_.faults.speculative_execution) return;
  if (a.speculative || a.rival != 0) return;
  spec_candidates_[static_cast<std::size_t>(a.type)].erase({a.tracker, id});
}

void Engine::finish_attempt(std::uint64_t attempt_id) {
  if (!attempts_.contains(attempt_id)) {
    throw std::logic_error("Engine: finish event for unknown attempt");
  }
  // Retries, unlocked dependents, and rho changes can all create work.
  ++avail_version_;
  const Attempt a = attempts_.take(attempt_id);
  index_attempt_remove(attempt_id, a);
  std::erase(tracker_attempts_[a.tracker], attempt_id);
  cluster_.release(a.tracker, a.type);
  maybe_complete_drain(a.tracker);
  JobInProgress& job = job_tracker_.job(a.ref);

  const auto publish_ended = [&](bool failed) {
    if (!events_.active()) return;
    events_.publish(sim_.now(),
                    obs::TaskEnded{attempt_id, a.ref.workflow, a.ref.job, a.type,
                                   a.tracker, failed, false, a.speculative,
                                   a.duration});
  };

  if (a.will_fail) {
    ++tasks_failed_;
    if (handles_.tasks_failed) handles_.tasks_failed->add();
    record_attempt_failure(a.ref, a.tracker);
    if (a.rival != 0) {
      // The speculation twin keeps running the task alone; this failure
      // burns an attempt but re-queues nothing.
      if (Attempt* rival = attempts_.find(a.rival)) {
        rival->rival = 0;
        spec_candidate_add(a.rival, *rival);
      }
      publish_ended(true);
      return;
    }
    if (config_.faults.max_attempts > 0 &&
        a.retry_level + 1 >= config_.faults.max_attempts) {
      publish_ended(true);
      fail_workflow(a.ref.workflow, sim_.now());
      return;
    }
    job.fail_task(a.type, a.retry_level + 1);
    scheduler_->on_task_finished(a.ref, a.type, sim_.now());
    publish_ended(true);
    // The task re-enters the pending pool; the next heartbeat with a free
    // slot may schedule a fresh attempt (Hadoop's retry behaviour).
    return;
  }

  // Success. A speculation race has a winner: kill the loser (first finish
  // wins, Hadoop's speculative-execution contract).
  if (a.rival != 0) {
    const Attempt& loser_ref = attempts_.at(a.rival);
    const TrackerFaultState& loser_fs = fault_state_[loser_ref.tracker];
    const SimTime stop = loser_fs.dead ? loser_fs.crash_time : sim_.now();
    const Attempt loser =
        kill_attempt(a.rival, stop, obs::KillCause::kSpeculationRace);
    speculative_wasted_ms_ +=
        static_cast<double>(std::max<Duration>(0, stop - loser.start_time));
    if (a.speculative) ++speculative_won_;
  }

  // Hadoop-1 stores map outputs on the slave's local disk until the job's
  // reduces fetch them; remember where they live so a node loss can
  // invalidate them. Map-only jobs commit straight to HDFS — nothing to
  // track.
  if (a.type == SlotType::kMap && config_.faults.churn_enabled() &&
      job.spec().num_reduces > 0) {
    ++map_outputs_[a.tracker][a.ref];
  }

  const bool job_done = job.finish_task(a.type, sim_.now());
  if (handles_.tasks_finished) handles_.tasks_finished->add();
  scheduler_->on_task_finished(a.ref, a.type, sim_.now());
  publish_ended(false);
  if (!job_done) return;

  WorkflowRuntime& wf_rt = job_tracker_.workflow(WorkflowId(a.ref.workflow));
  WOHA_LOG(LogLevel::kDebug, "engine")
      << "t=" << sim_.now() << " job w" << a.ref.workflow << "/j" << a.ref.job
      << " complete";
  if (events_.active()) {
    events_.publish(sim_.now(), obs::JobCompleted{a.ref.workflow, a.ref.job});
  }
  const auto unlocked = wf_rt.on_job_complete(a.ref.job, sim_.now());
  scheduler_->on_job_completed(a.ref, sim_.now());
  for (std::uint32_t j : unlocked) {
    const JobRef dep{a.ref.workflow, j};
    wf_rt.job(j).mark_activating();
    sim_.schedule_after(config_.activation_latency,
                        [this, dep]() { activate_job(dep); });
  }
  if (wf_rt.finished()) {
    job_tracker_.count_workflow_finished();
    WOHA_LOG(LogLevel::kInfo, "engine")
        << "t=" << sim_.now() << " workflow " << a.ref.workflow << " finished"
        << (wf_rt.finish_time() <= wf_rt.deadline() ? " (deadline met)"
                                                    : " (DEADLINE MISSED)");
    if (events_.active()) {
      events_.publish(sim_.now(),
                      obs::WorkflowCompleted{
                          a.ref.workflow,
                          wf_rt.finish_time() <= wf_rt.deadline()});
    }
    scheduler_->on_workflow_completed(WorkflowId(a.ref.workflow), sim_.now());
  }
}

Engine::Attempt Engine::kill_attempt(std::uint64_t attempt_id, SimTime stop_time,
                                     obs::KillCause cause) {
  ++avail_version_;  // the killed attempt's task may re-enter the pool
  Attempt a = attempts_.take(attempt_id);
  a.finish_event.cancel();
  index_attempt_remove(attempt_id, a);
  std::erase(tracker_attempts_[a.tracker], attempt_id);
  cluster_.release(a.tracker, a.type);
  maybe_complete_drain(a.tracker);
  // Busy time was charged for the full scheduled duration at start; refund
  // the part that never executed.
  const Duration executed = std::max<Duration>(0, stop_time - a.start_time);
  busy_ms_[static_cast<std::size_t>(a.type)] -=
      static_cast<double>(a.duration - executed);
  ++attempts_killed_;
  if (handles_.attempts_killed) handles_.attempts_killed->add();
  if (events_.active()) {
    events_.publish(sim_.now(),
                    obs::TaskEnded{attempt_id, a.ref.workflow, a.ref.job, a.type,
                                   a.tracker, false, true, a.speculative,
                                   executed, cause});
  }
  return a;
}

void Engine::crash_tracker(std::size_t tracker_index, SimTime restart_time) {
  TrackerFaultState& fs = fault_state_[tracker_index];
  if (fs.dead) return;  // overlapping schedules collapse into one outage
  // A retired (decommissioned/preempted) node no longer exists to crash. A
  // *draining* node can still crash: the crash machinery then owns it, and
  // the pending drain-expiry event sees fs.dead and stands down.
  if (elastic_state_[tracker_index].retired) return;
  fs.dead = true;
  fs.detected = false;
  fs.crash_time = sim_.now();
  ++fs.epoch;
  cluster_.mark_dead(tracker_index);
  --live_trackers_;
  ++tracker_crashes_;
  if (handles_.tracker_crashes) handles_.tracker_crashes->add();
  if (events_.active()) {
    events_.publish(sim_.now(), obs::TrackerCrashed{tracker_index, restart_time});
  }
  WOHA_LOG(LogLevel::kInfo, "engine")
      << "t=" << sim_.now() << " tracker " << tracker_index << " crashed"
      << (restart_time == kTimeInfinity
              ? std::string(" (no restart)")
              : " (restart at " + std::to_string(restart_time) + ")");

  // The node stops executing instantly, but the master stays oblivious: the
  // attempts remain in the running tables until the lease expires or the
  // node re-registers. Their finish events must never fire, though.
  for (const std::uint64_t id : tracker_attempts_[tracker_index]) {
    attempts_.at(id).finish_event.cancel();
  }

  const std::uint64_t epoch = fs.epoch;
  sim_.schedule_after(config_.faults.expiry_interval, [this, tracker_index, epoch]() {
    if (fault_state_[tracker_index].epoch == epoch) {
      detect_tracker_loss(tracker_index);
    }
  });
  if (restart_time != kTimeInfinity) {
    ++pending_restarts_;
    sim_.schedule_at(restart_time, [this, tracker_index, epoch]() {
      if (fault_state_[tracker_index].epoch == epoch) {
        restart_tracker(tracker_index);
      }
    });
  }
}

void Engine::restart_tracker(std::size_t tracker_index) {
  TrackerFaultState& fs = fault_state_[tracker_index];
  if (!fs.dead) return;
  // Re-registration tells the master about the loss immediately, even if
  // the lease has not expired yet (Hadoop treats a re-registering tracker
  // as a fresh node with empty disks).
  detect_tracker_loss(tracker_index);
  fs.dead = false;
  cluster_.activate(tracker_index);
  // Re-registration makes the node a fresh worker: a drain that was in
  // flight when it crashed is forgotten (mirrors Cluster::activate), and
  // any stale drain-expiry event dies on the epoch bump.
  TrackerElasticState& es = elastic_state_[tracker_index];
  es.draining = false;
  es.preempting = false;
  ++es.epoch;
  ++live_trackers_;
  --pending_restarts_;
  const TrackerState& ts = cluster_.tracker(tracker_index);
  account_capacity_change(static_cast<std::int64_t>(ts.capacity(SlotType::kMap)),
                          static_cast<std::int64_t>(ts.capacity(SlotType::kReduce)));
  if (events_.active()) {
    events_.publish(sim_.now(), obs::TrackerRestarted{tracker_index});
  }
  WOHA_LOG(LogLevel::kInfo, "engine")
      << "t=" << sim_.now() << " tracker " << tracker_index << " re-registered";
  if (config_.faults.tracker_mtbf > 0.0) schedule_next_mtbf_crash(tracker_index);
}

void Engine::detect_tracker_loss(std::size_t tracker_index) {
  TrackerFaultState& fs = fault_state_[tracker_index];
  if (!fs.dead || fs.detected) return;
  fs.detected = true;
  ++avail_version_;  // re-queued tasks and invalidated map outputs
  WOHA_LOG(LogLevel::kInfo, "engine")
      << "t=" << sim_.now() << " tracker " << tracker_index
      << " declared lost (crashed at " << fs.crash_time << ")";

  // Kill every attempt that was running there. KILLED, not FAILED: node
  // loss never counts against the task's attempt budget.
  const std::vector<std::uint64_t> ids = tracker_attempts_[tracker_index];
  const auto killed_here = static_cast<std::uint32_t>(ids.size());
  std::uint32_t outputs_lost_here = 0;
  for (const std::uint64_t id : ids) {
    const Attempt a = kill_attempt(id, fs.crash_time, obs::KillCause::kNodeLoss);
    if (a.rival != 0) {
      // The task lives on in its speculation twin — nothing to re-queue.
      if (Attempt* rival = attempts_.find(a.rival)) {
        rival->rival = 0;
        spec_candidate_add(a.rival, *rival);
      }
      continue;
    }
    JobInProgress& job = job_tracker_.job(a.ref);
    job.requeue_running(a.type, a.retry_level);
    scheduler_->on_task_finished(a.ref, a.type, sim_.now());
    scheduler_->on_tasks_lost(a.ref, a.type, 1, sim_.now());
  }

  // Invalidate completed map outputs stranded on the node's local disk:
  // unfetched partitions are gone, so those maps re-execute from scratch
  // (fresh tasks — re-execution is not a retry).
  for (const auto& [ref, count] : map_outputs_[tracker_index]) {
    WorkflowRuntime& w = job_tracker_.workflow(WorkflowId(ref.workflow));
    if (w.finished() || w.failed()) continue;
    JobInProgress& job = job_tracker_.job(ref);
    if (job.complete() || job.state() == JobState::kFailed) continue;
    job.invalidate_finished_maps(count);
    map_outputs_lost_ += count;
    outputs_lost_here += count;
    scheduler_->on_tasks_lost(ref, SlotType::kMap, count, sim_.now());
  }
  map_outputs_[tracker_index].clear();
  cluster_.deactivate(tracker_index);
  {
    const TrackerState& ts = cluster_.tracker(tracker_index);
    account_capacity_change(
        -static_cast<std::int64_t>(ts.capacity(SlotType::kMap)),
        -static_cast<std::int64_t>(ts.capacity(SlotType::kReduce)));
  }
  if (events_.active()) {
    events_.publish(sim_.now(),
                    obs::TrackerLost{tracker_index, fs.crash_time, killed_here,
                                     outputs_lost_here});
  }
}

void Engine::fail_workflow(std::uint32_t workflow, SimTime now) {
  WorkflowRuntime& wf_rt = job_tracker_.workflow(WorkflowId(workflow));
  if (wf_rt.failed() || wf_rt.finished()) return;
  WOHA_LOG(LogLevel::kWarn, "engine")
      << "t=" << now << " workflow " << workflow
      << " FAILED (task exhausted max_attempts="
      << config_.faults.max_attempts << ")";
  wf_rt.mark_failed(now);
  ++workflows_failed_;
  if (events_.active()) {
    events_.publish(now, obs::WorkflowFailed{workflow});
  }

  // Kill the workflow's remaining attempts everywhere. The (workflow,
  // tracker, attempt) index yields them in exactly the order the old
  // full-cluster sweep did — trackers ascending, launch order within a
  // tracker — without touching the other 9,999 trackers' lists. Collect
  // first: kill_attempt mutates the index.
  std::vector<std::uint64_t> victims;
  for (auto it = attempts_by_workflow_.lower_bound({workflow, 0, 0});
       it != attempts_by_workflow_.end() && std::get<0>(*it) == workflow; ++it) {
    victims.push_back(std::get<2>(*it));
  }
  for (const std::uint64_t id : victims) {
    const std::size_t t = attempts_.at(id).tracker;
    const TrackerFaultState& fs = fault_state_[t];
    const Attempt a = kill_attempt(id, fs.dead ? fs.crash_time : now,
                                   obs::KillCause::kWorkflowFailed);
    if (a.rival != 0) {
      if (Attempt* rival = attempts_.find(a.rival)) {
        rival->rival = 0;
        spec_candidate_add(a.rival, *rival);
      }
    }
  }
  job_tracker_.count_workflow_finished();
  scheduler_->on_workflow_failed(WorkflowId(workflow), now);
}

void Engine::record_attempt_failure(JobRef ref, std::size_t tracker_index) {
  if (config_.faults.blacklist_task_failures == 0) return;
  const auto key = std::make_pair(ref, tracker_index);
  if (++job_tracker_failures_[key] < config_.faults.blacklist_task_failures) return;
  // Hadoop-1 caps per-job blacklisting at 25% of the cluster (JobInProgress
  // CLUSTER_BLACKLIST_PERCENT) so a flaky job can never starve itself of
  // every tracker. Always leave the majority of nodes usable.
  const std::size_t cap =
      std::max<std::size_t>(1, cluster_.tracker_count() / 4);
  std::size_t already = 0;
  for (const auto& entry : blacklist_) already += entry.first == ref;
  if (already < cap && blacklist_.insert(key).second) {
    ++blacklistings_;
    WOHA_LOG(LogLevel::kInfo, "engine")
        << "t=" << sim_.now() << " tracker " << tracker_index
        << " blacklisted for job w" << ref.workflow << "/j" << ref.job;
  }
}

bool Engine::try_speculate(SlotType type, std::size_t tracker_index) {
  const SimTime now = sim_.now();
  // Deterministic straggler scan over the candidate index: (tracker
  // ascending, launch order within tracker) — the exact order the old
  // every-tracker sweep produced, but visiting only attempts that could
  // actually receive a backup (non-speculative, no rival yet). The
  // duration-based slowness test stands in for Hadoop's progress-rate
  // estimate (the simulator knows the true remaining time); an attempt on a
  // silently-dead node reports no progress at all, which is exactly what
  // LATE flags first — so zombies are always eligible.
  for (const auto& [cand_tracker, id] :
       spec_candidates_[static_cast<std::size_t>(type)]) {
    const Attempt& a = attempts_.at(id);
    if (a.tracker == tracker_index) continue;  // back up on another node
    if (now - a.start_time < config_.faults.speculative_min_runtime) continue;
    const bool zombie = fault_state_[a.tracker].dead;
    if (!zombie) {
      const JobInProgress& job = job_tracker_.job(a.ref);
      const Duration est = type == SlotType::kMap ? job.spec().map_duration
                                                  : job.spec().reduce_duration;
      if (static_cast<double>(a.duration) <=
          config_.faults.speculative_slowness * static_cast<double>(est)) {
        continue;  // not slow enough to bother
      }
      if (now + est >= a.start_time + a.duration) {
        continue;  // a backup would not beat the original anyway
      }
    }
    if (blacklisted(a.ref, tracker_index)) continue;

    // Launch the backup. It occupies a slot and burns budget metrics but
    // is NOT new task progress: no job/rho accounting, no select_task.
    cluster_.occupy(tracker_index, type);
    ++tasks_executed_;
    ++speculative_launched_;
    if (handles_.tasks_started) handles_.tasks_started->add();
    if (handles_.speculative_launched) handles_.speculative_launched->add();
    bool will_fail = false;
    const Duration dur = draw_attempt(a.ref, type, tracker_index, will_fail);
    busy_ms_[static_cast<std::size_t>(type)] += static_cast<double>(dur);
    const std::uint64_t backup_id = next_attempt_id_++;
    if (events_.active()) {
      events_.publish(now, obs::SpeculativeLaunched{backup_id, id,
                                                    a.ref.workflow, a.ref.job,
                                                    type, tracker_index});
      events_.publish(now, obs::TaskStarted{backup_id, a.ref.workflow,
                                            a.ref.job, type, tracker_index,
                                            dur, true});
    }
    Attempt backup{a.ref,         type,      tracker_index, now, dur,
                   a.retry_level, will_fail, true,          id,  {}};
    backup.finish_event =
        sim_.schedule_after(dur, [this, backup_id]() { finish_attempt(backup_id); });
    index_attempt_add(backup_id, backup);
    attempts_.emplace(backup_id, std::move(backup));
    tracker_attempts_[tracker_index].push_back(backup_id);
    WOHA_LOG(LogLevel::kDebug, "engine")
        << "t=" << now << " speculative backup for w" << a.ref.workflow << "/j"
        << a.ref.job << " on tracker " << tracker_index;
    // The original now has a rival: retire it from the candidate set. We
    // return immediately, so the invalidated loop iterator is never
    // advanced.
    spec_candidate_remove(id, a);
    attempts_.at(id).rival = backup_id;
    return true;
  }
  return false;
}

void Engine::schedule_next_mtbf_crash(std::size_t tracker_index) {
  if (config_.faults.tracker_mtbf <= 0.0) return;
  const double wait =
      tracker_fault_rngs_[tracker_index].exponential(1.0 / config_.faults.tracker_mtbf);
  const Duration delay = std::max<Duration>(1, static_cast<Duration>(std::llround(wait)));
  sim_.schedule_after(delay, [this, tracker_index]() {
    if (!fault_state_[tracker_index].dead &&
        !elastic_state_[tracker_index].retired) {
      crash_tracker(tracker_index,
                    sim_.now() + config_.faults.tracker_restart_delay);
    }
  });
}

// ---- elastic membership -----------------------------------------------------

void Engine::begin_decommission(std::size_t tracker_index, Duration lease) {
  TrackerFaultState& fs = fault_state_[tracker_index];
  TrackerElasticState& es = elastic_state_[tracker_index];
  // Already leaving or down: a decommission of a dead/draining/retired node
  // is a no-op (the operator's intent is already being honoured).
  if (es.retired || es.draining || fs.dead) return;
  cluster_.set_draining(tracker_index);
  es.draining = true;
  es.preempting = false;
  ++es.epoch;
  es.lease_deadline = sim_.now() + lease;
  WOHA_LOG(LogLevel::kInfo, "engine")
      << "t=" << sim_.now() << " tracker " << tracker_index
      << " draining (decommission, lease until " << es.lease_deadline << ")";
  if (events_.active()) {
    events_.publish(sim_.now(),
                    obs::TrackerDraining{tracker_index, es.lease_deadline});
  }
  if (tracker_attempts_[tracker_index].empty()) {
    retire_tracker(tracker_index, 0, false);
    return;
  }
  const std::uint64_t epoch = es.epoch;
  sim_.schedule_at(es.lease_deadline, [this, tracker_index, epoch]() {
    drain_lease_expired(tracker_index, epoch);
  });
}

void Engine::drain_lease_expired(std::size_t tracker_index, std::uint64_t epoch) {
  const TrackerElasticState& es = elastic_state_[tracker_index];
  if (es.epoch != epoch || !es.draining || es.retired) return;
  // Crash won the race mid-drain: lease-expiry loss detection owns the node
  // now (the KILLED + re-queue semantics are the crash path's).
  if (fault_state_[tracker_index].dead) return;
  retire_tracker(tracker_index,
                 migrate_off(tracker_index, obs::KillCause::kDrainMigration),
                 false);
}

void Engine::preempt_terminate(std::size_t tracker_index, std::uint64_t epoch) {
  const TrackerElasticState& es = elastic_state_[tracker_index];
  if (es.epoch != epoch || !es.draining || es.retired) return;
  if (fault_state_[tracker_index].dead) return;  // crashed before the axe fell
  retire_tracker(tracker_index,
                 migrate_off(tracker_index, obs::KillCause::kPreemption), true);
}

std::uint32_t Engine::migrate_off(std::size_t tracker_index,
                                  obs::KillCause cause) {
  // Master-initiated eviction of everything still running on the node:
  // unlike crash loss there is no detection delay, and like crash loss the
  // kills are KILLED (never charged to attempt budgets).
  const std::vector<std::uint64_t> ids = tracker_attempts_[tracker_index];
  const auto migrated = static_cast<std::uint32_t>(ids.size());
  for (const std::uint64_t id : ids) {
    const Attempt a = kill_attempt(id, sim_.now(), cause);
    if (a.rival != 0) {
      // The task lives on in its speculation twin — nothing to re-queue.
      if (Attempt* rival = attempts_.find(a.rival)) {
        rival->rival = 0;
        spec_candidate_add(a.rival, *rival);
      }
      continue;
    }
    JobInProgress& job = job_tracker_.job(a.ref);
    job.requeue_running(a.type, a.retry_level);
    scheduler_->on_task_finished(a.ref, a.type, sim_.now());
    scheduler_->on_tasks_lost(a.ref, a.type, 1, sim_.now());
  }
  drain_migrated_ += migrated;
  return migrated;
}

void Engine::retire_tracker(std::size_t tracker_index, std::uint32_t migrated,
                            bool preempted) {
  ++avail_version_;  // invalidated map outputs re-enter the pending pool
  // Map outputs stranded on the node's local disk leave with it, exactly as
  // in Hadoop's decommission: completed maps of in-flight jobs re-execute.
  for (const auto& [ref, count] : map_outputs_[tracker_index]) {
    WorkflowRuntime& w = job_tracker_.workflow(WorkflowId(ref.workflow));
    if (w.finished() || w.failed()) continue;
    JobInProgress& job = job_tracker_.job(ref);
    if (job.complete() || job.state() == JobState::kFailed) continue;
    job.invalidate_finished_maps(count);
    map_outputs_lost_ += count;
    scheduler_->on_tasks_lost(ref, SlotType::kMap, count, sim_.now());
  }
  map_outputs_[tracker_index].clear();

  TrackerElasticState& es = elastic_state_[tracker_index];
  es.retired = true;
  es.draining = false;
  es.preempting = false;
  ++es.epoch;  // pending drain-expiry / maybe-complete events go stale
  cluster_.mark_dead(tracker_index);
  cluster_.deactivate(tracker_index);
  --live_trackers_;
  const TrackerState& ts = cluster_.tracker(tracker_index);
  account_capacity_change(-static_cast<std::int64_t>(ts.capacity(SlotType::kMap)),
                          -static_cast<std::int64_t>(ts.capacity(SlotType::kReduce)));
  if (preempted) {
    ++preemptions_;
    if (handles_.preemptions) handles_.preemptions->add();
  } else {
    ++decommissions_;
    if (handles_.decommissions) handles_.decommissions->add();
  }
  WOHA_LOG(LogLevel::kInfo, "engine")
      << "t=" << sim_.now() << " tracker " << tracker_index
      << (preempted ? " preempted" : " decommissioned") << " (migrated "
      << migrated << " attempts)";
  if (events_.active()) {
    events_.publish(sim_.now(),
                    obs::TrackerDecommissioned{tracker_index, migrated});
  }
}

void Engine::maybe_complete_drain(std::size_t tracker_index) {
  if (!elastic_on_) return;
  const TrackerElasticState& es = elastic_state_[tracker_index];
  // Preempted nodes terminate at the warned instant no matter what; only a
  // graceful decommission retires early when the node goes idle.
  if (!es.draining || es.retired || es.preempting) return;
  if (fault_state_[tracker_index].dead) return;
  if (!tracker_attempts_[tracker_index].empty()) return;
  const std::uint64_t epoch = es.epoch;
  // Same-tick deferral: let the in-flight attempt bookkeeping (TaskEnded
  // events, scheduler notifications) settle before the node retires, so
  // observers never see a retirement precede its last attempt's end.
  sim_.schedule_at(sim_.now(), [this, tracker_index, epoch]() {
    const TrackerElasticState& s = elastic_state_[tracker_index];
    if (s.epoch != epoch || !s.draining || s.retired || s.preempting) return;
    if (fault_state_[tracker_index].dead) return;
    if (!tracker_attempts_[tracker_index].empty()) return;
    retire_tracker(tracker_index, 0, false);
  });
}

void Engine::preemption_wave(const PreemptionWave& wave) {
  // Victims: the highest-indexed trackers that are up and not already
  // leaving — spot markets reclaim the most recently granted capacity
  // first. Warned in ascending index order for a deterministic stream.
  std::vector<std::size_t> victims;
  for (std::size_t i = cluster_.tracker_count();
       i-- > 0 && victims.size() < wave.count;) {
    const TrackerElasticState& es = elastic_state_[i];
    if (fault_state_[i].dead || es.draining || es.retired) continue;
    victims.push_back(i);
  }
  std::reverse(victims.begin(), victims.end());
  for (const std::size_t i : victims) {
    TrackerElasticState& es = elastic_state_[i];
    cluster_.set_draining(i);
    es.draining = true;
    es.preempting = true;
    ++es.epoch;
    es.lease_deadline = sim_.now() + wave.warning;
    WOHA_LOG(LogLevel::kInfo, "engine")
        << "t=" << sim_.now() << " tracker " << i
        << " preemption warning (terminates at " << es.lease_deadline << ")";
    if (events_.active()) {
      events_.publish(sim_.now(), obs::PreemptionWarning{i, es.lease_deadline});
    }
    const std::uint64_t epoch = es.epoch;
    sim_.schedule_at(es.lease_deadline, [this, i, epoch]() {
      preempt_terminate(i, epoch);
    });
  }
}

void Engine::join_trackers(std::uint32_t count) {
  const Duration hb = config_.cluster.heartbeat_period;
  for (std::uint32_t n = 0; n < count; ++n) {
    const std::size_t i = cluster_.add_tracker();
    tracker_attempts_.emplace_back();
    fault_state_.emplace_back();
    map_outputs_.emplace_back();
    elastic_state_.emplace_back();
    if (config_.faults.tracker_mtbf > 0.0) {
      // Fresh split off the fault root: churn on joined nodes is as
      // deterministic as on initial ones (split order == join order).
      tracker_fault_rngs_.push_back(fault_rng_root_.split());
    }
    ++live_trackers_;
    ++trackers_joined_;
    if (handles_.joins) handles_.joins->add();
    const TrackerState& ts = cluster_.tracker(i);
    account_capacity_change(static_cast<std::int64_t>(ts.capacity(SlotType::kMap)),
                            static_cast<std::int64_t>(ts.capacity(SlotType::kReduce)));
    WOHA_LOG(LogLevel::kInfo, "engine")
        << "t=" << sim_.now() << " tracker " << i << " joined";
    if (events_.active()) {
      events_.publish(sim_.now(), obs::TrackerJoined{i});
    }
    sim_.schedule_every(sim_.now() + hb, hb, [this, i]() {
      if (job_tracker_.active_workflows() == 0 &&
          job_tracker_.workflow_count() > 0) {
        return;
      }
      heartbeat(i);
    });
    if (config_.faults.tracker_mtbf > 0.0) schedule_next_mtbf_crash(i);
  }
}

std::size_t Engine::pick_drain_victim() const {
  for (std::size_t i = cluster_.tracker_count(); i-- > 0;) {
    const TrackerElasticState& es = elastic_state_[i];
    if (fault_state_[i].dead || es.draining || es.retired) continue;
    return i;
  }
  return Cluster::kNoTracker;
}

void Engine::autoscale_tick() {
  const AutoscalerConfig& as = config_.elasticity.autoscaler;
  std::size_t draining = 0;
  for (const TrackerElasticState& es : elastic_state_) {
    draining += (es.draining && !es.retired) ? 1u : 0u;
  }
  AutoscaleSignal sig;
  sig.now = sim_.now();
  sig.live_trackers = live_trackers_;
  sig.draining_trackers = draining;
  sig.pending_workflows = job_tracker_.active_workflows();
  sig.free_map_slots = cluster_.total_free(SlotType::kMap);
  sig.free_reduce_slots = cluster_.total_free(SlotType::kReduce);

  std::int32_t delta = 0;
  if (config_.autoscale_policy) {
    delta = config_.autoscale_policy(sig);
  } else if (sig.pending_workflows > as.scale_out_pending) {
    delta = static_cast<std::int32_t>(as.step);
  } else if (sig.pending_workflows < as.scale_in_pending) {
    delta = -static_cast<std::int32_t>(as.step);
  }

  if (delta > 0) {
    const std::size_t max_trackers =
        as.max_trackers != 0
            ? as.max_trackers
            : 4 * static_cast<std::size_t>(config_.cluster.num_trackers);
    const std::size_t room =
        max_trackers > live_trackers_ ? max_trackers - live_trackers_ : 0;
    const auto n = static_cast<std::uint32_t>(
        std::min<std::size_t>(static_cast<std::size_t>(delta), room));
    if (n > 0) join_trackers(n);
  } else if (delta < 0) {
    // Draining trackers are still "live" until retired; count them out so
    // repeated ticks cannot drain the cluster past min_trackers.
    std::size_t effective = live_trackers_ - std::min(draining, live_trackers_);
    for (std::int32_t k = 0; k < -delta; ++k) {
      if (effective <= as.min_trackers) break;
      const std::size_t victim = pick_drain_victim();
      if (victim == Cluster::kNoTracker) break;
      begin_decommission(victim, as.drain_lease);
      --effective;
    }
  }
}

void Engine::account_capacity_change(std::int64_t map_delta,
                                     std::int64_t reduce_delta) {
  if (!elastic_on_) return;  // static denominator; nothing to integrate
  const SimTime now = sim_.now();
  if (now > last_capacity_change_) {
    const auto window = static_cast<double>(now - last_capacity_change_);
    offered_slot_ms_[0] += static_cast<double>(current_capacity_[0]) * window;
    offered_slot_ms_[1] += static_cast<double>(current_capacity_[1]) * window;
    last_capacity_change_ = now;
  }
  current_capacity_[0] += map_delta;
  current_capacity_[1] += reduce_delta;
}

RunSummary Engine::summarize() const {
  RunSummary out;
  std::uint32_t with_deadline = 0;
  std::uint32_t missed = 0;
  for (const auto& wf_ptr : job_tracker_.workflows()) {
    const WorkflowRuntime& w = *wf_ptr;
    WorkflowResult r;
    r.id = w.id();
    r.name = w.spec().name;
    r.submit_time = w.submit_time();
    r.deadline = w.deadline();
    r.finish_time = w.finish_time();
    // Shed workflows read as failed() internally (same teardown guards) but
    // report as shed, not as fault casualties.
    r.shed = w.shed();
    r.failed = w.failed() && !w.shed();
    if (w.finished()) {
      r.workspan = w.finish_time() - w.submit_time();
      r.tardiness = w.deadline() == kTimeInfinity
                        ? 0
                        : std::max<Duration>(0, w.finish_time() - w.deadline());
      r.met_deadline = w.finish_time() <= w.deadline();
      out.makespan = std::max(out.makespan, w.finish_time());
    } else {
      // Unfinished at horizon (or failed permanently): count as a miss with
      // tardiness up to now.
      r.met_deadline = false;
      r.tardiness = w.deadline() == kTimeInfinity
                        ? 0
                        : std::max<Duration>(0, sim_.now() - w.deadline());
    }
    if (w.deadline() != kTimeInfinity) {
      ++with_deadline;
      if (!r.met_deadline) ++missed;
    }
    out.max_tardiness = std::max(out.max_tardiness, r.tardiness);
    out.total_tardiness += r.tardiness;
    out.workflows.push_back(std::move(r));
  }
  // Rejected submissions never entered the JobTracker; they still count as
  // misses when they carried a deadline (turning work away is not free).
  for (const WorkflowResult& r : rejected_results_) {
    if (r.deadline != kTimeInfinity) {
      ++with_deadline;
      ++missed;
    }
    out.workflows.push_back(r);
  }
  out.deadline_miss_ratio =
      with_deadline ? static_cast<double>(missed) / with_deadline : 0.0;

  const SimTime start = first_submit_ == kTimeInfinity ? 0 : first_submit_;
  const double span = static_cast<double>(std::max<SimTime>(1, out.makespan - start));
  const auto& cc = config_.cluster;
  if (elastic_on_) {
    // Offered capacity varied over the run: use the slot-ms integral from
    // first submission to the later of makespan / last capacity change.
    const SimTime end = std::max(out.makespan, last_capacity_change_);
    double offered[2];
    for (std::size_t s = 0; s < 2; ++s) {
      const auto tail = static_cast<double>(
          std::max<SimTime>(0, end - last_capacity_change_));
      offered[s] = offered_slot_ms_[s] +
                   static_cast<double>(current_capacity_[s]) * tail;
      offered[s] = std::max(offered[s], 1.0);
    }
    out.map_slot_utilization = busy_ms_[0] / offered[0];
    out.reduce_slot_utilization = busy_ms_[1] / offered[1];
    out.overall_utilization = (busy_ms_[0] + busy_ms_[1]) / (offered[0] + offered[1]);
  } else {
    out.map_slot_utilization =
        busy_ms_[0] / (span * static_cast<double>(cc.total_map_slots()));
    out.reduce_slot_utilization =
        busy_ms_[1] / (span * static_cast<double>(cc.total_reduce_slots()));
    out.overall_utilization = (busy_ms_[0] + busy_ms_[1]) /
                              (span * static_cast<double>(cc.total_slots()));
  }
  out.tasks_executed = tasks_executed_;
  out.tasks_failed = tasks_failed_;
  out.events_fired = sim_.events_fired();
  out.select_calls = select_calls_;
  out.select_wall_ms = select_wall_ms_;
  out.map_locality_ratio =
      total_maps_ ? static_cast<double>(local_maps_) / static_cast<double>(total_maps_)
                  : 1.0;
  out.tracker_crashes = tracker_crashes_;
  out.attempts_killed = attempts_killed_;
  out.map_outputs_lost = map_outputs_lost_;
  out.workflows_failed = workflows_failed_;
  out.blacklistings = blacklistings_;
  out.speculative_launched = speculative_launched_;
  out.speculative_won = speculative_won_;
  out.speculative_wasted_ms = speculative_wasted_ms_;
  out.workflows_submitted = workflows_submitted_;
  out.workflows_rejected = workflows_rejected_;
  out.workflows_shed = workflows_shed_;
  out.pending_peak = pending_peak_;
  out.tracker_decommissions = decommissions_;
  out.tracker_preemptions = preemptions_;
  out.trackers_joined = trackers_joined_;
  out.drain_migrated = drain_migrated_;
  return out;
}

}  // namespace woha::hadoop

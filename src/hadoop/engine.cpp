#include "hadoop/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "common/log.hpp"

namespace woha::hadoop {

Engine::Engine(EngineConfig config, std::unique_ptr<WorkflowScheduler> scheduler)
    : config_(config),
      cluster_(config.cluster),
      scheduler_(std::move(scheduler)),
      rng_(config.seed) {
  if (!scheduler_) throw std::invalid_argument("Engine: scheduler is null");
  if (config_.activation_latency < 0) {
    throw std::invalid_argument("Engine: negative activation latency");
  }
  if (config_.duration_scale <= 0.0) {
    throw std::invalid_argument("Engine: duration_scale must be positive");
  }
  if (config_.task_failure_prob < 0.0 || config_.task_failure_prob >= 1.0) {
    throw std::invalid_argument("Engine: task_failure_prob must be in [0, 1)");
  }
  if (config_.remote_map_penalty < 1.0) {
    throw std::invalid_argument("Engine: remote_map_penalty must be >= 1");
  }
  if (config_.hdfs_replication == 0) {
    throw std::invalid_argument("Engine: hdfs_replication must be >= 1");
  }
  scheduler_->attach(&job_tracker_);
  scheduler_->on_cluster_configured(config_.cluster.total_map_slots(),
                                    config_.cluster.total_reduce_slots());
}

void Engine::submit(wf::WorkflowSpec spec) {
  if (started_) throw std::logic_error("Engine::submit after run()");
  wf::validate(spec);
  pending_submissions_.push_back(std::move(spec));
}

Duration Engine::actual_duration(Duration estimated) {
  double d = static_cast<double>(estimated) * config_.duration_scale;
  if (config_.duration_jitter_sigma > 0.0) {
    // Log-normal multiplicative noise with median 1: durations stay
    // positive and the estimate is the median of the actual distribution.
    d *= rng_.log_normal(0.0, config_.duration_jitter_sigma);
  }
  return std::max<Duration>(1, static_cast<Duration>(std::llround(d)));
}

void Engine::run() {
  if (started_) throw std::logic_error("Engine::run called twice");
  started_ = true;

  const std::size_t expected_workflows = pending_submissions_.size();
  if (expected_workflows == 0) return;  // nothing to run

  // Schedule workflow submissions.
  for (auto& spec : pending_submissions_) {
    const SimTime at = std::max<SimTime>(0, spec.submit_time);
    first_submit_ = std::min(first_submit_, at);
    sim_.schedule_at(at, [this, spec = std::move(spec)]() mutable {
      do_submit(std::move(spec));
    });
  }
  pending_submissions_.clear();

  // Heartbeat loops, staggered so the master sees a steady request stream.
  const Duration hb = config_.cluster.heartbeat_period;
  if (hb <= 0) throw std::invalid_argument("Engine: heartbeat_period must be positive");
  for (std::size_t i = 0; i < cluster_.tracker_count(); ++i) {
    const SimTime first =
        config_.cluster.stagger_heartbeats
            ? static_cast<SimTime>((static_cast<std::uint64_t>(i) * static_cast<std::uint64_t>(hb)) /
                                   cluster_.tracker_count())
            : 0;
    sim_.schedule_every(first, hb, [this, i]() {
      // Stop heartbeating once everything finished, so run() terminates.
      if (job_tracker_.active_workflows() == 0 &&
          job_tracker_.workflow_count() > 0) {
        return;
      }
      heartbeat(i);
    });
  }
  // The heartbeat events above repeat forever; run with a stop condition:
  // when no workflow is active and no submission is pending, request stop.
  // We piggyback the check on every event via a small watcher loop.
  while (true) {
    if (!sim_.step(config_.horizon)) break;
    if (job_tracker_.workflow_count() == expected_workflows &&
        job_tracker_.active_workflows() == 0) {
      break;  // all submitted workflows finished
    }
  }
}

void Engine::do_submit(wf::WorkflowSpec spec) {
  const WorkflowId id = job_tracker_.add_workflow(std::move(spec), sim_.now());
  WorkflowRuntime& wf_rt = job_tracker_.workflow(id);
  WOHA_LOG(LogLevel::kInfo, "engine")
      << "t=" << sim_.now() << " submit workflow " << id.value() << " ('"
      << wf_rt.spec().name << "', deadline=" << wf_rt.deadline() << ")";
  scheduler_->on_workflow_submitted(id, sim_.now());
  // Initially runnable jobs go through the same activation path as unlocked
  // dependents (submitter map task latency).
  for (std::uint32_t j : wf::initial_jobs(wf_rt.spec())) {
    const JobRef ref{id.value(), j};
    wf_rt.job(j).mark_activating();
    sim_.schedule_after(config_.activation_latency,
                        [this, ref]() { activate_job(ref); });
  }
}

void Engine::activate_job(JobRef ref) {
  JobInProgress& job = job_tracker_.job(ref);
  job.mark_active(sim_.now());
  WOHA_LOG(LogLevel::kDebug, "engine")
      << "t=" << sim_.now() << " activate job w" << ref.workflow << "/j" << ref.job
      << " ('" << job.spec().name << "')";
  scheduler_->on_job_activated(ref, sim_.now());
}

void Engine::heartbeat(std::size_t tracker_index) {
  TrackerState& tracker = cluster_.tracker(tracker_index);
  // Offer every idle slot on this tracker; maps first (Hadoop-1's
  // assignTasks fills map slots before reduce slots).
  for (const SlotType type : {SlotType::kMap, SlotType::kReduce}) {
    while (tracker.free_slots(type) > 0) {
      const auto t0 = std::chrono::steady_clock::now();
      const auto choice = scheduler_->select_task(type, sim_.now());
      const auto t1 = std::chrono::steady_clock::now();
      ++select_calls_;
      select_wall_ms_ += std::chrono::duration<double, std::milli>(t1 - t0).count();
      if (!choice) break;
      start_task(*choice, type, tracker_index);
    }
  }
}

bool Engine::map_is_local(JobRef ref, std::size_t tracker_index) {
  // Randomized HDFS placement: each map attempt's split has
  // `hdfs_replication` replicas on uniformly random trackers. We draw the
  // replica set lazily per attempt rather than materializing a block map —
  // statistically equivalent for uniform placement, and it keeps memory
  // flat for huge jobs.
  (void)ref;
  const std::size_t n = cluster_.tracker_count();
  for (std::uint32_t r = 0; r < config_.hdfs_replication; ++r) {
    if (static_cast<std::size_t>(
            rng_.uniform_int(0, static_cast<std::int64_t>(n) - 1)) == tracker_index) {
      return true;
    }
  }
  return false;
}

void Engine::start_task(JobRef ref, SlotType type, std::size_t tracker_index) {
  JobInProgress& job = job_tracker_.job(ref);
  if (!job.has_available(type)) {
    throw std::logic_error("Engine: scheduler returned job without available " +
                           std::string(to_string(type)) + " task (" +
                           scheduler_->name() + ")");
  }
  job.start_task(type);
  cluster_.occupy(tracker_index, type);
  WorkflowRuntime& wf_rt = job_tracker_.workflow(WorkflowId(ref.workflow));
  wf_rt.count_scheduled_task();
  ++tasks_executed_;

  const Duration est =
      type == SlotType::kMap ? job.spec().map_duration : job.spec().reduce_duration;
  Duration dur = actual_duration(est);
  if (type == SlotType::kMap) {
    ++total_maps_;
    if (config_.remote_map_penalty > 1.0 && !map_is_local(ref, tracker_index)) {
      dur = static_cast<Duration>(
          std::llround(static_cast<double>(dur) * config_.remote_map_penalty));
    } else {
      ++local_maps_;
    }
  }

  // Failure injection: the attempt dies at a uniformly random point of its
  // execution, holding (and wasting) the slot until then.
  bool failed = false;
  if (config_.task_failure_prob > 0.0 && rng_.chance(config_.task_failure_prob)) {
    failed = true;
    dur = std::max<Duration>(1, static_cast<Duration>(
                                    static_cast<double>(dur) * rng_.uniform()));
  }
  busy_ms_[static_cast<std::size_t>(type)] += static_cast<double>(dur);

  if (task_observer_) {
    task_observer_(TaskEvent{sim_.now(), WorkflowId(ref.workflow), ref, type, true,
                             false, 0});
  }
  sim_.schedule_after(dur, [this, ref, type, tracker_index, failed, dur]() {
    finish_task(ref, type, tracker_index, failed, dur);
  });
}

void Engine::finish_task(JobRef ref, SlotType type, std::size_t tracker_index,
                         bool failed, Duration duration) {
  cluster_.release(tracker_index, type);
  JobInProgress& job = job_tracker_.job(ref);
  if (failed) {
    ++tasks_failed_;
    job.fail_task(type);
    scheduler_->on_task_finished(ref, type, sim_.now());
    if (task_observer_) {
      task_observer_(TaskEvent{sim_.now(), WorkflowId(ref.workflow), ref, type,
                               false, true, duration});
    }
    // The task re-enters the pending pool; the next heartbeat with a free
    // slot may schedule a fresh attempt (Hadoop's retry behaviour).
    return;
  }
  const bool job_done = job.finish_task(type, sim_.now());
  scheduler_->on_task_finished(ref, type, sim_.now());
  if (task_observer_) {
    task_observer_(TaskEvent{sim_.now(), WorkflowId(ref.workflow), ref, type,
                             false, false, duration});
  }
  if (!job_done) return;

  WorkflowRuntime& wf_rt = job_tracker_.workflow(WorkflowId(ref.workflow));
  WOHA_LOG(LogLevel::kDebug, "engine")
      << "t=" << sim_.now() << " job w" << ref.workflow << "/j" << ref.job
      << " complete";
  const auto unlocked = wf_rt.on_job_complete(ref.job, sim_.now());
  scheduler_->on_job_completed(ref, sim_.now());
  for (std::uint32_t j : unlocked) {
    const JobRef dep{ref.workflow, j};
    wf_rt.job(j).mark_activating();
    sim_.schedule_after(config_.activation_latency,
                        [this, dep]() { activate_job(dep); });
  }
  if (wf_rt.finished()) {
    job_tracker_.count_workflow_finished();
    WOHA_LOG(LogLevel::kInfo, "engine")
        << "t=" << sim_.now() << " workflow " << ref.workflow << " finished"
        << (wf_rt.finish_time() <= wf_rt.deadline() ? " (deadline met)"
                                                    : " (DEADLINE MISSED)");
    scheduler_->on_workflow_completed(WorkflowId(ref.workflow), sim_.now());
  }
}

RunSummary Engine::summarize() const {
  RunSummary out;
  std::uint32_t with_deadline = 0;
  std::uint32_t missed = 0;
  for (const auto& wf_ptr : job_tracker_.workflows()) {
    const WorkflowRuntime& w = *wf_ptr;
    WorkflowResult r;
    r.id = w.id();
    r.name = w.spec().name;
    r.submit_time = w.submit_time();
    r.deadline = w.deadline();
    r.finish_time = w.finish_time();
    if (w.finished()) {
      r.workspan = w.finish_time() - w.submit_time();
      r.tardiness = w.deadline() == kTimeInfinity
                        ? 0
                        : std::max<Duration>(0, w.finish_time() - w.deadline());
      r.met_deadline = w.finish_time() <= w.deadline();
      out.makespan = std::max(out.makespan, w.finish_time());
    } else {
      // Unfinished at horizon: count as a miss with tardiness up to now.
      r.met_deadline = false;
      r.tardiness = w.deadline() == kTimeInfinity
                        ? 0
                        : std::max<Duration>(0, sim_.now() - w.deadline());
    }
    if (w.deadline() != kTimeInfinity) {
      ++with_deadline;
      if (!r.met_deadline) ++missed;
    }
    out.max_tardiness = std::max(out.max_tardiness, r.tardiness);
    out.total_tardiness += r.tardiness;
    out.workflows.push_back(std::move(r));
  }
  out.deadline_miss_ratio =
      with_deadline ? static_cast<double>(missed) / with_deadline : 0.0;

  const SimTime start = first_submit_ == kTimeInfinity ? 0 : first_submit_;
  const double span = static_cast<double>(std::max<SimTime>(1, out.makespan - start));
  const auto& cc = config_.cluster;
  out.map_slot_utilization =
      busy_ms_[0] / (span * static_cast<double>(cc.total_map_slots()));
  out.reduce_slot_utilization =
      busy_ms_[1] / (span * static_cast<double>(cc.total_reduce_slots()));
  out.overall_utilization = (busy_ms_[0] + busy_ms_[1]) /
                            (span * static_cast<double>(cc.total_slots()));
  out.tasks_executed = tasks_executed_;
  out.tasks_failed = tasks_failed_;
  out.events_fired = sim_.events_fired();
  out.select_calls = select_calls_;
  out.select_wall_ms = select_wall_ms_;
  out.map_locality_ratio =
      total_maps_ ? static_cast<double>(local_maps_) / static_cast<double>(total_maps_)
                  : 1.0;
  return out;
}

}  // namespace woha::hadoop

// Runtime state of wjobs and workflows inside the (simulated) JobTracker.
//
// Mirrors Hadoop-1's JobInProgress: a job moves through
//   waiting (predecessors unfinished) -> activating (submitter latency)
//   -> active (tasks schedulable) -> complete,
// with the map phase gating the reduce phase (all m maps must finish before
// any reduce may start — Algorithm 1's model; Hadoop slow-start is out of
// scope, see README).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "workflow/workflow.hpp"

namespace woha::hadoop {

/// Identifies a job to the scheduler: (workflow index, wjob index) — both
/// dense indices into the JobTracker's tables.
struct JobRef {
  std::uint32_t workflow = 0;
  std::uint32_t job = 0;
  friend constexpr auto operator<=>(const JobRef&, const JobRef&) = default;
};

class WorkflowRuntime;

/// Receives incremental availability deltas from every workflow (the
/// JobTracker implements this to maintain cluster-global per-slot-type
/// counts of schedulable jobs, so schedulers can answer "is anything at all
/// runnable?" in O(1) instead of scanning their queues).
class AvailabilityListener {
 public:
  virtual ~AvailabilityListener() = default;
  /// `delta` is +1 (a job of `wf` became schedulable for type `t`) or -1.
  virtual void on_available_jobs_changed(WorkflowId wf, SlotType t, int delta) = 0;
};

enum class JobState : std::uint8_t {
  kWaiting,     ///< Some prerequisite wjob has not finished.
  kActivating,  ///< Prereqs done; submitter map task is loading jars / splits.
  kActive,      ///< Schedulable: has pending or running tasks.
  kComplete,    ///< All maps and reduces finished.
  kFailed,      ///< A task exhausted its attempt budget (or the workflow died).
};

class JobInProgress {
 public:
  JobInProgress(JobRef ref, const wf::JobSpec& spec)
      : ref_(ref),
        spec_(&spec),
        pending_maps_(spec.num_maps),
        pending_reduces_(spec.num_reduces) {
    pending_by_retry_[0].assign(1, spec.num_maps);
    pending_by_retry_[1].assign(1, spec.num_reduces);
  }

  [[nodiscard]] JobRef ref() const { return ref_; }
  [[nodiscard]] const wf::JobSpec& spec() const { return *spec_; }
  [[nodiscard]] JobState state() const { return state_; }

  [[nodiscard]] std::uint32_t pending(SlotType t) const {
    return t == SlotType::kMap ? pending_maps_ : pending_reduces_;
  }
  [[nodiscard]] std::uint32_t running(SlotType t) const {
    return t == SlotType::kMap ? running_maps_ : running_reduces_;
  }
  [[nodiscard]] std::uint32_t finished(SlotType t) const {
    return t == SlotType::kMap ? finished_maps_ : finished_reduces_;
  }
  [[nodiscard]] std::uint32_t running_total() const {
    return running_maps_ + running_reduces_;
  }

  [[nodiscard]] bool map_phase_done() const {
    return finished_maps_ == spec_->num_maps;
  }
  /// A task of type `t` could be handed to a free slot right now.
  [[nodiscard]] bool has_available(SlotType t) const {
    if (state_ != JobState::kActive) return false;
    if (t == SlotType::kMap) return pending_maps_ > 0;
    return pending_reduces_ > 0 && map_phase_done();
  }
  /// True when any task (map or reduce) is currently assignable.
  [[nodiscard]] bool has_any_available() const {
    return has_available(SlotType::kMap) || has_available(SlotType::kReduce);
  }
  [[nodiscard]] bool complete() const { return state_ == JobState::kComplete; }

  [[nodiscard]] SimTime activation_time() const { return activation_time_; }
  [[nodiscard]] SimTime finish_time() const { return finish_time_; }

  // --- state transitions (driven by the JobTracker/engine) -------------
  void mark_activating() { state_ = JobState::kActivating; }
  void mark_active(SimTime now);
  /// Account a task handed to a slot. Requires has_available(t). Pending
  /// tasks with prior failed attempts are served first (Hadoop prioritises
  /// failed tasks); returns the retry level of the attempt (0 = first try).
  std::uint32_t start_task(SlotType t);
  /// Account a finished task; flips the job to kComplete when the last
  /// reduce (or last map of a map-only job) finishes. Returns true exactly
  /// when this call completed the job.
  bool finish_task(SlotType t, SimTime now);
  /// Account a failed attempt: the task leaves the running set and returns
  /// to the pending pool at retry level `retry_level` (its prior level + 1).
  void fail_task(SlotType t, std::uint32_t retry_level = 0);
  /// Account a KILLED attempt (tracker loss): like fail_task but the retry
  /// does not advance — kills never count against the attempt budget.
  void requeue_running(SlotType t, std::uint32_t retry_level);
  /// Node loss invalidated `count` completed map outputs (Hadoop-1 stores
  /// them on the slave's local disk): the maps return to the pending pool
  /// as fresh tasks and the map phase reopens. Illegal on a complete job —
  /// a complete job's outputs have been fully consumed by its reduces.
  void invalidate_finished_maps(std::uint32_t count);
  /// A task exhausted max_attempts (or the workflow failed): the job stops
  /// offering tasks forever.
  void mark_failed();

  [[nodiscard]] std::uint32_t failed_attempts() const { return failed_attempts_; }

 private:
  friend class WorkflowRuntime;

  /// Re-derive both has_available flags and push deltas to the owning
  /// workflow when one flipped. Every mutator ends with this call, so the
  /// cached availability index can never go stale.
  void sync_avail();

  JobRef ref_;
  const wf::JobSpec* spec_;
  WorkflowRuntime* owner_ = nullptr;  ///< set by WorkflowRuntime; never reseated
  bool avail_cached_[2] = {false, false};
  JobState state_ = JobState::kWaiting;
  std::uint32_t pending_maps_;
  std::uint32_t running_maps_ = 0;
  std::uint32_t finished_maps_ = 0;
  std::uint32_t pending_reduces_;
  std::uint32_t running_reduces_ = 0;
  std::uint32_t finished_reduces_ = 0;
  std::uint32_t failed_attempts_ = 0;
  SimTime activation_time_ = -1;
  SimTime finish_time_ = -1;
  /// pending_by_retry_[slot][level] = pending tasks whose next attempt is
  /// attempt number level+1. Totals are mirrored in pending_maps_ /
  /// pending_reduces_.
  std::vector<std::uint32_t> pending_by_retry_[2];

  void add_pending(SlotType t, std::uint32_t retry_level, std::uint32_t count);
};

/// Runtime state of one workflow W_i.
class WorkflowRuntime {
 public:
  WorkflowRuntime(WorkflowId id, wf::WorkflowSpec spec, SimTime submit_time);
  // Jobs hold a back-pointer to their workflow; relocating the workflow
  // would dangle it.
  WorkflowRuntime(const WorkflowRuntime&) = delete;
  WorkflowRuntime& operator=(const WorkflowRuntime&) = delete;

  [[nodiscard]] WorkflowId id() const { return id_; }
  [[nodiscard]] const wf::WorkflowSpec& spec() const { return spec_; }
  [[nodiscard]] SimTime submit_time() const { return submit_time_; }
  /// Absolute deadline D_i (kTimeInfinity if none).
  [[nodiscard]] SimTime deadline() const { return deadline_; }
  [[nodiscard]] SimTime finish_time() const { return finish_time_; }
  [[nodiscard]] bool finished() const { return finish_time_ >= 0; }
  /// True when a job failed permanently (task exhausted its attempt budget).
  [[nodiscard]] bool failed() const { return failed_; }
  [[nodiscard]] SimTime fail_time() const { return fail_time_; }
  /// True when the admission controller shed this workflow to keep the
  /// pending budget. A shed workflow also reads as failed() so every
  /// "skip dead workflows" guard applies; summaries report it separately.
  [[nodiscard]] bool shed() const { return shed_; }

  [[nodiscard]] std::size_t job_count() const { return jobs_.size(); }
  [[nodiscard]] JobInProgress& job(std::uint32_t j) { return jobs_[j]; }
  [[nodiscard]] const JobInProgress& job(std::uint32_t j) const { return jobs_[j]; }

  /// Number of unfinished prerequisite wjobs of job j.
  [[nodiscard]] std::uint32_t remaining_prereqs(std::uint32_t j) const {
    return remaining_prereqs_[j];
  }
  /// Direct dependents of job j (inverse prerequisite relation).
  [[nodiscard]] const std::vector<std::uint32_t>& dependents(std::uint32_t j) const {
    return dependents_[j];
  }

  /// True progress rho_i: tasks of this workflow handed to slots so far.
  [[nodiscard]] std::uint64_t tasks_scheduled() const { return tasks_scheduled_; }
  void count_scheduled_task() { ++tasks_scheduled_; }

  /// Number of this workflow's jobs with has_available(t) — maintained
  /// incrementally, so schedulers can skip a whole workflow in O(1).
  [[nodiscard]] std::uint32_t available_jobs(SlotType t) const {
    return avail_jobs_[static_cast<std::size_t>(t)];
  }
  /// Forward availability deltas (typically to the owning JobTracker).
  void set_availability_listener(AvailabilityListener* listener) {
    listener_ = listener;
  }

  /// Called when job j finishes; decrements dependents' prereq counters and
  /// returns the newly unlocked job indices. Marks the workflow finished
  /// when the last job completes.
  std::vector<std::uint32_t> on_job_complete(std::uint32_t j, SimTime now);

  /// Task -> job -> workflow failure propagation: every non-complete job is
  /// marked kFailed so nothing of this workflow is ever scheduled again.
  void mark_failed(SimTime now);
  /// Deadline-aware load shedding: same teardown as mark_failed, but the
  /// workflow is additionally tagged shed() so it is not counted as a fault
  /// casualty.
  void mark_shed(SimTime now);

  [[nodiscard]] std::uint32_t unfinished_jobs() const { return unfinished_jobs_; }

 private:
  friend class JobInProgress;
  void on_job_avail_changed(SlotType t, int delta);

  WorkflowId id_;
  wf::WorkflowSpec spec_;
  SimTime submit_time_;
  SimTime deadline_;
  SimTime finish_time_ = -1;
  bool failed_ = false;
  bool shed_ = false;
  SimTime fail_time_ = -1;
  std::vector<JobInProgress> jobs_;
  std::vector<std::uint32_t> remaining_prereqs_;
  std::vector<std::vector<std::uint32_t>> dependents_;
  std::uint32_t unfinished_jobs_;
  std::uint64_t tasks_scheduled_ = 0;
  std::uint32_t avail_jobs_[2] = {0, 0};
  AvailabilityListener* listener_ = nullptr;
};

}  // namespace woha::hadoop

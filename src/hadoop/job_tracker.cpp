#include "hadoop/job_tracker.hpp"

#include "obs/event_bus.hpp"

namespace woha::hadoop {

WorkflowId JobTracker::add_workflow(wf::WorkflowSpec spec, SimTime now) {
  const WorkflowId id(static_cast<std::uint32_t>(workflows_.size()));
  workflows_.push_back(std::make_unique<WorkflowRuntime>(id, std::move(spec), now));
  workflows_.back()->set_availability_listener(this);
  ++active_workflows_;
  if (bus_ && bus_->active()) {
    const WorkflowRuntime& rt = *workflows_.back();
    bus_->publish(now, obs::WorkflowSubmitted{
                           id.value(), rt.spec().name, rt.deadline(),
                           static_cast<std::uint32_t>(rt.spec().job_count())});
  }
  return id;
}

void JobTracker::on_available_jobs_changed(WorkflowId /*wf*/, SlotType t, int delta) {
  auto& count = available_jobs_[static_cast<std::size_t>(t)];
  if (delta < 0 && count == 0) {
    throw std::logic_error("JobTracker: available-jobs count underflow");
  }
  count += static_cast<std::uint64_t>(static_cast<std::int64_t>(delta));
}

}  // namespace woha::hadoop

#include "hadoop/job_tracker.hpp"

#include "obs/event_bus.hpp"

namespace woha::hadoop {

WorkflowId JobTracker::add_workflow(wf::WorkflowSpec spec, SimTime now) {
  const WorkflowId id(static_cast<std::uint32_t>(workflows_.size()));
  workflows_.push_back(std::make_unique<WorkflowRuntime>(id, std::move(spec), now));
  ++active_workflows_;
  if (bus_ && bus_->active()) {
    const WorkflowRuntime& rt = *workflows_.back();
    bus_->publish(now, obs::WorkflowSubmitted{
                           id.value(), rt.spec().name, rt.deadline(),
                           static_cast<std::uint32_t>(rt.spec().job_count())});
  }
  return id;
}

}  // namespace woha::hadoop

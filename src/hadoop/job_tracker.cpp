#include "hadoop/job_tracker.hpp"

namespace woha::hadoop {

WorkflowId JobTracker::add_workflow(wf::WorkflowSpec spec, SimTime now) {
  const WorkflowId id(static_cast<std::uint32_t>(workflows_.size()));
  workflows_.push_back(std::make_unique<WorkflowRuntime>(id, std::move(spec), now));
  ++active_workflows_;
  return id;
}

}  // namespace woha::hadoop

// Static cluster description and per-TaskTracker runtime slot state.
//
// Hadoop-1 statically partitions each slave (TaskTracker) into map slots and
// reduce slots; the JobTracker learns about idle slots only through periodic
// heartbeats. Both facts matter for fidelity: schedulers see slot-granular,
// heartbeat-delayed availability, exactly as the paper's evaluation cluster
// did (80 servers x (2 map + 1 reduce), 3 s heartbeat).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/types.hpp"

namespace woha::obs {
class Gauge;
}  // namespace woha::obs

namespace woha::hadoop {

struct ClusterConfig {
  std::uint32_t num_trackers = 80;
  std::uint32_t map_slots_per_tracker = 2;
  std::uint32_t reduce_slots_per_tracker = 1;
  /// TaskTracker heartbeat period (Hadoop-1 default: 3 s).
  Duration heartbeat_period = seconds(3);
  /// Stagger first heartbeats uniformly over one period so the master does
  /// not see all trackers in the same tick (true in any real cluster).
  bool stagger_heartbeats = true;

  [[nodiscard]] std::uint32_t total_map_slots() const {
    return num_trackers * map_slots_per_tracker;
  }
  [[nodiscard]] std::uint32_t total_reduce_slots() const {
    return num_trackers * reduce_slots_per_tracker;
  }
  [[nodiscard]] std::uint32_t total_slots() const {
    return total_map_slots() + total_reduce_slots();
  }

  /// The paper's evaluation cluster: 80 servers, 2 map + 1 reduce slot each.
  [[nodiscard]] static ClusterConfig paper_80_servers();
  /// The paper's Fig. 11 setup: 32 slaves, 2 map + 1 reduce slot each.
  [[nodiscard]] static ClusterConfig paper_32_slaves();
  /// A cluster with the given slot totals, e.g. "200m-200r" from Fig. 8:
  /// `with_totals(200, 200)`. Picks a tracker count that divides both.
  [[nodiscard]] static ClusterConfig with_totals(std::uint32_t map_slots,
                                                 std::uint32_t reduce_slots);
};

/// Runtime slot occupancy of one TaskTracker.
class TrackerState {
 public:
  TrackerState(TrackerId id, std::uint32_t map_slots, std::uint32_t reduce_slots)
      : id_(id), free_{map_slots, reduce_slots}, capacity_{map_slots, reduce_slots} {}

  [[nodiscard]] TrackerId id() const { return id_; }
  [[nodiscard]] std::uint32_t free_slots(SlotType t) const {
    return free_[static_cast<std::size_t>(t)];
  }
  [[nodiscard]] std::uint32_t capacity(SlotType t) const {
    return capacity_[static_cast<std::size_t>(t)];
  }

  /// False between a crash and the subsequent restart. A dead tracker sends
  /// no heartbeats, so it is never offered work; its slot bookkeeping is
  /// reconciled when the JobTracker detects the loss (lease expiry).
  [[nodiscard]] bool alive() const { return alive_; }
  void set_alive(bool alive) { alive_ = alive; }

  /// True while the tracker drains (graceful decommission or preemption
  /// warning): it keeps heartbeating and finishing its running attempts but
  /// must never be offered new work, so it stays off both freelists.
  [[nodiscard]] bool draining() const { return draining_; }
  void set_draining(bool draining) { draining_ = draining; }
  /// Alive and not draining: eligible for freelist membership.
  [[nodiscard]] bool offerable() const { return alive_ && !draining_; }

  /// Claim one slot for a starting task. Throws if no slot is free — the
  /// engine must never over-assign.
  void occupy(SlotType t);
  /// Release one slot at task completion. Throws if already all free.
  void release(SlotType t);

 private:
  TrackerId id_;
  std::uint32_t free_[2];
  std::uint32_t capacity_[2];
  bool alive_ = true;
  bool draining_ = false;
};

/// All trackers of a cluster plus aggregate free-slot counters and, per slot
/// type, an intrusive doubly-linked freelist of live trackers with at least
/// one free slot of that type. The freelist is updated incrementally on
/// every occupy/release/crash/restart (O(1) each), so "is any slot of type t
/// free anywhere?" and "enumerate trackers with a free t-slot" never scan
/// the full tracker array — the scan was O(trackers) per query and dominated
/// large-cluster runs. List order is recency of becoming free (push-front),
/// not tracker index; consumers that need a deterministic order independent
/// of history must not rely on it.
class Cluster {
 public:
  /// Sentinel terminating freelist traversal.
  static constexpr std::size_t kNoTracker = static_cast<std::size_t>(-1);

  explicit Cluster(const ClusterConfig& config);

  [[nodiscard]] const ClusterConfig& config() const { return config_; }
  [[nodiscard]] std::size_t tracker_count() const { return trackers_.size(); }
  [[nodiscard]] TrackerState& tracker(std::size_t i) { return trackers_[i]; }
  [[nodiscard]] const TrackerState& tracker(std::size_t i) const { return trackers_[i]; }

  [[nodiscard]] std::uint32_t total_free(SlotType t) const {
    return total_free_[static_cast<std::size_t>(t)];
  }
  [[nodiscard]] std::uint32_t total_busy(SlotType t) const;

  /// Number of live trackers with >= 1 free slot of type `t`.
  [[nodiscard]] std::uint32_t free_tracker_count(SlotType t) const {
    return free_count_[static_cast<std::size_t>(t)];
  }
  /// Head of the type-`t` freelist (kNoTracker when empty).
  [[nodiscard]] std::size_t first_free(SlotType t) const {
    return head_[static_cast<std::size_t>(t)];
  }
  /// Successor of `tracker_index` on the type-`t` freelist (kNoTracker at
  /// the tail). Only meaningful while the tracker is on the list.
  [[nodiscard]] std::size_t next_free(SlotType t, std::size_t tracker_index) const {
    return next_[static_cast<std::size_t>(t)].at(tracker_index);
  }

  /// Aggregate bookkeeping wrappers — keep the totals in sync with the
  /// per-tracker state.
  void occupy(std::size_t tracker_index, SlotType t);
  void release(std::size_t tracker_index, SlotType t);

  /// Mark a tracker dead at the instant of the crash: it stops heartbeating
  /// and leaves both freelists immediately (its slots stay formally occupied
  /// until detect_tracker_loss reconciles them). The only sanctioned way to
  /// kill a tracker — writing TrackerState::set_alive directly would leave
  /// the freelists stale.
  void mark_dead(std::size_t tracker_index);

  /// Remove a lost tracker's slots from the aggregate pool once the
  /// JobTracker detects the loss. Requires the tracker marked dead and all
  /// its slots released (the engine re-queues its attempts first).
  void deactivate(std::size_t tracker_index);
  /// Return a restarted tracker to the pool with every slot free. Clears any
  /// draining flag: a re-registered node is a fresh worker.
  void activate(std::size_t tracker_index);

  /// Start draining a live tracker (graceful decommission / preemption
  /// warning): it leaves both freelists and stays off them while its running
  /// attempts finish. Idempotent; throws if the tracker is dead.
  void set_draining(std::size_t tracker_index);

  /// Register one fresh tracker with the configured per-tracker slot shape.
  /// Grows the freelist index arrays, adds the new capacity to the aggregate
  /// pool, and links the newcomer onto both freelists. Returns its index.
  /// ClusterConfig::num_trackers keeps the *initial* count.
  std::size_t add_tracker();

  /// Publish the aggregate free-slot counts into two registry gauges
  /// (updated on every occupy/release/activate/deactivate). Either pointer
  /// may be null; with both null the hook costs one branch.
  void set_slot_gauges(obs::Gauge* free_map, obs::Gauge* free_reduce);

 private:
  void update_gauges() const;
  /// Push `tracker_index` onto the front of the type-`s` freelist.
  void link(std::size_t tracker_index, std::size_t s);
  /// Remove `tracker_index` from the type-`s` freelist (must be on it).
  void unlink(std::size_t tracker_index, std::size_t s);
  [[nodiscard]] bool on_freelist(std::size_t tracker_index, std::size_t s) const {
    return prev_[s][tracker_index] != kNoTracker || head_[s] == tracker_index;
  }

  ClusterConfig config_;
  std::vector<TrackerState> trackers_;
  std::uint32_t total_free_[2];
  // Aggregate slot capacity over *all* registered trackers (initial +
  // joined); unlike config_.total_*_slots() this tracks add_tracker.
  std::uint32_t capacity_total_[2] = {0, 0};
  // Intrusive per-slot-type freelists over tracker indices.
  std::vector<std::size_t> next_[2];
  std::vector<std::size_t> prev_[2];
  std::size_t head_[2] = {kNoTracker, kNoTracker};
  std::uint32_t free_count_[2] = {0, 0};
  obs::Gauge* gauges_[2] = {nullptr, nullptr};
};

}  // namespace woha::hadoop

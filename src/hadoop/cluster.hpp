// Static cluster description and per-TaskTracker runtime slot state.
//
// Hadoop-1 statically partitions each slave (TaskTracker) into map slots and
// reduce slots; the JobTracker learns about idle slots only through periodic
// heartbeats. Both facts matter for fidelity: schedulers see slot-granular,
// heartbeat-delayed availability, exactly as the paper's evaluation cluster
// did (80 servers x (2 map + 1 reduce), 3 s heartbeat).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/types.hpp"

namespace woha::obs {
class Gauge;
}  // namespace woha::obs

namespace woha::hadoop {

struct ClusterConfig {
  std::uint32_t num_trackers = 80;
  std::uint32_t map_slots_per_tracker = 2;
  std::uint32_t reduce_slots_per_tracker = 1;
  /// TaskTracker heartbeat period (Hadoop-1 default: 3 s).
  Duration heartbeat_period = seconds(3);
  /// Stagger first heartbeats uniformly over one period so the master does
  /// not see all trackers in the same tick (true in any real cluster).
  bool stagger_heartbeats = true;

  [[nodiscard]] std::uint32_t total_map_slots() const {
    return num_trackers * map_slots_per_tracker;
  }
  [[nodiscard]] std::uint32_t total_reduce_slots() const {
    return num_trackers * reduce_slots_per_tracker;
  }
  [[nodiscard]] std::uint32_t total_slots() const {
    return total_map_slots() + total_reduce_slots();
  }

  /// The paper's evaluation cluster: 80 servers, 2 map + 1 reduce slot each.
  [[nodiscard]] static ClusterConfig paper_80_servers();
  /// The paper's Fig. 11 setup: 32 slaves, 2 map + 1 reduce slot each.
  [[nodiscard]] static ClusterConfig paper_32_slaves();
  /// A cluster with the given slot totals, e.g. "200m-200r" from Fig. 8:
  /// `with_totals(200, 200)`. Picks a tracker count that divides both.
  [[nodiscard]] static ClusterConfig with_totals(std::uint32_t map_slots,
                                                 std::uint32_t reduce_slots);
};

/// Runtime slot occupancy of one TaskTracker.
class TrackerState {
 public:
  TrackerState(TrackerId id, std::uint32_t map_slots, std::uint32_t reduce_slots)
      : id_(id), free_{map_slots, reduce_slots}, capacity_{map_slots, reduce_slots} {}

  [[nodiscard]] TrackerId id() const { return id_; }
  [[nodiscard]] std::uint32_t free_slots(SlotType t) const {
    return free_[static_cast<std::size_t>(t)];
  }
  [[nodiscard]] std::uint32_t capacity(SlotType t) const {
    return capacity_[static_cast<std::size_t>(t)];
  }

  /// False between a crash and the subsequent restart. A dead tracker sends
  /// no heartbeats, so it is never offered work; its slot bookkeeping is
  /// reconciled when the JobTracker detects the loss (lease expiry).
  [[nodiscard]] bool alive() const { return alive_; }
  void set_alive(bool alive) { alive_ = alive; }

  /// Claim one slot for a starting task. Throws if no slot is free — the
  /// engine must never over-assign.
  void occupy(SlotType t);
  /// Release one slot at task completion. Throws if already all free.
  void release(SlotType t);

 private:
  TrackerId id_;
  std::uint32_t free_[2];
  std::uint32_t capacity_[2];
  bool alive_ = true;
};

/// All trackers of a cluster plus aggregate free-slot counters.
class Cluster {
 public:
  explicit Cluster(const ClusterConfig& config);

  [[nodiscard]] const ClusterConfig& config() const { return config_; }
  [[nodiscard]] std::size_t tracker_count() const { return trackers_.size(); }
  [[nodiscard]] TrackerState& tracker(std::size_t i) { return trackers_[i]; }
  [[nodiscard]] const TrackerState& tracker(std::size_t i) const { return trackers_[i]; }

  [[nodiscard]] std::uint32_t total_free(SlotType t) const {
    return total_free_[static_cast<std::size_t>(t)];
  }
  [[nodiscard]] std::uint32_t total_busy(SlotType t) const;

  /// Aggregate bookkeeping wrappers — keep the totals in sync with the
  /// per-tracker state.
  void occupy(std::size_t tracker_index, SlotType t);
  void release(std::size_t tracker_index, SlotType t);

  /// Remove a lost tracker's slots from the aggregate pool once the
  /// JobTracker detects the loss. Requires the tracker marked dead and all
  /// its slots released (the engine re-queues its attempts first).
  void deactivate(std::size_t tracker_index);
  /// Return a restarted tracker to the pool with every slot free.
  void activate(std::size_t tracker_index);

  /// Publish the aggregate free-slot counts into two registry gauges
  /// (updated on every occupy/release/activate/deactivate). Either pointer
  /// may be null; with both null the hook costs one branch.
  void set_slot_gauges(obs::Gauge* free_map, obs::Gauge* free_reduce);

 private:
  void update_gauges() const;

  ClusterConfig config_;
  std::vector<TrackerState> trackers_;
  std::uint32_t total_free_[2];
  obs::Gauge* gauges_[2] = {nullptr, nullptr};
};

}  // namespace woha::hadoop

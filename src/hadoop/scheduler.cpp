#include "hadoop/scheduler.hpp"

#include "hadoop/job_tracker.hpp"
#include "obs/event_bus.hpp"

namespace woha::hadoop {

bool WorkflowScheduler::nothing_available(SlotType t) const {
  if (bus_ && bus_->active()) return false;
  return tracker_ != nullptr && tracker_->available_jobs(t) == 0;
}

std::uint32_t WorkflowScheduler::select_tasks(
    const SlotOffer& slot, std::uint32_t limit,
    const std::function<void(JobRef)>& start, SimTime now) {
  std::uint32_t started = 0;
  while (started < limit) {
    const std::optional<JobRef> choice = select_task(slot, now);
    if (!choice.has_value()) break;
    start(*choice);
    ++started;
  }
  return started;
}

}  // namespace woha::hadoop

#include "hadoop/scheduler.hpp"

#include "hadoop/job_tracker.hpp"
#include "obs/event_bus.hpp"

namespace woha::hadoop {

bool WorkflowScheduler::nothing_available(SlotType t) const {
  if (bus_ && bus_->active()) return false;
  return tracker_ != nullptr && tracker_->available_jobs(t) == 0;
}

}  // namespace woha::hadoop

// Deterministic happens-before race detection over annotated touchpoints.
//
// TSan observes the ONE interleaving a test happened to execute; a data race
// that needs a different schedule stays invisible. This layer instead tracks
// the happens-before order the *program structure* guarantees — ThreadPool
// task boundaries (submit -> task start, task end -> wait_idle/destructor
// return) modelled as release/acquire edges over vector clocks — and checks
// every annotated shared-state touchpoint (PlanCache insert/claim,
// MetricsRegistry merge, EventBus publish/subscribe, grid result slots,
// plan-prewarm slots) against it. Two touches of the same touchpoint
// instance that are not HB-ordered are reported as a violation regardless of
// how the schedule actually interleaved them, so a single run under any seed
// finds ordering bugs TSan's observed schedule would miss.
//
// The annotations are compiled in unconditionally and cost one relaxed
// atomic load plus a branch while no detector is installed — the golden
// digest suites run with them present, pinning that the layer is inert.
// Install a detector (tests only) with set_detector(); enable the
// schedule-perturbation yields with set_perturb(). Everything here is
// instrumentation: it never draws from an RNG stream, never reads simulated
// time, and never feeds a scheduling decision.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "analysis/vector_clock.hpp"

namespace woha::analysis {

/// One unordered pair of touches on the same touchpoint instance.
struct Violation {
  std::string point;        ///< touchpoint name
  std::uint64_t instance;   ///< instance id (which cache / slot / bus)
  std::uint32_t first_thread = 0;
  std::uint32_t second_thread = 0;
  bool first_write = false;
  bool second_write = false;
  std::string first_site;   ///< annotation site of the earlier touch
  std::string second_site;  ///< annotation site of the flagged touch
  [[nodiscard]] std::string describe() const;
};

class RaceDetector {
 public:
  /// Publish the calling thread's history into sync object `sync`, then
  /// advance the thread's clock (a release edge; sync 0 is a no-op).
  void hb_release(std::uint64_t sync);

  /// Observe everything published into `sync` (an acquire edge).
  void hb_acquire(std::uint64_t sync);

  /// Record an access to (point, instance) by the calling thread and check
  /// it against every recorded access not ordered before it: write/write
  /// and read/write pairs without a happens-before edge are violations.
  void touch(const char* point, std::uint64_t instance, bool write,
             const char* site);

  [[nodiscard]] std::vector<Violation> violations() const;
  [[nodiscard]] std::size_t violation_count() const;
  /// All violations, one describe() line each; empty string when clean.
  [[nodiscard]] std::string report() const;
  void clear();

 private:
  struct Access {
    std::uint32_t epoch = 0;  ///< 0 = never touched by that thread
    const char* site = "";
  };
  struct Touchpoint {
    std::vector<Access> reads;   ///< indexed by thread
    std::vector<Access> writes;  ///< indexed by thread
  };

  void record_violation(const std::string& point_name, std::uint64_t instance,
                        std::uint32_t prior_thread, bool prior_write,
                        const char* prior_site, std::uint32_t thread, bool write,
                        const char* site);

  static constexpr std::size_t kMaxViolations = 256;

  mutable std::mutex mutex_;  // lint: lock-rank(mutex_)=90
  std::vector<VectorClock> clocks_;                       ///< per thread
  std::map<std::uint64_t, VectorClock> syncs_;            ///< per sync object
  /// Deterministically ordered by (point, instance) so reports are stable.
  std::map<std::pair<std::string, std::uint64_t>, Touchpoint> points_;
  std::vector<Violation> violations_;
};

/// Install/read the process-wide detector (tests only; null = annotations
/// are inert). The pointer is read with relaxed atomics on every annotation.
void set_detector(RaceDetector* detector);
[[nodiscard]] RaceDetector* detector();

/// Schedule-perturbation mode: annotated touchpoints additionally yield the
/// CPU, widening the interleaving space the seeded pool sweep explores.
void set_perturb(bool enabled);
[[nodiscard]] bool perturb_active();

/// Dense per-thread index (assigned on first use, process-wide).
[[nodiscard]] std::uint32_t thread_index();

/// Fresh instance ids for annotated objects and slot arrays. Ids are unique
/// for the process lifetime, so recycled heap addresses can never alias two
/// different objects' touch histories.
[[nodiscard]] std::uint64_t new_instance_id();
[[nodiscard]] std::uint64_t new_instance_block(std::uint64_t count);

// --- annotation entry points (cheap when no detector is installed) ---------

inline void maybe_yield() {
  if (perturb_active()) std::this_thread::yield();
}

inline void hb_release(std::uint64_t sync) {
  if (RaceDetector* d = detector()) d->hb_release(sync);
}

inline void hb_acquire(std::uint64_t sync) {
  if (RaceDetector* d = detector()) d->hb_acquire(sync);
}

inline void touch_read(const char* point, std::uint64_t instance,
                       const char* site) {
  maybe_yield();
  if (RaceDetector* d = detector()) d->touch(point, instance, false, site);
}

inline void touch_write(const char* point, std::uint64_t instance,
                        const char* site) {
  maybe_yield();
  if (RaceDetector* d = detector()) d->touch(point, instance, true, site);
}

}  // namespace woha::analysis

#include "analysis/race_detector.hpp"

#include <sstream>
#include <utility>

namespace woha::analysis {

namespace {

// Analysis-layer globals: the installed detector, the perturbation flag, and
// the id wells. All are instrumentation plumbing — none is read by decision
// code, and the ids never influence results (they only key touch histories).
static std::atomic<RaceDetector*> g_detector{nullptr};      // lint: allowlisted shared-mutable-static
static std::atomic<bool> g_perturb{false};                  // lint: allowlisted shared-mutable-static
static std::atomic<std::uint32_t> g_next_thread{0};         // lint: allowlisted shared-mutable-static
static std::atomic<std::uint64_t> g_next_instance{1};       // lint: allowlisted shared-mutable-static
static thread_local std::uint32_t t_thread_index = 0xffffffffu;  // lint: allowlisted shared-mutable-static

}  // namespace

void set_detector(RaceDetector* det) {
  g_detector.store(det, std::memory_order_release);
}

RaceDetector* detector() { return g_detector.load(std::memory_order_acquire); }

void set_perturb(bool enabled) {
  g_perturb.store(enabled, std::memory_order_relaxed);
}

bool perturb_active() { return g_perturb.load(std::memory_order_relaxed); }

std::uint32_t thread_index() {
  if (t_thread_index == 0xffffffffu) {
    t_thread_index = g_next_thread.fetch_add(1, std::memory_order_relaxed);
  }
  return t_thread_index;
}

std::uint64_t new_instance_id() {
  return g_next_instance.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t new_instance_block(std::uint64_t count) {
  return g_next_instance.fetch_add(count == 0 ? 1 : count,
                                   std::memory_order_relaxed);
}

std::string Violation::describe() const {
  std::ostringstream out;
  out << "race on " << point << "[" << instance << "]: "
      << (first_write ? "write" : "read") << " by thread " << first_thread
      << " at " << first_site << " is unordered with "
      << (second_write ? "write" : "read") << " by thread " << second_thread
      << " at " << second_site;
  return out.str();
}

void RaceDetector::hb_release(std::uint64_t sync) {
  if (sync == 0) return;
  const std::uint32_t t = thread_index();
  const std::unique_lock<std::mutex> lock(mutex_);
  if (clocks_.size() <= t) clocks_.resize(t + 1);
  syncs_[sync].join(clocks_[t]);
  clocks_[t].tick(t);
}

void RaceDetector::hb_acquire(std::uint64_t sync) {
  if (sync == 0) return;
  const std::uint32_t t = thread_index();
  const std::unique_lock<std::mutex> lock(mutex_);
  if (clocks_.size() <= t) clocks_.resize(t + 1);
  const auto it = syncs_.find(sync);
  if (it != syncs_.end()) clocks_[t].join(it->second);
}

void RaceDetector::touch(const char* point, std::uint64_t instance, bool write,
                         const char* site) {
  const std::uint32_t t = thread_index();
  const std::unique_lock<std::mutex> lock(mutex_);
  if (clocks_.size() <= t) clocks_.resize(t + 1);
  VectorClock& clock = clocks_[t];
  const std::uint32_t epoch = clock.tick(t);

  Touchpoint& tp = points_[{point, instance}];
  if (tp.reads.size() <= t) tp.reads.resize(t + 1);
  if (tp.writes.size() <= t) tp.writes.resize(t + 1);

  // A write conflicts with every unordered prior access; a read only with
  // unordered prior writes (read/read is always fine).
  for (std::uint32_t u = 0; u < tp.writes.size(); ++u) {
    if (u == t) continue;
    const Access& w = tp.writes[u];
    if (w.epoch != 0 && !clock.covers(u, w.epoch)) {
      record_violation(point, instance, u, true, w.site, t, write, site);
    }
  }
  if (write) {
    for (std::uint32_t u = 0; u < tp.reads.size(); ++u) {
      if (u == t) continue;
      const Access& r = tp.reads[u];
      if (r.epoch != 0 && !clock.covers(u, r.epoch)) {
        record_violation(point, instance, u, false, r.site, t, write, site);
      }
    }
  }

  Access& slot = write ? tp.writes[t] : tp.reads[t];
  slot.epoch = epoch;
  slot.site = site;
}

void RaceDetector::record_violation(const std::string& point_name,
                                    std::uint64_t instance,
                                    std::uint32_t prior_thread, bool prior_write,
                                    const char* prior_site, std::uint32_t thread,
                                    bool write, const char* site) {
  if (violations_.size() >= kMaxViolations) return;
  Violation v;
  v.point = point_name;
  v.instance = instance;
  v.first_thread = prior_thread;
  v.second_thread = thread;
  v.first_write = prior_write;
  v.second_write = write;
  v.first_site = prior_site;
  v.second_site = site;
  violations_.push_back(std::move(v));
}

std::vector<Violation> RaceDetector::violations() const {
  const std::unique_lock<std::mutex> lock(mutex_);
  return violations_;
}

std::size_t RaceDetector::violation_count() const {
  const std::unique_lock<std::mutex> lock(mutex_);
  return violations_.size();
}

std::string RaceDetector::report() const {
  const std::unique_lock<std::mutex> lock(mutex_);
  std::string out;
  for (const Violation& v : violations_) {
    out += v.describe();
    out += '\n';
  }
  return out;
}

void RaceDetector::clear() {
  const std::unique_lock<std::mutex> lock(mutex_);
  syncs_.clear();
  points_.clear();
  violations_.clear();
  clocks_.clear();
}

}  // namespace woha::analysis

// Vector clocks for the happens-before race detector (analysis/race_detector).
//
// A clock maps dense thread indices (assigned by the detector on first use,
// never std::thread::id — thread ids are nondeterministic across runs, which
// is exactly what the thread-id-as-key lint rule exists to keep out of the
// codebase) to per-thread event counters. Component i of a thread's clock is
// the newest event of thread i the owner has (transitively) observed through
// acquire edges.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace woha::analysis {

class VectorClock {
 public:
  /// Component for thread `t` (0 when the clock has never seen `t`).
  [[nodiscard]] std::uint32_t at(std::size_t t) const {
    return t < ticks_.size() ? ticks_[t] : 0u;
  }

  /// Advance this thread's own component; returns the new epoch.
  std::uint32_t tick(std::size_t t) {
    grow(t);
    return ++ticks_[t];
  }

  /// Pointwise maximum: observe everything `other` has observed.
  void join(const VectorClock& other) {
    if (other.ticks_.size() > ticks_.size()) ticks_.resize(other.ticks_.size(), 0);
    for (std::size_t i = 0; i < other.ticks_.size(); ++i) {
      ticks_[i] = std::max(ticks_[i], other.ticks_[i]);
    }
  }

  /// True when this clock has observed thread `t` at least to `epoch` —
  /// i.e. the event (t, epoch) happens-before the owner's current point.
  [[nodiscard]] bool covers(std::size_t t, std::uint32_t epoch) const {
    return at(t) >= epoch;
  }

  [[nodiscard]] std::size_t size() const { return ticks_.size(); }

 private:
  void grow(std::size_t t) {
    if (t >= ticks_.size()) ticks_.resize(t + 1, 0);
  }

  std::vector<std::uint32_t> ticks_;
};

}  // namespace woha::analysis

#include "obs/log_bridge.hpp"

#include <cstdio>

namespace woha::obs {

LogBridge::LogBridge(EventBus& bus, bool mirror_to_stderr) {
  previous_ = set_log_sink(
      [&bus, mirror_to_stderr, this](LogLevel level, const std::string& component,
                                     const std::string& message) {
        bus.publish(bus.now(), LogEmitted{level, component, message});
        if (mirror_to_stderr) {
          if (previous_) {
            previous_(level, component, message);
          } else {
            std::fprintf(stderr, "[sim t=%lld] %s: %s\n",
                         static_cast<long long>(bus.now()), component.c_str(),
                         message.c_str());
          }
        }
      });
}

LogBridge::~LogBridge() { set_log_sink(previous_); }

}  // namespace woha::obs

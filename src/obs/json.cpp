#include "obs/json.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace woha::obs {

std::string JsonWriter::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::comma_if_needed() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value completes a "key": pair; no comma
  }
  if (!need_comma_stack_.empty()) {
    if (need_comma_stack_.back() == '1') out_ += ',';
    need_comma_stack_.back() = '1';
  }
}

void JsonWriter::open(char c) {
  comma_if_needed();
  out_ += c;
  need_comma_stack_ += '0';
}

void JsonWriter::close(char c) {
  out_ += c;
  if (!need_comma_stack_.empty()) need_comma_stack_.pop_back();
}

void JsonWriter::key(const std::string& k) {
  comma_if_needed();
  out_ += '"';
  out_ += escape(k);
  out_ += "\":";
  pending_key_ = true;
}

void JsonWriter::value(const std::string& v) {
  comma_if_needed();
  out_ += '"';
  out_ += escape(v);
  out_ += '"';
}

void JsonWriter::value(bool v) {
  comma_if_needed();
  out_ += v ? "true" : "false";
}

void JsonWriter::value(double v) {
  comma_if_needed();
  if (!std::isfinite(v)) {
    out_ += "null";  // JSON has no Inf/NaN
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  out_ += buf;
}

void JsonWriter::value(std::int64_t v) {
  comma_if_needed();
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  out_ += buf;
}

void JsonWriter::value(std::uint64_t v) {
  comma_if_needed();
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out_ += buf;
}

void JsonWriter::raw_value(const std::string& raw) {
  comma_if_needed();
  out_ += raw;
}

}  // namespace woha::obs

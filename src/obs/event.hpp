// Typed structured events — the vocabulary of the observability layer.
//
// Every interesting state transition in a run (workflow/job/task lifecycle,
// heartbeats, node faults, speculative launches, queue reorders, scheduler
// decisions) is one of the payload structs below, stamped with the simulated
// time it happened at and published on the EventBus. Exporters (JSONL,
// Chrome trace_event, slot timelines) and tests consume the same stream;
// nothing in the simulator ever *reads* the bus, so publishing can never
// perturb simulated time or RNG draws.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/log.hpp"
#include "common/types.hpp"

namespace woha::obs {

// ---- workflow lifecycle ----------------------------------------------------

/// A workflow was registered on the master (paper step (f)).
struct WorkflowSubmitted {
  std::uint32_t workflow = 0;
  std::string name;
  SimTime deadline = kTimeInfinity;  ///< absolute; kTimeInfinity = none
  std::uint32_t jobs = 0;
};

/// All jobs of the workflow finished.
struct WorkflowCompleted {
  std::uint32_t workflow = 0;
  bool met_deadline = false;
};

/// A task exhausted its attempt budget; the workflow terminated unfinished.
struct WorkflowFailed {
  std::uint32_t workflow = 0;
};

/// Admission control turned a submission away before it reached the
/// JobTracker (the workflow never got a WorkflowId). `submission` is the
/// dense submission index, shared with admitted workflows.
struct WorkflowRejected {
  std::uint32_t submission = 0;
  std::string name;
  SimTime deadline = kTimeInfinity;  ///< absolute; kTimeInfinity = none
  std::string reason;                ///< "infeasible" or "pending-budget"
};

/// Deadline-aware load shedding killed an admitted workflow to keep the
/// pending set within budget (shed_latest_deadline_first).
struct WorkflowShed {
  std::uint32_t workflow = 0;
  SimTime deadline = kTimeInfinity;
  std::uint32_t attempts_killed = 0;
};

// ---- job lifecycle ---------------------------------------------------------

/// The wjob's submitter task finished loading it; it is now schedulable.
struct JobActivated {
  std::uint32_t workflow = 0;
  std::uint32_t job = 0;
};

/// Every task of the wjob finished.
struct JobCompleted {
  std::uint32_t workflow = 0;
  std::uint32_t job = 0;
};

// ---- task lifecycle --------------------------------------------------------

/// A task attempt was handed to a slot. `speculative` marks LATE-style
/// backup attempts (they occupy a slot but are not new task progress).
struct TaskStarted {
  std::uint64_t attempt = 0;  ///< unique per run, matches the TaskEnded pair
  std::uint32_t workflow = 0;
  std::uint32_t job = 0;
  SlotType slot = SlotType::kMap;
  std::size_t tracker = 0;
  Duration scheduled_duration = 0;  ///< what the engine drew for this attempt
  bool speculative = false;
};

/// Why an attempt was killed. Forensics classifies each kill into an
/// attribution bucket by this cause, so every kill site must name one.
enum class KillCause : std::uint8_t {
  kNone = 0,          ///< not killed (finished or injected failure)
  kNodeLoss,          ///< tracker crashed; kill recorded at detection time
  kSpeculationRace,   ///< lost the original-vs-backup race
  kWorkflowFailed,    ///< sibling task exhausted the attempt budget
  kShed,              ///< workflow evicted by admission load shedding
  kDrainMigration,    ///< drain lease expired; attempt migrated elsewhere
  kPreemption,        ///< spot-preemption wave terminated the tracker
};

[[nodiscard]] const char* to_string(KillCause cause);

/// A task attempt left its slot: success, injected failure, or a KILL
/// (node loss, lost speculation race, workflow failure).
struct TaskEnded {
  std::uint64_t attempt = 0;
  std::uint32_t workflow = 0;
  std::uint32_t job = 0;
  SlotType slot = SlotType::kMap;
  std::size_t tracker = 0;
  bool failed = false;  ///< injected failure (counts against the budget)
  bool killed = false;  ///< killed, not finished (never feeds estimators)
  bool speculative = false;
  Duration ran_for = 0;  ///< actual execution time until the end event
  KillCause cause = KillCause::kNone;  ///< set iff killed
};

/// A speculative backup attempt was launched for a straggling original.
struct SpeculativeLaunched {
  std::uint64_t attempt = 0;           ///< the backup attempt's id
  std::uint64_t original_attempt = 0;  ///< the straggler being backed up
  std::uint32_t workflow = 0;
  std::uint32_t job = 0;
  SlotType slot = SlotType::kMap;
  std::size_t tracker = 0;
};

// ---- cluster / fault model -------------------------------------------------

/// One TaskTracker heartbeat was served by the master. Published after the
/// scheduler filled the tracker's idle slots.
struct HeartbeatServed {
  std::size_t tracker = 0;
  std::uint32_t assigned_map = 0;     ///< tasks started this heartbeat
  std::uint32_t assigned_reduce = 0;
  std::uint32_t free_map = 0;         ///< idle slots left afterwards
  std::uint32_t free_reduce = 0;
};

/// A TaskTracker went silent (crash injection). The master does not know
/// yet; detection follows at lease expiry or re-registration.
struct TrackerCrashed {
  std::size_t tracker = 0;
  SimTime restart_time = kTimeInfinity;  ///< kTimeInfinity = never restarts
};

/// The JobTracker declared the tracker lost and reconciled its state.
struct TrackerLost {
  std::size_t tracker = 0;
  SimTime crash_time = 0;
  std::uint32_t attempts_killed = 0;
  std::uint32_t map_outputs_lost = 0;
};

/// A crashed tracker re-registered with every slot free.
struct TrackerRestarted {
  std::size_t tracker = 0;
};

/// A tracker entered its drain lease (graceful decommission or autoscaler
/// scale-in): no new work is scheduled there; running attempts may finish
/// until `lease_deadline`, after which the rest migrate.
struct TrackerDraining {
  std::size_t tracker = 0;
  SimTime lease_deadline = 0;
};

/// A draining tracker retired from the pool: either its attempts all
/// finished within the lease, or the lease expired and `migrated` attempts
/// were killed and re-queued elsewhere.
struct TrackerDecommissioned {
  std::size_t tracker = 0;
  std::uint32_t migrated = 0;
};

/// A fresh tracker registered with the master mid-run (elastic join or
/// autoscaler scale-out) and is immediately eligible for work.
struct TrackerJoined {
  std::size_t tracker = 0;
};

/// A spot-preemption wave warned this tracker: it stops accepting work now
/// and terminates at `termination_time`. Unlike a crash, the master knows
/// immediately — no lease-expiry detection delay.
struct PreemptionWarning {
  std::size_t tracker = 0;
  SimTime termination_time = 0;
};

// ---- scheduler internals ---------------------------------------------------

/// WOHA generated a scheduling plan for a freshly submitted workflow
/// (client-side work, Fig. 1 steps (c)-(d)).
struct PlanGenerated {
  std::uint32_t workflow = 0;
  std::uint32_t resource_cap = 0;
  Duration simulated_makespan = 0;
  std::size_t steps = 0;
  std::uint64_t total_tasks = 0;
};

/// A workflow moved inside the priority queue outside the normal
/// assign-path repositioning — currently: progress regression after a node
/// fault re-queued `tasks_lost` of its tasks (rho rolled back, lag grew).
struct QueueReordered {
  std::uint32_t workflow = 0;
  std::uint64_t tasks_lost = 0;
};

/// One scheduling decision, with the ranking the scheduler consulted —
/// enough to *explain* every prioritization after the fact.
///
/// Candidate semantics per scheduler:
///   WOHA-*  — requirement = F_i(ttd), rho = rho_i, score = lag (descending);
///   EDF     — score = absolute workflow deadline (ascending);
///   EDF-JOB — score = virtual job deadline (ascending), job is set;
///   Fair    — score = running task count (ascending);
///   FIFO    — score = queue position (ascending), job is set.
struct SchedulerDecision {
  static constexpr std::uint32_t kNoJob = 0xffffffffu;

  std::string scheduler;  ///< WorkflowScheduler::name()
  SlotType slot = SlotType::kMap;
  std::size_t tracker = 0;
  bool assigned = false;        ///< false = slot left idle
  std::uint32_t workflow = 0;   ///< chosen workflow (when assigned)
  std::uint32_t job = kNoJob;   ///< chosen wjob (when assigned)

  struct Candidate {
    std::uint32_t workflow = 0;
    std::uint32_t job = kNoJob;       ///< job-level schedulers only
    std::int64_t score = 0;           ///< the ordering key (see above)
    std::uint64_t requirement = 0;    ///< WOHA: F_i(ttd)
    std::uint64_t rho = 0;            ///< WOHA: tasks handed to slots
  };
  /// Top-of-queue candidates in the order the scheduler considered them
  /// (bounded; see kMaxRankedCandidates).
  std::vector<Candidate> ranking;
};

/// How many queue-head candidates schedulers snapshot into
/// SchedulerDecision::ranking. Bounded so tracing a 10^5-workflow queue
/// stays O(1) per decision.
inline constexpr std::size_t kMaxRankedCandidates = 8;

// ---- diagnostics -----------------------------------------------------------

/// A WOHA_LOG line routed through the bus by obs::LogBridge; `time` on the
/// enclosing Event is simulated time, not wall-clock.
struct LogEmitted {
  LogLevel level = LogLevel::kInfo;
  std::string component;
  std::string message;
};

// ----------------------------------------------------------------------------

using Payload =
    std::variant<WorkflowSubmitted, WorkflowCompleted, WorkflowFailed,
                 WorkflowRejected, WorkflowShed, JobActivated, JobCompleted,
                 TaskStarted, TaskEnded, SpeculativeLaunched, HeartbeatServed,
                 TrackerCrashed, TrackerLost, TrackerRestarted, TrackerDraining,
                 TrackerDecommissioned, TrackerJoined, PreemptionWarning,
                 PlanGenerated, QueueReordered, SchedulerDecision, LogEmitted>;

struct Event {
  SimTime time = 0;  ///< simulated milliseconds
  Payload payload;
};

/// Stable kebab-case name of the payload alternative ("task-started", ...);
/// used as the JSONL "type" field and the Chrome-trace event name.
[[nodiscard]] const char* kind_name(const Payload& payload);

}  // namespace woha::obs

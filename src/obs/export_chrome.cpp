#include "obs/export_chrome.hpp"

#include "obs/json.hpp"

namespace woha::obs {

namespace {

/// Simulated ms -> trace_event microseconds.
std::int64_t us(SimTime t) { return t * 1000; }

std::string task_name(std::uint32_t workflow, std::uint32_t job) {
  return "w" + std::to_string(workflow) + "/j" + std::to_string(job);
}

}  // namespace

ChromeTraceExporter::ChromeTraceExporter(EventBus& bus, std::ostream& out,
                                         ChromeTraceOptions options)
    : bus_(bus), out_(out), options_(options) {
  out_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  subscription_ = bus_.subscribe([this](const Event& e) { on_event(e); });
}

ChromeTraceExporter::~ChromeTraceExporter() {
  finish();
  bus_.unsubscribe(subscription_);
}

void ChromeTraceExporter::finish() {
  if (finished_) return;
  finished_ = true;
  out_ << "]}\n";
  out_.flush();
}

void ChromeTraceExporter::emit(const std::string& json_object) {
  if (!first_) out_ << ",\n";
  first_ = false;
  out_ << json_object;
  ++events_;
}

void ChromeTraceExporter::ensure_process(std::uint64_t pid, const std::string& name) {
  if (known_pids_[pid]) return;
  known_pids_[pid] = true;
  JsonWriter w;
  w.begin_object();
  w.member("ph", "M");
  w.member("name", "process_name");
  w.member("pid", pid);
  w.key("args");
  w.begin_object();
  w.member("name", name);
  w.end_object();
  w.end_object();
  emit(w.take());
}

void ChromeTraceExporter::ensure_thread(std::uint64_t pid, std::uint64_t tid,
                                        const std::string& name) {
  const auto key = std::make_pair(pid, tid);
  if (known_tids_[key]) return;
  known_tids_[key] = true;
  JsonWriter w;
  w.begin_object();
  w.member("ph", "M");
  w.member("name", "thread_name");
  w.member("pid", pid);
  w.member("tid", tid);
  w.key("args");
  w.begin_object();
  w.member("name", name);
  w.end_object();
  w.end_object();
  emit(w.take());
}

std::uint64_t ChromeTraceExporter::acquire_lane(std::size_t tracker, SlotType slot,
                                                std::uint64_t attempt) {
  auto& pool = lanes_[{tracker, slot}];
  std::size_t lane = 0;
  while (lane < pool.size() && pool[lane] != 0) ++lane;
  if (lane == pool.size()) pool.push_back(0);
  pool[lane] = attempt;
  const std::uint64_t tid =
      (slot == SlotType::kMap ? 0 : kReduceTidBase) + lane;
  const std::uint64_t pid = kTrackerPidBase + tracker;
  ensure_process(pid, "TaskTracker " + std::to_string(tracker));
  ensure_thread(pid, tid,
                std::string(to_string(slot)) + " slot " + std::to_string(lane));
  return tid;
}

void ChromeTraceExporter::instant(SimTime t, std::uint64_t pid, std::uint64_t tid,
                                  const std::string& name,
                                  const std::string& args_json) {
  JsonWriter w;
  w.begin_object();
  w.member("ph", "i");
  w.member("s", "t");
  w.member("name", name);
  w.member("ts", us(t));
  w.member("pid", pid);
  w.member("tid", tid);
  if (!args_json.empty()) {
    w.key("args");
    w.raw_value(args_json);
  }
  w.end_object();
  emit(w.take());
}

void ChromeTraceExporter::handle(SimTime t, const TaskStarted& p) {
  const std::uint64_t pid = kTrackerPidBase + p.tracker;
  const std::uint64_t tid = acquire_lane(p.tracker, p.slot, p.attempt);
  open_slices_[p.attempt] = {pid, tid};
  JsonWriter w;
  w.begin_object();
  w.member("ph", "B");
  w.member("name", task_name(p.workflow, p.job));
  w.member("cat", p.speculative ? "task,speculative" : "task");
  w.member("ts", us(t));
  w.member("pid", pid);
  w.member("tid", tid);
  w.key("args");
  w.begin_object();
  w.member("attempt", p.attempt);
  w.member("workflow", p.workflow);
  w.member("job", p.job);
  w.member("speculative", p.speculative);
  w.end_object();
  w.end_object();
  emit(w.take());
}

void ChromeTraceExporter::handle(SimTime t, const TaskEnded& p) {
  const auto it = open_slices_.find(p.attempt);
  if (it == open_slices_.end()) return;  // exporter attached mid-run
  const auto [pid, tid] = it->second;
  open_slices_.erase(it);
  auto& pool = lanes_[{p.tracker, p.slot}];
  for (auto& occupant : pool) {
    if (occupant == p.attempt) {
      occupant = 0;
      break;
    }
  }
  JsonWriter w;
  w.begin_object();
  w.member("ph", "E");
  w.member("ts", us(t));
  w.member("pid", pid);
  w.member("tid", tid);
  w.key("args");
  w.begin_object();
  w.member("outcome", p.killed ? "killed" : (p.failed ? "failed" : "success"));
  if (p.killed && p.cause != KillCause::kNone) {
    w.member("kill_cause", to_string(p.cause));
  }
  w.member("ran_for", p.ran_for);
  w.end_object();
  w.end_object();
  emit(w.take());
}

void ChromeTraceExporter::handle_job_activated(SimTime t, const JobActivated& p) {
  if (!options_.prerequisites) return;
  job_activated_[{p.workflow, p.job}] = t;
  // Flow arrows: each prerequisite's completion feeds this activation. The
  // "s" end binds to the prerequisite's job span (emitted at its own
  // completion); trace viewers sort by ts, so emission order is free.
  const std::uint64_t tid = kJobTidBase + p.workflow;
  for (const std::uint32_t prereq : options_.prerequisites(p.workflow, p.job)) {
    const auto done = job_completed_.find({p.workflow, prereq});
    if (done == job_completed_.end()) continue;
    const std::uint64_t flow_id = (static_cast<std::uint64_t>(p.workflow) << 32) |
                                  (static_cast<std::uint64_t>(prereq) << 16) |
                                  p.job;
    for (const char* ph : {"s", "f"}) {
      JsonWriter w;
      w.begin_object();
      w.member("ph", ph);
      w.member("name", "dag");
      w.member("cat", "dag");
      w.member("id", flow_id);
      w.member("ts", us(ph[0] == 's' ? done->second : t));
      w.member("pid", kMasterPid);
      w.member("tid", tid);
      if (ph[0] == 'f') w.member("bp", "e");
      w.end_object();
      emit(w.take());
    }
  }
}

void ChromeTraceExporter::handle_job_completed(SimTime t, const JobCompleted& p) {
  if (!options_.prerequisites) return;
  job_completed_[{p.workflow, p.job}] = t;
  const auto started = job_activated_.find({p.workflow, p.job});
  if (started == job_activated_.end()) return;  // attached mid-run
  const std::uint64_t tid = kJobTidBase + p.workflow;
  ensure_thread(kMasterPid, tid, "w" + std::to_string(p.workflow) + " jobs");
  JsonWriter w;
  w.begin_object();
  w.member("ph", "X");
  w.member("name", task_name(p.workflow, p.job));
  w.member("cat", "job");
  w.member("ts", us(started->second));
  w.member("dur", us(t - started->second));
  w.member("pid", kMasterPid);
  w.member("tid", tid);
  w.key("args");
  w.begin_object();
  w.member("workflow", p.workflow);
  w.member("job", p.job);
  w.end_object();
  w.end_object();
  emit(w.take());
}

void ChromeTraceExporter::on_event(const Event& event) {
  if (finished_) {
    ++dropped_;
    return;
  }
  const SimTime t = event.time;
  ensure_process(kMasterPid, "JobTracker (master)");

  struct Visitor {
    ChromeTraceExporter& ex;
    SimTime t;

    void operator()(const WorkflowSubmitted& p) {
      ex.ensure_thread(kMasterPid, kWorkflowTid, "workflows");
      JsonWriter a;
      a.begin_object();
      a.member("workflow", p.workflow);
      a.member("name", p.name);
      if (p.deadline != kTimeInfinity) a.member("deadline_ms", p.deadline);
      a.member("jobs", p.jobs);
      a.end_object();
      ex.instant(t, kMasterPid, kWorkflowTid,
                 "submit w" + std::to_string(p.workflow), a.take());
    }
    void operator()(const WorkflowCompleted& p) {
      ex.ensure_thread(kMasterPid, kWorkflowTid, "workflows");
      JsonWriter a;
      a.begin_object();
      a.member("workflow", p.workflow);
      a.member("met_deadline", p.met_deadline);
      a.end_object();
      ex.instant(t, kMasterPid, kWorkflowTid,
                 "finish w" + std::to_string(p.workflow) +
                     (p.met_deadline ? "" : " (MISSED)"),
                 a.take());
    }
    void operator()(const WorkflowFailed& p) {
      ex.ensure_thread(kMasterPid, kWorkflowTid, "workflows");
      ex.instant(t, kMasterPid, kWorkflowTid,
                 "FAILED w" + std::to_string(p.workflow), "");
    }
    void operator()(const WorkflowRejected& p) {
      ex.ensure_thread(kMasterPid, kWorkflowTid, "workflows");
      JsonWriter a;
      a.begin_object();
      a.member("reason", p.reason);
      if (p.deadline != kTimeInfinity) a.member("deadline_ms", p.deadline);
      a.end_object();
      ex.instant(t, kMasterPid, kWorkflowTid, "REJECTED " + p.name, a.take());
    }
    void operator()(const WorkflowShed& p) {
      ex.ensure_thread(kMasterPid, kWorkflowTid, "workflows");
      JsonWriter a;
      a.begin_object();
      a.member("attempts_killed", p.attempts_killed);
      if (p.deadline != kTimeInfinity) a.member("deadline_ms", p.deadline);
      a.end_object();
      ex.instant(t, kMasterPid, kWorkflowTid,
                 "SHED w" + std::to_string(p.workflow), a.take());
    }
    void operator()(const JobActivated& p) { ex.handle_job_activated(t, p); }
    void operator()(const JobCompleted& p) { ex.handle_job_completed(t, p); }
    void operator()(const TaskStarted& p) { ex.handle(t, p); }
    void operator()(const TaskEnded& p) { ex.handle(t, p); }
    void operator()(const SpeculativeLaunched& p) {
      const std::uint64_t pid = kTrackerPidBase + p.tracker;
      ex.ensure_process(pid, "TaskTracker " + std::to_string(p.tracker));
      JsonWriter a;
      a.begin_object();
      a.member("backs_up_attempt", p.original_attempt);
      a.end_object();
      ex.instant(t, pid, 0, "speculative " + task_name(p.workflow, p.job),
                 a.take());
    }
    void operator()(const HeartbeatServed& p) {
      if (!ex.options_.include_heartbeats) return;
      const std::uint64_t pid = kTrackerPidBase + p.tracker;
      ex.ensure_process(pid, "TaskTracker " + std::to_string(p.tracker));
      JsonWriter w;
      w.begin_object();
      w.member("ph", "C");
      w.member("name", "free slots");
      w.member("ts", us(t));
      w.member("pid", pid);
      w.member("tid", static_cast<std::uint64_t>(0));
      w.key("args");
      w.begin_object();
      w.member("map", p.free_map);
      w.member("reduce", p.free_reduce);
      w.end_object();
      w.end_object();
      ex.emit(w.take());
    }
    void operator()(const TrackerCrashed& p) {
      const std::uint64_t pid = kTrackerPidBase + p.tracker;
      ex.ensure_process(pid, "TaskTracker " + std::to_string(p.tracker));
      JsonWriter a;
      a.begin_object();
      if (p.restart_time != kTimeInfinity) a.member("restart_at_ms", p.restart_time);
      a.end_object();
      ex.instant(t, pid, 0, "CRASH", a.take());
    }
    void operator()(const TrackerLost& p) {
      const std::uint64_t pid = kTrackerPidBase + p.tracker;
      ex.ensure_process(pid, "TaskTracker " + std::to_string(p.tracker));
      JsonWriter a;
      a.begin_object();
      a.member("attempts_killed", p.attempts_killed);
      a.member("map_outputs_lost", p.map_outputs_lost);
      a.end_object();
      ex.instant(t, pid, 0, "declared lost", a.take());
    }
    void operator()(const TrackerRestarted& p) {
      const std::uint64_t pid = kTrackerPidBase + p.tracker;
      ex.ensure_process(pid, "TaskTracker " + std::to_string(p.tracker));
      ex.instant(t, pid, 0, "re-registered", "");
    }
    void operator()(const TrackerDraining& p) {
      const std::uint64_t pid = kTrackerPidBase + p.tracker;
      ex.ensure_process(pid, "TaskTracker " + std::to_string(p.tracker));
      JsonWriter a;
      a.begin_object();
      a.member("lease_deadline_ms", p.lease_deadline);
      a.end_object();
      ex.instant(t, pid, 0, "draining", a.take());
    }
    void operator()(const TrackerDecommissioned& p) {
      const std::uint64_t pid = kTrackerPidBase + p.tracker;
      ex.ensure_process(pid, "TaskTracker " + std::to_string(p.tracker));
      JsonWriter a;
      a.begin_object();
      a.member("migrated", p.migrated);
      a.end_object();
      ex.instant(t, pid, 0, "decommissioned", a.take());
    }
    void operator()(const TrackerJoined& p) {
      const std::uint64_t pid = kTrackerPidBase + p.tracker;
      ex.ensure_process(pid, "TaskTracker " + std::to_string(p.tracker));
      ex.instant(t, pid, 0, "joined", "");
    }
    void operator()(const PreemptionWarning& p) {
      const std::uint64_t pid = kTrackerPidBase + p.tracker;
      ex.ensure_process(pid, "TaskTracker " + std::to_string(p.tracker));
      JsonWriter a;
      a.begin_object();
      a.member("termination_time_ms", p.termination_time);
      a.end_object();
      ex.instant(t, pid, 0, "PREEMPTION WARNING", a.take());
    }
    void operator()(const PlanGenerated& p) {
      ex.ensure_thread(kMasterPid, kWorkflowTid, "workflows");
      JsonWriter a;
      a.begin_object();
      a.member("resource_cap", p.resource_cap);
      a.member("simulated_makespan_ms", p.simulated_makespan);
      a.member("steps", static_cast<std::uint64_t>(p.steps));
      a.member("total_tasks", p.total_tasks);
      a.end_object();
      ex.instant(t, kMasterPid, kWorkflowTid,
                 "plan w" + std::to_string(p.workflow), a.take());
    }
    void operator()(const QueueReordered& p) {
      if (!ex.options_.include_decisions) return;
      ex.ensure_thread(kMasterPid, kDecisionTid, "decisions");
      JsonWriter a;
      a.begin_object();
      a.member("tasks_lost", p.tasks_lost);
      a.end_object();
      ex.instant(t, kMasterPid, kDecisionTid,
                 "reorder w" + std::to_string(p.workflow), a.take());
    }
    void operator()(const SchedulerDecision& p) {
      if (!ex.options_.include_decisions) return;
      ex.ensure_thread(kMasterPid, kDecisionTid, "decisions");
      JsonWriter a;
      a.begin_object();
      a.member("scheduler", p.scheduler);
      a.member("slot", to_string(p.slot));
      a.member("tracker", static_cast<std::uint64_t>(p.tracker));
      a.key("ranking");
      a.begin_array();
      for (const auto& c : p.ranking) {
        a.begin_object();
        a.member("workflow", c.workflow);
        if (c.job != SchedulerDecision::kNoJob) a.member("job", c.job);
        a.member("score", c.score);
        a.member("requirement", c.requirement);
        a.member("rho", c.rho);
        a.end_object();
      }
      a.end_array();
      a.end_object();
      const std::string name =
          p.assigned ? "assign " + task_name(p.workflow, p.job) : "idle";
      ex.instant(t, kMasterPid, kDecisionTid, name, a.take());
    }
    void operator()(const LogEmitted& p) {
      if (!ex.options_.include_logs) return;
      ex.ensure_thread(kMasterPid, kLogTid, "log");
      JsonWriter a;
      a.begin_object();
      a.member("component", p.component);
      a.member("message", p.message);
      a.end_object();
      ex.instant(t, kMasterPid, kLogTid, p.component, a.take());
    }
  };
  std::visit(Visitor{*this, t}, event.payload);
}

}  // namespace woha::obs

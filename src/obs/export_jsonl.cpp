#include "obs/export_jsonl.hpp"

#include "obs/json.hpp"

namespace woha::obs {

namespace {

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "trace";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

void write_payload(JsonWriter& w, const WorkflowSubmitted& p) {
  w.member("workflow", p.workflow);
  w.member("name", p.name);
  if (p.deadline != kTimeInfinity) w.member("deadline", p.deadline);
  w.member("jobs", p.jobs);
}

void write_payload(JsonWriter& w, const WorkflowCompleted& p) {
  w.member("workflow", p.workflow);
  w.member("met_deadline", p.met_deadline);
}

void write_payload(JsonWriter& w, const WorkflowFailed& p) {
  w.member("workflow", p.workflow);
}

void write_payload(JsonWriter& w, const WorkflowRejected& p) {
  w.member("submission", p.submission);
  w.member("name", p.name);
  if (p.deadline != kTimeInfinity) w.member("deadline", p.deadline);
  w.member("reason", p.reason);
}

void write_payload(JsonWriter& w, const WorkflowShed& p) {
  w.member("workflow", p.workflow);
  if (p.deadline != kTimeInfinity) w.member("deadline", p.deadline);
  w.member("attempts_killed", p.attempts_killed);
}

void write_payload(JsonWriter& w, const JobActivated& p) {
  w.member("workflow", p.workflow);
  w.member("job", p.job);
}

void write_payload(JsonWriter& w, const JobCompleted& p) {
  w.member("workflow", p.workflow);
  w.member("job", p.job);
}

void write_payload(JsonWriter& w, const TaskStarted& p) {
  w.member("attempt", p.attempt);
  w.member("workflow", p.workflow);
  w.member("job", p.job);
  w.member("slot", to_string(p.slot));
  w.member("tracker", static_cast<std::uint64_t>(p.tracker));
  w.member("scheduled_duration", p.scheduled_duration);
  if (p.speculative) w.member("speculative", true);
}

void write_payload(JsonWriter& w, const TaskEnded& p) {
  w.member("attempt", p.attempt);
  w.member("workflow", p.workflow);
  w.member("job", p.job);
  w.member("slot", to_string(p.slot));
  w.member("tracker", static_cast<std::uint64_t>(p.tracker));
  if (p.failed) w.member("failed", true);
  if (p.killed) w.member("killed", true);
  if (p.killed && p.cause != KillCause::kNone) {
    w.member("cause", to_string(p.cause));
  }
  if (p.speculative) w.member("speculative", true);
  w.member("ran_for", p.ran_for);
}

void write_payload(JsonWriter& w, const SpeculativeLaunched& p) {
  w.member("attempt", p.attempt);
  w.member("original_attempt", p.original_attempt);
  w.member("workflow", p.workflow);
  w.member("job", p.job);
  w.member("slot", to_string(p.slot));
  w.member("tracker", static_cast<std::uint64_t>(p.tracker));
}

void write_payload(JsonWriter& w, const HeartbeatServed& p) {
  w.member("tracker", static_cast<std::uint64_t>(p.tracker));
  w.member("assigned_map", p.assigned_map);
  w.member("assigned_reduce", p.assigned_reduce);
  w.member("free_map", p.free_map);
  w.member("free_reduce", p.free_reduce);
}

void write_payload(JsonWriter& w, const TrackerCrashed& p) {
  w.member("tracker", static_cast<std::uint64_t>(p.tracker));
  if (p.restart_time != kTimeInfinity) w.member("restart_time", p.restart_time);
}

void write_payload(JsonWriter& w, const TrackerLost& p) {
  w.member("tracker", static_cast<std::uint64_t>(p.tracker));
  w.member("crash_time", p.crash_time);
  w.member("attempts_killed", p.attempts_killed);
  w.member("map_outputs_lost", p.map_outputs_lost);
}

void write_payload(JsonWriter& w, const TrackerRestarted& p) {
  w.member("tracker", static_cast<std::uint64_t>(p.tracker));
}

void write_payload(JsonWriter& w, const TrackerDraining& p) {
  w.member("tracker", static_cast<std::uint64_t>(p.tracker));
  w.member("lease_deadline", p.lease_deadline);
}

void write_payload(JsonWriter& w, const TrackerDecommissioned& p) {
  w.member("tracker", static_cast<std::uint64_t>(p.tracker));
  w.member("migrated", p.migrated);
}

void write_payload(JsonWriter& w, const TrackerJoined& p) {
  w.member("tracker", static_cast<std::uint64_t>(p.tracker));
}

void write_payload(JsonWriter& w, const PreemptionWarning& p) {
  w.member("tracker", static_cast<std::uint64_t>(p.tracker));
  w.member("termination_time", p.termination_time);
}

void write_payload(JsonWriter& w, const PlanGenerated& p) {
  w.member("workflow", p.workflow);
  w.member("resource_cap", p.resource_cap);
  w.member("simulated_makespan", p.simulated_makespan);
  w.member("steps", static_cast<std::uint64_t>(p.steps));
  w.member("total_tasks", p.total_tasks);
}

void write_payload(JsonWriter& w, const QueueReordered& p) {
  w.member("workflow", p.workflow);
  w.member("tasks_lost", p.tasks_lost);
}

void write_payload(JsonWriter& w, const SchedulerDecision& p) {
  w.member("scheduler", p.scheduler);
  w.member("slot", to_string(p.slot));
  w.member("tracker", static_cast<std::uint64_t>(p.tracker));
  w.member("assigned", p.assigned);
  if (p.assigned) {
    w.member("workflow", p.workflow);
    if (p.job != SchedulerDecision::kNoJob) w.member("job", p.job);
  }
  w.key("ranking");
  w.begin_array();
  for (const auto& c : p.ranking) {
    w.begin_object();
    w.member("workflow", c.workflow);
    if (c.job != SchedulerDecision::kNoJob) w.member("job", c.job);
    w.member("score", c.score);
    w.member("requirement", c.requirement);
    w.member("rho", c.rho);
    w.end_object();
  }
  w.end_array();
}

void write_payload(JsonWriter& w, const LogEmitted& p) {
  w.member("level", level_tag(p.level));
  w.member("component", p.component);
  w.member("message", p.message);
}

}  // namespace

const char* to_string(KillCause cause) {
  switch (cause) {
    case KillCause::kNone: return "none";
    case KillCause::kNodeLoss: return "node-loss";
    case KillCause::kSpeculationRace: return "speculation-race";
    case KillCause::kWorkflowFailed: return "workflow-failed";
    case KillCause::kShed: return "shed";
    case KillCause::kDrainMigration: return "drain-migration";
    case KillCause::kPreemption: return "preemption";
  }
  return "?";
}

const char* kind_name(const Payload& payload) {
  struct Namer {
    const char* operator()(const WorkflowSubmitted&) { return "workflow-submitted"; }
    const char* operator()(const WorkflowCompleted&) { return "workflow-completed"; }
    const char* operator()(const WorkflowFailed&) { return "workflow-failed"; }
    const char* operator()(const WorkflowRejected&) { return "workflow-rejected"; }
    const char* operator()(const WorkflowShed&) { return "workflow-shed"; }
    const char* operator()(const JobActivated&) { return "job-activated"; }
    const char* operator()(const JobCompleted&) { return "job-completed"; }
    const char* operator()(const TaskStarted&) { return "task-started"; }
    const char* operator()(const TaskEnded&) { return "task-ended"; }
    const char* operator()(const SpeculativeLaunched&) {
      return "speculative-launched";
    }
    const char* operator()(const HeartbeatServed&) { return "heartbeat"; }
    const char* operator()(const TrackerCrashed&) { return "tracker-crashed"; }
    const char* operator()(const TrackerLost&) { return "tracker-lost"; }
    const char* operator()(const TrackerRestarted&) { return "tracker-restarted"; }
    const char* operator()(const TrackerDraining&) { return "tracker-draining"; }
    const char* operator()(const TrackerDecommissioned&) {
      return "tracker-decommissioned";
    }
    const char* operator()(const TrackerJoined&) { return "tracker-joined"; }
    const char* operator()(const PreemptionWarning&) { return "preemption-warning"; }
    const char* operator()(const PlanGenerated&) { return "plan-generated"; }
    const char* operator()(const QueueReordered&) { return "queue-reordered"; }
    const char* operator()(const SchedulerDecision&) { return "scheduler-decision"; }
    const char* operator()(const LogEmitted&) { return "log"; }
  };
  return std::visit(Namer{}, payload);
}

std::string event_to_json(const Event& event) {
  JsonWriter w;
  w.begin_object();
  w.member("t", event.time);
  w.member("type", std::string(kind_name(event.payload)));
  std::visit([&w](const auto& p) { write_payload(w, p); }, event.payload);
  w.end_object();
  return w.take();
}

JsonlExporter::JsonlExporter(EventBus& bus, std::ostream& out)
    : bus_(bus), out_(out) {
  subscription_ = bus_.subscribe([this](const Event& e) {
    if (closed_) {
      ++dropped_;
      return;
    }
    out_ << event_to_json(e) << '\n';
    ++lines_;
  });
}

void JsonlExporter::close() {
  if (closed_) return;
  closed_ = true;
  out_.flush();
}

JsonlExporter::~JsonlExporter() { bus_.unsubscribe(subscription_); }

}  // namespace woha::obs

// Minimal JSON writer shared by the registry snapshot and the exporters.
//
// Append-only: the caller drives structure (begin/end object, keys), the
// writer handles commas, escaping, and number formatting. No DOM, no
// allocation beyond the output string — exporters stream millions of events
// through this.
#pragma once

#include <cstdint>
#include <string>

namespace woha::obs {

class JsonWriter {
 public:
  /// The buffer being built; valid JSON once every begin_* is closed.
  [[nodiscard]] const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

  void begin_object() { open('{'); }
  void end_object() { close('}'); }
  void begin_array() { open('['); }
  void end_array() { close(']'); }

  /// Object member key; must be followed by exactly one value (or begin_*).
  void key(const std::string& k);

  void value(const std::string& v);
  void value(const char* v) { value(std::string(v)); }
  void value(bool v);
  void value(double v);
  void value(std::int64_t v);
  void value(std::uint64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(unsigned v) { value(static_cast<std::uint64_t>(v)); }

  /// key + value in one call.
  template <class T>
  void member(const std::string& k, const T& v) {
    key(k);
    value(v);
  }

  /// Append `raw` verbatim as one value (it must already be valid JSON).
  void raw_value(const std::string& raw);

  [[nodiscard]] static std::string escape(const std::string& s);

 private:
  void open(char c);
  void close(char c);
  void comma_if_needed();

  std::string out_;
  /// True when the next value/key at the current level needs a ',' first.
  std::string need_comma_stack_;  // one char per nesting level: '0' or '1'
  bool pending_key_ = false;
};

}  // namespace woha::obs

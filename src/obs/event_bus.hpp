// The event bus: a deterministic publish/subscribe fan-out for obs::Event.
//
// Design constraints (tested in tests/integration/observability_*):
//  * A bus with no subscribers must add no observable cost: publishers guard
//    event construction behind active(), which is a single empty() check.
//  * An active bus must not perturb the simulation: handlers run
//    synchronously, in subscription order, and the bus never touches
//    simulated time or any RNG stream. Publishing is append-only fan-out.
//
// "Lock-free in spirit": the simulator is single-threaded by construction,
// so the bus carries no locks at all — determinism comes from the fixed
// subscription order, not from synchronization.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "analysis/race_detector.hpp"
#include "obs/event.hpp"

namespace woha::obs {

class EventBus {
 public:
  using Handler = std::function<void(const Event&)>;
  using SubscriptionId = std::uint32_t;

  /// Register a handler; it sees every subsequent publish. Returns an id
  /// for unsubscribe(). Handlers fire in subscription order.
  SubscriptionId subscribe(Handler handler) {
    analysis::touch_write("event_bus", analysis_id_, "EventBus::subscribe");
    const SubscriptionId id = next_id_++;
    handlers_.emplace_back(id, std::move(handler));
    return id;
  }

  /// Remove a handler. No-op if the id is unknown.
  void unsubscribe(SubscriptionId id) {
    analysis::touch_write("event_bus", analysis_id_, "EventBus::unsubscribe");
    std::erase_if(handlers_, [id](const auto& e) { return e.first == id; });
  }

  /// True when at least one subscriber is attached. Publishers check this
  /// before constructing an event, so a disabled bus costs one branch.
  [[nodiscard]] bool active() const { return !handlers_.empty(); }

  [[nodiscard]] std::size_t subscriber_count() const { return handlers_.size(); }
  [[nodiscard]] std::uint64_t published() const { return published_; }

  /// Fan an event out to every subscriber, in subscription order.
  void publish(Event event) {
    if (handlers_.empty()) return;  // inactive bus stays a single branch
    analysis::touch_write("event_bus", analysis_id_, "EventBus::publish");
    ++published_;
    for (const auto& [id, handler] : handlers_) handler(event);
  }

  /// Fan out an event the caller keeps: no copy or move of the payload, so
  /// hot-path publishers can hold a long-lived Event and reuse its internal
  /// buffers (ranking vectors, strings) across publishes. Handlers receive
  /// const Event& either way; they must not retain references past return —
  /// the same rule publish() already implies.
  void publish_borrowed(const Event& event) {
    if (handlers_.empty()) return;  // inactive bus stays a single branch
    analysis::touch_write("event_bus", analysis_id_, "EventBus::publish");
    ++published_;
    for (const auto& [id, handler] : handlers_) handler(event);
  }

  /// Convenience: stamp `payload` with `time` and publish.
  template <class P>
  void publish(SimTime time, P payload) {
    publish(Event{time, Payload(std::move(payload))});
  }

  /// Simulated-time source for publishers without their own clock (the
  /// WOHA_LOG bridge). The engine installs its Simulation::now.
  void set_time_source(std::function<SimTime()> source) {
    time_source_ = std::move(source);
  }
  [[nodiscard]] SimTime now() const { return time_source_ ? time_source_() : 0; }

 private:
  std::vector<std::pair<SubscriptionId, Handler>> handlers_;
  std::function<SimTime()> time_source_;
  SubscriptionId next_id_ = 1;
  std::uint64_t published_ = 0;
  /// Race-detector touchpoint: a bus belongs to exactly one engine, and an
  /// engine to one grid worker — annotated publishes from two unordered
  /// threads mean a shared bus, the exact bug the obs thread-confinement
  /// rule forbids.
  std::uint64_t analysis_id_ = analysis::new_instance_id();
};

}  // namespace woha::obs

// WOHA_LOG -> event-bus bridge.
//
// While a LogBridge is alive, every enabled WOHA_LOG line is published on
// the bus as a LogEmitted event stamped with *simulated* time (taken from
// the bus's time source, which the engine installs) instead of being
// printed with the stderr sink. Scoped/RAII so tests and examples cannot
// leak a sink into unrelated code; the previous sink is restored on
// destruction.
#pragma once

#include "common/log.hpp"
#include "obs/event_bus.hpp"

namespace woha::obs {

class LogBridge {
 public:
  /// `mirror_to_stderr` additionally forwards to the previously installed
  /// sink (or the stderr default), so bridged runs can stay chatty.
  explicit LogBridge(EventBus& bus, bool mirror_to_stderr = false);
  ~LogBridge();
  LogBridge(const LogBridge&) = delete;
  LogBridge& operator=(const LogBridge&) = delete;

 private:
  LogSink previous_;
};

}  // namespace woha::obs

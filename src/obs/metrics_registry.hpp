// The metrics registry: named counters, gauges, and fixed-bucket histograms,
// snapshotable mid-run and dumpable as JSON.
//
// Hot-path friendly by construction: instruments are resolved to stable
// references once (registration walks a std::map; the map never invalidates
// element addresses), after which every update is a plain field write —
// cheap enough for per-heartbeat and per-decision instrumentation. All
// iteration is over the std::map, so snapshots are deterministically
// ordered by name.
//
// Wall-clock histograms (heartbeat service time, select_task latency) are
// intentionally host-dependent diagnostics; determinism tests compare
// simulation outputs, never wall-clock metric values.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analysis/race_detector.hpp"

namespace woha::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double delta) { value_ += delta; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram: `bounds` are inclusive upper bounds of the first
/// N buckets; one implicit overflow bucket catches the rest. Tracks sum,
/// count, min, and max alongside the bucket counts.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  /// Fold another histogram with identical bounds into this one (bucket
  /// counts, sum, count, min/max). Throws std::invalid_argument on a bounds
  /// mismatch. Used when per-run registries are merged after a grid.
  void merge(const Histogram& other);

  /// Estimated q-quantile (q in [0, 1]), linearly interpolated within the
  /// bucket holding rank q * count. The first bucket's lower edge is
  /// min(min(), bounds()[0]) and the overflow bucket's upper edge is max(),
  /// so estimates never leave the observed [min, max] range. 0 when empty.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double p50() const { return quantile(0.50); }
  [[nodiscard]] double p95() const { return quantile(0.95); }
  [[nodiscard]] double p99() const { return quantile(0.99); }

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// counts().size() == bounds().size() + 1 (last = overflow).
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const { return counts_; }
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }
  [[nodiscard]] double mean() const {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exponentially growing bucket bounds: start, start*factor, ... (count
/// bounds). The default shape for latency histograms.
[[nodiscard]] std::vector<double> exponential_buckets(double start, double factor,
                                                      std::size_t count);

class MetricsRegistry {
 public:
  /// Get-or-create. The returned references stay valid for the registry's
  /// lifetime. Re-registering a name with a different instrument kind (or a
  /// histogram with different buckets) throws std::invalid_argument.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  /// Lookup without creating; nullptr when absent or of another kind.
  [[nodiscard]] const Counter* find_counter(const std::string& name) const;
  [[nodiscard]] const Gauge* find_gauge(const std::string& name) const;
  [[nodiscard]] const Histogram* find_histogram(const std::string& name) const;

  [[nodiscard]] std::size_t size() const { return instruments_.size(); }

  /// Fold `other` into this registry: counters add, histograms merge
  /// (bounds must match), gauges take `other`'s value — the same final
  /// state a shared registry would have reached had `other`'s updates been
  /// applied after this registry's own. run_grid merges per-run registries
  /// in submission order, so the aggregate is deterministic regardless of
  /// which worker thread ran which point.
  void merge(const MetricsRegistry& other);

  /// Deterministic (name-sorted) JSON snapshot:
  ///   {"counters":{...},"gauges":{...},"histograms":{...}}
  /// Safe to call mid-run; reads never disturb instrument state.
  [[nodiscard]] std::string to_json() const;

 private:
  struct Instrument {
    // Exactly one is non-null.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  std::map<std::string, Instrument> instruments_;
  /// Race-detector touchpoint: registries are thread-confined (each grid
  /// run owns a private scratch registry; merges happen after the pool
  /// drains). merge() annotates a write on the destination and a read on
  /// the source so a schedule that shares a registry across workers fails
  /// the interleaving sweep.
  std::uint64_t analysis_id_ = analysis::new_instance_id();
};

}  // namespace woha::obs

// ScopedTimer: RAII wall-clock timing into an obs::Histogram.
//
// The profiling substrate for ROADMAP item 4: wrap a hot region (plan
// generation, the master select loop, heartbeat batching) and the elapsed
// nanoseconds land in the attached histogram, whose p50/p95/p99 accessors
// then summarize the hot path. Inert by construction when no histogram is
// attached: the constructor takes one branch and never reads the clock, so
// unprofiled runs pay nothing — and because the histogram only ever feeds
// host-side diagnostics (never simulated time, RNG draws, or scheduling
// decisions), profiled runs stay bit-identical to unprofiled ones.
#pragma once

#include <chrono>

#include "obs/metrics_registry.hpp"

namespace woha::obs {

class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram) : histogram_(histogram) {
    if (histogram_ != nullptr) start_ = std::chrono::steady_clock::now();
  }

  ~ScopedTimer() {
    if (histogram_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    histogram_->observe(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()));
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace woha::obs

// JSONL exporter: one JSON object per published event, one event per line.
//
// The line format is stable and greppable:
//   {"t":123000,"type":"task-started","workflow":2,"job":0,...}
// `t` is simulated milliseconds. Streams are flushed only when the caller
// flushes; the exporter itself never toggles stream state.
#pragma once

#include <ostream>
#include <string>

#include "obs/event.hpp"
#include "obs/event_bus.hpp"

namespace woha::obs {

/// Serialize one event to a single-line JSON object (no trailing newline).
[[nodiscard]] std::string event_to_json(const Event& event);

/// Subscribes to `bus` on construction, unsubscribes on destruction. The
/// stream must outlive the exporter.
class JsonlExporter {
 public:
  JsonlExporter(EventBus& bus, std::ostream& out);
  ~JsonlExporter();
  JsonlExporter(const JsonlExporter&) = delete;
  JsonlExporter& operator=(const JsonlExporter&) = delete;

  [[nodiscard]] std::uint64_t lines_written() const { return lines_; }

 private:
  EventBus& bus_;
  std::ostream& out_;
  EventBus::SubscriptionId subscription_;
  std::uint64_t lines_ = 0;
};

}  // namespace woha::obs

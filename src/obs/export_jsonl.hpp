// JSONL exporter: one JSON object per published event, one event per line.
//
// The line format is stable and greppable:
//   {"t":123000,"type":"task-started","workflow":2,"job":0,...}
// `t` is simulated milliseconds. Streams are flushed only when the caller
// flushes; the exporter itself never toggles stream state.
#pragma once

#include <ostream>
#include <string>

#include "obs/event.hpp"
#include "obs/event_bus.hpp"

namespace woha::obs {

/// Serialize one event to a single-line JSON object (no trailing newline).
[[nodiscard]] std::string event_to_json(const Event& event);

/// Subscribes to `bus` on construction, unsubscribes on destruction. The
/// stream must outlive the exporter.
class JsonlExporter {
 public:
  JsonlExporter(EventBus& bus, std::ostream& out);
  ~JsonlExporter();
  JsonlExporter(const JsonlExporter&) = delete;
  JsonlExporter& operator=(const JsonlExporter&) = delete;

  /// Stop writing and flush the stream. The subscription stays alive so
  /// late publishes are counted in dropped_after_close() rather than lost
  /// silently (or crashing into a dead stream). Idempotent.
  void close();

  [[nodiscard]] bool closed() const { return closed_; }
  [[nodiscard]] std::uint64_t lines_written() const { return lines_; }
  /// Events published after close(); 0 while open.
  [[nodiscard]] std::uint64_t dropped_after_close() const { return dropped_; }

 private:
  EventBus& bus_;
  std::ostream& out_;
  EventBus::SubscriptionId subscription_;
  std::uint64_t lines_ = 0;
  std::uint64_t dropped_ = 0;
  bool closed_ = false;
};

}  // namespace woha::obs

// Chrome trace_event exporter (loadable in Perfetto / chrome://tracing).
//
// Track layout:
//   pid 1            — "JobTracker (master)": workflow lifecycle instants on
//                      tid 1 ("workflows"), scheduler decision annotations on
//                      tid 2 ("decisions"), bridged WOHA_LOG lines on tid 3.
//   pid 100 + k      — "TaskTracker k": one thread per slot lane; task
//                      attempts are B/E slices on the lane they occupy,
//                      crash / loss / re-registration are instant events.
//
// Timestamps are simulated time (ms) scaled to the format's microseconds.
// The exporter streams: events are written as they are published, so memory
// stays O(running attempts) regardless of run length. finish() (or the
// destructor) closes the JSON; the result is a complete
// {"traceEvents":[...]} document.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/event.hpp"
#include "obs/event_bus.hpp"

namespace woha::obs {

struct ChromeTraceOptions {
  bool include_decisions = true;   ///< SchedulerDecision instants (verbose)
  bool include_logs = true;        ///< bridged WOHA_LOG lines
  bool include_heartbeats = false; ///< per-heartbeat counter samples

  /// DAG provider for span + flow emission: given (workflow, job), return
  /// the job's prerequisite indices. When set, each job gets a complete
  /// ("X") span on a per-workflow master lane covering activation ->
  /// completion, and flow arrows connect every prerequisite's completion to
  /// its dependents' activation. When null (the default), the output is
  /// byte-identical to the pre-forensics exporter.
  std::function<std::vector<std::uint32_t>(std::uint32_t workflow,
                                           std::uint32_t job)>
      prerequisites;
};

class ChromeTraceExporter {
 public:
  ChromeTraceExporter(EventBus& bus, std::ostream& out,
                      ChromeTraceOptions options = {});
  ~ChromeTraceExporter();
  ChromeTraceExporter(const ChromeTraceExporter&) = delete;
  ChromeTraceExporter& operator=(const ChromeTraceExporter&) = delete;

  /// Close the JSON document. Idempotent; called by the destructor too.
  /// The subscription stays alive until destruction so events published
  /// after the document is closed are counted in events_dropped() instead
  /// of corrupting the closed JSON or vanishing silently.
  void finish();

  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] std::uint64_t events_written() const { return events_; }
  /// Events published after finish(); 0 while the document is open.
  [[nodiscard]] std::uint64_t events_dropped() const { return dropped_; }

 private:
  static constexpr std::uint64_t kMasterPid = 1;
  static constexpr std::uint64_t kTrackerPidBase = 100;
  static constexpr std::uint64_t kWorkflowTid = 1;
  static constexpr std::uint64_t kDecisionTid = 2;
  static constexpr std::uint64_t kLogTid = 3;
  static constexpr std::uint64_t kJobTidBase = 10;  ///< + workflow id
  static constexpr std::uint64_t kReduceTidBase = 1000;

  void on_event(const Event& event);
  void handle(SimTime t, const TaskStarted& p);
  void handle(SimTime t, const TaskEnded& p);
  void handle_job_activated(SimTime t, const JobActivated& p);
  void handle_job_completed(SimTime t, const JobCompleted& p);
  void emit(const std::string& json_object);
  void ensure_process(std::uint64_t pid, const std::string& name);
  void ensure_thread(std::uint64_t pid, std::uint64_t tid, const std::string& name);
  /// Pick (and name) the first free lane of the tracker for this slot type.
  std::uint64_t acquire_lane(std::size_t tracker, SlotType slot,
                             std::uint64_t attempt);
  void instant(SimTime t, std::uint64_t pid, std::uint64_t tid,
               const std::string& name, const std::string& args_json);

  EventBus& bus_;
  std::ostream& out_;
  ChromeTraceOptions options_;
  EventBus::SubscriptionId subscription_;
  bool first_ = true;
  bool finished_ = false;
  std::uint64_t events_ = 0;
  std::uint64_t dropped_ = 0;

  /// (workflow, job) -> activation time; feeds the job spans and flow
  /// arrows emitted when options_.prerequisites is set.
  std::map<std::pair<std::uint32_t, std::uint32_t>, SimTime> job_activated_;
  /// (workflow, job) -> completion time (flow sources for dependents).
  std::map<std::pair<std::uint32_t, std::uint32_t>, SimTime> job_completed_;

  /// lanes_[{tracker, slot}][lane] = attempt occupying it (0 = free).
  std::map<std::pair<std::size_t, SlotType>, std::vector<std::uint64_t>> lanes_;
  /// attempt -> (pid, tid) of the slice opened for it.
  std::unordered_map<std::uint64_t, std::pair<std::uint64_t, std::uint64_t>>
      open_slices_;
  std::map<std::uint64_t, bool> known_pids_;
  std::map<std::pair<std::uint64_t, std::uint64_t>, bool> known_tids_;
};

}  // namespace woha::obs

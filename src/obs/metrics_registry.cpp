#include "obs/metrics_registry.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/json.hpp"

namespace woha::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("Histogram: bucket bounds must be sorted");
  }
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += v;
  if (count_ == 1) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
}

void Histogram::merge(const Histogram& other) {
  if (other.bounds_ != bounds_) {
    throw std::invalid_argument("Histogram::merge: bucket bounds differ");
  }
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count_);
  if (rank <= 0.0) return min_;
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const double before = cumulative;
    cumulative += static_cast<double>(counts_[i]);
    if (cumulative < rank) continue;
    // Interpolate within bucket i. The outermost edges are pinned to the
    // observed extrema so sparse tails don't inflate the estimate.
    const double lower = i == 0 ? (bounds_.empty() ? min_ : std::min(min_, bounds_[0]))
                                : bounds_[i - 1];
    const double upper = i < bounds_.size() ? bounds_[i] : max_;
    const double fraction = (rank - before) / static_cast<double>(counts_[i]);
    return std::clamp(lower + fraction * (upper - lower), min_, max_);
  }
  return max_;
}

std::vector<double> exponential_buckets(double start, double factor,
                                        std::size_t count) {
  if (start <= 0.0 || factor <= 1.0) {
    throw std::invalid_argument("exponential_buckets: need start > 0, factor > 1");
  }
  std::vector<double> out;
  out.reserve(count);
  double v = start;
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(v);
    v *= factor;
  }
  return out;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  analysis::touch_write("metrics_registry", analysis_id_,
                        "MetricsRegistry::counter");
  Instrument& inst = instruments_[name];
  if (!inst.counter) {
    if (inst.gauge || inst.histogram) {
      throw std::invalid_argument("MetricsRegistry: '" + name +
                                  "' already registered with another kind");
    }
    inst.counter = std::make_unique<Counter>();
  }
  return *inst.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  analysis::touch_write("metrics_registry", analysis_id_,
                        "MetricsRegistry::gauge");
  Instrument& inst = instruments_[name];
  if (!inst.gauge) {
    if (inst.counter || inst.histogram) {
      throw std::invalid_argument("MetricsRegistry: '" + name +
                                  "' already registered with another kind");
    }
    inst.gauge = std::make_unique<Gauge>();
  }
  return *inst.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  analysis::touch_write("metrics_registry", analysis_id_,
                        "MetricsRegistry::histogram");
  Instrument& inst = instruments_[name];
  if (!inst.histogram) {
    if (inst.counter || inst.gauge) {
      throw std::invalid_argument("MetricsRegistry: '" + name +
                                  "' already registered with another kind");
    }
    inst.histogram = std::make_unique<Histogram>(std::move(bounds));
  } else if (inst.histogram->bounds() != bounds) {
    throw std::invalid_argument("MetricsRegistry: '" + name +
                                "' re-registered with different buckets");
  }
  return *inst.histogram;
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  const auto it = instruments_.find(name);
  return it == instruments_.end() ? nullptr : it->second.counter.get();
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  const auto it = instruments_.find(name);
  return it == instruments_.end() ? nullptr : it->second.gauge.get();
}

const Histogram* MetricsRegistry::find_histogram(const std::string& name) const {
  const auto it = instruments_.find(name);
  return it == instruments_.end() ? nullptr : it->second.histogram.get();
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  analysis::touch_write("metrics_registry", analysis_id_,
                        "MetricsRegistry::merge dst");
  analysis::touch_read("metrics_registry", other.analysis_id_,
                       "MetricsRegistry::merge src");
  for (const auto& [name, inst] : other.instruments_) {
    if (inst.counter) {
      counter(name).add(inst.counter->value());
    } else if (inst.gauge) {
      gauge(name).set(inst.gauge->value());
    } else if (inst.histogram) {
      histogram(name, inst.histogram->bounds()).merge(*inst.histogram);
    }
  }
}

std::string MetricsRegistry::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (const auto& [name, inst] : instruments_) {
    if (inst.counter) w.member(name, inst.counter->value());
  }
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& [name, inst] : instruments_) {
    if (inst.gauge) w.member(name, inst.gauge->value());
  }
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const auto& [name, inst] : instruments_) {
    if (!inst.histogram) continue;
    const Histogram& h = *inst.histogram;
    w.key(name);
    w.begin_object();
    w.member("count", h.count());
    w.member("sum", h.sum());
    w.member("min", h.min());
    w.member("max", h.max());
    w.member("mean", h.mean());
    w.member("p50", h.p50());
    w.member("p95", h.p95());
    w.member("p99", h.p99());
    w.key("bounds");
    w.begin_array();
    for (const double b : h.bounds()) w.value(b);
    w.end_array();
    w.key("buckets");
    w.begin_array();
    for (const std::uint64_t c : h.counts()) w.value(c);
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.take();
}

}  // namespace woha::obs

// Minimal non-validating XML reader/writer.
//
// The paper's users submit workflows as XML configuration files ("hadoop dag
// /path/to/W_i.xml", Section III-B). We implement just enough XML for that
// artifact: elements, attributes, text content, comments, declarations, and
// the five predefined entities. No namespaces, DTDs, or CDATA-preserving
// round trips — workflow configs don't use them.
#pragma once

#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace woha::xml {

/// Parse or structural error; carries a 1-based line number.
class XmlError : public std::runtime_error {
 public:
  XmlError(std::string message, std::size_t line)
      : std::runtime_error("XML error (line " + std::to_string(line) + "): " +
                           std::move(message)),
        line_(line) {}
  [[nodiscard]] std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

class Node {
 public:
  explicit Node(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }

  // --- attributes -----------------------------------------------------
  void set_attr(const std::string& key, std::string value);
  [[nodiscard]] bool has_attr(const std::string& key) const;
  /// Throws XmlError if missing.
  [[nodiscard]] const std::string& attr(const std::string& key) const;
  [[nodiscard]] std::string attr_or(const std::string& key,
                                    std::string fallback) const;
  [[nodiscard]] const std::map<std::string, std::string>& attrs() const {
    return attrs_;
  }

  // --- text content ---------------------------------------------------
  /// Concatenated character data directly inside this element (trimmed).
  [[nodiscard]] const std::string& text() const { return text_; }
  void set_text(std::string text) { text_ = std::move(text); }
  void append_text(std::string_view more) { text_.append(more); }

  // --- children --------------------------------------------------------
  Node& add_child(std::string name);
  /// Take ownership of an already-built subtree (used by the parser).
  Node& adopt_child(std::unique_ptr<Node> child);
  [[nodiscard]] const std::vector<std::unique_ptr<Node>>& children() const {
    return children_;
  }
  /// All direct children with the given element name.
  [[nodiscard]] std::vector<const Node*> children_named(std::string_view name) const;
  /// First direct child with the name, or nullptr.
  [[nodiscard]] const Node* child(std::string_view name) const;
  /// First direct child with the name; throws XmlError if absent.
  [[nodiscard]] const Node& require_child(std::string_view name) const;
  /// Text of the named child, or fallback when the child is absent.
  [[nodiscard]] std::string child_text_or(std::string_view name,
                                          std::string fallback) const;

  /// Serialize this subtree with 2-space indentation.
  [[nodiscard]] std::string to_string(int indent = 0) const;

 private:
  std::string name_;
  std::map<std::string, std::string> attrs_;
  std::string text_;
  std::vector<std::unique_ptr<Node>> children_;
};

class Document {
 public:
  Document() : root_(std::make_unique<Node>("")) {}
  explicit Document(std::unique_ptr<Node> root) : root_(std::move(root)) {}

  [[nodiscard]] Node& root() { return *root_; }
  [[nodiscard]] const Node& root() const { return *root_; }

  /// Serialize with an XML declaration.
  [[nodiscard]] std::string to_string() const;

 private:
  std::unique_ptr<Node> root_;
};

/// Parse a complete document. Throws XmlError on malformed input.
[[nodiscard]] Document parse(std::string_view input);

/// Parse a file from disk. Throws XmlError / std::runtime_error.
[[nodiscard]] Document parse_file(const std::string& path);

/// Escape &<>"' for attribute/text emission.
[[nodiscard]] std::string escape(std::string_view raw);

}  // namespace woha::xml

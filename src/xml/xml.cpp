#include "xml/xml.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/strings.hpp"

namespace woha::xml {

void Node::set_attr(const std::string& key, std::string value) {
  attrs_[key] = std::move(value);
}

bool Node::has_attr(const std::string& key) const { return attrs_.count(key) > 0; }

const std::string& Node::attr(const std::string& key) const {
  const auto it = attrs_.find(key);
  if (it == attrs_.end()) {
    throw XmlError("element <" + name_ + "> missing attribute '" + key + "'", 0);
  }
  return it->second;
}

std::string Node::attr_or(const std::string& key, std::string fallback) const {
  const auto it = attrs_.find(key);
  return it == attrs_.end() ? std::move(fallback) : it->second;
}

Node& Node::add_child(std::string name) {
  children_.push_back(std::make_unique<Node>(std::move(name)));
  return *children_.back();
}

Node& Node::adopt_child(std::unique_ptr<Node> child) {
  children_.push_back(std::move(child));
  return *children_.back();
}

std::vector<const Node*> Node::children_named(std::string_view name) const {
  std::vector<const Node*> out;
  for (const auto& c : children_) {
    if (c->name() == name) out.push_back(c.get());
  }
  return out;
}

const Node* Node::child(std::string_view name) const {
  for (const auto& c : children_) {
    if (c->name() == name) return c.get();
  }
  return nullptr;
}

const Node& Node::require_child(std::string_view name) const {
  const Node* c = child(name);
  if (!c) throw XmlError("element <" + name_ + "> missing child <" + std::string(name) + ">", 0);
  return *c;
}

std::string Node::child_text_or(std::string_view name, std::string fallback) const {
  const Node* c = child(name);
  return c ? c->text() : std::move(fallback);
}

std::string escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char ch : raw) {
    switch (ch) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out += ch;
    }
  }
  return out;
}

std::string Node::to_string(int indent) const {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  std::string out = pad + "<" + name_;
  for (const auto& [k, v] : attrs_) out += " " + k + "=\"" + escape(v) + "\"";
  if (children_.empty() && text_.empty()) return out + "/>\n";
  out += ">";
  if (!text_.empty()) out += escape(text_);
  if (!children_.empty()) {
    out += "\n";
    for (const auto& c : children_) out += c->to_string(indent + 1);
    out += pad;
  }
  return out + "</" + name_ + ">\n";
}

std::string Document::to_string() const {
  return "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n" + root_->to_string();
}

namespace {

/// Single-pass recursive-descent parser over the input buffer.
class Parser {
 public:
  explicit Parser(std::string_view input) : in_(input) {}

  Document parse_document() {
    skip_prolog();
    auto root = parse_element();
    skip_misc();
    if (pos_ != in_.size()) fail("trailing content after document element");
    return Document(std::move(root));
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const { throw XmlError(msg, line_); }

  [[nodiscard]] bool eof() const { return pos_ >= in_.size(); }
  [[nodiscard]] char peek() const { return eof() ? '\0' : in_[pos_]; }

  char get() {
    if (eof()) fail("unexpected end of input");
    const char c = in_[pos_++];
    if (c == '\n') ++line_;
    return c;
  }

  bool consume(std::string_view token) {
    if (in_.substr(pos_).substr(0, token.size()) != token) return false;
    for (std::size_t i = 0; i < token.size(); ++i) get();
    return true;
  }

  void expect(std::string_view token) {
    if (!consume(token)) fail("expected '" + std::string(token) + "'");
  }

  void skip_ws() {
    while (!eof() && std::isspace(static_cast<unsigned char>(peek()))) get();
  }

  void skip_comment() {
    // Positioned just after "<!--".
    while (!consume("-->")) get();
  }

  void skip_misc() {
    for (;;) {
      skip_ws();
      if (consume("<!--")) {
        skip_comment();
      } else {
        return;
      }
    }
  }

  void skip_prolog() {
    skip_ws();
    if (consume("<?xml")) {
      while (!consume("?>")) get();
    }
    skip_misc();
    // Tolerate (and ignore) a DOCTYPE without internal subset.
    if (consume("<!DOCTYPE")) {
      while (peek() != '>') get();
      get();
    }
    skip_misc();
  }

  [[nodiscard]] static bool is_name_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
           c == '.' || c == ':';
  }

  std::string parse_name() {
    std::string name;
    while (!eof() && is_name_char(peek())) name += get();
    if (name.empty()) fail("expected a name");
    return name;
  }

  std::string decode_entity() {
    // Positioned just after '&'.
    std::string ent;
    while (peek() != ';') {
      ent += get();
      if (ent.size() > 8) fail("unterminated entity reference");
    }
    get();  // ';'
    if (ent == "amp") return "&";
    if (ent == "lt") return "<";
    if (ent == "gt") return ">";
    if (ent == "quot") return "\"";
    if (ent == "apos") return "'";
    if (!ent.empty() && ent[0] == '#') {
      const bool hex = ent.size() > 1 && (ent[1] == 'x' || ent[1] == 'X');
      const long code = std::strtol(ent.c_str() + (hex ? 2 : 1), nullptr, hex ? 16 : 10);
      if (code <= 0 || code > 127) fail("only ASCII character references supported");
      return std::string(1, static_cast<char>(code));
    }
    fail("unknown entity '&" + ent + ";'");
  }

  std::string parse_attr_value() {
    const char quote = get();
    if (quote != '"' && quote != '\'') fail("attribute value must be quoted");
    std::string value;
    for (;;) {
      const char c = get();
      if (c == quote) break;
      if (c == '&') {
        value += decode_entity();
      } else {
        value += c;
      }
    }
    return value;
  }

  std::unique_ptr<Node> parse_element() {
    expect("<");
    auto node = std::make_unique<Node>(parse_name());
    // Attributes.
    for (;;) {
      skip_ws();
      if (consume("/>")) return node;
      if (consume(">")) break;
      const std::string key = parse_name();
      skip_ws();
      expect("=");
      skip_ws();
      node->set_attr(key, parse_attr_value());
    }
    // Content: interleaved text, comments, and child elements.
    std::string text;
    for (;;) {
      if (consume("<!--")) {
        skip_comment();
      } else if (in_.substr(pos_).substr(0, 2) == "</") {
        expect("</");
        const std::string close = parse_name();
        if (close != node->name()) {
          fail("mismatched close tag </" + close + "> for <" + node->name() + ">");
        }
        skip_ws();
        expect(">");
        node->set_text(std::string(trim(text)));
        return node;
      } else if (peek() == '<') {
        node->adopt_child(parse_element());
      } else {
        const char c = get();
        if (c == '&') {
          text += decode_entity();
        } else {
          text += c;
        }
      }
    }
  }

  std::string_view in_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
};

}  // namespace

Document parse(std::string_view input) {
  Parser p(input);
  return p.parse_document();
}

Document parse_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open XML file: " + path);
  std::ostringstream buf;
  buf << f.rdbuf();
  return parse(buf.str());
}

}  // namespace woha::xml

#include "workflow/topology.hpp"

#include <algorithm>
#include <stdexcept>

namespace woha::wf {
namespace {

JobSpec make_job(std::string name, const JobShape& shape) {
  JobSpec job;
  job.name = std::move(name);
  job.num_maps = shape.num_maps;
  job.num_reduces = shape.num_reduces;
  job.map_duration = shape.map_duration;
  job.reduce_duration = shape.reduce_duration;
  return job;
}

}  // namespace

WorkflowSpec chain(std::uint32_t length, const JobShape& shape) {
  if (length == 0) throw std::invalid_argument("chain: length must be >= 1");
  WorkflowSpec spec;
  spec.name = "chain-" + std::to_string(length);
  for (std::uint32_t j = 0; j < length; ++j) {
    JobSpec job = make_job("stage-" + std::to_string(j), shape);
    if (j > 0) job.prerequisites.push_back(j - 1);
    spec.jobs.push_back(std::move(job));
  }
  return spec;
}

WorkflowSpec diamond(std::uint32_t width, const JobShape& shape) {
  if (width == 0) throw std::invalid_argument("diamond: width must be >= 1");
  WorkflowSpec spec;
  spec.name = "diamond-" + std::to_string(width);
  spec.jobs.push_back(make_job("source", shape));
  for (std::uint32_t j = 0; j < width; ++j) {
    JobSpec job = make_job("branch-" + std::to_string(j), shape);
    job.prerequisites.push_back(0);
    spec.jobs.push_back(std::move(job));
  }
  JobSpec sink = make_job("sink", shape);
  for (std::uint32_t j = 0; j < width; ++j) sink.prerequisites.push_back(1 + j);
  spec.jobs.push_back(std::move(sink));
  return spec;
}

WorkflowSpec fan_in(std::uint32_t width, const JobShape& shape) {
  if (width == 0) throw std::invalid_argument("fan_in: width must be >= 1");
  WorkflowSpec spec;
  spec.name = "fanin-" + std::to_string(width);
  for (std::uint32_t j = 0; j < width; ++j) {
    spec.jobs.push_back(make_job("source-" + std::to_string(j), shape));
  }
  JobSpec sink = make_job("sink", shape);
  for (std::uint32_t j = 0; j < width; ++j) sink.prerequisites.push_back(j);
  spec.jobs.push_back(std::move(sink));
  return spec;
}

WorkflowSpec fig2_two_job_workflow(Duration unit) {
  WorkflowSpec spec;
  spec.name = "fig2-two-job";
  JobSpec job1;
  job1.name = "job-1";
  job1.num_maps = 3;
  job1.num_reduces = 3;
  job1.map_duration = unit;
  job1.reduce_duration = unit;
  JobSpec job2 = job1;
  job2.name = "job-2";
  job2.prerequisites.push_back(0);
  spec.jobs.push_back(std::move(job1));
  spec.jobs.push_back(std::move(job2));
  return spec;
}

WorkflowSpec paper_fig7_topology() {
  WorkflowSpec spec;
  spec.name = "fig7-analytics-33";

  // Layer sizes: 3 ingest, 8 parse, 8 aggregate, 6 join, 4 stats, 3 report,
  // 1 publish = 33 jobs over 7 levels.
  struct Layer {
    const char* label;
    std::uint32_t count;
    std::uint32_t maps;
    std::uint32_t reduces;
    Duration map_dur;
    Duration reduce_dur;
  };
  const Layer layers[] = {
      // Ingest: big map-heavy scans of raw logs.
      {"ingest", 3, 56, 10, seconds(80), seconds(150)},
      // Parse/filter: medium jobs, one per log category.
      {"parse", 8, 28, 6, seconds(70), seconds(140)},
      // Aggregate: shuffle-heavy, fewer but longer reduces.
      {"aggregate", 8, 26, 8, seconds(60), seconds(200)},
      // Join: combine aggregate outputs pairwise.
      {"join", 6, 30, 7, seconds(75), seconds(240)},
      // Stats: smaller summaries.
      {"stats", 4, 20, 6, seconds(60), seconds(160)},
      // Report generation.
      {"report", 3, 12, 3, seconds(50), seconds(160)},
      // Final publish step (single small job gating workflow completion).
      {"publish", 1, 6, 2, seconds(40), seconds(170)},
  };

  std::vector<std::uint32_t> prev_layer;  // indices of the previous layer's jobs
  for (const Layer& layer : layers) {
    std::vector<std::uint32_t> this_layer;
    for (std::uint32_t k = 0; k < layer.count; ++k) {
      JobSpec job;
      job.name = std::string(layer.label) + "-" + std::to_string(k);
      job.num_maps = layer.maps;
      job.num_reduces = layer.reduces;
      job.map_duration = layer.map_dur;
      job.reduce_duration = layer.reduce_dur;
      if (!prev_layer.empty()) {
        // Each job depends on 1-3 jobs of the previous layer, spread evenly
        // so the DAG has both fan-out and fan-in (deterministic pattern).
        const std::uint32_t p = static_cast<std::uint32_t>(prev_layer.size());
        job.prerequisites.push_back(prev_layer[k % p]);
        if (layer.count < p) {
          job.prerequisites.push_back(prev_layer[(k + 1) % p]);
          if (p > 2 && k % 2 == 0) {
            job.prerequisites.push_back(prev_layer[(k + 2) % p]);
          }
        }
        // De-duplicate in the unlikely case the modular pattern collided.
        std::sort(job.prerequisites.begin(), job.prerequisites.end());
        job.prerequisites.erase(
            std::unique(job.prerequisites.begin(), job.prerequisites.end()),
            job.prerequisites.end());
      }
      this_layer.push_back(static_cast<std::uint32_t>(spec.jobs.size()));
      spec.jobs.push_back(std::move(job));
    }
    prev_layer = std::move(this_layer);
  }
  validate(spec);
  return spec;
}

WorkflowSpec random_dag(Rng& rng, const RandomDagParams& params) {
  if (params.num_jobs == 0) throw std::invalid_argument("random_dag: num_jobs == 0");
  if (params.num_layers == 0) throw std::invalid_argument("random_dag: num_layers == 0");
  WorkflowSpec spec;
  spec.name = "random-dag-" + std::to_string(params.num_jobs);

  // Assign each job to a layer; every layer gets at least one job when
  // possible so chains stay long.
  const std::uint32_t layers = std::min(params.num_layers, params.num_jobs);
  std::vector<std::vector<std::uint32_t>> layer_jobs(layers);
  for (std::uint32_t j = 0; j < params.num_jobs; ++j) {
    const std::uint32_t layer =
        j < layers ? j
                   : static_cast<std::uint32_t>(rng.uniform_int(0, layers - 1));
    layer_jobs[layer].push_back(j);
  }

  spec.jobs.resize(params.num_jobs);
  for (std::uint32_t layer = 0; layer < layers; ++layer) {
    for (std::uint32_t j : layer_jobs[layer]) {
      JobSpec& job = spec.jobs[j];
      job.name = "L" + std::to_string(layer) + "-j" + std::to_string(j);
      auto jitter = [&rng](std::int64_t base) {
        return std::max<std::int64_t>(1, static_cast<std::int64_t>(
                                             static_cast<double>(base) *
                                             rng.uniform(0.5, 1.5)));
      };
      job.num_maps = static_cast<std::uint32_t>(jitter(params.shape.num_maps));
      job.num_reduces =
          static_cast<std::uint32_t>(jitter(std::max<std::uint32_t>(params.shape.num_reduces, 1)));
      job.map_duration = jitter(params.shape.map_duration);
      job.reduce_duration = jitter(params.shape.reduce_duration);
      if (layer > 0) {
        const auto& prev = layer_jobs[layer - 1];
        const std::uint32_t nparents = static_cast<std::uint32_t>(rng.uniform_int(
            1, std::min<std::int64_t>(params.max_parents, static_cast<std::int64_t>(prev.size()))));
        for (std::uint32_t p = 0; p < nparents; ++p) {
          job.prerequisites.push_back(
              prev[static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(prev.size()) - 1))]);
        }
        std::sort(job.prerequisites.begin(), job.prerequisites.end());
        job.prerequisites.erase(
            std::unique(job.prerequisites.begin(), job.prerequisites.end()),
            job.prerequisites.end());
      }
    }
  }
  validate(spec);
  return spec;
}

}  // namespace woha::wf

// Recurrent workflow expansion — the slice of Oozie's coordinator that the
// paper's evaluation uses ("with 3 recurrence", Fig. 12). A recurrent
// workflow resubmits the same DAG every `period`; each instance carries its
// own submission time and (relative) deadline.
#pragma once

#include <cstdint>
#include <vector>

#include "workflow/workflow.hpp"

namespace woha::wf {

struct RecurrenceSpec {
  std::uint32_t count = 1;         ///< total number of instances (>= 1)
  Duration period = minutes(30);   ///< gap between consecutive submissions
  /// Suffix instance names with "-rK" (K starting at 1) so results tables
  /// distinguish instances.
  bool tag_names = true;
};

/// Expand `base` into `count` instances submitted `period` apart, starting
/// at base.submit_time. Throws std::invalid_argument on count == 0 or
/// period <= 0 (for count > 1).
[[nodiscard]] std::vector<WorkflowSpec> expand_recurrences(
    const WorkflowSpec& base, const RecurrenceSpec& recurrence);

}  // namespace woha::wf

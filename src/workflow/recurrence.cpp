#include "workflow/recurrence.hpp"

#include <stdexcept>

namespace woha::wf {

std::vector<WorkflowSpec> expand_recurrences(const WorkflowSpec& base,
                                             const RecurrenceSpec& recurrence) {
  if (recurrence.count == 0) {
    throw std::invalid_argument("expand_recurrences: count must be >= 1");
  }
  if (recurrence.count > 1 && recurrence.period <= 0) {
    throw std::invalid_argument("expand_recurrences: period must be positive");
  }
  validate(base);
  std::vector<WorkflowSpec> out;
  out.reserve(recurrence.count);
  for (std::uint32_t k = 0; k < recurrence.count; ++k) {
    WorkflowSpec instance = base;
    instance.submit_time = base.submit_time + static_cast<SimTime>(k) * recurrence.period;
    if (recurrence.tag_names) {
      instance.name += "-r" + std::to_string(k + 1);
    }
    out.push_back(std::move(instance));
  }
  return out;
}

}  // namespace woha::wf

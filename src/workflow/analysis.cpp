#include "workflow/analysis.hpp"

#include <algorithm>
#include <stdexcept>

namespace woha::wf {

std::vector<std::uint32_t> job_levels(const WorkflowSpec& spec) {
  const auto order = topological_order(spec);
  if (order.size() != spec.jobs.size()) {
    throw std::invalid_argument("job_levels: workflow has a cycle");
  }
  const auto deps = dependents(spec);
  std::vector<std::uint32_t> level(spec.jobs.size(), 0);
  // Walk in reverse topological order so every dependent's level is final
  // before its prerequisites are visited.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const std::uint32_t j = *it;
    std::uint32_t lv = 0;
    for (std::uint32_t d : deps[j]) lv = std::max(lv, level[d] + 1);
    level[j] = lv;
  }
  return level;
}

std::vector<Duration> downstream_path_length(const WorkflowSpec& spec) {
  const auto order = topological_order(spec);
  if (order.size() != spec.jobs.size()) {
    throw std::invalid_argument("downstream_path_length: workflow has a cycle");
  }
  const auto deps = dependents(spec);
  std::vector<Duration> len(spec.jobs.size(), 0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const std::uint32_t j = *it;
    Duration best = 0;
    for (std::uint32_t d : deps[j]) best = std::max(best, len[d]);
    len[j] = best + spec.jobs[j].serial_length();
  }
  return len;
}

std::vector<std::uint32_t> dependent_counts(const WorkflowSpec& spec) {
  const auto deps = dependents(spec);
  std::vector<std::uint32_t> out(spec.jobs.size());
  for (std::size_t j = 0; j < deps.size(); ++j) {
    out[j] = static_cast<std::uint32_t>(deps[j].size());
  }
  return out;
}

Duration critical_path_length(const WorkflowSpec& spec) {
  const auto len = downstream_path_length(spec);
  Duration best = 0;
  for (std::size_t j = 0; j < spec.jobs.size(); ++j) {
    // Only sources need inspection, but taking the max over all jobs is
    // equivalent since the path length is monotone along edges.
    best = std::max(best, len[j]);
  }
  return best;
}

Duration total_work(const WorkflowSpec& spec) {
  Duration w = 0;
  for (const auto& job : spec.jobs) {
    w += static_cast<Duration>(job.num_maps) * job.map_duration;
    w += static_cast<Duration>(job.num_reduces) * job.reduce_duration;
  }
  return w;
}

std::uint64_t max_parallel_tasks(const WorkflowSpec& spec) {
  // Upper bound: the largest single-phase task count across jobs summed over
  // an antichain is at most the total of per-job maxima; a cheap safe bound
  // is the max over jobs of max(m, r) summed over all jobs that could run
  // concurrently. We use the simple safe bound: sum over all jobs of
  // max(maps, reduces) — never an underestimate.
  std::uint64_t n = 0;
  for (const auto& job : spec.jobs) {
    n += std::max<std::uint64_t>(job.num_maps, job.num_reduces);
  }
  return std::max<std::uint64_t>(n, 1);
}

}  // namespace woha::wf

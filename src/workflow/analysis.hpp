// Static DAG analysis over a WorkflowSpec. These are the quantities the
// paper's intra-workflow prioritization rules (Section V-C) consume:
//
//  * HLF  — job levels ("jobs with no dependents are level 0; a job's level
//           is one more than the max level among its dependents").
//  * LPF  — longest downstream path measured in estimated serial job length.
//  * MPF  — number of direct dependents.
//
// Plus a critical-path length used to sanity-check deadlines and to set
// plan-infeasibility bounds for the resource-cap binary search.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "workflow/workflow.hpp"

namespace woha::wf {

/// level[j] per the paper: jobs with no dependents are level 0; for a job at
/// level i, all dependents are at levels < i and at least one is at i-1.
[[nodiscard]] std::vector<std::uint32_t> job_levels(const WorkflowSpec& spec);

/// Longest path (in summed serial job length, ms) from job j to any sink,
/// inclusive of j itself.
[[nodiscard]] std::vector<Duration> downstream_path_length(const WorkflowSpec& spec);

/// Number of direct dependents of each job (|D_i^j|).
[[nodiscard]] std::vector<std::uint32_t> dependent_counts(const WorkflowSpec& spec);

/// Length of the workflow's critical path: the largest summed serial job
/// length over any chain in the DAG. No schedule on any number of slots can
/// finish the workflow faster than this.
[[nodiscard]] Duration critical_path_length(const WorkflowSpec& spec);

/// Total serial work: sum over jobs of m*M + r*R. A cluster with c
/// concurrent slots needs at least total_work/c time (second lower bound).
[[nodiscard]] Duration total_work(const WorkflowSpec& spec);

/// Maximum width of the DAG in tasks: an upper bound on how many slots the
/// workflow can ever use at once (used to clamp the resource-cap search).
[[nodiscard]] std::uint64_t max_parallel_tasks(const WorkflowSpec& spec);

}  // namespace woha::wf

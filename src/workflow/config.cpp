#include "workflow/config.hpp"

#include <map>
#include <stdexcept>

#include "common/strings.hpp"

namespace woha::wf {

WorkflowSpec load_workflow(const xml::Document& doc) {
  const xml::Node& root = doc.root();
  if (root.name() != "workflow") {
    throw std::invalid_argument("workflow config: root element must be <workflow>, got <" +
                                root.name() + ">");
  }
  WorkflowSpec spec;
  spec.name = root.attr_or("name", "unnamed-workflow");
  if (root.has_attr("deadline")) {
    spec.relative_deadline = parse_duration(root.attr("deadline"));
  }
  if (root.has_attr("submit")) {
    spec.submit_time = parse_duration(root.attr("submit"));
  }

  // First pass: create jobs and build the name -> index map.
  std::map<std::string, std::uint32_t> index_of;
  const auto job_nodes = root.children_named("job");
  if (job_nodes.empty()) {
    throw std::invalid_argument("workflow config: no <job> elements");
  }
  for (const xml::Node* jn : job_nodes) {
    JobSpec job;
    job.name = jn->attr("name");
    job.num_maps = static_cast<std::uint32_t>(parse_int(jn->attr_or("maps", "1")));
    job.num_reduces = static_cast<std::uint32_t>(parse_int(jn->attr_or("reduces", "0")));
    job.map_duration = parse_duration(jn->attr_or("map-duration", "60s"));
    job.reduce_duration = parse_duration(jn->attr_or("reduce-duration", "120s"));
    if (index_of.count(job.name)) {
      throw std::invalid_argument("workflow config: duplicate job name '" + job.name + "'");
    }
    index_of[job.name] = static_cast<std::uint32_t>(spec.jobs.size());
    spec.jobs.push_back(std::move(job));
  }

  // Second pass: resolve dependencies by name.
  for (std::size_t j = 0; j < job_nodes.size(); ++j) {
    for (const xml::Node* dep : job_nodes[j]->children_named("depends")) {
      const std::string& target = dep->attr("on");
      const auto it = index_of.find(target);
      if (it == index_of.end()) {
        throw std::invalid_argument("workflow config: job '" + spec.jobs[j].name +
                                    "' depends on unknown job '" + target + "'");
      }
      spec.jobs[j].prerequisites.push_back(it->second);
    }
  }

  validate(spec);
  return spec;
}

WorkflowSpec load_workflow_string(const std::string& text) {
  return load_workflow(xml::parse(text));
}

WorkflowSpec load_workflow_file(const std::string& path) {
  return load_workflow(xml::parse_file(path));
}

std::string save_workflow(const WorkflowSpec& spec) {
  auto root = std::make_unique<xml::Node>("workflow");
  root->set_attr("name", spec.name);
  if (spec.relative_deadline > 0) {
    root->set_attr("deadline", std::to_string(spec.relative_deadline) + "ms");
  }
  if (spec.submit_time > 0) {
    root->set_attr("submit", std::to_string(spec.submit_time) + "ms");
  }
  for (const JobSpec& job : spec.jobs) {
    xml::Node& jn = root->add_child("job");
    jn.set_attr("name", job.name);
    jn.set_attr("maps", std::to_string(job.num_maps));
    jn.set_attr("reduces", std::to_string(job.num_reduces));
    jn.set_attr("map-duration", std::to_string(job.map_duration) + "ms");
    jn.set_attr("reduce-duration", std::to_string(job.reduce_duration) + "ms");
    for (std::uint32_t p : job.prerequisites) {
      jn.add_child("depends").set_attr("on", spec.jobs[p].name);
    }
  }
  return xml::Document(std::move(root)).to_string();
}

}  // namespace woha::wf

// Workflow XML configuration files.
//
// Mirrors the artifact a WOHA user writes and submits with
// `hadoop dag /path/to/W_i.xml` (paper Section III-B). The schema:
//
//   <workflow name="user-log-analysis" deadline="80min">
//     <job name="ingest" maps="40" reduces="6"
//          map-duration="80s" reduce-duration="150s">
//       <jar>hdfs:///apps/ingest.jar</jar>          <!-- optional -->
//       <main-class>com.example.Ingest</main-class> <!-- optional -->
//       <input>/data/raw</input>                    <!-- optional -->
//       <output>/data/stage1</output>               <!-- optional -->
//       <depends on="fetch"/>
//     </job>
//     ...
//   </workflow>
//
// Dependencies are by job name; the loader resolves them to indices and
// validates the result (the paper's Configuration Validator role). The
// jar/main-class/input/output fields are carried through verbatim so examples
// can show a full config, but the simulator does not interpret them.
#pragma once

#include <string>

#include "workflow/workflow.hpp"
#include "xml/xml.hpp"

namespace woha::wf {

/// Parse a workflow from an XML document. Throws xml::XmlError or
/// std::invalid_argument on schema violations (unknown dependency names,
/// duplicate job names, cycles, missing attributes).
[[nodiscard]] WorkflowSpec load_workflow(const xml::Document& doc);

/// Parse from an XML string.
[[nodiscard]] WorkflowSpec load_workflow_string(const std::string& text);

/// Parse from a file on disk.
[[nodiscard]] WorkflowSpec load_workflow_file(const std::string& path);

/// Serialize a spec back to the XML schema above.
[[nodiscard]] std::string save_workflow(const WorkflowSpec& spec);

}  // namespace woha::wf

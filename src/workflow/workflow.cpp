#include "workflow/workflow.hpp"

#include <deque>
#include <stdexcept>

namespace woha::wf {

void validate(const WorkflowSpec& spec) {
  if (spec.jobs.empty()) {
    throw std::invalid_argument("workflow '" + spec.name + "' has no jobs");
  }
  const std::uint32_t n = static_cast<std::uint32_t>(spec.jobs.size());
  for (std::uint32_t j = 0; j < n; ++j) {
    const JobSpec& job = spec.jobs[j];
    if (job.total_tasks() == 0) {
      throw std::invalid_argument("job '" + job.name + "' has zero tasks");
    }
    if (job.num_maps > 0 && job.map_duration <= 0) {
      throw std::invalid_argument("job '" + job.name + "' has non-positive map duration");
    }
    if (job.num_reduces > 0 && job.reduce_duration <= 0) {
      throw std::invalid_argument("job '" + job.name +
                                  "' has non-positive reduce duration");
    }
    for (std::uint32_t p : job.prerequisites) {
      if (p >= n) {
        throw std::invalid_argument("job '" + job.name +
                                    "' references out-of-range prerequisite " +
                                    std::to_string(p));
      }
      if (p == j) {
        throw std::invalid_argument("job '" + job.name + "' depends on itself");
      }
    }
  }
  if (spec.relative_deadline < 0) {
    throw std::invalid_argument("workflow '" + spec.name + "' has negative deadline");
  }
  // Cycle check via Kahn's algorithm: all jobs must be drained.
  if (topological_order(spec).size() != spec.jobs.size()) {
    throw std::invalid_argument("workflow '" + spec.name + "' contains a cycle");
  }
}

bool is_valid(const WorkflowSpec& spec) {
  try {
    validate(spec);
    return true;
  } catch (const std::invalid_argument&) {
    return false;
  }
}

std::vector<std::vector<std::uint32_t>> dependents(const WorkflowSpec& spec) {
  std::vector<std::vector<std::uint32_t>> deps(spec.jobs.size());
  for (std::uint32_t j = 0; j < spec.jobs.size(); ++j) {
    for (std::uint32_t p : spec.jobs[j].prerequisites) {
      deps[p].push_back(j);
    }
  }
  return deps;
}

std::vector<std::uint32_t> topological_order(const WorkflowSpec& spec) {
  const std::size_t n = spec.jobs.size();
  std::vector<std::uint32_t> indegree(n, 0);
  for (std::uint32_t j = 0; j < n; ++j) {
    indegree[j] = static_cast<std::uint32_t>(spec.jobs[j].prerequisites.size());
  }
  const auto deps = dependents(spec);
  std::deque<std::uint32_t> ready;
  for (std::uint32_t j = 0; j < n; ++j) {
    if (indegree[j] == 0) ready.push_back(j);
  }
  std::vector<std::uint32_t> order;
  order.reserve(n);
  while (!ready.empty()) {
    const std::uint32_t j = ready.front();
    ready.pop_front();
    order.push_back(j);
    for (std::uint32_t d : deps[j]) {
      if (--indegree[d] == 0) ready.push_back(d);
    }
  }
  if (order.size() != n) {
    // Caller decides whether a cycle is an error; validate() throws.
    return order;
  }
  return order;
}

std::vector<std::uint32_t> initial_jobs(const WorkflowSpec& spec) {
  std::vector<std::uint32_t> out;
  for (std::uint32_t j = 0; j < spec.jobs.size(); ++j) {
    if (spec.jobs[j].prerequisites.empty()) out.push_back(j);
  }
  return out;
}

}  // namespace woha::wf

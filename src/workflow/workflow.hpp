// Workflow model (paper Section II).
//
// A workflow W_i = {J_i, P_i, S_i, D_i}: a set of wjobs J_i^j (each with m_i^j
// mappers taking M_i^j each and r_i^j reducers taking R_i^j each), a
// prerequisite relation P_i over the wjobs, a submission time S_i, and a
// deadline D_i. This module holds the static description; runtime state lives
// in hadoop::JobInProgress / hadoop::WorkflowRuntime.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace woha::wf {

/// Static description of one wjob J_i^j.
struct JobSpec {
  std::string name;          ///< Human-readable name ("aggregate-logs").
  std::uint32_t num_maps = 1;
  std::uint32_t num_reduces = 0;
  Duration map_duration = seconds(1);     ///< M_i^j: per-map execution time.
  Duration reduce_duration = seconds(1);  ///< R_i^j: per-reduce execution time.
  /// Indices (into WorkflowSpec::jobs) of the prerequisite wjobs P_i^j.
  std::vector<std::uint32_t> prerequisites;

  /// Total task count m + r.
  [[nodiscard]] std::uint64_t total_tasks() const {
    return static_cast<std::uint64_t>(num_maps) + num_reduces;
  }
  /// Serial length of the job (one map wave + one reduce wave), used by LPF.
  [[nodiscard]] Duration serial_length() const {
    return (num_maps > 0 ? map_duration : 0) + (num_reduces > 0 ? reduce_duration : 0);
  }
};

/// Static description of one workflow W_i.
struct WorkflowSpec {
  std::string name;
  std::vector<JobSpec> jobs;
  SimTime submit_time = 0;        ///< S_i (absolute).
  Duration relative_deadline = 0; ///< D_i - S_i; 0 means "no deadline".

  /// Absolute deadline D_i (kTimeInfinity when no deadline was set).
  [[nodiscard]] SimTime deadline() const {
    return relative_deadline > 0 ? submit_time + relative_deadline : kTimeInfinity;
  }
  [[nodiscard]] std::size_t job_count() const { return jobs.size(); }
  [[nodiscard]] std::uint64_t total_tasks() const {
    std::uint64_t n = 0;
    for (const auto& j : jobs) n += j.total_tasks();
    return n;
  }
};

/// Structural check: prerequisite indices in range, no self-dependency, DAG
/// (no cycles), at least one job, every job has at least one task.
/// Throws std::invalid_argument describing the first violation found.
void validate(const WorkflowSpec& spec);

/// True iff `validate` would accept the spec.
[[nodiscard]] bool is_valid(const WorkflowSpec& spec);

/// Dependent sets D_i^j: inverse of the prerequisite relation
/// (k in result[j] iff j in jobs[k].prerequisites).
[[nodiscard]] std::vector<std::vector<std::uint32_t>> dependents(
    const WorkflowSpec& spec);

/// One topological order of the jobs (Kahn). When the graph has a cycle the
/// returned order is partial (shorter than job_count()); validate() turns
/// that into an error.
[[nodiscard]] std::vector<std::uint32_t> topological_order(const WorkflowSpec& spec);

/// Jobs with no prerequisites — runnable at submission.
[[nodiscard]] std::vector<std::uint32_t> initial_jobs(const WorkflowSpec& spec);

}  // namespace woha::wf

// Graphviz export of workflow DAGs, used by the plan_inspector example and
// handy for documenting topologies (`dot -Tsvg`).
#pragma once

#include <string>

#include "workflow/workflow.hpp"

namespace woha::wf {

struct DotOptions {
  /// Include per-job task counts and durations in node labels.
  bool include_sizes = true;
  /// Left-to-right layout (rankdir=LR) instead of top-down.
  bool left_to_right = true;
};

/// Render the workflow as a Graphviz digraph. Node names are the job names
/// (escaped); edges point from prerequisite to dependent.
[[nodiscard]] std::string to_dot(const WorkflowSpec& spec, const DotOptions& options = {});

}  // namespace woha::wf

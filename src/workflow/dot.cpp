#include "workflow/dot.hpp"

#include "common/strings.hpp"

namespace woha::wf {
namespace {

std::string escape_label(const std::string& raw) {
  std::string out;
  for (char c : raw) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::string to_dot(const WorkflowSpec& spec, const DotOptions& options) {
  std::string out = "digraph \"" + escape_label(spec.name) + "\" {\n";
  if (options.left_to_right) out += "  rankdir=LR;\n";
  out += "  node [shape=box, style=rounded];\n";
  for (std::uint32_t j = 0; j < spec.jobs.size(); ++j) {
    const JobSpec& job = spec.jobs[j];
    std::string label = escape_label(job.name);
    if (options.include_sizes) {
      label += "\\n" + std::to_string(job.num_maps) + "m x " +
               format_duration(job.map_duration);
      if (job.num_reduces > 0) {
        label += " / " + std::to_string(job.num_reduces) + "r x " +
                 format_duration(job.reduce_duration);
      }
    }
    out += "  j" + std::to_string(j) + " [label=\"" + label + "\"];\n";
  }
  for (std::uint32_t j = 0; j < spec.jobs.size(); ++j) {
    for (std::uint32_t p : spec.jobs[j].prerequisites) {
      out += "  j" + std::to_string(p) + " -> j" + std::to_string(j) + ";\n";
    }
  }
  out += "}\n";
  return out;
}

}  // namespace woha::wf

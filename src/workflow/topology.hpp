// Workflow topology builders.
//
// Includes the paper's demonstration topologies plus generic DAG shapes used
// by tests and ablation benches. The paper's Fig. 7 is an image whose exact
// edge list is not recoverable from the text; `paper_fig7_topology` builds a
// 33-job layered analytics DAG with the properties the paper relies on
// (multiple levels so HLF/LPF differ, wide fan-out so MPF differs, long
// chains that must be unlocked early). This substitution is recorded in
// DESIGN.md.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "workflow/workflow.hpp"

namespace woha::wf {

/// Parameters controlling the per-job sizes used by the deterministic
/// builders below.
struct JobShape {
  std::uint32_t num_maps = 10;
  std::uint32_t num_reduces = 3;
  Duration map_duration = seconds(60);
  Duration reduce_duration = seconds(120);
};

/// jobs[0] -> jobs[1] -> ... -> jobs[n-1].
[[nodiscard]] WorkflowSpec chain(std::uint32_t length, const JobShape& shape = {});

/// One source fanning out to `width` independent jobs, all feeding one sink.
[[nodiscard]] WorkflowSpec diamond(std::uint32_t width, const JobShape& shape = {});

/// `width` independent source jobs all feeding a single sink.
[[nodiscard]] WorkflowSpec fan_in(std::uint32_t width, const JobShape& shape = {});

/// The 2-job workflow used by the paper's Fig. 2 resource-cap example:
/// Job1 (3 maps, 3 reduces) -> Job2 (3 maps, 3 reduces), unit task time.
/// `unit` is the duration of one "time unit" in the example.
[[nodiscard]] WorkflowSpec fig2_two_job_workflow(Duration unit = minutes(1));

/// The 33-job analytics workflow standing in for the paper's Fig. 7:
/// 7 layers (ingest -> parse -> aggregate -> join -> stats -> report ->
/// publish) with sizes 3/8/8/6/4/3/1. Task counts and durations are scaled
/// so three concurrent instances on a 32-slave cluster (64 map / 32 reduce
/// slots) produce workspans in the 3000-5500 s range of the paper's Fig. 11.
[[nodiscard]] WorkflowSpec paper_fig7_topology();

/// Random layered DAG: `num_jobs` jobs split over `num_layers` layers; each
/// non-source job draws 1..max_parents prerequisites from the previous
/// layer(s). Job sizes are drawn from `shape` with +/-50% jitter. Always a
/// valid DAG.
struct RandomDagParams {
  std::uint32_t num_jobs = 12;
  std::uint32_t num_layers = 4;
  std::uint32_t max_parents = 3;
  JobShape shape;
};
[[nodiscard]] WorkflowSpec random_dag(Rng& rng, const RandomDagParams& params);

}  // namespace woha::wf

// The master-side workflow queue behind WOHA's AssignTask (Algorithm 2).
//
// The scheduler keeps two orderings over queued workflows:
//   * the ct list   — by the absolute time of the next progress-requirement
//                     change (ascending), and
//   * the priority list — by progress lag p = F(ttd) - rho (descending).
//
// AssignTask (a) refreshes the priorities of the workflows at the head of
// the ct list whose change events have fired, then (b) serves the
// highest-priority workflow that can actually use the slot, bumps its rho,
// and repositions it. Three implementations back the paper's Fig. 13(a)
// ablation: the Double Skip List (the contribution), a balanced-BST
// composition, and the naive recompute-and-rescan loop.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "core/progress_tracker.hpp"

namespace woha::core {

class SchedulerQueue {
 public:
  virtual ~SchedulerQueue() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Add a workflow with its freshly-built tracker. `id` must be new.
  virtual void insert(std::uint32_t id, ProgressTracker tracker) = 0;

  /// Remove a finished workflow. No-op when absent.
  virtual void remove(std::uint32_t id) = 0;

  /// Algorithm 2: update stale orderings up to `now`, then offer the slot to
  /// workflows in descending-priority order; `can_use(id)` says whether the
  /// workflow has an assignable task. On acceptance the workflow's rho is
  /// incremented and its position updated; returns its id. Returns
  /// UINT32_MAX when no queued workflow can use the slot.
  virtual std::uint32_t assign(SimTime now,
                               const std::function<bool(std::uint32_t)>& can_use) = 0;

  /// Batched Algorithm 2: decision-equivalent to up to `k` successive
  /// assign(now, can_use) calls, stopping after the first that would return
  /// kNone. `on_assign(id)` runs after each acceptance (rho already bumped,
  /// orderings repositioned) and must apply the slot-side effects — start
  /// the task — before the next probe, so can_use reflects them. Returns
  /// the number of assignments made; a return < k means the final probe
  /// found no usable workflow (callers may memoize that emptiness for the
  /// tick, exactly as for a kNone from assign()).
  ///
  /// `domain` names the can_use universe (in practice the slot type, 0 or
  /// 1 — must be < kProbeDomains). Implementations may memoize *rejections*
  /// per domain across calls: once can_use(id) probes false, the workflow
  /// is skipped without re-probing until something could have flipped the
  /// answer. The caller owns that contract: can_use(id) must depend only on
  /// (id, domain), and every false -> true flip must be announced through
  /// note_can_use_changed(id) / on_progress_lost(id, ...) — or the whole
  /// memo dropped via invalidate_probe_memo() (e.g. when an offer carries a
  /// per-tracker eligibility filter). The default implementation just loops
  /// assign() and memoizes nothing.
  virtual std::uint32_t assign_batch(SimTime now, std::size_t domain,
                                     std::uint32_t k,
                                     const std::function<bool(std::uint32_t)>& can_use,
                                     const std::function<void(std::uint32_t)>& on_assign);

  /// An external event may have flipped can_use(id) from false to true
  /// (a job of the workflow activated, its map phase completed, lost tasks
  /// returned to the pending pool): forget any memoized rejection of `id`.
  /// No-op when the workflow is not queued, and for queues that memoize
  /// nothing.
  virtual void note_can_use_changed(std::uint32_t id) { (void)id; }

  /// Drop every memoized rejection (all domains): the next assign_batch
  /// re-probes from the priority head. Required before consults whose
  /// can_use is outside the per-(id, domain) contract — e.g. offers with a
  /// per-tracker eligibility filter — and again on the first unfiltered
  /// consult after them.
  virtual void invalidate_probe_memo() {}

  /// Number of probe-memo domains implementations must support (one per
  /// SlotType).
  static constexpr std::size_t kProbeDomains = 2;

  /// Progress regression: `count` tasks previously handed to `id` were lost
  /// to a tracker crash and will be re-executed. Undoes that many
  /// count_scheduled() bumps (rho decreases, lag and hence priority grow)
  /// and repositions the workflow so the priority ordering stays coherent.
  /// No-op when the workflow is not queued (already finished/failed).
  virtual void on_progress_lost(std::uint32_t id, std::uint64_t count) = 0;

  [[nodiscard]] virtual std::size_t size() const = 0;

  /// One queued workflow as the priority ordering currently ranks it — the
  /// explainability snapshot behind obs::SchedulerDecision.
  struct QueueEntry {
    std::uint32_t id = 0;
    std::int64_t lag = 0;           ///< priority p = F(ttd) - rho (descending)
    std::uint64_t requirement = 0;  ///< F at the tracker's last refresh
    std::uint64_t rho = 0;          ///< tasks handed to slots so far
  };

  /// Append up to `k` workflows in descending-priority order. Strictly
  /// read-only: implementations must not refresh orderings or advance
  /// trackers — tracing one decision can never influence the next.
  virtual void top(std::size_t k, std::vector<QueueEntry>& out) const = 0;

  /// Validate internal structure (audit support): cached ordering keys in
  /// sync with the trackers, both index orderings sorted, and the ct and
  /// priority views covering the same workflow set. Throws std::logic_error
  /// with a descriptive message on corruption. Read-only; the default (for
  /// queues without cached structure) checks nothing.
  virtual void check_structure() const {}

  static constexpr std::uint32_t kNone = 0xffffffffu;
};

/// kBst uses std::map, whose red-black tree caches the leftmost node — a
/// stronger baseline than the paper's. kBstPlain models the textbook
/// balanced BST the paper compared against: every head access pays a
/// root-to-leftmost descent.
enum class QueueKind : std::uint8_t { kDsl, kBst, kBstPlain, kNaive };

[[nodiscard]] const char* to_string(QueueKind kind);
[[nodiscard]] std::unique_ptr<SchedulerQueue> make_queue(QueueKind kind);

}  // namespace woha::core

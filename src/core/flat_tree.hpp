// Arena-backed AVL tree — the cache-friendly replacement for the std::map
// orderings in BstQueue (paper Fig. 13(a), "WOHA-BST").
//
// std::map's red-black nodes are ~56-byte individual heap allocations, so a
// root-to-leaf descent at 100k queued workflows is a chain of cold cache
// misses. Here every node lives in one contiguous std::vector and links are
// 32-bit indices: a node is 32 bytes for the queue's 16-byte (key, id)
// pairs, erased nodes go to a free list so the scheduler's reposition
// pattern (erase + insert per AssignTask) runs allocation-free, and index
// links survive vector growth (no pointer fixups).
//
// The ablation semantics BstQueue needs are preserved explicitly:
//   * min_node()    — O(1) cached leftmost (std::map's begin(), "BST"), and
//   * min_descend() — a root-to-leftmost walk (the textbook balanced BST of
//                     the paper's comparison, "BSTplain").
// Keys are unique (the queue composes (key, workflow-id) pairs).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace woha::core {

template <class Key>
class FlatTree {
 public:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Insert a unique key. Returns false (and changes nothing) on duplicate.
  bool insert(const Key& key, std::uint32_t value) {
    bool inserted = false;
    root_ = insert_rec(root_, key, value, inserted);
    if (inserted) {
      ++size_;
      if (min_ == kNil || key < nodes_[min_].key) min_ = last_alloc_;
    }
    return inserted;
  }

  /// Erase by key. Returns false when absent.
  bool erase(const Key& key) {
    const bool was_min =
        min_ != kNil && !(nodes_[min_].key < key) && !(key < nodes_[min_].key);
    bool erased = false;
    root_ = erase_rec(root_, key, erased);
    if (erased) {
      --size_;
      if (was_min) min_ = leftmost(root_);
    }
    return erased;
  }

  /// O(1) cached leftmost node (kNil when empty) — std::map-style begin().
  [[nodiscard]] std::uint32_t min_node() const { return min_; }

  /// Root-to-leftmost descent — the textbook-BST head-access cost model.
  [[nodiscard]] std::uint32_t min_descend() const { return leftmost(root_); }

  [[nodiscard]] const Key& key(std::uint32_t node) const { return nodes_[node].key; }
  [[nodiscard]] std::uint32_t value(std::uint32_t node) const {
    return nodes_[node].value;
  }

  /// In-order (ascending-key) walk; the visitor returns false to stop.
  template <class Visitor>
  void for_each(Visitor&& visit) const {
    walk(root_, visit);
  }

  /// In-order walk over keys >= `from` (lower_bound + forward iteration).
  /// The visitor returns false to stop.
  template <class Visitor>
  void for_each_from(const Key& from, Visitor&& visit) const {
    // Seed the explicit stack with the path to the first key >= from: at
    // each node either descend right (node too small — not on the path) or
    // record it and descend left.
    std::uint32_t stack[kMaxHeight];
    int top = 0;
    std::uint32_t n = root_;
    while (n != kNil) {
      if (nodes_[n].key < from) {
        n = nodes_[n].right;
      } else {
        stack[top++] = n;
        n = nodes_[n].left;
      }
    }
    resume_walk(stack, top, visit);
  }

  /// Structural audit: ordering, AVL balance, cached heights, size and the
  /// cached-min index. Throws std::logic_error on corruption. O(n).
  void validate() const {
    std::size_t count = 0;
    const Key* prev = nullptr;
    validate_rec(root_, count, prev);
    if (count != size_) {
      throw std::logic_error("FlatTree: node count " + std::to_string(count) +
                             " != size " + std::to_string(size_));
    }
    if (min_ != leftmost(root_)) {
      throw std::logic_error("FlatTree: cached min out of sync");
    }
    if (size_ + free_.size() != nodes_.size()) {
      throw std::logic_error("FlatTree: arena leak (live " + std::to_string(size_) +
                             " + free " + std::to_string(free_.size()) + " != " +
                             std::to_string(nodes_.size()) + ")");
    }
  }

 private:
  struct Node {
    Key key;
    std::uint32_t value;
    std::uint32_t left;
    std::uint32_t right;
    std::uint8_t height;  // AVL height of the subtree rooted here (leaf = 1)
  };

  // AVL height is < 1.45 * log2(n); 64 covers any 32-bit-indexed arena.
  static constexpr int kMaxHeight = 64;

  template <class Visitor>
  void walk(std::uint32_t from, Visitor& visit) const {
    std::uint32_t stack[kMaxHeight];
    int top = 0;
    std::uint32_t n = from;
    while (n != kNil) {
      stack[top++] = n;
      n = nodes_[n].left;
    }
    resume_walk(stack, top, visit);
  }

  template <class Visitor>
  void resume_walk(std::uint32_t* stack, int top, Visitor& visit) const {
    while (top > 0) {
      const std::uint32_t n = stack[--top];
      if (!visit(nodes_[n].key, nodes_[n].value)) return;
      std::uint32_t r = nodes_[n].right;
      while (r != kNil) {
        stack[top++] = r;
        r = nodes_[r].left;
      }
    }
  }

  [[nodiscard]] std::uint32_t leftmost(std::uint32_t n) const {
    if (n == kNil) return kNil;
    while (nodes_[n].left != kNil) n = nodes_[n].left;
    return n;
  }

  [[nodiscard]] std::uint32_t height_of(std::uint32_t n) const {
    return n == kNil ? 0u : nodes_[n].height;
  }

  void update_height(std::uint32_t n) {
    const std::uint32_t hl = height_of(nodes_[n].left);
    const std::uint32_t hr = height_of(nodes_[n].right);
    nodes_[n].height = static_cast<std::uint8_t>(1 + (hl > hr ? hl : hr));
  }

  [[nodiscard]] int balance_of(std::uint32_t n) const {
    return static_cast<int>(height_of(nodes_[n].left)) -
           static_cast<int>(height_of(nodes_[n].right));
  }

  std::uint32_t rotate_right(std::uint32_t n) {
    const std::uint32_t l = nodes_[n].left;
    nodes_[n].left = nodes_[l].right;
    nodes_[l].right = n;
    update_height(n);
    update_height(l);
    return l;
  }

  std::uint32_t rotate_left(std::uint32_t n) {
    const std::uint32_t r = nodes_[n].right;
    nodes_[n].right = nodes_[r].left;
    nodes_[r].left = n;
    update_height(n);
    update_height(r);
    return r;
  }

  std::uint32_t rebalance(std::uint32_t n) {
    update_height(n);
    const int b = balance_of(n);
    if (b > 1) {
      if (balance_of(nodes_[n].left) < 0) nodes_[n].left = rotate_left(nodes_[n].left);
      return rotate_right(n);
    }
    if (b < -1) {
      if (balance_of(nodes_[n].right) > 0) {
        nodes_[n].right = rotate_right(nodes_[n].right);
      }
      return rotate_left(n);
    }
    return n;
  }

  std::uint32_t insert_rec(std::uint32_t n, const Key& key, std::uint32_t value,
                           bool& inserted) {
    if (n == kNil) {
      inserted = true;
      last_alloc_ = alloc(key, value);
      return last_alloc_;
    }
    if (key < nodes_[n].key) {
      nodes_[n].left = insert_rec(nodes_[n].left, key, value, inserted);
    } else if (nodes_[n].key < key) {
      nodes_[n].right = insert_rec(nodes_[n].right, key, value, inserted);
    } else {
      return n;  // duplicate: untouched
    }
    return inserted ? rebalance(n) : n;
  }

  /// Detach (do not free) the leftmost node of the subtree; returns the new
  /// subtree root and the detached index through `detached`.
  std::uint32_t detach_min(std::uint32_t n, std::uint32_t& detached) {
    if (nodes_[n].left == kNil) {
      detached = n;
      return nodes_[n].right;
    }
    nodes_[n].left = detach_min(nodes_[n].left, detached);
    return rebalance(n);
  }

  std::uint32_t erase_rec(std::uint32_t n, const Key& key, bool& erased) {
    if (n == kNil) return kNil;
    if (key < nodes_[n].key) {
      nodes_[n].left = erase_rec(nodes_[n].left, key, erased);
    } else if (nodes_[n].key < key) {
      nodes_[n].right = erase_rec(nodes_[n].right, key, erased);
    } else {
      erased = true;
      const std::uint32_t l = nodes_[n].left;
      const std::uint32_t r = nodes_[n].right;
      if (l == kNil || r == kNil) {
        free_.push_back(n);
        return l == kNil ? r : l;
      }
      // Two children: pull up the in-order successor's payload and free its
      // old node. A non-min erase can therefore never relocate the tree's
      // global minimum (the successor is > the erased key > the minimum), so
      // the cached min_ index stays valid on this path.
      std::uint32_t succ = kNil;
      nodes_[n].right = detach_min(r, succ);
      nodes_[n].key = nodes_[succ].key;
      nodes_[n].value = nodes_[succ].value;
      free_.push_back(succ);
    }
    return rebalance(n);
  }

  std::uint32_t alloc(const Key& key, std::uint32_t value) {
    if (!free_.empty()) {
      const std::uint32_t n = free_.back();
      free_.pop_back();
      nodes_[n] = Node{key, value, kNil, kNil, 1};
      return n;
    }
    const auto n = static_cast<std::uint32_t>(nodes_.size());
    nodes_.push_back(Node{key, value, kNil, kNil, 1});
    return n;
  }

  /// Returns the subtree height; checks ordering against the enclosing
  /// (min, max) key window via `prev` (strict in-order ascent).
  std::uint32_t validate_rec(std::uint32_t n, std::size_t& count,
                             const Key*& prev) const {
    if (n == kNil) return 0;
    if (n >= nodes_.size()) throw std::logic_error("FlatTree: link out of range");
    const std::uint32_t hl = validate_rec(nodes_[n].left, count, prev);
    if (prev != nullptr && !(*prev < nodes_[n].key)) {
      throw std::logic_error("FlatTree: keys not strictly ascending");
    }
    prev = &nodes_[n].key;
    ++count;
    const std::uint32_t hr = validate_rec(nodes_[n].right, count, prev);
    const std::uint32_t h = 1 + (hl > hr ? hl : hr);
    if (h != nodes_[n].height) throw std::logic_error("FlatTree: stale height");
    const int b = static_cast<int>(hl) - static_cast<int>(hr);
    if (b < -1 || b > 1) throw std::logic_error("FlatTree: AVL balance violated");
    return h;
  }

  std::vector<Node> nodes_;
  std::vector<std::uint32_t> free_;
  std::uint32_t root_ = kNil;
  std::uint32_t min_ = kNil;
  std::uint32_t last_alloc_ = kNil;
  std::size_t size_ = 0;
};

}  // namespace woha::core

#include "core/queue_bst.hpp"

#include <stdexcept>

namespace woha::core {

namespace {

// std::map::emplace silently keeps the old entry on a duplicate key, which
// here would unschedule a workflow forever. Same hardening as DslQueue.
template <class Tree, class Key, class Value>
void checked_emplace(Tree& tree, const Key& key, Value* st, const char* what) {
  if (!tree.emplace(key, st).second) throw std::logic_error(what);
}

}  // namespace

void BstQueue::insert(std::uint32_t id, ProgressTracker tracker) {
  if (states_.count(id)) throw std::invalid_argument("BstQueue: duplicate id");
  auto st = std::make_unique<WfState>(WfState{id, std::move(tracker), 0, 0});
  st->ct_key = st->tracker.next_change_time();
  st->pri_key = -st->tracker.lag();
  checked_emplace(ct_tree_, CtKey{st->ct_key, id}, st.get(),
                  "BstQueue: duplicate ct key on insert");
  checked_emplace(pri_tree_, PriKey{st->pri_key, id}, st.get(),
                  "BstQueue: duplicate pri key on insert");
  states_.emplace(id, std::move(st));
}

void BstQueue::remove(std::uint32_t id) {
  const auto it = states_.find(id);
  if (it == states_.end()) return;
  ct_tree_.erase({it->second->ct_key, id});
  pri_tree_.erase({it->second->pri_key, id});
  states_.erase(it);
}

std::uint32_t BstQueue::assign(SimTime now,
                               const std::function<bool(std::uint32_t)>& can_use) {
  while (!ct_tree_.empty()) {
    const auto head = tree_begin(ct_tree_);
    if (head->first.first > now) break;
    WfState* st = head->second;
    ct_tree_.erase(head);
    st->tracker.advance_to(now);
    if (pri_tree_.erase({st->pri_key, st->id}) != 1) {
      throw std::logic_error("BstQueue: stale pri key on refresh");
    }
    st->pri_key = -st->tracker.lag();
    checked_emplace(pri_tree_, PriKey{st->pri_key, st->id}, st,
                    "BstQueue: duplicate pri key on refresh");
    st->ct_key = st->tracker.next_change_time();
    checked_emplace(ct_tree_, CtKey{st->ct_key, st->id}, st,
                    "BstQueue: duplicate ct key on refresh");
  }

  WfState* chosen = nullptr;
  for (auto it = tree_begin(pri_tree_); it != pri_tree_.end(); ++it) {
    if (can_use(it->second->id)) {
      chosen = it->second;
      break;
    }
  }
  if (!chosen) return kNone;

  if (pri_tree_.erase({chosen->pri_key, chosen->id}) != 1) {
    throw std::logic_error("BstQueue: stale pri key on assignment");
  }
  chosen->tracker.count_scheduled();
  chosen->pri_key = -chosen->tracker.lag();
  checked_emplace(pri_tree_, PriKey{chosen->pri_key, chosen->id}, chosen,
                  "BstQueue: duplicate pri key on assignment");
  return chosen->id;
}

void BstQueue::top(std::size_t k, std::vector<QueueEntry>& out) const {
  for (auto it = pri_tree_.begin(); it != pri_tree_.end() && out.size() < k;
       ++it) {
    const WfState* st = it->second;
    out.push_back(QueueEntry{st->id, st->tracker.lag(),
                             st->tracker.current_requirement(),
                             st->tracker.rho()});
  }
}

void BstQueue::on_progress_lost(std::uint32_t id, std::uint64_t count) {
  const auto it = states_.find(id);
  if (it == states_.end()) return;
  WfState* st = it->second.get();
  if (pri_tree_.erase({st->pri_key, st->id}) != 1) {
    throw std::logic_error("BstQueue: stale pri key on progress loss");
  }
  st->tracker.count_lost(count);
  st->pri_key = -st->tracker.lag();
  checked_emplace(pri_tree_, PriKey{st->pri_key, st->id}, st,
                  "BstQueue: duplicate pri key on progress loss");
}

}  // namespace woha::core

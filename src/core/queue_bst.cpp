#include "core/queue_bst.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

namespace woha::core {

constexpr BstQueue::PriKey BstQueue::kWalkFromHead;
constexpr BstQueue::PriKey BstQueue::kWalkNothing;

namespace {

// FlatTree::insert returns false on a duplicate key *without inserting*,
// which here would unschedule a workflow forever. Same hardening as DslQueue.
template <class Tree, class Key>
void checked_emplace(Tree& tree, const Key& key, std::uint32_t slot,
                     const char* what) {
  if (!tree.insert(key, slot)) throw std::logic_error(what);
}

}  // namespace

void BstQueue::note_moved(std::uint32_t slot, const PriKey& key) {
  for (std::size_t d = 0; d < WfStateArena::kDomains; ++d) {
    if (arena_.stamp(d, slot) != epoch_[d] && key < resume_[d]) {
      resume_[d] = key;
    }
  }
}

void BstQueue::insert(std::uint32_t id, ProgressTracker tracker) {
  if (arena_.slot_of(id) != WfStateArena::kNilSlot) {
    throw std::invalid_argument("BstQueue: duplicate id");
  }
  const std::uint32_t slot = arena_.allocate(id, std::move(tracker));
  const ProgressTracker& t = arena_.tracker(slot);
  arena_.ct_key(slot) = t.next_change_time();
  arena_.pri_key(slot) = -t.lag();
  checked_emplace(ct_tree_, CtKey{arena_.ct_key(slot), id}, slot,
                  "BstQueue: duplicate ct key on insert");
  checked_emplace(pri_tree_, PriKey{arena_.pri_key(slot), id}, slot,
                  "BstQueue: duplicate pri key on insert");
  ct_dirty_ = true;  // the newcomer's first step may already have fired
  note_moved(slot, {arena_.pri_key(slot), id});
}

void BstQueue::remove(std::uint32_t id) {
  const std::uint32_t slot = arena_.slot_of(id);
  if (slot == WfStateArena::kNilSlot) return;
  ct_tree_.erase({arena_.ct_key(slot), id});
  pri_tree_.erase({arena_.pri_key(slot), id});
  arena_.release(slot);
}

void BstQueue::refresh(std::uint32_t slot, SimTime now) {
  ProgressTracker& t = arena_.tracker(slot);
  const std::uint32_t id = arena_.id(slot);
  t.advance_to(now);
  if (!pri_tree_.erase({arena_.pri_key(slot), id})) {
    throw std::logic_error("BstQueue: stale pri key on refresh");
  }
  arena_.pri_key(slot) = -t.lag();
  checked_emplace(pri_tree_, PriKey{arena_.pri_key(slot), id}, slot,
                  "BstQueue: duplicate pri key on refresh");
  arena_.ct_key(slot) = t.next_change_time();
  checked_emplace(ct_tree_, CtKey{arena_.ct_key(slot), id}, slot,
                  "BstQueue: duplicate ct key on refresh");
  note_moved(slot, {arena_.pri_key(slot), id});
}

void BstQueue::refresh_fired(SimTime now) {
  // Same per-instant memo as DslQueue::refresh_fired: once the orderings
  // are clean for `now` and nothing was inserted since, skip the head peek.
  if (!ct_dirty_ && ct_clean_now_ == now) return;
  while (!ct_tree_.empty()) {
    const std::uint32_t head = tree_head(ct_tree_);
    if (ct_tree_.key(head).first > now) break;
    const std::uint32_t slot = ct_tree_.value(head);
    const CtKey head_key = ct_tree_.key(head);  // copy: erase invalidates
    ct_tree_.erase(head_key);
    refresh(slot, now);
  }
  ct_clean_now_ = now;
  ct_dirty_ = false;
}

std::uint32_t BstQueue::commit_winner(std::uint32_t slot, const PriKey& old_key) {
  ProgressTracker& t = arena_.tracker(slot);
  const std::uint32_t id = arena_.id(slot);
  t.count_scheduled();
  arena_.pri_key(slot) = -t.lag();
  checked_emplace(pri_tree_, PriKey{arena_.pri_key(slot), id}, slot,
                  "BstQueue: duplicate pri key on assignment");
  note_moved(slot, {arena_.pri_key(slot), id});
  (void)old_key;
  return id;
}

std::uint32_t BstQueue::assign(SimTime now,
                               const std::function<bool(std::uint32_t)>& can_use) {
  refresh_fired(now);

  if (pri_tree_.empty()) return kNone;
  // Charge the ablation's per-consult head access (O(1) cached vs a
  // root-to-min descent), then walk the priority order. Memo-free, like
  // DslQueue::assign: only assign_batch consults the rejection memo.
  (void)tree_head(pri_tree_);
  std::uint32_t chosen = WfStateArena::kNilSlot;
  PriKey chosen_key{};
  pri_tree_.for_each([&](const PriKey& key, std::uint32_t slot) {
    if (can_use(arena_.id(slot))) {
      chosen = slot;
      chosen_key = key;
      return false;
    }
    return true;
  });
  if (chosen == WfStateArena::kNilSlot) return kNone;

  if (!pri_tree_.erase(chosen_key)) {
    throw std::logic_error("BstQueue: stale pri key on assignment");
  }
  return commit_winner(chosen, chosen_key);
}

std::uint32_t BstQueue::assign_batch(
    SimTime now, std::size_t domain, std::uint32_t k,
    const std::function<bool(std::uint32_t)>& can_use,
    const std::function<void(std::uint32_t)>& on_assign) {
  if (k == 0) return 0;
  refresh_fired(now);

  const std::size_t d = domain;
  std::uint32_t picks = 0;
  while (picks < k) {
    if (!cached_min_ && !pri_tree_.empty()) (void)pri_tree_.min_descend();
    std::uint32_t chosen = WfStateArena::kNilSlot;
    PriKey chosen_key{};
    pri_tree_.for_each_from(resume_[d], [&](const PriKey& key,
                                            std::uint32_t slot) {
      if (arena_.stamp(d, slot) == epoch_[d]) return true;  // memoized "no"
      if (can_use(arena_.id(slot))) {
        chosen = slot;
        chosen_key = key;
        return false;
      }
      arena_.stamp(d, slot) = epoch_[d];
      return true;
    });
    if (chosen == WfStateArena::kNilSlot) {
      resume_[d] = kWalkNothing;
      break;
    }

    if (!pri_tree_.erase(chosen_key)) {
      throw std::logic_error("BstQueue: stale pri key on assignment");
    }
    // Resume at the winner's old key: its bumped key and the old successor
    // both sort at or after it (see DslQueue::assign_batch).
    resume_[d] = chosen_key;
    const std::uint32_t id = commit_winner(chosen, chosen_key);
    ++picks;
    on_assign(id);
  }
  return picks;
}

void BstQueue::note_can_use_changed(std::uint32_t id) {
  const std::uint32_t slot = arena_.slot_of(id);
  if (slot == WfStateArena::kNilSlot) return;
  for (std::size_t d = 0; d < WfStateArena::kDomains; ++d) {
    arena_.stamp(d, slot) = 0;
  }
  note_moved(slot, {arena_.pri_key(slot), id});
}

void BstQueue::invalidate_probe_memo() {
  for (std::size_t d = 0; d < WfStateArena::kDomains; ++d) {
    ++epoch_[d];
    resume_[d] = kWalkFromHead;
  }
}

void BstQueue::top(std::size_t k, std::vector<QueueEntry>& out) const {
  pri_tree_.for_each([&](const PriKey&, std::uint32_t slot) {
    if (out.size() >= k) return false;
    const ProgressTracker& t = arena_.tracker(slot);
    out.push_back(QueueEntry{arena_.id(slot), t.lag(), t.current_requirement(),
                             t.rho()});
    return true;
  });
}

void BstQueue::check_structure() const {
  arena_.check("BstQueue");
  ct_tree_.validate();
  pri_tree_.validate();
  // The trees verify their own ordering and balance above; the remaining
  // checks are: cached keys in sync with trackers, tree keys matching the
  // caches, and both trees covering the same id set (collected from the
  // ordered trees, never by iterating the arena's unordered id map).
  if (ct_tree_.size() != arena_.size() || pri_tree_.size() != arena_.size()) {
    throw std::logic_error(
        "BstQueue::check_structure: index sizes diverged (states=" +
        std::to_string(arena_.size()) + " ct=" + std::to_string(ct_tree_.size()) +
        " pri=" + std::to_string(pri_tree_.size()) + ")");
  }
  std::vector<std::uint32_t> ct_ids, pri_ids;
  ct_ids.reserve(arena_.size());
  pri_ids.reserve(arena_.size());
  ct_tree_.for_each([&](const CtKey& key, std::uint32_t slot) {
    const std::uint32_t id = arena_.id(slot);
    if (key.first != arena_.ct_key(slot) || key.second != id) {
      throw std::logic_error(
          "BstQueue::check_structure: ct node key disagrees with cached "
          "ct_key for id " + std::to_string(id));
    }
    if (arena_.ct_key(slot) != arena_.tracker(slot).next_change_time()) {
      throw std::logic_error(
          "BstQueue::check_structure: cached ct_key stale for id " +
          std::to_string(id));
    }
    if (arena_.slot_of(id) != slot) {
      throw std::logic_error(
          "BstQueue::check_structure: ct entry not backed by states_ for id " +
          std::to_string(id));
    }
    ct_ids.push_back(id);
    return true;
  });
  pri_tree_.for_each([&](const PriKey& key, std::uint32_t slot) {
    const std::uint32_t id = arena_.id(slot);
    if (key.first != arena_.pri_key(slot) || key.second != id) {
      throw std::logic_error(
          "BstQueue::check_structure: priority node key disagrees with "
          "cached pri_key for id " + std::to_string(id));
    }
    if (arena_.pri_key(slot) != -arena_.tracker(slot).lag()) {
      throw std::logic_error(
          "BstQueue::check_structure: cached pri_key stale for id " +
          std::to_string(id) + " (cached=" + std::to_string(arena_.pri_key(slot)) +
          " tracker=" + std::to_string(-arena_.tracker(slot).lag()) + ")");
    }
    if (arena_.slot_of(id) != slot) {
      throw std::logic_error(
          "BstQueue::check_structure: priority entry not backed by states_ "
          "for id " + std::to_string(id));
    }
    for (std::size_t dm = 0; dm < WfStateArena::kDomains; ++dm) {
      if (arena_.stamp(dm, slot) != epoch_[dm] && key < resume_[dm]) {
        throw std::logic_error(
            "BstQueue::check_structure: unprobed workflow precedes the "
            "domain-" + std::to_string(dm) + " resume key at id " +
            std::to_string(id));
      }
    }
    pri_ids.push_back(id);
    return true;
  });
  std::sort(ct_ids.begin(), ct_ids.end());
  std::sort(pri_ids.begin(), pri_ids.end());
  if (ct_ids != pri_ids ||
      std::adjacent_find(ct_ids.begin(), ct_ids.end()) != ct_ids.end()) {
    throw std::logic_error(
        "BstQueue::check_structure: ct and priority trees do not cover the "
        "same workflow set exactly once each");
  }
}

void BstQueue::on_progress_lost(std::uint32_t id, std::uint64_t count) {
  const std::uint32_t slot = arena_.slot_of(id);
  if (slot == WfStateArena::kNilSlot) return;
  ProgressTracker& t = arena_.tracker(slot);
  if (!pri_tree_.erase({arena_.pri_key(slot), id})) {
    throw std::logic_error("BstQueue: stale pri key on progress loss");
  }
  t.count_lost(count);
  arena_.pri_key(slot) = -t.lag();
  checked_emplace(pri_tree_, PriKey{arena_.pri_key(slot), id}, slot,
                  "BstQueue: duplicate pri key on progress loss");
  for (std::size_t d = 0; d < WfStateArena::kDomains; ++d) {
    arena_.stamp(d, slot) = 0;
  }
  note_moved(slot, {arena_.pri_key(slot), id});
}

}  // namespace woha::core

#include "core/queue_bst.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

namespace woha::core {

namespace {

// std::map::emplace silently keeps the old entry on a duplicate key, which
// here would unschedule a workflow forever. Same hardening as DslQueue.
template <class Tree, class Key, class Value>
void checked_emplace(Tree& tree, const Key& key, Value* st, const char* what) {
  if (!tree.emplace(key, st).second) throw std::logic_error(what);
}

}  // namespace

void BstQueue::insert(std::uint32_t id, ProgressTracker tracker) {
  if (states_.count(id)) throw std::invalid_argument("BstQueue: duplicate id");
  auto st = std::make_unique<WfState>(WfState{id, std::move(tracker), 0, 0});
  st->ct_key = st->tracker.next_change_time();
  st->pri_key = -st->tracker.lag();
  checked_emplace(ct_tree_, CtKey{st->ct_key, id}, st.get(),
                  "BstQueue: duplicate ct key on insert");
  checked_emplace(pri_tree_, PriKey{st->pri_key, id}, st.get(),
                  "BstQueue: duplicate pri key on insert");
  states_.emplace(id, std::move(st));
}

void BstQueue::remove(std::uint32_t id) {
  const auto it = states_.find(id);
  if (it == states_.end()) return;
  ct_tree_.erase({it->second->ct_key, id});
  pri_tree_.erase({it->second->pri_key, id});
  states_.erase(it);
}

std::uint32_t BstQueue::assign(SimTime now,
                               const std::function<bool(std::uint32_t)>& can_use) {
  while (!ct_tree_.empty()) {
    const auto head = tree_begin(ct_tree_);
    if (head->first.first > now) break;
    WfState* st = head->second;
    ct_tree_.erase(head);
    st->tracker.advance_to(now);
    if (pri_tree_.erase({st->pri_key, st->id}) != 1) {
      throw std::logic_error("BstQueue: stale pri key on refresh");
    }
    st->pri_key = -st->tracker.lag();
    checked_emplace(pri_tree_, PriKey{st->pri_key, st->id}, st,
                    "BstQueue: duplicate pri key on refresh");
    st->ct_key = st->tracker.next_change_time();
    checked_emplace(ct_tree_, CtKey{st->ct_key, st->id}, st,
                    "BstQueue: duplicate ct key on refresh");
  }

  WfState* chosen = nullptr;
  for (auto it = tree_begin(pri_tree_); it != pri_tree_.end(); ++it) {
    if (can_use(it->second->id)) {
      chosen = it->second;
      break;
    }
  }
  if (!chosen) return kNone;

  if (pri_tree_.erase({chosen->pri_key, chosen->id}) != 1) {
    throw std::logic_error("BstQueue: stale pri key on assignment");
  }
  chosen->tracker.count_scheduled();
  chosen->pri_key = -chosen->tracker.lag();
  checked_emplace(pri_tree_, PriKey{chosen->pri_key, chosen->id}, chosen,
                  "BstQueue: duplicate pri key on assignment");
  return chosen->id;
}

void BstQueue::top(std::size_t k, std::vector<QueueEntry>& out) const {
  for (auto it = pri_tree_.begin(); it != pri_tree_.end() && out.size() < k;
       ++it) {
    const WfState* st = it->second;
    out.push_back(QueueEntry{st->id, st->tracker.lag(),
                             st->tracker.current_requirement(),
                             st->tracker.rho()});
  }
}

void BstQueue::check_structure() const {
  // std::map keeps its own ordering, so beyond sizes the checks are: cached
  // keys in sync with trackers, tree keys matching the caches, and both
  // trees covering the same id set (collected from the ordered trees, never
  // by iterating the unordered states_ map).
  if (ct_tree_.size() != states_.size() || pri_tree_.size() != states_.size()) {
    throw std::logic_error(
        "BstQueue::check_structure: index sizes diverged (states=" +
        std::to_string(states_.size()) + " ct=" + std::to_string(ct_tree_.size()) +
        " pri=" + std::to_string(pri_tree_.size()) + ")");
  }
  std::vector<std::uint32_t> ct_ids, pri_ids;
  ct_ids.reserve(states_.size());
  pri_ids.reserve(states_.size());
  for (const auto& [key, st] : ct_tree_) {
    if (key.first != st->ct_key || key.second != st->id) {
      throw std::logic_error(
          "BstQueue::check_structure: ct node key disagrees with cached "
          "ct_key for id " + std::to_string(st->id));
    }
    if (st->ct_key != st->tracker.next_change_time()) {
      throw std::logic_error(
          "BstQueue::check_structure: cached ct_key stale for id " +
          std::to_string(st->id));
    }
    const auto it = states_.find(st->id);
    if (it == states_.end() || it->second.get() != st) {
      throw std::logic_error(
          "BstQueue::check_structure: ct entry not backed by states_ for id " +
          std::to_string(st->id));
    }
    ct_ids.push_back(st->id);
  }
  for (const auto& [key, st] : pri_tree_) {
    if (key.first != st->pri_key || key.second != st->id) {
      throw std::logic_error(
          "BstQueue::check_structure: priority node key disagrees with "
          "cached pri_key for id " + std::to_string(st->id));
    }
    if (st->pri_key != -st->tracker.lag()) {
      throw std::logic_error(
          "BstQueue::check_structure: cached pri_key stale for id " +
          std::to_string(st->id) + " (cached=" + std::to_string(st->pri_key) +
          " tracker=" + std::to_string(-st->tracker.lag()) + ")");
    }
    const auto it = states_.find(st->id);
    if (it == states_.end() || it->second.get() != st) {
      throw std::logic_error(
          "BstQueue::check_structure: priority entry not backed by states_ "
          "for id " + std::to_string(st->id));
    }
    pri_ids.push_back(st->id);
  }
  std::sort(ct_ids.begin(), ct_ids.end());
  std::sort(pri_ids.begin(), pri_ids.end());
  if (ct_ids != pri_ids ||
      std::adjacent_find(ct_ids.begin(), ct_ids.end()) != ct_ids.end()) {
    throw std::logic_error(
        "BstQueue::check_structure: ct and priority trees do not cover the "
        "same workflow set exactly once each");
  }
}

void BstQueue::on_progress_lost(std::uint32_t id, std::uint64_t count) {
  const auto it = states_.find(id);
  if (it == states_.end()) return;
  WfState* st = it->second.get();
  if (pri_tree_.erase({st->pri_key, st->id}) != 1) {
    throw std::logic_error("BstQueue: stale pri key on progress loss");
  }
  st->tracker.count_lost(count);
  st->pri_key = -st->tracker.lag();
  checked_emplace(pri_tree_, PriKey{st->pri_key, st->id}, st,
                  "BstQueue: duplicate pri key on progress loss");
}

}  // namespace woha::core

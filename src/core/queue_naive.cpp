#include "core/queue_naive.hpp"

#include <algorithm>
#include <stdexcept>

namespace woha::core {

void NaiveQueue::insert(std::uint32_t id, ProgressTracker tracker) {
  if (states_.count(id)) throw std::invalid_argument("NaiveQueue: duplicate id");
  states_.emplace(id, WfState{id, std::move(tracker)});
}

void NaiveQueue::remove(std::uint32_t id) { states_.erase(id); }

std::uint32_t NaiveQueue::assign(SimTime now,
                                 const std::function<bool(std::uint32_t)>& can_use) {
  // "Update all workflows' progress lags and then reorder them."
  std::vector<std::pair<std::int64_t, std::uint32_t>> order;  // (-lag, id)
  order.reserve(states_.size());
  for (auto& [id, st] : states_) {
    st.tracker.advance_to(now);
    order.emplace_back(-st.tracker.lag(), id);
  }
  std::sort(order.begin(), order.end());
  for (const auto& [neg_lag, id] : order) {
    if (can_use(id)) {
      states_.at(id).tracker.count_scheduled();
      return id;
    }
  }
  return kNone;
}

void NaiveQueue::top(std::size_t k, std::vector<QueueEntry>& out) const {
  // No cached ordering: rank by the trackers' current (last-advanced) state,
  // exactly what assign() would sort by without the advance_to refresh.
  std::vector<std::pair<std::int64_t, std::uint32_t>> order;  // (-lag, id)
  order.reserve(states_.size());
  for (const auto& [id, st] : states_) {
    order.emplace_back(-st.tracker.lag(), id);
  }
  std::sort(order.begin(), order.end());
  for (std::size_t i = 0; i < order.size() && out.size() < k; ++i) {
    const WfState& st = states_.at(order[i].second);
    out.push_back(QueueEntry{st.id, st.tracker.lag(),
                             st.tracker.current_requirement(),
                             st.tracker.rho()});
  }
}

void NaiveQueue::on_progress_lost(std::uint32_t id, std::uint64_t count) {
  // No cached ordering to repair: assign() recomputes from scratch anyway.
  const auto it = states_.find(id);
  if (it == states_.end()) return;
  it->second.tracker.count_lost(count);
}

}  // namespace woha::core

#include "core/queue_dsl.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

namespace woha::core {

// SkipList::insert returns false on a duplicate key *without inserting*, so
// an unchecked call would silently drop the workflow from one of the lists —
// it would simply never be scheduled again. Every internal reposition goes
// through these guards: a failure means the cached ct_key/pri_key went out
// of sync with the list, which is a corruption bug, never a recoverable
// condition.
void DslQueue::checked_insert(SkipList<CtKey, WfState*>& list, const CtKey& key,
                              WfState* st, const char* what) {
  if (!list.insert(key, st)) throw std::logic_error(what);
}

void DslQueue::insert(std::uint32_t id, ProgressTracker tracker) {
  if (states_.count(id)) throw std::invalid_argument("DslQueue: duplicate id");
  auto st = std::make_unique<WfState>(
      WfState{id, std::move(tracker), 0, 0});
  st->ct_key = st->tracker.next_change_time();
  st->pri_key = -st->tracker.lag();
  checked_insert(ct_list_, {st->ct_key, id}, st.get(),
                 "DslQueue: duplicate ct key on insert");
  checked_insert(pri_list_, {st->pri_key, id}, st.get(),
                 "DslQueue: duplicate pri key on insert");
  states_.emplace(id, std::move(st));
}

void DslQueue::remove(std::uint32_t id) {
  const auto it = states_.find(id);
  if (it == states_.end()) return;
  ct_list_.erase({it->second->ct_key, id});
  pri_list_.erase({it->second->pri_key, id});
  states_.erase(it);
}

void DslQueue::refresh(WfState& st, SimTime now) {
  st.tracker.advance_to(now);
  if (!pri_list_.erase({st.pri_key, st.id})) {
    throw std::logic_error("DslQueue: stale pri key on refresh");
  }
  st.pri_key = -st.tracker.lag();
  checked_insert(pri_list_, {st.pri_key, st.id}, &st,
                 "DslQueue: duplicate pri key on refresh");
  st.ct_key = st.tracker.next_change_time();
  checked_insert(ct_list_, {st.ct_key, st.id}, &st,
                 "DslQueue: duplicate ct key on refresh");
}

std::uint32_t DslQueue::assign(SimTime now,
                               const std::function<bool(std::uint32_t)>& can_use) {
  // Phase 1 (Algorithm 2, lines 4-19): workflows whose next requirement
  // change has fired leave the ct head (O(1) pop), get a fresh priority,
  // and re-enter both lists.
  while (!ct_list_.empty() && ct_list_.front().first.first <= now) {
    auto [key, st] = ct_list_.pop_front();
    refresh(*st, now);
  }

  // Phase 2 (lines 20-24): serve the most-lagging workflow that can use the
  // slot. The head case is the common one — this is exactly where the
  // Double Skip List earns its O(1) head deletion; the forward walk covers
  // workflows that are temporarily unassignable (e.g. all jobs waiting on
  // predecessors), keeping the scheduler work-conserving.
  WfState* chosen = nullptr;
  bool chosen_is_head = true;
  pri_list_.for_each([&](const PriKey&, WfState* st) {
    if (can_use(st->id)) {
      chosen = st;
      return false;
    }
    chosen_is_head = false;
    return true;
  });
  if (!chosen) return kNone;

  if (chosen_is_head) {
    pri_list_.pop_front();  // O(1): the paper's common case
  } else if (!pri_list_.erase({chosen->pri_key, chosen->id})) {
    throw std::logic_error("DslQueue: stale pri key on assignment");
  }
  chosen->tracker.count_scheduled();  // rho+1 <=> p-1
  chosen->pri_key = -chosen->tracker.lag();
  checked_insert(pri_list_, {chosen->pri_key, chosen->id}, chosen,
                 "DslQueue: duplicate pri key on assignment");
  return chosen->id;
}

void DslQueue::top(std::size_t k, std::vector<QueueEntry>& out) const {
  // Walk the priority list head: O(k), never repositions anything.
  pri_list_.for_each([&](const PriKey&, WfState* const& st) {
    if (out.size() >= k) return false;
    out.push_back(QueueEntry{st->id, st->tracker.lag(),
                             st->tracker.current_requirement(),
                             st->tracker.rho()});
    return true;
  });
}

void DslQueue::check_structure() const {
  if (ct_list_.size() != states_.size() || pri_list_.size() != states_.size()) {
    throw std::logic_error(
        "DslQueue::check_structure: index sizes diverged (states=" +
        std::to_string(states_.size()) + " ct=" + std::to_string(ct_list_.size()) +
        " pri=" + std::to_string(pri_list_.size()) + ")");
  }
  // Walk both skip lists: keys strictly ascending, cached keys in sync with
  // the trackers, every entry resolving into states_. Collecting the id
  // sequences (instead of iterating the unordered states_ map) keeps this
  // check itself deterministic; equal sorted id sets plus equal sizes prove
  // both lists cover exactly the queued workflows.
  std::vector<std::uint32_t> ct_ids, pri_ids;
  ct_ids.reserve(states_.size());
  pri_ids.reserve(states_.size());
  const CtKey* prev_ct = nullptr;
  ct_list_.for_each([&](const CtKey& key, WfState* const& st) {
    if (prev_ct != nullptr && !(*prev_ct < key)) {
      throw std::logic_error(
          "DslQueue::check_structure: ct list keys not strictly ascending at id " +
          std::to_string(st->id));
    }
    prev_ct = &key;
    if (key.first != st->ct_key || key.second != st->id) {
      throw std::logic_error(
          "DslQueue::check_structure: ct node key disagrees with cached "
          "ct_key for id " + std::to_string(st->id));
    }
    if (st->ct_key != st->tracker.next_change_time()) {
      throw std::logic_error(
          "DslQueue::check_structure: cached ct_key stale for id " +
          std::to_string(st->id) + " (cached=" + std::to_string(st->ct_key) +
          " tracker=" + std::to_string(st->tracker.next_change_time()) + ")");
    }
    const auto it = states_.find(st->id);
    if (it == states_.end() || it->second.get() != st) {
      throw std::logic_error(
          "DslQueue::check_structure: ct entry not backed by states_ for id " +
          std::to_string(st->id));
    }
    ct_ids.push_back(st->id);
    return true;
  });
  const PriKey* prev_pri = nullptr;
  pri_list_.for_each([&](const PriKey& key, WfState* const& st) {
    if (prev_pri != nullptr && !(*prev_pri < key)) {
      throw std::logic_error(
          "DslQueue::check_structure: priority list keys not strictly "
          "ascending at id " + std::to_string(st->id));
    }
    prev_pri = &key;
    if (key.first != st->pri_key || key.second != st->id) {
      throw std::logic_error(
          "DslQueue::check_structure: priority node key disagrees with "
          "cached pri_key for id " + std::to_string(st->id));
    }
    if (st->pri_key != -st->tracker.lag()) {
      throw std::logic_error(
          "DslQueue::check_structure: cached pri_key stale for id " +
          std::to_string(st->id) + " (cached=" + std::to_string(st->pri_key) +
          " tracker=" + std::to_string(-st->tracker.lag()) + ")");
    }
    const auto it = states_.find(st->id);
    if (it == states_.end() || it->second.get() != st) {
      throw std::logic_error(
          "DslQueue::check_structure: priority entry not backed by states_ "
          "for id " + std::to_string(st->id));
    }
    pri_ids.push_back(st->id);
    return true;
  });
  std::sort(ct_ids.begin(), ct_ids.end());
  std::sort(pri_ids.begin(), pri_ids.end());
  if (ct_ids != pri_ids ||
      std::adjacent_find(ct_ids.begin(), ct_ids.end()) != ct_ids.end()) {
    throw std::logic_error(
        "DslQueue::check_structure: ct and priority lists do not cover the "
        "same workflow set exactly once each");
  }
}

void DslQueue::on_progress_lost(std::uint32_t id, std::uint64_t count) {
  const auto it = states_.find(id);
  if (it == states_.end()) return;
  WfState& st = *it->second;
  if (!pri_list_.erase({st.pri_key, st.id})) {
    throw std::logic_error("DslQueue: stale pri key on progress loss");
  }
  st.tracker.count_lost(count);  // rho-n <=> p+n
  st.pri_key = -st.tracker.lag();
  checked_insert(pri_list_, {st.pri_key, st.id}, &st,
                 "DslQueue: duplicate pri key on progress loss");
}

}  // namespace woha::core

#include "core/queue_dsl.hpp"

#include <stdexcept>

namespace woha::core {

void DslQueue::insert(std::uint32_t id, ProgressTracker tracker) {
  if (states_.count(id)) throw std::invalid_argument("DslQueue: duplicate id");
  auto st = std::make_unique<WfState>(
      WfState{id, std::move(tracker), 0, 0});
  st->ct_key = st->tracker.next_change_time();
  st->pri_key = -st->tracker.lag();
  ct_list_.insert({st->ct_key, id}, st.get());
  pri_list_.insert({st->pri_key, id}, st.get());
  states_.emplace(id, std::move(st));
}

void DslQueue::remove(std::uint32_t id) {
  const auto it = states_.find(id);
  if (it == states_.end()) return;
  ct_list_.erase({it->second->ct_key, id});
  pri_list_.erase({it->second->pri_key, id});
  states_.erase(it);
}

void DslQueue::refresh(WfState& st, SimTime now) {
  st.tracker.advance_to(now);
  pri_list_.erase({st.pri_key, st.id});
  st.pri_key = -st.tracker.lag();
  pri_list_.insert({st.pri_key, st.id}, &st);
  st.ct_key = st.tracker.next_change_time();
  ct_list_.insert({st.ct_key, st.id}, &st);
}

std::uint32_t DslQueue::assign(SimTime now,
                               const std::function<bool(std::uint32_t)>& can_use) {
  // Phase 1 (Algorithm 2, lines 4-19): workflows whose next requirement
  // change has fired leave the ct head (O(1) pop), get a fresh priority,
  // and re-enter both lists.
  while (!ct_list_.empty() && ct_list_.front().first.first <= now) {
    auto [key, st] = ct_list_.pop_front();
    refresh(*st, now);
  }

  // Phase 2 (lines 20-24): serve the most-lagging workflow that can use the
  // slot. The head case is the common one — this is exactly where the
  // Double Skip List earns its O(1) head deletion; the forward walk covers
  // workflows that are temporarily unassignable (e.g. all jobs waiting on
  // predecessors), keeping the scheduler work-conserving.
  WfState* chosen = nullptr;
  bool chosen_is_head = true;
  pri_list_.for_each([&](const PriKey&, WfState* st) {
    if (can_use(st->id)) {
      chosen = st;
      return false;
    }
    chosen_is_head = false;
    return true;
  });
  if (!chosen) return kNone;

  if (chosen_is_head) {
    pri_list_.pop_front();  // O(1): the paper's common case
  } else {
    pri_list_.erase({chosen->pri_key, chosen->id});
  }
  chosen->tracker.count_scheduled();  // rho+1 <=> p-1
  chosen->pri_key = -chosen->tracker.lag();
  pri_list_.insert({chosen->pri_key, chosen->id}, chosen);
  return chosen->id;
}

void DslQueue::top(std::size_t k, std::vector<QueueEntry>& out) const {
  // Walk the priority list head: O(k), never repositions anything.
  pri_list_.for_each([&](const PriKey&, WfState* const& st) {
    if (out.size() >= k) return false;
    out.push_back(QueueEntry{st->id, st->tracker.lag(),
                             st->tracker.current_requirement(),
                             st->tracker.rho()});
    return true;
  });
}

void DslQueue::on_progress_lost(std::uint32_t id, std::uint64_t count) {
  const auto it = states_.find(id);
  if (it == states_.end()) return;
  WfState& st = *it->second;
  pri_list_.erase({st.pri_key, st.id});
  st.tracker.count_lost(count);  // rho-n <=> p+n
  st.pri_key = -st.tracker.lag();
  pri_list_.insert({st.pri_key, st.id}, &st);
}

}  // namespace woha::core

#include "core/queue_dsl.hpp"

#include <stdexcept>

namespace woha::core {

// SkipList::insert returns false on a duplicate key *without inserting*, so
// an unchecked call would silently drop the workflow from one of the lists —
// it would simply never be scheduled again. Every internal reposition goes
// through these guards: a failure means the cached ct_key/pri_key went out
// of sync with the list, which is a corruption bug, never a recoverable
// condition.
void DslQueue::checked_insert(SkipList<CtKey, WfState*>& list, const CtKey& key,
                              WfState* st, const char* what) {
  if (!list.insert(key, st)) throw std::logic_error(what);
}

void DslQueue::insert(std::uint32_t id, ProgressTracker tracker) {
  if (states_.count(id)) throw std::invalid_argument("DslQueue: duplicate id");
  auto st = std::make_unique<WfState>(
      WfState{id, std::move(tracker), 0, 0});
  st->ct_key = st->tracker.next_change_time();
  st->pri_key = -st->tracker.lag();
  checked_insert(ct_list_, {st->ct_key, id}, st.get(),
                 "DslQueue: duplicate ct key on insert");
  checked_insert(pri_list_, {st->pri_key, id}, st.get(),
                 "DslQueue: duplicate pri key on insert");
  states_.emplace(id, std::move(st));
}

void DslQueue::remove(std::uint32_t id) {
  const auto it = states_.find(id);
  if (it == states_.end()) return;
  ct_list_.erase({it->second->ct_key, id});
  pri_list_.erase({it->second->pri_key, id});
  states_.erase(it);
}

void DslQueue::refresh(WfState& st, SimTime now) {
  st.tracker.advance_to(now);
  if (!pri_list_.erase({st.pri_key, st.id})) {
    throw std::logic_error("DslQueue: stale pri key on refresh");
  }
  st.pri_key = -st.tracker.lag();
  checked_insert(pri_list_, {st.pri_key, st.id}, &st,
                 "DslQueue: duplicate pri key on refresh");
  st.ct_key = st.tracker.next_change_time();
  checked_insert(ct_list_, {st.ct_key, st.id}, &st,
                 "DslQueue: duplicate ct key on refresh");
}

std::uint32_t DslQueue::assign(SimTime now,
                               const std::function<bool(std::uint32_t)>& can_use) {
  // Phase 1 (Algorithm 2, lines 4-19): workflows whose next requirement
  // change has fired leave the ct head (O(1) pop), get a fresh priority,
  // and re-enter both lists.
  while (!ct_list_.empty() && ct_list_.front().first.first <= now) {
    auto [key, st] = ct_list_.pop_front();
    refresh(*st, now);
  }

  // Phase 2 (lines 20-24): serve the most-lagging workflow that can use the
  // slot. The head case is the common one — this is exactly where the
  // Double Skip List earns its O(1) head deletion; the forward walk covers
  // workflows that are temporarily unassignable (e.g. all jobs waiting on
  // predecessors), keeping the scheduler work-conserving.
  WfState* chosen = nullptr;
  bool chosen_is_head = true;
  pri_list_.for_each([&](const PriKey&, WfState* st) {
    if (can_use(st->id)) {
      chosen = st;
      return false;
    }
    chosen_is_head = false;
    return true;
  });
  if (!chosen) return kNone;

  if (chosen_is_head) {
    pri_list_.pop_front();  // O(1): the paper's common case
  } else if (!pri_list_.erase({chosen->pri_key, chosen->id})) {
    throw std::logic_error("DslQueue: stale pri key on assignment");
  }
  chosen->tracker.count_scheduled();  // rho+1 <=> p-1
  chosen->pri_key = -chosen->tracker.lag();
  checked_insert(pri_list_, {chosen->pri_key, chosen->id}, chosen,
                 "DslQueue: duplicate pri key on assignment");
  return chosen->id;
}

void DslQueue::top(std::size_t k, std::vector<QueueEntry>& out) const {
  // Walk the priority list head: O(k), never repositions anything.
  pri_list_.for_each([&](const PriKey&, WfState* const& st) {
    if (out.size() >= k) return false;
    out.push_back(QueueEntry{st->id, st->tracker.lag(),
                             st->tracker.current_requirement(),
                             st->tracker.rho()});
    return true;
  });
}

void DslQueue::on_progress_lost(std::uint32_t id, std::uint64_t count) {
  const auto it = states_.find(id);
  if (it == states_.end()) return;
  WfState& st = *it->second;
  if (!pri_list_.erase({st.pri_key, st.id})) {
    throw std::logic_error("DslQueue: stale pri key on progress loss");
  }
  st.tracker.count_lost(count);  // rho-n <=> p+n
  st.pri_key = -st.tracker.lag();
  checked_insert(pri_list_, {st.pri_key, st.id}, &st,
                 "DslQueue: duplicate pri key on progress loss");
}

}  // namespace woha::core

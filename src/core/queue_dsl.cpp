#include "core/queue_dsl.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

namespace woha::core {

constexpr DslQueue::PriKey DslQueue::kWalkFromHead;
constexpr DslQueue::PriKey DslQueue::kWalkNothing;

// SkipList::insert returns false on a duplicate key *without inserting*, so
// an unchecked call would silently drop the workflow from one of the lists —
// it would simply never be scheduled again. Every internal reposition goes
// through these guards: a failure means the cached ct_key/pri_key went out
// of sync with the list, which is a corruption bug, never a recoverable
// condition.
void DslQueue::checked_insert(SkipList<CtKey, std::uint32_t>& list,
                              const CtKey& key, std::uint32_t slot,
                              const char* what) {
  if (!list.insert(key, slot)) throw std::logic_error(what);
}

void DslQueue::note_moved(std::uint32_t slot, const PriKey& key) {
  for (std::size_t d = 0; d < WfStateArena::kDomains; ++d) {
    if (arena_.stamp(d, slot) != epoch_[d] && key < resume_[d]) {
      resume_[d] = key;
    }
  }
}

void DslQueue::insert(std::uint32_t id, ProgressTracker tracker) {
  if (arena_.slot_of(id) != WfStateArena::kNilSlot) {
    throw std::invalid_argument("DslQueue: duplicate id");
  }
  const std::uint32_t slot = arena_.allocate(id, std::move(tracker));
  const ProgressTracker& t = arena_.tracker(slot);
  arena_.ct_key(slot) = t.next_change_time();
  arena_.pri_key(slot) = -t.lag();
  checked_insert(ct_list_, {arena_.ct_key(slot), id}, slot,
                 "DslQueue: duplicate ct key on insert");
  checked_insert(pri_list_, {arena_.pri_key(slot), id}, slot,
                 "DslQueue: duplicate pri key on insert");
  // A fresh tracker's first requirement step may already have fired, so the
  // memoized "clean at ct_clean_now_" claim no longer holds.
  ct_dirty_ = true;
  note_moved(slot, {arena_.pri_key(slot), id});
}

void DslQueue::remove(std::uint32_t id) {
  const std::uint32_t slot = arena_.slot_of(id);
  if (slot == WfStateArena::kNilSlot) return;
  ct_list_.erase({arena_.ct_key(slot), id});
  pri_list_.erase({arena_.pri_key(slot), id});
  // Resume keys may now point at the erased key; for_each_from treats them
  // as lower bounds, so no fixup is needed. Stamps die with the slot
  // (allocate() clears them on reuse).
  arena_.release(slot);
}

void DslQueue::refresh(std::uint32_t slot, SimTime now) {
  ProgressTracker& t = arena_.tracker(slot);
  const std::uint32_t id = arena_.id(slot);
  t.advance_to(now);
  if (!pri_list_.erase({arena_.pri_key(slot), id})) {
    throw std::logic_error("DslQueue: stale pri key on refresh");
  }
  arena_.pri_key(slot) = -t.lag();
  checked_insert(pri_list_, {arena_.pri_key(slot), id}, slot,
                 "DslQueue: duplicate pri key on refresh");
  arena_.ct_key(slot) = t.next_change_time();
  checked_insert(ct_list_, {arena_.ct_key(slot), id}, slot,
                 "DslQueue: duplicate ct key on refresh");
  // A refresh can only *raise* priority (lag grows as the requirement
  // steps), so an unstamped workflow may now precede a resume key.
  note_moved(slot, {arena_.pri_key(slot), id});
}

void DslQueue::refresh_fired(SimTime now) {
  // Phase 1 (Algorithm 2, lines 4-19): workflows whose next requirement
  // change has fired leave the ct head (O(1) pop), get a fresh priority,
  // and re-enter both lists. Once this ran for an instant, re-running it at
  // the same instant cannot move anything (next_change_time is strictly in
  // the future after a refresh) unless an insert added a workflow whose
  // first step already fired — so the (ct_clean_now_, ct_dirty_) memo skips
  // even the head peek on the overwhelmingly common repeat-consult case.
  if (!ct_dirty_ && ct_clean_now_ == now) return;
  while (!ct_list_.empty() && ct_list_.front().first.first <= now) {
    const auto [key, slot] = ct_list_.pop_front();
    refresh(slot, now);
  }
  ct_clean_now_ = now;
  ct_dirty_ = false;
}

std::uint32_t DslQueue::commit_winner(std::uint32_t slot, const PriKey& old_key) {
  ProgressTracker& t = arena_.tracker(slot);
  const std::uint32_t id = arena_.id(slot);
  t.count_scheduled();  // rho+1 <=> p-1
  arena_.pri_key(slot) = -t.lag();
  checked_insert(pri_list_, {arena_.pri_key(slot), id}, slot,
                 "DslQueue: duplicate pri key on assignment");
  // The winner's key strictly grew ((old, id) -> (old+1, id) at minimum), so
  // for stamp purposes it only moved away from the resume keys; but keep the
  // invariant maintenance in one place in case a custom F ever steps here.
  note_moved(slot, {arena_.pri_key(slot), id});
  return id;
}

std::uint32_t DslQueue::assign(SimTime now,
                               const std::function<bool(std::uint32_t)>& can_use) {
  refresh_fired(now);

  // Phase 2 (lines 20-24): serve the most-lagging workflow that can use the
  // slot. The head case is the common one — this is exactly where the
  // Double Skip List earns its O(1) head deletion; the forward walk covers
  // workflows that are temporarily unassignable (e.g. all jobs waiting on
  // predecessors), keeping the scheduler work-conserving.
  //
  // The sequential entry point stays memo-free: it probes every workflow
  // from the head, so arbitrary (even impure) can_use callables keep their
  // historical semantics. Only assign_batch consults the rejection memo.
  std::uint32_t chosen = WfStateArena::kNilSlot;
  PriKey chosen_key{};
  bool chosen_is_head = true;
  pri_list_.for_each([&](const PriKey& key, const std::uint32_t& slot) {
    if (can_use(arena_.id(slot))) {
      chosen = slot;
      chosen_key = key;
      return false;
    }
    chosen_is_head = false;
    return true;
  });
  if (chosen == WfStateArena::kNilSlot) return kNone;

  if (chosen_is_head) {
    pri_list_.pop_front();  // O(1): the paper's common case
  } else if (!pri_list_.erase(chosen_key)) {
    throw std::logic_error("DslQueue: stale pri key on assignment");
  }
  return commit_winner(chosen, chosen_key);
}

std::uint32_t DslQueue::assign_batch(
    SimTime now, std::size_t domain, std::uint32_t k,
    const std::function<bool(std::uint32_t)>& can_use,
    const std::function<void(std::uint32_t)>& on_assign) {
  if (k == 0) return 0;
  refresh_fired(now);

  const std::size_t d = domain;
  std::uint32_t picks = 0;
  while (picks < k) {
    // Resume the priority walk at the first key a consult in this domain
    // has not yet settled: everything before resume_[d] is either stamped
    // rejected (skipped below) or was repositioned — and repositions pull
    // resume_[d] back (note_moved), so no unprobed workflow is ever jumped.
    std::uint32_t chosen = WfStateArena::kNilSlot;
    PriKey chosen_key{};
    pri_list_.for_each_from(resume_[d], [&](const PriKey& key,
                                            const std::uint32_t& slot) {
      if (arena_.stamp(d, slot) == epoch_[d]) return true;  // memoized "no"
      if (can_use(arena_.id(slot))) {
        chosen = slot;
        chosen_key = key;
        return false;
      }
      arena_.stamp(d, slot) = epoch_[d];
      return true;
    });
    if (chosen == WfStateArena::kNilSlot) {
      // Every queued workflow is now stamped in this domain: future
      // consults may skip the walk outright until a flip is announced.
      resume_[d] = kWalkNothing;
      break;
    }

    if (!(pri_list_.front().first < chosen_key)) {
      pri_list_.pop_front();  // winner is the global head: O(1)
    } else if (!pri_list_.erase(chosen_key)) {
      throw std::logic_error("DslQueue: stale pri key on assignment");
    }
    // Sequential assign() rescans from the head, where it would re-skip the
    // same rejected prefix and re-probe the winner first (its bumped key can
    // still precede the old successor on lag ties). Resuming at the winner's
    // *old* key reproduces exactly that: the bumped key (old+1, id) and the
    // old successor both sort >= it.
    resume_[d] = chosen_key;
    const std::uint32_t id = commit_winner(chosen, chosen_key);
    ++picks;
    on_assign(id);
  }
  return picks;
}

void DslQueue::note_can_use_changed(std::uint32_t id) {
  const std::uint32_t slot = arena_.slot_of(id);
  if (slot == WfStateArena::kNilSlot) return;
  for (std::size_t d = 0; d < WfStateArena::kDomains; ++d) {
    arena_.stamp(d, slot) = 0;  // forget any memoized rejection
  }
  note_moved(slot, {arena_.pri_key(slot), id});
}

void DslQueue::invalidate_probe_memo() {
  for (std::size_t d = 0; d < WfStateArena::kDomains; ++d) {
    ++epoch_[d];  // all existing stamps become dead at once
    resume_[d] = kWalkFromHead;
  }
}

void DslQueue::top(std::size_t k, std::vector<QueueEntry>& out) const {
  // Walk the priority list head: O(k), never repositions anything.
  pri_list_.for_each([&](const PriKey&, const std::uint32_t& slot) {
    if (out.size() >= k) return false;
    const ProgressTracker& t = arena_.tracker(slot);
    out.push_back(QueueEntry{arena_.id(slot), t.lag(), t.current_requirement(),
                             t.rho()});
    return true;
  });
}

void DslQueue::check_structure() const {
  arena_.check("DslQueue");
  if (ct_list_.size() != arena_.size() || pri_list_.size() != arena_.size()) {
    throw std::logic_error(
        "DslQueue::check_structure: index sizes diverged (states=" +
        std::to_string(arena_.size()) + " ct=" + std::to_string(ct_list_.size()) +
        " pri=" + std::to_string(pri_list_.size()) + ")");
  }
  // Walk both skip lists: keys strictly ascending, cached keys in sync with
  // the trackers, every entry resolving into the arena. Collecting the id
  // sequences (instead of iterating the arena's unordered id map) keeps this
  // check itself deterministic; equal sorted id sets plus equal sizes prove
  // both lists cover exactly the queued workflows.
  std::vector<std::uint32_t> ct_ids, pri_ids;
  ct_ids.reserve(arena_.size());
  pri_ids.reserve(arena_.size());
  const CtKey* prev_ct = nullptr;
  ct_list_.for_each([&](const CtKey& key, const std::uint32_t& slot) {
    const std::uint32_t id = arena_.id(slot);
    if (prev_ct != nullptr && !(*prev_ct < key)) {
      throw std::logic_error(
          "DslQueue::check_structure: ct list keys not strictly ascending at id " +
          std::to_string(id));
    }
    prev_ct = &key;
    if (key.first != arena_.ct_key(slot) || key.second != id) {
      throw std::logic_error(
          "DslQueue::check_structure: ct node key disagrees with cached "
          "ct_key for id " + std::to_string(id));
    }
    if (arena_.ct_key(slot) != arena_.tracker(slot).next_change_time()) {
      throw std::logic_error(
          "DslQueue::check_structure: cached ct_key stale for id " +
          std::to_string(id) + " (cached=" + std::to_string(arena_.ct_key(slot)) +
          " tracker=" +
          std::to_string(arena_.tracker(slot).next_change_time()) + ")");
    }
    if (arena_.slot_of(id) != slot) {
      throw std::logic_error(
          "DslQueue::check_structure: ct entry not backed by states_ for id " +
          std::to_string(id));
    }
    ct_ids.push_back(id);
    return true;
  });
  const PriKey* prev_pri = nullptr;
  pri_list_.for_each([&](const PriKey& key, const std::uint32_t& slot) {
    const std::uint32_t id = arena_.id(slot);
    if (prev_pri != nullptr && !(*prev_pri < key)) {
      throw std::logic_error(
          "DslQueue::check_structure: priority list keys not strictly "
          "ascending at id " + std::to_string(id));
    }
    prev_pri = &key;
    if (key.first != arena_.pri_key(slot) || key.second != id) {
      throw std::logic_error(
          "DslQueue::check_structure: priority node key disagrees with "
          "cached pri_key for id " + std::to_string(id));
    }
    if (arena_.pri_key(slot) != -arena_.tracker(slot).lag()) {
      throw std::logic_error(
          "DslQueue::check_structure: cached pri_key stale for id " +
          std::to_string(id) + " (cached=" + std::to_string(arena_.pri_key(slot)) +
          " tracker=" + std::to_string(-arena_.tracker(slot).lag()) + ")");
    }
    if (arena_.slot_of(id) != slot) {
      throw std::logic_error(
          "DslQueue::check_structure: priority entry not backed by states_ "
          "for id " + std::to_string(id));
    }
    // Probe-memo invariant R: a workflow with no live rejection stamp in a
    // domain must sort at or after that domain's resume key, or a resumed
    // walk could jump an unprobed candidate.
    for (std::size_t dm = 0; dm < WfStateArena::kDomains; ++dm) {
      if (arena_.stamp(dm, slot) != epoch_[dm] && key < resume_[dm]) {
        throw std::logic_error(
            "DslQueue::check_structure: unprobed workflow precedes the "
            "domain-" + std::to_string(dm) + " resume key at id " +
            std::to_string(id));
      }
    }
    pri_ids.push_back(id);
    return true;
  });
  std::sort(ct_ids.begin(), ct_ids.end());
  std::sort(pri_ids.begin(), pri_ids.end());
  if (ct_ids != pri_ids ||
      std::adjacent_find(ct_ids.begin(), ct_ids.end()) != ct_ids.end()) {
    throw std::logic_error(
        "DslQueue::check_structure: ct and priority lists do not cover the "
        "same workflow set exactly once each");
  }
}

void DslQueue::on_progress_lost(std::uint32_t id, std::uint64_t count) {
  const std::uint32_t slot = arena_.slot_of(id);
  if (slot == WfStateArena::kNilSlot) return;
  ProgressTracker& t = arena_.tracker(slot);
  if (!pri_list_.erase({arena_.pri_key(slot), id})) {
    throw std::logic_error("DslQueue: stale pri key on progress loss");
  }
  t.count_lost(count);  // rho-n <=> p+n
  arena_.pri_key(slot) = -t.lag();
  checked_insert(pri_list_, {arena_.pri_key(slot), id}, slot,
                 "DslQueue: duplicate pri key on progress loss");
  // Lost tasks re-enter the pending pool: any memoized rejection may have
  // flipped, and the workflow's priority just rose.
  for (std::size_t d = 0; d < WfStateArena::kDomains; ++d) {
    arena_.stamp(d, slot) = 0;
  }
  note_moved(slot, {arena_.pri_key(slot), id});
}

}  // namespace woha::core

// A keyed cache of scheduling plans for recurrent workflow submissions.
//
// The paper's evaluation (Fig. 12, "with 3 recurrences") and any production
// Oozie-style coordinator resubmit the *same* DAG with the same estimates
// and the same relative deadline every period. Plan generation — a binary
// search over O(log cap) full Algorithm-1 simulations — is pure in those
// inputs, so recomputing it per instance is wasted client CPU. The cache
// keys on an FNV-1a fingerprint of everything plan generation reads:
//   * every job's task counts, durations, and prerequisite list (and name,
//     since history-based estimators key durations by job name),
//   * the workflow's relative deadline,
//   * the cluster slot total and the cap-policy knobs.
// Workflow *names* and absolute submit times are deliberately excluded:
// instance "daily-report-r7" must hit the entry "daily-report-r1" planted.
//
// Plans are immutable after generation (ProgressTracker reads them through
// a const pointer), so instances share one plan via shared_ptr — a cache
// hit costs one hash-map probe. Determinism: a hit returns a plan
// bit-identical to what recomputation would produce, so cached and
// uncached runs yield identical scheduling decisions (pinned by
// tests/core/plan_cache_test.cpp against the golden digests).
//
// Memory is bounded: an optional capacity evicts the least-recently-used
// entry (single-threaded access order, hence deterministic). An evicted
// fingerprint that recurs simply recomputes — a miss either way — so
// capacity changes the hit/miss split but never a scheduling decision.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <unordered_map>

#include "analysis/race_detector.hpp"
#include "core/job_priority.hpp"
#include "core/plan.hpp"
#include "core/resource_cap.hpp"

namespace woha::obs {
class Counter;
}  // namespace woha::obs

namespace woha::core {

/// Fingerprint of every plan-generation input. Two specs with equal
/// fingerprints produce equal plans under equal policy knobs.
[[nodiscard]] std::uint64_t plan_fingerprint(const wf::WorkflowSpec& spec,
                                             std::uint32_t total_slots,
                                             JobPriorityPolicy priority,
                                             CapPolicy policy,
                                             std::uint32_t fixed_cap,
                                             double deadline_factor);

class PlanCache {
 public:
  /// Maximum retained entries; 0 (the default) = unbounded. Shrinking below
  /// the current size evicts immediately, LRU-first.
  void set_capacity(std::size_t capacity);
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Look `key` up; on a miss, invoke `compute` and remember the result.
  /// The returned plan is shared and immutable. Hits (and prewarm claims)
  /// refresh the entry's recency.
  [[nodiscard]] std::shared_ptr<const SchedulingPlan> get_or_compute(
      std::uint64_t key, const std::function<SchedulingPlan()>& compute);

  /// Plant a precomputed plan (parallel prewarm). The entry is marked
  /// prewarmed: the first get_or_compute that claims it counts as a *miss*
  /// — the computation did happen, just earlier and off-thread — so the
  /// hit/miss tallies stay bit-identical to a serial, prewarm-free run.
  /// A null plan or an already-present key is ignored.
  void insert(std::uint64_t key, std::shared_ptr<const SchedulingPlan> plan);

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }
  [[nodiscard]] std::size_t size() const { return plans_.size(); }
  [[nodiscard]] bool contains(std::uint64_t key) const {
    return plans_.count(key) != 0;
  }
  void clear() {
    plans_.clear();
    lru_.clear();
  }

  /// Optional registry counters ("woha.plan_cache_hits"/"_misses"/
  /// "_evictions"); null detaches. Bumped alongside the local tallies.
  void bind_counters(obs::Counter* hits, obs::Counter* misses,
                     obs::Counter* evictions = nullptr) {
    hit_counter_ = hits;
    miss_counter_ = misses;
    eviction_counter_ = evictions;
  }

 private:
  struct Entry {
    std::shared_ptr<const SchedulingPlan> plan;
    std::list<std::uint64_t>::iterator lru;  ///< position in lru_ (MRU front)
    bool prewarmed = false;
  };

  void touch(Entry& entry);
  void evict_over_capacity();

  std::unordered_map<std::uint64_t, Entry> plans_;
  /// Keys in recency order, most recent first; Entry::lru points into this.
  std::list<std::uint64_t> lru_;
  std::size_t capacity_ = 0;  ///< 0 = unbounded
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  obs::Counter* hit_counter_ = nullptr;
  obs::Counter* miss_counter_ = nullptr;
  obs::Counter* eviction_counter_ = nullptr;
  /// Race-detector touchpoint instance: the cache is single-writer by
  /// contract (mutations happen on the scheduler thread; prewarm workers
  /// compute plans privately and insert() runs after the pool drains), and
  /// every mutation is annotated so a schedule that breaks that contract
  /// fails the interleaving sweep instead of corrupting the LRU list.
  std::uint64_t analysis_id_ = analysis::new_instance_id();
};

}  // namespace woha::core

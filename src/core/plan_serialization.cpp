#include "core/plan_serialization.hpp"

#include <stdexcept>

namespace woha::core {
namespace {

constexpr std::uint8_t kMagic0 = 'W';
constexpr std::uint8_t kMagic1 = 'P';
constexpr std::uint8_t kVersion = 1;

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

std::size_t varint_size(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& bytes) : bytes_(bytes) {}

  std::uint8_t byte() {
    if (pos_ >= bytes_.size()) throw std::invalid_argument("plan: truncated");
    return bytes_[pos_++];
  }

  std::uint64_t varint() {
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
      const std::uint8_t b = byte();
      if (shift >= 64) throw std::invalid_argument("plan: varint overflow");
      v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if (!(b & 0x80)) return v;
      shift += 7;
    }
  }

  [[nodiscard]] bool done() const { return pos_ == bytes_.size(); }

 private:
  const std::vector<std::uint8_t>& bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<std::uint8_t> serialize_plan(const SchedulingPlan& plan) {
  std::vector<std::uint8_t> out;
  out.reserve(serialized_plan_size(plan));
  out.push_back(kMagic0);
  out.push_back(kMagic1);
  out.push_back(kVersion);
  put_varint(out, plan.resource_cap);
  put_varint(out, static_cast<std::uint64_t>(plan.simulated_makespan));
  put_varint(out, plan.job_order.size());
  for (std::uint32_t j : plan.job_order) put_varint(out, j);
  put_varint(out, plan.num_steps());
  // Steps are chronological: ttd strictly decreasing, cumulative_req
  // strictly increasing — delta-code both (ttd deltas from the previous
  // step going down, req deltas going up).
  Duration prev_ttd = plan.simulated_makespan;
  std::uint64_t prev_req = 0;
  for (std::size_t i = 0; i < plan.num_steps(); ++i) {
    put_varint(out, static_cast<std::uint64_t>(prev_ttd - plan.step_ttd(i)));
    put_varint(out, plan.step_req(i) - prev_req);
    prev_ttd = plan.step_ttd(i);
    prev_req = plan.step_req(i);
  }
  return out;
}

std::size_t serialized_plan_size(const SchedulingPlan& plan) {
  std::size_t n = 3;
  n += varint_size(plan.resource_cap);
  n += varint_size(static_cast<std::uint64_t>(plan.simulated_makespan));
  n += varint_size(plan.job_order.size());
  for (std::uint32_t j : plan.job_order) n += varint_size(j);
  n += varint_size(plan.num_steps());
  Duration prev_ttd = plan.simulated_makespan;
  std::uint64_t prev_req = 0;
  for (std::size_t i = 0; i < plan.num_steps(); ++i) {
    n += varint_size(static_cast<std::uint64_t>(prev_ttd - plan.step_ttd(i)));
    n += varint_size(plan.step_req(i) - prev_req);
    prev_ttd = plan.step_ttd(i);
    prev_req = plan.step_req(i);
  }
  return n;
}

SchedulingPlan deserialize_plan(const std::vector<std::uint8_t>& bytes) {
  Reader r(bytes);
  if (r.byte() != kMagic0 || r.byte() != kMagic1) {
    throw std::invalid_argument("plan: bad magic");
  }
  if (r.byte() != kVersion) throw std::invalid_argument("plan: unsupported version");
  SchedulingPlan plan;
  plan.resource_cap = static_cast<std::uint32_t>(r.varint());
  plan.simulated_makespan = static_cast<Duration>(r.varint());
  const std::uint64_t njobs = r.varint();
  plan.job_order.reserve(njobs);
  for (std::uint64_t i = 0; i < njobs; ++i) {
    plan.job_order.push_back(static_cast<std::uint32_t>(r.varint()));
  }
  plan.job_rank.assign(njobs, 0);
  for (std::uint32_t pos = 0; pos < njobs; ++pos) {
    const std::uint32_t j = plan.job_order[pos];
    if (j >= njobs) throw std::invalid_argument("plan: job index out of range");
    plan.job_rank[j] = pos;
  }
  const std::uint64_t nsteps = r.varint();
  plan.reserve_steps(nsteps);
  Duration prev_ttd = plan.simulated_makespan;
  std::uint64_t prev_req = 0;
  for (std::uint64_t i = 0; i < nsteps; ++i) {
    const Duration ttd = prev_ttd - static_cast<Duration>(r.varint());
    const std::uint64_t req = prev_req + r.varint();
    if (ttd < 0) throw std::invalid_argument("plan: negative ttd");
    plan.append_step(ttd, req);
    prev_ttd = ttd;
    prev_req = req;
  }
  if (!r.done()) throw std::invalid_argument("plan: trailing bytes");
  return plan;
}

}  // namespace woha::core

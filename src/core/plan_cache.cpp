#include "core/plan_cache.hpp"

#include <bit>

#include "obs/metrics_registry.hpp"

namespace woha::core {

namespace {

// FNV-1a, matching the digest idiom used by the determinism tests.
class Fnv1a {
 public:
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xffu;
      h_ *= 1099511628211ull;
    }
  }
  void mix(double v) { mix(std::bit_cast<std::uint64_t>(v)); }
  void mix(const std::string& s) {
    mix(static_cast<std::uint64_t>(s.size()));
    for (const char c : s) {
      h_ ^= static_cast<unsigned char>(c);
      h_ *= 1099511628211ull;
    }
  }
  [[nodiscard]] std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 1469598103934665603ull;
};

}  // namespace

std::uint64_t plan_fingerprint(const wf::WorkflowSpec& spec,
                               std::uint32_t total_slots,
                               JobPriorityPolicy priority, CapPolicy policy,
                               std::uint32_t fixed_cap, double deadline_factor) {
  Fnv1a h;
  h.mix(static_cast<std::uint64_t>(total_slots));
  h.mix(static_cast<std::uint64_t>(priority));
  h.mix(static_cast<std::uint64_t>(policy));
  h.mix(static_cast<std::uint64_t>(fixed_cap));
  h.mix(deadline_factor);
  h.mix(static_cast<std::uint64_t>(spec.relative_deadline));
  h.mix(static_cast<std::uint64_t>(spec.jobs.size()));
  for (const wf::JobSpec& j : spec.jobs) {
    // Job names feed history-based estimators, so two topologically equal
    // workflows with renamed jobs may legitimately plan differently later —
    // keep them apart.
    h.mix(j.name);
    h.mix(static_cast<std::uint64_t>(j.num_maps));
    h.mix(static_cast<std::uint64_t>(j.num_reduces));
    h.mix(static_cast<std::uint64_t>(j.map_duration));
    h.mix(static_cast<std::uint64_t>(j.reduce_duration));
    h.mix(static_cast<std::uint64_t>(j.prerequisites.size()));
    for (const std::uint32_t p : j.prerequisites) {
      h.mix(static_cast<std::uint64_t>(p));
    }
  }
  return h.value();
}

void PlanCache::set_capacity(std::size_t capacity) {
  capacity_ = capacity;
  evict_over_capacity();
}

void PlanCache::touch(Entry& entry) {
  if (entry.lru != lru_.begin()) lru_.splice(lru_.begin(), lru_, entry.lru);
}

void PlanCache::evict_over_capacity() {
  if (capacity_ == 0) return;
  while (plans_.size() > capacity_) {
    plans_.erase(lru_.back());
    lru_.pop_back();
    ++evictions_;
    if (eviction_counter_) eviction_counter_->add();
  }
}

std::shared_ptr<const SchedulingPlan> PlanCache::get_or_compute(
    std::uint64_t key, const std::function<SchedulingPlan()>& compute) {
  analysis::touch_write("plan_cache", analysis_id_, "PlanCache::get_or_compute");
  const auto it = plans_.find(key);
  if (it != plans_.end()) {
    touch(it->second);
    if (it->second.prewarmed) {
      // First claim of a prewarmed entry: without the prewarm this lookup
      // would have computed, so account it as the miss it replaces.
      it->second.prewarmed = false;
      ++misses_;
      if (miss_counter_) miss_counter_->add();
      return it->second.plan;
    }
    ++hits_;
    if (hit_counter_) hit_counter_->add();
    return it->second.plan;
  }
  ++misses_;
  if (miss_counter_) miss_counter_->add();
  auto plan = std::make_shared<const SchedulingPlan>(compute());
  lru_.push_front(key);
  plans_.emplace(key, Entry{plan, lru_.begin(), /*prewarmed=*/false});
  evict_over_capacity();
  return plan;
}

void PlanCache::insert(std::uint64_t key,
                       std::shared_ptr<const SchedulingPlan> plan) {
  analysis::touch_write("plan_cache", analysis_id_, "PlanCache::insert");
  if (!plan) return;
  if (plans_.count(key)) return;
  lru_.push_front(key);
  plans_.emplace(key, Entry{std::move(plan), lru_.begin(), /*prewarmed=*/true});
  evict_over_capacity();
}

}  // namespace woha::core

#include "core/plan.hpp"

#include <algorithm>
#include <map>
#include <queue>
#include <set>
#include <stdexcept>

namespace woha::core {

std::uint64_t SchedulingPlan::required_at(Duration ttd) const {
  // Steps are sorted by strictly decreasing ttd. A step with step_ttd >= ttd
  // lies at or before the query instant, so its requirement applies.
  // Binary search for the first step with step_ttd < ttd; everything before
  // it applies.
  const auto it = std::lower_bound(
      step_ttd_.begin(), step_ttd_.end(), ttd,
      [](Duration step, Duration query) { return step >= query; });
  if (it == step_ttd_.begin()) return 0;
  return step_req_[static_cast<std::size_t>(it - step_ttd_.begin()) - 1];
}

namespace {

/// Remaining per-job counters during the client-side simulation.
struct SimJob {
  std::uint32_t maps_left;
  std::uint32_t reduces_left;
  std::uint32_t unfinished_prereqs;
  /// Max completion time among prerequisites whose final wave has been
  /// scheduled. A dependent activates at this instant once every
  /// prerequisite has committed — NOT at the completion time of the
  /// last-*scheduled* prerequisite, which can finish earlier than one
  /// scheduled before it (shorter reduce phase).
  SimTime ready_time = 0;
};

enum class EventType : std::uint8_t { kFree, kAdd };

struct Event {
  SimTime time;
  std::uint64_t seq;  // FIFO tie-break for determinism
  EventType type;
  std::uint32_t value;  // slot count (kFree) or job index (kAdd)
  bool operator>(const Event& o) const {
    return time != o.time ? time > o.time : seq > o.seq;
  }
};

}  // namespace

SchedulingPlan generate_plan(const wf::WorkflowSpec& spec,
                             std::uint32_t resource_cap,
                             const std::vector<std::uint32_t>& job_rank) {
  if (resource_cap == 0) throw std::invalid_argument("generate_plan: cap must be >= 1");
  if (job_rank.size() != spec.jobs.size()) {
    throw std::invalid_argument("generate_plan: job_rank size mismatch");
  }
  wf::validate(spec);

  const std::uint32_t njobs = static_cast<std::uint32_t>(spec.jobs.size());
  std::vector<SimJob> jobs(njobs);
  for (std::uint32_t j = 0; j < njobs; ++j) {
    jobs[j] = SimJob{spec.jobs[j].num_maps, spec.jobs[j].num_reduces,
                     static_cast<std::uint32_t>(spec.jobs[j].prerequisites.size())};
  }
  const auto dependents = wf::dependents(spec);

  // Active job queue A ordered by rank (rank 0 = highest priority).
  std::set<std::pair<std::uint32_t, std::uint32_t>> active;  // (rank, job)
  for (std::uint32_t j = 0; j < njobs; ++j) {
    if (jobs[j].unfinished_prereqs == 0) active.insert({job_rank[j], j});
  }

  std::priority_queue<Event, std::vector<Event>, std::greater<>> events;
  std::uint64_t seq = 0;
  events.push(Event{0, seq++, EventType::kFree, resource_cap});

  // Raw schedule trace: (time, tasks scheduled at that instant).
  std::map<SimTime, std::uint64_t> schedule_counts;

  std::uint32_t free_slots = 0;
  SimTime t = 0;

  while (!events.empty()) {
    // Drain all events at the head timestamp before making decisions, so
    // FREE and ADD events at the same instant are visible together.
    t = events.top().time;
    while (!events.empty() && events.top().time == t) {
      const Event e = events.top();
      events.pop();
      if (e.type == EventType::kFree) {
        free_slots += e.value;
      } else {
        active.insert({job_rank[e.value], e.value});
      }
    }

    // Greedily hand slots to the highest-priority active jobs.
    while (free_slots > 0 && !active.empty()) {
      const auto it = active.begin();
      const std::uint32_t j = it->second;
      SimJob& job = jobs[j];
      if (job.maps_left > 0) {
        const std::uint32_t wave = std::min(job.maps_left, free_slots);
        schedule_counts[t] += wave;
        free_slots -= wave;
        job.maps_left -= wave;
        const SimTime done = t + spec.jobs[j].map_duration;
        events.push(Event{done, seq++, EventType::kFree, wave});
        if (job.maps_left == 0) {
          // Map phase fully scheduled; the job re-enters A when the last
          // map wave completes (reduce phase becomes available then).
          active.erase(it);
          if (job.reduces_left > 0) {
            events.push(Event{done, seq++, EventType::kAdd, j});
          } else {
            // Map-only job: completes with the map phase.
            for (std::uint32_t d : dependents[j]) {
              jobs[d].ready_time = std::max(jobs[d].ready_time, done);
              if (--jobs[d].unfinished_prereqs == 0) {
                events.push(Event{jobs[d].ready_time, seq++, EventType::kAdd, d});
              }
            }
          }
        }
      } else {
        const std::uint32_t wave = std::min(job.reduces_left, free_slots);
        schedule_counts[t] += wave;
        free_slots -= wave;
        job.reduces_left -= wave;
        const SimTime done = t + spec.jobs[j].reduce_duration;
        events.push(Event{done, seq++, EventType::kFree, wave});
        if (job.reduces_left == 0) {
          active.erase(it);
          for (std::uint32_t d : dependents[j]) {
            jobs[d].ready_time = std::max(jobs[d].ready_time, done);
            if (--jobs[d].unfinished_prereqs == 0) {
              events.push(Event{jobs[d].ready_time, seq++, EventType::kAdd, d});
            }
          }
        }
      }
    }
  }

  SchedulingPlan plan;
  plan.resource_cap = resource_cap;
  plan.simulated_makespan = t;  // time of the last processed event
  plan.job_rank = job_rank;
  plan.job_order.resize(njobs);
  for (std::uint32_t j = 0; j < njobs; ++j) plan.job_order[job_rank[j]] = j;

  // Convert occurrence times to ttd (Algorithm 1 lines 37-39) and cumulative
  // counts; schedule_counts iterates in ascending time == descending ttd.
  std::uint64_t cumulative = 0;
  plan.reserve_steps(schedule_counts.size());
  for (const auto& [when, count] : schedule_counts) {
    cumulative += count;
    plan.append_step(plan.simulated_makespan - when, cumulative);
  }
  return plan;
}

}  // namespace woha::core

#include "core/woha_scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <stdexcept>
#include <unordered_set>
#include <utility>
#include <variant>

#include "analysis/race_detector.hpp"
#include "common/log.hpp"
#include "common/thread_pool.hpp"
#include "obs/event_bus.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/scoped_timer.hpp"

namespace woha::core {

WohaScheduler::WohaScheduler(WohaConfig config)
    : config_(config), queue_(make_queue(config.queue)) {
  plan_cache_.set_capacity(config.plan_cache_capacity);
}

void WohaScheduler::observe(obs::EventBus* bus, obs::MetricsRegistry* registry) {
  WorkflowScheduler::observe(bus, registry);
  assign_ns_ = registry ? &registry->histogram(
                              "woha.queue_assign_ns",
                              obs::exponential_buckets(100.0, 4.0, 12))
                        : nullptr;
  plan_ns_ = registry ? &registry->histogram(
                            "woha.plan_generation_ns",
                            obs::exponential_buckets(1000.0, 4.0, 14))
                      : nullptr;
  plan_cache_.bind_counters(
      registry ? &registry->counter("woha.plan_cache_hits") : nullptr,
      registry ? &registry->counter("woha.plan_cache_misses") : nullptr,
      registry ? &registry->counter("woha.plan_cache_evictions") : nullptr);
}

std::string WohaScheduler::name() const {
  return std::string("WOHA-") + core::to_string(config_.job_priority);
}

void WohaScheduler::on_pending_submissions(
    const std::vector<wf::WorkflowSpec>& specs) {
  const std::uint32_t total_slots =
      config_.cluster_slots_override ? config_.cluster_slots_override : cluster_slots_;
  // Prewarm only pays off with >= 2 distinct plans; an estimator makes
  // planning inputs depend on submission order, so it must stay serial.
  if (!config_.plan_cache || config_.plan_jobs == 1 || config_.estimator ||
      total_slots == 0 || specs.size() < 2) {
    return;
  }
  std::vector<std::pair<std::uint64_t, const wf::WorkflowSpec*>> unique;
  std::unordered_set<std::uint64_t> seen;
  for (const wf::WorkflowSpec& spec : specs) {
    const std::uint64_t key =
        plan_fingerprint(spec, total_slots, config_.job_priority,
                         config_.cap_policy, config_.fixed_cap,
                         config_.plan_deadline_factor);
    if (seen.insert(key).second) unique.emplace_back(key, &spec);
  }
  if (unique.size() < 2) return;

  // Plan generation is pure in (spec, slots, knobs): every worker reads
  // only immutable inputs and writes its own slot, so no synchronization
  // beyond wait_idle is needed. The bulk wall time lands in the same
  // plan-generation histogram the serial path feeds.
  std::vector<std::shared_ptr<const SchedulingPlan>> plans(unique.size());
  std::vector<std::exception_ptr> errors(unique.size());
  // Touchpoint instances for the per-plan output slots: workers write their
  // own slot, the install loop reads them only after wait_idle's HB edge.
  const std::uint64_t slot_base = analysis::new_instance_block(unique.size());
  {
    const obs::ScopedTimer plan_timer(plan_ns_);
    ThreadPool pool(ThreadPool::resolve(config_.plan_jobs));
    for (std::size_t i = 0; i < unique.size(); ++i) {
      pool.submit([this, &plans, &errors, &unique, i, total_slots, slot_base]() {
        try {
          analysis::touch_write("prewarm.plan", slot_base + i,
                                "WohaScheduler prewarm worker");
          const wf::WorkflowSpec& spec = *unique[i].second;
          const auto rank = job_priority_ranks(spec, config_.job_priority);
          plans[i] = std::make_shared<const SchedulingPlan>(plan_for_submission(
              spec, rank, total_slots, config_.cap_policy, config_.fixed_cap,
              config_.plan_deadline_factor));
        } catch (...) {
          errors[i] = std::current_exception();
        }
      });
    }
    pool.wait_idle();
  }
  // Install in submission order. A failed computation plants nothing: the
  // corresponding on_workflow_submitted recomputes serially and surfaces
  // the same exception at the same point a serial run would.
  for (std::size_t i = 0; i < unique.size(); ++i) {
    analysis::touch_read("prewarm.plan", slot_base + i,
                         "WohaScheduler prewarm install");
    if (!errors[i]) plan_cache_.insert(unique[i].first, std::move(plans[i]));
  }
  WOHA_LOG(LogLevel::kInfo, "woha")
      << "prewarmed " << plan_cache_.size() << " plan(s) for " << specs.size()
      << " pending workflow(s) with " << ThreadPool::resolve(config_.plan_jobs)
      << " thread(s)";
}

void WohaScheduler::on_workflow_submitted(WorkflowId wf, SimTime now) {
  const hadoop::WorkflowRuntime& rt = tracker_->workflow(wf);

  // ---- Client-side work (Fig. 1 steps (c)-(d)) ----
  const std::uint32_t total_slots =
      config_.cluster_slots_override ? config_.cluster_slots_override : cluster_slots_;
  if (total_slots == 0) {
    throw std::logic_error("WohaScheduler: cluster slot count not set");
  }
  // The estimator supplies the durations the client plans with; when
  // absent, the configuration's values are trusted as-is.
  const wf::WorkflowSpec planning_spec =
      config_.estimator ? config_.estimator->estimated_spec(rt.spec()) : rt.spec();
  const auto compute = [&]() {
    const auto rank = job_priority_ranks(planning_spec, config_.job_priority);
    return plan_for_submission(planning_spec, rank, total_slots, config_.cap_policy,
                               config_.fixed_cap, config_.plan_deadline_factor);
  };
  // Recurrent instances fingerprint equal (the estimator's output is part
  // of the fingerprint, so a learning estimator naturally splits the key).
  std::shared_ptr<const SchedulingPlan> plan;
  {
    const obs::ScopedTimer plan_timer(plan_ns_);
    if (config_.plan_cache) {
      plan = plan_cache_.get_or_compute(
          plan_fingerprint(planning_spec, total_slots, config_.job_priority,
                           config_.cap_policy, config_.fixed_cap,
                           config_.plan_deadline_factor),
          compute);
    } else {
      plan = std::make_shared<const SchedulingPlan>(compute());
    }
  }
  WOHA_LOG(LogLevel::kInfo, "woha")
      << "plan for workflow " << wf.value() << ": cap=" << plan->resource_cap
      << " makespan=" << plan->simulated_makespan << " steps=" << plan->num_steps();
  if (bus_ && bus_->active()) {
    bus_->publish(now, obs::PlanGenerated{wf.value(), plan->resource_cap,
                                          plan->simulated_makespan,
                                          plan->num_steps(),
                                          plan->total_tasks()});
  }

  // ---- Master-side registration ----
  WorkflowState st;
  st.plan = std::move(plan);
  ProgressTracker progress(st.plan.get(), rt.deadline());
  states_.emplace(wf.value(), std::move(st));
  queue_->insert(wf.value(), std::move(progress));
}

void WohaScheduler::on_job_activated(hadoop::JobRef job, SimTime now) {
  (void)now;
  WorkflowState& st = states_.at(job.workflow);
  const auto& rank = st.plan->job_rank;
  // Keep active_jobs sorted by ascending rank (rank 0 served first).
  const auto pos = std::lower_bound(
      st.active_jobs.begin(), st.active_jobs.end(), job.job,
      [&rank](std::uint32_t a, std::uint32_t b) { return rank[a] < rank[b]; });
  st.active_jobs.insert(pos, job.job);
  // A job with pending tasks just became schedulable: any memoized "this
  // workflow has nothing assignable" probe answer may have flipped.
  queue_->note_can_use_changed(job.workflow);
}

void WohaScheduler::on_task_finished(hadoop::JobRef job, SlotType t, SimTime now) {
  (void)now;
  (void)t;
  // Two false -> true probe flips can hide behind this callback. A finished
  // map can complete a job's map phase, which is what gates its pending
  // reduces (Job::has_available(kReduce) requires map_phase_done). And the
  // engine reports *failed* attempts through the same hook after requeueing
  // the task (fail_task), which restores availability of the task's own
  // type. A successful reduce flips nothing, but the callback cannot tell
  // success from retry, and a spurious note only costs one re-probe.
  queue_->note_can_use_changed(job.workflow);
}

void WohaScheduler::on_job_completed(hadoop::JobRef job, SimTime now) {
  (void)now;
  WorkflowState& st = states_.at(job.workflow);
  std::erase(st.active_jobs, job.job);
}

void WohaScheduler::on_workflow_completed(WorkflowId wf, SimTime now) {
  (void)now;
  queue_->remove(wf.value());
  // Keep the plan alive (tests inspect it); drop only the job list.
  states_.at(wf.value()).active_jobs.clear();
}

void WohaScheduler::on_tasks_lost(hadoop::JobRef job, SlotType t,
                                  std::uint32_t count, SimTime now) {
  (void)t;
  // rho counted these tasks as progress; they will run again, so the
  // workflow's lag must grow back. No-op for already-dequeued workflows.
  queue_->on_progress_lost(job.workflow, count);
  if (bus_ && bus_->active()) {
    bus_->publish(now, obs::QueueReordered{job.workflow, count});
  }
}

std::optional<std::uint32_t> WohaScheduler::pick_job(
    std::uint32_t wf, const hadoop::SlotOffer& slot) const {
  // O(1) fast-fail: the per-workflow availability count tells us whether
  // the scan below could possibly find anything. With hundreds of active
  // workflows, assign() probes pick_job once per queue candidate — this
  // check is what keeps that probe cheap on saturated clusters.
  if (tracker_->workflow(WorkflowId(wf)).available_jobs(slot.type) == 0) {
    return std::nullopt;
  }
  const WorkflowState& st = states_.at(wf);
  for (std::uint32_t j : st.active_jobs) {
    const hadoop::JobRef ref{wf, j};
    if (tracker_->job(ref).has_available(slot.type) && slot.allows(ref)) return j;
  }
  return std::nullopt;
}

std::optional<hadoop::JobRef> WohaScheduler::select_task(
    const hadoop::SlotOffer& slot, SimTime now) {
  std::chrono::steady_clock::time_point t0;
  if (assign_ns_) t0 = std::chrono::steady_clock::now();
  // Cluster-wide availability early-out: when no workflow has an assignable
  // task of this type, assign() would refresh orderings and probe every
  // candidate only to return kNone. Skipping it is decision-identical (the
  // refresh is deferred to the next assign; orderings depend only on `now`)
  // and keeps the empty-offer heartbeat storm O(1). nothing_available is
  // false while tracing, so published decision snapshots are unchanged.
  std::uint32_t wf = SchedulerQueue::kNone;
  if (!nothing_available(slot.type)) {
    wf = queue_->assign(
        now, [this, &slot](std::uint32_t id) { return pick_job(id, slot).has_value(); });
  }
  if (assign_ns_) {
    assign_ns_->observe(std::chrono::duration<double, std::nano>(
                            std::chrono::steady_clock::now() - t0)
                            .count());
  }
  std::optional<hadoop::JobRef> choice;
  if (wf != SchedulerQueue::kNone) {
    const auto j = pick_job(wf, slot);
    if (!j) {
      throw std::logic_error("WohaScheduler: queue accepted a workflow without tasks");
    }
    choice = hadoop::JobRef{wf, *j};
  }

  if (bus_ && bus_->active()) {
    // Explainability snapshot: the queue head as left by this decision (the
    // orderings were refreshed inside assign; the winner's rho is already
    // bumped). Read-only — tracing can never perturb the next decision.
    //
    // The event object is long-lived and published borrowed: its ranking
    // vector and scheduler-name string keep their buffers, so a traced run
    // makes no per-decision allocations (the old code rebuilt both on every
    // consult — measurable at heartbeat-storm rates).
    if (!std::holds_alternative<obs::SchedulerDecision>(trace_event_.payload)) {
      trace_event_.payload.emplace<obs::SchedulerDecision>();
      std::get<obs::SchedulerDecision>(trace_event_.payload).scheduler = name();
    }
    auto& d = std::get<obs::SchedulerDecision>(trace_event_.payload);
    trace_event_.time = now;
    d.slot = slot.type;
    d.tracker = slot.tracker;
    d.assigned = choice.has_value();
    d.workflow = choice ? choice->workflow : 0;
    d.job = choice ? choice->job : obs::SchedulerDecision::kNoJob;
    top_scratch_.clear();
    queue_->top(obs::kMaxRankedCandidates, top_scratch_);
    d.ranking.clear();
    for (const SchedulerQueue::QueueEntry& e : top_scratch_) {
      d.ranking.push_back(obs::SchedulerDecision::Candidate{
          e.id, obs::SchedulerDecision::kNoJob, e.lag, e.requirement, e.rho});
    }
    bus_->publish_borrowed(trace_event_);
  }
  return choice;
}

std::uint32_t WohaScheduler::select_tasks(
    const hadoop::SlotOffer& slot, std::uint32_t limit,
    const std::function<void(hadoop::JobRef)>& start, SimTime now) {
  // Traced runs keep the historical one-decision-per-consult cadence (and
  // its per-decision SchedulerDecision events) by falling back to the base
  // sequential loop.
  if (bus_ && bus_->active()) {
    return WorkflowScheduler::select_tasks(slot, limit, start, now);
  }

  // A per-tracker eligibility filter makes can_use depend on the offering
  // tracker, which is outside the rejection memo's (id, domain) contract —
  // drop the memo before the filtered consult, and again on the first
  // unfiltered consult after it (stamps written under a filter do not imply
  // rejection without it).
  const bool filtered = slot.eligible != nullptr;
  if (filtered || last_offer_filtered_) queue_->invalidate_probe_memo();
  last_offer_filtered_ = filtered;

  std::chrono::steady_clock::time_point t0;
  if (assign_ns_) t0 = std::chrono::steady_clock::now();
  std::uint32_t started = 0;
  // Cluster-wide availability early-out, checked once per batch: with
  // nothing assignable the whole batch would come up empty. Mid-batch
  // exhaustion is caught by the queue walk itself (and memoized).
  if (!nothing_available(slot.type)) {
    // One stack pointer per closure keeps both inside std::function's
    // small-buffer storage — no per-consult allocation.
    struct ProbeContext {
      WohaScheduler* self;
      const hadoop::SlotOffer* slot;
      const std::function<void(hadoop::JobRef)>* start;
    };
    ProbeContext ctx{this, &slot, &start};
    ProbeContext* const pc = &ctx;
    const std::function<bool(std::uint32_t)> can_use = [pc](std::uint32_t id) {
      return pc->self->pick_job(id, *pc->slot).has_value();
    };
    const std::function<void(std::uint32_t)> on_assign = [pc](std::uint32_t wf) {
      const auto j = pc->self->pick_job(wf, *pc->slot);
      if (!j) {
        throw std::logic_error(
            "WohaScheduler: queue accepted a workflow without tasks");
      }
      (*pc->start)(hadoop::JobRef{wf, *j});
    };
    started = queue_->assign_batch(now, static_cast<std::size_t>(slot.type),
                                   limit, can_use, on_assign);
  }
  if (assign_ns_) {
    // One latency sample per batch: the histogram then measures the cost of
    // a consult as the engine experiences it, whatever the batch width.
    assign_ns_->observe(std::chrono::duration<double, std::nano>(
                            std::chrono::steady_clock::now() - t0)
                            .count());
  }
  return started;
}

const SchedulingPlan* WohaScheduler::plan_of(WorkflowId wf) const {
  const auto it = states_.find(wf.value());
  return it == states_.end() ? nullptr : it->second.plan.get();
}

}  // namespace woha::core

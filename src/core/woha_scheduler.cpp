#include "core/woha_scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "common/log.hpp"
#include "common/thread_pool.hpp"
#include "obs/event_bus.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/scoped_timer.hpp"

namespace woha::core {

WohaScheduler::WohaScheduler(WohaConfig config)
    : config_(config), queue_(make_queue(config.queue)) {}

void WohaScheduler::observe(obs::EventBus* bus, obs::MetricsRegistry* registry) {
  WorkflowScheduler::observe(bus, registry);
  assign_ns_ = registry ? &registry->histogram(
                              "woha.queue_assign_ns",
                              obs::exponential_buckets(100.0, 4.0, 12))
                        : nullptr;
  plan_ns_ = registry ? &registry->histogram(
                            "woha.plan_generation_ns",
                            obs::exponential_buckets(1000.0, 4.0, 14))
                      : nullptr;
  plan_cache_.bind_counters(
      registry ? &registry->counter("woha.plan_cache_hits") : nullptr,
      registry ? &registry->counter("woha.plan_cache_misses") : nullptr);
}

std::string WohaScheduler::name() const {
  return std::string("WOHA-") + core::to_string(config_.job_priority);
}

void WohaScheduler::on_pending_submissions(
    const std::vector<wf::WorkflowSpec>& specs) {
  const std::uint32_t total_slots =
      config_.cluster_slots_override ? config_.cluster_slots_override : cluster_slots_;
  // Prewarm only pays off with >= 2 distinct plans; an estimator makes
  // planning inputs depend on submission order, so it must stay serial.
  if (!config_.plan_cache || config_.plan_jobs == 1 || config_.estimator ||
      total_slots == 0 || specs.size() < 2) {
    return;
  }
  std::vector<std::pair<std::uint64_t, const wf::WorkflowSpec*>> unique;
  std::unordered_set<std::uint64_t> seen;
  for (const wf::WorkflowSpec& spec : specs) {
    const std::uint64_t key =
        plan_fingerprint(spec, total_slots, config_.job_priority,
                         config_.cap_policy, config_.fixed_cap,
                         config_.plan_deadline_factor);
    if (seen.insert(key).second) unique.emplace_back(key, &spec);
  }
  if (unique.size() < 2) return;

  // Plan generation is pure in (spec, slots, knobs): every worker reads
  // only immutable inputs and writes its own slot, so no synchronization
  // beyond wait_idle is needed. The bulk wall time lands in the same
  // plan-generation histogram the serial path feeds.
  std::vector<std::shared_ptr<const SchedulingPlan>> plans(unique.size());
  std::vector<std::exception_ptr> errors(unique.size());
  {
    const obs::ScopedTimer plan_timer(plan_ns_);
    ThreadPool pool(ThreadPool::resolve(config_.plan_jobs));
    for (std::size_t i = 0; i < unique.size(); ++i) {
      pool.submit([this, &plans, &errors, &unique, i, total_slots]() {
        try {
          const wf::WorkflowSpec& spec = *unique[i].second;
          const auto rank = job_priority_ranks(spec, config_.job_priority);
          plans[i] = std::make_shared<const SchedulingPlan>(plan_for_submission(
              spec, rank, total_slots, config_.cap_policy, config_.fixed_cap,
              config_.plan_deadline_factor));
        } catch (...) {
          errors[i] = std::current_exception();
        }
      });
    }
    pool.wait_idle();
  }
  // Install in submission order. A failed computation plants nothing: the
  // corresponding on_workflow_submitted recomputes serially and surfaces
  // the same exception at the same point a serial run would.
  for (std::size_t i = 0; i < unique.size(); ++i) {
    if (!errors[i]) plan_cache_.insert(unique[i].first, std::move(plans[i]));
  }
  WOHA_LOG(LogLevel::kInfo, "woha")
      << "prewarmed " << plan_cache_.size() << " plan(s) for " << specs.size()
      << " pending workflow(s) with " << ThreadPool::resolve(config_.plan_jobs)
      << " thread(s)";
}

void WohaScheduler::on_workflow_submitted(WorkflowId wf, SimTime now) {
  const hadoop::WorkflowRuntime& rt = tracker_->workflow(wf);

  // ---- Client-side work (Fig. 1 steps (c)-(d)) ----
  const std::uint32_t total_slots =
      config_.cluster_slots_override ? config_.cluster_slots_override : cluster_slots_;
  if (total_slots == 0) {
    throw std::logic_error("WohaScheduler: cluster slot count not set");
  }
  // The estimator supplies the durations the client plans with; when
  // absent, the configuration's values are trusted as-is.
  const wf::WorkflowSpec planning_spec =
      config_.estimator ? config_.estimator->estimated_spec(rt.spec()) : rt.spec();
  const auto compute = [&]() {
    const auto rank = job_priority_ranks(planning_spec, config_.job_priority);
    return plan_for_submission(planning_spec, rank, total_slots, config_.cap_policy,
                               config_.fixed_cap, config_.plan_deadline_factor);
  };
  // Recurrent instances fingerprint equal (the estimator's output is part
  // of the fingerprint, so a learning estimator naturally splits the key).
  std::shared_ptr<const SchedulingPlan> plan;
  {
    const obs::ScopedTimer plan_timer(plan_ns_);
    if (config_.plan_cache) {
      plan = plan_cache_.get_or_compute(
          plan_fingerprint(planning_spec, total_slots, config_.job_priority,
                           config_.cap_policy, config_.fixed_cap,
                           config_.plan_deadline_factor),
          compute);
    } else {
      plan = std::make_shared<const SchedulingPlan>(compute());
    }
  }
  WOHA_LOG(LogLevel::kInfo, "woha")
      << "plan for workflow " << wf.value() << ": cap=" << plan->resource_cap
      << " makespan=" << plan->simulated_makespan << " steps=" << plan->num_steps();
  if (bus_ && bus_->active()) {
    bus_->publish(now, obs::PlanGenerated{wf.value(), plan->resource_cap,
                                          plan->simulated_makespan,
                                          plan->num_steps(),
                                          plan->total_tasks()});
  }

  // ---- Master-side registration ----
  WorkflowState st;
  st.plan = std::move(plan);
  ProgressTracker progress(st.plan.get(), rt.deadline());
  states_.emplace(wf.value(), std::move(st));
  queue_->insert(wf.value(), std::move(progress));
}

void WohaScheduler::on_job_activated(hadoop::JobRef job, SimTime now) {
  (void)now;
  WorkflowState& st = states_.at(job.workflow);
  const auto& rank = st.plan->job_rank;
  // Keep active_jobs sorted by ascending rank (rank 0 served first).
  const auto pos = std::lower_bound(
      st.active_jobs.begin(), st.active_jobs.end(), job.job,
      [&rank](std::uint32_t a, std::uint32_t b) { return rank[a] < rank[b]; });
  st.active_jobs.insert(pos, job.job);
}

void WohaScheduler::on_job_completed(hadoop::JobRef job, SimTime now) {
  (void)now;
  WorkflowState& st = states_.at(job.workflow);
  std::erase(st.active_jobs, job.job);
}

void WohaScheduler::on_workflow_completed(WorkflowId wf, SimTime now) {
  (void)now;
  queue_->remove(wf.value());
  // Keep the plan alive (tests inspect it); drop only the job list.
  states_.at(wf.value()).active_jobs.clear();
}

void WohaScheduler::on_tasks_lost(hadoop::JobRef job, SlotType t,
                                  std::uint32_t count, SimTime now) {
  (void)t;
  // rho counted these tasks as progress; they will run again, so the
  // workflow's lag must grow back. No-op for already-dequeued workflows.
  queue_->on_progress_lost(job.workflow, count);
  if (bus_ && bus_->active()) {
    bus_->publish(now, obs::QueueReordered{job.workflow, count});
  }
}

std::optional<std::uint32_t> WohaScheduler::pick_job(
    std::uint32_t wf, const hadoop::SlotOffer& slot) const {
  // O(1) fast-fail: the per-workflow availability count tells us whether
  // the scan below could possibly find anything. With hundreds of active
  // workflows, assign() probes pick_job once per queue candidate — this
  // check is what keeps that probe cheap on saturated clusters.
  if (tracker_->workflow(WorkflowId(wf)).available_jobs(slot.type) == 0) {
    return std::nullopt;
  }
  const WorkflowState& st = states_.at(wf);
  for (std::uint32_t j : st.active_jobs) {
    const hadoop::JobRef ref{wf, j};
    if (tracker_->job(ref).has_available(slot.type) && slot.allows(ref)) return j;
  }
  return std::nullopt;
}

std::optional<hadoop::JobRef> WohaScheduler::select_task(
    const hadoop::SlotOffer& slot, SimTime now) {
  std::chrono::steady_clock::time_point t0;
  if (assign_ns_) t0 = std::chrono::steady_clock::now();
  // Cluster-wide availability early-out: when no workflow has an assignable
  // task of this type, assign() would refresh orderings and probe every
  // candidate only to return kNone. Skipping it is decision-identical (the
  // refresh is deferred to the next assign; orderings depend only on `now`)
  // and keeps the empty-offer heartbeat storm O(1). nothing_available is
  // false while tracing, so published decision snapshots are unchanged.
  std::uint32_t wf = SchedulerQueue::kNone;
  if (!nothing_available(slot.type)) {
    wf = queue_->assign(
        now, [this, &slot](std::uint32_t id) { return pick_job(id, slot).has_value(); });
  }
  if (assign_ns_) {
    assign_ns_->observe(std::chrono::duration<double, std::nano>(
                            std::chrono::steady_clock::now() - t0)
                            .count());
  }
  std::optional<hadoop::JobRef> choice;
  if (wf != SchedulerQueue::kNone) {
    const auto j = pick_job(wf, slot);
    if (!j) {
      throw std::logic_error("WohaScheduler: queue accepted a workflow without tasks");
    }
    choice = hadoop::JobRef{wf, *j};
  }

  if (bus_ && bus_->active()) {
    // Explainability snapshot: the queue head as left by this decision (the
    // orderings were refreshed inside assign; the winner's rho is already
    // bumped). Read-only — tracing can never perturb the next decision.
    obs::SchedulerDecision d;
    d.scheduler = name();
    d.slot = slot.type;
    d.tracker = slot.tracker;
    d.assigned = choice.has_value();
    if (choice) {
      d.workflow = choice->workflow;
      d.job = choice->job;
    }
    top_scratch_.clear();
    queue_->top(obs::kMaxRankedCandidates, top_scratch_);
    d.ranking.reserve(top_scratch_.size());
    for (const SchedulerQueue::QueueEntry& e : top_scratch_) {
      d.ranking.push_back(obs::SchedulerDecision::Candidate{
          e.id, obs::SchedulerDecision::kNoJob, e.lag, e.requirement, e.rho});
    }
    bus_->publish(now, std::move(d));
  }
  return choice;
}

const SchedulingPlan* WohaScheduler::plan_of(WorkflowId wf) const {
  const auto it = states_.find(wf.value());
  return it == states_.end() ? nullptr : it->second.plan.get();
}

}  // namespace woha::core

#include "core/progress_tracker.hpp"

#include <stdexcept>

namespace woha::core {

ProgressTracker::ProgressTracker(const SchedulingPlan* plan, SimTime deadline)
    : plan_(plan), deadline_(deadline) {
  if (!plan_) throw std::invalid_argument("ProgressTracker: null plan");
  view_ = plan_->view();
}

SimTime ProgressTracker::next_change_time() const {
  if (deadline_ == kTimeInfinity || index_ >= view_.size) {
    return kTimeInfinity;
  }
  // Step index_ fires at absolute time D - ttd. ttd can exceed the relative
  // deadline when the plan is lazier than the submission instant — such
  // steps fire "immediately" (clamped by advance_to's <= now test).
  return deadline_ - view_.ttd[index_];
}

void ProgressTracker::advance_to(SimTime now) {
  if (deadline_ == kTimeInfinity) return;
  while (index_ < view_.size && deadline_ - view_.ttd[index_] <= now) {
    ++index_;
  }
}

std::uint64_t ProgressTracker::current_requirement() const {
  return index_ == 0 ? 0 : view_.req[index_ - 1];
}

}  // namespace woha::core

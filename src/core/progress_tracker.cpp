#include "core/progress_tracker.hpp"

#include <stdexcept>

namespace woha::core {

ProgressTracker::ProgressTracker(const SchedulingPlan* plan, SimTime deadline)
    : plan_(plan), deadline_(deadline) {
  if (!plan_) throw std::invalid_argument("ProgressTracker: null plan");
}

SimTime ProgressTracker::next_change_time() const {
  if (deadline_ == kTimeInfinity || index_ >= plan_->steps.size()) {
    return kTimeInfinity;
  }
  // Step index_ fires at absolute time D - ttd. ttd can exceed the relative
  // deadline when the plan is lazier than the submission instant — such
  // steps fire "immediately" (clamped by advance_to's <= now test).
  return deadline_ - plan_->steps[index_].ttd;
}

void ProgressTracker::advance_to(SimTime now) {
  if (deadline_ == kTimeInfinity) return;
  while (index_ < plan_->steps.size() &&
         deadline_ - plan_->steps[index_].ttd <= now) {
    ++index_;
  }
}

std::uint64_t ProgressTracker::current_requirement() const {
  return index_ == 0 ? 0 : plan_->steps[index_ - 1].cumulative_req;
}

}  // namespace woha::core

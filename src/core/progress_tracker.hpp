// Runtime progress state of one workflow under the progress-based scheduler
// (paper Section IV-B).
//
// For workflow W_h the scheduler maintains:
//   * W_h.i   — index of the next un-applied step in F_h       (index_)
//   * W_h.t   — absolute time of the next requirement change   (next_change_time)
//   * rho_h   — true progress: tasks handed to slots so far    (rho_)
//   * W_h.p   — inter-workflow priority = F_h(ttd) - rho_h     (lag)
//
// advance_to(now) is Algorithm 2's lines 8-11 (walk to the latest fired
// step); count_scheduled() is line 22 (rho+1 == p-1).
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "core/plan.hpp"

namespace woha::core {

class ProgressTracker {
 public:
  /// `plan` must outlive the tracker. `deadline` is absolute
  /// (kTimeInfinity => the workflow never accrues requirements and its lag
  /// is simply -rho, i.e. lowest effective priority).
  ProgressTracker(const SchedulingPlan* plan, SimTime deadline);

  /// Absolute time when the requirement next increases (kTimeInfinity once
  /// every step has fired).
  [[nodiscard]] SimTime next_change_time() const;

  /// Walk W_h.i past every step whose absolute fire time (deadline - ttd)
  /// is <= now. Idempotent; O(steps crossed).
  void advance_to(SimTime now);

  /// Current requirement F_h at the last advanced-to instant.
  [[nodiscard]] std::uint64_t current_requirement() const;

  /// Inter-workflow priority p = F_h(ttd) - rho_h; larger == more behind ==
  /// schedule first.
  [[nodiscard]] std::int64_t lag() const {
    return static_cast<std::int64_t>(current_requirement()) -
           static_cast<std::int64_t>(rho_);
  }

  [[nodiscard]] std::uint64_t rho() const { return rho_; }
  void count_scheduled() { ++rho_; }

  /// Progress regression: `n` previously-scheduled tasks were lost (tracker
  /// crash invalidated their slots or map outputs) and must be re-executed.
  /// rho decreases — the workflow's lag grows and it climbs back up the
  /// priority order. Clamped at zero so double-reported losses cannot
  /// underflow.
  void count_lost(std::uint64_t n) { rho_ = n > rho_ ? 0 : rho_ - n; }

  [[nodiscard]] const SchedulingPlan& plan() const { return *plan_; }
  [[nodiscard]] SimTime deadline() const { return deadline_; }

 private:
  const SchedulingPlan* plan_;
  PlanView view_;  // hot walk reads only view_.ttd until a step fires
  SimTime deadline_;
  std::size_t index_ = 0;  // first step that has NOT fired yet
  std::uint64_t rho_ = 0;
};

}  // namespace woha::core

#include "core/job_priority.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

#include "workflow/analysis.hpp"

namespace woha::core {

const char* to_string(JobPriorityPolicy policy) {
  switch (policy) {
    case JobPriorityPolicy::kHlf: return "HLF";
    case JobPriorityPolicy::kLpf: return "LPF";
    case JobPriorityPolicy::kMpf: return "MPF";
  }
  return "?";
}

JobPriorityPolicy parse_job_priority_policy(const std::string& name) {
  std::string lower;
  for (char c : name) lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (lower == "hlf") return JobPriorityPolicy::kHlf;
  if (lower == "lpf") return JobPriorityPolicy::kLpf;
  if (lower == "mpf") return JobPriorityPolicy::kMpf;
  throw std::invalid_argument("unknown job priority policy: '" + name + "'");
}

std::vector<std::uint32_t> job_priority_order(const wf::WorkflowSpec& spec,
                                              JobPriorityPolicy policy) {
  const std::uint32_t n = static_cast<std::uint32_t>(spec.jobs.size());
  std::vector<std::uint32_t> order(n);
  for (std::uint32_t j = 0; j < n; ++j) order[j] = j;

  // Each policy produces a score where larger == higher priority.
  std::vector<std::int64_t> score(n);
  switch (policy) {
    case JobPriorityPolicy::kHlf: {
      const auto levels = wf::job_levels(spec);
      for (std::uint32_t j = 0; j < n; ++j) score[j] = levels[j];
      break;
    }
    case JobPriorityPolicy::kLpf: {
      const auto paths = wf::downstream_path_length(spec);
      for (std::uint32_t j = 0; j < n; ++j) score[j] = paths[j];
      break;
    }
    case JobPriorityPolicy::kMpf: {
      const auto deps = wf::dependent_counts(spec);
      for (std::uint32_t j = 0; j < n; ++j) score[j] = deps[j];
      break;
    }
  }
  std::stable_sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    if (score[a] != score[b]) return score[a] > score[b];
    return a < b;  // tie-break by job id
  });
  return order;
}

std::vector<std::uint32_t> job_priority_ranks(const wf::WorkflowSpec& spec,
                                              JobPriorityPolicy policy) {
  const auto order = job_priority_order(spec, policy);
  std::vector<std::uint32_t> rank(order.size());
  for (std::uint32_t pos = 0; pos < order.size(); ++pos) rank[order[pos]] = pos;
  return rank;
}

}  // namespace woha::core

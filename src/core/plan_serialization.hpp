// Wire format for scheduling plans.
//
// In WOHA the client ships the plan to the JobTracker with the workflow
// configuration, so its size is master-node memory and network overhead —
// the paper's Fig. 13(b) shows plans stay under ~7 KB even for workflows of
// 1400+ tasks. We use the obvious compact encoding: LEB128 varints with
// delta-coding for the monotone step sequences. serialized_size() is what
// the Fig. 13(b) bench reports.
#pragma once

#include <cstdint>
#include <vector>

#include "core/plan.hpp"

namespace woha::core {

/// Encode a plan. Deterministic: equal plans produce identical bytes.
[[nodiscard]] std::vector<std::uint8_t> serialize_plan(const SchedulingPlan& plan);

/// Decode; throws std::invalid_argument on malformed/truncated input.
[[nodiscard]] SchedulingPlan deserialize_plan(const std::vector<std::uint8_t>& bytes);

/// Size in bytes of the encoded plan (without building the buffer twice).
[[nodiscard]] std::size_t serialized_plan_size(const SchedulingPlan& plan);

}  // namespace woha::core

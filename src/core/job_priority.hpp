// Intra-workflow job prioritization (paper Section V-C).
//
// The Scheduling Plan Generator takes a total priority order over a
// workflow's jobs as input. Three policies from the paper:
//
//  * HLF (Highest Level First)       — deeper jobs (longer chains of
//    dependents, counted in jobs) first.
//  * LPF (Longest Path First)        — jobs with the longest downstream path
//    measured in estimated execution time first.
//  * MPF (Maximum Parallelism First) — jobs with the most direct dependents
//    first, to keep the workflow's frontier wide.
//
// All ties break by job index ("ties are broken by using their job IDs").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workflow/workflow.hpp"

namespace woha::core {

enum class JobPriorityPolicy : std::uint8_t { kHlf, kLpf, kMpf };

[[nodiscard]] const char* to_string(JobPriorityPolicy policy);
/// Parses "hlf" / "lpf" / "mpf" (case-insensitive); throws on other input.
[[nodiscard]] JobPriorityPolicy parse_job_priority_policy(const std::string& name);

/// rank[j] = position of job j in the priority order; 0 is the highest
/// priority. A valid permutation of 0..n-1.
[[nodiscard]] std::vector<std::uint32_t> job_priority_ranks(
    const wf::WorkflowSpec& spec, JobPriorityPolicy policy);

/// Job indices sorted from highest to lowest priority (the inverse
/// permutation of job_priority_ranks).
[[nodiscard]] std::vector<std::uint32_t> job_priority_order(
    const wf::WorkflowSpec& spec, JobPriorityPolicy policy);

}  // namespace woha::core

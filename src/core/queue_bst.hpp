// Balanced-search-tree variant of the scheduler queue (paper Fig. 13(a),
// "WOHA-BST"). Identical algorithm to the Double Skip List, but both
// orderings live in balanced BSTs, so the frequent head deletions cost
// O(log n) instead of O(1).
//
// The trees are arena-backed AVL trees (flat_tree.hpp): contiguous nodes,
// 32-bit index links, allocation-free repositioning — the same memory
// discipline as the skip lists, so Fig. 13(a) compares data structures, not
// allocators. Workflow state lives in the shared SoA arena
// (queue_arena.hpp) and the trees carry slot indices. The ct-refresh memo
// and the per-domain probe-rejection memo mirror DslQueue exactly; see
// queue_dsl.hpp.
#pragma once

#include <cstdint>
#include <limits>
#include <utility>

#include "core/flat_tree.hpp"
#include "core/queue_arena.hpp"
#include "core/scheduler_queue.hpp"

namespace woha::core {

class BstQueue final : public SchedulerQueue {
 public:
  /// `cached_min` = true exploits the tree's O(1) cached leftmost node;
  /// false models the textbook balanced BST of the paper's Fig. 13(a),
  /// paying a root-to-min descent on every head access.
  explicit BstQueue(bool cached_min = true) : cached_min_(cached_min) {}

  [[nodiscard]] std::string name() const override {
    return cached_min_ ? "BST" : "BSTplain";
  }
  void insert(std::uint32_t id, ProgressTracker tracker) override;
  void remove(std::uint32_t id) override;
  std::uint32_t assign(SimTime now,
                       const std::function<bool(std::uint32_t)>& can_use) override;
  std::uint32_t assign_batch(
      SimTime now, std::size_t domain, std::uint32_t k,
      const std::function<bool(std::uint32_t)>& can_use,
      const std::function<void(std::uint32_t)>& on_assign) override;
  void note_can_use_changed(std::uint32_t id) override;
  void invalidate_probe_memo() override;
  void on_progress_lost(std::uint32_t id, std::uint64_t count) override;
  [[nodiscard]] std::size_t size() const override { return arena_.size(); }
  void top(std::size_t k, std::vector<QueueEntry>& out) const override;
  void check_structure() const override;

 private:
  /// Auditor failure-path tests corrupt cached keys through this peer.
  friend struct QueueTestPeer;

  using CtKey = std::pair<SimTime, std::uint32_t>;
  using PriKey = std::pair<std::int64_t, std::uint32_t>;

  static constexpr PriKey kWalkFromHead{std::numeric_limits<std::int64_t>::min(),
                                        0};
  static constexpr PriKey kWalkNothing{std::numeric_limits<std::int64_t>::max(),
                                       0xffffffffu};

  /// Head access under the ablation's cost model: O(1) cached leftmost for
  /// "BST", a root-to-leftmost descent for "BSTplain". kNil when empty.
  template <class Tree>
  [[nodiscard]] std::uint32_t tree_head(const Tree& tree) const {
    return cached_min_ ? tree.min_node() : tree.min_descend();
  }

  void refresh_fired(SimTime now);
  void refresh(std::uint32_t slot, SimTime now);
  std::uint32_t commit_winner(std::uint32_t slot, const PriKey& old_key);
  void note_moved(std::uint32_t slot, const PriKey& key);

  bool cached_min_;
  WfStateArena arena_;
  FlatTree<CtKey> ct_tree_;
  FlatTree<PriKey> pri_tree_;
  SimTime ct_clean_now_ = 0;
  bool ct_dirty_ = true;
  std::uint64_t epoch_[WfStateArena::kDomains] = {1, 1};
  PriKey resume_[WfStateArena::kDomains] = {kWalkFromHead, kWalkFromHead};
};

}  // namespace woha::core
